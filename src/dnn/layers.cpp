#include "dnn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cake {
namespace dnn {

// ----------------------------------------------------------------- Linear

Linear::Linear(ThreadPool& pool, Matrix weights, std::vector<float> bias)
    : weights_(std::move(weights)), bias_(std::move(bias)), gemm_(pool)
{
    CAKE_CHECK_MSG(bias_.empty()
                       || static_cast<index_t>(bias_.size())
                           == weights_.cols(),
                   "bias length must equal out_features");
}

void Linear::forward(const float* in, float* out, index_t batch)
{
    gemm_.multiply(in, weights_.rows(), weights_.data(), weights_.cols(),
                   out, weights_.cols(), batch, weights_.cols(),
                   weights_.rows());
    if (!bias_.empty()) {
        for (index_t r = 0; r < batch; ++r) {
            float* row = out + r * weights_.cols();
            for (index_t j = 0; j < weights_.cols(); ++j)
                row[j] += bias_[static_cast<std::size_t>(j)];
        }
    }
}

// -------------------------------------------------------- QuantizedLinear

QuantizedLinear::QuantizedLinear(ThreadPool& pool, const Matrix& weights,
                                 std::vector<float> bias)
    : in_(weights.rows()), out_(weights.cols()),
      wq_(static_cast<std::size_t>(weights.size())),
      w_colsums_(static_cast<std::size_t>(weights.cols())),
      bias_(std::move(bias)), gemm_(pool)
{
    CAKE_CHECK_MSG(bias_.empty()
                       || static_cast<index_t>(bias_.size()) == out_,
                   "bias length must equal out_features");
    wq_params_ = quantize_signed(weights.data(), weights.size(), wq_.data());
    int8_column_sums(wq_.data(), out_, in_, out_, w_colsums_.data());
    // Pack once: every forward() call skips the per-call B pack.
    wq_packed_ = gemm_.pack_weights(wq_.data(), out_, in_, out_);
}

void QuantizedLinear::forward(const float* in, float* out, index_t batch)
{
    in_q_.ensure(static_cast<std::size_t>(batch * in_));
    acc_.ensure(static_cast<std::size_t>(batch * out_));
    const QuantParams in_params =
        quantize_unsigned(in, batch * in_, in_q_.data());
    gemm_.multiply_prepacked(in_q_.data(), in_, wq_packed_, acc_.data(),
                             out_, batch);
    dequantize_gemm(acc_.data(), out_, batch, out_, in_params, wq_params_,
                    w_colsums_.data(), out, out_);
    if (!bias_.empty()) {
        for (index_t r = 0; r < batch; ++r) {
            float* row = out + r * out_;
            for (index_t j = 0; j < out_; ++j)
                row[j] += bias_[static_cast<std::size_t>(j)];
        }
    }
}

// ------------------------------------------------------------ activations

void ReLU::forward(const float* in, float* out, index_t batch)
{
    const index_t n = batch * features_;
    for (index_t i = 0; i < n; ++i) out[i] = std::max(in[i], 0.0f);
}

void Softmax::forward(const float* in, float* out, index_t batch)
{
    for (index_t r = 0; r < batch; ++r) {
        const float* irow = in + r * features_;
        float* orow = out + r * features_;
        float maxv = irow[0];
        for (index_t j = 1; j < features_; ++j)
            maxv = std::max(maxv, irow[j]);
        float sum = 0;
        for (index_t j = 0; j < features_; ++j) {
            orow[j] = std::exp(irow[j] - maxv);
            sum += orow[j];
        }
        const float inv = 1.0f / sum;
        for (index_t j = 0; j < features_; ++j) orow[j] *= inv;
    }
}

LayerNorm::LayerNorm(index_t features, std::vector<float> gamma,
                     std::vector<float> beta, float eps)
    : features_(features), gamma_(std::move(gamma)), beta_(std::move(beta)),
      eps_(eps)
{
    CAKE_CHECK(static_cast<index_t>(gamma_.size()) == features);
    CAKE_CHECK(static_cast<index_t>(beta_.size()) == features);
}

void LayerNorm::forward(const float* in, float* out, index_t batch)
{
    for (index_t r = 0; r < batch; ++r) {
        const float* irow = in + r * features_;
        float* orow = out + r * features_;
        double mean = 0;
        for (index_t j = 0; j < features_; ++j) mean += irow[j];
        mean /= static_cast<double>(features_);
        double var = 0;
        for (index_t j = 0; j < features_; ++j) {
            const double d = irow[j] - mean;
            var += d * d;
        }
        var /= static_cast<double>(features_);
        const float inv_std =
            1.0f / std::sqrt(static_cast<float>(var) + eps_);
        for (index_t j = 0; j < features_; ++j) {
            orow[j] = gamma_[static_cast<std::size_t>(j)]
                    * (irow[j] - static_cast<float>(mean)) * inv_std
                + beta_[static_cast<std::size_t>(j)];
        }
    }
}

// ------------------------------------------------------------- Sequential

void Sequential::add(std::unique_ptr<Layer> layer)
{
    CAKE_CHECK(layer != nullptr);
    if (!layers_.empty()) {
        CAKE_CHECK_MSG(layers_.back()->out_features()
                           == layer->in_features(),
                       "layer " << layers_.size() << " (" << layer->name()
                                << ") expects "
                                << layer->in_features()
                                << " inputs but previous layer produces "
                                << layers_.back()->out_features());
    }
    layers_.push_back(std::move(layer));
}

Matrix Sequential::forward(const Matrix& in)
{
    CAKE_CHECK(!layers_.empty());
    CAKE_CHECK_MSG(in.cols() == layers_.front()->in_features(),
                   "input features " << in.cols() << " != first layer's "
                                     << layers_.front()->in_features());
    const index_t batch = in.rows();
    Matrix current(batch, in.cols(), /*zero=*/false);
    std::copy_n(in.data(), in.size(), current.data());

    for (const auto& layer : layers_) {
        Matrix next(batch, layer->out_features(), /*zero=*/false);
        layer->forward(current.data(), next.data(), batch);
        current = std::move(next);
    }
    return current;
}

}  // namespace dnn
}  // namespace cake
