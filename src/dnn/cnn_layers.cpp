#include "dnn/cnn_layers.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cake {
namespace dnn {

Conv2dLayer::Conv2dLayer(ThreadPool& pool, conv::Conv2dParams params,
                         Matrix weights, index_t in_h, index_t in_w)
    : pool_(pool), params_(params), weights_(std::move(weights)),
      in_h_(in_h), in_w_(in_w),
      out_h_(conv::conv_out_dim(in_h, params.kernel_h, params.stride_h,
                                params.pad_h)),
      out_w_(conv::conv_out_dim(in_w, params.kernel_w, params.stride_w,
                                params.pad_w))
{
    CAKE_CHECK_MSG(weights_.rows() == params_.out_channels
                       && weights_.cols() == params_.patch_size(),
                   "conv weights must be out_channels x patch_size");
}

void Conv2dLayer::forward(const float* in, float* out, index_t batch)
{
    conv::conv2d_forward(in, batch, in_h_, in_w_, weights_.data(), params_,
                         out, pool_);
}

MaxPool2d::MaxPool2d(index_t channels, index_t in_h, index_t in_w,
                     index_t window)
    : channels_(channels), in_h_(in_h), in_w_(in_w), window_(window),
      out_h_(in_h / window), out_w_(in_w / window)
{
    CAKE_CHECK(window >= 1);
    CAKE_CHECK_MSG(out_h_ >= 1 && out_w_ >= 1,
                   "pool window larger than the feature map");
}

void MaxPool2d::forward(const float* in, float* out, index_t batch)
{
    for (index_t img = 0; img < batch; ++img) {
        for (index_t ch = 0; ch < channels_; ++ch) {
            const float* plane =
                in + (img * channels_ + ch) * in_h_ * in_w_;
            float* dst = out + (img * channels_ + ch) * out_h_ * out_w_;
            for (index_t oy = 0; oy < out_h_; ++oy) {
                for (index_t ox = 0; ox < out_w_; ++ox) {
                    float best = plane[oy * window_ * in_w_ + ox * window_];
                    for (index_t wy = 0; wy < window_; ++wy) {
                        for (index_t wx = 0; wx < window_; ++wx) {
                            best = std::max(
                                best, plane[(oy * window_ + wy) * in_w_
                                            + ox * window_ + wx]);
                        }
                    }
                    dst[oy * out_w_ + ox] = best;
                }
            }
        }
    }
}

}  // namespace dnn
}  // namespace cake
