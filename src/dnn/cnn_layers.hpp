// CNN layers over the conv2d module, exposed through the flat Layer
// interface (features = channels * height * width with fixed geometry)
// so convolutional stacks compose in dnn::Sequential.
#pragma once

#include "conv/conv2d.hpp"
#include "dnn/layers.hpp"

namespace cake {
namespace dnn {

/// 2-D convolution layer (NCHW, via im2col + CAKE GEMM).
class Conv2dLayer final : public Layer {
public:
    /// `weights`: out_channels x (in_channels*kh*kw), row-major.
    Conv2dLayer(ThreadPool& pool, conv::Conv2dParams params,
                Matrix weights, index_t in_h, index_t in_w);

    void forward(const float* in, float* out, index_t batch) override;
    [[nodiscard]] index_t in_features() const override
    {
        return params_.in_channels * in_h_ * in_w_;
    }
    [[nodiscard]] index_t out_features() const override
    {
        return params_.out_channels * out_h_ * out_w_;
    }
    [[nodiscard]] std::string name() const override { return "conv2d"; }

    [[nodiscard]] index_t out_h() const { return out_h_; }
    [[nodiscard]] index_t out_w() const { return out_w_; }

private:
    ThreadPool& pool_;
    conv::Conv2dParams params_;
    Matrix weights_;
    index_t in_h_, in_w_, out_h_, out_w_;
};

/// 2-D max pooling (NCHW), window x window with stride = window.
class MaxPool2d final : public Layer {
public:
    MaxPool2d(index_t channels, index_t in_h, index_t in_w, index_t window);

    void forward(const float* in, float* out, index_t batch) override;
    [[nodiscard]] index_t in_features() const override
    {
        return channels_ * in_h_ * in_w_;
    }
    [[nodiscard]] index_t out_features() const override
    {
        return channels_ * out_h_ * out_w_;
    }
    [[nodiscard]] std::string name() const override { return "maxpool2d"; }

    [[nodiscard]] index_t out_h() const { return out_h_; }
    [[nodiscard]] index_t out_w() const { return out_w_; }

private:
    index_t channels_, in_h_, in_w_, window_, out_h_, out_w_;
};

}  // namespace dnn
}  // namespace cake
