// Minimal DNN layer zoo over the CAKE GEMM engines — enough to assemble
// the MLP/CNN-style forward passes the paper's introduction motivates,
// in both float32 and quantized int8 deployments.
//
// All activations are row-major (batch x features).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "common/matrix.hpp"
#include "core/cake_gemm.hpp"
#include "core/cake_gemm_int8.hpp"
#include "core/quant.hpp"

namespace cake {
namespace dnn {

/// Base interface: transforms (batch x in_features) -> (batch x
/// out_features). Implementations may cache per-batch scratch.
class Layer {
public:
    virtual ~Layer() = default;
    virtual void forward(const float* in, float* out, index_t batch) = 0;
    [[nodiscard]] virtual index_t in_features() const = 0;
    [[nodiscard]] virtual index_t out_features() const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
};

/// Fully connected layer: out = in * W + bias, via cake_sgemm.
class Linear final : public Layer {
public:
    /// Weights are (in x out) row-major; bias has `out` entries (may be
    /// empty for no bias).
    Linear(ThreadPool& pool, Matrix weights, std::vector<float> bias = {});

    void forward(const float* in, float* out, index_t batch) override;
    [[nodiscard]] index_t in_features() const override
    {
        return weights_.rows();
    }
    [[nodiscard]] index_t out_features() const override
    {
        return weights_.cols();
    }
    [[nodiscard]] std::string name() const override { return "linear"; }

    [[nodiscard]] const Matrix& weights() const { return weights_; }

private:
    Matrix weights_;
    std::vector<float> bias_;
    CakeGemm gemm_;
};

/// Quantized fully connected layer: weights pre-quantized to s8 once
/// (symmetric); activations quantized to u8 per batch; the integer GEMM
/// runs on the int8 CAKE path; outputs are dequantized floats + bias.
class QuantizedLinear final : public Layer {
public:
    QuantizedLinear(ThreadPool& pool, const Matrix& weights,
                    std::vector<float> bias = {});

    void forward(const float* in, float* out, index_t batch) override;
    [[nodiscard]] index_t in_features() const override { return in_; }
    [[nodiscard]] index_t out_features() const override { return out_; }
    [[nodiscard]] std::string name() const override { return "qlinear"; }

private:
    index_t in_;
    index_t out_;
    AlignedBuffer<std::int8_t> wq_;
    QuantParams wq_params_;
    std::vector<std::int64_t> w_colsums_;
    std::vector<float> bias_;
    CakeGemmInt8 gemm_;
    PackedBInt8 wq_packed_;  ///< weights packed once at construction
    AlignedBuffer<std::uint8_t> in_q_;
    AlignedBuffer<std::int32_t> acc_;
};

/// Elementwise max(x, 0).
class ReLU final : public Layer {
public:
    explicit ReLU(index_t features) : features_(features) {}
    void forward(const float* in, float* out, index_t batch) override;
    [[nodiscard]] index_t in_features() const override { return features_; }
    [[nodiscard]] index_t out_features() const override { return features_; }
    [[nodiscard]] std::string name() const override { return "relu"; }

private:
    index_t features_;
};

/// Row-wise numerically stable softmax.
class Softmax final : public Layer {
public:
    explicit Softmax(index_t features) : features_(features) {}
    void forward(const float* in, float* out, index_t batch) override;
    [[nodiscard]] index_t in_features() const override { return features_; }
    [[nodiscard]] index_t out_features() const override { return features_; }
    [[nodiscard]] std::string name() const override { return "softmax"; }

private:
    index_t features_;
};

/// Row-wise layer normalisation with learned gamma/beta.
class LayerNorm final : public Layer {
public:
    LayerNorm(index_t features, std::vector<float> gamma,
              std::vector<float> beta, float eps = 1e-5f);
    void forward(const float* in, float* out, index_t batch) override;
    [[nodiscard]] index_t in_features() const override { return features_; }
    [[nodiscard]] index_t out_features() const override { return features_; }
    [[nodiscard]] std::string name() const override { return "layernorm"; }

private:
    index_t features_;
    std::vector<float> gamma_;
    std::vector<float> beta_;
    float eps_;
};

/// A feed-forward stack of layers with ping-pong activation buffers.
class Sequential {
public:
    /// Adjacent layers must agree on feature counts (checked).
    void add(std::unique_ptr<Layer> layer);

    /// Run the stack; `in` is (batch x first-layer-in) row-major, the
    /// return value (batch x last-layer-out).
    Matrix forward(const Matrix& in);

    [[nodiscard]] std::size_t size() const { return layers_.size(); }
    [[nodiscard]] const Layer& layer(std::size_t i) const
    {
        return *layers_[i];
    }

private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace dnn
}  // namespace cake
