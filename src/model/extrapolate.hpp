// The paper's extrapolation protocol for the dotted lines in Figs. 10-12:
// "The dotted extrapolation lines assume internal memory bandwidth
// increases proportionally for each additional core, local memory size
// increases quadratically, and DRAM bandwidth is fixed. We use the last
// two data points in each plot to initialize the extrapolation line."
#pragma once

#include <vector>

#include "machine/machine.hpp"

namespace cake {
namespace model {

/// Extend a measured per-core series (element i = value at p = i+1) to
/// `target_p` entries using the line through its last two points. The
/// measured prefix is preserved verbatim.
std::vector<double> extrapolate_series(const std::vector<double>& measured,
                                       int target_p);

/// A hypothetical scaled-up machine with `p` cores under the paper's
/// extrapolation assumptions: internal BW grows linearly per core from the
/// measured tail, LLC capacity grows quadratically with p relative to the
/// base core count, DRAM bandwidth fixed.
MachineSpec extrapolated_machine(const MachineSpec& base, int p);

}  // namespace model
}  // namespace cake
