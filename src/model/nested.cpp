#include "model/nested.hpp"

#include "common/error.hpp"
#include "model/analysis.hpp"

namespace cake {
namespace model {

NestedAnalysis analyze_nested(const std::vector<NestedLevelSpec>& specs)
{
    CAKE_CHECK_MSG(!specs.empty(), "need at least one nest level");
    NestedAnalysis out;
    out.levels.reserve(specs.size());

    for (const NestedLevelSpec& spec : specs) {
        CAKE_CHECK(spec.alpha >= 1.0 && spec.p >= 1.0 && spec.k >= 1.0);
        NestedLevelProfile level;
        const double m = spec.p * spec.k;
        const double n = spec.alpha * spec.p * spec.k;
        level.block_volume = m * spec.k * n;
        level.time = n;  // §3: each compute unit performs n tile MMs
        level.bw_demand_up = bw_min_tiles_per_cycle(spec.alpha, spec.k);
        level.bw_demand_down =
            bw_internal_tiles_per_cycle(spec.alpha, spec.p, spec.k);
        level.mem_required = mem_internal_tiles(spec.alpha, spec.p, spec.k);
        out.levels.push_back(level);
        out.total_cores *= spec.p * spec.k * spec.k;
    }

    // Chaining: the "cores" of level i are level-(i+1) CB blocks. Level
    // i hands each inner block one tile per unit time per core slot; the
    // inner level's upward demand (per its own time base) must not exceed
    // the per-slot supply. In tile/unit-time terms both sides are
    // normalised per compute slot, so the condition is
    //   bw_demand_down(i) / cores(i) >= bw_demand_up(i+1) / cores_slots,
    // which reduces to comparing per-slot rates directly:
    for (std::size_t i = 0; i + 1 < specs.size(); ++i) {
        const double cores_i = specs[i].p * specs[i].k * specs[i].k;
        const double supply_per_slot =
            out.levels[i].bw_demand_down / cores_i;
        // Inner block consumes bw_demand_up spread over its own slots.
        const double inner_cores =
            specs[i + 1].p * specs[i + 1].k * specs[i + 1].k;
        const double demand_per_slot =
            out.levels[i + 1].bw_demand_up / inner_cores;
        if (supply_per_slot + 1e-12 < demand_per_slot) out.feasible = false;
    }

    const NestedLevelProfile& outer = out.levels.front();
    const NestedLevelSpec& ospec = specs.front();
    const double io = ospec.p * ospec.k * ospec.k
        + ospec.k * ospec.alpha * ospec.p * ospec.k;
    out.net_arithmetic_intensity = outer.block_volume / io;
    return out;
}

}  // namespace model
}  // namespace cake
