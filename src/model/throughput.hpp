// Whole-problem performance prediction for CAKE and GOTO on a described
// machine: the engine behind the reproduction of Figs. 8-12 (multi-core
// curves that a single-core host cannot measure directly).
//
// The prediction takes the three resource limits the paper analyses —
// compute throughput, external (DRAM) bandwidth, and internal (LLC<->core)
// bandwidth — computes the time each would impose, and takes the maximum
// (block IO overlaps compute by CB-block construction, §2.1).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "core/schedule.hpp"
#include "core/tiling.hpp"
#include "machine/machine.hpp"

namespace cake {
namespace model {

/// External-memory traffic of a full CAKE run, from walking the actual
/// block schedule with surface sharing (mirrors CakeGemm's bookkeeping;
/// tests assert the two agree exactly).
struct TrafficSummary {
    std::uint64_t dram_read_bytes = 0;
    std::uint64_t dram_write_bytes = 0;
    /// Subset of the above that is partial-result read-modify-write
    /// round-trip traffic — charged at MachineSpec::rmw_bw_gbs() because
    /// RMW streams run latency-bound on some memory systems (§4.1).
    std::uint64_t c_rmw_bytes = 0;
    index_t a_packs = 0;
    index_t b_packs = 0;
    index_t c_flushes = 0;

    [[nodiscard]] std::uint64_t total_bytes() const
    {
        return dram_read_bytes + dram_write_bytes;
    }
};

/// Walk the CB-block schedule for `shape` and tally external traffic.
TrafficSummary cake_traffic(const GemmShape& shape,
                            const CbBlockParams& params,
                            ScheduleKind kind = ScheduleKind::kKFirstSerpentine,
                            bool accumulate = false);

/// Tally GOTO's external traffic for `shape` with panel sizes mc=kc, nc.
TrafficSummary goto_traffic(const GemmShape& shape, index_t mc, index_t nc,
                            bool accumulate = false);

/// Performance prediction for one configuration.
struct Prediction {
    double seconds = 0;
    double gflops = 0;
    double avg_dram_bw_gbs = 0;       ///< traffic spread over predicted time
    std::uint64_t dram_bytes = 0;
    double internal_bytes = 0;
    double t_compute = 0;             ///< compute-limited time
    double t_dram = 0;                ///< DRAM-bandwidth-limited time
    double t_internal = 0;            ///< internal-bandwidth-limited time
    std::string bound;                ///< "compute" | "dram" | "internal"
    CbBlockParams cake_params;        ///< populated for CAKE predictions
};

/// Register-tile shape assumed by the model (the paper's BLIS kernels are
/// AVX2-class 6x16).
struct KernelShape {
    index_t mr = 6;
    index_t nr = 16;
};

/// Predict a CAKE run of `shape` on `machine` with `p` cores.
Prediction predict_cake(const MachineSpec& machine, int p,
                        const GemmShape& shape, KernelShape kernel = {},
                        const TilingOptions& topts = {});

/// Predict a GOTO run (the MKL/ARMPL/OpenBLAS stand-in).
Prediction predict_goto(const MachineSpec& machine, int p,
                        const GemmShape& shape, KernelShape kernel = {});

}  // namespace model
}  // namespace cake
