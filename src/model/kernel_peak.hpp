// Static per-kernel throughput bounds derived from the kernel IR
// (kernel/kernel_ir.hpp): the compute roof each micro-kernel's dataflow
// permits, published on the roofline beside the measured operating point
// (bench_roofline) and committed as the host-independent
// BENCH_kernel_peak.json baseline.
//
// The bound is the classical latency/parallelism argument. One k-step
// updates each accumulator `chain_updates` times, so the loop carries
// acc_regs / chain_updates independent dependency chains; with an FMA
// latency of L cycles on P ports, the machine needs L * P chains in
// flight to saturate the ports. Utilisation is therefore
//
//     min(1, (acc_regs / chain_updates) / (L * P))
//
// and the per-core roof, in operations per cycle (= GFLOP/s per GHz), is
//
//     2 * lanes * quad * P * utilisation
//
// (2 for multiply+add; quad > 1 for the int8 dot-quad idiom, whose
// "flops" are int ops). The pipe constants are a deliberate coarse model
// (Skylake-class FMA latency 4, 2 ports; latency-1 integer adds carry the
// int8 chains) — an upper bound, not a prediction: real kernels also pay
// loads, broadcasts and loop overhead. The verifier (KIR_THROUGHPUT)
// pins chain_updates to the IR's actual dataflow, so the bound cannot be
// inflated by under-declaring the chain depth.
//
// Release code, like the rest of src/model: the numbers feed benches and
// the tuner report; the proof that they are honest lives in
// analysis/kernelcheck.
#pragma once

#include <string>
#include <vector>

#include "kernel/kernel_ir.hpp"

namespace cake {
namespace model {

/// Pipe model for one (family, ISA): FMA/accumulate latency and issue
/// ports. Scalar kernels are modelled single-ported — their stack tile
/// round-trips through L1, so the port-2 fast path is not theirs.
struct KirPipeModel {
    int latency = 1;
    int ports = 1;
};

KirPipeModel kir_pipe_model(const std::string& family, Isa isa);

/// One roofline row: the static compute roof of one registered kernel.
struct KernelPeakRow {
    std::string kernel;
    std::string family;
    Isa isa = Isa::kScalar;
    index_t mr = 0;
    index_t nr = 0;
    int lanes = 1;
    int regs_used = 0;
    int reg_budget = 0;
    int chain_updates = 1;
    double independent_chains = 0;  ///< acc_regs / chain_updates
    double utilization = 0;         ///< min(1, chains / (latency * ports))
    double ops_per_cycle = 0;       ///< per-core ops/cycle = GFLOP/s per GHz
};

/// Derive the static bound row for one IR.
KernelPeakRow kernel_peak_row(const KernelIr& ir);

/// Rows for every compiled kernel (all_kernel_irs() order): pure
/// descriptor arithmetic, identical on every host that compiled the same
/// kernel set.
std::vector<KernelPeakRow> kernel_peak_table();

/// Per-core static peak at `freq_ghz`, in GFLOP/s (int-GOP/s for i8).
double kernel_peak_gflops(const KernelIr& ir, double freq_ghz);

}  // namespace model
}  // namespace cake
