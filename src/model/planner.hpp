// Planner: the "no design search" user-facing API. Given a machine and a
// problem, return the analytically derived execution plan — CB geometry,
// predicted time/throughput, the binding resource, and the recommended
// core count (more cores stop paying once internal bandwidth or block
// quantisation bites).
#pragma once

#include <string>

#include "core/tiling.hpp"
#include "machine/machine.hpp"
#include "model/throughput.hpp"

namespace cake {
namespace model {

/// A complete execution plan for one GEMM.
struct CakePlan {
    CbBlockParams params;      ///< solved CB-block geometry
    int cores = 1;             ///< cores the plan uses
    Prediction prediction;     ///< predicted time / GFLOP/s / bound
    double speedup_vs_1core = 1.0;
    std::string summary;       ///< one-line human-readable description
};

/// Plan `shape` on `machine` with a fixed core count.
CakePlan make_plan(const MachineSpec& machine, int p, const GemmShape& shape,
                   KernelShape kernel = {});

/// Choose the core count in [1, machine.cores] with the highest predicted
/// throughput; prefers fewer cores on ties within `tolerance` (fraction),
/// since extra cores that add nothing still cost power.
CakePlan recommend_plan(const MachineSpec& machine, const GemmShape& shape,
                        KernelShape kernel = {}, double tolerance = 0.02);

}  // namespace model
}  // namespace cake
