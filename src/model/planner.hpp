// Planner: the "no design search" user-facing API. Given a machine and a
// problem, return the analytically derived execution plan — CB geometry,
// predicted time/throughput, the binding resource, and the recommended
// core count (more cores stop paying once internal bandwidth or block
// quantisation bites).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan_source.hpp"
#include "core/tiling.hpp"
#include "machine/machine.hpp"
#include "model/throughput.hpp"

namespace cake {
namespace model {

/// A complete execution plan for one GEMM.
struct CakePlan {
    CbBlockParams params;      ///< solved CB-block geometry
    int cores = 1;             ///< cores the plan uses
    /// Block traversal recommend_schedule() picks for this geometry
    /// (callers copy it into CakeOptions::schedule).
    ScheduleKind schedule = ScheduleKind::kKFirstSerpentine;
    Prediction prediction;     ///< predicted time / GFLOP/s / bound
    double speedup_vs_1core = 1.0;
    bool tuned = false;        ///< geometry came from a TunedPlanSource
    std::string summary;       ///< one-line human-readable description
};

/// Plan `shape` on `machine` with a fixed core count. `topts` forces
/// solver knobs (mc/kc/nc/alpha), e.g. to model a tuned configuration.
CakePlan make_plan(const MachineSpec& machine, int p, const GemmShape& shape,
                   KernelShape kernel = {}, const TilingOptions& topts = {});

/// Choose the core count in [1, machine.cores] with the highest predicted
/// throughput; prefers fewer cores on ties within `tolerance` (fraction),
/// since extra cores that add nothing still cost power.
CakePlan recommend_plan(const MachineSpec& machine, const GemmShape& shape,
                        KernelShape kernel = {}, double tolerance = 0.02);

/// Same, but consult `source` (the tuning cache) first: when it has an
/// empirically measured winner for this shape, adopt its geometry and
/// worker count verbatim (it beat the analytic plan on real hardware —
/// the model is not re-ranked above the measurement) and only fall back
/// to the analytic search on a miss. `elem_bytes` keys the lookup
/// (4 = f32, 8 = f64). nullptr source degrades to recommend_plan.
/// (Deliberately NOT an overload of recommend_plan: a braced `{}` kernel
/// argument would make calls like recommend_plan(m, s, {}, 0.05)
/// ambiguous between KernelShape and the source pointer.)
CakePlan recommend_tuned_plan(const MachineSpec& machine,
                              const GemmShape& shape,
                              const TunedPlanSource* source,
                              index_t elem_bytes, KernelShape kernel = {},
                              double tolerance = 0.02);

/// Closed-form DRAM traffic of one schedule kind at a solved geometry:
/// the Eq. 2 fetch/spill walk of build_block_plan, byte-weighted with
/// edge-block clipping and beta = 0 — the same totals the schedule IR's
/// IR_IO_MODEL rewalk and the locality analyzer's LOC_TRAFFIC prediction
/// pin byte-exactly (src/analysis/locality.hpp).
struct ScheduleTrafficRow {
    ScheduleKind schedule = ScheduleKind::kKFirstSerpentine;
    std::uint64_t dram_bytes = 0;  ///< external reads + writes
    index_t shared_steps = 0;      ///< transitions carrying >= 1 surface
    index_t c_spills = 0;          ///< partial-C writeback+reload round trips
};

/// One row per all_schedule_kinds() entry, sorted fewest-bytes first;
/// ties keep registry order, so the paper's serpentine wins them.
std::vector<ScheduleTrafficRow> schedule_traffic_table(
    const GemmShape& shape, const CbBlockParams& params);

/// The decision rule the locality analyzer's traffic table induces
/// (DESIGN.md §13): the schedule kind with the least predicted DRAM
/// traffic for this plan, ties broken toward the paper's serpentine.
/// Consumed by make_plan/recommend_plan (CakePlan::schedule) and the
/// tuner's stage-2 candidate ordering.
ScheduleKind recommend_schedule(const GemmShape& shape,
                                const CbBlockParams& params);

/// One plan configuration with the model's prediction recorded next to a
/// real measurement of the same configuration (the tuner produces these).
struct MeasuredPlanPoint {
    std::string label;             ///< candidate description, e.g. "mc=96 kc=64"
    double predicted_gflops = 0;   ///< Eq. 2 / §4.3 model's ranking input
    double measured_gflops = 0;    ///< min-of-N wall-clock measurement
};

/// A pair of configurations the analytic model ranks one way and the
/// hardware ranks the other — exactly the shapes where empirical tuning
/// pays and where the model needs calibration attention.
struct RankingFlip {
    MeasuredPlanPoint preferred_by_model;    ///< higher predicted_gflops
    MeasuredPlanPoint preferred_by_machine;  ///< higher measured_gflops
};

/// Where the model's ranking of a candidate set disagrees with reality.
struct DisagreementReport {
    std::vector<RankingFlip> flips;

    [[nodiscard]] bool agree() const { return flips.empty(); }
};

/// Compare the model's ranking of `points` against the measured ranking.
/// A pair flips when the model prefers A over B beyond `tolerance`
/// (fractional) while the measurement prefers B over A beyond it — small
/// differences inside the band are treated as ties, not disagreements.
DisagreementReport compare_rankings(
    const std::vector<MeasuredPlanPoint>& points, double tolerance = 0.02);

}  // namespace model
}  // namespace cake
