#include "model/kernel_peak.hpp"

#include <algorithm>

namespace cake {
namespace model {

KirPipeModel kir_pipe_model(const std::string& family, Isa isa)
{
    if (family == "i8") {
        // The accumulator-carried op is a latency-1 vector int add (the
        // maddubs/madd pair hangs off the B load, not the chain).
        return isa == Isa::kScalar ? KirPipeModel{1, 1} : KirPipeModel{1, 2};
    }
    // Skylake-class FMA: 4-cycle latency, dual-ported for the SIMD
    // kernels; the scalar kernels' stack tile keeps them off the fast
    // path, modelled single-ported.
    return isa == Isa::kScalar ? KirPipeModel{4, 1} : KirPipeModel{4, 2};
}

KernelPeakRow kernel_peak_row(const KernelIr& ir)
{
    KernelPeakRow row;
    row.kernel = ir.kernel;
    row.family = ir.family;
    row.isa = ir.isa;
    row.mr = ir.mr;
    row.nr = ir.nr;
    row.lanes = ir.lanes;
    row.regs_used = ir.regs_used();
    row.reg_budget = ir.reg_budget;
    row.chain_updates = ir.chain_updates;
    const KirPipeModel pipe = kir_pipe_model(ir.family, ir.isa);
    row.independent_chains = ir.chain_updates > 0
        ? static_cast<double>(ir.acc_regs) / ir.chain_updates
        : 0.0;
    const double needed = static_cast<double>(pipe.latency) * pipe.ports;
    row.utilization =
        needed > 0 ? std::min(1.0, row.independent_chains / needed) : 0.0;
    row.ops_per_cycle = 2.0 * ir.lanes * ir.quad * pipe.ports
        * row.utilization;
    return row;
}

std::vector<KernelPeakRow> kernel_peak_table()
{
    std::vector<KernelPeakRow> rows;
    for (const KernelIr& ir : all_kernel_irs()) {
        rows.push_back(kernel_peak_row(ir));
    }
    return rows;
}

double kernel_peak_gflops(const KernelIr& ir, double freq_ghz)
{
    return kernel_peak_row(ir).ops_per_cycle * freq_ghz;
}

}  // namespace model
}  // namespace cake
