#include "model/planner.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "core/block_plan.hpp"

namespace cake {
namespace model {

std::vector<ScheduleTrafficRow> schedule_traffic_table(
    const GemmShape& shape, const CbBlockParams& params)
{
    // Grid extents: same ceil-divide as the executors and fperror.
    const auto grid = [](index_t extent, index_t blk) {
        if (blk < 1) return index_t{1};
        const index_t b = (extent + blk - 1) / blk;
        return b < 1 ? index_t{1} : b;
    };
    BlockPlanInputs in;
    in.params = params;
    in.m = shape.m;
    in.n = shape.n;
    in.k = shape.k;
    in.ldc = shape.n;
    in.nb = grid(shape.n, params.n_blk);
    in.kb = grid(shape.k, params.k_blk);
    const index_t mb = grid(shape.m, params.m_blk);

    std::vector<ScheduleTrafficRow> rows;
    rows.reserve(all_schedule_kinds().size());
    for (const ScheduleKind kind : all_schedule_kinds()) {
        const auto order = build_schedule(kind, mb, in.nb, in.kb,
                                          /*n_outermost=*/shape.n >= shape.m);
        // build_block_plan is the executors' own accounting — the ranking
        // ranks exactly the traffic the runtime would incur.
        const BlockPlan plan = build_block_plan(order, in);
        ScheduleTrafficRow row;
        row.schedule = kind;
        row.dram_bytes =
            plan.stats.dram_read_bytes + plan.stats.dram_write_bytes;
        row.shared_steps = count_shared_steps(order);
        row.c_spills = plan.stats.c_partial_spills;
        rows.push_back(row);
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const ScheduleTrafficRow& a,
                        const ScheduleTrafficRow& b) {
                         return a.dram_bytes < b.dram_bytes;
                     });
    return rows;
}

ScheduleKind recommend_schedule(const GemmShape& shape,
                                const CbBlockParams& params)
{
    return schedule_traffic_table(shape, params).front().schedule;
}

CakePlan make_plan(const MachineSpec& machine, int p, const GemmShape& shape,
                   KernelShape kernel, const TilingOptions& topts)
{
    CAKE_CHECK(p >= 1);
    CakePlan plan;
    plan.cores = p;
    plan.prediction = predict_cake(machine, p, shape, kernel, topts);
    plan.params = plan.prediction.cake_params;
    plan.schedule = recommend_schedule(shape, plan.params);
    const Prediction base = predict_cake(machine, 1, shape, kernel, topts);
    plan.speedup_vs_1core =
        base.seconds > 0 ? base.seconds / plan.prediction.seconds : 1.0;

    std::ostringstream os;
    os << "CB block " << plan.params.m_blk << "x" << plan.params.k_blk << "x"
       << plan.params.n_blk << " (mc=" << plan.params.mc
       << ", alpha=" << plan.params.alpha << ", "
       << schedule_kind_name(plan.schedule) << ") on " << p << " core(s): "
       << plan.prediction.gflops << " GFLOP/s predicted, "
       << plan.prediction.bound << "-bound, "
       << plan.prediction.avg_dram_bw_gbs << " GB/s DRAM";
    plan.summary = os.str();
    return plan;
}

CakePlan recommend_plan(const MachineSpec& machine, const GemmShape& shape,
                        KernelShape kernel, double tolerance)
{
    CAKE_CHECK(machine.cores >= 1);
    CakePlan best = make_plan(machine, 1, shape, kernel);
    for (int p = 2; p <= machine.cores; ++p) {
        CakePlan candidate = make_plan(machine, p, shape, kernel);
        // Strictly-better beyond the tolerance band wins; otherwise keep
        // the cheaper (fewer-core) plan.
        if (candidate.prediction.gflops
            > best.prediction.gflops * (1.0 + tolerance)) {
            best = std::move(candidate);
        }
    }
    return best;
}

CakePlan recommend_tuned_plan(const MachineSpec& machine,
                              const GemmShape& shape,
                              const TunedPlanSource* source,
                              index_t elem_bytes, KernelShape kernel,
                              double tolerance)
{
    if (source != nullptr) {
        PlanRequest req;
        req.m = shape.m;
        req.n = shape.n;
        req.k = shape.k;
        req.elem_bytes = elem_bytes;
        req.p = machine.cores;
        if (const auto tuned = source->lookup(req)) {
            // The cache's winner was measured faster than the analytic
            // plan on this hardware; adopt its geometry verbatim and let
            // the model annotate (not veto) it.
            TilingOptions topts;
            topts.mc = tuned->mc;
            topts.kc = tuned->kc;
            topts.nc = tuned->nc;
            if (!tuned->nc) topts.alpha = tuned->alpha;
            topts.elem_bytes = elem_bytes;
            const int p = tuned->p
                ? std::clamp(*tuned->p, 1, machine.cores)
                : machine.cores;
            CakePlan plan = make_plan(machine, p, shape, kernel, topts);
            plan.tuned = true;
            plan.summary += " [tuned]";
            return plan;
        }
    }
    return recommend_plan(machine, shape, kernel, tolerance);
}

DisagreementReport compare_rankings(
    const std::vector<MeasuredPlanPoint>& points, double tolerance)
{
    DisagreementReport report;
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = i + 1; j < points.size(); ++j) {
            const MeasuredPlanPoint& a = points[i];
            const MeasuredPlanPoint& b = points[j];
            const bool model_prefers_a =
                a.predicted_gflops > b.predicted_gflops * (1.0 + tolerance);
            const bool model_prefers_b =
                b.predicted_gflops > a.predicted_gflops * (1.0 + tolerance);
            const bool hw_prefers_a =
                a.measured_gflops > b.measured_gflops * (1.0 + tolerance);
            const bool hw_prefers_b =
                b.measured_gflops > a.measured_gflops * (1.0 + tolerance);
            if (model_prefers_a && hw_prefers_b) {
                report.flips.push_back({a, b});
            } else if (model_prefers_b && hw_prefers_a) {
                report.flips.push_back({b, a});
            }
        }
    }
    return report;
}

}  // namespace model
}  // namespace cake
