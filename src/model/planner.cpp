#include "model/planner.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cake {
namespace model {

CakePlan make_plan(const MachineSpec& machine, int p, const GemmShape& shape,
                   KernelShape kernel)
{
    CAKE_CHECK(p >= 1);
    CakePlan plan;
    plan.cores = p;
    plan.prediction = predict_cake(machine, p, shape, kernel);
    plan.params = plan.prediction.cake_params;
    const Prediction base = predict_cake(machine, 1, shape, kernel);
    plan.speedup_vs_1core =
        base.seconds > 0 ? base.seconds / plan.prediction.seconds : 1.0;

    std::ostringstream os;
    os << "CB block " << plan.params.m_blk << "x" << plan.params.k_blk << "x"
       << plan.params.n_blk << " (mc=" << plan.params.mc
       << ", alpha=" << plan.params.alpha << ") on " << p << " core(s): "
       << plan.prediction.gflops << " GFLOP/s predicted, "
       << plan.prediction.bound << "-bound, "
       << plan.prediction.avg_dram_bw_gbs << " GB/s DRAM";
    plan.summary = os.str();
    return plan;
}

CakePlan recommend_plan(const MachineSpec& machine, const GemmShape& shape,
                        KernelShape kernel, double tolerance)
{
    CAKE_CHECK(machine.cores >= 1);
    CakePlan best = make_plan(machine, 1, shape, kernel);
    for (int p = 2; p <= machine.cores; ++p) {
        CakePlan candidate = make_plan(machine, p, shape, kernel);
        // Strictly-better beyond the tolerance band wins; otherwise keep
        // the cheaper (fewer-core) plan.
        if (candidate.prediction.gflops
            > best.prediction.gflops * (1.0 + tolerance)) {
            best = std::move(candidate);
        }
    }
    return best;
}

}  // namespace model
}  // namespace cake
