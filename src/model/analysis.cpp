#include "model/analysis.hpp"

#include "common/error.hpp"

namespace cake {
namespace model {

double mem_internal_tiles(double alpha, double p, double k)
{
    CAKE_CHECK(alpha >= 1.0 && p >= 1.0 && k >= 1.0);
    return alpha * p * k * k + p * k * k + alpha * p * p * k * k;
}

double bw_min_tiles_per_cycle(double alpha, double k)
{
    CAKE_CHECK(alpha >= 1.0 && k >= 1.0);
    return (alpha + 1.0) / alpha * k;
}

double alpha_from_ratio(double r)
{
    CAKE_CHECK_MSG(r > 1.0, "need external BW ratio R > 1, got R=" << r);
    return 1.0 / (r - 1.0);
}

double bw_internal_tiles_per_cycle(double alpha, double p, double k)
{
    return bw_min_tiles_per_cycle(alpha, k) + 2.0 * p * k;
}

double goto_ext_bw(double p, double kc, double nc, double mr, double nr)
{
    CAKE_CHECK(p >= 1.0 && kc >= 1.0 && nc >= 1.0);
    return (1.0 + p + (kc / nc) * p) * mr * nr;
}

double cake_ext_bw(double alpha, double mr, double nr)
{
    CAKE_CHECK(alpha >= 1.0);
    return (alpha + 1.0) / alpha * mr * nr;
}

double cake_local_mem(double p, double mc, double kc, double alpha)
{
    return p * mc * kc * (alpha + 1.0) + alpha * p * p * mc * mc;
}

double cake_int_bw(double p, double alpha, double mr, double nr)
{
    CAKE_CHECK(alpha >= 1.0);
    return (2.0 * p + 1.0 / alpha + 1.0) * mr * nr;
}

double cb_arithmetic_intensity(double m, double k, double n)
{
    return m * k * n / (m * k + k * n);
}

}  // namespace model
}  // namespace cake
