#include "model/direction.hpp"

#include "common/error.hpp"

namespace cake {
namespace model {

const char* compute_dim_name(ComputeDim dim)
{
    switch (dim) {
        case ComputeDim::kN: return "N-direction";
        case ComputeDim::kM: return "M-direction";
        case ComputeDim::kK: return "K-direction";
    }
    return "unknown";
}

DirectionProfile analyze_direction(ComputeDim dim, double alpha, double p,
                                   double k)
{
    CAKE_CHECK(alpha >= 1.0 && p >= 1.0 && k >= 1.0);
    DirectionProfile d;
    d.dim = dim;
    switch (dim) {
        case ComputeDim::kN:
            // Stationary A (p*k^2 tiles = cores), stream B along N.
            d.m = p * k;
            d.k = k;
            d.n = alpha * p * k;
            d.time = d.n;
            d.io_in = d.m * d.k + d.k * d.n;      // A + B
            d.io_out = d.m * d.n;                 // C, once per reduction
            d.local_mem = d.m * d.k + d.k * d.n + d.m * d.n;  // Eq. 1
            break;
        case ComputeDim::kM:
            // Stationary B (p*k^2 tiles = cores), stream A along M.
            d.m = alpha * p * k;
            d.k = k;
            d.n = p * k;
            d.time = d.m;
            d.io_in = d.m * d.k + d.k * d.n;
            d.io_out = d.m * d.n;
            d.local_mem = d.m * d.k + d.k * d.n + d.m * d.n;
            break;
        case ComputeDim::kK:
            // Stationary C (p*k^2 tiles = cores), stream A and B along the
            // alpha-stretched reduction dimension: in-place accumulation,
            // zero result bandwidth during the block.
            d.m = p * k;
            d.n = k;
            d.k = alpha * p * k;
            d.time = d.k;
            d.io_in = d.m * d.k + d.k * d.n;
            d.io_out = 0.0;  // partial results never leave the cores
            // Resident: the C surface plus one streamed A column and one
            // streamed B row (inputs are single-use, no full residency).
            d.local_mem = d.m * d.n + d.m + d.n;
            break;
    }
    d.bw_in = d.io_in / d.time;
    // N/M-direction result surfaces are written back once per completed
    // reduction; the isolated-block view charges them over this block's
    // time (K-first scheduling amortises this by the K-chain length).
    d.bw_out = d.io_out / d.time;
    return d;
}

ComputeDim best_direction(double alpha, double p, double k,
                          double write_cost_factor)
{
    CAKE_CHECK(write_cost_factor >= 0.0);
    ComputeDim best = ComputeDim::kN;
    double best_cost = 0.0;
    for (ComputeDim dim :
         {ComputeDim::kN, ComputeDim::kM, ComputeDim::kK}) {
        const DirectionProfile d = analyze_direction(dim, alpha, p, k);
        const double cost = d.bw_in + write_cost_factor * d.bw_out;
        if (dim == ComputeDim::kN || cost < best_cost) {
            best = dim;
            best_cost = cost;
        }
    }
    return best;
}

}  // namespace model
}  // namespace cake
