// The paper's closed-form resource equations (§3.1-§3.3, §4.1-§4.2), in the
// paper's own unitless tile/cycle terms. These power Fig. 4 (the
// constant-bandwidth property) and the optimal-bandwidth dashed curves of
// Figs. 10a/11a.
#pragma once

#include "common/types.hpp"

namespace cake {
namespace model {

/// Eq. 1 — internal memory needed by a CB block, in tiles:
/// MEM_internal = alpha*p*k^2 + p*k^2 + alpha*p^2*k^2.
double mem_internal_tiles(double alpha, double p, double k);

/// Eq. 2 — minimum external bandwidth of a CB block, tiles/cycle:
/// BW_min = ((alpha + 1)/alpha) * k.
double bw_min_tiles_per_cycle(double alpha, double k);

/// §3.2 — smallest alpha satisfying BW_ext = R*k >= BW_min, i.e.
/// alpha >= 1/(R - 1). Requires R > 1.
double alpha_from_ratio(double r);

/// Eq. 3 — internal (local-memory) bandwidth requirement, tiles/cycle:
/// (IO_A + IO_B + 2*IO_C) / T = ((alpha+1)/alpha)*k + 2*p*k.
double bw_internal_tiles_per_cycle(double alpha, double p, double k);

/// §4.1 — GOTO's external DRAM bandwidth when using p cores, in
/// elements/unit-time: BW = (1 + p + (kc/nc)*p) * mr * nr.
double goto_ext_bw(double p, double kc, double nc, double mr, double nr);

/// Eq. 4 — CAKE's external DRAM bandwidth on the CPU model, in
/// elements/unit-time: BW = ((alpha + 1)/alpha) * mr * nr.
/// Independent of p: the constant-bandwidth property.
double cake_ext_bw(double alpha, double mr, double nr);

/// Eq. 5 — CAKE local-memory requirement on the CPU model, elements:
/// MEM = p*mc*kc*(alpha + 1) + alpha*p^2*mc^2.
double cake_local_mem(double p, double mc, double kc, double alpha);

/// Eq. 6 — CAKE internal bandwidth requirement on the CPU model,
/// elements/unit-time: BW = (2*p + 1/alpha + 1) * mr * nr.
double cake_int_bw(double p, double alpha, double mr, double nr);

/// Arithmetic intensity of a CB block (Fig. 4): V / IO where V is the MAC
/// volume m*k*n and IO the two input surfaces (partial C stays local).
double cb_arithmetic_intensity(double m, double k, double n);

}  // namespace model
}  // namespace cake
