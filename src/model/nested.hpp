// Multi-level CB blocks: the paper's opening claim that CB blocks can
// operate "from within any memory hierarchy level" (§1) made concrete.
// Apply the §3 shaping recursively: the level-i CB block is the "external
// memory" of the level-(i+1) CB block nested inside it. Each level i has
// its own (p_i, k_i, alpha_i); the bandwidth its block demands from the
// level above (Eq. 2) must be supplied by that level's internal bandwidth
// (Eq. 3) — chaining these inequalities yields a whole-hierarchy
// feasibility check.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cake {
namespace model {

/// One level of the nested CB hierarchy (outermost first).
struct NestedLevelSpec {
    double p = 1;      ///< core-scaling factor at this level
    double k = 1;      ///< base tile count at this level
    double alpha = 1;  ///< stretch factor at this level (>= 1)
};

/// Resource profile of one level in the nest.
struct NestedLevelProfile {
    double block_volume = 0;    ///< MACs per block (tile units)
    double time = 0;            ///< unit-times per block
    double bw_demand_up = 0;    ///< bandwidth demanded from the level above
                                ///< (Eq. 2: ((alpha+1)/alpha)*k)
    double bw_demand_down = 0;  ///< bandwidth this level must supply to the
                                ///< level below (Eq. 3: demand_up + 2pk)
    double mem_required = 0;    ///< local memory at this level (Eq. 1)
};

/// Full-hierarchy analysis: profile every level and check the chaining
/// condition — level i's downward supply (Eq. 3) must at least cover
/// level i+1's upward demand (Eq. 2) scaled by the compute-rate ratio.
struct NestedAnalysis {
    std::vector<NestedLevelProfile> levels;
    bool feasible = true;        ///< all chaining conditions hold
    double total_cores = 1;      ///< product of p_i * k_i^2
    double net_arithmetic_intensity = 0;  ///< outermost block V / IO
};

/// Analyse a nest of CB blocks (outermost level first). Requires at least
/// one level; alphas >= 1.
NestedAnalysis analyze_nested(const std::vector<NestedLevelSpec>& specs);

}  // namespace model
}  // namespace cake
