#include "model/throughput.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "gotoblas/goto_gemm.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace model {
namespace {

index_t block_extent(index_t idx, index_t blk, index_t total)
{
    return std::min(blk, total - idx * blk);
}

}  // namespace

TrafficSummary cake_traffic(const GemmShape& shape,
                            const CbBlockParams& params, ScheduleKind kind,
                            bool accumulate)
{
    TrafficSummary t;
    if (shape.m == 0 || shape.n == 0 || shape.k == 0) return t;

    const index_t mb = ceil_div(shape.m, params.m_blk);
    const index_t nb = ceil_div(shape.n, params.n_blk);
    const index_t kb = ceil_div(shape.k, params.k_blk);
    const auto order =
        build_schedule(kind, mb, nb, kb, /*n_outermost=*/shape.n >= shape.m);

    std::vector<char> flushed(static_cast<std::size_t>(mb * nb), 0);
    BlockCoord last{-1, -1, -1};
    bool have_last = false;
    index_t cur_mi = 0, cur_ni = 0;

    auto flush = [&](const BlockCoord& coord, index_t mi, index_t ni) {
        const std::size_t slot =
            static_cast<std::size_t>(coord.m * nb + coord.n);
        const bool acc = accumulate || flushed[slot] != 0;
        const auto bytes = static_cast<std::uint64_t>(mi)
            * static_cast<std::uint64_t>(ni) * sizeof(float);
        t.dram_write_bytes += bytes;
        if (acc) {
            t.dram_read_bytes += bytes;
            t.c_rmw_bytes += 2 * bytes;  // read + write round trip
        }
        flushed[slot] = 1;
        ++t.c_flushes;
    };

    for (const BlockCoord& coord : order) {
        const index_t mi = block_extent(coord.m, params.m_blk, shape.m);
        const index_t ni = block_extent(coord.n, params.n_blk, shape.n);
        const index_t ki = block_extent(coord.k, params.k_blk, shape.k);

        const bool a_shared =
            have_last && last.m == coord.m && last.k == coord.k;
        if (!a_shared) {
            ++t.a_packs;
            t.dram_read_bytes +=
                static_cast<std::uint64_t>(mi) * ki * sizeof(float);
        }
        const bool b_shared =
            have_last && last.k == coord.k && last.n == coord.n;
        if (!b_shared) {
            ++t.b_packs;
            t.dram_read_bytes +=
                static_cast<std::uint64_t>(ki) * ni * sizeof(float);
        }
        const bool c_shared =
            have_last && last.m == coord.m && last.n == coord.n;
        if (!c_shared) {
            if (have_last) flush(last, cur_mi, cur_ni);
            const std::size_t slot =
                static_cast<std::size_t>(coord.m * nb + coord.n);
            if (flushed[slot] != 0) {
                t.dram_read_bytes +=
                    static_cast<std::uint64_t>(mi) * ni * sizeof(float);
            }
            cur_mi = mi;
            cur_ni = ni;
        }
        last = coord;
        have_last = true;
    }
    if (have_last) flush(last, cur_mi, cur_ni);
    return t;
}

TrafficSummary goto_traffic(const GemmShape& shape, index_t mc, index_t nc,
                            bool accumulate)
{
    TrafficSummary t;
    if (shape.m == 0 || shape.n == 0 || shape.k == 0) return t;
    const index_t kc = mc;
    for (index_t jc = 0; jc < shape.n; jc += nc) {
        const index_t ncur = std::min(nc, shape.n - jc);
        for (index_t pc = 0; pc < shape.k; pc += kc) {
            const index_t kcur = std::min(kc, shape.k - pc);
            const bool acc = accumulate || pc > 0;
            ++t.b_packs;
            t.dram_read_bytes +=
                static_cast<std::uint64_t>(kcur) * ncur * sizeof(float);
            t.a_packs += ceil_div(shape.m, mc);
            t.dram_read_bytes +=
                static_cast<std::uint64_t>(shape.m) * kcur * sizeof(float);
            const auto c_bytes = static_cast<std::uint64_t>(shape.m) * ncur
                * sizeof(float);
            t.dram_write_bytes += c_bytes;
            if (acc) {
                t.dram_read_bytes += c_bytes;
                t.c_rmw_bytes += 2 * c_bytes;
            }
            ++t.c_flushes;
        }
    }
    return t;
}

namespace {

/// Internal (LLC <-> core) traffic in bytes for a macro-kernel sweep over
/// an mi x ni x ki block: every micro-kernel call streams a B sliver from
/// the LLC and reads+writes its C tile there; the A surface crosses once
/// into the private cache.
double block_internal_bytes(index_t mi, index_t ni, index_t ki,
                            const KernelShape& kernel)
{
    const double calls = static_cast<double>(ceil_div(mi, kernel.mr))
        * static_cast<double>(ceil_div(ni, kernel.nr));
    const double per_call = static_cast<double>(ki) * kernel.nr
        + 2.0 * kernel.mr * kernel.nr;
    return (calls * per_call + static_cast<double>(mi) * ki) * sizeof(float);
}

Prediction finalize(const MachineSpec& machine, int p, const GemmShape& shape,
                    std::uint64_t dram_bytes, std::uint64_t rmw_bytes,
                    double internal_bytes)
{
    Prediction pred;
    pred.dram_bytes = dram_bytes;
    pred.internal_bytes = internal_bytes;
    pred.t_compute = shape.flops() / (machine.peak_gflops(p) * 1e9);
    // Streaming traffic at peak bandwidth; partial-result RMW round trips
    // at the machine's effective RMW rate.
    pred.t_dram =
        static_cast<double>(dram_bytes - rmw_bytes)
            / (machine.dram_bw_gbs * 1e9)
        + static_cast<double>(rmw_bytes) / (machine.rmw_bw_gbs() * 1e9);
    pred.t_internal = internal_bytes / (machine.internal_bw_at(p) * 1e9);
    pred.seconds =
        std::max({pred.t_compute, pred.t_dram, pred.t_internal});
    if (pred.seconds == pred.t_compute) pred.bound = "compute";
    else if (pred.seconds == pred.t_dram) pred.bound = "dram";
    else pred.bound = "internal";
    pred.gflops = shape.flops() / pred.seconds / 1e9;
    pred.avg_dram_bw_gbs =
        static_cast<double>(dram_bytes) / pred.seconds / 1e9;
    return pred;
}

}  // namespace

Prediction predict_cake(const MachineSpec& machine, int p,
                        const GemmShape& shape, KernelShape kernel,
                        const TilingOptions& topts)
{
    CAKE_CHECK(p >= 1);
    const CbBlockParams params =
        compute_cb_block(machine, p, kernel.mr, kernel.nr, topts);
    const TrafficSummary traffic = cake_traffic(shape, params);

    const index_t mb = ceil_div(shape.m, params.m_blk);
    const index_t nb = ceil_div(shape.n, params.n_blk);
    const index_t kb = ceil_div(shape.k, params.k_blk);
    double internal = 0;
    for (index_t im = 0; im < mb; ++im) {
        const index_t mi = block_extent(im, params.m_blk, shape.m);
        for (index_t in = 0; in < nb; ++in) {
            const index_t ni = block_extent(in, params.n_blk, shape.n);
            for (index_t ik = 0; ik < kb; ++ik) {
                const index_t ki = block_extent(ik, params.k_blk, shape.k);
                internal += block_internal_bytes(mi, ni, ki, kernel);
            }
        }
    }

    Prediction pred = finalize(machine, p, shape, traffic.total_bytes(),
                               traffic.c_rmw_bytes, internal);
    pred.cake_params = params;
    return pred;
}

Prediction predict_goto(const MachineSpec& machine, int p,
                        const GemmShape& shape, KernelShape kernel)
{
    CAKE_CHECK(p >= 1);
    const GotoBlocking blocking =
        goto_default_blocking(machine, kernel.mr, kernel.nr);
    const TrafficSummary traffic =
        goto_traffic(shape, blocking.mc, blocking.nc);

    double internal = 0;
    for (index_t jc = 0; jc < shape.n; jc += blocking.nc) {
        const index_t ncur = std::min(blocking.nc, shape.n - jc);
        for (index_t pc = 0; pc < shape.k; pc += blocking.kc) {
            const index_t kcur = std::min(blocking.kc, shape.k - pc);
            for (index_t ic = 0; ic < shape.m; ic += blocking.mc) {
                const index_t mcur = std::min(blocking.mc, shape.m - ic);
                internal += block_internal_bytes(mcur, ncur, kcur, kernel);
            }
        }
    }
    return finalize(machine, p, shape, traffic.total_bytes(),
                    traffic.c_rmw_bytes, internal);
}

}  // namespace model
}  // namespace cake
