// CB-block computation directions (§3): "Alternatively, we can compute a
// CB block in the M or K-dimension... Computing CB blocks in alternative
// directions may be advantageous on certain architectures. For example,
// computing CB blocks in the K-dimension is preferable when doing in-place
// accumulation. In a future paper we will show how the same shaping
// methodology applies when computing CB blocks in the M or K-dimension."
//
// This module carries out that shaping in the paper's unitless tile terms:
//
//   * N-direction (the paper's §3 analysis): the A surface is stationary —
//     one tile per core (m*k = p*k^2 tiles) — B streams along the
//     alpha-stretched N dimension, T = n unit-times.
//   * M-direction: the roles of A and B swap — B stationary (k*n = p*k^2
//     tiles), A streams along the alpha-stretched M dimension, T = m.
//   * K-direction: the *result* surface C is stationary (m*n = p*k^2
//     tiles, one per core); A and B both stream along the alpha-stretched
//     reduction dimension, T = k'. No partial result ever moves — zero
//     output bandwidth at the price of input bandwidth that grows with p.
#pragma once

#include "common/types.hpp"

namespace cake {
namespace model {

/// Which block dimension the cores stream through.
enum class ComputeDim {
    kN,  ///< paper default: stationary A, stream B
    kM,  ///< stationary B, stream A
    kK,  ///< stationary C, stream A and B (in-place accumulation)
};

const char* compute_dim_name(ComputeDim dim);

/// Unitless shape and resource profile of a CB block computed in a given
/// direction, with p*k^2 cores, base tile count k, and stretch alpha >= 1.
struct DirectionProfile {
    ComputeDim dim = ComputeDim::kN;
    double m = 0, k = 0, n = 0;   ///< block dimensions in tiles
    double time = 0;              ///< computation time in unit-times
    double io_in = 0;             ///< input surfaces fetched (tiles)
    double io_out = 0;            ///< result surface written back (tiles)
    double bw_in = 0;             ///< input bandwidth, tiles/unit-time
    double bw_out = 0;            ///< output bandwidth, tiles/unit-time
    double local_mem = 0;         ///< tiles resident in local memory

    [[nodiscard]] double bw_total() const { return bw_in + bw_out; }
};

/// Shape and analyse a CB block computed in direction `dim`.
/// `p` scales the core count (cores = p*k^2), `alpha >= 1` stretches the
/// streamed dimension exactly as §3.2 stretches N.
DirectionProfile analyze_direction(ComputeDim dim, double alpha, double p,
                                   double k);

/// The direction with the lowest total external bandwidth for a machine
/// whose write path costs `write_cost_factor` times its read path (e.g.
/// NVM-backed memories where the paper recommends the K direction).
ComputeDim best_direction(double alpha, double p, double k,
                          double write_cost_factor);

}  // namespace model
}  // namespace cake
