#include "model/extrapolate.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace cake {
namespace model {

std::vector<double> extrapolate_series(const std::vector<double>& measured,
                                       int target_p)
{
    CAKE_CHECK(!measured.empty());
    CAKE_CHECK(target_p >= 1);
    std::vector<double> out = measured;
    if (static_cast<int>(out.size()) >= target_p) {
        out.resize(static_cast<std::size_t>(target_p));
        return out;
    }
    const auto n = static_cast<int>(measured.size());
    if (n == 1) {
        out.resize(static_cast<std::size_t>(target_p), measured[0]);
        return out;
    }
    const LineFit line = line_through(
        n - 1, measured[static_cast<std::size_t>(n - 2)], n,
        measured[static_cast<std::size_t>(n - 1)]);
    for (int p = n + 1; p <= target_p; ++p) out.push_back(line(p));
    return out;
}

MachineSpec extrapolated_machine(const MachineSpec& base, int p)
{
    CAKE_CHECK(p >= 1);
    MachineSpec m = base;
    if (p <= base.cores) return m;
    m.cores = p;
    m.internal_bw_gbs = extrapolate_series(base.internal_bw_gbs, p);
    // Local memory grows quadratically with core count (the p^2 term of
    // Eq. 1/Eq. 5 dominates the CB block).
    const double scale = static_cast<double>(p) / base.cores;
    for (auto& level : m.caches.levels) {
        if (level.shared_by_cores > 1) {
            level.size_bytes = static_cast<std::size_t>(
                static_cast<double>(level.size_bytes) * scale * scale);
            level.shared_by_cores = p;
        }
    }
    return m;
}

}  // namespace model
}  // namespace cake
