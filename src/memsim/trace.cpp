#include "memsim/trace.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace memsim {
namespace {

// Element width of the naive-ijk TLB study trace (f32). The CAKE and
// GOTO traces scale by the caller's element width instead.
constexpr std::uint32_t kF = sizeof(float);

index_t block_extent(index_t idx, index_t blk, index_t total)
{
    return std::min(blk, total - idx * blk);
}

}  // namespace

void trace_cake(const GemmShape& shape, const CbBlockParams& params,
                ScheduleKind kind, TraceSink& sink, const AddressMap& map)
{
    if (shape.m == 0 || shape.n == 0 || shape.k == 0) return;
    const int p = params.p;
    const index_t mr = params.mr;
    const index_t nr = params.nr;
    // Shadows the file-scope f32 constant: this trace is width-aware.
    const auto kF = static_cast<std::uint64_t>(params.elem_bytes);

    const index_t mb = ceil_div(shape.m, params.m_blk);
    const index_t nb = ceil_div(shape.n, params.n_blk);
    const index_t kb = ceil_div(shape.k, params.k_blk);
    const auto order =
        build_schedule(kind, mb, nb, kb, /*n_outermost=*/shape.n >= shape.m);

    std::vector<char> flushed(static_cast<std::size_t>(mb * nb), 0);
    BlockCoord last{-1, -1, -1};
    bool have_last = false;
    index_t cur_mi = 0, cur_ni = 0;

    auto core_for_row = [&](index_t r) {
        return static_cast<int>(std::min<index_t>(r / params.mc, p - 1));
    };

    auto flush = [&](const BlockCoord& coord, index_t mi, index_t ni) {
        const std::size_t slot =
            static_cast<std::size_t>(coord.m * nb + coord.n);
        const bool acc = flushed[slot] != 0;
        const index_t m0 = coord.m * params.m_blk;
        const index_t n0 = coord.n * params.n_blk;
        for (index_t r = 0; r < mi; ++r) {
            const int core = core_for_row(r);
            sink.access(core, map.c_block + static_cast<std::uint64_t>(r * ni) * kF,
                        static_cast<std::uint32_t>(ni * kF), false);
            const std::uint64_t crow =
                map.c + static_cast<std::uint64_t>((m0 + r) * shape.n + n0) * kF;
            if (acc)
                sink.access(core, crow, static_cast<std::uint32_t>(ni * kF),
                            false);
            sink.access(core, crow, static_cast<std::uint32_t>(ni * kF), true);
        }
        flushed[slot] = 1;
    };

    for (const BlockCoord& coord : order) {
        const index_t mi = block_extent(coord.m, params.m_blk, shape.m);
        const index_t ni = block_extent(coord.n, params.n_blk, shape.n);
        const index_t ki = block_extent(coord.k, params.k_blk, shape.k);
        const index_t m0 = coord.m * params.m_blk;
        const index_t n0 = coord.n * params.n_blk;
        const index_t k0 = coord.k * params.k_blk;

        // --- A surface fetch + pack (skipped when shared, §2.2) ---
        if (!(have_last && last.m == coord.m && last.k == coord.k)) {
            for (index_t r = 0; r < mi; ++r) {
                const int core = core_for_row(r);
                sink.access(core,
                            map.a
                                + static_cast<std::uint64_t>(
                                      (m0 + r) * shape.k + k0)
                                    * kF,
                            static_cast<std::uint32_t>(ki * kF), false);
                sink.access(core,
                            map.pack_a + static_cast<std::uint64_t>(r * ki) * kF,
                            static_cast<std::uint32_t>(ki * kF), true);
            }
        }
        // --- B surface fetch + pack ---
        if (!(have_last && last.k == coord.k && last.n == coord.n)) {
            for (index_t q = 0; q < ki; ++q) {
                const int core = static_cast<int>(q % p);
                sink.access(core,
                            map.b
                                + static_cast<std::uint64_t>(
                                      (k0 + q) * shape.n + n0)
                                    * kF,
                            static_cast<std::uint32_t>(ni * kF), false);
                sink.access(core,
                            map.pack_b + static_cast<std::uint64_t>(q * ni) * kF,
                            static_cast<std::uint32_t>(ni * kF), true);
            }
        }
        // --- C surface turnover ---
        if (!(have_last && last.m == coord.m && last.n == coord.n)) {
            if (have_last) flush(last, cur_mi, cur_ni);
            for (index_t r = 0; r < mi; ++r) {
                sink.access(core_for_row(r),
                            map.c_block + static_cast<std::uint64_t>(r * ni) * kF,
                            static_cast<std::uint32_t>(ni * kF), true);
            }
            cur_mi = mi;
            cur_ni = ni;
        }

        // --- block computation: per-core micro-kernel sweep (edge blocks
        // split rows evenly, mirroring the driver) ---
        const index_t band =
            round_up(ceil_div(mi, static_cast<index_t>(p)), mr);
        for (int core = 0; core < p; ++core) {
            const index_t r_begin = std::min<index_t>(core * band, mi);
            const index_t r_end = std::min<index_t>((core + 1) * band, mi);
            for (index_t r = r_begin; r < r_end; r += mr) {
                const index_t mrows = std::min(mr, r_end - r);
                const std::uint64_t a_sliver = map.pack_a
                    + static_cast<std::uint64_t>((r / mr) * mr * ki) * kF;
                for (index_t j = 0; j < ni; j += nr) {
                    const index_t ncols = std::min(nr, ni - j);
                    const std::uint64_t b_sliver = map.pack_b
                        + static_cast<std::uint64_t>((j / nr) * nr * ki) * kF;
                    sink.access(core, a_sliver,
                                static_cast<std::uint32_t>(mr * ki * kF),
                                false);
                    sink.access(core, b_sliver,
                                static_cast<std::uint32_t>(nr * ki * kF),
                                false);
                    for (index_t i = 0; i < mrows; ++i) {
                        const std::uint64_t crow = map.c_block
                            + static_cast<std::uint64_t>((r + i) * ni + j) * kF;
                        sink.access(core, crow,
                                    static_cast<std::uint32_t>(ncols * kF),
                                    false);
                        sink.access(core, crow,
                                    static_cast<std::uint32_t>(ncols * kF),
                                    true);
                    }
                }
            }
        }

        last = coord;
        have_last = true;
    }
    if (have_last) flush(last, cur_mi, cur_ni);
}

void trace_goto(const GemmShape& shape, const GotoBlocking& blocking, int p,
                index_t mr, index_t nr, index_t elem_bytes, TraceSink& sink,
                const AddressMap& map)
{
    if (shape.m == 0 || shape.n == 0 || shape.k == 0) return;
    CAKE_CHECK(p >= 1);
    CAKE_CHECK(elem_bytes >= 1);
    // Shadows the file-scope f32 constant: this trace is width-aware.
    const auto kF = static_cast<std::uint64_t>(elem_bytes);
    const index_t mc = blocking.mc;
    const index_t kc = blocking.kc;
    const index_t nc = blocking.nc;
    // Each core packs its own A block into a private region.
    const std::uint64_t pack_a_stride =
        static_cast<std::uint64_t>(packed_a_size(mc, kc, mr)) * kF;

    for (index_t jc = 0; jc < shape.n; jc += nc) {
        const index_t ncur = std::min(nc, shape.n - jc);
        for (index_t pc = 0; pc < shape.k; pc += kc) {
            const index_t kcur = std::min(kc, shape.k - pc);
            const bool acc = pc > 0;

            // B panel pack (parallelised row-wise in the driver).
            for (index_t q = 0; q < kcur; ++q) {
                const int core = static_cast<int>(q % p);
                sink.access(core,
                            map.b
                                + static_cast<std::uint64_t>(
                                      (pc + q) * shape.n + jc)
                                    * kF,
                            static_cast<std::uint32_t>(ncur * kF), false);
                sink.access(core,
                            map.pack_b + static_cast<std::uint64_t>(q * ncur) * kF,
                            static_cast<std::uint32_t>(ncur * kF), true);
            }

            for (int core = 0; core < p; ++core) {
                const std::uint64_t pa =
                    map.pack_a + static_cast<std::uint64_t>(core) * pack_a_stride;
                for (index_t ic = core * mc; ic < shape.m;
                     ic += static_cast<index_t>(p) * mc) {
                    const index_t mcur = std::min(mc, shape.m - ic);
                    // Private A block pack.
                    for (index_t r = 0; r < mcur; ++r) {
                        sink.access(core,
                                    map.a
                                        + static_cast<std::uint64_t>(
                                              (ic + r) * shape.k + pc)
                                            * kF,
                                    static_cast<std::uint32_t>(kcur * kF),
                                    false);
                        sink.access(core,
                                    pa + static_cast<std::uint64_t>(r * kcur) * kF,
                                    static_cast<std::uint32_t>(kcur * kF),
                                    true);
                    }
                    // Macro-kernel: C tiles stream to user (external) memory.
                    for (index_t ir = 0; ir < mcur; ir += mr) {
                        const index_t mrows = std::min(mr, mcur - ir);
                        const std::uint64_t a_sliver = pa
                            + static_cast<std::uint64_t>((ir / mr) * mr * kcur)
                                * kF;
                        for (index_t jr = 0; jr < ncur; jr += nr) {
                            const index_t ncols = std::min(nr, ncur - jr);
                            const std::uint64_t b_sliver = map.pack_b
                                + static_cast<std::uint64_t>(
                                      (jr / nr) * nr * kcur)
                                    * kF;
                            sink.access(core, a_sliver,
                                        static_cast<std::uint32_t>(
                                            mr * kcur * kF),
                                        false);
                            sink.access(core, b_sliver,
                                        static_cast<std::uint32_t>(
                                            nr * kcur * kF),
                                        false);
                            for (index_t i = 0; i < mrows; ++i) {
                                const std::uint64_t crow = map.c
                                    + static_cast<std::uint64_t>(
                                          (ic + ir + i) * shape.n + jc + jr)
                                        * kF;
                                if (acc)
                                    sink.access(core, crow,
                                                static_cast<std::uint32_t>(
                                                    ncols * kF),
                                                false);
                                sink.access(core, crow,
                                            static_cast<std::uint32_t>(
                                                ncols * kF),
                                            true);
                            }
                        }
                    }
                }
            }
        }
    }
}

void trace_naive_ijk(const GemmShape& shape, TraceSink& sink,
                     const AddressMap& map)
{
    for (index_t i = 0; i < shape.m; ++i) {
        for (index_t j = 0; j < shape.n; ++j) {
            // One inner product: row of A (unit stride) against a column
            // of B (stride n elements — one page per element when the row
            // exceeds a page).
            sink.access(0,
                        map.a + static_cast<std::uint64_t>(i * shape.k) * kF,
                        static_cast<std::uint32_t>(shape.k * kF), false);
            for (index_t p = 0; p < shape.k; ++p) {
                sink.access(0,
                            map.b
                                + static_cast<std::uint64_t>(p * shape.n + j)
                                    * kF,
                            kF, false);
            }
            sink.access(0,
                        map.c + static_cast<std::uint64_t>(i * shape.n + j) * kF,
                        kF, true);
        }
    }
}

TraceReport simulate_cake_memory(const MachineSpec& machine, int p,
                                 const GemmShape& shape,
                                 const TilingOptions& topts,
                                 ScheduleKind kind)
{
    // The model's kernel shape: AVX2-class 6x16 (paper's BLIS kernels).
    const CbBlockParams params = compute_cb_block(machine, p, 6, 16, topts);
    HierarchySim sim(machine, p);
    HierarchySink sink(sim);
    trace_cake(shape, params, kind, sink);
    TraceReport report;
    report.counters = sim.counters();
    report.stalls = attribute_stalls(report.counters);
    report.line_bytes = sim.line_bytes();
    return report;
}

TraceReport simulate_goto_memory(const MachineSpec& machine, int p,
                                 const GemmShape& shape)
{
    const GotoBlocking blocking = goto_default_blocking(machine, 6, 16);
    HierarchySim sim(machine, p);
    HierarchySink sink(sim);
    trace_goto(shape, blocking, p, 6, 16, /*elem_bytes=*/4, sink);
    TraceReport report;
    report.counters = sim.counters();
    report.stalls = attribute_stalls(report.counters);
    report.line_bytes = sim.line_bytes();
    return report;
}

}  // namespace memsim
}  // namespace cake
