#include "memsim/cache_sim.hpp"

#include "common/error.hpp"

namespace cake {
namespace memsim {

CacheSim::CacheSim(std::size_t size_bytes, std::size_t line_bytes, int ways)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), ways_(ways)
{
    CAKE_CHECK(size_bytes > 0 && line_bytes > 0 && ways > 0);
    sets_ = size_bytes / (line_bytes * static_cast<std::size_t>(ways));
    CAKE_CHECK_MSG(sets_ >= 1, "cache smaller than one set");
    store_.assign(sets_ * static_cast<std::size_t>(ways), Way{});
}

CacheSim::AccessResult CacheSim::access(std::uint64_t line_addr, bool write)
{
    AccessResult result;
    const std::size_t set = static_cast<std::size_t>(line_addr) % sets_;
    const std::uint64_t tag = line_addr / sets_;
    Way* base = store_.data() + set * static_cast<std::size_t>(ways_);
    ++tick_;

    Way* victim = base;
    for (int w = 0; w < ways_; ++w) {
        Way& way = base[w];
        if (way.valid && way.tag == tag) {
            way.last_use = tick_;
            way.dirty = way.dirty || write;
            result.hit = true;
            return result;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.last_use < victim->last_use) {
            victim = &way;
        }
    }

    if (victim->valid && victim->dirty) {
        result.evicted_dirty = true;
        result.evicted_line = victim->tag * sets_ + set;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->last_use = tick_;
    victim->dirty = write;
    return result;
}

void CacheSim::clear()
{
    store_.assign(store_.size(), Way{});
    tick_ = 0;
}

StallBreakdown attribute_stalls(const MemCounters& counters,
                                const StallModel& model)
{
    StallBreakdown s;
    s.l1 = static_cast<double>(counters.l1_hits) * model.l1_cycles;
    s.l2 = static_cast<double>(counters.l2_hits) * model.l2_cycles;
    s.llc = static_cast<double>(counters.llc_hits) * model.llc_cycles;
    s.dram = static_cast<double>(counters.dram_accesses) * model.dram_cycles;
    return s;
}

HierarchySim::HierarchySim(const MachineSpec& machine, int cores,
                           const TlbConfig& tlb,
                           const PrefetchConfig& prefetch)
    : cores_(cores), page_bytes_(tlb.page_bytes), prefetch_(prefetch),
      last_miss_line_(static_cast<std::size_t>(cores),
                      ~std::uint64_t{0})
{
    CAKE_CHECK(cores >= 1);
    const auto& levels = machine.caches.levels;
    CAKE_CHECK_MSG(levels.size() >= 2, "need at least L1 + one shared level");
    line_bytes_ = levels.front().line_bytes;

    // A TLB is a cache of page numbers: model each entry as a 1-byte
    // "line" so CacheSim's set/way machinery applies directly.
    for (int c = 0; c < cores; ++c) {
        tlb_.push_back(std::make_unique<CacheSim>(
            static_cast<std::size_t>(tlb.entries), 1, tlb.ways));
    }

    const CacheLevel& last = levels.back();
    llc_ = std::make_unique<CacheSim>(last.size_bytes, last.line_bytes,
                                      last.ways > 0 ? last.ways : 16);

    for (int c = 0; c < cores; ++c) {
        const CacheLevel& l1 = levels.front();
        l1_.push_back(std::make_unique<CacheSim>(
            l1.size_bytes, l1.line_bytes, l1.ways > 0 ? l1.ways : 8));
    }
    // A private middle level exists when there are >= 3 levels (the
    // desktop CPUs); on the A53 the shared L2 *is* the LLC.
    if (levels.size() >= 3) {
        has_private_l2_ = true;
        const CacheLevel& l2 = levels[1];
        for (int c = 0; c < cores; ++c) {
            l2_.push_back(std::make_unique<CacheSim>(
                l2.size_bytes, l2.line_bytes, l2.ways > 0 ? l2.ways : 8));
        }
    }
}

void HierarchySim::set_regions(std::vector<MemRegion> regions)
{
    regions_ = std::move(regions);
    region_fills_.assign(regions_.size() + 1, 0);
}

std::vector<std::pair<std::string, std::uint64_t>>
HierarchySim::dram_accesses_by_region() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (std::size_t r = 0; r < regions_.size(); ++r) {
        out.emplace_back(regions_[r].name, region_fills_[r]);
    }
    if (!regions_.empty()) {
        out.emplace_back("other", region_fills_.back());
    }
    return out;
}

void HierarchySim::access(int core, std::uint64_t addr, std::uint32_t bytes,
                          bool write)
{
    CAKE_CHECK(core >= 0 && core < cores_);
    if (bytes == 0) return;

    // Address translation first: one TLB probe per page touched.
    auto& tlb = *tlb_[static_cast<std::size_t>(core)];
    const std::uint64_t first_page = addr / page_bytes_;
    const std::uint64_t last_page = (addr + bytes - 1) / page_bytes_;
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
        if (tlb.access(page, false).hit) ++counters_.tlb_hits;
        else ++counters_.tlb_misses;
    }

    const std::uint64_t first = addr / line_bytes_;
    const std::uint64_t last = (addr + bytes - 1) / line_bytes_;
    auto& l1 = *l1_[static_cast<std::size_t>(core)];
    CacheSim* l2 =
        has_private_l2_ ? l2_[static_cast<std::size_t>(core)].get() : nullptr;

    for (std::uint64_t line = first; line <= last; ++line) {
        ++counters_.accesses;
        if (l1.access(line, write).hit) {
            ++counters_.l1_hits;
            continue;
        }
        if (l2 != nullptr) {
            const auto r2 = l2->access(line, write);
            if (r2.evicted_dirty) {
                // Dirty private-L2 victim falls back into the shared LLC.
                if (llc_->access(r2.evicted_line, true).evicted_dirty)
                    ++counters_.dram_writebacks;
            }
            if (r2.hit) {
                ++counters_.l2_hits;
                continue;
            }
        }
        const auto r3 = llc_->access(line, write);
        if (r3.evicted_dirty) ++counters_.dram_writebacks;
        const bool llc_hit = r3.hit;
        if (llc_hit) ++counters_.llc_hits;
        else {
            ++counters_.dram_accesses;
            if (!regions_.empty()) {
                const std::uint64_t byte_addr = line * line_bytes_;
                std::size_t slot = regions_.size();  // "other"
                for (std::size_t r = 0; r < regions_.size(); ++r) {
                    if (byte_addr >= regions_[r].base
                        && byte_addr < regions_[r].base + regions_[r].size) {
                        slot = r;
                        break;
                    }
                }
                ++region_fills_[slot];
            }
        }

        // Stream prefetcher: a demand miss continuing a per-core
        // sequential run pulls the next `degree` lines into the LLC.
        // The stream tracker advances on hits too, so a covered stream
        // keeps re-arming as the demand pointer catches up.
        if (prefetch_.enabled) {
            auto& last = last_miss_line_[static_cast<std::size_t>(core)];
            if (!llc_hit && line == last + 1) {
                for (int d = 1; d <= prefetch_.degree; ++d) {
                    const auto rp =
                        llc_->access(line + static_cast<std::uint64_t>(d),
                                     false);
                    if (rp.evicted_dirty) ++counters_.dram_writebacks;
                    if (!rp.hit) ++counters_.dram_prefetch_fills;
                }
            }
            last = line;
        }
    }
}

}  // namespace memsim
}  // namespace cake
