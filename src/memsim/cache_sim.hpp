// Multi-level set-associative LRU cache simulator: the portable stand-in
// for the hardware performance counters (VTune / Linux perf / AMD uProf)
// the paper uses to measure per-level hits, DRAM accesses and memory
// stalls (Fig. 7, Figs. 10a/11a/12a).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "machine/machine.hpp"

namespace cake {
namespace memsim {

/// One set-associative LRU cache instance.
class CacheSim {
public:
    CacheSim(std::size_t size_bytes, std::size_t line_bytes, int ways);

    struct AccessResult {
        bool hit = false;
        bool evicted_dirty = false;  ///< a dirty line was written back
        std::uint64_t evicted_line = 0;
    };

    /// Probe/insert one cache line (address already divided by line size).
    AccessResult access(std::uint64_t line_addr, bool write);

    /// Invalidate everything (counters are kept by the hierarchy).
    void clear();

    [[nodiscard]] std::size_t size_bytes() const { return size_bytes_; }
    [[nodiscard]] std::size_t line_bytes() const { return line_bytes_; }
    [[nodiscard]] int ways() const { return ways_; }
    [[nodiscard]] std::size_t sets() const { return sets_; }

private:
    struct Way {
        std::uint64_t tag = 0;
        std::uint64_t last_use = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t size_bytes_;
    std::size_t line_bytes_;
    int ways_;
    std::size_t sets_;
    std::uint64_t tick_ = 0;
    std::vector<Way> store_;  // sets_ * ways_ entries
};

/// Translation lookaside buffer: a cache of page numbers. Minimising TLB
/// misses is the original motivation of the GOTO lineage (Goto & van de
/// Geijn 2002, the paper's ref [12]); packing exists so operand panels
/// span few pages (§4.3 notes GOTO "sizes its blocks to minimize TLB
/// misses").
struct TlbConfig {
    int entries = 64;            ///< typical L1 DTLB
    int ways = 4;
    std::size_t page_bytes = 4096;
};

/// Sequential (next-line) hardware prefetcher model. On a demand miss at
/// the shared LLC that continues a per-core sequential stream, the next
/// `degree` lines are fetched ahead of use: they still cross the DRAM
/// interface (counted as prefetch fills) but no core waits on them, so
/// they carry no stall cost. GEMM packing exists precisely to make
/// operand streams sequential enough for this machinery to work.
struct PrefetchConfig {
    bool enabled = false;
    int degree = 4;  ///< lines fetched ahead per detected stream step
};

/// Hit/traffic counters for a simulated run.
struct MemCounters {
    std::uint64_t accesses = 0;       ///< line-granular probes issued
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t llc_hits = 0;       ///< last shared level (L3, or L2 on ARM)
    std::uint64_t dram_accesses = 0;  ///< demand line fills from DRAM
    std::uint64_t dram_writebacks = 0;
    std::uint64_t dram_prefetch_fills = 0;  ///< lines fetched ahead of use
    std::uint64_t tlb_hits = 0;       ///< page-granular translations served
    std::uint64_t tlb_misses = 0;     ///< page-table walks

    [[nodiscard]] std::uint64_t dram_bytes(std::size_t line) const
    {
        return (dram_accesses + dram_writebacks + dram_prefetch_fills)
            * line;
    }
};

/// Memory-level latencies (cycles) for the stall-time attribution of
/// Fig. 7a. Values are representative desktop figures; only relative
/// magnitudes matter for the reproduced shape.
struct StallModel {
    double l1_cycles = 4;
    double l2_cycles = 14;
    double llc_cycles = 50;
    double dram_cycles = 250;
};

/// Stall time attributed to each memory level (in cycles).
struct StallBreakdown {
    double l1 = 0;
    double l2 = 0;
    double llc = 0;
    double dram = 0;
};

StallBreakdown attribute_stalls(const MemCounters& counters,
                                const StallModel& model = {});

/// A named address range for traffic attribution (e.g. "A", "B", "C").
struct MemRegion {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    std::string name;
};

/// A multi-core cache hierarchy: private per-core levels plus one shared
/// last-level cache, built from a MachineSpec.
class HierarchySim {
public:
    HierarchySim(const MachineSpec& machine, int cores,
                 const TlbConfig& tlb = {},
                 const PrefetchConfig& prefetch = {});

    /// Simulate a byte-range access by `core`; expands to line probes.
    void access(int core, std::uint64_t addr, std::uint32_t bytes, bool write);

    /// Register named address ranges; subsequent DRAM fills are attributed
    /// to the covering region (see dram_accesses_by_region).
    void set_regions(std::vector<MemRegion> regions);

    /// Demand DRAM line fills per registered region (same order as
    /// set_regions; unmatched fills land in an implicit trailing "other").
    [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
    dram_accesses_by_region() const;

    [[nodiscard]] const MemCounters& counters() const { return counters_; }
    [[nodiscard]] std::size_t line_bytes() const { return line_bytes_; }
    [[nodiscard]] int cores() const { return cores_; }

private:
    int cores_;
    std::size_t line_bytes_;
    std::size_t page_bytes_;
    bool has_private_l2_ = false;
    std::vector<std::unique_ptr<CacheSim>> l1_;  // per core
    std::vector<std::unique_ptr<CacheSim>> l2_;  // per core (may be empty)
    std::unique_ptr<CacheSim> llc_;              // shared
    std::vector<std::unique_ptr<CacheSim>> tlb_;  // per core (page cache)
    PrefetchConfig prefetch_;
    std::vector<std::uint64_t> last_miss_line_;   // per-core stream tracker
    std::vector<MemRegion> regions_;
    std::vector<std::uint64_t> region_fills_;     // regions_ + 1 ("other")
    MemCounters counters_;
};

}  // namespace memsim
}  // namespace cake
