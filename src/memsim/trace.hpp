// Memory-access trace generation: walks the exact loop nests of the CAKE
// and GOTO drivers (same schedules, same packing, same micro-kernel tile
// order) emitting the address stream each worker core would issue, and
// replays it through the cache-hierarchy simulator. This reproduces what
// the paper measures with PMU counters: per-level hits, DRAM accesses and
// stall attribution (Fig. 7) and average DRAM bandwidth (Figs. 10a-12a).
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "core/tiling.hpp"
#include "gotoblas/goto_gemm.hpp"
#include "memsim/cache_sim.hpp"

namespace cake {
namespace memsim {

/// Virtual base addresses of the matrices and staging buffers. Regions are
/// spaced 4 GiB apart so they never alias.
struct AddressMap {
    std::uint64_t a = 1ULL << 32;
    std::uint64_t b = 2ULL << 32;
    std::uint64_t c = 3ULL << 32;
    std::uint64_t pack_a = 4ULL << 32;
    std::uint64_t pack_b = 5ULL << 32;
    std::uint64_t c_block = 6ULL << 32;
};

/// Receives the generated access stream.
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void access(int core, std::uint64_t addr, std::uint32_t bytes,
                        bool write) = 0;
};

/// Sink that feeds the cache-hierarchy simulator.
class HierarchySink final : public TraceSink {
public:
    explicit HierarchySink(HierarchySim& sim) : sim_(sim) {}
    void access(int core, std::uint64_t addr, std::uint32_t bytes,
                bool write) override
    {
        sim_.access(core, addr, bytes, write);
    }

private:
    HierarchySim& sim_;
};

/// Emit the access stream of a CAKE run (packing, per-core micro-kernel
/// sweeps, local C accumulation, completed-surface flushes). Every access
/// is scaled by params.elem_bytes, so the trace is dtype-width-aware.
void trace_cake(const GemmShape& shape, const CbBlockParams& params,
                ScheduleKind kind, TraceSink& sink,
                const AddressMap& map = {});

/// Emit the access stream of a GOTO run with `p` cores (B panel packing,
/// per-core A packing, micro-kernel sweeps streaming C to user memory).
/// `mr` x `nr` is the register-tile shape of the micro-kernel;
/// `elem_bytes` is the element width the addresses are scaled by.
void trace_goto(const GemmShape& shape, const GotoBlocking& blocking, int p,
                index_t mr, index_t nr, index_t elem_bytes, TraceSink& sink,
                const AddressMap& map = {});

/// Emit the access stream of an UNPACKED inner-product GEMM (i-j-k loop
/// reading a column of B per output element). The column walk strides
/// shape.n elements, touching a new page per element once the row size
/// exceeds a page — the TLB-thrashing pattern that motivated packing in
/// the GOTO lineage (ref [12]). Single core; intended for TLB studies.
void trace_naive_ijk(const GemmShape& shape, TraceSink& sink,
                     const AddressMap& map = {});

/// End-to-end replay result.
struct TraceReport {
    MemCounters counters;
    StallBreakdown stalls;
    std::size_t line_bytes = 64;

    /// Bytes exchanged with external memory (fills + writebacks).
    [[nodiscard]] double dram_gb() const
    {
        return static_cast<double>(counters.dram_bytes(line_bytes)) / 1e9;
    }
};

/// Build a hierarchy for `machine`/`p`, trace a CAKE run, replay, report.
TraceReport simulate_cake_memory(const MachineSpec& machine, int p,
                                 const GemmShape& shape,
                                 const TilingOptions& topts = {},
                                 ScheduleKind kind =
                                     ScheduleKind::kKFirstSerpentine);

/// Same for the GOTO baseline.
TraceReport simulate_goto_memory(const MachineSpec& machine, int p,
                                 const GemmShape& shape);

}  // namespace memsim
}  // namespace cake
