#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/blas_like.hpp"

namespace cake {
namespace linalg {
namespace {

/// Unblocked Cholesky on a jb x jb diagonal block (row-major, ld = lda).
void factor_diagonal(float* a, index_t lda, index_t jb)
{
    for (index_t j = 0; j < jb; ++j) {
        double d = a[j * lda + j];
        for (index_t t = 0; t < j; ++t) {
            d -= static_cast<double>(a[j * lda + t]) * a[j * lda + t];
        }
        CAKE_CHECK_MSG(d > 0.0,
                       "matrix not positive definite at pivot " << j);
        const float ljj = static_cast<float>(std::sqrt(d));
        a[j * lda + j] = ljj;
        for (index_t i = j + 1; i < jb; ++i) {
            double s = a[i * lda + j];
            for (index_t t = 0; t < j; ++t) {
                s -= static_cast<double>(a[i * lda + t]) * a[j * lda + t];
            }
            a[i * lda + j] = static_cast<float>(s / ljj);
        }
    }
}

/// Panel solve: rows x jb block P <- P * L_d^{-T}, with L_d the factored
/// jb x jb diagonal block (both row-major, leading dimension lda).
void solve_panel(float* p, const float* ld, index_t lda, index_t rows,
                 index_t jb)
{
    for (index_t c = 0; c < jb; ++c) {
        const float inv = 1.0f / ld[c * lda + c];
        for (index_t r = 0; r < rows; ++r) {
            double s = p[r * lda + c];
            for (index_t t = 0; t < c; ++t) {
                s -= static_cast<double>(p[r * lda + t]) * ld[c * lda + t];
            }
            p[r * lda + c] = static_cast<float>(s * inv);
        }
    }
}

}  // namespace

void cholesky(Matrix& a, ThreadPool& pool, index_t block)
{
    CAKE_CHECK_MSG(a.rows() == a.cols(), "Cholesky needs a square matrix");
    const index_t n = a.rows();
    if (block <= 0) block = std::min<index_t>(128, std::max<index_t>(n, 1));
    float* data = a.data();

    for (index_t j0 = 0; j0 < n; j0 += block) {
        const index_t jb = std::min(block, n - j0);
        float* diag = data + j0 * n + j0;

        // 1. Factor the diagonal block (unblocked).
        factor_diagonal(diag, n, jb);

        const index_t trail = n - j0 - jb;
        if (trail == 0) continue;
        float* panel = data + (j0 + jb) * n + j0;

        // 2. Triangular solve for the panel below the diagonal block.
        solve_panel(panel, diag, n, trail, jb);

        // 3. Trailing update A22 -= L21 * L21^T: the BLAS3 bulk of the
        // factorization, routed through the CAKE SYRK adapter.
        float* trailing = data + (j0 + jb) * n + (j0 + jb);
        cake_syrk<float>(pool, panel, n, trailing, n, trail, jb,
                         /*alpha=*/-1.0f, /*beta=*/1.0f);
    }

    // Zero the strict upper triangle: A now stores L.
    for (index_t r = 0; r < n; ++r) {
        for (index_t c = r + 1; c < n; ++c) data[r * n + c] = 0.0f;
    }
}

void solve_lower(const Matrix& l, float* b, index_t nrhs)
{
    const index_t n = l.rows();
    for (index_t i = 0; i < n; ++i) {
        const float* li = l.data() + i * n;
        float* bi = b + i * nrhs;
        for (index_t j = 0; j < nrhs; ++j) {
            double s = bi[j];
            for (index_t t = 0; t < i; ++t) {
                s -= static_cast<double>(li[t]) * b[t * nrhs + j];
            }
            bi[j] = static_cast<float>(s / li[i]);
        }
    }
}

void solve_lower_transposed(const Matrix& l, float* b, index_t nrhs)
{
    const index_t n = l.rows();
    for (index_t i = n; i-- > 0;) {
        float* bi = b + i * nrhs;
        for (index_t j = 0; j < nrhs; ++j) {
            double s = bi[j];
            for (index_t t = i + 1; t < n; ++t) {
                // L^T[i][t] = L[t][i]
                s -= static_cast<double>(l.at(t, i)) * b[t * nrhs + j];
            }
            bi[j] = static_cast<float>(s / l.at(i, i));
        }
    }
}

Matrix solve_spd(const Matrix& a, const Matrix& b, ThreadPool& pool)
{
    CAKE_CHECK(a.rows() == a.cols());
    CAKE_CHECK(b.rows() == a.rows());
    Matrix l(a.rows(), a.cols(), /*zero=*/false);
    std::copy_n(a.data(), a.size(), l.data());
    cholesky(l, pool);

    Matrix x(b.rows(), b.cols(), /*zero=*/false);
    std::copy_n(b.data(), b.size(), x.data());
    solve_lower(l, x.data(), x.cols());
    solve_lower_transposed(l, x.data(), x.cols());
    return x;
}

double reconstruction_error(const Matrix& a, const Matrix& l,
                            ThreadPool& pool)
{
    CAKE_CHECK(a.rows() == a.cols() && l.rows() == a.rows());
    const index_t n = a.rows();
    Matrix llt(n, n);
    cake_syrk<float>(pool, l.data(), n, llt.data(), n, n, n);
    double frob = 0;
    for (index_t r = 0; r < n; ++r) {
        for (index_t c = 0; c < n; ++c) {
            const double d =
                static_cast<double>(a.at(r, c)) - llt.at(r, c);
            frob += d * d;
        }
    }
    return std::sqrt(frob);
}

}  // namespace linalg
}  // namespace cake
