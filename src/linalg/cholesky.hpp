// Blocked Cholesky factorization and SPD linear solves with CAKE GEMM as
// the BLAS3 backend — the classic demonstration that a GEMM library
// carries LAPACK-style dense linear algebra: >90% of the factorization's
// FLOPs flow through cake_syrk / cake_gemm trailing updates.
#pragma once

#include "common/matrix.hpp"
#include "threading/thread_pool.hpp"

namespace cake {
namespace linalg {

/// In-place blocked Cholesky A = L * L^T for a symmetric positive-definite
/// matrix (row-major, both triangles stored). On return the lower triangle
/// holds L and the strict upper triangle is zeroed.
/// Throws cake::Error if A is not positive definite.
/// `block` is the panel width; 0 picks a sensible default.
void cholesky(Matrix& a, ThreadPool& pool, index_t block = 0);

/// Solve L * y = b in place (forward substitution, unit-free lower
/// triangular L from cholesky()). b has `nrhs` columns, leading dim nrhs.
void solve_lower(const Matrix& l, float* b, index_t nrhs);

/// Solve L^T * x = y in place (backward substitution).
void solve_lower_transposed(const Matrix& l, float* b, index_t nrhs);

/// Full SPD solve: factor A (copied) and solve A * X = B. Returns X.
Matrix solve_spd(const Matrix& a, const Matrix& b, ThreadPool& pool);

/// Frobenius norm of (A - L*L^T) over the full symmetric reconstruction;
/// the factorization's residual, used by tests.
double reconstruction_error(const Matrix& a, const Matrix& l,
                            ThreadPool& pool);

}  // namespace linalg
}  // namespace cake
