// Kernel self-test harness: runs every compiled-and-supported micro-kernel
// (f32, f64, int8) against its reference on random packed panels. Intended
// for install-time verification (`tools/cake_info`) and CI smoke checks —
// a wrong-ISA dispatch or a miscompiled kernel fails here before it can
// corrupt a GEMM.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cake {

struct KernelSelfTestResult {
    std::string kernel;   ///< kernel name (e.g. "avx512_14x32")
    std::string family;   ///< "f32" | "f64" | "int8"
    bool passed = false;
    double max_error = 0;  ///< worst |kernel - reference| observed
};

/// Test every supported kernel at reduction depth `kc` with deterministic
/// random panels.
std::vector<KernelSelfTestResult> run_kernel_selftest(index_t kc = 128,
                                                      std::uint64_t seed = 1);

/// True iff every supported kernel passes its self-test.
bool all_kernels_ok();

}  // namespace cake
