// Kernel IR: a declarative register-level description of every micro-kernel
// in the registry, registered beside its MicroKernelT / Int8MicroKernel
// entry and verified by the static kernel checker (analysis/kernelcheck).
//
// A micro-kernel's inner loop is, structurally, one k-step repeated kc
// times: load B slices, broadcast A elements, issue FMAs into a fixed set
// of accumulators, and finally store the accumulators into C. The IR
// captures exactly that shape:
//
//   * geometry       — mr x nr tile, vector lanes per register, and the
//                      reduction elements folded per symbolic step (`quad`:
//                      1 for the float kernels, 4 for the vpmaddubsw int8
//                      idiom);
//   * dataflow       — one KirFma{acc, a_row, b_col} per FMA of the k-step:
//                      lane l of accumulator `acc` receives
//                      a(a_row, p)·b(p, b_col + l) summed over the step's
//                      quad reduction elements;
//   * store map      — one KirStore{acc, row, col} per C store: lane l of
//                      `acc` lands on C(row, col + l);
//   * register model — accumulator / A-broadcast / B-stream / temporary /
//                      constant register counts against the ISA's
//                      architectural budget (16 ymm, 32 zmm), or — for the
//                      compiler-scheduled scalar kernels — a stack-resident
//                      accumulator tile that must stay L1-trivial
//                      (kKirStackTileBudgetBytes);
//   * chain depth    — declared sequential updates per accumulator per
//                      k-step, the quantity the static throughput bound
//                      (model/kernel_peak.hpp) divides FMA latency by.
//
// This header is release code, like core/fperror and model/planner: the
// descriptors and the cheap structural gate below are what release-side
// consumers (the tuner's kernel admission gate, the roofline bench) need.
// The symbolic prover, the mutation suite and the binary lane-fingerprint
// cross-check live in analysis/kernelcheck and never link into release.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "kernel/cpu_features.hpp"

namespace cake {

/// One FMA of the k-step: lane l of `acc` += a(a_row, p) * b(p, b_col + l)
/// for every reduction element p the step folds (see KernelIr::quad).
struct KirFma {
    int acc = 0;    ///< accumulator register index, [0, acc_regs)
    int a_row = 0;  ///< broadcast A row, [0, mr)
    int b_col = 0;  ///< first B column of the slice, [0, nr - lanes]
};

/// One C store: lane l of `acc` lands on C(row, col + l).
struct KirStore {
    int acc = 0;
    int row = 0;  ///< [0, mr)
    int col = 0;  ///< [0, nr - lanes]
};

/// Where the accumulator tile lives across the k-loop.
enum class KirAccStorage {
    kRegisters,  ///< SIMD kernels: one architectural register per acc slot
    kStackTile,  ///< scalar kernels: compiler-scheduled stack tile
};

/// Stack-resident accumulator tiles must fit comfortably in L1 alongside
/// the streamed panels; a scalar kernel whose declared tile exceeds this
/// is as spill-broken as a SIMD kernel over its register budget.
inline constexpr int kKirStackTileBudgetBytes = 4096;

/// The full register-level description of one registered micro-kernel.
struct KernelIr {
    std::string kernel;  ///< registry name, e.g. "avx512_14x32"
    std::string family;  ///< "f32" | "f64" | "i8"
    Isa isa = Isa::kScalar;
    index_t mr = 0;
    index_t nr = 0;
    int lanes = 1;  ///< elements per accumulator register (1 = scalar)
    int quad = 1;   ///< reduction elements folded per symbolic k-step
    KirAccStorage acc_storage = KirAccStorage::kRegisters;
    int acc_regs = 0;    ///< accumulator registers/slots live across k
    int a_regs = 0;      ///< A-broadcast registers live inside one step
    int b_regs = 0;      ///< B-stream registers live inside one step
    int tmp_regs = 0;    ///< per-step temporaries (int8 madd products)
    int const_regs = 0;  ///< loop-invariant constants (int8 `ones`)
    int reg_budget = 0;  ///< architectural vector registers of the ISA
    /// Declared sequential updates of one accumulator per k-step; the
    /// verifier re-derives this from `fmas` and rejects a mismatch
    /// (KIR_THROUGHPUT), so the throughput bound cannot be gamed.
    int chain_updates = 1;
    std::vector<KirFma> fmas;      ///< dataflow of ONE k-step
    std::vector<KirStore> stores;  ///< accumulator -> C mapping

    /// Bytes per accumulator element (f32/i8 accumulate in 4 bytes,
    /// f64 in 8) — sizes the stack-tile budget check.
    [[nodiscard]] int acc_elem_bytes() const
    {
        return family == "f64" ? 8 : 4;
    }

    /// Registers simultaneously live in the steady-state k-loop.
    [[nodiscard]] int regs_used() const
    {
        return acc_regs + a_regs + b_regs + tmp_regs + const_regs;
    }
};

/// IR descriptors for every kernel compiled into this binary — all three
/// families, every ISA the build enabled — in registry order. A kernel
/// without a descriptor here cannot pass the tuner's admission gate.
const std::vector<KernelIr>& all_kernel_irs();

/// Descriptor for a registry kernel name; nullptr if none is registered.
const KernelIr* kernel_ir_for(const std::string& name);

/// Static spill-freedom: register-resident kernels must fit the
/// architectural budget; stack-tile kernels must fit the L1-trivial tile
/// budget. On failure returns false and (if `why`) a one-line reason.
bool kir_spill_free(const KernelIr& ir, std::string* why);

/// Release-side kernel admission gate (tune_shape's default): the name
/// must have an IR, the IR's geometry/ISA must match its registry entry,
/// and the kernel must be statically spill-free. The full symbolic proof
/// plus the binary fingerprint live in analysis/kernelcheck; tools built
/// with cake_schedir inject that prover instead.
bool kernel_gate_ok(const std::string& kernel_name, std::string* why);

}  // namespace cake
