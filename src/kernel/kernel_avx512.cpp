// AVX-512F micro-kernels: 14x32 float and 14x16 double. Both use 28 zmm
// accumulators + 2 zmm B loads + 1 broadcast register = 31 of 32
// architectural registers. Compiled with -mavx512f; only executed after
// runtime dispatch confirms support.
#include <immintrin.h>

#include "kernel/microkernel.hpp"

namespace cake {
namespace {

constexpr index_t kMr = 14;

void avx512_ukr_14x32(index_t kc, const float* a, const float* b, float* c,
                      index_t ldc, bool accumulate)
{
    constexpr index_t kNr = 32;
    __m512 acc[kMr][2];
    for (auto& row : acc) {
        row[0] = _mm512_setzero_ps();
        row[1] = _mm512_setzero_ps();
    }

    for (index_t p = 0; p < kc; ++p) {
        const __m512 b0 = _mm512_load_ps(b + p * kNr);
        const __m512 b1 = _mm512_load_ps(b + p * kNr + 16);
        const float* ap = a + p * kMr;
        for (index_t i = 0; i < kMr; ++i) {
            const __m512 ai = _mm512_set1_ps(ap[i]);
            acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
        }
    }

    for (index_t i = 0; i < kMr; ++i) {
        float* ci = c + i * ldc;
        if (accumulate) {
            acc[i][0] = _mm512_add_ps(acc[i][0], _mm512_loadu_ps(ci));
            acc[i][1] = _mm512_add_ps(acc[i][1], _mm512_loadu_ps(ci + 16));
        }
        _mm512_storeu_ps(ci, acc[i][0]);
        _mm512_storeu_ps(ci + 16, acc[i][1]);
    }
}

void avx512_ukr_14x16_f64(index_t kc, const double* a, const double* b,
                          double* c, index_t ldc, bool accumulate)
{
    constexpr index_t kNr = 16;
    __m512d acc[kMr][2];
    for (auto& row : acc) {
        row[0] = _mm512_setzero_pd();
        row[1] = _mm512_setzero_pd();
    }

    for (index_t p = 0; p < kc; ++p) {
        const __m512d b0 = _mm512_load_pd(b + p * kNr);
        const __m512d b1 = _mm512_load_pd(b + p * kNr + 8);
        const double* ap = a + p * kMr;
        for (index_t i = 0; i < kMr; ++i) {
            const __m512d ai = _mm512_set1_pd(ap[i]);
            acc[i][0] = _mm512_fmadd_pd(ai, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_pd(ai, b1, acc[i][1]);
        }
    }

    for (index_t i = 0; i < kMr; ++i) {
        double* ci = c + i * ldc;
        if (accumulate) {
            acc[i][0] = _mm512_add_pd(acc[i][0], _mm512_loadu_pd(ci));
            acc[i][1] = _mm512_add_pd(acc[i][1], _mm512_loadu_pd(ci + 8));
        }
        _mm512_storeu_pd(ci, acc[i][0]);
        _mm512_storeu_pd(ci + 8, acc[i][1]);
    }
}

}  // namespace

MicroKernel avx512_microkernel()
{
    return {"avx512_14x32", Isa::kAvx512, kMr, 32, &avx512_ukr_14x32};
}

MicroKernelD avx512_microkernel_f64()
{
    return {"avx512_14x16_f64", Isa::kAvx512, kMr, 16, &avx512_ukr_14x16_f64};
}

}  // namespace cake
