// IR descriptors for every compiled micro-kernel. Each descriptor is a
// faithful transcription of its kernel's source (kernel_scalar.cpp,
// kernel_avx2.cpp, kernel_avx512.cpp, kernel_int8_*.cpp); the
// analysis-side prover cross-checks the transcription against the actual
// binary with the lane-fingerprint equivalence run, so a descriptor that
// drifts from its kernel fails CI rather than quietly mis-modelling it.
#include "kernel/kernel_ir.hpp"

#include "kernel/kernel_int8.hpp"
#include "kernel/registry.hpp"

namespace cake {
namespace {

/// All registered kernels share one loop shape: for each row i, one FMA
/// per B slice h into accumulator i*halves + h, stored to C(i, h*lanes).
KernelIr row_panel_ir(std::string name, std::string family, Isa isa,
                      index_t mr, index_t nr, int lanes, int quad,
                      KirAccStorage storage, int a_regs, int b_regs,
                      int tmp_regs, int const_regs, int reg_budget)
{
    KernelIr ir;
    ir.kernel = std::move(name);
    ir.family = std::move(family);
    ir.isa = isa;
    ir.mr = mr;
    ir.nr = nr;
    ir.lanes = lanes;
    ir.quad = quad;
    ir.acc_storage = storage;
    ir.a_regs = a_regs;
    ir.b_regs = b_regs;
    ir.tmp_regs = tmp_regs;
    ir.const_regs = const_regs;
    ir.reg_budget = reg_budget;
    ir.chain_updates = 1;  // each acc is updated once per k-step
    const int halves = static_cast<int>(nr) / lanes;
    ir.acc_regs = static_cast<int>(mr) * halves;
    for (int i = 0; i < static_cast<int>(mr); ++i) {
        for (int h = 0; h < halves; ++h) {
            ir.fmas.push_back({i * halves + h, i, h * lanes});
            ir.stores.push_back({i * halves + h, i, h * lanes});
        }
    }
    return ir;
}

std::vector<KernelIr> build_all_irs()
{
    std::vector<KernelIr> irs;

    // Scalar kernels keep the whole mr x nr accumulator tile on the stack
    // and let the compiler schedule it (kernel_scalar.cpp); their register
    // obligation is the stack-tile budget, not the architectural file.
    irs.push_back(row_panel_ir("scalar_8x8", "f32", Isa::kScalar, 8, 8,
                               /*lanes=*/1, /*quad=*/1,
                               KirAccStorage::kStackTile, /*a=*/1, /*b=*/1,
                               /*tmp=*/0, /*const=*/0, /*budget=*/16));
    irs.push_back(row_panel_ir("scalar_8x8_f64", "f64", Isa::kScalar, 8, 8,
                               1, 1, KirAccStorage::kStackTile, 1, 1, 0, 0,
                               16));
    irs.push_back(row_panel_ir("scalar_int8_4x4", "i8", Isa::kScalar, 4, 4,
                               1, 4, KirAccStorage::kStackTile, 1, 1, 0, 0,
                               16));

#if defined(CAKE_HAVE_AVX2_KERNEL)
    // 12 ymm accumulators + 1 broadcast + 2 B loads = 15 of 16.
    irs.push_back(row_panel_ir("avx2_6x16", "f32", Isa::kAvx2, 6, 16,
                               /*lanes=*/8, 1, KirAccStorage::kRegisters,
                               1, 2, 0, 0, 16));
    irs.push_back(row_panel_ir("avx2_6x8_f64", "f64", Isa::kAvx2, 6, 8,
                               /*lanes=*/4, 1, KirAccStorage::kRegisters,
                               1, 2, 0, 0, 16));
    // 8 acc + 1 broadcast + 2 B + 2 madd products + `ones` = 14 of 16.
    irs.push_back(row_panel_ir("avx2_int8_4x16", "i8", Isa::kAvx2, 4, 16,
                               /*lanes=*/8, /*quad=*/4,
                               KirAccStorage::kRegisters, 1, 2, /*tmp=*/2,
                               /*const=*/1, 16));
#endif
#if defined(CAKE_HAVE_AVX512_KERNEL)
    // 28 zmm accumulators + 1 broadcast + 2 B loads = 31 of 32.
    irs.push_back(row_panel_ir("avx512_14x32", "f32", Isa::kAvx512, 14, 32,
                               /*lanes=*/16, 1, KirAccStorage::kRegisters,
                               1, 2, 0, 0, 32));
    irs.push_back(row_panel_ir("avx512_14x16_f64", "f64", Isa::kAvx512, 14,
                               16, /*lanes=*/8, 1,
                               KirAccStorage::kRegisters, 1, 2, 0, 0, 32));
    irs.push_back(row_panel_ir("avx512_int8_4x32", "i8", Isa::kAvx512, 4,
                               32, /*lanes=*/16, /*quad=*/4,
                               KirAccStorage::kRegisters, 1, 2, /*tmp=*/2,
                               /*const=*/1, 32));
#endif
    return irs;
}

/// Registry geometry for `name` across all three families; false if the
/// name is not a registered kernel.
bool registry_entry_for(const std::string& name, Isa* isa, index_t* mr,
                        index_t* nr)
{
    for (const MicroKernel& k : all_microkernels_of<float>()) {
        if (name == k.name) {
            *isa = k.isa;
            *mr = k.mr;
            *nr = k.nr;
            return true;
        }
    }
    for (const MicroKernelD& k : all_microkernels_of<double>()) {
        if (name == k.name) {
            *isa = k.isa;
            *mr = k.mr;
            *nr = k.nr;
            return true;
        }
    }
    for (const Int8MicroKernel& k : all_int8_microkernels()) {
        if (name == k.name) {
            *isa = k.isa;
            *mr = k.mr;
            *nr = k.nr;
            return true;
        }
    }
    return false;
}

}  // namespace

const std::vector<KernelIr>& all_kernel_irs()
{
    static const std::vector<KernelIr> irs = build_all_irs();
    return irs;
}

const KernelIr* kernel_ir_for(const std::string& name)
{
    for (const KernelIr& ir : all_kernel_irs()) {
        if (ir.kernel == name) return &ir;
    }
    return nullptr;
}

bool kir_spill_free(const KernelIr& ir, std::string* why)
{
    if (ir.acc_storage == KirAccStorage::kRegisters) {
        if (ir.regs_used() > ir.reg_budget) {
            if (why != nullptr) {
                *why = "kernel '" + ir.kernel + "' needs "
                    + std::to_string(ir.regs_used()) + " registers ("
                    + std::to_string(ir.acc_regs) + " acc + "
                    + std::to_string(ir.a_regs) + " A + "
                    + std::to_string(ir.b_regs) + " B + "
                    + std::to_string(ir.tmp_regs + ir.const_regs)
                    + " tmp/const) but " + isa_name(ir.isa)
                    + " has only " + std::to_string(ir.reg_budget)
                    + " — it must spill";
            }
            return false;
        }
        return true;
    }
    const int tile_bytes = ir.acc_regs * ir.acc_elem_bytes();
    if (tile_bytes > kKirStackTileBudgetBytes) {
        if (why != nullptr) {
            *why = "kernel '" + ir.kernel + "' stack accumulator tile is "
                + std::to_string(tile_bytes) + " bytes, over the "
                + std::to_string(kKirStackTileBudgetBytes)
                + "-byte L1-trivial budget";
        }
        return false;
    }
    return true;
}

bool kernel_gate_ok(const std::string& kernel_name, std::string* why)
{
    const KernelIr* ir = kernel_ir_for(kernel_name);
    if (ir == nullptr) {
        if (why != nullptr) {
            *why = "kernel '" + kernel_name
                + "' has no registered KernelIr descriptor";
        }
        return false;
    }
    Isa isa = Isa::kScalar;
    index_t mr = 0;
    index_t nr = 0;
    if (!registry_entry_for(kernel_name, &isa, &mr, &nr)) {
        if (why != nullptr) {
            *why = "kernel '" + kernel_name
                + "' has an IR but no registry entry";
        }
        return false;
    }
    if (isa != ir->isa || mr != ir->mr || nr != ir->nr) {
        if (why != nullptr) {
            *why = "kernel '" + kernel_name + "' IR geometry ("
                + isa_name(ir->isa) + " " + std::to_string(ir->mr) + "x"
                + std::to_string(ir->nr)
                + ") disagrees with its registry entry (" + isa_name(isa)
                + " " + std::to_string(mr) + "x" + std::to_string(nr) + ")";
        }
        return false;
    }
    return kir_spill_free(*ir, why);
}

}  // namespace cake
