// Micro-kernel contract: the register-tiled rank-kc update at the bottom of
// both the CAKE and GOTO schedulers (paper Figs 5e / 6e).
//
// A micro-kernel computes C(mr x nr) (+)= A_panel * B_panel where:
//   * A_panel is packed column-major by k-step: a[p*mr + i] = A(i, p)
//   * B_panel is packed row-major by k-step:    b[p*nr + j] = B(p, j)
//   * C is an mr x nr tile inside a row-major matrix with leading dim ldc.
//
// Full tiles hit the SIMD kernels; partial edge tiles are computed into an
// aligned scratch tile and copied out (see run_microkernel_tile). Kernels
// exist for float (sgemm) and double (dgemm) at every ISA level.
#pragma once

#include "common/checked.hpp"
#include "common/types.hpp"
#include "kernel/cpu_features.hpp"

namespace cake {

/// Function signature shared by all micro-kernels of element type T.
/// `accumulate == false` overwrites C; `true` adds into C.
template <typename T>
using MicroKernelFnT = void (*)(index_t kc, const T* a, const T* b, T* c,
                                index_t ldc, bool accumulate);

/// A registered micro-kernel variant with its register-tile dimensions.
template <typename T>
struct MicroKernelT {
    const char* name = "";
    Isa isa = Isa::kScalar;
    index_t mr = 0;  ///< register-tile rows (paper's m_r)
    index_t nr = 0;  ///< register-tile cols (paper's n_r)
    MicroKernelFnT<T> fn = nullptr;
};

using MicroKernel = MicroKernelT<float>;
using MicroKernelD = MicroKernelT<double>;

/// Scalar reference kernels (always available).
MicroKernel scalar_microkernel();
MicroKernelD scalar_microkernel_f64();

#if defined(CAKE_HAVE_AVX2_KERNEL)
/// 6x16 (float) and 6x8 (double) AVX2+FMA kernels.
MicroKernel avx2_microkernel();
MicroKernelD avx2_microkernel_f64();
#endif

#if defined(CAKE_HAVE_AVX512_KERNEL)
/// 14x32 (float) and 14x16 (double) AVX-512F kernels.
MicroKernel avx512_microkernel();
MicroKernelD avx512_microkernel_f64();
#endif

/// Run a (possibly partial) m x n tile, m <= mr, n <= nr, with depth `kc`:
/// full tiles call the kernel directly; edges go through a scratch tile.
/// `scratch` must hold at least mr*nr elements, 64-byte aligned.
template <typename T>
void run_microkernel_tile(const MicroKernelT<T>& k, index_t kc, const T* a,
                          const T* b, T* c, index_t ldc, index_t m, index_t n,
                          bool accumulate, T* scratch)
{
#if CAKE_CHECKED_ENABLED
    // Kernel dispatch boundary: validate the operand contract the SIMD
    // kernels silently rely on before handing them raw pointers. The
    // packed a/b slivers only guarantee element alignment (slivers start
    // at mr*kc / nr*kc element offsets); the scratch tile must carry full
    // vector-store alignment because edge tiles are computed there with
    // aligned stores.
    if (m > 0 && n > 0) {
        if (a == nullptr || b == nullptr) {
            checked::fail("null-operand", "micro-kernel a/b panel is null");
        }
        require_aligned(a, alignof(T), "micro-kernel packed-A sliver");
        require_aligned(b, alignof(T), "micro-kernel packed-B sliver");
        require_aligned(scratch, kPanelAlignment,
                        "micro-kernel scratch tile");
        // The C tile is an m x n window of a row-major buffer with leading
        // dimension ldc; TileView traps on inconsistent geometry
        // (ld < cols, null base, misaligned base).
        (void)TileView<T>(c, m, n, ldc, alignof(T), "micro-kernel C tile");
        if (kc <= 0) {
            checked::fail("bad-tile", "micro-kernel kc must be positive");
        }
    }
#endif
    if (m == k.mr && n == k.nr) {
        k.fn(kc, a, b, c, ldc, accumulate);
        return;
    }
    // Edge tile: compute the full mr x nr tile into scratch (packed panels
    // are zero-padded, so the extra rows/cols are zero), then copy the live
    // m x n region.
    k.fn(kc, a, b, scratch, k.nr, /*accumulate=*/false);
    if (accumulate) {
        for (index_t i = 0; i < m; ++i)
            for (index_t j = 0; j < n; ++j)
                c[i * ldc + j] += scratch[i * k.nr + j];
    } else {
        for (index_t i = 0; i < m; ++i)
            for (index_t j = 0; j < n; ++j)
                c[i * ldc + j] = scratch[i * k.nr + j];
    }
}

}  // namespace cake
