// Micro-kernel contract: the register-tiled rank-kc update at the bottom of
// both the CAKE and GOTO schedulers (paper Figs 5e / 6e).
//
// A micro-kernel computes C(mr x nr) (+)= A_panel * B_panel where:
//   * A_panel is packed column-major by k-step: a[p*mr + i] = A(i, p)
//   * B_panel is packed row-major by k-step:    b[p*nr + j] = B(p, j)
//   * C is an mr x nr tile inside a row-major matrix with leading dim ldc.
//
// Full tiles hit the SIMD kernels; partial edge tiles are computed into an
// aligned scratch tile and copied out (see run_microkernel_tile). Kernels
// exist for float (sgemm) and double (dgemm) at every ISA level.
#pragma once

#include "common/types.hpp"
#include "kernel/cpu_features.hpp"

namespace cake {

/// Function signature shared by all micro-kernels of element type T.
/// `accumulate == false` overwrites C; `true` adds into C.
template <typename T>
using MicroKernelFnT = void (*)(index_t kc, const T* a, const T* b, T* c,
                                index_t ldc, bool accumulate);

/// A registered micro-kernel variant with its register-tile dimensions.
template <typename T>
struct MicroKernelT {
    const char* name = "";
    Isa isa = Isa::kScalar;
    index_t mr = 0;  ///< register-tile rows (paper's m_r)
    index_t nr = 0;  ///< register-tile cols (paper's n_r)
    MicroKernelFnT<T> fn = nullptr;
};

using MicroKernel = MicroKernelT<float>;
using MicroKernelD = MicroKernelT<double>;

/// Scalar reference kernels (always available).
MicroKernel scalar_microkernel();
MicroKernelD scalar_microkernel_f64();

#if defined(CAKE_HAVE_AVX2_KERNEL)
/// 6x16 (float) and 6x8 (double) AVX2+FMA kernels.
MicroKernel avx2_microkernel();
MicroKernelD avx2_microkernel_f64();
#endif

#if defined(CAKE_HAVE_AVX512_KERNEL)
/// 14x32 (float) and 14x16 (double) AVX-512F kernels.
MicroKernel avx512_microkernel();
MicroKernelD avx512_microkernel_f64();
#endif

/// Run a (possibly partial) m x n tile, m <= mr, n <= nr, with depth `kc`:
/// full tiles call the kernel directly; edges go through a scratch tile.
/// `scratch` must hold at least mr*nr elements, 64-byte aligned.
template <typename T>
void run_microkernel_tile(const MicroKernelT<T>& k, index_t kc, const T* a,
                          const T* b, T* c, index_t ldc, index_t m, index_t n,
                          bool accumulate, T* scratch)
{
    if (m == k.mr && n == k.nr) {
        k.fn(kc, a, b, c, ldc, accumulate);
        return;
    }
    // Edge tile: compute the full mr x nr tile into scratch (packed panels
    // are zero-padded, so the extra rows/cols are zero), then copy the live
    // m x n region.
    k.fn(kc, a, b, scratch, k.nr, /*accumulate=*/false);
    if (accumulate) {
        for (index_t i = 0; i < m; ++i)
            for (index_t j = 0; j < n; ++j)
                c[i * ldc + j] += scratch[i * k.nr + j];
    } else {
        for (index_t i = 0; i < m; ++i)
            for (index_t j = 0; j < n; ++j)
                c[i * ldc + j] = scratch[i * k.nr + j];
    }
}

}  // namespace cake
