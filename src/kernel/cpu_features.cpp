#include "kernel/cpu_features.hpp"

#include "common/error.hpp"

namespace cake {

const char* isa_name(Isa isa)
{
    switch (isa) {
        case Isa::kScalar: return "scalar";
        case Isa::kAvx2: return "avx2";
        case Isa::kAvx512: return "avx512";
    }
    return "unknown";
}

Isa parse_isa(const std::string& name)
{
    if (name == "scalar") return Isa::kScalar;
    if (name == "avx2") return Isa::kAvx2;
    if (name == "avx512") return Isa::kAvx512;
    throw Error("unknown ISA name: " + name);
}

Isa parse_forced_isa(const std::string& value)
{
    try {
        return parse_isa(value);
    } catch (const Error&) {
        throw Error("[FORCE_ISA] unknown CAKE_FORCE_ISA value '" + value
                    + "' (expected scalar|avx2|avx512)");
    }
}

const CpuFeatures& cpu_features()
{
    static const CpuFeatures features = [] {
        CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
        // __builtin_cpu_supports consults CPUID and XGETBV (OS support).
        __builtin_cpu_init();
        f.avx2 = __builtin_cpu_supports("avx2")
            && __builtin_cpu_supports("fma");
        f.avx512f = __builtin_cpu_supports("avx512f");
        f.avx512bw = __builtin_cpu_supports("avx512bw");
#endif
        return f;
    }();
    return features;
}

bool isa_supported(Isa isa)
{
    switch (isa) {
        case Isa::kScalar: return true;
        case Isa::kAvx2: return cpu_features().avx2;
        case Isa::kAvx512: return cpu_features().avx512f;
    }
    return false;
}

}  // namespace cake
