// Kernel registry and runtime dispatch, for float (sgemm) and double
// (dgemm) kernel families.
#pragma once

#include <algorithm>
#include <string_view>
#include <vector>

#include "kernel/microkernel.hpp"

namespace cake {

/// All kernels of element type T compiled into this binary (regardless of
/// CPU support). Specialised for float and double.
template <typename T>
const std::vector<MicroKernelT<T>>& all_microkernels_of();

/// Deterministic dispatch order: widest vector ISA first (avx512 > avx2 >
/// scalar), ties broken by name. std::sort is not stable, so without the
/// name tie-break two same-ISA kernels would dispatch in an order that
/// depends on registry iteration — this comparator pins it.
template <typename T>
bool microkernel_before(const MicroKernelT<T>& a, const MicroKernelT<T>& b)
{
    if (a.isa != b.isa) {
        return static_cast<int>(a.isa) > static_cast<int>(b.isa);
    }
    return std::string_view(a.name) < std::string_view(b.name);
}

/// Kernels of element type T runnable on the executing CPU, widest first.
template <typename T>
std::vector<MicroKernelT<T>> supported_microkernels_of()
{
    std::vector<MicroKernelT<T>> v;
    for (const auto& k : all_microkernels_of<T>()) {
        if (isa_supported(k.isa)) v.push_back(k);
    }
    std::sort(v.begin(), v.end(), &microkernel_before<T>);
    return v;
}

/// Kernel of element type T for a specific ISA; throws cake::Error if not
/// compiled in or not supported by this CPU.
template <typename T>
const MicroKernelT<T>& microkernel_for_of(Isa isa);

/// The preferred kernel of element type T for this CPU. Honours the
/// CAKE_FORCE_ISA environment variable ("scalar" | "avx2" | "avx512").
template <typename T>
const MicroKernelT<T>& best_microkernel_of();

// Explicit specialisations are defined in registry.cpp. They must be
// declared before the inline wrappers below instantiate the templates.
template <>
const std::vector<MicroKernel>& all_microkernels_of<float>();
template <>
const std::vector<MicroKernelD>& all_microkernels_of<double>();
template <>
const MicroKernel& microkernel_for_of<float>(Isa isa);
template <>
const MicroKernelD& microkernel_for_of<double>(Isa isa);
template <>
const MicroKernel& best_microkernel_of<float>();
template <>
const MicroKernelD& best_microkernel_of<double>();

// ---- float-named convenience API (the original sgemm surface) ----

inline const std::vector<MicroKernel>& all_microkernels()
{
    return all_microkernels_of<float>();
}
inline std::vector<MicroKernel> supported_microkernels()
{
    return supported_microkernels_of<float>();
}
inline const MicroKernel& best_microkernel()
{
    return best_microkernel_of<float>();
}
inline const MicroKernel& microkernel_for(Isa isa)
{
    return microkernel_for_of<float>(isa);
}

}  // namespace cake
