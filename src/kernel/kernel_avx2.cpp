// AVX2+FMA micro-kernels: 6x16 float and 6x8 double. Both use 12 ymm
// accumulators, 2 ymm B loads per k-step, and broadcasts of A elements.
// Compiled with -mavx2 -mfma; only executed after runtime dispatch
// confirms support.
#include <immintrin.h>

#include "kernel/microkernel.hpp"

namespace cake {
namespace {

constexpr index_t kMr = 6;

void avx2_ukr_6x16(index_t kc, const float* a, const float* b, float* c,
                   index_t ldc, bool accumulate)
{
    constexpr index_t kNr = 16;
    __m256 acc[kMr][2];
    for (auto& row : acc) {
        row[0] = _mm256_setzero_ps();
        row[1] = _mm256_setzero_ps();
    }

    for (index_t p = 0; p < kc; ++p) {
        const __m256 b0 = _mm256_load_ps(b + p * kNr);
        const __m256 b1 = _mm256_load_ps(b + p * kNr + 8);
        const float* ap = a + p * kMr;
        for (index_t i = 0; i < kMr; ++i) {
            const __m256 ai = _mm256_broadcast_ss(ap + i);
            acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
        }
    }

    for (index_t i = 0; i < kMr; ++i) {
        float* ci = c + i * ldc;
        if (accumulate) {
            acc[i][0] = _mm256_add_ps(acc[i][0], _mm256_loadu_ps(ci));
            acc[i][1] = _mm256_add_ps(acc[i][1], _mm256_loadu_ps(ci + 8));
        }
        _mm256_storeu_ps(ci, acc[i][0]);
        _mm256_storeu_ps(ci + 8, acc[i][1]);
    }
}

void avx2_ukr_6x8_f64(index_t kc, const double* a, const double* b, double* c,
                      index_t ldc, bool accumulate)
{
    constexpr index_t kNr = 8;
    __m256d acc[kMr][2];
    for (auto& row : acc) {
        row[0] = _mm256_setzero_pd();
        row[1] = _mm256_setzero_pd();
    }

    for (index_t p = 0; p < kc; ++p) {
        const __m256d b0 = _mm256_load_pd(b + p * kNr);
        const __m256d b1 = _mm256_load_pd(b + p * kNr + 4);
        const double* ap = a + p * kMr;
        for (index_t i = 0; i < kMr; ++i) {
            const __m256d ai = _mm256_broadcast_sd(ap + i);
            acc[i][0] = _mm256_fmadd_pd(ai, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_pd(ai, b1, acc[i][1]);
        }
    }

    for (index_t i = 0; i < kMr; ++i) {
        double* ci = c + i * ldc;
        if (accumulate) {
            acc[i][0] = _mm256_add_pd(acc[i][0], _mm256_loadu_pd(ci));
            acc[i][1] = _mm256_add_pd(acc[i][1], _mm256_loadu_pd(ci + 4));
        }
        _mm256_storeu_pd(ci, acc[i][0]);
        _mm256_storeu_pd(ci + 4, acc[i][1]);
    }
}

}  // namespace

MicroKernel avx2_microkernel()
{
    return {"avx2_6x16", Isa::kAvx2, kMr, 16, &avx2_ukr_6x16};
}

MicroKernelD avx2_microkernel_f64()
{
    return {"avx2_6x8_f64", Isa::kAvx2, kMr, 8, &avx2_ukr_6x8_f64};
}

}  // namespace cake
