// Scalar u8 x s8 -> s32 micro-kernel (exact over the full input range)
// plus the shared dispatch and edge-tile helpers.
#include "kernel/kernel_int8.hpp"

#include <algorithm>
#include <string_view>

#include "common/env.hpp"
#include "common/error.hpp"

namespace cake {
namespace {

constexpr index_t kMr = 4;
constexpr index_t kNr = 4;

void scalar_int8_ukr(index_t kq, const std::uint8_t* a, const std::int8_t* b,
                     std::int32_t* c, index_t ldc, bool accumulate)
{
    std::int32_t acc[kMr][kNr] = {};
    for (index_t q = 0; q < kq; ++q) {
        const std::uint8_t* aq = a + q * kMr * 4;
        const std::int8_t* bq = b + q * kNr * 4;
        for (index_t i = 0; i < kMr; ++i) {
            for (index_t jj = 0; jj < kNr; ++jj) {
                std::int32_t dot = 0;
                for (index_t j = 0; j < 4; ++j) {
                    dot += static_cast<std::int32_t>(aq[i * 4 + j])
                        * static_cast<std::int32_t>(bq[jj * 4 + j]);
                }
                acc[i][jj] += dot;
            }
        }
    }
    if (accumulate) {
        for (index_t i = 0; i < kMr; ++i)
            for (index_t j = 0; j < kNr; ++j) c[i * ldc + j] += acc[i][j];
    } else {
        for (index_t i = 0; i < kMr; ++i)
            for (index_t j = 0; j < kNr; ++j) c[i * ldc + j] = acc[i][j];
    }
}

}  // namespace

Int8MicroKernel scalar_int8_microkernel()
{
    return {"scalar_int8_4x4", Isa::kScalar, kMr, kNr, &scalar_int8_ukr};
}

const std::vector<Int8MicroKernel>& all_int8_microkernels()
{
    static const std::vector<Int8MicroKernel> kernels = [] {
        std::vector<Int8MicroKernel> v;
        v.push_back(scalar_int8_microkernel());
#if defined(CAKE_HAVE_AVX2_KERNEL)
        v.push_back(avx2_int8_microkernel());
#endif
#if defined(CAKE_HAVE_AVX512_KERNEL)
        v.push_back(avx512_int8_microkernel());
#endif
        return v;
    }();
    return kernels;
}

bool int8_isa_supported(Isa isa)
{
    switch (isa) {
        case Isa::kScalar: return true;
        case Isa::kAvx2: return cpu_features().avx2;
        case Isa::kAvx512: return cpu_features().avx512bw;
    }
    return false;
}

std::vector<Int8MicroKernel> supported_int8_microkernels()
{
    std::vector<Int8MicroKernel> v;
    for (const Int8MicroKernel& k : all_int8_microkernels()) {
        if (int8_isa_supported(k.isa)) v.push_back(k);
    }
    std::sort(v.begin(), v.end(),
              [](const Int8MicroKernel& a, const Int8MicroKernel& b) {
                  if (a.isa != b.isa) {
                      return static_cast<int>(a.isa)
                          > static_cast<int>(b.isa);
                  }
                  return std::string_view(a.name) < std::string_view(b.name);
              });
    return v;
}

const Int8MicroKernel& best_int8_microkernel()
{
    static const Int8MicroKernel chosen = [] {
        if (auto forced = env_string("CAKE_FORCE_ISA")) {
            // Same coded [FORCE_ISA] contract as the float registry: an
            // unknown value raises, never falls back to autodetection.
            const Isa isa = parse_forced_isa(*forced);
            for (const Int8MicroKernel& k : all_int8_microkernels()) {
                if (k.isa == isa) {
                    CAKE_CHECK_MSG(int8_isa_supported(isa),
                                   "int8 ISA " << isa_name(isa)
                                       << " not supported by CPU");
                    return k;
                }
            }
            throw Error(std::string("no int8 micro-kernel compiled for ISA ")
                        + isa_name(isa));
        }
        return supported_int8_microkernels().front();
    }();
    return chosen;
}

void run_int8_tile(const Int8MicroKernel& k, index_t kq,
                   const std::uint8_t* a, const std::int8_t* b,
                   std::int32_t* c, index_t ldc, index_t m, index_t n,
                   bool accumulate, std::int32_t* scratch)
{
    if (m == k.mr && n == k.nr) {
        k.fn(kq, a, b, c, ldc, accumulate);
        return;
    }
    k.fn(kq, a, b, scratch, k.nr, /*accumulate=*/false);
    if (accumulate) {
        for (index_t i = 0; i < m; ++i)
            for (index_t j = 0; j < n; ++j)
                c[i * ldc + j] += scratch[i * k.nr + j];
    } else {
        for (index_t i = 0; i < m; ++i)
            for (index_t j = 0; j < n; ++j)
                c[i * ldc + j] = scratch[i * k.nr + j];
    }
}

}  // namespace cake
