// Scalar u8 x s8 -> s32 micro-kernel (exact over the full input range)
// plus the shared dispatch and edge-tile helpers.
#include "kernel/kernel_int8.hpp"

#include "common/env.hpp"
#include "common/error.hpp"

namespace cake {
namespace {

constexpr index_t kMr = 4;
constexpr index_t kNr = 4;

void scalar_int8_ukr(index_t kq, const std::uint8_t* a, const std::int8_t* b,
                     std::int32_t* c, index_t ldc, bool accumulate)
{
    std::int32_t acc[kMr][kNr] = {};
    for (index_t q = 0; q < kq; ++q) {
        const std::uint8_t* aq = a + q * kMr * 4;
        const std::int8_t* bq = b + q * kNr * 4;
        for (index_t i = 0; i < kMr; ++i) {
            for (index_t jj = 0; jj < kNr; ++jj) {
                std::int32_t dot = 0;
                for (index_t j = 0; j < 4; ++j) {
                    dot += static_cast<std::int32_t>(aq[i * 4 + j])
                        * static_cast<std::int32_t>(bq[jj * 4 + j]);
                }
                acc[i][jj] += dot;
            }
        }
    }
    if (accumulate) {
        for (index_t i = 0; i < kMr; ++i)
            for (index_t j = 0; j < kNr; ++j) c[i * ldc + j] += acc[i][j];
    } else {
        for (index_t i = 0; i < kMr; ++i)
            for (index_t j = 0; j < kNr; ++j) c[i * ldc + j] = acc[i][j];
    }
}

}  // namespace

Int8MicroKernel scalar_int8_microkernel()
{
    return {"scalar_int8_4x4", Isa::kScalar, kMr, kNr, &scalar_int8_ukr};
}

const Int8MicroKernel& best_int8_microkernel()
{
    static const Int8MicroKernel chosen = [] {
        if (auto forced = env_string("CAKE_FORCE_ISA")) {
            const Isa isa = parse_isa(*forced);
            switch (isa) {
                case Isa::kScalar: return scalar_int8_microkernel();
                case Isa::kAvx2:
#if defined(CAKE_HAVE_AVX2_KERNEL)
                    CAKE_CHECK_MSG(cpu_features().avx2,
                                   "AVX2 not supported by CPU");
                    return avx2_int8_microkernel();
#else
                    throw Error("AVX2 int8 kernel not compiled in");
#endif
                case Isa::kAvx512:
#if defined(CAKE_HAVE_AVX512_KERNEL)
                    CAKE_CHECK_MSG(cpu_features().avx512bw,
                                   "AVX-512BW not supported by CPU");
                    return avx512_int8_microkernel();
#else
                    throw Error("AVX-512 int8 kernel not compiled in");
#endif
            }
        }
#if defined(CAKE_HAVE_AVX512_KERNEL)
        if (cpu_features().avx512bw) return avx512_int8_microkernel();
#endif
#if defined(CAKE_HAVE_AVX2_KERNEL)
        if (cpu_features().avx2) return avx2_int8_microkernel();
#endif
        return scalar_int8_microkernel();
    }();
    return chosen;
}

void run_int8_tile(const Int8MicroKernel& k, index_t kq,
                   const std::uint8_t* a, const std::int8_t* b,
                   std::int32_t* c, index_t ldc, index_t m, index_t n,
                   bool accumulate, std::int32_t* scratch)
{
    if (m == k.mr && n == k.nr) {
        k.fn(kq, a, b, c, ldc, accumulate);
        return;
    }
    k.fn(kq, a, b, scratch, k.nr, /*accumulate=*/false);
    if (accumulate) {
        for (index_t i = 0; i < m; ++i)
            for (index_t j = 0; j < n; ++j)
                c[i * ldc + j] += scratch[i * k.nr + j];
    } else {
        for (index_t i = 0; i < m; ++i)
            for (index_t j = 0; j < n; ++j)
                c[i * ldc + j] = scratch[i * k.nr + j];
    }
}

}  // namespace cake
