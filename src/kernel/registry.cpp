#include "kernel/registry.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/error.hpp"

namespace cake {
namespace {

template <typename T>
const MicroKernelT<T>& microkernel_for_impl(Isa isa)
{
    for (const auto& k : all_microkernels_of<T>()) {
        if (k.isa == isa) {
            CAKE_CHECK_MSG(isa_supported(isa),
                           "ISA " << isa_name(isa) << " not supported by CPU");
            return k;
        }
    }
    throw Error(std::string("no micro-kernel compiled for ISA ")
                + isa_name(isa));
}

template <typename T>
const MicroKernelT<T>& best_microkernel_impl()
{
    static const MicroKernelT<T> chosen = [] {
        if (auto forced = env_string("CAKE_FORCE_ISA")) {
            // parse_forced_isa raises a coded [FORCE_ISA] error on unknown
            // values — an override typo must never fall back silently.
            return microkernel_for_impl<T>(parse_forced_isa(*forced));
        }
        auto supported = supported_microkernels_of<T>();
        CAKE_CHECK(!supported.empty());
        return supported.front();
    }();
    return chosen;
}

}  // namespace

template <>
const std::vector<MicroKernel>& all_microkernels_of<float>()
{
    static const std::vector<MicroKernel> kernels = [] {
        std::vector<MicroKernel> v;
        v.push_back(scalar_microkernel());
#if defined(CAKE_HAVE_AVX2_KERNEL)
        v.push_back(avx2_microkernel());
#endif
#if defined(CAKE_HAVE_AVX512_KERNEL)
        v.push_back(avx512_microkernel());
#endif
        return v;
    }();
    return kernels;
}

template <>
const std::vector<MicroKernelD>& all_microkernels_of<double>()
{
    static const std::vector<MicroKernelD> kernels = [] {
        std::vector<MicroKernelD> v;
        v.push_back(scalar_microkernel_f64());
#if defined(CAKE_HAVE_AVX2_KERNEL)
        v.push_back(avx2_microkernel_f64());
#endif
#if defined(CAKE_HAVE_AVX512_KERNEL)
        v.push_back(avx512_microkernel_f64());
#endif
        return v;
    }();
    return kernels;
}

template <>
const MicroKernel& microkernel_for_of<float>(Isa isa)
{
    return microkernel_for_impl<float>(isa);
}

template <>
const MicroKernelD& microkernel_for_of<double>(Isa isa)
{
    return microkernel_for_impl<double>(isa);
}

template <>
const MicroKernel& best_microkernel_of<float>()
{
    return best_microkernel_impl<float>();
}

template <>
const MicroKernelD& best_microkernel_of<double>()
{
    return best_microkernel_impl<double>();
}

}  // namespace cake
