// Portable scalar micro-kernels. Serve as the correctness oracles for the
// SIMD variants and as the fallback on CPUs without AVX2.
#include "kernel/microkernel.hpp"

namespace cake {
namespace {

template <typename T, index_t kMr, index_t kNr>
void scalar_ukr(index_t kc, const T* a, const T* b, T* c, index_t ldc,
                bool accumulate)
{
    // Local accumulator tile; compilers vectorise this reliably.
    T acc[kMr][kNr] = {};
    for (index_t p = 0; p < kc; ++p) {
        const T* ap = a + p * kMr;
        const T* bp = b + p * kNr;
        for (index_t i = 0; i < kMr; ++i) {
            const T ai = ap[i];
            for (index_t j = 0; j < kNr; ++j) acc[i][j] += ai * bp[j];
        }
    }
    if (accumulate) {
        for (index_t i = 0; i < kMr; ++i)
            for (index_t j = 0; j < kNr; ++j) c[i * ldc + j] += acc[i][j];
    } else {
        for (index_t i = 0; i < kMr; ++i)
            for (index_t j = 0; j < kNr; ++j) c[i * ldc + j] = acc[i][j];
    }
}

}  // namespace

MicroKernel scalar_microkernel()
{
    return {"scalar_8x8", Isa::kScalar, 8, 8, &scalar_ukr<float, 8, 8>};
}

MicroKernelD scalar_microkernel_f64()
{
    return {"scalar_8x8_f64", Isa::kScalar, 8, 8, &scalar_ukr<double, 8, 8>};
}

}  // namespace cake
