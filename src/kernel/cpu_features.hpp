// Runtime CPU feature detection used to dispatch micro-kernels.
#pragma once

#include <string>

namespace cake {

/// Instruction sets the kernel library can target.
enum class Isa {
    kScalar,   ///< portable C++, any CPU
    kAvx2,     ///< AVX2 + FMA
    kAvx512,   ///< AVX-512F
};

/// Human-readable ISA name ("scalar", "avx2", "avx512").
const char* isa_name(Isa isa);

/// Parse an ISA name; throws cake::Error on unknown names.
Isa parse_isa(const std::string& name);

/// Parse a CAKE_FORCE_ISA override. The single choke point every
/// dispatcher (float/double registry, int8 family) routes the env var
/// through: an unknown value throws a cake::Error carrying the stable
/// [FORCE_ISA] code — never a silent fallback to autodetection.
Isa parse_forced_isa(const std::string& value);

/// CPU capabilities detected once at startup.
struct CpuFeatures {
    bool avx2 = false;      ///< AVX2 and FMA both present and OS-enabled
    bool avx512f = false;   ///< AVX-512 Foundation present and OS-enabled
    bool avx512bw = false;  ///< AVX-512 Byte/Word (int8 kernels)
};

/// Detected features of the executing CPU (cached after first call).
const CpuFeatures& cpu_features();

/// True if kernels for `isa` can run on this CPU.
bool isa_supported(Isa isa);

}  // namespace cake
