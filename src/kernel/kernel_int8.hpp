// Quantized (u8 x s8 -> s32) micro-kernels for DNN inference — the
// deployment format of the CNN workloads the paper's introduction
// motivates. Follows the x86 integer dot-product idiom (vpmaddubsw /
// vpmaddwd): the reduction dimension is processed in groups of four.
//
// Packed layouts (kq = round_up(kc, 4) / 4 k-quads):
//   A (uint8): a[q*mr*4 + i*4 + j] = A(i, 4q + j), zero-padded in k and m.
//   B (int8):  b[q*nr*4 + jj*4 + j] = B(4q + j, jj), zero-padded.
// C is int32, row-major with leading dimension ldc.
//
// Range note: the AVX2/AVX-512 kernels use vpmaddubsw, whose int16 pair
// sums saturate. Results are exact whenever every A value is <= 127
// (guaranteed by cake::quantize_unsigned, which maps into [0,127]); the
// scalar kernel is exact over the full u8 range.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "kernel/cpu_features.hpp"

namespace cake {

/// Kernel contract: C(mr x nr) (+)= A_panel * B_panel over kq k-quads.
using Int8KernelFn = void (*)(index_t kq, const std::uint8_t* a,
                              const std::int8_t* b, std::int32_t* c,
                              index_t ldc, bool accumulate);

struct Int8MicroKernel {
    const char* name = "";
    Isa isa = Isa::kScalar;
    index_t mr = 0;
    index_t nr = 0;
    Int8KernelFn fn = nullptr;
};

Int8MicroKernel scalar_int8_microkernel();
#if defined(CAKE_HAVE_AVX2_KERNEL)
Int8MicroKernel avx2_int8_microkernel();  ///< 4x16, needs AVX2
#endif
#if defined(CAKE_HAVE_AVX512_KERNEL)
Int8MicroKernel avx512_int8_microkernel();  ///< 4x32, needs AVX-512BW
#endif

/// All int8 kernels compiled into this binary (regardless of CPU
/// support), scalar first — the int8 mirror of all_microkernels_of<T>().
const std::vector<Int8MicroKernel>& all_int8_microkernels();

/// True if the int8 kernel of `isa` can run on this CPU. Stricter than
/// isa_supported for AVX-512: the 4x32 kernel needs AVX-512BW
/// (vpmaddubsw on zmm), not just the F foundation.
bool int8_isa_supported(Isa isa);

/// Int8 kernels runnable on this CPU, widest first (name tie-break, same
/// deterministic order as supported_microkernels_of).
std::vector<Int8MicroKernel> supported_int8_microkernels();

/// Best int8 kernel runnable on this CPU (honours CAKE_FORCE_ISA).
const Int8MicroKernel& best_int8_microkernel();

/// Run a (possibly partial) m x n tile through `k`; edges go via scratch
/// (mr*nr int32, 64-byte aligned).
void run_int8_tile(const Int8MicroKernel& k, index_t kq,
                   const std::uint8_t* a, const std::int8_t* b,
                   std::int32_t* c, index_t ldc, index_t m, index_t n,
                   bool accumulate, std::int32_t* scratch);

}  // namespace cake
