// 4x32 AVX-512BW u8 x s8 -> s32 micro-kernel. Exact when A values fit
// [0, 127] (see kernel_int8.hpp range note).
#include <immintrin.h>

#include "kernel/kernel_int8.hpp"

namespace cake {
namespace {

constexpr index_t kMr = 4;
constexpr index_t kNr = 32;

void avx512_int8_ukr(index_t kq, const std::uint8_t* a, const std::int8_t* b,
                     std::int32_t* c, index_t ldc, bool accumulate)
{
    const __m512i ones = _mm512_set1_epi16(1);
    __m512i acc[kMr][2];
    for (auto& row : acc) {
        row[0] = _mm512_setzero_si512();
        row[1] = _mm512_setzero_si512();
    }

    for (index_t q = 0; q < kq; ++q) {
        const __m512i b0 = _mm512_load_si512(b + q * kNr * 4);
        const __m512i b1 = _mm512_load_si512(b + q * kNr * 4 + 64);
        const std::uint8_t* aq = a + q * kMr * 4;
        for (index_t i = 0; i < kMr; ++i) {
            const __m512i ai = _mm512_set1_epi32(
                *reinterpret_cast<const std::int32_t*>(aq + i * 4));
            const __m512i p0 =
                _mm512_madd_epi16(_mm512_maddubs_epi16(ai, b0), ones);
            const __m512i p1 =
                _mm512_madd_epi16(_mm512_maddubs_epi16(ai, b1), ones);
            acc[i][0] = _mm512_add_epi32(acc[i][0], p0);
            acc[i][1] = _mm512_add_epi32(acc[i][1], p1);
        }
    }

    for (index_t i = 0; i < kMr; ++i) {
        std::int32_t* ci = c + i * ldc;
        if (accumulate) {
            acc[i][0] = _mm512_add_epi32(acc[i][0],
                                         _mm512_loadu_si512(ci));
            acc[i][1] = _mm512_add_epi32(acc[i][1],
                                         _mm512_loadu_si512(ci + 16));
        }
        _mm512_storeu_si512(ci, acc[i][0]);
        _mm512_storeu_si512(ci + 16, acc[i][1]);
    }
}

}  // namespace

Int8MicroKernel avx512_int8_microkernel()
{
    return {"avx512_int8_4x32", Isa::kAvx512, kMr, kNr, &avx512_int8_ukr};
}

}  // namespace cake
