// 4x16 AVX2 u8 x s8 -> s32 micro-kernel: vpmaddubsw + vpmaddwd idiom.
// Exact when A values fit [0, 127] (see kernel_int8.hpp range note).
#include <immintrin.h>

#include "kernel/kernel_int8.hpp"

namespace cake {
namespace {

constexpr index_t kMr = 4;
constexpr index_t kNr = 16;

void avx2_int8_ukr(index_t kq, const std::uint8_t* a, const std::int8_t* b,
                   std::int32_t* c, index_t ldc, bool accumulate)
{
    const __m256i ones = _mm256_set1_epi16(1);
    __m256i acc[kMr][2];
    for (auto& row : acc) {
        row[0] = _mm256_setzero_si256();
        row[1] = _mm256_setzero_si256();
    }

    for (index_t q = 0; q < kq; ++q) {
        // Two ymm of B: 8 columns each, 4 reduction bytes per 32-bit lane.
        const __m256i b0 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(b + q * kNr * 4));
        const __m256i b1 = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(b + q * kNr * 4 + 32));
        const std::uint8_t* aq = a + q * kMr * 4;
        for (index_t i = 0; i < kMr; ++i) {
            const __m256i ai = _mm256_set1_epi32(
                *reinterpret_cast<const std::int32_t*>(aq + i * 4));
            const __m256i p0 = _mm256_madd_epi16(
                _mm256_maddubs_epi16(ai, b0), ones);
            const __m256i p1 = _mm256_madd_epi16(
                _mm256_maddubs_epi16(ai, b1), ones);
            acc[i][0] = _mm256_add_epi32(acc[i][0], p0);
            acc[i][1] = _mm256_add_epi32(acc[i][1], p1);
        }
    }

    for (index_t i = 0; i < kMr; ++i) {
        std::int32_t* ci = c + i * ldc;
        if (accumulate) {
            acc[i][0] = _mm256_add_epi32(
                acc[i][0],
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ci)));
            acc[i][1] = _mm256_add_epi32(
                acc[i][1],
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(ci + 8)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci), acc[i][0]);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ci + 8), acc[i][1]);
    }
}

}  // namespace

Int8MicroKernel avx2_int8_microkernel()
{
    return {"avx2_int8_4x16", Isa::kAvx2, kMr, kNr, &avx2_int8_ukr};
}

}  // namespace cake
