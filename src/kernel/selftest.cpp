#include "kernel/selftest.hpp"

#include <cmath>

#include "common/aligned.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "kernel/kernel_int8.hpp"
#include "kernel/registry.hpp"
#include "pack/pack_int8.hpp"

namespace cake {
namespace {

template <typename T>
KernelSelfTestResult test_float_kernel(const MicroKernelT<T>& kernel,
                                       const char* family, index_t kc,
                                       Rng& rng)
{
    KernelSelfTestResult result;
    result.kernel = kernel.name;
    result.family = family;

    AlignedBuffer<T> a(static_cast<std::size_t>(kernel.mr * kc));
    AlignedBuffer<T> b(static_cast<std::size_t>(kernel.nr * kc));
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<T>(rng.next_double() * 2 - 1);
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<T>(rng.next_double() * 2 - 1);

    AlignedBuffer<T> c(static_cast<std::size_t>(kernel.mr * kernel.nr),
                       true);
    kernel.fn(kc, a.data(), b.data(), c.data(), kernel.nr, false);

    double worst = 0;
    for (index_t i = 0; i < kernel.mr; ++i) {
        for (index_t j = 0; j < kernel.nr; ++j) {
            long double acc = 0;
            for (index_t p = 0; p < kc; ++p)
                acc += static_cast<long double>(
                           a[static_cast<std::size_t>(p * kernel.mr + i)])
                    * b[static_cast<std::size_t>(p * kernel.nr + j)];
            worst = std::max(
                worst,
                std::abs(static_cast<double>(
                    c[static_cast<std::size_t>(i * kernel.nr + j)]
                    - static_cast<T>(acc))));
        }
    }
    result.max_error = worst;
    const double tol = sizeof(T) == 4 ? gemm_tolerance(kc)
                                      : dgemm_tolerance(kc);
    result.passed = worst <= tol;
    return result;
}

KernelSelfTestResult test_int8_kernel(const Int8MicroKernel& kernel,
                                      index_t kc, Rng& rng)
{
    KernelSelfTestResult result;
    result.kernel = kernel.name;
    result.family = "int8";

    const index_t kq = int8_kq(kc);
    AlignedBuffer<std::uint8_t> a(
        static_cast<std::size_t>(kernel.mr * kq * 4));
    AlignedBuffer<std::int8_t> b(
        static_cast<std::size_t>(kernel.nr * kq * 4));
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<std::uint8_t>(rng.next_below(128));
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<std::int8_t>(
            static_cast<int>(rng.next_below(255)) - 127);

    AlignedBuffer<std::int32_t> c(
        static_cast<std::size_t>(kernel.mr * kernel.nr), true);
    kernel.fn(kq, a.data(), b.data(), c.data(), kernel.nr, false);

    double worst = 0;
    for (index_t i = 0; i < kernel.mr; ++i) {
        for (index_t j = 0; j < kernel.nr; ++j) {
            std::int64_t acc = 0;
            for (index_t q = 0; q < kq; ++q)
                for (index_t d = 0; d < 4; ++d)
                    acc += static_cast<std::int64_t>(
                               a[static_cast<std::size_t>(q * kernel.mr * 4
                                                          + i * 4 + d)])
                        * b[static_cast<std::size_t>(q * kernel.nr * 4
                                                     + j * 4 + d)];
            worst = std::max(
                worst,
                std::abs(static_cast<double>(
                    c[static_cast<std::size_t>(i * kernel.nr + j)] - acc)));
        }
    }
    result.max_error = worst;
    result.passed = worst == 0.0;  // integer kernels must be exact
    return result;
}

}  // namespace

std::vector<KernelSelfTestResult> run_kernel_selftest(index_t kc,
                                                      std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<KernelSelfTestResult> results;
    for (const auto& k : supported_microkernels_of<float>())
        results.push_back(test_float_kernel(k, "f32", kc, rng));
    for (const auto& k : supported_microkernels_of<double>())
        results.push_back(test_float_kernel(k, "f64", kc, rng));
    // int8 family: every compiled-and-supported variant, same contract as
    // the float families (not just scalar + the dispatched best).
    for (const Int8MicroKernel& k : supported_int8_microkernels())
        results.push_back(test_int8_kernel(k, kc, rng));
    return results;
}

bool all_kernels_ok()
{
    for (const auto& r : run_kernel_selftest()) {
        if (!r.passed) return false;
    }
    return true;
}

}  // namespace cake
