#include "ref/naive_gemm.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace cake {

void naive_sgemm(const float* a, index_t lda, const float* b, index_t ldb,
                 float* c, index_t ldc, index_t m, index_t n, index_t k,
                 bool accumulate)
{
    CAKE_CHECK(m >= 0 && n >= 0 && k >= 0);
    if (!accumulate) {
        for (index_t i = 0; i < m; ++i)
            std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
    for (index_t i = 0; i < m; ++i) {
        const float* ai = a + i * lda;
        float* ci = c + i * ldc;
        for (index_t p = 0; p < k; ++p) {
            const float aip = ai[p];
            const float* bp = b + p * ldb;
            for (index_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
        }
    }
}

void blocked_sgemm(const float* a, index_t lda, const float* b, index_t ldb,
                   float* c, index_t ldc, index_t m, index_t n, index_t k,
                   bool accumulate, index_t block)
{
    CAKE_CHECK(block > 0);
    if (!accumulate) {
        for (index_t i = 0; i < m; ++i)
            std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
    }
    for (index_t i0 = 0; i0 < m; i0 += block) {
        const index_t im = std::min(block, m - i0);
        for (index_t p0 = 0; p0 < k; p0 += block) {
            const index_t pm = std::min(block, k - p0);
            for (index_t j0 = 0; j0 < n; j0 += block) {
                const index_t jm = std::min(block, n - j0);
                for (index_t i = 0; i < im; ++i) {
                    const float* ai = a + (i0 + i) * lda + p0;
                    float* ci = c + (i0 + i) * ldc + j0;
                    for (index_t p = 0; p < pm; ++p) {
                        const float aip = ai[p];
                        const float* bp = b + (p0 + p) * ldb + j0;
                        for (index_t j = 0; j < jm; ++j) ci[j] += aip * bp[j];
                    }
                }
            }
        }
    }
}

Matrix oracle_gemm(const Matrix& a, const Matrix& b)
{
    CAKE_CHECK(a.cols() == b.rows());
    const index_t m = a.rows();
    const index_t k = a.cols();
    const index_t n = b.cols();
    Matrix c(m, n);
    std::vector<double> row(static_cast<std::size_t>(n));
    for (index_t i = 0; i < m; ++i) {
        std::fill(row.begin(), row.end(), 0.0);
        for (index_t p = 0; p < k; ++p) {
            const double aip = a.at(i, p);
            const float* bp = b.data() + p * n;
            for (index_t j = 0; j < n; ++j)
                row[static_cast<std::size_t>(j)] += aip * bp[j];
        }
        for (index_t j = 0; j < n; ++j)
            c.at(i, j) = static_cast<float>(row[static_cast<std::size_t>(j)]);
    }
    return c;
}

Matrix naive_gemm(const Matrix& a, const Matrix& b)
{
    CAKE_CHECK(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols());
    naive_sgemm(a.data(), a.cols(), b.data(), b.cols(), c.data(), c.cols(),
                a.rows(), b.cols(), a.cols(), /*accumulate=*/false);
    return c;
}

void naive_dgemm(const double* a, index_t lda, const double* b, index_t ldb,
                 double* c, index_t ldc, index_t m, index_t n, index_t k,
                 bool accumulate)
{
    CAKE_CHECK(m >= 0 && n >= 0 && k >= 0);
    if (!accumulate) {
        for (index_t i = 0; i < m; ++i)
            std::fill(c + i * ldc, c + i * ldc + n, 0.0);
    }
    for (index_t i = 0; i < m; ++i) {
        const double* ai = a + i * lda;
        double* ci = c + i * ldc;
        for (index_t p = 0; p < k; ++p) {
            const double aip = ai[p];
            const double* bp = b + p * ldb;
            for (index_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
        }
    }
}

MatrixD oracle_gemm(const MatrixD& a, const MatrixD& b)
{
    CAKE_CHECK(a.cols() == b.rows());
    const index_t m = a.rows();
    const index_t k = a.cols();
    const index_t n = b.cols();
    MatrixD c(m, n);
    std::vector<long double> row(static_cast<std::size_t>(n));
    for (index_t i = 0; i < m; ++i) {
        std::fill(row.begin(), row.end(), 0.0L);
        for (index_t p = 0; p < k; ++p) {
            const long double aip = a.at(i, p);
            const double* bp = b.data() + p * n;
            for (index_t j = 0; j < n; ++j)
                row[static_cast<std::size_t>(j)] += aip * bp[j];
        }
        for (index_t j = 0; j < n; ++j)
            c.at(i, j) =
                static_cast<double>(row[static_cast<std::size_t>(j)]);
    }
    return c;
}

MatrixD naive_gemm(const MatrixD& a, const MatrixD& b)
{
    CAKE_CHECK(a.cols() == b.rows());
    MatrixD c(a.rows(), b.cols());
    naive_dgemm(a.data(), a.cols(), b.data(), b.cols(), c.data(), c.cols(),
                a.rows(), b.cols(), a.cols(), /*accumulate=*/false);
    return c;
}

}  // namespace cake
