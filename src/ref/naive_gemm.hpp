// Reference matrix multiplications used as correctness oracles and as the
// "no blocking" baseline in ablation benches.
#pragma once

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace cake {

/// Naive i-k-j triple loop (row-major friendly). C (+)= A * B.
/// A is MxK (lda), B is KxN (ldb), C is MxN (ldc).
void naive_sgemm(const float* a, index_t lda, const float* b, index_t ldb,
                 float* c, index_t ldc, index_t m, index_t n, index_t k,
                 bool accumulate);

/// Cache-blocked scalar reference (square blocks), for mid-size oracles.
void blocked_sgemm(const float* a, index_t lda, const float* b, index_t ldb,
                   float* c, index_t ldc, index_t m, index_t n, index_t k,
                   bool accumulate, index_t block = 64);

/// Double-precision accumulation oracle: computes A*B in float64 and rounds
/// once, minimising oracle rounding error for tolerance checks.
Matrix oracle_gemm(const Matrix& a, const Matrix& b);

/// Long-double accumulation oracle for the double-precision (dgemm) path.
MatrixD oracle_gemm(const MatrixD& a, const MatrixD& b);

/// Naive double-precision triple loop. C (+)= A * B.
void naive_dgemm(const double* a, index_t lda, const double* b, index_t ldb,
                 double* c, index_t ldc, index_t m, index_t n, index_t k,
                 bool accumulate);

/// Convenience wrappers over Matrix.
Matrix naive_gemm(const Matrix& a, const Matrix& b);
MatrixD naive_gemm(const MatrixD& a, const MatrixD& b);

}  // namespace cake
