// Cache hierarchy description and host detection.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace cake {

/// One level of cache as seen by a single core.
struct CacheLevel {
    int level = 0;                ///< 1, 2, 3
    std::size_t size_bytes = 0;   ///< total capacity of one cache instance
    std::size_t line_bytes = 64;  ///< coherency line size
    int ways = 8;                 ///< associativity (0 = fully associative)
    int shared_by_cores = 1;      ///< cores sharing one instance
};

/// Data-cache hierarchy, ordered L1 first. L3 may be absent (e.g. the ARM
/// Cortex-A53 in the paper's Table 2).
struct CacheHierarchy {
    std::vector<CacheLevel> levels;

    /// Level by number (1-based); nullopt if not present.
    [[nodiscard]] std::optional<CacheLevel> level(int n) const;

    /// The last-level cache: the "local memory" in the paper's terminology.
    [[nodiscard]] const CacheLevel& llc() const;
};

/// Parse one sysfs cache directory (exposed for tests).
/// `size_str` like "32K", "2048K", "20M"; returns bytes, 0 on parse failure.
std::size_t parse_cache_size(const std::string& size_str);

/// Detect the host's data caches from /sys/devices/system/cpu/cpu0/cache.
/// Falls back to a conservative default hierarchy if sysfs is unavailable.
CacheHierarchy detect_host_caches();

/// The fallback hierarchy used when detection fails (32K/1M/8M, 8/16-way).
CacheHierarchy default_caches();

}  // namespace cake
