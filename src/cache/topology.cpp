#include "cache/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace cake {

std::optional<CacheLevel> CacheHierarchy::level(int n) const
{
    for (const auto& l : levels) {
        if (l.level == n) return l;
    }
    return std::nullopt;
}

const CacheLevel& CacheHierarchy::llc() const
{
    CAKE_CHECK(!levels.empty());
    return levels.back();
}

std::size_t parse_cache_size(const std::string& size_str)
{
    if (size_str.empty()) return 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(size_str.c_str(), &end, 10);
    if (end == size_str.c_str()) return 0;
    std::size_t mult = 1;
    if (*end == 'K' || *end == 'k') mult = 1024;
    else if (*end == 'M' || *end == 'm') mult = 1024 * 1024;
    else if (*end == 'G' || *end == 'g') mult = 1024ULL * 1024 * 1024;
    return static_cast<std::size_t>(v) * mult;
}

CacheHierarchy default_caches()
{
    CacheHierarchy h;
    h.levels = {
        {1, 32 * 1024, 64, 8, 1},
        {2, 1024 * 1024, 64, 16, 1},
        {3, 8 * 1024 * 1024, 64, 16, 4},
    };
    return h;
}

namespace {

std::string read_line(const std::filesystem::path& p)
{
    std::ifstream f(p);
    std::string s;
    if (f) std::getline(f, s);
    return s;
}

int count_cpu_list(const std::string& list)
{
    // Parses "0-3,8-11" style shared_cpu_list strings.
    int count = 0;
    std::size_t i = 0;
    while (i < list.size()) {
        std::size_t end = list.find(',', i);
        if (end == std::string::npos) end = list.size();
        const std::string tok = list.substr(i, end - i);
        const std::size_t dash = tok.find('-');
        if (dash == std::string::npos) {
            if (!tok.empty()) ++count;
        } else {
            const int lo = std::atoi(tok.substr(0, dash).c_str());
            const int hi = std::atoi(tok.substr(dash + 1).c_str());
            count += hi - lo + 1;
        }
        i = end + 1;
    }
    return count > 0 ? count : 1;
}

}  // namespace

CacheHierarchy detect_host_caches()
{
    namespace fs = std::filesystem;
    const fs::path base = "/sys/devices/system/cpu/cpu0/cache";
    std::error_code ec;
    if (!fs::exists(base, ec)) return default_caches();

    CacheHierarchy h;
    for (int idx = 0;; ++idx) {
        const fs::path dir = base / ("index" + std::to_string(idx));
        if (!fs::exists(dir, ec)) break;
        const std::string type = read_line(dir / "type");
        if (type == "Instruction") continue;  // data/unified caches only
        CacheLevel l;
        l.level = std::atoi(read_line(dir / "level").c_str());
        l.size_bytes = parse_cache_size(read_line(dir / "size"));
        const std::string line = read_line(dir / "coherency_line_size");
        if (!line.empty()) l.line_bytes = static_cast<std::size_t>(std::atoi(line.c_str()));
        const std::string ways = read_line(dir / "ways_of_associativity");
        if (!ways.empty()) l.ways = std::atoi(ways.c_str());
        l.shared_by_cores = count_cpu_list(read_line(dir / "shared_cpu_list"));
        if (l.level > 0 && l.size_bytes > 0) h.levels.push_back(l);
    }
    if (h.levels.empty()) return default_caches();
    std::sort(h.levels.begin(), h.levels.end(),
              [](const CacheLevel& a, const CacheLevel& b) {
                  return a.level < b.level;
              });
    return h;
}

}  // namespace cake
