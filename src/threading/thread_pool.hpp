// Persistent worker pool: the software stand-in for the paper's grid of
// processing cores. Threads are created once (CP.41) and joined by RAII
// (CP.25); waits always use condition predicates (CP.42).
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace cake {

/// Fixed-size pool executing "team jobs": a job runs the same callable on
/// worker ids 0..n-1 in parallel and returns when all have finished.
/// The calling thread participates as worker 0, so a pool of size p uses
/// p-1 background threads.
class ThreadPool {
public:
    /// Creates a pool able to run jobs of width up to `size`.
    explicit ThreadPool(int size);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int size() const { return size_; }

    /// Run `fn(tid)` for tid in [0, width) across the pool and block until
    /// every invocation returns. `width` must be in [1, size()].
    /// If any invocation throws, the first exception is rethrown here after
    /// all workers finish.
    void run(int width, const std::function<void(int)>& fn);

    /// Parallel loop: split [begin, end) into `width` contiguous chunks and
    /// run `fn(chunk_begin, chunk_end)` on each (empty chunks are skipped).
    void parallel_for(index_t begin, index_t end, int width,
                      const std::function<void(index_t, index_t)>& fn);

private:
    void worker_loop(int worker_id);
    void execute_slot(int tid);

    const int size_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    bool stop_ = false;
    long job_id_ = 0;          ///< generation counter for job dispatch
    int job_width_ = 0;        ///< workers participating in current job
    int remaining_ = 0;        ///< workers not yet finished in current job
    const std::function<void(int)>* job_fn_ = nullptr;
    std::exception_ptr first_error_;
};

}  // namespace cake
