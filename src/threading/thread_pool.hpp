// Persistent worker pool: the software stand-in for the paper's grid of
// processing cores. Threads are created once (CP.41) and joined by RAII
// (CP.25); waits always use condition predicates (CP.42).
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "threading/barrier.hpp"

namespace cake {

/// Shared state of one persistent team launched with ThreadPool::run_team:
/// a low-latency spin barrier sized to the team plus first-error capture.
/// Team code synchronises its internal phases with barrier() instead of
/// returning to the pool between phases, so a phase transition costs a
/// barrier crossing rather than a condvar sleep/wakeup round trip.
///
/// Error protocol: record_error() stores the first exception and *breaks*
/// the barrier, releasing every current and future waiter — after that,
/// barrier() no longer synchronises and team code is expected to poll
/// has_error() and drain its remaining work. run_team rethrows the
/// recorded exception once every member has returned.
class TeamContext {
public:
    explicit TeamContext(int width) : width_(width), barrier_(width) {}

    TeamContext(const TeamContext&) = delete;
    TeamContext& operator=(const TeamContext&) = delete;

    [[nodiscard]] int width() const { return width_; }

    /// Phase barrier for all team members (spin-then-yield; no-op once an
    /// error has been recorded).
    void barrier() { barrier_.arrive_and_wait(); }

    /// Completed barrier phases (for tests).
    [[nodiscard]] long barrier_generation() const
    {
        return barrier_.generation();
    }

    /// Record the first error raised by any member and break the barrier
    /// so no teammate is left waiting. Later calls are ignored.
    void record_error(std::exception_ptr error) noexcept;

    [[nodiscard]] bool has_error() const noexcept
    {
        return has_error_.load(std::memory_order_acquire);
    }

    [[nodiscard]] std::exception_ptr first_error() const;

private:
    const int width_;
    SpinBarrier barrier_;
    std::atomic<bool> has_error_{false};
    mutable std::mutex error_mutex_;
    std::exception_ptr error_;
};

/// Fixed-size pool executing "team jobs": a job runs the same callable on
/// worker ids 0..n-1 in parallel and returns when all have finished.
/// The calling thread participates as worker 0, so a pool of size p uses
/// p-1 background threads.
class ThreadPool {
public:
    /// Creates a pool able to run jobs of width up to `size`.
    explicit ThreadPool(int size);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] int size() const { return size_; }

    /// Run `fn(tid)` for tid in [0, width) across the pool and block until
    /// every invocation returns. `width` must be in [1, size()].
    /// If any invocation throws, the first exception is rethrown here after
    /// all workers finish.
    ///
    /// Must not be called with width > 1 from inside one of this pool's
    /// own jobs: the nested job would wait on workers that are themselves
    /// waiting for it. Such calls throw cake::Error instead of
    /// deadlocking. width == 1 runs inline and is always safe.
    void run(int width, const std::function<void(int)>& fn);

    /// Persistent-team mode: run `fn(team, tid)` for tid in [0, width) and
    /// keep every worker resident inside `fn` until it returns — the team
    /// synchronises its own internal phases with team.barrier() instead of
    /// paying a condvar dispatch per phase. Exceptions escaping `fn` are
    /// recorded in the TeamContext (breaking the barrier so no teammate
    /// hangs) and the first one is rethrown after all members return.
    /// After an error, team barriers stop synchronising: long-lived team
    /// code should poll team.has_error() and bail out.
    void run_team(int width,
                  const std::function<void(TeamContext&, int)>& fn);

    /// Parallel loop: split [begin, end) into `width` contiguous chunks and
    /// run `fn(chunk_begin, chunk_end)` on each (empty chunks are skipped).
    void parallel_for(index_t begin, index_t end, int width,
                      const std::function<void(index_t, index_t)>& fn);

private:
    void worker_loop(int worker_id);
    void execute_slot(int tid);

    const int size_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    bool stop_ = false;
    long job_id_ = 0;          ///< generation counter for job dispatch
    int job_width_ = 0;        ///< workers participating in current job
    int remaining_ = 0;        ///< workers not yet finished in current job
    const std::function<void(int)>* job_fn_ = nullptr;
    std::exception_ptr first_error_;
};

}  // namespace cake
