#include "threading/barrier.hpp"

#include "common/error.hpp"

namespace cake {

Barrier::Barrier(int participants) : participants_(participants)
{
    CAKE_CHECK(participants >= 1);
}

void Barrier::arrive_and_wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const long my_generation = generation_;
    if (++waiting_ == participants_) {
        waiting_ = 0;
        ++generation_;
        lock.unlock();
        cv_.notify_all();
        return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
}

long Barrier::generation() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generation_;
}

}  // namespace cake
