#include "threading/barrier.hpp"

#include <thread>

#include "analysis/racecheck.hpp"
#include "analysis/schedshake.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"

namespace cake {

namespace {

obs::MetricId barrier_wait_hist()
{
    static const obs::MetricId id = obs::histogram(
        "threading.barrier.wait_ns", obs::latency_bounds_ns());
    return id;
}

/// One barrier crossing's span + wait-latency observation. RAII so every
/// return path in arrive_and_wait (fast, last-arriver, spin, sleep,
/// broken) is attributed. Compiles to nothing in CAKE_TRACE_DISABLED
/// builds; costs two relaxed flag loads when tracing is disarmed.
struct BarrierWaitObs {
    /// Counter delta for the wait, attributed to the barrier (stall)
    /// phase — gives the cake_perf stall row its cycles/instructions.
    obs::perf::ScopedPhaseDelta perf{obs::Phase::kBarrier};
    std::uint64_t t0 = 0;
    bool armed = false;

    BarrierWaitObs()
    {
        if (obs::enabled() || obs::metrics_enabled()) {
            armed = true;
            t0 = obs::now_ns();
        }
    }
    BarrierWaitObs(const BarrierWaitObs&) = delete;
    BarrierWaitObs& operator=(const BarrierWaitObs&) = delete;
    ~BarrierWaitObs()
    {
        if (!armed) return;
        const std::uint64_t t1 = obs::now_ns();
        obs::emit_span("barrier.wait", obs::Phase::kBarrier, t0, t1);
        obs::histogram_observe(barrier_wait_hist(),
                               static_cast<double>(t1 - t0));
    }
};

}  // namespace

Barrier::Barrier(int participants) : participants_(participants)
{
    CAKE_CHECK(participants >= 1);
}

void Barrier::arrive_and_wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const long my_generation = generation_;
    if (++waiting_ == participants_) {
        waiting_ = 0;
        ++generation_;
        lock.unlock();
        cv_.notify_all();
        return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
}

long Barrier::generation() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return generation_;
}

namespace {

/// Pause briefly inside a spin loop without giving up the time slice.
inline void cpu_relax() noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Spin iterations before falling back to yield. Kept small: when the
/// machine is oversubscribed (more workers than hardware threads) the
/// missing participant cannot arrive until we yield the core to it.
constexpr int kSpinIters = 256;

/// Yields tolerated after the spin budget before blocking on the condvar.
/// Covers ordinary scheduling jitter; a participant still missing after
/// this many yields is not going to arrive within a time slice, so
/// continuing to yield would only steal CPU from it.
constexpr int kYieldIters = 32;

}  // namespace

SpinBarrier::SpinBarrier(int participants) : participants_(participants)
{
    CAKE_CHECK(participants >= 1);
    // CAKE_RACECHECK: barriers live on run_team stack frames, so a new
    // barrier may reuse the address of a dead one; drop any stale clocks.
    racecheck::on_barrier_create(this);
}

void SpinBarrier::arrive_and_wait()
{
    if (broken_.load(std::memory_order_acquire)) return;
    BarrierWaitObs wait_obs;
    schedshake::interleave_point(schedshake::Point::kBarrierArrive);
    if (participants_ == 1) {
        const long gen = generation_.load(std::memory_order_relaxed);
        racecheck::on_barrier_arrive(this, gen, participants_);
        generation_.fetch_add(1, std::memory_order_acq_rel);
        racecheck::on_barrier_depart(this, gen);
        return;
    }
    const long gen = generation_.load(std::memory_order_acquire);
    // CAKE_RACECHECK: the arrive hook merges this thread's clock into the
    // generation's gather and must run *before* the fetch_add below — once
    // the last arriver bumps generation_, any teammate may depart and has
    // to observe every arrival's contribution.
    racecheck::on_barrier_arrive(this, gen, participants_);
    // Arrivals form a release sequence on arrived_: the last arriver's RMW
    // acquires every earlier arrival's writes, and its store to generation_
    // publishes them to all waiters. seq_cst on the generation bump and the
    // sleepers_ check below pairs with the seq_cst in the waiter's slow
    // path: either the waiter observes the new generation before sleeping
    // or the releaser observes the registered sleeper and notifies.
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1
        == participants_) {
        arrived_.store(0, std::memory_order_relaxed);
        generation_.fetch_add(1, std::memory_order_seq_cst);
        if (sleepers_.load(std::memory_order_seq_cst) > 0) {
            { std::lock_guard<std::mutex> lock(sleep_mutex_); }
            sleep_cv_.notify_all();
        }
        racecheck::on_barrier_depart(this, gen);
        schedshake::interleave_point(schedshake::Point::kBarrierDepart);
        return;
    }
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen
           && !broken_.load(std::memory_order_acquire)) {
        ++spins;
        if (spins < kSpinIters) {
            cpu_relax();
        } else if (spins < kSpinIters + kYieldIters) {
            std::this_thread::yield();
        } else {
            sleepers_.fetch_add(1, std::memory_order_seq_cst);
            {
                std::unique_lock<std::mutex> lock(sleep_mutex_);
                sleep_cv_.wait(lock, [&] {
                    return generation_.load(std::memory_order_seq_cst) != gen
                        || broken_.load(std::memory_order_acquire);
                });
            }
            sleepers_.fetch_sub(1, std::memory_order_relaxed);
            // CAKE_RACECHECK: only a real generation crossing is a
            // happens-before edge — a waiter released by break_barrier()
            // did not synchronise with anyone and must not merge clocks.
            if (generation_.load(std::memory_order_acquire) != gen) {
                racecheck::on_barrier_depart(this, gen);
            }
            schedshake::interleave_point(
                schedshake::Point::kBarrierDepart);
            return;
        }
    }
    if (generation_.load(std::memory_order_acquire) != gen) {
        racecheck::on_barrier_depart(this, gen);
    }
    schedshake::interleave_point(schedshake::Point::kBarrierDepart);
}

void SpinBarrier::break_barrier() noexcept
{
    broken_.store(true, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
        { std::lock_guard<std::mutex> lock(sleep_mutex_); }
        sleep_cv_.notify_all();
    }
}

}  // namespace cake
