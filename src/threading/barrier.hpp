// Sense-reversing centralized barrier for synchronising the worker "cores"
// between CB-block phases.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace cake {

/// Reusable barrier for a fixed number of participants.
/// Unlike std::barrier, exposes the generation count for tests.
class Barrier {
public:
    explicit Barrier(int participants);

    Barrier(const Barrier&) = delete;
    Barrier& operator=(const Barrier&) = delete;

    /// Block until all participants have arrived; the barrier then resets
    /// for the next phase.
    void arrive_and_wait();

    [[nodiscard]] int participants() const { return participants_; }

    /// Number of completed phases (all participants arrived).
    [[nodiscard]] long generation() const;

private:
    const int participants_;
    int waiting_ = 0;
    long generation_ = 0;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
};

}  // namespace cake
