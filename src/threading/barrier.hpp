// Barriers for synchronising the worker "cores" between CB-block phases:
// a classic mutex/condvar Barrier (sleeps, cheap when phases are long) and
// a sense-reversing SpinBarrier (spin-then-yield, low latency when phases
// are short — the per-block phases of the pipelined executor).
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace cake {

/// Reusable barrier for a fixed number of participants.
/// Unlike std::barrier, exposes the generation count for tests.
class Barrier {
public:
    explicit Barrier(int participants);

    Barrier(const Barrier&) = delete;
    Barrier& operator=(const Barrier&) = delete;

    /// Block until all participants have arrived; the barrier then resets
    /// for the next phase.
    void arrive_and_wait();

    [[nodiscard]] int participants() const { return participants_; }

    /// Number of completed phases (all participants arrived).
    [[nodiscard]] long generation() const;

private:
    const int participants_;
    int waiting_ = 0;
    long generation_ = 0;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
};

/// Sense-reversing centralized barrier whose waiters escalate
/// spin -> yield -> block: a short pause-spin catches teammates that are
/// only an item apart (no system call at all), a few yields cover normal
/// scheduling jitter, and only then does a waiter sleep on a condition
/// variable — so on a dedicated machine crossing costs no syscall, while
/// on an oversubscribed one (fewer hardware threads than participants) it
/// degrades to condvar cost instead of burning time slices the missing
/// participant needs. Suitable for the many short per-block phases of the
/// pipelined executor where condvar wakeup latency would dominate.
///
/// A barrier can be permanently *broken* (break_barrier): current and
/// future waiters return immediately without synchronising. This is the
/// escape hatch for error propagation — a worker that fails must not leave
/// its teammates spinning forever.
class SpinBarrier {
public:
    explicit SpinBarrier(int participants);

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    /// Spin (then yield, then block) until all participants have arrived,
    /// then reset for the next phase. Returns immediately if the barrier
    /// is broken.
    void arrive_and_wait();

    /// Permanently release current and future waiters. After this call the
    /// barrier no longer synchronises anything; callers are expected to
    /// notice the error out of band and unwind.
    void break_barrier() noexcept;

    [[nodiscard]] bool broken() const noexcept
    {
        return broken_.load(std::memory_order_acquire);
    }

    [[nodiscard]] int participants() const { return participants_; }

    /// Number of completed phases.
    [[nodiscard]] long generation() const noexcept
    {
        return generation_.load(std::memory_order_acquire);
    }

private:
    const int participants_;
    std::atomic<int> arrived_{0};
    std::atomic<long> generation_{0};
    std::atomic<bool> broken_{false};

    // Blocking slow path: waiters that exhausted their spin/yield budget
    // sleep here until the releasing arrival (or break_barrier) wakes them.
    std::atomic<int> sleepers_{0};
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
};

}  // namespace cake
