#include "threading/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cake {

ThreadPool::ThreadPool(int size) : size_(size)
{
    CAKE_CHECK(size >= 1);
    workers_.reserve(static_cast<std::size_t>(size - 1));
    for (int i = 1; i < size; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::execute_slot(int tid)
{
    const std::function<void(int)>* fn = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn = job_fn_;
    }
    try {
        (*fn)(tid);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
    }
    bool last = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        last = (--remaining_ == 0);
    }
    if (last) done_cv_.notify_all();
}

void ThreadPool::worker_loop(int worker_id)
{
    long seen_job = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return stop_ || (job_id_ != seen_job && worker_id < job_width_);
            });
            if (stop_) return;
            seen_job = job_id_;
        }
        execute_slot(worker_id);
    }
}

void ThreadPool::run(int width, const std::function<void(int)>& fn)
{
    CAKE_CHECK_MSG(width >= 1 && width <= size_,
                   "job width " << width << " outside [1, " << size_ << "]");
    if (width == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_fn_ = &fn;
        job_width_ = width;
        remaining_ = width;
        first_error_ = nullptr;
        ++job_id_;
    }
    start_cv_.notify_all();
    execute_slot(0);  // calling thread is worker 0
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return remaining_ == 0; });
        err = first_error_;
        job_fn_ = nullptr;
        job_width_ = 0;
    }
    if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(index_t begin, index_t end, int width,
                              const std::function<void(index_t, index_t)>& fn)
{
    CAKE_CHECK(begin <= end);
    const index_t total = end - begin;
    if (total == 0) return;
    width = static_cast<int>(
        std::min<index_t>(width, std::max<index_t>(total, 1)));
    width = std::clamp(width, 1, size_);
    const index_t chunk = (total + width - 1) / width;
    run(width, [&](int tid) {
        const index_t lo = begin + tid * chunk;
        const index_t hi = std::min(end, lo + chunk);
        if (lo < hi) fn(lo, hi);
    });
}

}  // namespace cake
