#include "threading/thread_pool.hpp"

#include <algorithm>

#include "analysis/racecheck.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"

namespace cake {

namespace {

/// Pool whose job the current thread is executing (nullptr outside jobs).
/// Lets run()/run_team() detect re-entrant dispatch, which would deadlock:
/// the nested job waits on workers that are waiting for the outer job.
thread_local const ThreadPool* tls_active_pool = nullptr;

obs::MetricId pool_jobs_counter()
{
    static const obs::MetricId id = obs::counter("threading.pool.jobs");
    return id;
}

/// Tag the current thread with its team tid for the obs tracer, restoring
/// the previous attribution on scope exit (nested dispatch keeps the outer
/// job's id after the inner one completes). Also pre-opens the thread's
/// perf counter group when the counter layer is armed, so the
/// perf_event_open/ioctl setup cost lands here — at job dispatch — instead
/// of inside the first timed phase scope of the job body.
struct ScopedWorkerId {
    int prev;

    explicit ScopedWorkerId(int tid) : prev(obs::thread_worker())
    {
        obs::set_thread_worker(tid);
        obs::perf::ensure_thread_counters();
    }
    ScopedWorkerId(const ScopedWorkerId&) = delete;
    ScopedWorkerId& operator=(const ScopedWorkerId&) = delete;
    ~ScopedWorkerId() { obs::set_thread_worker(prev); }
};

}  // namespace

void TeamContext::record_error(std::exception_ptr error) noexcept
{
    {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_) error_ = error;
    }
    has_error_.store(true, std::memory_order_release);
    barrier_.break_barrier();
}

std::exception_ptr TeamContext::first_error() const
{
    std::lock_guard<std::mutex> lock(error_mutex_);
    return error_;
}

ThreadPool::ThreadPool(int size) : size_(size)
{
    CAKE_CHECK(size >= 1);
    // CAKE_RACECHECK: a pool constructed at a recycled address must not
    // inherit a dead pool's fork/join clocks.
    racecheck::on_pool_create(this);
    workers_.reserve(static_cast<std::size_t>(size - 1));
    for (int i = 1; i < size; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::execute_slot(int tid)
{
    const std::function<void(int)>* fn = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        fn = job_fn_;
    }
    const ThreadPool* prev_pool = tls_active_pool;
    tls_active_pool = this;
    ScopedWorkerId worker_id(tid);
    // CAKE_RACECHECK fork edge: everything the dispatching thread did
    // before run() happened-before this member's work. The matching exit
    // hook folds this member's clock into the pool's join clock *before*
    // the remaining_ decrement that releases the caller.
    racecheck::on_worker_enter(this, tid);
    try {
        (*fn)(tid);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
    }
    tls_active_pool = prev_pool;
    racecheck::on_worker_exit(this);
    bool last = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        last = (--remaining_ == 0);
    }
    if (last) done_cv_.notify_all();
}

void ThreadPool::worker_loop(int worker_id)
{
    long seen_job = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return stop_ || (job_id_ != seen_job && worker_id < job_width_);
            });
            if (stop_) return;
            seen_job = job_id_;
        }
        execute_slot(worker_id);
    }
}

void ThreadPool::run(int width, const std::function<void(int)>& fn)
{
    CAKE_CHECK_MSG(width >= 1 && width <= size_,
                   "job width " << width << " outside [1, " << size_ << "]");
    obs::counter_add(pool_jobs_counter(), 1);
    if (width == 1) {
        ScopedWorkerId worker_id(0);
        fn(0);
        return;
    }
    CAKE_CHECK_MSG(tls_active_pool != this,
                   "re-entrant ThreadPool::run from inside one of this "
                   "pool's own jobs would deadlock; restructure as a single "
                   "job or use run_team with team barriers");
    racecheck::on_fork(this);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_fn_ = &fn;
        job_width_ = width;
        remaining_ = width;
        first_error_ = nullptr;
        ++job_id_;
    }
    start_cv_.notify_all();
    execute_slot(0);  // calling thread is worker 0
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return remaining_ == 0; });
        err = first_error_;
        job_fn_ = nullptr;
        job_width_ = 0;
    }
    // CAKE_RACECHECK join edge: every member's work happened-before the
    // code after run() returns (or rethrows).
    racecheck::on_join(this);
    if (err) std::rethrow_exception(err);
}

void ThreadPool::run_team(int width,
                          const std::function<void(TeamContext&, int)>& fn)
{
    CAKE_CHECK_MSG(width >= 1 && width <= size_,
                   "team width " << width << " outside [1, " << size_
                                 << "]");
    TeamContext ctx(width);
    auto member = [&](int tid) {
        try {
            fn(ctx, tid);
        } catch (...) {
            ctx.record_error(std::current_exception());
        }
    };
    if (width == 1) {
        ScopedWorkerId worker_id(0);
        member(0);
    } else {
        CAKE_CHECK_MSG(tls_active_pool != this,
                       "re-entrant ThreadPool::run_team from inside one of "
                       "this pool's own jobs would deadlock");
        run(width, member);
    }
    if (auto err = ctx.first_error()) std::rethrow_exception(err);
}

void ThreadPool::parallel_for(index_t begin, index_t end, int width,
                              const std::function<void(index_t, index_t)>& fn)
{
    CAKE_CHECK(begin <= end);
    const index_t total = end - begin;
    if (total == 0) return;
    width = static_cast<int>(
        std::min<index_t>(width, std::max<index_t>(total, 1)));
    width = std::clamp(width, 1, size_);
    const index_t chunk = (total + width - 1) / width;
    run(width, [&](int tid) {
        const index_t lo = begin + tid * chunk;
        const index_t hi = std::min(end, lo + chunk);
        if (lo < hi) fn(lo, hi);
    });
}

}  // namespace cake
