// Discrete-event engine for the CAKE architecture simulator — the portable
// replacement for the paper's SystemC/MatchLib simulator (§6.2).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cake {
namespace sim {

/// Time-ordered event queue. Events scheduled for the same instant run in
/// scheduling order (stable), which keeps simulations deterministic.
class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Schedule `fn` at absolute time `time` (>= now()).
    void schedule(double time, Callback fn);

    /// Run the earliest event; returns false if the queue is empty.
    bool run_one();

    /// Run until no events remain; returns the final simulation time.
    double run_all();

    [[nodiscard]] double now() const { return now_; }
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }

private:
    struct Event {
        double time;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    double now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sim
}  // namespace cake
