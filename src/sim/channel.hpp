// Bandwidth-limited channels connecting simulated modules.
#pragma once

#include <functional>
#include <string>

#include "sim/event.hpp"
#include "sim/packet.hpp"

namespace cake {
namespace sim {

/// A serial channel with fixed bandwidth: packets occupy it back to back
/// (FIFO). Models both the external DRAM link and the internal
/// local-memory <-> core-grid link.
class Channel {
public:
    /// `rmw_bytes_per_second` is the service rate for kPartialC packets
    /// (read-modify-write round trips); 0 means same as the default rate.
    Channel(EventQueue& queue, double bytes_per_second, std::string name,
            double rmw_bytes_per_second = 0.0);

    /// Occupancy interval of one transfer on the channel.
    struct Interval {
        double start = 0;
        double end = 0;
    };

    /// Enqueue `packet` for transfer, starting no earlier than `ready`.
    /// `on_delivered(t)` fires at completion time t. Returns the transfer's
    /// channel-occupancy interval (known immediately under FIFO service).
    Interval transfer(double ready, const Packet& packet,
                      std::function<void(double)> on_delivered = {});

    [[nodiscard]] double busy_seconds() const { return busy_seconds_; }
    [[nodiscard]] double busy_until() const { return busy_until_; }
    [[nodiscard]] const PacketCounters& counters() const { return counters_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] double bytes_per_second() const { return bytes_per_second_; }

private:
    EventQueue& queue_;
    double bytes_per_second_;
    double rmw_bytes_per_second_;
    std::string name_;
    double busy_until_ = 0.0;
    double busy_seconds_ = 0.0;
    PacketCounters counters_;
};

}  // namespace sim
}  // namespace cake
