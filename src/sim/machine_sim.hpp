// The CAKE architecture simulator (§6.2): models the timing of CB-block
// execution on a configurable machine — external-memory channel, local
// memory, and a grid of cores — using the discrete-event engine and
// source-routed packets. Reproduces the multi-core scaling experiments
// (Figs. 9-12) that a single-core host cannot run natively, and validates
// the block schedule's numerical correctness on real data.
//
// Pipeline model: CB blocks execute sequentially on the core grid while
// the next block's IO surfaces stream in (double buffering, §2.1: "the IO
// time for the three surfaces will match the computation time of the
// block, allowing IO to overlap computation").
#pragma once

#include <cstdint>

#include "core/schedule.hpp"
#include "core/tiling.hpp"
#include "machine/machine.hpp"
#include "model/throughput.hpp"
#include "sim/packet.hpp"
#include "sim/timeline.hpp"

namespace cake {
namespace sim {

/// Which algorithm's pipeline to simulate.
enum class Algorithm {
    kCake,
    kGoto,
};

/// Simulation inputs.
struct SimConfig {
    MachineSpec machine;
    int p = 1;
    GemmShape shape;
    model::KernelShape kernel;  ///< register tile (default 6x16)
    TilingOptions topts;
    ScheduleKind schedule = ScheduleKind::kKFirstSerpentine;
    /// 2.5D-style decomposition (CAKE only): split the K grid into this
    /// many contiguous layers and run the (M, N) traversal once per layer
    /// (build_layered_schedule). 1 = the plain 2D schedule. The multi-core
    /// sweep uses this to trade partial-C spill traffic against a smaller
    /// per-pass K working set.
    index_t k_layers = 1;
    Algorithm algorithm = Algorithm::kCake;
    /// Optional: record every fetch/compute/drain interval for Chrome-trace
    /// export (sim/timeline.hpp). Not owned.
    Timeline* timeline = nullptr;
    /// Functional mode (CAKE only): blocks carry real data — each compute-
    /// completion event performs the block's actual partial product, as
    /// the paper's SystemC simulator did, and SimResult::max_abs_error
    /// reports the final deviation from a float64 oracle. Use small
    /// shapes; the naive per-block math is O(M*N*K).
    bool validate_data = false;
    std::uint64_t validate_seed = 42;
};

/// Simulation outputs.
struct SimResult {
    double seconds = 0;
    double gflops = 0;
    double avg_dram_bw_gbs = 0;       ///< DRAM bytes / simulated seconds
    std::uint64_t dram_bytes = 0;
    double dram_busy_frac = 0;        ///< DRAM channel occupancy
    double core_busy_frac = 0;        ///< core-grid occupancy
    index_t steps = 0;                ///< pipeline macro-steps executed
    CbBlockParams params;             ///< CAKE geometry (when applicable)
    PacketCounters packets;           ///< per-kind packet accounting
    /// Functional mode only: max |C - oracle| after the simulated run.
    double max_abs_error = 0;
};

/// Run the timing simulation.
SimResult simulate(const SimConfig& config);

/// Multi-tenant co-scheduling (§6.1: CAKE "can also help reduce searches
/// for optimal multi-tenant schedules"): several GEMMs run concurrently,
/// each on its own core grid, all sharing one DRAM channel. Tenants whose
/// schedules demand constant external bandwidth (CAKE) interfere far less
/// than tenants whose demand grows with cores (GOTO).
struct MultiTenantResult {
    std::vector<SimResult> tenants;  ///< per-tenant metrics over its own span
    double makespan = 0;             ///< time until the last tenant finishes
    double aggregate_gflops = 0;     ///< total work / makespan
    double dram_busy_frac = 0;       ///< shared-channel occupancy
};

/// All configs must target the same machine (its DRAM feeds the shared
/// channel); each config brings its own `p` core grid.
MultiTenantResult simulate_shared_dram(const std::vector<SimConfig>& configs,
                                       Timeline* timeline = nullptr);

/// Functional validation (the paper's stated purpose for its simulator):
/// execute the CB-block schedule on real random data — each block computed
/// as an independent partial product, accumulated in schedule order — and
/// return the max absolute error against a float64 oracle. Any block
/// missed, duplicated or mis-indexed by the scheduler produces a large
/// error here.
double validate_schedule_numerics(const GemmShape& shape,
                                  const CbBlockParams& params,
                                  ScheduleKind kind, std::uint64_t seed = 42);

}  // namespace sim
}  // namespace cake
