#include "sim/timeline.hpp"

#include <algorithm>
#include <ostream>

namespace cake {
namespace sim {

const char* slice_kind_name(SliceKind kind)
{
    switch (kind) {
        case SliceKind::kFetch: return "fetch";
        case SliceKind::kCompute: return "compute";
        case SliceKind::kDrain: return "drain";
    }
    return "unknown";
}

double Timeline::span() const
{
    double latest = 0;
    for (const Slice& s : slices_) latest = std::max(latest, s.end);
    return latest;
}

void Timeline::write_chrome_trace(std::ostream& os) const
{
    os << "[";
    bool first = true;
    for (const Slice& s : slices_) {
        if (!first) os << ",";
        first = false;
        const int tid = s.kind == SliceKind::kCompute ? 1 : 0;
        os << "\n{\"name\":\"" << slice_kind_name(s.kind);
        if (s.kind != SliceKind::kCompute) {
            os << ' ' << packet_kind_name(s.packet);
        }
        os << "\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":" << s.start * 1e6
           << ",\"dur\":" << s.duration() * 1e6 << ",\"pid\":" << s.tenant
           << ",\"tid\":" << tid << ",\"args\":{\"step\":" << s.step
           << "}}";
    }
    os << "\n]\n";
}

}  // namespace sim
}  // namespace cake
