#include "sim/timeline.hpp"

#include <algorithm>
#include <ostream>

#include "obs/metrics.hpp"

namespace cake {
namespace sim {

void Timeline::record(Slice slice)
{
    slices_.push_back(slice);
    if (!obs::metrics_enabled()) return;
    static const obs::MetricId fetches =
        obs::counter("sim.timeline.fetch_slices");
    static const obs::MetricId computes =
        obs::counter("sim.timeline.compute_slices");
    static const obs::MetricId drains =
        obs::counter("sim.timeline.drain_slices");
    static const obs::MetricId dur_hist = obs::histogram(
        "sim.timeline.slice_ns", obs::latency_bounds_ns());
    switch (slice.kind) {
        case SliceKind::kFetch: obs::counter_add(fetches, 1); break;
        case SliceKind::kCompute: obs::counter_add(computes, 1); break;
        case SliceKind::kDrain: obs::counter_add(drains, 1); break;
    }
    // Modelled (simulated) seconds, published on the same ns scale the
    // wall-clock histograms use so one table renders both.
    obs::histogram_observe(dur_hist, slice.duration() * 1e9);
}

const char* slice_kind_name(SliceKind kind)
{
    switch (kind) {
        case SliceKind::kFetch: return "fetch";
        case SliceKind::kCompute: return "compute";
        case SliceKind::kDrain: return "drain";
    }
    return "unknown";
}

double Timeline::span() const
{
    double latest = 0;
    for (const Slice& s : slices_) latest = std::max(latest, s.end);
    return latest;
}

void Timeline::write_chrome_trace(std::ostream& os) const
{
    os << "[";
    bool first = true;
    for (const Slice& s : slices_) {
        if (!first) os << ",";
        first = false;
        const int tid = s.kind == SliceKind::kCompute ? 1 : 0;
        os << "\n{\"name\":\"" << slice_kind_name(s.kind);
        if (s.kind != SliceKind::kCompute) {
            os << ' ' << packet_kind_name(s.packet);
        }
        os << "\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":" << s.start * 1e6
           << ",\"dur\":" << s.duration() * 1e6 << ",\"pid\":" << s.tenant
           << ",\"tid\":" << tid << ",\"args\":{\"step\":" << s.step
           << "}}";
    }
    os << "\n]\n";
}

}  // namespace sim
}  // namespace cake
