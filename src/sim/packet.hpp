// Standardized packets for all communication between simulated hardware
// modules (paper §6.2): each packet carries a source route and the tile /
// CB-block indices it belongs to, so schedules can be modified by editing
// packet headers rather than module logic.
#pragma once

#include <cstdint>

#include "core/schedule.hpp"

namespace cake {
namespace sim {

/// What a packet carries.
enum class PacketKind : std::uint8_t {
    kSurfaceA,   ///< A input surface (DRAM -> local memory)
    kSurfaceB,   ///< B input surface (DRAM -> local memory)
    kResultC,    ///< completed result surface (local memory -> DRAM)
    kPartialC,   ///< spilled partial results (local <-> DRAM, non-K-first)
    kBroadcastB, ///< B tiles broadcast from local memory to a core column
};

const char* packet_kind_name(PacketKind kind);

/// Hops a packet can traverse (source routing: the full route is fixed at
/// packet creation in the external-memory module).
enum class Hop : std::uint8_t {
    kDram,
    kLocalMemory,
    kCoreGrid,
};

/// One simulated message.
struct Packet {
    std::uint64_t id = 0;
    PacketKind kind = PacketKind::kSurfaceA;
    BlockCoord block;         ///< CB block this packet belongs to
    std::uint64_t bytes = 0;
    Hop route[3] = {Hop::kDram, Hop::kLocalMemory, Hop::kCoreGrid};
    int route_len = 2;
};

/// Per-kind packet accounting (checked against the schedule analysis).
struct PacketCounters {
    std::uint64_t count[5] = {};
    std::uint64_t bytes[5] = {};

    void record(const Packet& p)
    {
        const auto i = static_cast<std::size_t>(p.kind);
        ++count[i];
        bytes[i] += p.bytes;
    }

    [[nodiscard]] std::uint64_t total_bytes() const
    {
        std::uint64_t sum = 0;
        for (auto b : bytes) sum += b;
        return sum;
    }
};

}  // namespace sim
}  // namespace cake
