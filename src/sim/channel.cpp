#include "sim/channel.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cake {
namespace sim {

const char* packet_kind_name(PacketKind kind)
{
    switch (kind) {
        case PacketKind::kSurfaceA: return "surface-A";
        case PacketKind::kSurfaceB: return "surface-B";
        case PacketKind::kResultC: return "result-C";
        case PacketKind::kPartialC: return "partial-C";
        case PacketKind::kBroadcastB: return "broadcast-B";
    }
    return "unknown";
}

Channel::Channel(EventQueue& queue, double bytes_per_second, std::string name,
                 double rmw_bytes_per_second)
    : queue_(queue), bytes_per_second_(bytes_per_second),
      rmw_bytes_per_second_(rmw_bytes_per_second > 0.0 ? rmw_bytes_per_second
                                                       : bytes_per_second),
      name_(std::move(name))
{
    CAKE_CHECK_MSG(bytes_per_second > 0, "channel " << name_
                                                    << " needs bandwidth > 0");
}

Channel::Interval Channel::transfer(double ready, const Packet& packet,
                                    std::function<void(double)> on_delivered)
{
    const double start = std::max({ready, busy_until_, queue_.now()});
    const double rate = packet.kind == PacketKind::kPartialC
        ? rmw_bytes_per_second_
        : bytes_per_second_;
    const double duration = static_cast<double>(packet.bytes) / rate;
    const double end = start + duration;
    busy_until_ = end;
    busy_seconds_ += duration;
    counters_.record(packet);
    if (on_delivered) {
        queue_.schedule(end, [end, cb = std::move(on_delivered)] { cb(end); });
    }
    return {start, end};
}

}  // namespace sim
}  // namespace cake
