#include "sim/machine_sim.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "gotoblas/goto_gemm.hpp"
#include "pack/pack.hpp"
#include "ref/naive_gemm.hpp"
#include "sim/channel.hpp"

namespace cake {
namespace sim {
namespace {

constexpr double kF = sizeof(float);

index_t block_extent(index_t idx, index_t blk, index_t total)
{
    return std::min(blk, total - idx * blk);
}

/// Packet payload in bytes for `elems` f32 elements.
std::uint64_t f32_bytes(index_t elems)
{
    return static_cast<std::uint64_t>(elems) * sizeof(float);
}

/// Seconds for one core to run one mr x nr x ki micro-kernel call.
double tile_seconds(const MachineSpec& machine, index_t mr, index_t nr,
                    index_t ki)
{
    return 2.0 * static_cast<double>(mr) * static_cast<double>(nr)
        * static_cast<double>(ki) / (machine.core_gflops * 1e9);
}

/// Internal (local memory <-> cores) bytes of a block's macro-kernel sweep.
double internal_bytes(index_t mi, index_t ni, index_t ki, index_t mr,
                      index_t nr)
{
    const double calls = static_cast<double>(ceil_div(mi, mr))
        * static_cast<double>(ceil_div(ni, nr));
    return (calls
                * (static_cast<double>(ki) * static_cast<double>(nr)
                   + 2.0 * static_cast<double>(mr) * static_cast<double>(nr))
            + static_cast<double>(mi) * static_cast<double>(ki))
        * kF;
}

/// One pipeline macro-step: the packets to fetch before compute can start,
/// the compute duration on the core grid, and the packets to drain after.
struct Step {
    std::vector<Packet> fetch;
    std::vector<Packet> drain;
    double compute_seconds = 0;
    BlockCoord coord;   ///< grid coordinates (functional mode)
};

std::vector<Step> build_cake_steps(const SimConfig& config,
                                   const CbBlockParams& params)
{
    const GemmShape& shape = config.shape;
    const MachineSpec& machine = config.machine;
    const index_t mb = ceil_div(shape.m, params.m_blk);
    const index_t nb = ceil_div(shape.n, params.n_blk);
    const index_t kb = ceil_div(shape.k, params.k_blk);
    const auto order = build_layered_schedule(
        config.schedule, mb, nb, kb, std::max<index_t>(config.k_layers, 1),
        /*n_outermost=*/shape.n >= shape.m);

    std::vector<Step> steps;
    steps.reserve(order.size());
    std::vector<char> flushed(static_cast<std::size_t>(mb * nb), 0);
    std::vector<index_t> k_done(static_cast<std::size_t>(mb * nb), 0);
    std::uint64_t next_id = 0;
    BlockCoord last{-1, -1, -1};
    bool have_last = false;
    index_t cur_mi = 0, cur_ni = 0;

    for (std::size_t idx = 0; idx < order.size(); ++idx) {
        const BlockCoord& coord = order[idx];
        const index_t mi = block_extent(coord.m, params.m_blk, shape.m);
        const index_t ni = block_extent(coord.n, params.n_blk, shape.n);
        const index_t ki = block_extent(coord.k, params.k_blk, shape.k);

        Step step;
        if (!(have_last && last.m == coord.m && last.k == coord.k)) {
            step.fetch.push_back({next_id++, PacketKind::kSurfaceA, coord,
                                  f32_bytes(mi * ki)});
        }
        if (!(have_last && last.k == coord.k && last.n == coord.n)) {
            step.fetch.push_back({next_id++, PacketKind::kSurfaceB, coord,
                                  f32_bytes(ki * ni)});
        }
        if (!(have_last && last.m == coord.m && last.n == coord.n)) {
            if (have_last) {
                // The departing (m, n) surface drains to DRAM: complete if
                // its K reduction finished (always true under the K-first
                // serpentine schedule), partial otherwise — partial spills
                // are RMW round trips charged at the slower RMW rate.
                const auto& prev = order[idx - 1];
                const std::size_t slot =
                    static_cast<std::size_t>(prev.m * nb + prev.n);
                const bool complete = k_done[slot] == kb;
                steps.back().drain.push_back(
                    {next_id++,
                     complete ? PacketKind::kResultC : PacketKind::kPartialC,
                     prev, f32_bytes(cur_mi * cur_ni)});
                flushed[slot] = 1;
            }
            const std::size_t slot =
                static_cast<std::size_t>(coord.m * nb + coord.n);
            if (flushed[slot] != 0) {
                // Revisit of a spilled surface (non-K-first ablation only).
                step.fetch.push_back(
                    {next_id++, PacketKind::kPartialC, coord,
                     f32_bytes(mi * ni)});
            }
            cur_mi = mi;
            cur_ni = ni;
        }

        // Busiest core's row band: mc for full blocks; edge blocks split
        // their rows evenly across cores (mirrors the driver).
        const index_t band = std::min<index_t>(
            params.mc,
            round_up(ceil_div(mi, static_cast<index_t>(config.p)),
                     params.mr));
        const double core_time = static_cast<double>(ceil_div(band, params.mr))
            * static_cast<double>(ceil_div(ni, params.nr))
            * tile_seconds(machine, params.mr, params.nr, ki);
        const double int_time =
            internal_bytes(mi, ni, ki, params.mr, params.nr)
            / (machine.internal_bw_at(config.p) * 1e9);
        step.compute_seconds = std::max(core_time, int_time);
        step.coord = coord;

        steps.push_back(std::move(step));
        ++k_done[static_cast<std::size_t>(coord.m * nb + coord.n)];
        last = coord;
        have_last = true;
    }
    if (have_last && !steps.empty()) {
        steps.back().drain.push_back(
            {next_id++, PacketKind::kResultC, last,
             f32_bytes(cur_mi * cur_ni)});
    }
    return steps;
}

std::vector<Step> build_goto_steps(const SimConfig& config)
{
    const GemmShape& shape = config.shape;
    const MachineSpec& machine = config.machine;
    const GotoBlocking blocking = goto_default_blocking(
        machine, config.kernel.mr, config.kernel.nr);
    const index_t mc = blocking.mc;
    const index_t kc = blocking.kc;
    const index_t nc = blocking.nc;
    const int p = config.p;

    std::vector<Step> steps;
    std::uint64_t next_id = 0;
    index_t kidx = 0;
    for (index_t jc = 0; jc < shape.n; jc += nc) {
        const index_t ncur = std::min(nc, shape.n - jc);
        kidx = 0;
        for (index_t pc = 0; pc < shape.k; pc += kc, ++kidx) {
            const index_t kcur = std::min(kc, shape.k - pc);
            const bool acc = pc > 0;
            Step step;
            const BlockCoord coord{0, jc / nc, kidx};
            step.fetch.push_back({next_id++, PacketKind::kSurfaceB, coord,
                                  f32_bytes(kcur * ncur)});
            step.fetch.push_back({next_id++, PacketKind::kSurfaceA, coord,
                                  f32_bytes(shape.m * kcur)});
            if (acc) {
                step.fetch.push_back({next_id++, PacketKind::kPartialC, coord,
                                      f32_bytes(shape.m * ncur)});
            }
            // Partial C streams back out every pass — the traffic CAKE
            // eliminates (§4.4).
            step.drain.push_back(
                {next_id++,
                 pc + kc >= shape.k ? PacketKind::kResultC
                                    : PacketKind::kPartialC,
                 coord, f32_bytes(shape.m * ncur)});

            // Busiest core handles ceil(blocks/p) A blocks of this pass.
            const index_t a_blocks = ceil_div(shape.m, mc);
            const index_t per_core = ceil_div(a_blocks, p);
            const double core_time = static_cast<double>(per_core)
                * static_cast<double>(ceil_div(std::min(mc, shape.m),
                                               config.kernel.mr))
                * static_cast<double>(ceil_div(ncur, config.kernel.nr))
                * tile_seconds(machine, config.kernel.mr, config.kernel.nr,
                               kcur);
            const double int_time =
                internal_bytes(shape.m, ncur, kcur, config.kernel.mr,
                               config.kernel.nr)
                / (machine.internal_bw_at(p) * 1e9);
            step.compute_seconds = std::max(core_time, int_time);
            steps.push_back(std::move(step));
        }
    }
    return steps;
}

/// Event-driven execution of one step stream on its own core grid: fetch
/// of step i+1 overlaps compute of step i (double buffering); drains
/// occupy the DRAM channel but do not stall the pipeline. Several
/// Pipelines may share one Channel (multi-tenant mode).
class Pipeline {
public:
    using StepExecutor = std::function<void(const Step&)>;

    Pipeline(EventQueue& queue, Channel& dram, std::vector<Step> steps,
             Timeline* timeline = nullptr, int tenant = 0,
             StepExecutor executor = {})
        : queue_(queue), dram_(dram), steps_(std::move(steps)),
          io_done_(steps_.size(), 0), timeline_(timeline), tenant_(tenant),
          executor_(std::move(executor))
    {
    }

    /// Schedule the pipeline's first fetch at the current simulation time.
    void start()
    {
        if (steps_.empty()) {
            finish_time_ = queue_.now();
            return;
        }
        queue_.schedule(queue_.now(), [this] { issue_io(0); });
    }

    [[nodiscard]] double finish_time() const { return finish_time_; }
    [[nodiscard]] double core_busy_seconds() const
    {
        return core_busy_seconds_;
    }
    [[nodiscard]] const PacketCounters& packets() const { return packets_; }
    [[nodiscard]] index_t steps() const
    {
        return static_cast<index_t>(steps_.size());
    }

private:
    void issue_io(std::size_t i)
    {
        if (i >= steps_.size()) return;
        if (steps_[i].fetch.empty()) {
            io_done_[i] = 1;
            try_start_compute(i);
            return;
        }
        const std::size_t last_pkt = steps_[i].fetch.size() - 1;
        for (std::size_t j = 0; j < steps_[i].fetch.size(); ++j) {
            const Packet& pkt = steps_[i].fetch[j];
            packets_.record(pkt);
            Channel::Interval iv;
            if (j == last_pkt) {
                iv = dram_.transfer(queue_.now(), pkt, [this, i](double) {
                    io_done_[i] = 1;
                    try_start_compute(i);
                });
            } else {
                iv = dram_.transfer(queue_.now(), pkt);
            }
            if (timeline_ != nullptr) {
                timeline_->record({SliceKind::kFetch, tenant_,
                                   static_cast<std::int64_t>(i), pkt.kind,
                                   iv.start, iv.end});
            }
        }
    }

    void try_start_compute(std::size_t i)
    {
        if (i != next_compute_ || core_busy_ || io_done_[i] == 0) return;
        core_busy_ = true;
        const double duration = steps_[i].compute_seconds;
        core_busy_seconds_ += duration;
        // Double buffering: the next step's surfaces start streaming as
        // soon as this step's compute begins (its buffers are now free).
        issue_io(i + 1);
        if (timeline_ != nullptr) {
            timeline_->record({SliceKind::kCompute, tenant_,
                               static_cast<std::int64_t>(i),
                               PacketKind::kSurfaceA, queue_.now(),
                               queue_.now() + duration});
        }
        queue_.schedule(queue_.now() + duration, [this, i] {
            core_busy_ = false;
            // Functional payload: the block's real math runs exactly when
            // the simulated computation completes.
            if (executor_) executor_(steps_[i]);
            double drained = queue_.now();
            for (const Packet& pkt : steps_[i].drain) {
                packets_.record(pkt);
                const Channel::Interval iv =
                    dram_.transfer(queue_.now(), pkt);
                drained = std::max(drained, iv.end);
                if (timeline_ != nullptr) {
                    timeline_->record({SliceKind::kDrain, tenant_,
                                       static_cast<std::int64_t>(i),
                                       pkt.kind, iv.start, iv.end});
                }
            }
            ++next_compute_;
            if (next_compute_ < steps_.size()) {
                try_start_compute(next_compute_);
            } else {
                finish_time_ = drained;
            }
        });
    }

    EventQueue& queue_;
    Channel& dram_;
    std::vector<Step> steps_;
    std::vector<char> io_done_;
    std::size_t next_compute_ = 0;
    bool core_busy_ = false;
    double core_busy_seconds_ = 0;
    double finish_time_ = 0;
    PacketCounters packets_;
    Timeline* timeline_ = nullptr;
    int tenant_ = 0;
    StepExecutor executor_;
};

SimResult run_pipeline(const SimConfig& config, std::vector<Step> steps,
                       Pipeline::StepExecutor executor = {})
{
    SimResult result;
    result.steps = static_cast<index_t>(steps.size());
    if (steps.empty()) return result;

    EventQueue queue;
    Channel dram(queue, config.machine.dram_bw_gbs * 1e9, "dram",
                 config.machine.rmw_bw_gbs() * 1e9);
    Pipeline pipeline(queue, dram, std::move(steps), config.timeline, 0,
                      std::move(executor));
    pipeline.start();
    const double end = queue.run_all();
    // The channel may still be draining the final result packets.
    const double finish = std::max({end, dram.busy_until(),
                                    pipeline.finish_time()});

    result.seconds = finish;
    result.gflops = config.shape.flops() / finish / 1e9;
    result.packets = pipeline.packets();
    result.dram_bytes = result.packets.total_bytes();
    result.avg_dram_bw_gbs =
        static_cast<double>(result.dram_bytes) / finish / 1e9;
    result.dram_busy_frac = dram.busy_seconds() / finish;
    result.core_busy_frac = pipeline.core_busy_seconds() / finish;
    return result;
}

std::vector<Step> build_steps(const SimConfig& config, SimResult& result)
{
    if (config.algorithm == Algorithm::kGoto) {
        return build_goto_steps(config);
    }
    const CbBlockParams params =
        compute_cb_block(config.machine, config.p, config.kernel.mr,
                         config.kernel.nr, config.topts);
    result.params = params;
    return build_cake_steps(config, params);
}

}  // namespace

SimResult simulate(const SimConfig& config)
{
    CAKE_CHECK(config.p >= 1);
    CAKE_CHECK(config.shape.m > 0 && config.shape.n > 0 && config.shape.k > 0);

    SimResult result;
    std::vector<Step> steps = build_steps(config, result);
    const CbBlockParams params = result.params;

    if (config.validate_data) {
        CAKE_CHECK_MSG(config.algorithm == Algorithm::kCake,
                       "functional validation supports the CAKE pipeline");
        // Real operands travel with the simulation: each compute event
        // executes its block's partial product, as in the paper's §6.2
        // simulator ("to validate the correctness of the CB block design
        // and execution schedule").
        Rng rng(config.validate_seed);
        const GemmShape& shape = config.shape;
        Matrix a(shape.m, shape.k);
        Matrix b(shape.k, shape.n);
        a.fill_random(rng);
        b.fill_random(rng);
        Matrix c(shape.m, shape.n);

        auto executor = [&, params](const Step& step) {
            const index_t m0 = step.coord.m * params.m_blk;
            const index_t n0 = step.coord.n * params.n_blk;
            const index_t k0 = step.coord.k * params.k_blk;
            const index_t mi = std::min(params.m_blk, shape.m - m0);
            const index_t ni = std::min(params.n_blk, shape.n - n0);
            const index_t ki = std::min(params.k_blk, shape.k - k0);
            naive_sgemm(a.data() + m0 * shape.k + k0, shape.k,
                        b.data() + k0 * shape.n + n0, shape.n,
                        c.data() + m0 * shape.n + n0, shape.n, mi, ni, ki,
                        /*accumulate=*/true);
        };
        result = run_pipeline(config, std::move(steps), executor);
        result.params = params;
        result.max_abs_error = max_abs_diff(c, oracle_gemm(a, b));
        return result;
    }

    result = run_pipeline(config, std::move(steps));
    result.params = params;
    return result;
}

MultiTenantResult simulate_shared_dram(const std::vector<SimConfig>& configs,
                                       Timeline* timeline)
{
    CAKE_CHECK(!configs.empty());
    for (const SimConfig& config : configs) {
        CAKE_CHECK(config.p >= 1);
        CAKE_CHECK_MSG(config.machine.name == configs.front().machine.name,
                       "all tenants must share one machine");
    }

    EventQueue queue;
    Channel dram(queue, configs.front().machine.dram_bw_gbs * 1e9,
                 "dram-shared", configs.front().machine.rmw_bw_gbs() * 1e9);

    MultiTenantResult result;
    result.tenants.resize(configs.size());
    std::vector<std::unique_ptr<Pipeline>> pipelines;
    for (std::size_t t = 0; t < configs.size(); ++t) {
        std::vector<Step> steps =
            build_steps(configs[t], result.tenants[t]);
        pipelines.push_back(std::make_unique<Pipeline>(
            queue, dram, std::move(steps), timeline, static_cast<int>(t)));
    }
    for (auto& p : pipelines) p->start();
    queue.run_all();

    double total_flops = 0;
    for (std::size_t t = 0; t < configs.size(); ++t) {
        SimResult& tenant = result.tenants[t];
        const double finish =
            std::max(pipelines[t]->finish_time(), 1e-12);
        tenant.seconds = finish;
        tenant.steps = pipelines[t]->steps();
        tenant.packets = pipelines[t]->packets();
        tenant.dram_bytes = tenant.packets.total_bytes();
        tenant.gflops = configs[t].shape.flops() / finish / 1e9;
        tenant.avg_dram_bw_gbs =
            static_cast<double>(tenant.dram_bytes) / finish / 1e9;
        tenant.core_busy_frac =
            pipelines[t]->core_busy_seconds() / finish;
        result.makespan = std::max(result.makespan, finish);
        total_flops += configs[t].shape.flops();
    }
    result.aggregate_gflops = total_flops / result.makespan / 1e9;
    result.dram_busy_frac = dram.busy_seconds() / result.makespan;
    return result;
}

double validate_schedule_numerics(const GemmShape& shape,
                                  const CbBlockParams& params,
                                  ScheduleKind kind, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix a(shape.m, shape.k);
    Matrix b(shape.k, shape.n);
    a.fill_random(rng);
    b.fill_random(rng);
    Matrix c(shape.m, shape.n);  // zero-initialised

    const index_t mb = ceil_div(shape.m, params.m_blk);
    const index_t nb = ceil_div(shape.n, params.n_blk);
    const index_t kb = ceil_div(shape.k, params.k_blk);
    const auto order =
        build_schedule(kind, mb, nb, kb, /*n_outermost=*/shape.n >= shape.m);

    for (const BlockCoord& coord : order) {
        const index_t mi = block_extent(coord.m, params.m_blk, shape.m);
        const index_t ni = block_extent(coord.n, params.n_blk, shape.n);
        const index_t ki = block_extent(coord.k, params.k_blk, shape.k);
        const index_t m0 = coord.m * params.m_blk;
        const index_t n0 = coord.n * params.n_blk;
        const index_t k0 = coord.k * params.k_blk;
        naive_sgemm(a.data() + m0 * shape.k + k0, shape.k,
                    b.data() + k0 * shape.n + n0, shape.n,
                    c.data() + m0 * shape.n + n0, shape.n, mi, ni, ki,
                    /*accumulate=*/true);
    }
    return max_abs_diff(c, oracle_gemm(a, b));
}

}  // namespace sim
}  // namespace cake
