#include "sim/event.hpp"

#include "common/error.hpp"

namespace cake {
namespace sim {

void EventQueue::schedule(double time, Callback fn)
{
    CAKE_CHECK_MSG(time >= now_, "cannot schedule event in the past: t="
                                     << time << " now=" << now_);
    queue_.push({time, next_seq_++, std::move(fn)});
}

bool EventQueue::run_one()
{
    if (queue_.empty()) return false;
    // Move the callback out before popping so it can schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    return true;
}

double EventQueue::run_all()
{
    while (run_one()) {
    }
    return now_;
}

}  // namespace sim
}  // namespace cake
