// Simulation timeline recording and Chrome-trace export: every transfer
// and compute interval of a pipeline run can be captured and written in
// the chrome://tracing / Perfetto "trace event" JSON format, giving the
// architecture simulator a visual debugger.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/packet.hpp"

namespace cake {
namespace sim {

/// What a timeline slice represents.
enum class SliceKind : std::uint8_t {
    kFetch,    ///< DRAM -> local memory surface transfer
    kCompute,  ///< core-grid block computation
    kDrain,    ///< local memory -> DRAM result/partial writeback
};

const char* slice_kind_name(SliceKind kind);

/// One recorded interval.
struct Slice {
    SliceKind kind = SliceKind::kCompute;
    int tenant = 0;          ///< pipeline index (multi-tenant runs)
    std::int64_t step = 0;   ///< pipeline macro-step
    PacketKind packet = PacketKind::kSurfaceA;  ///< for fetch/drain slices
    double start = 0;        ///< seconds
    double end = 0;

    [[nodiscard]] double duration() const { return end - start; }
};

/// Collects slices during a simulation run.
class Timeline {
public:
    /// Append a slice; also publishes per-kind slice counters and a
    /// modelled-duration histogram into the obs metrics registry when it
    /// is armed (see src/obs/metrics.hpp).
    void record(Slice slice);
    [[nodiscard]] const std::vector<Slice>& slices() const
    {
        return slices_;
    }
    [[nodiscard]] bool empty() const { return slices_.empty(); }

    /// Latest end time across all slices (0 when empty).
    [[nodiscard]] double span() const;

    /// Write the chrome://tracing JSON array. Rows: pid = tenant,
    /// tid 0 = DRAM channel, tid 1 = core grid. Timestamps in
    /// microseconds as the format requires.
    void write_chrome_trace(std::ostream& os) const;

private:
    std::vector<Slice> slices_;
};

}  // namespace sim
}  // namespace cake
