#include "gotoblas/goto_gemm.hpp"

#include <algorithm>
#include <cmath>

#include "common/checked.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace {

/// Publish one multiply's GotoStats into the obs metrics registry
/// (mirrors publish_cake_stats in src/core).
void publish_goto_stats(const GotoStats& s)
{
    if (!obs::metrics_enabled()) return;
    static const obs::MetricId multiplies =
        obs::counter("goto.gemm.multiplies");
    static const obs::MetricId passes = obs::counter("goto.gemm.c_passes");
    static const obs::MetricId a_packs = obs::counter("goto.gemm.a_packs");
    static const obs::MetricId b_packs = obs::counter("goto.gemm.b_packs");
    static const obs::MetricId dram_rd =
        obs::counter("goto.gemm.dram_read_bytes");
    static const obs::MetricId dram_wr =
        obs::counter("goto.gemm.dram_write_bytes");
    static const obs::MetricId pack_s = obs::gauge("goto.gemm.pack_s");
    static const obs::MetricId compute_s =
        obs::gauge("goto.gemm.compute_s");
    static const obs::MetricId stall_s = obs::gauge("goto.gemm.stall_s");
    static const obs::MetricId total_s = obs::gauge("goto.gemm.total_s");
    obs::counter_add(multiplies, 1);
    obs::counter_add(passes, static_cast<std::uint64_t>(s.c_passes));
    obs::counter_add(a_packs, static_cast<std::uint64_t>(s.a_packs));
    obs::counter_add(b_packs, static_cast<std::uint64_t>(s.b_packs));
    obs::counter_add(dram_rd, s.dram_read_bytes);
    obs::counter_add(dram_wr, s.dram_write_bytes);
    obs::gauge_set(pack_s, s.pack_seconds);
    obs::gauge_set(compute_s, s.compute_seconds);
    obs::gauge_set(stall_s, s.stall_seconds);
    obs::gauge_set(total_s, s.total_seconds);
}

/// Square mc = kc from the deepest private cache, exactly as the CAKE
/// solver does (§4.4: both algorithms reuse square A sub-blocks in L2).
index_t square_l2_block(const MachineSpec& machine, index_t mr,
                        double fraction)
{
    // Deepest private level below the LLC (same rule as the CAKE solver).
    const auto& levels = machine.caches.levels;
    const CacheLevel* priv = nullptr;
    for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
        if (levels[i].shared_by_cores == 1) priv = &levels[i];
    }
    const CacheLevel& l2 = priv != nullptr ? *priv : levels.front();
    const double budget_floats =
        fraction * static_cast<double>(l2.size_bytes) / sizeof(float);
    auto mc = static_cast<index_t>(std::sqrt(std::max(budget_floats, 1.0)));
    return std::max<index_t>(mc / mr * mr, mr);
}

}  // namespace

std::vector<GotoPass> build_goto_passes(index_t n, index_t k, index_t nc,
                                        index_t kc, bool accumulate)
{
    std::vector<GotoPass> passes;
    passes.reserve(static_cast<std::size_t>(ceil_div(n, nc))
                   * static_cast<std::size_t>(ceil_div(k, kc)));
    for (index_t jc = 0; jc < n; jc += nc) {
        for (index_t pc = 0; pc < k; pc += kc) {
            GotoPass pass;
            pass.jc = jc;
            pass.pc = pc;
            pass.ncur = std::min(nc, n - jc);
            pass.kcur = std::min(kc, k - pc);
            pass.acc = accumulate || pc > 0;
            passes.push_back(pass);
        }
    }
    return passes;
}

GotoBlocking goto_default_blocking(const MachineSpec& machine, index_t mr,
                                   index_t nr)
{
    GotoBlocking blocking;
    blocking.mc = square_l2_block(machine, mr, /*fraction=*/0.5);
    blocking.kc = blocking.mc;
    // GOTO fills the LLC with the kc x nc B panel (§4.4).
    const double llc_floats =
        0.9 * static_cast<double>(machine.llc_bytes()) / sizeof(float);
    blocking.nc = static_cast<index_t>(
        llc_floats / static_cast<double>(blocking.kc));
    blocking.nc = std::max<index_t>(blocking.nc / nr * nr, nr);
    return blocking;
}

template <typename T>
GotoGemmT<T>::GotoGemmT(ThreadPool& pool, GotoOptions options)
    : pool_(pool), options_(std::move(options)),
      machine_(options_.machine ? *options_.machine : host_machine()),
      kernel_(options_.isa ? microkernel_for_of<T>(*options_.isa)
                           : best_microkernel_of<T>())
{
    if (options_.p <= 0 || options_.p > pool_.size())
        options_.p = pool_.size();
}

template <typename T>
void GotoGemmT<T>::multiply(const T* a, index_t lda, const T* b, index_t ldb,
                            T* c, index_t ldc, index_t m, index_t n,
                            index_t k)
{
    CAKE_CHECK(m >= 0 && n >= 0 && k >= 0);
    CAKE_CHECK(lda >= k && ldb >= n && ldc >= n);
    if (m == 0 || n == 0) return;
    if (k == 0) {
        if (!options_.accumulate) {
            for (index_t i = 0; i < m; ++i)
                std::fill(c + i * ldc, c + i * ldc + n, T(0));
        }
        return;
    }

    Timer total_timer;
    const int p = options_.p;

    const GotoBlocking defaults =
        goto_default_blocking(machine_, kernel_.mr, kernel_.nr);
    const index_t mc = options_.mc ? *options_.mc : defaults.mc;
    CAKE_CHECK_MSG(mc >= kernel_.mr && mc % kernel_.mr == 0,
                   "mc must be a positive multiple of mr");
    const index_t kc = mc;
    index_t nc = defaults.nc;
    if (options_.nc) {
        nc = *options_.nc;
        CAKE_CHECK_MSG(nc >= kernel_.nr && nc % kernel_.nr == 0,
                       "nc must be a positive multiple of nr");
    }

    stats_ = GotoStats{};
    stats_.mc = mc;
    stats_.kc = kc;
    stats_.nc = nc;

    pack_b_.ensure(
        static_cast<std::size_t>(packed_b_size(kc, nc, kernel_.nr)));
    if (pack_a_.size() < static_cast<std::size_t>(p)) {
        pack_a_.resize(static_cast<std::size_t>(p));
        scratch_.resize(static_cast<std::size_t>(p));
    }
    for (auto& buf : pack_a_) {
        buf.ensure(
            static_cast<std::size_t>(packed_a_size(mc, kc, kernel_.mr)));
    }
    for (auto& s : scratch_) {
        s.ensure(static_cast<std::size_t>(kernel_.mr * kernel_.nr));
    }

    const MicroKernelT<T> kernel = kernel_;

    // The pass list is data (build_goto_passes) so the schedule-IR
    // extractor replays exactly the loop nest executed here.
    for (const GotoPass& pass :
         build_goto_passes(n, k, nc, kc, options_.accumulate)) {
        {
            const index_t jc = pass.jc;
            const index_t pc = pass.pc;
            const index_t ncur = pass.ncur, kcur = pass.kcur;
            const bool acc = pass.acc;

            // Pack the B panel into the LLC stand-in buffer.
            Timer pack_timer;
            const T* bsrc = b + pc * ldb + jc;
            pool_.parallel_for(0, ceil_div(ncur, kernel.nr), p,
                               [&](index_t s0, index_t s1) {
                obs::ScopedSpan span("pack.B", obs::Phase::kPack, -1,
                                     jc / nc, pc / kc, s0);
                obs::perf::ScopedPhaseDelta perf_scope(obs::Phase::kPack);
                const index_t c0 = s0 * kernel.nr;
                const index_t c1 = std::min(ncur, s1 * kernel.nr);
                pack_b_panel(bsrc + c0, ldb, kcur, c1 - c0, kernel.nr,
                             pack_b_.data() + c0 * kcur);
            });
            stats_.pack_seconds += pack_timer.seconds();

            // Parallel over M: each worker packs its own A block into its
            // private-L2 stand-in and runs the macro-kernel, streaming
            // partial C tiles directly to user (external) memory.
            Timer compute_timer;
            // Spanned panels: CAKE_CHECKED builds validate every sliver
            // slice against the pack-buffer capacities; release builds
            // compile these to the raw pointers.
            Span<const T> pb =
                make_span(static_cast<const T*>(pack_b_.data()),
                          pack_b_.size(), "GOTO packed-B panel");
            pool_.run(p, [&, kernel, pb, acc](int tid) {
                obs::ScopedSpan span("compute", obs::Phase::kCompute, -1,
                                     jc / nc, pc / kc, tid);
                obs::perf::ScopedPhaseDelta perf_scope(obs::Phase::kCompute);
                AlignedBuffer<T>& pa_buf =
                    pack_a_[static_cast<std::size_t>(tid)];
                Span<const T> pa =
                    make_span(static_cast<const T*>(pa_buf.data()),
                              pa_buf.size(), "GOTO packed-A panel");
                T* scratch = scratch_[static_cast<std::size_t>(tid)].data();
                for (index_t ic = tid * mc; ic < m;
                     ic += static_cast<index_t>(p) * mc) {
                    const index_t mcur = std::min(mc, m - ic);
                    {
                        obs::ScopedSpan pack_span("pack.A",
                                                  obs::Phase::kPack, ic / mc,
                                                  jc / nc, pc / kc, tid);
                        obs::perf::ScopedPhaseDelta pack_perf(
                            obs::Phase::kPack);
                        pack_a_panel(a + ic * lda + pc, lda, mcur, kcur,
                                     kernel.mr, pa_buf.data());
                    }
                    for (index_t ir = 0; ir < mcur; ir += kernel.mr) {
                        const index_t mrows = std::min(kernel.mr, mcur - ir);
                        Span<const T> a_sliver = span_slice(
                            pa, (ir / kernel.mr) * kernel.mr * kcur,
                            kernel.mr * kcur);
                        for (index_t jr = 0; jr < ncur; jr += kernel.nr) {
                            const index_t ncols =
                                std::min(kernel.nr, ncur - jr);
                            Span<const T> b_sliver = span_slice(
                                pb, (jr / kernel.nr) * kernel.nr * kcur,
                                kernel.nr * kcur);
                            run_microkernel_tile(
                                kernel, kcur, span_data(a_sliver),
                                span_data(b_sliver),
                                c + (ic + ir) * ldc + jc + jr, ldc, mrows,
                                ncols, acc, scratch);
                        }
                    }
                }
            });
            stats_.compute_seconds += compute_timer.seconds();

            // External-traffic model for this (jc, pc) pass.
            ++stats_.c_passes;
            stats_.b_packs += 1;
            stats_.dram_read_bytes +=
                static_cast<std::uint64_t>(kcur) * ncur * sizeof(T);
            const index_t a_blocks = ceil_div(m, mc);
            stats_.a_packs += a_blocks;
            stats_.dram_read_bytes +=
                static_cast<std::uint64_t>(m) * kcur * sizeof(T);
            const auto c_bytes =
                static_cast<std::uint64_t>(m) * ncur * sizeof(T);
            stats_.dram_write_bytes += c_bytes;  // partial results stream out
            if (acc) stats_.dram_read_bytes += c_bytes;  // ... and back in
        }
    }

    // CAKE_CHECKED: all panels flushed — verify no pack overran a guard.
    pack_b_.verify_canaries("GOTO packed-B buffer");
    for (const auto& buf : pack_a_) {
        buf.verify_canaries("GOTO packed-A buffer");
    }
    for (const auto& s : scratch_) {
        s.verify_canaries("GOTO kernel scratch tile");
    }

    stats_.total_seconds = total_timer.seconds();
    stats_.stall_seconds =
        std::max(0.0, stats_.total_seconds - stats_.pack_seconds
                          - stats_.compute_seconds);
    publish_goto_stats(stats_);
}

template class GotoGemmT<float>;
template class GotoGemmT<double>;

void goto_sgemm(const float* a, const float* b, float* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const GotoOptions& options, GotoStats* stats)
{
    GotoGemm gemm(pool, options);
    gemm.multiply(a, k, b, n, c, n, m, n, k);
    if (stats != nullptr) *stats = gemm.stats();
}

void goto_dgemm(const double* a, const double* b, double* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const GotoOptions& options, GotoStats* stats)
{
    GotoGemmD gemm(pool, options);
    gemm.multiply(a, k, b, n, c, n, m, n, k);
    if (stats != nullptr) *stats = gemm.stats();
}

Matrix goto_gemm(const Matrix& a, const Matrix& b, ThreadPool& pool,
                 const GotoOptions& options, GotoStats* stats)
{
    CAKE_CHECK(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols());
    goto_sgemm(a.data(), b.data(), c.data(), a.rows(), b.cols(), a.cols(),
               pool, options, stats);
    return c;
}

MatrixD goto_gemm(const MatrixD& a, const MatrixD& b, ThreadPool& pool,
                  const GotoOptions& options, GotoStats* stats)
{
    CAKE_CHECK(a.cols() == b.rows());
    MatrixD c(a.rows(), b.cols());
    goto_dgemm(a.data(), b.data(), c.data(), a.rows(), b.cols(), a.cols(),
               pool, options, stats);
    return c;
}

}  // namespace cake
