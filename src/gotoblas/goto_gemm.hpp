// The GOTO algorithm (Goto & van de Geijn, "Anatomy of High-Performance
// Matrix Multiplication") as analysed in the paper's §4.1 — the baseline
// that MKL / ARMPL / OpenBLAS implement. Built on the same micro-kernels
// and packing as CAKE so benchmarks isolate the scheduling difference:
// GOTO streams partial C results to external memory every kc-panel pass,
// whereas CAKE accumulates them in local memory.
//
// Loop structure (paper Fig. 5):
//   jc over N in nc   : B panel (kc x nc) packed into the LLC
//     pc over K in kc : reduction panels; C is read+written per pass
//       ic over M in mc (parallel over p cores): A block (mc x kc) per core
//         macro-kernel: mr x nr micro-kernel writes DIRECTLY to user C
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "kernel/registry.hpp"
#include "machine/machine.hpp"
#include "threading/thread_pool.hpp"

namespace cake {

/// GOTO panel sizes chosen from cache capacities (§4.1): square mc = kc
/// A blocks from the private cache, nc filling the LLC with the B panel.
struct GotoBlocking {
    index_t mc = 0;
    index_t kc = 0;
    index_t nc = 0;
};

/// Default GOTO blocking for `machine` and an mr x nr micro-kernel.
GotoBlocking goto_default_blocking(const MachineSpec& machine, index_t mr,
                                   index_t nr);

/// One (jc, pc) panel pass of the GOTO loop nest: the B panel packed into
/// the LLC stand-in, then p workers streaming partial C tiles to user
/// memory. Materialised as data so the executor and the schedule-IR
/// extractor (src/analysis/schedir.cpp) walk the identical pass list.
struct GotoPass {
    index_t jc = 0;    ///< N-panel element origin
    index_t pc = 0;    ///< K-panel element origin
    index_t ncur = 0;  ///< panel width (edge-clipped)
    index_t kcur = 0;  ///< panel depth (edge-clipped)
    bool acc = false;  ///< macro-kernel accumulates into C (RMW traffic)
};

/// The (jc outer, pc inner) pass order GotoGemmT::multiply executes.
/// `acc` is options.accumulate for the first reduction pass of each panel
/// and true for every later one (partial C results stream back in).
std::vector<GotoPass> build_goto_passes(index_t n, index_t k, index_t nc,
                                        index_t kc, bool accumulate);

/// Tuning knobs for the GOTO baseline.
struct GotoOptions {
    int p = 0;  ///< worker count; 0 = whole pool
    std::optional<index_t> mc;  ///< override mc (= kc); multiple of mr
    std::optional<index_t> nc;  ///< override nc; multiple of nr
    std::optional<MachineSpec> machine;
    bool accumulate = false;
    std::optional<Isa> isa;
};

/// Execution statistics mirroring CakeStats so benches compare like for
/// like. `dram_*_bytes` model the algorithm's external traffic: A and B
/// packing reads plus the per-pass C streaming that CAKE eliminates.
struct GotoStats {
    index_t mc = 0, kc = 0, nc = 0;
    index_t a_packs = 0;
    index_t b_packs = 0;
    index_t c_passes = 0;  ///< C panel read+write rounds (K/kc per panel)
    std::uint64_t dram_read_bytes = 0;
    std::uint64_t dram_write_bytes = 0;
    // Wall-clock phase attribution (same decomposition as CakeStats, so
    // benches can put the two algorithms in one table):
    //   pack + compute + stall ~= total_seconds.
    // GOTO streams C tiles straight to user memory inside the macro-kernel
    // and packs each worker's A block inside the compute pass, so there is
    // no separate flush phase, pack_seconds covers the shared B panel only,
    // and nothing overlaps (overlap_efficiency stays 0).
    double pack_seconds = 0;     ///< shared B-panel packing (DRAM fetch)
    double compute_seconds = 0;  ///< per-worker A pack + macro-kernel
    double stall_seconds = 0;    ///< dispatch / residual outside the phases
    double total_seconds = 0;
    double overlap_efficiency = 0;  ///< always 0: GOTO exposes all IO

    [[nodiscard]] double gflops(const GemmShape& shape) const
    {
        return total_seconds > 0 ? shape.flops() / total_seconds / 1e9 : 0.0;
    }

    [[nodiscard]] double avg_dram_bw_gbs() const
    {
        const double bytes =
            static_cast<double>(dram_read_bytes + dram_write_bytes);
        return total_seconds > 0 ? bytes / total_seconds / 1e9 : 0.0;
    }
};

/// Reusable GOTO GEMM context (buffers persist across calls).
/// Instantiated for float (GotoGemm) and double (GotoGemmD).
template <typename T>
class GotoGemmT {
public:
    GotoGemmT(ThreadPool& pool, GotoOptions options = {});

    /// C (+)= A * B for row-major operands with explicit leading dims.
    void multiply(const T* a, index_t lda, const T* b, index_t ldb, T* c,
                  index_t ldc, index_t m, index_t n, index_t k);

    [[nodiscard]] const GotoStats& stats() const { return stats_; }

private:
    ThreadPool& pool_;
    GotoOptions options_;
    MachineSpec machine_;
    MicroKernelT<T> kernel_;
    GotoStats stats_;

    AlignedBuffer<T> pack_b_;
    std::vector<AlignedBuffer<T>> pack_a_;   // one A block per worker
    std::vector<AlignedBuffer<T>> scratch_;  // edge-tile scratch
};

using GotoGemm = GotoGemmT<float>;
using GotoGemmD = GotoGemmT<double>;

extern template class GotoGemmT<float>;
extern template class GotoGemmT<double>;

/// One-shot convenience wrappers.
void goto_sgemm(const float* a, const float* b, float* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const GotoOptions& options = {}, GotoStats* stats = nullptr);
void goto_dgemm(const double* a, const double* b, double* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const GotoOptions& options = {}, GotoStats* stats = nullptr);

/// Matrix-object convenience wrappers; return C = A * B.
Matrix goto_gemm(const Matrix& a, const Matrix& b, ThreadPool& pool,
                 const GotoOptions& options = {}, GotoStats* stats = nullptr);
MatrixD goto_gemm(const MatrixD& a, const MatrixD& b, ThreadPool& pool,
                  const GotoOptions& options = {},
                  GotoStats* stats = nullptr);

}  // namespace cake
