#include "io/matrix_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace cake {
namespace io {
namespace {

constexpr char kMagic[8] = {'C', 'A', 'K', 'E', 'M', 'A', 'T', '1'};

template <typename T>
constexpr std::uint32_t dtype_code()
{
    return sizeof(T);  // 4 = f32, 8 = f64
}

}  // namespace

template <typename T>
void save_matrix(const MatrixT<T>& m, const std::string& path)
{
    std::ofstream f(path, std::ios::binary);
    CAKE_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
    f.write(kMagic, sizeof(kMagic));
    const std::uint32_t dtype = dtype_code<T>();
    const std::int64_t rows = m.rows();
    const std::int64_t cols = m.cols();
    f.write(reinterpret_cast<const char*>(&dtype), sizeof(dtype));
    f.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    f.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    f.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(
                static_cast<std::size_t>(m.size()) * sizeof(T)));
    CAKE_CHECK_MSG(f.good(), "write to " << path << " failed");
}

template <typename T>
MatrixT<T> load_matrix(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    CAKE_CHECK_MSG(f.good(), "cannot open " << path);
    char magic[8];
    f.read(magic, sizeof(magic));
    CAKE_CHECK_MSG(f.good() && std::memcmp(magic, kMagic, 8) == 0,
                   path << ": bad magic (not a CAKE matrix file)");
    std::uint32_t dtype = 0;
    std::int64_t rows = 0, cols = 0;
    f.read(reinterpret_cast<char*>(&dtype), sizeof(dtype));
    f.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    f.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    CAKE_CHECK_MSG(f.good(), path << ": truncated header");
    CAKE_CHECK_MSG(dtype == dtype_code<T>(),
                   path << ": dtype code " << dtype << " != requested "
                        << dtype_code<T>());
    CAKE_CHECK_MSG(rows >= 0 && cols >= 0, path << ": negative dimensions");
    MatrixT<T> m(rows, cols, /*zero=*/false);
    f.read(reinterpret_cast<char*>(m.data()),
           static_cast<std::streamsize>(
               static_cast<std::size_t>(m.size()) * sizeof(T)));
    CAKE_CHECK_MSG(f.gcount()
                       == static_cast<std::streamsize>(
                           static_cast<std::size_t>(m.size()) * sizeof(T)),
                   path << ": truncated payload");
    return m;
}

void save_csv(const Matrix& m, const std::string& path)
{
    std::ofstream f(path);
    CAKE_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
    f.precision(9);
    for (index_t r = 0; r < m.rows(); ++r) {
        for (index_t c = 0; c < m.cols(); ++c) {
            if (c) f << ',';
            f << m.at(r, c);
        }
        f << '\n';
    }
    CAKE_CHECK_MSG(f.good(), "write to " << path << " failed");
}

Matrix load_csv(const std::string& path)
{
    std::ifstream f(path);
    CAKE_CHECK_MSG(f.good(), "cannot open " << path);
    std::vector<std::vector<float>> rows;
    std::string line;
    while (std::getline(f, line)) {
        if (line.empty()) continue;
        std::vector<float> row;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ',')) {
            row.push_back(std::stof(cell));
        }
        if (!rows.empty()) {
            CAKE_CHECK_MSG(row.size() == rows.front().size(),
                           path << ": ragged CSV at line " << rows.size() + 1);
        }
        rows.push_back(std::move(row));
    }
    if (rows.empty()) return {};
    Matrix m(static_cast<index_t>(rows.size()),
             static_cast<index_t>(rows.front().size()), /*zero=*/false);
    for (index_t r = 0; r < m.rows(); ++r)
        for (index_t c = 0; c < m.cols(); ++c)
            m.at(r, c) = rows[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(c)];
    return m;
}

void save_matrix_market(const Matrix& m, const std::string& path)
{
    std::ofstream f(path);
    CAKE_CHECK_MSG(f.good(), "cannot open " << path << " for writing");
    f << "%%MatrixMarket matrix array real general\n";
    f << "% written by the CAKE library\n";
    f << m.rows() << ' ' << m.cols() << '\n';
    f.precision(9);
    // Matrix Market array format is column-major.
    for (index_t c = 0; c < m.cols(); ++c)
        for (index_t r = 0; r < m.rows(); ++r) f << m.at(r, c) << '\n';
    CAKE_CHECK_MSG(f.good(), "write to " << path << " failed");
}

Matrix load_matrix_market(const std::string& path)
{
    std::ifstream f(path);
    CAKE_CHECK_MSG(f.good(), "cannot open " << path);
    std::string line;
    CAKE_CHECK_MSG(std::getline(f, line), path << ": empty file");
    CAKE_CHECK_MSG(line.rfind("%%MatrixMarket", 0) == 0,
                   path << ": missing MatrixMarket banner");
    CAKE_CHECK_MSG(line.find("array") != std::string::npos,
                   path << ": only dense 'array' format supported");
    // Skip comments.
    while (std::getline(f, line) && !line.empty() && line[0] == '%') {
    }
    std::stringstream dims(line);
    index_t rows = 0, cols = 0;
    dims >> rows >> cols;
    CAKE_CHECK_MSG(rows > 0 && cols > 0, path << ": bad dimension line");
    Matrix m(rows, cols, /*zero=*/false);
    for (index_t c = 0; c < cols; ++c) {
        for (index_t r = 0; r < rows; ++r) {
            float v;
            CAKE_CHECK_MSG(static_cast<bool>(f >> v),
                           path << ": truncated body");
            m.at(r, c) = v;
        }
    }
    return m;
}

template void save_matrix<float>(const Matrix&, const std::string&);
template void save_matrix<double>(const MatrixD&, const std::string&);
template Matrix load_matrix<float>(const std::string&);
template MatrixD load_matrix<double>(const std::string&);

}  // namespace io
}  // namespace cake
