// Matrix serialization: a compact binary container, CSV, and the Matrix
// Market dense ("array") format — so workloads, benchmark inputs and
// results can round-trip to disk and interoperate with numpy/Matlab/
// SuiteSparse tooling.
#pragma once

#include <string>

#include "common/matrix.hpp"

namespace cake {
namespace io {

/// Binary container: 8-byte magic "CAKEMAT1", u32 dtype (4 = f32, 8 =
/// f64), i64 rows, i64 cols, then rows*cols little-endian elements.
template <typename T>
void save_matrix(const MatrixT<T>& m, const std::string& path);

/// Load a binary container; throws cake::Error on bad magic, dtype
/// mismatch or truncation.
template <typename T>
MatrixT<T> load_matrix(const std::string& path);

/// Plain CSV (no header), full float precision.
void save_csv(const Matrix& m, const std::string& path);

/// Load CSV written by save_csv (rectangular, comma-separated floats).
Matrix load_csv(const std::string& path);

/// Matrix Market dense format: "%%MatrixMarket matrix array real general",
/// column-major body per the spec.
void save_matrix_market(const Matrix& m, const std::string& path);

/// Load a dense Matrix Market file (array real general).
Matrix load_matrix_market(const std::string& path);

extern template void save_matrix<float>(const Matrix&, const std::string&);
extern template void save_matrix<double>(const MatrixD&,
                                         const std::string&);
extern template Matrix load_matrix<float>(const std::string&);
extern template MatrixD load_matrix<double>(const std::string&);

}  // namespace io
}  // namespace cake
