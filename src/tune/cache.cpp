#include "tune/cache.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "core/fperror.hpp"
#include "core/schedule.hpp"
#include "kernel/cpu_features.hpp"
#include "machine/fingerprint.hpp"

namespace cake {
namespace tune {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. The container has no JSON dependency and none may be
// added, so the cache file is read by this hand-rolled recursive-descent
// parser: objects, arrays, strings (with \" and \\ escapes), numbers,
// true/false/null. It never throws — failure surfaces as a flag + message
// that load_cache converts into a CACHE_PARSE issue.
// ---------------------------------------------------------------------------

struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<std::pair<std::string, JsonValue>> object;
    std::vector<JsonValue> array;

    [[nodiscard]] const JsonValue* get(const std::string& key) const
    {
        if (kind != Kind::kObject) return nullptr;
        for (const auto& [k, v] : object) {
            if (k == key) return &v;
        }
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool parse(JsonValue& out)
    {
        skip_ws();
        if (!parse_value(out, 0)) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing bytes after value");
        return true;
    }

    [[nodiscard]] const std::string& error() const { return error_; }

private:
    static constexpr int kMaxDepth = 32;

    bool fail(const std::string& what)
    {
        if (error_.empty()) {
            std::ostringstream os;
            os << what << " at byte " << pos_;
            error_ = os.str();
        }
        return false;
    }

    void skip_ws()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_]))
                   != 0) {
            ++pos_;
        }
    }

    bool consume(char ch)
    {
        if (pos_ < text_.size() && text_[pos_] == ch) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool parse_value(JsonValue& out, int depth)
    {
        if (depth > kMaxDepth) return fail("nesting too deep");
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        const char ch = text_[pos_];
        if (ch == '{') return parse_object(out, depth);
        if (ch == '[') return parse_array(out, depth);
        if (ch == '"') {
            out.kind = JsonValue::Kind::kString;
            return parse_string(out.string);
        }
        if (ch == 't' || ch == 'f') return parse_keyword(out);
        if (ch == 'n') return parse_keyword(out);
        return parse_number(out);
    }

    bool parse_object(JsonValue& out, int depth)
    {
        out.kind = JsonValue::Kind::kObject;
        ++pos_;  // '{'
        skip_ws();
        if (consume('}')) return true;
        for (;;) {
            skip_ws();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"'
                || !parse_string(key)) {
                return fail("expected object key string");
            }
            skip_ws();
            if (!consume(':')) return fail("expected ':'");
            skip_ws();
            JsonValue value;
            if (!parse_value(value, depth + 1)) return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (consume(',')) continue;
            if (consume('}')) return true;
            return fail("expected ',' or '}'");
        }
    }

    bool parse_array(JsonValue& out, int depth)
    {
        out.kind = JsonValue::Kind::kArray;
        ++pos_;  // '['
        skip_ws();
        if (consume(']')) return true;
        for (;;) {
            skip_ws();
            JsonValue value;
            if (!parse_value(value, depth + 1)) return false;
            out.array.push_back(std::move(value));
            skip_ws();
            if (consume(',')) continue;
            if (consume(']')) return true;
            return fail("expected ',' or ']'");
        }
    }

    bool parse_string(std::string& out)
    {
        ++pos_;  // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char ch = text_[pos_++];
            if (ch == '"') return true;
            if (ch == '\\') {
                if (pos_ >= text_.size()) break;
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    // \uXXXX is not produced by the writer; reject rather
                    // than silently mangle.
                    default: return fail("unsupported string escape");
                }
            } else {
                out += ch;
            }
        }
        return fail("unterminated string");
    }

    bool parse_keyword(JsonValue& out)
    {
        auto match = [&](const char* word) {
            const std::size_t len = std::strlen(word);
            if (text_.compare(pos_, len, word) == 0) {
                pos_ += len;
                return true;
            }
            return false;
        };
        if (match("true")) {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            return true;
        }
        if (match("false")) {
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
            return true;
        }
        if (match("null")) {
            out.kind = JsonValue::Kind::kNull;
            return true;
        }
        return fail("unknown keyword");
    }

    bool parse_number(JsonValue& out)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) return fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char* end = nullptr;
        out.number = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') return fail("malformed number");
        out.kind = JsonValue::Kind::kNumber;
        return true;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::string error_;
};

// ---------------------------------------------------------------------------
// Schema mapping.
// ---------------------------------------------------------------------------

std::optional<index_t> as_index(const JsonValue* v)
{
    if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return {};
    return static_cast<index_t>(v->number);
}

std::optional<double> as_double(const JsonValue* v)
{
    if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return {};
    return v->number;
}

std::optional<std::string> as_string(const JsonValue* v)
{
    if (v == nullptr || v->kind != JsonValue::Kind::kString) return {};
    return v->string;
}

std::optional<ScheduleKind> parse_schedule_name(const std::string& name)
{
    // Defers to the core registry round-trip so a kind added to
    // all_schedule_kinds() parses here with no further change.
    return parse_schedule_kind(name);
}

const char* exec_name(CakeExec exec)
{
    switch (exec) {
        case CakeExec::kAuto: return "auto";
        case CakeExec::kSerial: return "serial";
        case CakeExec::kPipelined: return "pipelined";
    }
    return "unknown";
}

std::optional<CakeExec> parse_exec_name(const std::string& name)
{
    if (name == "auto") return CakeExec::kAuto;
    if (name == "serial") return CakeExec::kSerial;
    if (name == "pipelined") return CakeExec::kPipelined;
    return {};
}

std::optional<Isa> parse_isa_name(const std::string& name)
{
    for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
        if (name == isa_name(isa)) return isa;
    }
    return {};
}

/// Extract one entry; false (with *why) when required fields are missing
/// or mistyped — the caller skips the entry and reports it.
bool entry_from_json(const JsonValue& v, TunedEntry& out, std::string* why)
{
    const auto fingerprint = as_string(v.get("fingerprint"));
    const auto dtype = as_string(v.get("dtype"));
    const auto elem_bytes = as_index(v.get("elem_bytes"));
    const JsonValue* bucket = v.get("bucket");
    if (!fingerprint || !dtype || !elem_bytes || bucket == nullptr
        || bucket->kind != JsonValue::Kind::kArray
        || bucket->array.size() != 3) {
        *why = "missing/mistyped fingerprint, dtype, elem_bytes or bucket[3]";
        return false;
    }
    if (*elem_bytes < 1) {
        *why = "elem_bytes must be >= 1";
        return false;
    }
    out.fingerprint = *fingerprint;
    out.dtype = *dtype;
    out.elem_bytes = *elem_bytes;
    const auto bm = as_index(&bucket->array[0]);
    const auto bn = as_index(&bucket->array[1]);
    const auto bk = as_index(&bucket->array[2]);
    if (!bm || !bn || !bk) {
        *why = "bucket entries must be numbers";
        return false;
    }
    out.bucket_m = *bm;
    out.bucket_n = *bn;
    out.bucket_k = *bk;

    if (const JsonValue* shape = v.get("shape");
        shape != nullptr && shape->kind == JsonValue::Kind::kArray
        && shape->array.size() == 3) {
        out.tuned_shape.m = as_index(&shape->array[0]).value_or(0);
        out.tuned_shape.n = as_index(&shape->array[1]).value_or(0);
        out.tuned_shape.k = as_index(&shape->array[2]).value_or(0);
    }
    out.measured_gflops = as_double(v.get("measured_gflops")).value_or(0);
    out.analytic_gflops = as_double(v.get("analytic_gflops")).value_or(0);
    out.predicted_gflops = as_double(v.get("predicted_gflops")).value_or(0);
    out.rel_error_bound = as_double(v.get("rel_error_bound")).value_or(0);

    const JsonValue* plan = v.get("plan");
    if (plan == nullptr || plan->kind != JsonValue::Kind::kObject) {
        *why = "missing plan object";
        return false;
    }
    if (const auto p = as_index(plan->get("p"))) {
        out.plan.p = static_cast<int>(*p);
    }
    out.plan.mc = as_index(plan->get("mc"));
    out.plan.kc = as_index(plan->get("kc"));
    out.plan.nc = as_index(plan->get("nc"));
    out.plan.alpha = as_double(plan->get("alpha"));
    if (const auto name = as_string(plan->get("schedule"))) {
        out.plan.schedule = parse_schedule_name(*name);
        if (!out.plan.schedule) {
            *why = "unknown schedule name '" + *name + "'";
            return false;
        }
    }
    if (const auto name = as_string(plan->get("exec"))) {
        out.plan.exec = parse_exec_name(*name);
        if (!out.plan.exec) {
            *why = "unknown exec name '" + *name + "'";
            return false;
        }
    }
    if (const auto name = as_string(plan->get("isa"))) {
        out.plan.isa = parse_isa_name(*name);
        if (!out.plan.isa) {
            *why = "unknown isa name '" + *name + "'";
            return false;
        }
    }
    return true;
}

void append_json_string(std::ostream& os, const std::string& s)
{
    os << '"';
    for (const char ch : s) {
        if (ch == '"' || ch == '\\') os << '\\';
        os << ch;
    }
    os << '"';
}

void entry_to_json(std::ostream& os, const TunedEntry& e)
{
    // Doubles must survive a save/load round trip bit-exactly: the smoke
    // check compares the reloaded winner's gflops against the in-memory
    // one, and the default 6-digit precision fails that.
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "    {\"fingerprint\": ";
    append_json_string(os, e.fingerprint);
    os << ", \"dtype\": \"" << e.dtype << "\", \"elem_bytes\": "
       << e.elem_bytes << ",\n     \"bucket\": ["
       << e.bucket_m << ", " << e.bucket_n << ", " << e.bucket_k
       << "], \"shape\": [" << e.tuned_shape.m << ", " << e.tuned_shape.n
       << ", " << e.tuned_shape.k << "],\n     \"plan\": {";
    bool first = true;
    auto field = [&](const char* name, auto&& write) {
        if (!first) os << ", ";
        first = false;
        os << '"' << name << "\": ";
        write();
    };
    if (e.plan.p) field("p", [&] { os << *e.plan.p; });
    if (e.plan.mc) field("mc", [&] { os << *e.plan.mc; });
    if (e.plan.kc) field("kc", [&] { os << *e.plan.kc; });
    if (e.plan.nc) field("nc", [&] { os << *e.plan.nc; });
    if (e.plan.alpha) field("alpha", [&] { os << *e.plan.alpha; });
    if (e.plan.schedule) {
        field("schedule",
              [&] { os << '"' << schedule_kind_name(*e.plan.schedule) << '"'; });
    }
    if (e.plan.exec) {
        field("exec", [&] { os << '"' << exec_name(*e.plan.exec) << '"'; });
    }
    if (e.plan.isa) {
        field("isa", [&] { os << '"' << isa_name(*e.plan.isa) << '"'; });
    }
    os << "},\n     \"measured_gflops\": " << e.measured_gflops
       << ", \"analytic_gflops\": " << e.analytic_gflops
       << ", \"predicted_gflops\": " << e.predicted_gflops
       << ", \"rel_error_bound\": " << e.rel_error_bound << "}";
}

}  // namespace

const TunedEntry* TuneCache::find(const std::string& fingerprint,
                                  const std::string& dtype,
                                  index_t elem_bytes,
                                  const GemmShape& shape) const
{
    const index_t bm = shape_bucket(shape.m);
    const index_t bn = shape_bucket(shape.n);
    const index_t bk = shape_bucket(shape.k);
    for (const TunedEntry& e : entries) {
        if (e.fingerprint == fingerprint && e.dtype == dtype
            && e.elem_bytes == elem_bytes && e.bucket_m == bm
            && e.bucket_n == bn && e.bucket_k == bk) {
            return &e;
        }
    }
    return nullptr;
}

void TuneCache::upsert(const TunedEntry& entry)
{
    for (TunedEntry& e : entries) {
        if (e.fingerprint == entry.fingerprint && e.dtype == entry.dtype
            && e.elem_bytes == entry.elem_bytes
            && e.bucket_m == entry.bucket_m && e.bucket_n == entry.bucket_n
            && e.bucket_k == entry.bucket_k) {
            e = entry;
            return;
        }
    }
    entries.push_back(entry);
}

index_t shape_bucket(index_t extent)
{
    if (extent <= 16) return 16;
    // Grid: 16, 24, 32, 48, 64, 96, ... (powers of two and their 1.5x
    // midpoints). Return the smallest grid point >= extent.
    index_t pow2 = 16;
    for (;;) {
        if (extent <= pow2) return pow2;
        const index_t mid = pow2 + pow2 / 2;
        if (extent <= mid) return mid;
        pow2 *= 2;
    }
}

std::string default_cache_path()
{
    if (const char* env = std::getenv("CAKE_TUNE_CACHE");
        env != nullptr && env[0] != '\0') {
        return env;
    }
    if (const char* home = std::getenv("HOME");
        home != nullptr && home[0] != '\0') {
        return std::string(home) + "/.cache/cake/tune.json";
    }
    return "cake_tune.json";
}

CacheLoadResult load_cache(const std::string& path)
{
    CacheLoadResult result;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return result;  // first run
    result.file_existed = true;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        result.issues.push_back(
            {"CACHE_IO", "cannot open '" + path + "' for reading"});
        return result;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        result.issues.push_back({"CACHE_IO", "read error on '" + path + "'"});
        return result;
    }
    const std::string text = buf.str();

    JsonValue root;
    JsonParser parser(text);
    if (!parser.parse(root) || root.kind != JsonValue::Kind::kObject) {
        result.issues.push_back(
            {"CACHE_PARSE", "'" + path + "' is not a JSON object: "
                                + (parser.error().empty() ? "wrong root type"
                                                          : parser.error())});
        return result;
    }

    const auto version = as_index(root.get("version"));
    if (!version) {
        result.issues.push_back(
            {"CACHE_PARSE", "'" + path + "' has no numeric 'version' field"});
        return result;
    }
    if (*version != kCacheVersion) {
        std::ostringstream os;
        os << "'" << path << "' is schema version " << *version
           << " but this build reads version " << kCacheVersion
           << "; ignoring it (a fresh search will rewrite it)";
        result.issues.push_back({"CACHE_VERSION", os.str()});
        return result;
    }

    const JsonValue* entries = root.get("entries");
    if (entries == nullptr || entries->kind != JsonValue::Kind::kArray) {
        result.issues.push_back(
            {"CACHE_PARSE", "'" + path + "' has no 'entries' array"});
        return result;
    }
    for (std::size_t i = 0; i < entries->array.size(); ++i) {
        TunedEntry entry;
        std::string why;
        if (entry_from_json(entries->array[i], entry, &why)) {
            result.cache.upsert(entry);
        } else {
            std::ostringstream os;
            os << "'" << path << "' entry " << i << " skipped: " << why;
            result.issues.push_back({"CACHE_PARSE", os.str()});
        }
    }
    return result;
}

bool save_cache(const TuneCache& cache, const std::string& path,
                std::string* error)
{
    const std::filesystem::path target(path);
    std::error_code ec;
    if (target.has_parent_path()) {
        std::filesystem::create_directories(target.parent_path(), ec);
        // A pre-existing directory also reports an ec of 0; real failures
        // surface when the temp file below cannot be opened.
    }

    // Write-then-rename so a crash mid-save leaves the previous cache
    // intact instead of a truncated file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            if (error != nullptr) *error = "cannot open '" + tmp + "'";
            return false;
        }
        out << "{\n  \"version\": " << kCacheVersion << ",\n  \"entries\": [";
        for (std::size_t i = 0; i < cache.entries.size(); ++i) {
            out << (i == 0 ? "\n" : ",\n");
            entry_to_json(out, cache.entries[i]);
        }
        out << "\n  ]\n}\n";
        out.flush();
        if (!out) {
            if (error != nullptr) *error = "write error on '" + tmp + "'";
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        if (error != nullptr) {
            *error = "rename '" + tmp + "' -> '" + path
                + "' failed: " + ec.message();
        }
        return false;
    }
    return true;
}

CachedPlanSource::CachedPlanSource(TuneCache cache, std::string fingerprint)
    : cache_(std::move(cache)), fingerprint_(std::move(fingerprint))
{
}

CachedPlanSource CachedPlanSource::for_host(const std::string& path)
{
    CacheLoadResult loaded =
        load_cache(path.empty() ? default_cache_path() : path);
    return CachedPlanSource(std::move(loaded.cache),
                            host_fingerprint().key());
}

std::optional<PlanOverrides> CachedPlanSource::lookup(
    const PlanRequest& request) const
{
    // The request's element width picks the canonical dtype name AND is
    // matched against the entry's own width: an f32 winner can never be
    // served to a 2-byte (f16/bf16) or 1-byte (i8) request.
    const DtypeDesc* d = dtype_for_elem_bytes(request.elem_bytes);
    if (d == nullptr) return {};
    const GemmShape shape{request.m, request.n, request.k};
    if (const TunedEntry* e =
            cache_.find(fingerprint_, d->name, request.elem_bytes, shape)) {
        return e->plan;
    }
    return {};
}

}  // namespace tune
}  // namespace cake
