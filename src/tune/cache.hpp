// Persisted tuning cache: the on-disk memory of the empirical plan
// autotuner (src/tune/tune.hpp). One versioned JSON file holds the
// winning plan per (machine fingerprint, dtype, shape bucket); a second
// `cake_tune --search` of the same shape — or any cake_gemm wired to a
// CachedPlanSource — replays the winner without re-benchmarking.
//
// Robustness contract: loading NEVER throws and NEVER crashes. A missing
// file, a truncated write, hostile JSON, a schema from a future version or
// a fingerprint from different hardware all degrade to a clean miss, each
// reported as a coded issue:
//
//   CACHE_IO       the file exists but could not be read
//   CACHE_PARSE    the bytes are not the JSON shape the schema requires
//   CACHE_VERSION  a well-formed file written by an incompatible schema
//
// (An absent file is not an issue at all — it is the normal first-run
// state.) Entries whose fingerprint differs from the caller's are kept on
// save (other machines sharing a home directory keep their plans) but are
// invisible to lookup.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/plan_source.hpp"

namespace cake {
namespace tune {

/// Schema version of the cache file. Bump on any incompatible change;
/// files with a different version load as empty (CACHE_VERSION issue).
/// v2: the entry key carries an explicit elem_bytes dtype tag (so an f32
/// winner can never serve a future f16/i8 request) and each entry carries
/// its static forward error bound (core/fperror.hpp).
inline constexpr int kCacheVersion = 2;

/// One tuned winner: the full plan plus the evidence that earned it.
struct TunedEntry {
    std::string fingerprint;  ///< MachineFingerprint::key() of the host
    std::string dtype;        ///< "f32" | "f64" | "f16" | "bf16" | "i8"
    index_t elem_bytes = 4;   ///< element width — part of the lookup key
    index_t bucket_m = 0;     ///< shape bucket (see shape_bucket)
    index_t bucket_n = 0;
    index_t bucket_k = 0;
    PlanOverrides plan;       ///< the winning overrides
    GemmShape tuned_shape;    ///< the exact shape that was benchmarked
    double measured_gflops = 0;   ///< winner's min-of-N measurement
    double analytic_gflops = 0;   ///< measured GFLOP/s of the analytic plan
    double predicted_gflops = 0;  ///< model's prediction for the winner
    double rel_error_bound = 0;   ///< static forward error bound of the plan
};

/// A coded problem encountered while loading a cache file.
struct CacheIssue {
    std::string code;     ///< CACHE_IO | CACHE_PARSE | CACHE_VERSION
    std::string message;  ///< human diagnostic
};

/// In-memory cache image.
struct TuneCache {
    std::vector<TunedEntry> entries;

    /// Entry for (fingerprint, dtype, elem_bytes, bucket of shape), if
    /// present. The width is part of the key end-to-end: an entry whose
    /// elem_bytes disagrees with the request never matches, whatever its
    /// dtype string claims.
    [[nodiscard]] const TunedEntry* find(const std::string& fingerprint,
                                         const std::string& dtype,
                                         index_t elem_bytes,
                                         const GemmShape& shape) const;

    /// Insert or replace the entry with the same (fingerprint, dtype,
    /// elem_bytes, bucket) key.
    void upsert(const TunedEntry& entry);
};

/// Result of load_cache: the usable cache plus any coded issues. `cache`
/// is always safe to use — on any issue it is simply empty.
struct CacheLoadResult {
    TuneCache cache;
    std::vector<CacheIssue> issues;
    bool file_existed = false;

    [[nodiscard]] bool ok() const { return issues.empty(); }
};

/// Bucket one GEMM extent onto the tuner's geometric grid: powers of two
/// with midpoints (… 64, 96, 128, 192, 256, 384, 512 …), clamped below at
/// 16. Nearby shapes share a bucket, so one search covers a neighbourhood
/// without ever replaying a plan tuned for a very different size.
index_t shape_bucket(index_t extent);

/// Cache file location: $CAKE_TUNE_CACHE if set, else
/// $HOME/.cache/cake/tune.json (falling back to ./cake_tune.json when
/// HOME is unset).
std::string default_cache_path();

/// Load `path` under the robustness contract above (never throws).
CacheLoadResult load_cache(const std::string& path);

/// Serialise the cache (schema kCacheVersion) to `path`, creating parent
/// directories as needed. Returns false (with *error set) on IO failure.
bool save_cache(const TuneCache& cache, const std::string& path,
                std::string* error = nullptr);

/// TunedPlanSource backed by a loaded cache: buckets each request's shape
/// and serves the stored winner for this fingerprint + dtype. The cheap
/// lookup the driver performs per multiply.
class CachedPlanSource final : public TunedPlanSource {
public:
    CachedPlanSource(TuneCache cache, std::string fingerprint);

    /// Convenience: load from `path` (default default_cache_path()) for
    /// the executing host. Load issues are swallowed into an empty cache —
    /// the driver contract is "miss", never "crash".
    static CachedPlanSource for_host(const std::string& path = {});

    [[nodiscard]] std::optional<PlanOverrides> lookup(
        const PlanRequest& request) const override;

private:
    TuneCache cache_;
    std::string fingerprint_;
};

}  // namespace tune
}  // namespace cake
