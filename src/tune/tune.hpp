// Guided empirical search over the CAKE plan space.
//
// The paper's thesis is "no design search needed": §4.3 derives the block
// geometry analytically. This module is the honest countercheck — it
// benchmarks the analytic plan against a guided neighbourhood of
// alternatives (mc / kc / nc geometry, schedule, executor, worker count,
// micro-kernel ISA) on the real host and records where measurement and
// model disagree. The analytic plan is ALWAYS candidate 0 and always
// timed, so the recorded winner can never measure worse than it; on most
// shapes the search simply confirms the paper.
//
// Discipline:
//   * every candidate must pass audit_cb_plan() before it is ever timed —
//     the tuner cannot select a plan that violates the §4.2/§4.3
//     invariants;
//   * every candidate must also pass the numerics gate: a plan whose
//     static forward error bound (core/fperror.hpp) exceeds the analytic
//     default's is refused untimed — speed can never buy accuracy away —
//     and the recorded winner carries its bound into the cache;
//   * timing uses the shared min-of-N policy of src/common/timing.hpp,
//     the same experiment the ablation benches run;
//   * measurement is injectable (MeasureFn), so tests drive the whole
//     search loop with a deterministic mock timer;
//   * winners persist in the versioned cache of src/tune/cache.hpp keyed
//     by machine fingerprint, dtype and shape bucket.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/timing.hpp"
#include "common/types.hpp"
#include "core/plan_source.hpp"
#include "core/schedule.hpp"
#include "machine/machine.hpp"
#include "model/planner.hpp"
#include "threading/thread_pool.hpp"
#include "tune/cache.hpp"

namespace cake {
namespace tune {

/// One point in the plan space.
struct TuneCandidate {
    int p = 1;
    std::optional<index_t> mc;  ///< unset = solver default
    std::optional<index_t> kc;
    std::optional<index_t> nc;
    ScheduleKind schedule = ScheduleKind::kKFirstSerpentine;
    CakeExec exec = CakeExec::kAuto;
    std::optional<Isa> isa;
    std::string label;            ///< human-readable description
    bool analytic_default = false;  ///< candidate 0: the §4.3 plan

    /// The candidate as cacheable plan overrides (default-valued knobs
    /// stay unset so an analytic-default winner caches as a no-op plan).
    [[nodiscard]] PlanOverrides overrides() const;
};

/// Kernel admission hook: returns whether the named micro-kernel may be
/// timed, filling `why` on refusal. Empty = the release-side static gate
/// (kernel_gate_ok: IR exists, registry binds, spill-free); cake_tune
/// injects the full kernelcheck prover (symbolic verification + binary
/// lane fingerprint) when built with the analysis library.
using KernelGateFn =
    std::function<bool(const std::string& kernel, std::string* why)>;

/// What to tune.
struct TuneRequest {
    GemmShape shape;
    /// Searchable today: "f32" | "f64". The cache key also understands
    /// "f16"/"bf16"/"i8" (ROADMAP item 2) — searching them throws until
    /// their micro-kernels exist.
    std::string dtype = "f32";
    /// Maximum candidates to TIME (audit-rejected ones are free). >= 1;
    /// the analytic default always claims the first slot. --smoke uses a
    /// tiny budget; --search the default.
    int budget = 24;
    TimingPolicy policy;          ///< shared warmup/min-of-N discipline
    double model_tolerance = 0.02;  ///< ranking-tie band (fractional)
    KernelGateFn kernel_gate;     ///< empty = kernel_gate_ok
};

/// One timed candidate with both sides of the story.
struct CandidateResult {
    TuneCandidate candidate;
    double seconds = 0;           ///< min-of-N wall time
    double measured_gflops = 0;
    double predicted_gflops = 0;  ///< analytic model at this geometry
    double rel_error_bound = 0;   ///< static forward error bound of the plan
};

/// Everything a search produced.
struct TuneOutcome {
    TunedEntry winner;
    std::vector<CandidateResult> results;  ///< every timed candidate
    model::DisagreementReport disagreement;  ///< model-vs-hardware flips
    int audit_rejected = 0;  ///< candidates audit_cb_plan vetoed untimed
    int kernelcheck_rejected = 0;  ///< candidates whose micro-kernel fails
                                   ///< the kernel gate, vetoed untimed
    int numerics_rejected = 0;  ///< candidates whose error bound exceeds
                                ///< the analytic default's, vetoed untimed
    int budget_dropped = 0;  ///< candidates dropped by the budget cap
    bool cache_hit = false;  ///< served from the cache; nothing was timed
    std::vector<CacheIssue> cache_issues;  ///< from loading (tune_with_cache)

    /// The analytic default's measured throughput (results[0]).
    [[nodiscard]] double analytic_gflops() const
    {
        return results.empty() ? winner.analytic_gflops
                               : results.front().measured_gflops;
    }
};

/// Measurement hook: min-of-N seconds for one candidate on the real
/// shape. The default (empty) hook benchmarks with CakeGemmT on the
/// caller's pool; tests inject a deterministic mock.
using MeasureFn = std::function<double(const TuneCandidate&)>;

/// The candidate neighbourhood the search times, in order: the analytic
/// default, then geometry variations around it (mc / kc / nc), then
/// execution variations (serial executor, reduced worker counts,
/// alternative schedules, other supported ISAs) applied to the analytic
/// geometry. Exposed so tests can pin the search space.
std::vector<TuneCandidate> generate_candidates(const MachineSpec& machine,
                                               const GemmShape& shape,
                                               index_t elem_bytes, int p);

/// Run the guided search for one shape. Candidates failing audit_cb_plan
/// are skipped untimed; remaining ones are measured under req.policy and
/// the best measured plan becomes the winner. `fingerprint` keys the
/// returned entry. Throws cake::Error only on caller errors (unknown
/// dtype, empty budget after audit gating).
TuneOutcome tune_shape(ThreadPool& pool, const MachineSpec& machine,
                       const TuneRequest& req, const std::string& fingerprint,
                       MeasureFn measure = {});

/// Cache-first entry point: a stored winner for (fingerprint, dtype,
/// bucket) short-circuits the whole search (cache_hit = true, nothing
/// timed); otherwise tune_shape runs and the winner is upserted and saved
/// to `cache_path`. Load problems surface in cache_issues and degrade to
/// a miss, never a failure.
TuneOutcome tune_with_cache(ThreadPool& pool, const MachineSpec& machine,
                            const TuneRequest& req,
                            const std::string& cache_path,
                            const std::string& fingerprint,
                            MeasureFn measure = {});

}  // namespace tune
}  // namespace cake
