#include "tune/tune.hpp"

#include <algorithm>
#include <sstream>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "core/audit.hpp"
#include "core/cake_gemm.hpp"
#include "core/fperror.hpp"
#include "kernel/kernel_ir.hpp"
#include "kernel/registry.hpp"
#include "model/throughput.hpp"

namespace cake {
namespace tune {
namespace {

/// Kernel register-tile shape for a dtype/ISA choice.
template <typename T>
std::pair<index_t, index_t> kernel_shape_of(const std::optional<Isa>& isa)
{
    const MicroKernelT<T>& k =
        isa ? microkernel_for_of<T>(*isa) : best_microkernel_of<T>();
    return {k.mr, k.nr};
}

std::pair<index_t, index_t> kernel_shape_for(const std::string& dtype,
                                             const std::optional<Isa>& isa)
{
    if (dtype == "f32") return kernel_shape_of<float>(isa);
    if (dtype == "f64") return kernel_shape_of<double>(isa);
    throw Error("unknown dtype '" + dtype + "' (expected f32 or f64)");
}

/// Registry name of the micro-kernel a dtype/ISA choice dispatches to —
/// the key the kernel gate checks.
template <typename T>
std::string kernel_name_of(const std::optional<Isa>& isa)
{
    const MicroKernelT<T>& k =
        isa ? microkernel_for_of<T>(*isa) : best_microkernel_of<T>();
    return k.name;
}

std::string kernel_name_for(const std::string& dtype,
                            const std::optional<Isa>& isa)
{
    if (dtype == "f32") return kernel_name_of<float>(isa);
    if (dtype == "f64") return kernel_name_of<double>(isa);
    throw Error("unknown dtype '" + dtype + "' (expected f32 or f64)");
}

index_t elem_bytes_for(const std::string& dtype)
{
    // Width is defined for every dtype the cache can key on; the search
    // itself still needs kernels (kernel_shape_for throws until the
    // f16/bf16/i8 micro-kernels of ROADMAP item 2 land).
    const DtypeDesc* d = find_dtype(dtype);
    if (d == nullptr) {
        throw Error("unknown dtype '" + dtype
                    + "' (expected f32/f64/f16/bf16/i8)");
    }
    return d->elem_bytes;
}

TilingOptions tiling_of(const TuneCandidate& c, index_t elem_bytes)
{
    TilingOptions topts;
    topts.mc = c.mc;
    topts.kc = c.kc;
    topts.nc = c.nc;
    topts.elem_bytes = elem_bytes;
    return topts;
}

std::string describe(const TuneCandidate& c)
{
    std::ostringstream os;
    os << "p=" << c.p;
    if (c.mc) os << " mc=" << *c.mc;
    if (c.kc) os << " kc=" << *c.kc;
    if (c.nc) os << " nc=" << *c.nc;
    if (c.schedule != ScheduleKind::kKFirstSerpentine) {
        os << " sched=" << schedule_kind_name(c.schedule);
    }
    if (c.exec == CakeExec::kSerial) os << " exec=serial";
    if (c.isa) os << " isa=" << isa_name(*c.isa);
    return os.str();
}

/// Deterministic operand fill — values in [0.5, 1.5) so accumulation
/// neither overflows nor denormalises at any searched K.
template <typename T>
void fill_operand(T* data, std::size_t count, std::uint32_t seed)
{
    std::uint32_t state = seed * 2654435761u + 1u;
    for (std::size_t i = 0; i < count; ++i) {
        state = state * 1664525u + 1013904223u;
        data[i] = T(0.5) + T(state >> 8) / T(1u << 24);
    }
}

/// Real benchmark of one candidate: CakeGemmT on freshly filled operands,
/// driver-reported seconds under the shared min-of-N policy.
template <typename T>
double measure_candidate(ThreadPool& pool, const MachineSpec& machine,
                         const GemmShape& shape, const TuneCandidate& cand,
                         const TimingPolicy& policy)
{
    CakeOptions opts;
    opts.p = cand.p;
    opts.mc = cand.mc;
    opts.kc = cand.kc;
    opts.nc = cand.nc;
    opts.schedule = cand.schedule;
    opts.exec = cand.exec;
    opts.isa = cand.isa;
    opts.machine = machine;
    CakeGemmT<T> gemm(pool, opts);

    const auto m = static_cast<std::size_t>(shape.m);
    const auto n = static_cast<std::size_t>(shape.n);
    const auto k = static_cast<std::size_t>(shape.k);
    AlignedBuffer<T> a(m * k);
    AlignedBuffer<T> b(k * n);
    AlignedBuffer<T> c(m * n);
    fill_operand(a.data(), m * k, 17u);
    fill_operand(b.data(), k * n, 41u);

    return min_seconds_reported(policy, [&] {
        gemm.multiply(a.data(), shape.k, b.data(), shape.n, c.data(),
                      shape.n, shape.m, shape.n, shape.k);
        return gemm.stats().total_seconds;
    });
}

/// mc candidates: the analytic value scaled, re-snapped to mr multiples,
/// deduplicated.
std::vector<index_t> scaled_multiples(index_t base, index_t unit,
                                      std::initializer_list<double> factors)
{
    std::vector<index_t> out;
    for (const double f : factors) {
        index_t v = static_cast<index_t>(static_cast<double>(base) * f);
        v = std::max(v / unit * unit, unit);
        if (v != base && std::find(out.begin(), out.end(), v) == out.end()) {
            out.push_back(v);
        }
    }
    return out;
}

}  // namespace

PlanOverrides TuneCandidate::overrides() const
{
    PlanOverrides o;
    o.p = p;
    o.mc = mc;
    o.kc = kc;
    o.nc = nc;
    if (schedule != ScheduleKind::kKFirstSerpentine) o.schedule = schedule;
    if (exec != CakeExec::kAuto) o.exec = exec;
    o.isa = isa;
    return o;
}

std::vector<TuneCandidate> generate_candidates(const MachineSpec& machine,
                                               const GemmShape& shape,
                                               index_t elem_bytes, int p)
{
    std::vector<TuneCandidate> out;

    TuneCandidate base;
    base.p = p;
    base.analytic_default = true;
    base.label = "analytic-default";
    out.push_back(base);

    // The analytic geometry the neighbourhood is centred on, solved with
    // the same register-tile shape the measurement (and the audit gate)
    // will use — mc candidates snap to ITS mr, so every geometry variant
    // is audit-admissible by construction. If even the centre is
    // unsolvable the audit gate downstream reports it; search nothing.
    CbBlockParams solved;
    try {
        TilingOptions topts;
        topts.elem_bytes = elem_bytes;
        const auto [mr, nr] = kernel_shape_for(
            elem_bytes == 8 ? "f64" : "f32", std::nullopt);
        solved = compute_cb_block(machine, p, mr, nr, topts);
    } catch (const Error&) {
        return out;
    }

    // --- Stage 1: geometry around the analytic solution. ----------------
    // mc x kc sweep: shrink and grow the square sub-block, plus
    // deliberately rectangular kc (the axis Eq. 2 cannot see: a shallower
    // kc trades L2 reuse for a shorter DRAM-exposed pack per block).
    for (const index_t mc :
         scaled_multiples(solved.mc, solved.mr, {0.5, 0.75, 1.0, 1.5})) {
        TuneCandidate c = base;
        c.analytic_default = false;
        c.mc = mc;
        c.label = "geometry";
        out.push_back(c);
    }
    for (const index_t kc :
         scaled_multiples(solved.kc, 8, {0.5, 0.75, 1.5, 2.0})) {
        TuneCandidate c = base;
        c.analytic_default = false;
        c.kc = kc;
        c.label = "geometry";
        out.push_back(c);
    }
    // N extent: stretch the block beyond the solver's alpha (more B reuse
    // per A fetch if the LLC share tolerates it — audit decides).
    for (const double f : {1.5, 2.0}) {
        TuneCandidate c = base;
        c.analytic_default = false;
        c.nc = static_cast<index_t>(static_cast<double>(solved.n_blk) * f);
        c.label = "geometry";
        out.push_back(c);
    }

    // --- Stage 2: execution strategy at the analytic geometry. ----------
    {
        TuneCandidate c = base;
        c.analytic_default = false;
        c.exec = CakeExec::kSerial;
        c.label = "executor";
        out.push_back(c);
    }
    for (const int pc : {p - 1, p / 2}) {
        if (pc >= 1 && pc != p) {
            TuneCandidate c = base;
            c.analytic_default = false;
            c.p = pc;
            c.label = "workers";
            out.push_back(c);
        }
    }
    // Every registered schedule kind is a candidate (all_schedule_kinds()
    // is THE registry — a new kind lands in the search automatically and
    // tests fail if one goes missing), ordered by the model's closed-form
    // traffic ranking so the budget meets the most promising ones first.
    // The recommended default is already candidate 0.
    for (const model::ScheduleTrafficRow& row :
         model::schedule_traffic_table(shape, solved)) {
        if (row.schedule == base.schedule) continue;
        TuneCandidate c = base;
        c.analytic_default = false;
        c.schedule = row.schedule;
        c.label = "schedule";
        out.push_back(c);
    }
    for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
        if (!isa_supported(isa)) continue;
        TuneCandidate c = base;
        c.analytic_default = false;
        c.isa = isa;
        c.label = "isa";
        out.push_back(c);
    }
    return out;
}

TuneOutcome tune_shape(ThreadPool& pool, const MachineSpec& machine,
                       const TuneRequest& req, const std::string& fingerprint,
                       MeasureFn measure)
{
    CAKE_CHECK_MSG(req.shape.m >= 1 && req.shape.n >= 1 && req.shape.k >= 1,
                   "tune shape must be positive in every dimension");
    CAKE_CHECK_MSG(req.budget >= 1, "tune budget must be >= 1");
    const index_t elem_bytes = elem_bytes_for(req.dtype);
    const int p = std::min(machine.cores, pool.size());

    if (!measure) {
        measure = [&pool, &machine, &req](const TuneCandidate& c) {
            return req.dtype == "f64"
                ? measure_candidate<double>(pool, machine, req.shape, c,
                                            req.policy)
                : measure_candidate<float>(pool, machine, req.shape, c,
                                           req.policy);
        };
    }

    TuneOutcome outcome;
    const std::vector<TuneCandidate> candidates =
        generate_candidates(machine, req.shape, elem_bytes, p);

    const DtypeDesc* dd = find_dtype(req.dtype);
    CAKE_CHECK_MSG(dd != nullptr, "unknown dtype '" << req.dtype << "'");
    PlanErrorBound default_bound;
    bool have_default_bound = false;

    for (const TuneCandidate& raw : candidates) {
        if (static_cast<int>(outcome.results.size()) >= req.budget) {
            ++outcome.budget_dropped;
            continue;
        }
        TuneCandidate cand = raw;
        if (cand.label == "analytic-default" || cand.label.empty()) {
            cand.label = describe(cand);
        } else {
            cand.label += ": " + describe(cand);
        }
        // --- Safety gate: never time a plan the auditor rejects. --------
        const auto [mr, nr] = kernel_shape_for(req.dtype, cand.isa);
        const TilingOptions topts = tiling_of(cand, elem_bytes);
        const AuditReport audit = audit_cb_plan(machine, cand.p, mr, nr,
                                                req.shape, topts,
                                                cand.schedule);
        if (!audit.ok()) {
            CAKE_CHECK_MSG(!cand.analytic_default,
                           "the analytic default plan fails its own audit ("
                               << audit.codes() << ") — machine description "
                               << "and solver disagree");
            ++outcome.audit_rejected;
            continue;
        }

        // --- Kernel gate: never time a plan whose micro-kernel fails its
        // static proof. The default is the release-side admission gate
        // (kernel_ir.hpp); cake_tune injects the full kernelcheck prover.
        const std::string kname = kernel_name_for(req.dtype, cand.isa);
        std::string kwhy;
        const bool kernel_clean = req.kernel_gate
            ? req.kernel_gate(kname, &kwhy)
            : kernel_gate_ok(kname, &kwhy);
        if (!kernel_clean) {
            CAKE_CHECK_MSG(!cand.analytic_default,
                           "the analytic default's micro-kernel '"
                               << kname << "' fails kernelcheck: " << kwhy);
            ++outcome.kernelcheck_rejected;
            continue;
        }

        // --- Numerics gate: speed can never buy accuracy away. ----------
        // The static forward error bound of the candidate's (audited)
        // plan must not exceed the analytic default's — e.g. an
        // N-innermost schedule on a multi-kb shape spills every partial
        // column and pays a join-add per revisit, so it is refused here
        // however fast it measures.
        const PlanErrorBound bound = plan_error_bound(
            req.shape, audit.params, cand.schedule, *dd,
            /*beta_nonzero=*/false);
        if (cand.analytic_default) {
            default_bound = bound;
            have_default_bound = true;
        } else if (have_default_bound
                   && bound.rel_bound
                       > default_bound.rel_bound * (1.0 + 1e-9)) {
            ++outcome.numerics_rejected;
            continue;
        }

        CandidateResult r;
        r.candidate = cand;
        r.rel_error_bound = bound.rel_bound;
        r.seconds = measure(cand);
        r.measured_gflops =
            r.seconds > 0 ? req.shape.flops() / r.seconds / 1e9 : 0.0;
        r.predicted_gflops =
            model::predict_cake(machine, cand.p, req.shape,
                                model::KernelShape{mr, nr}, topts)
                .gflops;
        outcome.results.push_back(std::move(r));
    }
    CAKE_CHECK_MSG(!outcome.results.empty(),
                   "no candidate survived the audit gate");

    // The analytic default is results[0] by construction, so the winner is
    // >= it by definition of max.
    const CandidateResult* best = &outcome.results.front();
    for (const CandidateResult& r : outcome.results) {
        if (r.measured_gflops > best->measured_gflops) best = &r;
    }

    std::vector<model::MeasuredPlanPoint> points;
    points.reserve(outcome.results.size());
    for (const CandidateResult& r : outcome.results) {
        points.push_back({r.candidate.label, r.predicted_gflops,
                          r.measured_gflops});
    }
    outcome.disagreement =
        model::compare_rankings(points, req.model_tolerance);

    TunedEntry& w = outcome.winner;
    w.fingerprint = fingerprint;
    w.dtype = req.dtype;
    w.elem_bytes = elem_bytes;
    w.rel_error_bound = best->rel_error_bound;
    w.bucket_m = shape_bucket(req.shape.m);
    w.bucket_n = shape_bucket(req.shape.n);
    w.bucket_k = shape_bucket(req.shape.k);
    w.plan = best->candidate.overrides();
    w.tuned_shape = req.shape;
    w.measured_gflops = best->measured_gflops;
    w.analytic_gflops = outcome.results.front().measured_gflops;
    w.predicted_gflops = best->predicted_gflops;
    return outcome;
}

TuneOutcome tune_with_cache(ThreadPool& pool, const MachineSpec& machine,
                            const TuneRequest& req,
                            const std::string& cache_path,
                            const std::string& fingerprint,
                            MeasureFn measure)
{
    CacheLoadResult loaded = load_cache(cache_path);
    if (const TunedEntry* hit =
            loaded.cache.find(fingerprint, req.dtype,
                              elem_bytes_for(req.dtype), req.shape)) {
        TuneOutcome outcome;
        outcome.cache_hit = true;
        outcome.winner = *hit;
        outcome.cache_issues = std::move(loaded.issues);
        return outcome;
    }

    TuneOutcome outcome =
        tune_shape(pool, machine, req, fingerprint, std::move(measure));
    outcome.cache_issues = std::move(loaded.issues);
    loaded.cache.upsert(outcome.winner);
    std::string error;
    if (!save_cache(loaded.cache, cache_path, &error)) {
        outcome.cache_issues.push_back({"CACHE_IO", error});
    }
    return outcome;
}

}  // namespace tune
}  // namespace cake
