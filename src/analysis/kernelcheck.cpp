#include "analysis/kernelcheck.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "kernel/kernel_int8.hpp"
#include "kernel/microkernel.hpp"
#include "kernel/registry.hpp"
#include "model/kernel_peak.hpp"

namespace cake {
namespace kernelcheck {
namespace {

void add_issue(KernelReport& report, const std::string& code,
               const std::string& message)
{
    report.issues.push_back({code, message});
}

// --- symbolic obligations ------------------------------------------------

/// KIR_MALFORMED: geometry positive and every index inside its declared
/// range. Returns false when the IR is too broken for the later
/// obligations to interpret it (they are skipped then).
bool check_malformed(const KernelIr& ir, KernelReport& report)
{
    std::ostringstream bad;
    auto complain = [&bad](const std::string& what) {
        if (bad.tellp() > 0) bad << "; ";
        bad << what;
    };
    if (ir.mr < 1 || ir.nr < 1) complain("mr/nr must be positive");
    if (ir.lanes < 1) complain("lanes must be positive");
    if (ir.lanes > ir.nr) complain("lanes wider than the tile");
    if (ir.quad < 1) complain("quad must be positive");
    if (ir.acc_regs < 1) complain("no accumulators declared");
    if (ir.reg_budget < 1) complain("no register budget declared");
    if (ir.fmas.empty()) complain("empty FMA list");
    if (ir.stores.empty()) complain("empty store map");
    if (bad.tellp() > 0) {
        add_issue(report, "KIR_MALFORMED",
                  "kernel '" + ir.kernel + "': " + bad.str());
        return false;
    }
    bool ranges_ok = true;
    for (std::size_t i = 0; i < ir.fmas.size(); ++i) {
        const KirFma& f = ir.fmas[i];
        if (f.acc < 0 || f.acc >= ir.acc_regs || f.a_row < 0
            || f.a_row >= static_cast<int>(ir.mr) || f.b_col < 0
            || f.b_col + ir.lanes > static_cast<int>(ir.nr)) {
            add_issue(report, "KIR_MALFORMED",
                      "kernel '" + ir.kernel + "': fma #"
                          + std::to_string(i) + " (acc="
                          + std::to_string(f.acc) + ", a_row="
                          + std::to_string(f.a_row) + ", b_col="
                          + std::to_string(f.b_col)
                          + ") indexes outside the declared geometry");
            ranges_ok = false;
        }
    }
    for (std::size_t i = 0; i < ir.stores.size(); ++i) {
        const KirStore& s = ir.stores[i];
        if (s.acc < 0 || s.acc >= ir.acc_regs || s.row < 0
            || s.row >= static_cast<int>(ir.mr) || s.col < 0
            || s.col + ir.lanes > static_cast<int>(ir.nr)) {
            add_issue(report, "KIR_MALFORMED",
                      "kernel '" + ir.kernel + "': store #"
                          + std::to_string(i) + " (acc="
                          + std::to_string(s.acc) + ", row="
                          + std::to_string(s.row) + ", col="
                          + std::to_string(s.col)
                          + ") indexes outside the declared geometry");
            ranges_ok = false;
        }
    }
    return ranges_ok;
}

/// KIR_COVER / KIR_DUP: the store map writes every tile element exactly
/// once.
void check_cover(const KernelIr& ir, KernelReport& report)
{
    std::vector<int> count(
        static_cast<std::size_t>(ir.mr * ir.nr), 0);
    for (const KirStore& s : ir.stores) {
        for (int l = 0; l < ir.lanes; ++l) {
            ++count[static_cast<std::size_t>(s.row) * ir.nr
                    + static_cast<std::size_t>(s.col + l)];
        }
    }
    int missing = 0;
    int duplicated = 0;
    int first_missing = -1;
    int first_dup = -1;
    for (std::size_t e = 0; e < count.size(); ++e) {
        if (count[e] == 0) {
            ++missing;
            if (first_missing < 0) first_missing = static_cast<int>(e);
        } else if (count[e] > 1) {
            ++duplicated;
            if (first_dup < 0) first_dup = static_cast<int>(e);
        }
    }
    if (missing > 0) {
        add_issue(report, "KIR_COVER",
                  "kernel '" + ir.kernel + "': " + std::to_string(missing)
                      + " of " + std::to_string(ir.mr * ir.nr)
                      + " C elements never stored (first gap C("
                      + std::to_string(first_missing / ir.nr) + ","
                      + std::to_string(first_missing % ir.nr) + "))");
    }
    if (duplicated > 0) {
        add_issue(report, "KIR_DUP",
                  "kernel '" + ir.kernel + "': " + std::to_string(duplicated)
                      + " C elements stored more than once (first C("
                      + std::to_string(first_dup / ir.nr) + ","
                      + std::to_string(first_dup % ir.nr)
                      + ")) — accumulate would double-add them");
    }
}

/// KIR_ACC: per-store symbolic dataflow. Lane l of a stored accumulator
/// must receive, per k-step, exactly the term a(row, p) * b(p, col + l)
/// — one FMA with the matching broadcast row and B slice, none foreign.
void check_acc(const KernelIr& ir, KernelReport& report)
{
    for (std::size_t i = 0; i < ir.stores.size(); ++i) {
        const KirStore& s = ir.stores[i];
        int matching = 0;
        int foreign = 0;
        const KirFma* wrong = nullptr;
        for (const KirFma& f : ir.fmas) {
            if (f.acc != s.acc) continue;
            if (f.a_row == s.row && f.b_col == s.col) {
                ++matching;
            } else {
                ++foreign;
                if (wrong == nullptr) wrong = &f;
            }
        }
        if (matching == 1 && foreign == 0) continue;
        std::ostringstream msg;
        msg << "kernel '" << ir.kernel << "': store #" << i << " (acc "
            << s.acc << " -> C(" << s.row << "," << s.col << "..)) needs"
            << " exactly the term a(" << s.row << ",p)*b(p," << s.col
            << "+l) but its accumulator receives " << matching
            << " matching and " << foreign << " foreign terms per k-step";
        if (wrong != nullptr) {
            msg << " (e.g. a(" << wrong->a_row << ",p)*b(p," << wrong->b_col
                << "+l))";
        }
        add_issue(report, "KIR_ACC", msg.str());
    }
}

/// KIR_SPILL: the release-side budget arithmetic, surfaced as an issue.
void check_spill(const KernelIr& ir, KernelReport& report)
{
    std::string why;
    if (!kir_spill_free(ir, &why)) add_issue(report, "KIR_SPILL", why);
}

/// KIR_THROUGHPUT: the declared chain depth must equal the depth the FMA
/// list actually implies, so the peak bound divides by the truth.
void check_throughput(const KernelIr& ir, KernelReport& report)
{
    std::map<int, int> updates;
    for (const KirFma& f : ir.fmas) ++updates[f.acc];
    int derived = 1;
    for (const auto& [acc, n] : updates) derived = std::max(derived, n);
    report.derived_chain = derived;
    if (ir.chain_updates != derived) {
        add_issue(report, "KIR_THROUGHPUT",
                  "kernel '" + ir.kernel + "': declares "
                      + std::to_string(ir.chain_updates)
                      + " sequential accumulator updates per k-step but its"
                        " FMA list implies "
                      + std::to_string(derived)
                      + " — the static peak bound would be wrong");
    }
}

// --- lane-fingerprint equivalence ---------------------------------------

// Exactly-representable unique-value inputs: small distinct integers, so
// float accumulation is exact (sums stay far below 2^24) and any index
// confusion in the IR or the binary shifts at least one lane's value.

double f_a_val(index_t i, index_t p)
{
    return 1.0 + 3.0 * static_cast<double>(i) + 37.0 * static_cast<double>(p);
}
double f_b_val(index_t p, index_t j)
{
    return 2.0 + 5.0 * static_cast<double>(j) + 41.0 * static_cast<double>(p);
}

/// The IR's symbolic result for C(row, col+l) at depth kc, evaluated over
/// the term algebra in double (exact for these inputs).
double ir_expected_float(const KernelIr& ir, const KirStore& s, int lane,
                         index_t kc)
{
    double sum = 0;
    for (index_t p = 0; p < kc; ++p) {
        for (const KirFma& f : ir.fmas) {
            if (f.acc != s.acc) continue;
            sum += f_a_val(f.a_row, p) * f_b_val(p, f.b_col + lane);
        }
    }
    return sum;
}

template <typename T>
void fingerprint_float(const KernelIr& ir, const MicroKernelT<T>& kernel,
                       KernelReport& report)
{
    const index_t mr = ir.mr;
    const index_t nr = ir.nr;
    const T sentinel = static_cast<T>(-987654);
    for (const index_t kc : {index_t{1}, index_t{3}, index_t{7}}) {
        AlignedBuffer<T> a(static_cast<std::size_t>(mr * kc));
        AlignedBuffer<T> b(static_cast<std::size_t>(nr * kc));
        for (index_t p = 0; p < kc; ++p) {
            for (index_t i = 0; i < mr; ++i)
                a[static_cast<std::size_t>(p * mr + i)] =
                    static_cast<T>(f_a_val(i, p));
            for (index_t j = 0; j < nr; ++j)
                b[static_cast<std::size_t>(p * nr + j)] =
                    static_cast<T>(f_b_val(p, j));
        }
        // Expected tile from the IR's term algebra (cover is exact — the
        // symbolic pass ran clean before fingerprinting).
        std::vector<double> expected(static_cast<std::size_t>(mr * nr), 0);
        for (const KirStore& s : ir.stores) {
            for (int l = 0; l < ir.lanes; ++l) {
                expected[static_cast<std::size_t>(s.row) * nr
                         + static_cast<std::size_t>(s.col + l)] =
                    ir_expected_float(ir, s, l, kc);
            }
        }

        AlignedBuffer<T> c(static_cast<std::size_t>(mr * nr));
        // Overwrite path: every lane must land exactly on the symbolic
        // value, clobbering the sentinel.
        for (std::size_t e = 0; e < c.size(); ++e) c[e] = sentinel;
        kernel.fn(kc, a.data(), b.data(), c.data(), nr, false);
        for (index_t i = 0; i < mr && report.ok(); ++i) {
            for (index_t j = 0; j < nr; ++j) {
                const T want = static_cast<T>(
                    expected[static_cast<std::size_t>(i * nr + j)]);
                const T got = c[static_cast<std::size_t>(i * nr + j)];
                if (got != want) {
                    std::ostringstream msg;
                    msg << "kernel '" << ir.kernel << "' binary disagrees"
                        << " with its IR at C(" << i << "," << j
                        << ") kc=" << kc << " (overwrite): binary " << got
                        << ", symbolic " << want;
                    add_issue(report, "KIR_BINARY", msg.str());
                    break;
                }
            }
        }
        if (!report.ok()) return;

        // Accumulate path: a distinct preload must survive the update.
        for (index_t i = 0; i < mr; ++i)
            for (index_t j = 0; j < nr; ++j)
                c[static_cast<std::size_t>(i * nr + j)] =
                    static_cast<T>(i * nr + j + 1);
        kernel.fn(kc, a.data(), b.data(), c.data(), nr, true);
        for (index_t i = 0; i < mr && report.ok(); ++i) {
            for (index_t j = 0; j < nr; ++j) {
                const T want = static_cast<T>(
                    static_cast<double>(i * nr + j + 1)
                    + expected[static_cast<std::size_t>(i * nr + j)]);
                const T got = c[static_cast<std::size_t>(i * nr + j)];
                if (got != want) {
                    std::ostringstream msg;
                    msg << "kernel '" << ir.kernel << "' binary disagrees"
                        << " with its IR at C(" << i << "," << j
                        << ") kc=" << kc << " (accumulate): binary " << got
                        << ", symbolic " << want;
                    add_issue(report, "KIR_BINARY", msg.str());
                    break;
                }
            }
        }
        if (!report.ok()) return;

        // Edge-tile path: an (mr-1) x (nr-1) tile through the scratch
        // wrapper must write exactly the live region.
        if (kc == 3 && mr > 1 && nr > 1) {
            const index_t m = mr - 1;
            const index_t n = nr - 1;
            AlignedBuffer<T> scratch(static_cast<std::size_t>(mr * nr));
            for (std::size_t e = 0; e < c.size(); ++e) c[e] = sentinel;
            run_microkernel_tile(kernel, kc, a.data(), b.data(), c.data(),
                                 nr, m, n, /*accumulate=*/false,
                                 scratch.data());
            for (index_t i = 0; i < mr && report.ok(); ++i) {
                for (index_t j = 0; j < nr; ++j) {
                    const bool live = i < m && j < n;
                    const T want = live
                        ? static_cast<T>(
                              expected[static_cast<std::size_t>(i * nr + j)])
                        : sentinel;
                    const T got = c[static_cast<std::size_t>(i * nr + j)];
                    if (got != want) {
                        std::ostringstream msg;
                        msg << "kernel '" << ir.kernel
                            << "' edge tile (m=" << m << ", n=" << n
                            << ") " << (live ? "disagrees with the IR"
                                             : "wrote outside the live"
                                               " region")
                            << " at C(" << i << "," << j << "): binary "
                            << got << ", symbolic " << want;
                        add_issue(report, "KIR_BINARY", msg.str());
                        break;
                    }
                }
            }
            if (!report.ok()) return;
        }
    }
}

// int8 family: reduction index r = 4q + d. The saturation-edge round
// drives the vpmaddubsw pairs to their extreme exact values (a = 127,
// |b| <= 128: |pair| <= 32512 < 2^15, so the int16 stage never clips).

std::uint8_t i8_a_val(index_t i, index_t r, bool edge)
{
    if (edge) return 127;
    return static_cast<std::uint8_t>((1 + 5 * i + 11 * r) % 128);
}

std::int8_t i8_b_val(index_t r, index_t j, bool edge)
{
    if (edge) return (r + j) % 2 == 0 ? static_cast<std::int8_t>(-128)
                                      : static_cast<std::int8_t>(127);
    return static_cast<std::int8_t>(
        static_cast<int>((2 + 7 * j + 13 * r) % 255) - 127);
}

std::int64_t ir_expected_i8(const KernelIr& ir, const KirStore& s, int lane,
                            index_t kq, bool edge)
{
    std::int64_t sum = 0;
    for (index_t q = 0; q < kq; ++q) {
        for (const KirFma& f : ir.fmas) {
            if (f.acc != s.acc) continue;
            for (index_t d = 0; d < static_cast<index_t>(ir.quad); ++d) {
                const index_t r = q * ir.quad + d;
                sum += static_cast<std::int64_t>(i8_a_val(f.a_row, r, edge))
                    * i8_b_val(r, f.b_col + lane, edge);
            }
        }
    }
    return sum;
}

void fingerprint_i8(const KernelIr& ir, const Int8MicroKernel& kernel,
                    KernelReport& report)
{
    const index_t mr = ir.mr;
    const index_t nr = ir.nr;
    const std::int32_t sentinel = -987654;
    struct Round {
        index_t kq;
        bool edge_values;
    };
    for (const Round round : {Round{1, false}, Round{2, true},
                              Round{5, false}}) {
        const index_t kq = round.kq;
        const bool edge = round.edge_values;
        AlignedBuffer<std::uint8_t> a(static_cast<std::size_t>(mr * kq * 4));
        AlignedBuffer<std::int8_t> b(static_cast<std::size_t>(nr * kq * 4));
        for (index_t q = 0; q < kq; ++q) {
            for (index_t i = 0; i < mr; ++i)
                for (index_t d = 0; d < 4; ++d)
                    a[static_cast<std::size_t>(q * mr * 4 + i * 4 + d)] =
                        i8_a_val(i, q * 4 + d, edge);
            for (index_t j = 0; j < nr; ++j)
                for (index_t d = 0; d < 4; ++d)
                    b[static_cast<std::size_t>(q * nr * 4 + j * 4 + d)] =
                        i8_b_val(q * 4 + d, j, edge);
        }
        std::vector<std::int64_t> expected(
            static_cast<std::size_t>(mr * nr), 0);
        for (const KirStore& s : ir.stores) {
            for (int l = 0; l < ir.lanes; ++l) {
                expected[static_cast<std::size_t>(s.row) * nr
                         + static_cast<std::size_t>(s.col + l)] =
                    ir_expected_i8(ir, s, l, kq, edge);
            }
        }

        AlignedBuffer<std::int32_t> c(static_cast<std::size_t>(mr * nr));
        for (std::size_t e = 0; e < c.size(); ++e) c[e] = sentinel;
        kernel.fn(kq, a.data(), b.data(), c.data(), nr, false);
        for (index_t i = 0; i < mr && report.ok(); ++i) {
            for (index_t j = 0; j < nr; ++j) {
                const std::int64_t want =
                    expected[static_cast<std::size_t>(i * nr + j)];
                const std::int32_t got =
                    c[static_cast<std::size_t>(i * nr + j)];
                if (got != want) {
                    std::ostringstream msg;
                    msg << "kernel '" << ir.kernel << "' binary disagrees"
                        << " with its IR at C(" << i << "," << j
                        << ") kq=" << kq << (edge ? " (saturation edge)"
                                                  : "")
                        << ": binary " << got << ", symbolic " << want;
                    add_issue(report, "KIR_BINARY", msg.str());
                    break;
                }
            }
        }
        if (!report.ok()) return;

        // Accumulate path.
        for (index_t i = 0; i < mr; ++i)
            for (index_t j = 0; j < nr; ++j)
                c[static_cast<std::size_t>(i * nr + j)] =
                    static_cast<std::int32_t>(i * nr + j + 1);
        kernel.fn(kq, a.data(), b.data(), c.data(), nr, true);
        for (index_t i = 0; i < mr && report.ok(); ++i) {
            for (index_t j = 0; j < nr; ++j) {
                const std::int64_t want = i * nr + j + 1
                    + expected[static_cast<std::size_t>(i * nr + j)];
                const std::int32_t got =
                    c[static_cast<std::size_t>(i * nr + j)];
                if (got != want) {
                    std::ostringstream msg;
                    msg << "kernel '" << ir.kernel << "' binary disagrees"
                        << " with its IR at C(" << i << "," << j
                        << ") kq=" << kq << " (accumulate): binary " << got
                        << ", symbolic " << want;
                    add_issue(report, "KIR_BINARY", msg.str());
                    break;
                }
            }
        }
        if (!report.ok()) return;

        // Edge-tile path through the scratch wrapper.
        if (kq == 2 && mr > 1 && nr > 1) {
            const index_t m = mr - 1;
            const index_t n = nr - 1;
            AlignedBuffer<std::int32_t> scratch(
                static_cast<std::size_t>(mr * nr));
            for (std::size_t e = 0; e < c.size(); ++e) c[e] = sentinel;
            run_int8_tile(kernel, kq, a.data(), b.data(), c.data(), nr, m,
                          n, /*accumulate=*/false, scratch.data());
            for (index_t i = 0; i < mr && report.ok(); ++i) {
                for (index_t j = 0; j < nr; ++j) {
                    const bool live = i < m && j < n;
                    const std::int64_t want = live
                        ? expected[static_cast<std::size_t>(i * nr + j)]
                        : sentinel;
                    const std::int32_t got =
                        c[static_cast<std::size_t>(i * nr + j)];
                    if (got != want) {
                        std::ostringstream msg;
                        msg << "kernel '" << ir.kernel
                            << "' edge tile (m=" << m << ", n=" << n
                            << ") " << (live ? "disagrees with the IR"
                                             : "wrote outside the live"
                                               " region")
                            << " at C(" << i << "," << j << "): binary "
                            << got << ", symbolic " << want;
                        add_issue(report, "KIR_BINARY", msg.str());
                        break;
                    }
                }
            }
        }
    }
}

}  // namespace

bool KernelReport::has(const std::string& code) const
{
    for (const KernelIssue& issue : issues) {
        if (issue.code == code) return true;
    }
    return false;
}

std::string KernelReport::codes() const
{
    std::string out;
    for (const KernelIssue& issue : issues) {
        if (!out.empty()) out += ",";
        if (out.find(issue.code) == std::string::npos) out += issue.code;
    }
    return out;
}

KernelReport verify_kernel_ir(const KernelIr& ir)
{
    KernelReport report;
    report.kernel = ir.kernel;
    report.family = ir.family;
    report.isa = ir.isa;
    report.mr = ir.mr;
    report.nr = ir.nr;
    report.regs_used = ir.regs_used();
    report.reg_budget = ir.reg_budget;
    report.ops_per_cycle = model::kernel_peak_row(ir).ops_per_cycle;
    if (!check_malformed(ir, report)) return report;
    check_cover(ir, report);
    check_acc(ir, report);
    check_spill(ir, report);
    check_throughput(ir, report);
    return report;
}

KernelReport check_kernel(const KernelIr& ir)
{
    KernelReport report = verify_kernel_ir(ir);

    // Registry binding: the IR must describe a kernel that actually
    // dispatches, with the geometry the registry declares.
    Isa reg_isa = Isa::kScalar;
    index_t reg_mr = 0;
    index_t reg_nr = 0;
    bool found = false;
    const MicroKernel* f32 = nullptr;
    const MicroKernelD* f64 = nullptr;
    const Int8MicroKernel* i8 = nullptr;
    if (ir.family == "f32") {
        for (const MicroKernel& k : all_microkernels_of<float>()) {
            if (ir.kernel == k.name) {
                f32 = &k;
                reg_isa = k.isa;
                reg_mr = k.mr;
                reg_nr = k.nr;
                found = true;
            }
        }
    } else if (ir.family == "f64") {
        for (const MicroKernelD& k : all_microkernels_of<double>()) {
            if (ir.kernel == k.name) {
                f64 = &k;
                reg_isa = k.isa;
                reg_mr = k.mr;
                reg_nr = k.nr;
                found = true;
            }
        }
    } else if (ir.family == "i8") {
        for (const Int8MicroKernel& k : all_int8_microkernels()) {
            if (ir.kernel == k.name) {
                i8 = &k;
                reg_isa = k.isa;
                reg_mr = k.mr;
                reg_nr = k.nr;
                found = true;
            }
        }
    } else {
        add_issue(report, "KIR_MALFORMED",
                  "kernel '" + ir.kernel + "': unknown family '" + ir.family
                      + "' (expected f32|f64|i8)");
        return report;
    }
    if (!found) {
        add_issue(report, "KIR_MALFORMED",
                  "kernel '" + ir.kernel + "' (" + ir.family
                      + ") is not in the registry — the IR describes"
                        " nothing that dispatches");
        return report;
    }
    if (reg_isa != ir.isa || reg_mr != ir.mr || reg_nr != ir.nr) {
        add_issue(report, "KIR_MALFORMED",
                  "kernel '" + ir.kernel + "': IR geometry ("
                      + isa_name(ir.isa) + " " + std::to_string(ir.mr) + "x"
                      + std::to_string(ir.nr)
                      + ") disagrees with the registry ("
                      + isa_name(reg_isa) + " " + std::to_string(reg_mr)
                      + "x" + std::to_string(reg_nr) + ")");
        return report;
    }

    // Lane-fingerprint equivalence: only meaningful once the symbolic
    // pass is clean (a broken store map has no well-defined expectation),
    // and only runnable when the host can execute the kernel.
    if (!report.ok()) return report;
    const bool runnable = ir.family == "i8" ? int8_isa_supported(ir.isa)
                                            : isa_supported(ir.isa);
    if (!runnable) return report;
    report.fingerprinted = true;
    if (f32 != nullptr) fingerprint_float(ir, *f32, report);
    if (f64 != nullptr) fingerprint_float(ir, *f64, report);
    if (i8 != nullptr) fingerprint_i8(ir, *i8, report);
    return report;
}

const char* kir_mutation_name(KirMutation m)
{
    switch (m) {
        case KirMutation::kDropStore: return "drop-store";
        case KirMutation::kDupStore: return "dup-store";
        case KirMutation::kSkewBroadcast: return "skew-broadcast";
        case KirMutation::kInflateAcc: return "inflate-acc";
        case KirMutation::kLyingChain: return "lying-chain";
    }
    return "unknown";
}

std::string apply_kernel_mutation(KernelIr& ir, KirMutation m)
{
    switch (m) {
        case KirMutation::kDropStore:
            CAKE_CHECK_MSG(!ir.stores.empty(),
                           "kDropStore needs a non-empty store map");
            ir.stores.pop_back();
            return "KIR_COVER";
        case KirMutation::kDupStore:
            CAKE_CHECK_MSG(!ir.stores.empty(),
                           "kDupStore needs a non-empty store map");
            ir.stores.push_back(ir.stores.front());
            return "KIR_DUP";
        case KirMutation::kSkewBroadcast:
            CAKE_CHECK_MSG(!ir.fmas.empty() && ir.mr > 1,
                           "kSkewBroadcast needs an FMA and mr > 1");
            ir.fmas.front().a_row =
                (ir.fmas.front().a_row + 1) % static_cast<int>(ir.mr);
            return "KIR_ACC";
        case KirMutation::kInflateAcc:
            // The smallest inflation guaranteed to overrun the kernel's
            // own budget class, register file or stack tile.
            if (ir.acc_storage == KirAccStorage::kRegisters) {
                ir.acc_regs = std::max(
                    ir.acc_regs + 1,
                    ir.reg_budget - ir.a_regs - ir.b_regs - ir.tmp_regs
                        - ir.const_regs + 1);
            } else {
                ir.acc_regs =
                    kKirStackTileBudgetBytes / ir.acc_elem_bytes() + 1;
            }
            return "KIR_SPILL";
        case KirMutation::kLyingChain:
            ir.chain_updates += 1;
            return "KIR_THROUGHPUT";
    }
    throw Error("unknown kernel mutation");
}

}  // namespace kernelcheck
}  // namespace cake
