// Schedule IR: a declarative record of every tile operation a GEMM
// executor performs — its barrier-delimited phase, the buffer generations
// it reads and writes, and the DRAM traffic it models — extracted WITHOUT
// executing a single FMA.
//
// The extractors replay the exact decision data the runtime consumes:
//   * CAKE (serial + pipelined): build_schedule + build_block_plan
//     (src/core/block_plan.cpp), the same BlockPlan CakeGemmT's executors
//     iterate, including double-buffer slot assignment and the work-item
//     grouping constants (kPackAGroup/kPackBGroup/kRowGroup).
//   * GOTO: build_goto_passes (src/gotoblas/goto_gemm.cpp), the same pass
//     list GotoGemmT::multiply iterates.
// A property proven of this IR is therefore a property of the schedule
// the runtime executes, for ALL interleavings — not just the ones a
// fuzzer happened to run. The verifier lives in src/analysis/verify.hpp.
//
// The whole subsystem stays in namespace cake::schedir and is built only
// into test/analysis configurations (see src/analysis/CMakeLists.txt);
// the release nm gate proves no schedir symbol reaches release objects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/schedule.hpp"
#include "core/tiling.hpp"
#include "gotoblas/goto_gemm.hpp"

namespace cake {
namespace schedir {

/// Which executor's operation stream the IR describes.
enum class Exec { kSerial, kPipelined, kGoto };
const char* exec_name(Exec exec);

/// Storage a tile operation can touch. User surfaces are element-indexed
/// (rows x cols of the operand); pack panels are sliver-indexed (one row
/// per mr/nr sliver); the local accumulator is row x nr-sliver indexed,
/// matching the runtime racecheck granularity.
enum class BufKind { kUserA, kUserB, kUserC, kPackA, kPackB, kAccC };

struct Buffer {
    std::string name;
    BufKind kind = BufKind::kUserA;
    int slots = 1;  ///< double-buffer halves (pack panels when pipelined)
};

enum class Access { kRead, kWrite, kReadWrite };

/// One rectangular read/write set of an operation: a half-open rect
/// [r0, r1) x [c0, c1) of generation `gen` living in `slot` of `buffer`.
/// A generation is one lifetime of the slot's contents; writing a later
/// generation recycles the slot and destroys every earlier one.
struct TileSpan {
    int buffer = -1;  ///< index into ScheduleIR::buffers
    int slot = 0;
    index_t gen = 0;
    Access access = Access::kRead;
    index_t r0 = 0, r1 = 0, c0 = 0, c1 = 0;
    bool creates_gen = false;  ///< this write opens generation `gen`
    bool closes_gen = false;   ///< this read retires generation `gen`
};

/// What the operation does; one op is one runtime work item (a pack
/// sliver group, an mr compute band, a flush/zero row group) or one
/// statically assigned worker chunk.
enum class OpKind { kPackA, kPackB, kStreamB, kZeroC, kCompute, kFlush };
const char* op_kind_name(OpKind kind);

struct TileOp {
    OpKind kind = OpKind::kCompute;
    index_t phase = 0;  ///< barrier-delimited phase the op runs in
    index_t step = 0;   ///< schedule step it serves (diagnostics)
    BlockCoord block;   ///< CB-block (or GOTO pass) coordinates
    int worker = -1;    ///< static worker id; -1 = dynamically claimed
    index_t seq = 0;    ///< program order within (phase, worker >= 0)
    std::uint64_t dram_read_bytes = 0;   ///< modelled external reads
    std::uint64_t dram_write_bytes = 0;  ///< modelled external writes
    std::vector<TileSpan> spans;
};

/// The extracted schedule of one multiply. Two operations are ordered iff
/// an intact barrier boundary lies between their phases, or they share a
/// static worker inside one phase (seq order). Everything else is
/// concurrent — exactly the executor's synchronisation structure.
struct ScheduleIR {
    Exec exec = Exec::kPipelined;
    ScheduleKind schedule = ScheduleKind::kKFirstSerpentine;
    GemmShape shape;
    CbBlockParams params;   ///< CAKE tiling (default-initialised for GOTO)
    GotoBlocking blocking;  ///< GOTO blocking (default for CAKE)
    int p = 0;              ///< worker count
    index_t mb = 0, nb = 0, kb = 0;  ///< CB-block grid (CAKE)
    index_t elem_bytes = 4;
    bool n_outermost = true;
    bool use_prepacked = false;
    bool beta_nonzero = false;
    index_t expected_accums = 0;  ///< accumulations per user-C element
    index_t num_phases = 0;
    std::vector<Buffer> buffers;
    std::vector<TileOp> ops;
    /// barrier_intact[i] guards the boundary between phase i and i + 1.
    /// Extraction emits every boundary intact; mutations sever them.
    std::vector<char> barrier_intact;
    std::vector<std::string> barrier_label;
    std::vector<BlockCoord> order;  ///< CAKE block order (empty for GOTO)
};

/// Extract the IR of a CAKE multiply: the serial executor's
/// fork-join-per-phase stream, or the pipelined executor's persistent-team
/// stream (pipeline fill, flush/zero column turnovers, pack(t+1)+compute(t)
/// main phases, final drain) with double-buffered pack slots.
ScheduleIR extract_cake_ir(const GemmShape& shape,
                           const CbBlockParams& params, ScheduleKind kind,
                           Exec exec, bool use_prepacked = false,
                           bool beta_nonzero = false);

/// Extract the IR of a GOTO multiply: one packB + one compute phase per
/// (jc, pc) pass, each worker's ic blocks in program order. `elem_bytes`
/// scales the modelled traffic and is recorded in the IR's dtype fields
/// (both ir.elem_bytes and ir.params.elem_bytes) so width-dependent
/// passes — cake_verify --numerics in particular — see one consistent
/// descriptor for every executor.
ScheduleIR extract_goto_ir(const GemmShape& shape,
                           const GotoBlocking& blocking, int p, index_t mr,
                           index_t nr, bool accumulate = false,
                           index_t elem_bytes = 4);

/// Surface-level external traffic summed over the IR's operations,
/// decomposed the way the runtime stats and src/memsim decompose it.
struct IoTotals {
    std::uint64_t a_read = 0;         ///< user-A fetches (packing)
    std::uint64_t b_read = 0;         ///< user-B fetches (pack or stream)
    std::uint64_t c_write = 0;        ///< flush writebacks
    std::uint64_t c_rmw_read = 0;     ///< flush read-modify-write reads
    std::uint64_t c_reload_read = 0;  ///< spilled-partial reloads (CAKE)

    [[nodiscard]] std::uint64_t reads() const
    {
        return a_read + b_read + c_rmw_read + c_reload_read;
    }
    [[nodiscard]] std::uint64_t writes() const { return c_write; }
};
IoTotals io_totals(const ScheduleIR& ir);

/// Deterministic IR corruptions, each violating exactly one obligation
/// the verifier proves. apply_mutation returns the diagnostic code
/// verify_schedule_ir MUST report for the corrupted IR (and would never
/// report for the clean one).
enum class Mutation {
    kDropOp,            ///< delete one compute op -> IR_COVER (lost update)
    kDupOp,             ///< duplicate one compute op -> IR_COVER
    kReorderAccum,      ///< move an accumulation past its flush -> IR_ORDER
    kSeverZeroBarrier,  ///< zero->compute boundary -> IR_RACE_WW
    kSeverFlushBarrier, ///< compute->flush boundary -> IR_RACE_RW
    kShrinkGeneration,  ///< collapse double buffers to one slot -> IR_LIFETIME
    kDropFlush,         ///< delete a flush op -> IR_COVER
};
const char* mutation_name(Mutation m);
constexpr int kMutationCount = 7;

/// Corrupt `ir` in place; returns the diagnostic code the verifier must
/// now emit. Throws cake::Error if the IR has no site for this mutation
/// (e.g. kSeverZeroBarrier on an IR with a single column).
std::string apply_mutation(ScheduleIR& ir, Mutation m);

}  // namespace schedir
}  // namespace cake
