#include "analysis/racecheck.hpp"

#if CAKE_RACECHECK_ENABLED

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/checked.hpp"

namespace cake {
namespace racecheck {

namespace {

// The engine is deliberately simple: one global mutex serialises every
// hook, and clocks are plain vectors indexed by a process-lifetime thread
// uid. A racecheck build is a correctness instrument, not a fast path —
// what matters is that the happens-before relation it maintains is exactly
// the one the executor's fork/join/barrier protocol promises, so a clean
// run is a proof for the schedule that actually executed.

using ClockVec = std::vector<std::uint64_t>;

void join_into(ClockVec& dst, const ClockVec& src)
{
    if (dst.size() < src.size()) dst.resize(src.size(), 0);
    for (std::size_t i = 0; i < src.size(); ++i) {
        dst[i] = std::max(dst[i], src[i]);
    }
}

/// Per-OS-thread logical clock plus the team tid it currently runs as.
struct ThreadState {
    int uid = -1;
    int team_tid = -1;
    ClockVec clock;

    [[nodiscard]] std::uint64_t now() const
    {
        return clock[static_cast<std::size_t>(uid)];
    }
    void tick() { ++clock[static_cast<std::size_t>(uid)]; }
};

/// Fork/join clocks of one ThreadPool dispatch, keyed by pool address.
struct PoolState {
    ClockVec fork_clock;  ///< caller's clock at dispatch
    ClockVec join_clock;  ///< join of every member's clock at exit
};

/// One SpinBarrier's gather/release clocks, keyed by barrier address.
/// Arrivals of generation g merge into `gather`; when the last participant
/// has arrived the gather becomes released[g], which departers of g merge
/// back into their own clocks. The map (instead of a single slot) tolerates
/// a slow departer still draining generation g while its teammates already
/// arrive at g+1.
struct BarrierState {
    ClockVec gather;
    int arrivals = 0;
    std::map<long, ClockVec> released;
};

struct ReaderEntry {
    int uid = -1;
    int team_tid = -1;
    std::uint64_t clk = 0;
    AccessSite site;
};

/// FastTrack-style shadow cell: the last write epoch plus the set of reads
/// since that write (one entry per thread).
struct TileShadow {
    int w_uid = -1;
    int w_team_tid = -1;
    std::uint64_t w_clk = 0;
    AccessSite w_site;
    std::vector<ReaderEntry> readers;
};

struct Region {
    std::string name;
    index_t tiles = 0;
    index_t tiles_per_row = 0;
    bool active = false;
    std::vector<TileShadow> shadow;
};

struct Global {
    std::mutex mu;
    std::deque<ThreadState> threads;  // deque: stable addresses for TLS
    std::unordered_map<const void*, PoolState> pools;
    std::unordered_map<const void*, BarrierState> barriers;
    std::deque<Region> regions;
    std::uint64_t races = 0;
    unsigned severed_mask = 0;
};

Global& global()
{
    static Global g;
    return g;
}

/// Calling thread's state; assigns a fresh uid on first use.
/// global().mu must be held.
ThreadState& self(Global& g)
{
    thread_local ThreadState* ts = nullptr;
    if (ts == nullptr) {
        g.threads.emplace_back();
        ts = &g.threads.back();
        ts->uid = static_cast<int>(g.threads.size()) - 1;
        ts->clock.assign(static_cast<std::size_t>(ts->uid) + 1, 0);
        ts->clock[static_cast<std::size_t>(ts->uid)] = 1;
    }
    return *ts;
}

bool severed(const Global& g, Edge edge)
{
    return (g.severed_mask & (1u << static_cast<unsigned>(edge))) != 0;
}

/// True iff the event (uid, clk) happened before thread t's current point.
bool ordered(int uid, std::uint64_t clk, const ThreadState& t)
{
    if (uid < 0 || clk == 0) return true;  // no prior event
    const auto u = static_cast<std::size_t>(uid);
    return u < t.clock.size() && t.clock[u] >= clk;
}

const char* phase_name(Phase phase)
{
    switch (phase) {
        case Phase::kPack: return "pack";
        case Phase::kCompute: return "compute";
        case Phase::kFlush: return "flush";
        case Phase::kNone: break;
    }
    return "?";
}

const char* kind_name(AccessKind kind)
{
    return kind == AccessKind::kWrite ? "write" : "read";
}

void describe_thread(std::ostream& os, int uid, int team_tid)
{
    if (team_tid >= 0) {
        os << "worker " << team_tid << " (thread#" << uid << ")";
    } else {
        os << "thread#" << uid;
    }
}

void describe_site(std::ostream& os, const AccessSite& site)
{
    os << "step " << site.step << ", block (" << site.bm << ", " << site.bn
       << ", " << site.bk << "), phase " << phase_name(site.phase);
}

/// Build the coded diagnostic and trap. Must be entered with the global
/// lock HELD; releases it before calling checked::fail so a throwing test
/// trap handler cannot leave the engine mutex locked.
[[noreturn]] void report_race(std::unique_lock<std::mutex>& lock, Global& g,
                              const char* code, const Region& region,
                              index_t tile, AccessKind cur_kind,
                              const AccessSite& cur_site,
                              const ThreadState& cur_thread,
                              const char* prior_kind,
                              const AccessSite& prior_site, int prior_uid,
                              int prior_team_tid)
{
    ++g.races;
    std::ostringstream os;
    os << code << ": region '" << region.name << "' tile " << tile;
    if (region.tiles_per_row > 0) {
        os << " (row " << tile / region.tiles_per_row << ", col-sliver "
           << tile % region.tiles_per_row << ")";
    }
    os << ": " << kind_name(cur_kind) << " by ";
    describe_thread(os, cur_thread.uid, cur_thread.team_tid);
    os << " at [";
    describe_site(os, cur_site);
    os << "] has no happens-before edge from prior " << prior_kind << " by ";
    describe_thread(os, prior_uid, prior_team_tid);
    os << " at [";
    describe_site(os, prior_site);
    os << "]";
    const std::string message = os.str();
    lock.unlock();
    checked::fail("racecheck", message);
}

void access_one(std::unique_lock<std::mutex>& lock, Global& g, Region& region,
                index_t tile, AccessKind kind, const AccessSite& site)
{
    ThreadState& t = self(g);
    if (tile < 0 || tile >= region.tiles) {
        ++g.races;
        std::ostringstream os;
        os << "RC_TILE_RANGE: region '" << region.name << "' tile " << tile
           << " outside [0, " << region.tiles << ") at [";
        describe_site(os, site);
        os << "] — executor annotation bug";
        const std::string message = os.str();
        lock.unlock();
        checked::fail("racecheck", message);
    }
    TileShadow& s = region.shadow[static_cast<std::size_t>(tile)];
    if (kind == AccessKind::kRead) {
        if (!ordered(s.w_uid, s.w_clk, t)) {
            report_race(lock, g, "RC_RACE_RW", region, tile, kind, site, t,
                        "write", s.w_site, s.w_uid, s.w_team_tid);
        }
        for (ReaderEntry& r : s.readers) {
            if (r.uid == t.uid) {
                r.clk = t.now();
                r.team_tid = t.team_tid;
                r.site = site;
                return;
            }
        }
        s.readers.push_back({t.uid, t.team_tid, t.now(), site});
        return;
    }
    if (!ordered(s.w_uid, s.w_clk, t)) {
        report_race(lock, g, "RC_RACE_WW", region, tile, kind, site, t,
                    "write", s.w_site, s.w_uid, s.w_team_tid);
    }
    for (const ReaderEntry& r : s.readers) {
        if (r.uid != t.uid && !ordered(r.uid, r.clk, t)) {
            report_race(lock, g, "RC_RACE_WR", region, tile, kind, site, t,
                        "read", r.site, r.uid, r.team_tid);
        }
    }
    s.readers.clear();
    s.w_uid = t.uid;
    s.w_team_tid = t.team_tid;
    s.w_clk = t.now();
    s.w_site = site;
}

/// Live region for a handle, or nullptr for id 0 / retired regions.
Region* region_for(Global& g, RegionId id)
{
    if (id == 0 || id > g.regions.size()) return nullptr;
    Region& r = g.regions[static_cast<std::size_t>(id) - 1];
    return r.active ? &r : nullptr;
}

}  // namespace

void on_pool_create(const void* pool)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    // A pool constructed at a recycled address must not inherit the old
    // pool's fork/join clocks (they would fabricate HB edges).
    g.pools.erase(pool);
}

void on_fork(const void* pool)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    ThreadState& t = self(g);
    PoolState& ps = g.pools[pool];
    ps.fork_clock = t.clock;
    ps.join_clock.clear();
    t.tick();
}

void on_worker_enter(const void* pool, int tid)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    ThreadState& t = self(g);
    if (!severed(g, Edge::kFork)) {
        auto it = g.pools.find(pool);
        if (it != g.pools.end()) join_into(t.clock, it->second.fork_clock);
    }
    t.team_tid = tid;
    t.tick();
}

void on_worker_exit(const void* pool)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    ThreadState& t = self(g);
    join_into(g.pools[pool].join_clock, t.clock);
    t.team_tid = -1;
    t.tick();
}

void on_join(const void* pool)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    ThreadState& t = self(g);
    if (!severed(g, Edge::kJoin)) {
        auto it = g.pools.find(pool);
        if (it != g.pools.end()) join_into(t.clock, it->second.join_clock);
    }
    t.tick();
}

void on_barrier_create(const void* barrier)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    // Barriers live on run_team stacks; drop any state a previous barrier
    // left behind at the same address.
    g.barriers.erase(barrier);
}

void on_barrier_arrive(const void* barrier, long generation, int participants)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    ThreadState& t = self(g);
    BarrierState& b = g.barriers[barrier];
    join_into(b.gather, t.clock);
    if (++b.arrivals >= participants) {
        b.released[generation] = std::move(b.gather);
        b.gather.clear();
        b.arrivals = 0;
        // A departer more than a few generations behind is impossible with
        // a correct barrier; prune so long team loops stay O(1).
        while (b.released.size() > 8) b.released.erase(b.released.begin());
    }
    t.tick();
}

void on_barrier_depart(const void* barrier, long generation)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    ThreadState& t = self(g);
    if (!severed(g, Edge::kBarrier)) {
        auto bit = g.barriers.find(barrier);
        if (bit != g.barriers.end()) {
            auto rit = bit->second.released.find(generation);
            if (rit != bit->second.released.end()) {
                join_into(t.clock, rit->second);
            }
        }
    }
    t.tick();
}

RegionId region_register(const char* name, index_t tiles,
                         index_t tiles_per_row)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.regions.emplace_back();
    Region& r = g.regions.back();
    r.name = name;
    r.tiles = tiles;
    r.tiles_per_row = tiles_per_row;
    r.active = true;
    r.shadow.assign(static_cast<std::size_t>(std::max<index_t>(tiles, 0)),
                    TileShadow{});
    return static_cast<RegionId>(g.regions.size());
}

void region_retire(RegionId id)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    if (Region* r = region_for(g, id)) {
        r->active = false;
        r->shadow.clear();
        r->shadow.shrink_to_fit();
    }
}

void region_access(RegionId id, index_t tile, AccessKind kind,
                   const AccessSite& site)
{
    Global& g = global();
    std::unique_lock<std::mutex> lock(g.mu);
    if (Region* r = region_for(g, id)) {
        access_one(lock, g, *r, tile, kind, site);
    }
}

void region_access_range(RegionId id, index_t begin, index_t end,
                         AccessKind kind, const AccessSite& site)
{
    Global& g = global();
    std::unique_lock<std::mutex> lock(g.mu);
    if (Region* r = region_for(g, id)) {
        for (index_t tile = begin; tile < end; ++tile) {
            access_one(lock, g, *r, tile, kind, site);
        }
    }
}

void region_access_block(RegionId id, index_t row_begin, index_t row_end,
                         index_t col_begin, index_t col_end, AccessKind kind,
                         const AccessSite& site)
{
    Global& g = global();
    std::unique_lock<std::mutex> lock(g.mu);
    Region* r = region_for(g, id);
    if (r == nullptr) return;
    for (index_t row = row_begin; row < row_end; ++row) {
        for (index_t col = col_begin; col < col_end; ++col) {
            access_one(lock, g, *r, row * r->tiles_per_row + col, kind,
                       site);
        }
    }
}

int current_tid()
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    return self(g).team_tid;
}

std::uint64_t race_count()
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    return g.races;
}

void test_sever_edge(Edge edge)
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.severed_mask |= 1u << static_cast<unsigned>(edge);
}

void test_restore_edges()
{
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.severed_mask = 0;
}

}  // namespace racecheck
}  // namespace cake

#endif  // CAKE_RACECHECK_ENABLED
