// Static kernel checker: proves every registered micro-kernel's IR
// (kernel/kernel_ir.hpp) correct, spill-free and honestly modelled — the
// register-tile layer's counterpart of the schedule-IR verifier. The
// schedules, plans, numerics and locality of this repro are all
// symbolically verified; this pass closes the last trusted-binary gap at
// the bottom of the stack (the paper's Figs 5e/6e kernels), so a new
// kernel (ROADMAP item 2: f16/bf16) must prove itself before the registry
// dispatches it.
//
// Obligations, each with a coded diagnostic:
//
//   KIR_MALFORMED  structural sanity — geometry positive, every FMA /
//                  store index inside its declared range, non-empty
//                  dataflow. (check_kernel additionally binds the IR to
//                  its registry entry: unknown names or geometry drift
//                  are malformed too.)
//   KIR_COVER      the store map covers every element of the mr x nr
//                  tile — no C lane is left unwritten.
//   KIR_DUP        no element is stored twice (a duplicated store would
//                  double-write, and under accumulate double-add).
//   KIR_ACC        symbolic dataflow — for each store, the accumulator's
//                  per-step term multiset must be exactly
//                  { a(row, p) · b(p, col + l) } for lane l: exactly one
//                  FMA with the matching broadcast row and B slice, no
//                  foreign terms, and accumulators shared by conflicting
//                  stores are rejected. With the k-loop summation this is
//                  the proof that every C lane receives exactly
//                  Σ_p a(i,p)·b(p,j).
//   KIR_SPILL      register budget — accumulators + A broadcasts + B
//                  stream + temporaries/constants fit the architectural
//                  file (16 ymm / 32 zmm); scalar kernels' stack tile
//                  fits the L1-trivial budget. Statically spill-free.
//   KIR_THROUGHPUT the declared dependency-chain depth equals the one
//                  re-derived from the FMA list, so the static peak bound
//                  (model/kernel_peak.hpp) divides by the true depth.
//
// The IR cannot lie: check_kernel runs the registered kernel *binary* on
// exactly-representable unique-value panels and compares, lane by lane,
// against the IR's symbolically evaluated result — overwrite and
// accumulate paths, plus the edge-tile path through run_microkernel_tile /
// run_int8_tile (KIR_BINARY on any mismatch). This is the same design as
// schedir's cross_check_memsim: the symbolic object is only trusted
// because it is pinned to the executable artifact.
//
// Analysis-only: compiled into cake_schedir (tests/tools builds); the
// release nm gate proves no cake::kernelcheck symbol reaches release
// objects. The release-side admission gate (kernel_gate_ok) and the peak
// arithmetic (model/kernel_peak) stay independently in release code;
// this pass exists to prove them honest.
#pragma once

#include <string>
#include <vector>

#include "kernel/kernel_ir.hpp"

namespace cake {
namespace kernelcheck {

struct KernelIssue {
    std::string code;     ///< KIR_* (see header comment)
    std::string message;  ///< names the kernel, lane and counts
};

struct KernelReport {
    std::string kernel;
    std::string family;
    Isa isa = Isa::kScalar;
    index_t mr = 0;
    index_t nr = 0;
    int regs_used = 0;
    int reg_budget = 0;
    int derived_chain = 0;          ///< chain depth re-derived from fmas
    double ops_per_cycle = 0;       ///< static peak (GFLOP/s per GHz)
    bool fingerprinted = false;     ///< binary cross-check ran (host ISA)
    std::vector<KernelIssue> issues;

    [[nodiscard]] bool ok() const { return issues.empty(); }
    [[nodiscard]] bool has(const std::string& code) const;
    [[nodiscard]] std::string codes() const;  ///< "KIR_A,KIR_B" for messages
};

/// Symbolic verification of one IR in isolation (no registry binding, no
/// binary run): KIR_MALFORMED / KIR_COVER / KIR_DUP / KIR_ACC /
/// KIR_SPILL / KIR_THROUGHPUT.
KernelReport verify_kernel_ir(const KernelIr& ir);

/// Full check of one registered kernel: verify_kernel_ir, the registry
/// binding (name resolves, geometry/ISA agree — KIR_MALFORMED), and —
/// when the executing CPU supports ir.isa — the lane-fingerprint
/// equivalence run against the kernel binary (KIR_BINARY on mismatch;
/// `fingerprinted` records whether it ran).
KernelReport check_kernel(const KernelIr& ir);

/// Deterministic IR corruptions, each caught by its specific code and
/// nothing else (the mutation gate asserts isolation).
enum class KirMutation {
    kDropStore,      ///< remove the last C store          -> KIR_COVER
    kDupStore,       ///< duplicate the first C store      -> KIR_DUP
    kSkewBroadcast,  ///< wrong A row in the first FMA     -> KIR_ACC
    kInflateAcc,     ///< accumulators past the budget     -> KIR_SPILL
    kLyingChain,     ///< under-declared chain depth       -> KIR_THROUGHPUT
};
const char* kir_mutation_name(KirMutation m);
constexpr int kKirMutationCount = 5;

/// Corrupt `ir` in place; returns the code verify_kernel_ir MUST now emit
/// (and never emits for the clean IR). Throws cake::Error when the IR has
/// no site for the mutation (e.g. kDropStore on an empty store map).
std::string apply_kernel_mutation(KernelIr& ir, KirMutation m);

}  // namespace kernelcheck
}  // namespace cake
