// Symbolic verifier for the schedule IR (src/analysis/schedir.hpp).
//
// verify_schedule_ir proves, by static analysis of the operation list —
// no arithmetic, no execution, valid for every interleaving the barrier
// structure permits — the properties the paper claims of the CAKE
// schedule, reporting violations with coded diagnostics in the
// AuditIssue style (src/core/audit.hpp):
//
//   IR_MALFORMED   structural sanity: span indices in range, phases
//                  monotone, barrier arrays sized to the phase count
//   IR_COVER       exact cover — every user-C element receives exactly
//                  `expected_accums` accumulations, delivered through
//                  totally ordered flush chains (no lost or duplicated
//                  update anywhere in the schedule)
//   IR_ORDER       generation discipline — creating writes strictly
//                  precede every other access of their generation, and
//                  closing reads strictly follow every write
//   IR_RACE_WW     two unordered ops write an overlapping rect of the
//                  same buffer generation
//   IR_RACE_RW     an op reads what an unordered op writes
//   IR_LIFETIME    double-buffer safety — some access to a generation is
//                  not ordered before the write that recycles its slot
//   IR_IO_MODEL    the IR's summed surface loads/stores disagree with the
//                  paper's analytic traffic model (Eq. 2 / §4.2-§4.3)
//                  re-derived independently from the block order
//   IR_IO_CONSTBW  an interior step of a fully-sharing schedule
//                  (serpentine or Hilbert) fetches a different byte count
//                  than the constant (m_blk + n_blk) * k_blk * elem the
//                  constant-bandwidth claim promises
//   IR_IO_MEMSIM   the IR totals disagree with the src/memsim address
//                  stream for the same plan (cross_check_memsim)
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/schedir.hpp"

namespace cake {
namespace schedir {

/// One violated obligation: stable machine-greppable code + a precise
/// human diagnostic naming the ops, buffers and byte counts involved.
struct VerifyIssue {
    std::string code;
    std::string message;
};

struct VerifyReport {
    std::vector<VerifyIssue> issues;

    [[nodiscard]] bool ok() const { return issues.empty(); }
    [[nodiscard]] bool has(std::string_view code) const;
    /// All issue codes joined with ','; empty when ok. Handy for tests.
    [[nodiscard]] std::string codes() const;
};

/// Statically verify every obligation above except IR_IO_MEMSIM (which
/// needs the memory simulator and is split out so verification itself
/// stays pure). Stops adding issues per check after a few instances; a
/// corrupt IR yields its characteristic code, not thousands of echoes.
VerifyReport verify_schedule_ir(const ScheduleIR& ir);

/// Replay the same plan through src/memsim's address-stream generator
/// (trace_cake / trace_goto) with a counting sink, classify each access
/// by surface, and require exact byte agreement with io_totals(ir) for
/// a_read / b_read / c_write / c_rmw_read. Reload reads are excluded:
/// the trace generator recomputes spilled partials rather than reloading
/// them (documented asymmetry). The trace layer is dtype-width-aware
/// (scaled by ir.elem_bytes), so any element width cross-checks; only
/// prepacked or beta != 0 IRs report IR_MALFORMED.
VerifyReport cross_check_memsim(const ScheduleIR& ir);

}  // namespace schedir
}  // namespace cake
