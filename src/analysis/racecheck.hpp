// Happens-before race auditor for the CB-block executors.
//
// The pipelined executor's correctness rests on a hand-rolled handoff
// protocol: while block i is computed out of one half of the double-buffered
// pack panels, block i+1 is packed into the other half, and SpinBarrier
// crossings are the only thing keeping those accesses apart. TSan observes
// whichever interleavings the OS happens to schedule and reports violations
// as raw addresses; this subsystem instead *proves* the protocol for every
// executed schedule and reports violations in CAKE coordinates.
//
// Three pieces:
//
//   * a vector-clock happens-before engine. Hooks in ThreadPool (fork/join
//     edges around run/run_team) and SpinBarrier (arrive/depart edges per
//     generation) maintain one logical clock per OS thread, so "A happened
//     before B" is decidable for any two annotated events.
//   * a shadow-ownership map. Each multiply registers its shared surfaces
//     as *regions* divided into tiles: the four pack-buffer halves at
//     mr/nr-sliver granularity and the local C surface at row x nr-sliver
//     granularity (flush/zero row groups are not mr-aligned, so full mr x nr
//     C tiles would alias across legitimate item boundaries). Every pack,
//     compute, flush and zero work item declares its accesses; an access
//     pair on the same tile without a happens-before edge traps through
//     checked::fail() with a diagnostic naming the region, tile, schedule
//     step, CB-block coordinate, executor phase and both threads.
//   * test-only edge severing (test_sever_edge), which makes the engine
//     ignore one class of HB edge so tests can prove the auditor actually
//     catches the race each edge prevents.
//
// Build modes follow checked.hpp: -DCAKE_RACECHECK=ON defines
// CAKE_RACECHECK=1 and enables everything; otherwise every entry point
// below is a constexpr inline no-op and racecheck.cpp compiles to an empty
// translation unit, so release objects carry no racecheck symbol at all
// (enforced by the nm scan in .github/workflows/analysis.yml).
#pragma once

#include <cstdint>

#include "common/types.hpp"

#if defined(CAKE_RACECHECK) && CAKE_RACECHECK
#define CAKE_RACECHECK_ENABLED 1
#else
#define CAKE_RACECHECK_ENABLED 0
#endif

namespace cake {
namespace racecheck {

/// Executor phase an annotated access belongs to; part of the diagnostic.
enum class Phase : int { kNone = 0, kPack, kCompute, kFlush };

enum class AccessKind : int { kRead = 0, kWrite };

/// Happens-before edge classes the engine knows about. test_sever_edge()
/// disables one class so the self-validation tests can seed a race the
/// auditor must then report.
enum class Edge : int {
    kFork = 0,   ///< ThreadPool::run dispatch -> every team member
    kJoin,       ///< every team member -> ThreadPool::run return
    kBarrier,    ///< SpinBarrier arrivals of gen g -> departures of gen g
};

/// Where in the CB-block schedule an access happens. All fields are
/// diagnostic payload; -1 / kNone mean "not applicable".
struct AccessSite {
    index_t step = -1;            ///< schedule step (block sequence number)
    index_t bm = -1;              ///< CB-block grid coordinate (m, n, k)
    index_t bn = -1;
    index_t bk = -1;
    Phase phase = Phase::kNone;
};

/// Opaque region handle; 0 is "no region" and is ignored by every access.
using RegionId = std::uint32_t;

#if CAKE_RACECHECK_ENABLED

// --- thread-pool hooks (called from src/threading/thread_pool.cpp) ------
void on_pool_create(const void* pool);
void on_fork(const void* pool);
void on_worker_enter(const void* pool, int tid);
void on_worker_exit(const void* pool);
void on_join(const void* pool);

// --- barrier hooks (called from src/threading/barrier.cpp) --------------
void on_barrier_create(const void* barrier);
void on_barrier_arrive(const void* barrier, long generation,
                       int participants);
void on_barrier_depart(const void* barrier, long generation);

// --- shadow-ownership regions -------------------------------------------
/// Register a region of `tiles` shadow tiles. When `tiles_per_row` > 0 the
/// region is a 2-D grid (tiles / tiles_per_row rows) and diagnostics print
/// row/column tile coordinates.
RegionId region_register(const char* name, index_t tiles,
                         index_t tiles_per_row = 0);
/// Retire a region: its shadow state is dropped and later accesses are
/// ignored (the handle is dead).
void region_retire(RegionId id);

void region_access(RegionId id, index_t tile, AccessKind kind,
                   const AccessSite& site);
/// Declare one access to every tile in [begin, end).
void region_access_range(RegionId id, index_t begin, index_t end,
                         AccessKind kind, const AccessSite& site);
/// Declare one access to every tile of the 2-D sub-grid
/// rows [row_begin, row_end) x cols [col_begin, col_end) of a region
/// registered with tiles_per_row > 0.
void region_access_block(RegionId id, index_t row_begin, index_t row_end,
                         index_t col_begin, index_t col_end, AccessKind kind,
                         const AccessSite& site);

// --- introspection ------------------------------------------------------
/// Team tid the calling thread is currently running as (-1 outside a job).
int current_tid();
/// Races reported so far (monotonic across the process lifetime).
std::uint64_t race_count();

// --- test-only hooks ----------------------------------------------------
void test_sever_edge(Edge edge);
void test_restore_edges();

constexpr bool enabled() noexcept { return true; }

#else  // !CAKE_RACECHECK_ENABLED

// Release / unchecked builds: every hook is a constexpr no-op the
// optimiser deletes at the call site; none of the classes or state above
// exists, so no racecheck symbol can appear in release objects.

constexpr void on_pool_create(const void* /*pool*/) {}
constexpr void on_fork(const void* /*pool*/) {}
constexpr void on_worker_enter(const void* /*pool*/, int /*tid*/) {}
constexpr void on_worker_exit(const void* /*pool*/) {}
constexpr void on_join(const void* /*pool*/) {}

constexpr void on_barrier_create(const void* /*barrier*/) {}
constexpr void on_barrier_arrive(const void* /*barrier*/, long /*generation*/,
                                 int /*participants*/)
{
}
constexpr void on_barrier_depart(const void* /*barrier*/, long /*generation*/)
{
}

constexpr RegionId region_register(const char* /*name*/, index_t /*tiles*/,
                                   index_t /*tiles_per_row*/ = 0)
{
    return 0;
}
constexpr void region_retire(RegionId /*id*/) {}
constexpr void region_access(RegionId /*id*/, index_t /*tile*/,
                             AccessKind /*kind*/, const AccessSite& /*site*/)
{
}
constexpr void region_access_range(RegionId /*id*/, index_t /*begin*/,
                                   index_t /*end*/, AccessKind /*kind*/,
                                   const AccessSite& /*site*/)
{
}
constexpr void region_access_block(RegionId /*id*/, index_t /*row_begin*/,
                                   index_t /*row_end*/, index_t /*col_begin*/,
                                   index_t /*col_end*/, AccessKind /*kind*/,
                                   const AccessSite& /*site*/)
{
}

constexpr int current_tid() { return -1; }
constexpr std::uint64_t race_count() { return 0; }

constexpr void test_sever_edge(Edge /*edge*/) {}
constexpr void test_restore_edges() {}

constexpr bool enabled() noexcept { return false; }

#endif  // CAKE_RACECHECK_ENABLED

}  // namespace racecheck
}  // namespace cake
