#include "analysis/schedir.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/block_plan.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace schedir {

const char* exec_name(Exec exec)
{
    switch (exec) {
    case Exec::kSerial: return "serial";
    case Exec::kPipelined: return "pipelined";
    case Exec::kGoto: return "goto";
    }
    return "?";
}

const char* op_kind_name(OpKind kind)
{
    switch (kind) {
    case OpKind::kPackA: return "packA";
    case OpKind::kPackB: return "packB";
    case OpKind::kStreamB: return "streamB";
    case OpKind::kZeroC: return "zeroC";
    case OpKind::kCompute: return "compute";
    case OpKind::kFlush: return "flush";
    }
    return "?";
}

const char* mutation_name(Mutation m)
{
    switch (m) {
    case Mutation::kDropOp: return "drop-op";
    case Mutation::kDupOp: return "dup-op";
    case Mutation::kReorderAccum: return "reorder-accum";
    case Mutation::kSeverZeroBarrier: return "sever-zero-barrier";
    case Mutation::kSeverFlushBarrier: return "sever-flush-barrier";
    case Mutation::kShrinkGeneration: return "shrink-generation";
    case Mutation::kDropFlush: return "drop-flush";
    }
    return "?";
}

namespace {

/// CAKE buffer indices (extract_cake_ir's layout).
constexpr int kBufUserA = 0;
constexpr int kBufUserB = 1;
constexpr int kBufUserC = 2;
constexpr int kBufPackA = 3;
constexpr int kBufPackB = 4;
constexpr int kBufAccC = 5;

/// One ThreadPool::parallel_for worker chunk, mirroring the runtime's
/// contiguous split (thread_pool.cpp): width = min(p, total), chunk =
/// ceil(total / width), worker tid owns [tid*chunk, min(total, +chunk)).
struct Chunk {
    int tid = 0;
    index_t lo = 0, hi = 0;
};

std::vector<Chunk> parallel_chunks(index_t total, int p)
{
    std::vector<Chunk> chunks;
    if (total <= 0) return chunks;
    const auto width =
        static_cast<int>(std::min<index_t>(p, std::max<index_t>(total, 1)));
    const index_t chunk = ceil_div(total, width);
    for (int tid = 0; tid < width; ++tid) {
        const index_t lo = tid * chunk;
        const index_t hi = std::min(total, lo + chunk);
        if (lo < hi) chunks.push_back({tid, lo, hi});
    }
    return chunks;
}

/// Builds phases/ops/barriers in emission order. A barrier boundary is
/// recorded between every pair of consecutive phases, labelled by the
/// transition it enforces (mutations look boundaries up by label).
struct IrBuilder {
    ScheduleIR ir;
    bool phase_open = false;

    void next_phase(const char* boundary_label)
    {
        if (phase_open) {
            ir.barrier_intact.push_back(1);
            ir.barrier_label.emplace_back(boundary_label);
            ++ir.num_phases;
        } else {
            phase_open = true;
            ir.num_phases = 1;
        }
    }

    TileOp& add_op(OpKind kind, index_t step, const BlockCoord& block,
                   int worker, index_t seq = 0)
    {
        TileOp op;
        op.kind = kind;
        op.phase = ir.num_phases - 1;
        op.step = step;
        op.block = block;
        op.worker = worker;
        op.seq = seq;
        ir.ops.push_back(std::move(op));
        return ir.ops.back();
    }
};

TileSpan make_span(int buffer, int slot, index_t gen, Access access,
                   index_t r0, index_t r1, index_t c0, index_t c1,
                   bool creates = false, bool closes = false)
{
    TileSpan s;
    s.buffer = buffer;
    s.slot = slot;
    s.gen = gen;
    s.access = access;
    s.r0 = r0;
    s.r1 = r1;
    s.c0 = c0;
    s.c1 = c1;
    s.creates_gen = creates;
    s.closes_gen = closes;
    return s;
}

/// Emit the flush of the departing column recorded in `fl`'s flush_*
/// fields as row-group (pipelined) or worker-chunk (serial) ops.
void emit_flush_ops(IrBuilder& b, const BlockStep& fl, index_t nr,
                    index_t m_blk, index_t n_blk, bool beta_nonzero,
                    std::uint64_t elem, bool pipelined, int p)
{
    const bool rmw = fl.flush_revisit || beta_nonzero;
    const index_t um0 = fl.flush_coord.m * m_blk;
    const index_t un0 = fl.flush_coord.n * n_blk;
    auto emit = [&](index_t r0, index_t r1, int worker) {
        TileOp& op =
            b.add_op(OpKind::kFlush, fl.step, fl.flush_coord, worker);
        op.spans.push_back(make_span(
            kBufAccC, 0, fl.flush_gen, Access::kRead, r0, r1, 0,
            ceil_div(fl.flush_ni, nr), /*creates=*/false, /*closes=*/true));
        op.spans.push_back(make_span(
            kBufUserC, 0, 0, rmw ? Access::kReadWrite : Access::kWrite,
            um0 + r0, um0 + r1, un0, un0 + fl.flush_ni));
        const auto bytes = static_cast<std::uint64_t>(r1 - r0)
            * static_cast<std::uint64_t>(fl.flush_ni) * elem;
        op.dram_write_bytes = bytes;
        if (rmw) op.dram_read_bytes = bytes;
    };
    if (pipelined) {
        const index_t items = ceil_div(fl.flush_mi, kRowGroup);
        for (index_t i = 0; i < items; ++i) {
            emit(i * kRowGroup, std::min(fl.flush_mi, (i + 1) * kRowGroup),
                 -1);
        }
    } else {
        for (const Chunk& c : parallel_chunks(fl.flush_mi, p)) {
            emit(c.lo, c.hi, c.tid);
        }
    }
}

}  // namespace

ScheduleIR extract_cake_ir(const GemmShape& shape,
                           const CbBlockParams& params, ScheduleKind kind,
                           Exec exec, bool use_prepacked, bool beta_nonzero)
{
    CAKE_CHECK_MSG(exec != Exec::kGoto,
                   "extract_cake_ir handles serial/pipelined only");
    CAKE_CHECK(shape.m >= 1 && shape.n >= 1 && shape.k >= 1);
    const bool pipelined = exec == Exec::kPipelined;
    const int p = params.p;
    const index_t mr = params.mr;
    const index_t nr = params.nr;
    const auto elem = static_cast<std::uint64_t>(params.elem_bytes);

    IrBuilder b;
    ScheduleIR& ir = b.ir;
    ir.exec = exec;
    ir.schedule = kind;
    ir.shape = shape;
    ir.params = params;
    ir.p = p;
    ir.mb = ceil_div(shape.m, params.m_blk);
    ir.nb = ceil_div(shape.n, params.n_blk);
    ir.kb = ceil_div(shape.k, params.k_blk);
    ir.elem_bytes = params.elem_bytes;
    ir.n_outermost = shape.n >= shape.m;
    ir.use_prepacked = use_prepacked;
    ir.beta_nonzero = beta_nonzero;
    ir.expected_accums = ir.kb;
    ir.order = build_schedule(kind, ir.mb, ir.nb, ir.kb, ir.n_outermost);

    // The SAME plan the executors consume (core/block_plan.cpp).
    BlockPlanInputs pin;
    pin.params = params;
    pin.m = shape.m;
    pin.n = shape.n;
    pin.k = shape.k;
    pin.ldc = shape.n;
    pin.nb = ir.nb;
    pin.kb = ir.kb;
    pin.use_prepacked = use_prepacked;
    pin.beta_nonzero = beta_nonzero;
    pin.double_buffer = pipelined;
    const BlockPlan plan = build_block_plan(ir.order, pin);

    const int pack_slots = pipelined ? 2 : 1;
    ir.buffers = {
        {"user A", BufKind::kUserA, 1},
        {"user B", BufKind::kUserB, 1},
        {"user C", BufKind::kUserC, 1},
        {"packed A", BufKind::kPackA, pack_slots},
        {"packed B", BufKind::kPackB, pack_slots},
        {"local C", BufKind::kAccC, 1},
    };

    // Pack-generation ordinals per step, in plan order.
    const auto steps = static_cast<index_t>(plan.steps.size());
    std::vector<index_t> a_gen_of(static_cast<std::size_t>(steps), 0);
    std::vector<index_t> b_gen_of(static_cast<std::size_t>(steps), 0);
    {
        index_t ag = -1, bg = -1;
        for (index_t t = 0; t < steps; ++t) {
            const BlockStep& st = plan.steps[static_cast<std::size_t>(t)];
            if (st.pack_a) ++ag;
            if (st.pack_b) ++bg;
            a_gen_of[static_cast<std::size_t>(t)] = std::max<index_t>(ag, 0);
            b_gen_of[static_cast<std::size_t>(t)] = std::max<index_t>(bg, 0);
        }
    }

    // --- shared op emitters -------------------------------------------
    // Pack a range of mr slivers of step st's A surface (sliver-indexed
    // rows of the packed-A panel; element rows of user A).
    auto emit_pack_a = [&](const BlockStep& st, index_t s0, index_t s1,
                           int worker) {
        const index_t r0 = s0 * mr;
        const index_t r1 = std::min(st.mi, s1 * mr);
        TileOp& op = b.add_op(OpKind::kPackA, st.step, st.coord, worker);
        op.spans.push_back(make_span(kBufUserA, 0, 0, Access::kRead,
                                     st.m0 + r0, st.m0 + r1, st.k0,
                                     st.k0 + st.ki));
        op.spans.push_back(make_span(
            kBufPackA, st.a_slot, a_gen_of[static_cast<std::size_t>(st.step)],
            Access::kWrite, s0, s1, 0, 1, /*creates=*/true));
        op.dram_read_bytes = static_cast<std::uint64_t>(r1 - r0)
            * static_cast<std::uint64_t>(st.ki) * elem;
    };
    auto emit_pack_b = [&](const BlockStep& st, index_t s0, index_t s1,
                           int worker) {
        const index_t c0 = s0 * nr;
        const index_t c1 = std::min(st.ni, s1 * nr);
        TileOp& op = b.add_op(OpKind::kPackB, st.step, st.coord, worker);
        op.spans.push_back(make_span(kBufUserB, 0, 0, Access::kRead, st.k0,
                                     st.k0 + st.ki, st.n0 + c0, st.n0 + c1));
        op.spans.push_back(make_span(
            kBufPackB, st.b_slot, b_gen_of[static_cast<std::size_t>(st.step)],
            Access::kWrite, s0, s1, 0, 1, /*creates=*/true));
        op.dram_read_bytes = static_cast<std::uint64_t>(c1 - c0)
            * static_cast<std::uint64_t>(st.ki) * elem;
    };
    // Prepacked B: no pack work, but the panel still streams from
    // external memory once per fresh surface.
    auto emit_stream_b = [&](const BlockStep& st) {
        TileOp& op = b.add_op(OpKind::kStreamB, st.step, st.coord, -1);
        op.spans.push_back(make_span(kBufUserB, 0, 0, Access::kRead, st.k0,
                                     st.k0 + st.ki, st.n0,
                                     st.n0 + st.ni));
        op.dram_read_bytes = static_cast<std::uint64_t>(st.ki)
            * static_cast<std::uint64_t>(st.ni) * elem;
    };
    // Zero a row range of the fresh local C surface; the first op of a
    // reloaded column carries the spilled-partial refetch bytes.
    auto emit_zero = [&](const BlockStep& st, index_t r0, index_t r1,
                         int worker, bool first) {
        TileOp& op = b.add_op(OpKind::kZeroC, st.step, st.coord, worker);
        op.spans.push_back(make_span(kBufAccC, 0, st.c_gen, Access::kWrite,
                                     r0, r1, 0, ceil_div(st.ni, nr),
                                     /*creates=*/true));
        if (first && st.reload) {
            op.dram_read_bytes = static_cast<std::uint64_t>(st.mi)
                * static_cast<std::uint64_t>(st.ni) * elem;
        }
    };
    // One compute row band [r0, r1): reads the packed surfaces, RMWs the
    // local accumulator.
    auto emit_compute = [&](const BlockStep& st, index_t r0, index_t r1,
                            int worker) {
        TileOp& op = b.add_op(OpKind::kCompute, st.step, st.coord, worker);
        op.spans.push_back(make_span(
            kBufPackA, st.a_slot, a_gen_of[static_cast<std::size_t>(st.step)],
            Access::kRead, r0 / mr, ceil_div(r1, mr), 0, 1));
        if (!use_prepacked) {
            op.spans.push_back(make_span(
                kBufPackB, st.b_slot,
                b_gen_of[static_cast<std::size_t>(st.step)], Access::kRead,
                0, ceil_div(st.ni, nr), 0, 1));
        }
        op.spans.push_back(make_span(kBufAccC, 0, st.c_gen,
                                     Access::kReadWrite, r0, r1, 0,
                                     ceil_div(st.ni, nr)));
    };

    if (!pipelined) {
        // ---- serial executor: one fork-join pool dispatch per phase,
        // pack -> (flush, zero) -> compute in strict sequence per step.
        for (const BlockStep& st : plan.steps) {
            if (st.pack_a) {
                b.next_phase("join");
                for (const Chunk& c :
                     parallel_chunks(ceil_div(st.mi, mr), p)) {
                    emit_pack_a(st, c.lo, c.hi, c.tid);
                }
            }
            if (use_prepacked && st.b_fresh) {
                b.next_phase("join");
                emit_stream_b(st);
            } else if (st.pack_b) {
                b.next_phase("join");
                for (const Chunk& c :
                     parallel_chunks(ceil_div(st.ni, nr), p)) {
                    emit_pack_b(st, c.lo, c.hi, c.tid);
                }
            }
            if (st.c_change) {
                if (st.step > 0) {
                    b.next_phase("join");
                    emit_flush_ops(b, st, nr, params.m_blk, params.n_blk,
                                   beta_nonzero, elem, /*pipelined=*/false,
                                   p);
                }
                b.next_phase("join");
                bool first = true;
                for (const Chunk& c : parallel_chunks(st.mi, p)) {
                    emit_zero(st, c.lo, c.hi, c.tid, first);
                    first = false;
                }
            }
            b.next_phase("join");
            const index_t band = round_up(ceil_div(st.mi, p), mr);
            for (int tid = 0; tid < p; ++tid) {
                const index_t r0 = std::min<index_t>(tid * band, st.mi);
                const index_t r1 =
                    std::min<index_t>((tid + 1) * band, st.mi);
                if (r0 < r1) emit_compute(st, r0, r1, tid);
            }
        }
        b.next_phase("join");
        emit_flush_ops(b, plan.final_flush, nr, params.m_blk, params.n_blk,
                       beta_nonzero, elem, /*pipelined=*/false, p);
        return std::move(b.ir);
    }

    // ---- pipelined executor: persistent team, dynamically claimed work
    // items (worker = -1), spin-barrier phase boundaries. Mirrors
    // run_pipelined's phase structure exactly: pipeline fill, per-step
    // [flush, zero] column turnovers, main phases packing step t+1 while
    // computing step t, and the final drain flush.
    {
        // Pipeline fill: pack block 0's surfaces + zero the first column.
        b.next_phase("fill");
        const BlockStep& s0 = plan.steps[0];
        if (s0.pack_a) {
            const index_t na = ceil_div(ceil_div(s0.mi, mr), kPackAGroup);
            for (index_t i = 0; i < na; ++i) {
                emit_pack_a(s0, i * kPackAGroup,
                            std::min(ceil_div(s0.mi, mr),
                                     (i + 1) * kPackAGroup),
                            -1);
            }
        }
        if (s0.pack_b) {
            const index_t nbv = ceil_div(ceil_div(s0.ni, nr), kPackBGroup);
            for (index_t i = 0; i < nbv; ++i) {
                emit_pack_b(s0, i * kPackBGroup,
                            std::min(ceil_div(s0.ni, nr),
                                     (i + 1) * kPackBGroup),
                            -1);
            }
        }
        {
            const index_t nzero = ceil_div(s0.mi, kRowGroup);
            for (index_t i = 0; i < nzero; ++i) {
                emit_zero(s0, i * kRowGroup,
                          std::min(s0.mi, (i + 1) * kRowGroup), -1, i == 0);
            }
        }

        for (index_t t = 0; t < steps; ++t) {
            const BlockStep& st = plan.steps[static_cast<std::size_t>(t)];
            if (st.c_change && t > 0) {
                b.next_phase("main->flush");
                emit_flush_ops(b, st, nr, params.m_blk, params.n_blk,
                               beta_nonzero, elem, /*pipelined=*/true, p);
                b.next_phase("flush->zero");
                const index_t nzero = ceil_div(st.mi, kRowGroup);
                for (index_t i = 0; i < nzero; ++i) {
                    emit_zero(st, i * kRowGroup,
                              std::min(st.mi, (i + 1) * kRowGroup), -1,
                              i == 0);
                }
                b.next_phase("zero->main");
            } else {
                b.next_phase(t == 0 ? "fill->main" : "main->main");
            }
            // Main phase: pack step t+1's fresh surfaces while computing
            // step t (pack items first, as in the executor).
            const BlockStep* next = t + 1 < steps
                ? &plan.steps[static_cast<std::size_t>(t + 1)]
                : nullptr;
            if (next != nullptr && next->pack_a) {
                const index_t na =
                    ceil_div(ceil_div(next->mi, mr), kPackAGroup);
                for (index_t i = 0; i < na; ++i) {
                    emit_pack_a(*next, i * kPackAGroup,
                                std::min(ceil_div(next->mi, mr),
                                         (i + 1) * kPackAGroup),
                                -1);
                }
            }
            if (next != nullptr && next->pack_b) {
                const index_t nbv =
                    ceil_div(ceil_div(next->ni, nr), kPackBGroup);
                for (index_t i = 0; i < nbv; ++i) {
                    emit_pack_b(*next, i * kPackBGroup,
                                std::min(ceil_div(next->ni, nr),
                                         (i + 1) * kPackBGroup),
                                -1);
                }
            }
            if (use_prepacked && st.b_fresh) emit_stream_b(st);
            const index_t bands = ceil_div(st.mi, mr);
            for (index_t band = 0; band < bands; ++band) {
                const index_t r0 = band * mr;
                emit_compute(st, r0, std::min(st.mi, r0 + mr), -1);
            }
        }

        b.next_phase("main->drain");
        emit_flush_ops(b, plan.final_flush, nr, params.m_blk, params.n_blk,
                       beta_nonzero, elem, /*pipelined=*/true, p);
    }
    return std::move(b.ir);
}

ScheduleIR extract_goto_ir(const GemmShape& shape,
                           const GotoBlocking& blocking, int p, index_t mr,
                           index_t nr, bool accumulate, index_t elem_bytes)
{
    CAKE_CHECK(shape.m >= 1 && shape.n >= 1 && shape.k >= 1);
    CAKE_CHECK(p >= 1 && mr >= 1 && nr >= 1);
    CAKE_CHECK(elem_bytes >= 1);
    const index_t mc = blocking.mc;
    const index_t kc = blocking.kc;
    const index_t nc = blocking.nc;
    const auto elem = static_cast<std::uint64_t>(elem_bytes);

    IrBuilder b;
    ScheduleIR& ir = b.ir;
    ir.exec = Exec::kGoto;
    ir.shape = shape;
    ir.blocking = blocking;
    ir.p = p;
    ir.params.mr = mr;  // kernel shape, for the memsim cross-check
    ir.params.nr = nr;
    ir.params.elem_bytes = elem_bytes;  // keep the dtype fields consistent
    ir.elem_bytes = elem_bytes;
    ir.beta_nonzero = accumulate;
    ir.expected_accums = ceil_div(shape.k, kc);
    ir.buffers = {
        {"user A", BufKind::kUserA, 1},
        {"user B", BufKind::kUserB, 1},
        {"user C", BufKind::kUserC, 1},
        {"packed A (per-core)", BufKind::kPackA, p},
        {"packed B", BufKind::kPackB, 1},
    };

    // Per-slot (= per-core) A generation counters; one B generation per
    // (jc, pc) pass.
    std::vector<index_t> a_gen(static_cast<std::size_t>(p), -1);
    index_t b_gen = -1;
    index_t pass_idx = 0;

    // The SAME pass list GotoGemmT::multiply iterates.
    for (const GotoPass& pass :
         build_goto_passes(shape.n, shape.k, nc, kc, accumulate)) {
        const BlockCoord pc_coord{-1, pass.jc / nc, pass.pc / kc};
        ++b_gen;
        b.next_phase(pass_idx == 0 ? "start" : "pass");
        for (const Chunk& c : parallel_chunks(ceil_div(pass.ncur, nr), p)) {
            const index_t c0 = c.lo * nr;
            const index_t c1 = std::min(pass.ncur, c.hi * nr);
            TileOp& op =
                b.add_op(OpKind::kPackB, pass_idx, pc_coord, c.tid);
            op.spans.push_back(make_span(
                kBufUserB, 0, 0, Access::kRead, pass.pc,
                pass.pc + pass.kcur, pass.jc + c0, pass.jc + c1));
            op.spans.push_back(make_span(kBufPackB, 0, b_gen,
                                         Access::kWrite, c.lo, c.hi, 0, 1,
                                         /*creates=*/true));
            op.dram_read_bytes = static_cast<std::uint64_t>(c1 - c0)
                * static_cast<std::uint64_t>(pass.kcur) * elem;
        }

        b.next_phase("packB->compute");
        for (int tid = 0; tid < p; ++tid) {
            index_t seq = 0;
            for (index_t ic = tid * mc; ic < shape.m;
                 ic += static_cast<index_t>(p) * mc) {
                const index_t mcur = std::min(mc, shape.m - ic);
                BlockCoord blk = pc_coord;
                blk.m = ic / mc;
                ++a_gen[static_cast<std::size_t>(tid)];
                const index_t ag = a_gen[static_cast<std::size_t>(tid)];
                {
                    TileOp& op =
                        b.add_op(OpKind::kPackA, pass_idx, blk, tid, seq++);
                    op.spans.push_back(make_span(
                        kBufUserA, 0, 0, Access::kRead, ic, ic + mcur,
                        pass.pc, pass.pc + pass.kcur));
                    op.spans.push_back(make_span(
                        kBufPackA, tid, ag, Access::kWrite, 0,
                        ceil_div(mcur, mr), 0, 1, /*creates=*/true));
                    op.dram_read_bytes = static_cast<std::uint64_t>(mcur)
                        * static_cast<std::uint64_t>(pass.kcur) * elem;
                }
                {
                    TileOp& op = b.add_op(OpKind::kCompute, pass_idx, blk,
                                          tid, seq++);
                    op.spans.push_back(make_span(kBufPackA, tid, ag,
                                                 Access::kRead, 0,
                                                 ceil_div(mcur, mr), 0, 1));
                    op.spans.push_back(make_span(
                        kBufPackB, 0, b_gen, Access::kRead, 0,
                        ceil_div(pass.ncur, nr), 0, 1));
                    // GOTO streams partial C straight to user memory:
                    // a plain write on the first reduction pass, RMW on
                    // every later one.
                    op.spans.push_back(make_span(
                        kBufUserC, 0, 0,
                        pass.acc ? Access::kReadWrite : Access::kWrite, ic,
                        ic + mcur, pass.jc, pass.jc + pass.ncur));
                    const auto c_bytes = static_cast<std::uint64_t>(mcur)
                        * static_cast<std::uint64_t>(pass.ncur) * elem;
                    op.dram_write_bytes = c_bytes;
                    if (pass.acc) op.dram_read_bytes = c_bytes;
                }
            }
        }
        ++pass_idx;
    }
    return std::move(b.ir);
}

IoTotals io_totals(const ScheduleIR& ir)
{
    IoTotals t;
    for (const TileOp& op : ir.ops) {
        switch (op.kind) {
        case OpKind::kPackA:
            t.a_read += op.dram_read_bytes;
            break;
        case OpKind::kPackB:
        case OpKind::kStreamB:
            t.b_read += op.dram_read_bytes;
            break;
        case OpKind::kZeroC:
            t.c_reload_read += op.dram_read_bytes;
            break;
        case OpKind::kCompute:
        case OpKind::kFlush:
            t.c_write += op.dram_write_bytes;
            t.c_rmw_read += op.dram_read_bytes;
            break;
        }
    }
    return t;
}

std::string apply_mutation(ScheduleIR& ir, Mutation m)
{
    auto find_op = [&](OpKind kind) -> std::size_t {
        for (std::size_t i = 0; i < ir.ops.size(); ++i) {
            if (ir.ops[i].kind == kind) return i;
        }
        throw Error(std::string("apply_mutation: no ")
                        + op_kind_name(kind) + " op in this IR");
    };
    auto sever_boundary = [&](const char* label) {
        for (std::size_t i = 0; i < ir.barrier_label.size(); ++i) {
            if (ir.barrier_label[i] == label) {
                ir.barrier_intact[i] = 0;
                return;
            }
        }
        throw Error(std::string("apply_mutation: IR has no '") + label
                        + "' boundary");
    };

    switch (m) {
    case Mutation::kDropOp: {
        // Lose one accumulation: the affected C elements fall short.
        const std::size_t i = find_op(OpKind::kCompute);
        ir.ops.erase(ir.ops.begin() + static_cast<std::ptrdiff_t>(i));
        return "IR_COVER";
    }
    case Mutation::kDupOp: {
        // Apply one accumulation twice.
        const std::size_t i = find_op(OpKind::kCompute);
        ir.ops.push_back(ir.ops[i]);
        return "IR_COVER";
    }
    case Mutation::kReorderAccum: {
        // Move an accumulation after the flush that retires its
        // generation: the closing read no longer follows every write.
        for (const TileOp& f : ir.ops) {
            if (f.kind != OpKind::kFlush || f.phase + 1 >= ir.num_phases) {
                continue;
            }
            index_t gen = -1;
            for (const TileSpan& s : f.spans) {
                if (s.closes_gen) gen = s.gen;
            }
            if (gen < 0) continue;
            for (TileOp& c : ir.ops) {
                if (c.kind != OpKind::kCompute) continue;
                for (const TileSpan& s : c.spans) {
                    if (s.buffer == kBufAccC && s.gen == gen) {
                        c.phase = f.phase + 1;
                        return "IR_ORDER";
                    }
                }
            }
        }
        throw Error(
            "apply_mutation: no mid-schedule flush to reorder past");
    }
    case Mutation::kSeverZeroBarrier:
        // Zeroing the new column races the computes accumulating into it.
        sever_boundary("zero->main");
        return "IR_RACE_WW";
    case Mutation::kSeverFlushBarrier:
        // The flush reads the surface while the last block still writes.
        sever_boundary("main->flush");
        return "IR_RACE_RW";
    case Mutation::kShrinkGeneration: {
        // Collapse the double buffers: pack(t+1) recycles the very slot
        // compute(t) is still reading.
        if (ir.exec != Exec::kPipelined) {
            throw Error(
                "apply_mutation: shrink-generation needs a pipelined IR");
        }
        bool shrunk = false;
        for (std::size_t bi = 0; bi < ir.buffers.size(); ++bi) {
            Buffer& buf = ir.buffers[bi];
            if ((buf.kind == BufKind::kPackA
                 || buf.kind == BufKind::kPackB)
                && buf.slots > 1) {
                buf.slots = 1;
                shrunk = true;
                for (TileOp& op : ir.ops) {
                    for (TileSpan& s : op.spans) {
                        if (s.buffer == static_cast<int>(bi)) s.slot = 0;
                    }
                }
            }
        }
        if (!shrunk) {
            throw Error(
                "apply_mutation: IR has no double-buffered pack panel");
        }
        return "IR_LIFETIME";
    }
    case Mutation::kDropFlush: {
        // Lose a writeback: the flushed elements never reach user C.
        const std::size_t i = find_op(OpKind::kFlush);
        ir.ops.erase(ir.ops.begin() + static_cast<std::ptrdiff_t>(i));
        return "IR_COVER";
    }
    }
    throw Error("apply_mutation: unknown mutation");
}

}  // namespace schedir
}  // namespace cake
