#include "analysis/locality.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace cake {
namespace locality {

bool LocalityReport::has(const std::string& code) const
{
    for (const LocalityIssue& issue : issues) {
        if (issue.code == code) return true;
    }
    return false;
}

std::string LocalityReport::codes() const
{
    std::string out;
    for (const LocalityIssue& issue : issues) {
        if (!out.empty()) out += ',';
        out += issue.code;
    }
    return out;
}

namespace {

using schedir::Access;
using schedir::OpKind;
using schedir::ScheduleIR;
using schedir::TileOp;
using schedir::TileSpan;

/// A corrupt IR yields its characteristic code a few times, not
/// thousands of echoes (same cap discipline as verify.cpp).
constexpr int kMaxIssuesPerCheck = 4;

struct IssueSink {
    LocalityReport& report;
    int count = 0;

    [[nodiscard]] bool full() const { return count >= kMaxIssuesPerCheck; }
    void add(const char* code, std::string message)
    {
        if (full()) return;
        report.issues.push_back({code, std::move(message)});
        ++count;
    }
};

index_t clip(index_t coord, index_t blk, index_t total)
{
    return std::min(blk, total - coord * blk);
}

/// Surface identity in the combined reference stream: A surfaces are
/// (m, k), B surfaces (k, n), partial-C surfaces the (m, n) column.
enum SurfaceType { kSurfA = 0, kSurfB = 1, kSurfC = 2 };

struct StackEntry {
    int type = 0;
    index_t id = 0;
    std::uint64_t bytes = 0;
};

/// Everything the closed-form walk of ir.order derives: predicted
/// traffic, per-transition rows, typed fetch-step sets, and the
/// byte-weighted LRU stack statistics.
struct ClosedForm {
    schedir::IoTotals predicted;
    std::vector<Transition> transitions;
    index_t shared_transitions = 0;
    std::uint64_t shared_bytes = 0;
    std::set<index_t> a_fetch_steps;   ///< typed A stack distance > 0 / cold
    std::set<index_t> b_fetch_steps;   ///< typed B stack distance > 0 / cold
    std::set<index_t> reload_steps;    ///< C distance > 0 and evicted (flushed)
    StackHistogram hist;
    std::vector<LevelStats> levels;
};

ClosedForm walk_order(const ScheduleIR& ir, const CacheHierarchy& caches)
{
    ClosedForm cf;
    for (const CacheLevel& lv : caches.levels) {
        LevelStats ls;
        ls.name = 'L';
        ls.name += std::to_string(lv.level);
        ls.capacity_bytes = static_cast<std::uint64_t>(lv.size_bytes);
        cf.levels.push_back(std::move(ls));
    }

    const auto e = static_cast<std::uint64_t>(ir.elem_bytes);
    const auto col_of = [&](const BlockCoord& c) { return c.m * ir.nb + c.n; };

    // Byte-weighted LRU stack over the combined surface stream; MRU at
    // the back. The distance of a reuse is the bytes of *other* surfaces
    // referenced since the last touch (exclusive stack distance).
    std::vector<StackEntry> stack;
    const auto touch = [&](int type, index_t id, std::uint64_t bytes) {
        std::uint64_t dist = 0;
        std::size_t pos = stack.size();
        for (std::size_t i = stack.size(); i-- > 0;) {
            if (stack[i].type == type && stack[i].id == id) {
                pos = i;
                break;
            }
            dist += stack[i].bytes;
        }
        if (pos == stack.size()) {
            ++cf.hist.cold;
            for (LevelStats& lv : cf.levels) ++lv.cold;
        } else {
            stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(pos));
            if (dist == 0) {
                ++cf.hist.immediate;
            } else {
                int bucket = 0;
                while ((dist >> (bucket + 1)) != 0) ++bucket;
                ++cf.hist.pow2[static_cast<std::size_t>(bucket)];
            }
            cf.hist.max_distance = std::max(cf.hist.max_distance, dist);
            for (LevelStats& lv : cf.levels) {
                if (dist + bytes <= lv.capacity_bytes) {
                    ++lv.hits;
                } else {
                    ++lv.misses;
                }
            }
        }
        stack.push_back({type, id, bytes});
    };

    // Partial-C eviction state: a column is refetched iff it was flushed
    // by an earlier column switch (same law check_io_model re-derives).
    std::vector<char> flushed(static_cast<std::size_t>(ir.mb * ir.nb), 0);
    bool entered_flushed = false;

    for (std::size_t i = 0; i < ir.order.size(); ++i) {
        const BlockCoord& cur = ir.order[i];
        const SurfaceSharing sh = i == 0
            ? SurfaceSharing{}
            : shared_surfaces(ir.order[i - 1], cur);
        const auto mi = static_cast<std::uint64_t>(
            clip(cur.m, ir.params.m_blk, ir.shape.m));
        const auto ni = static_cast<std::uint64_t>(
            clip(cur.n, ir.params.n_blk, ir.shape.n));
        const auto ki = static_cast<std::uint64_t>(
            clip(cur.k, ir.params.k_blk, ir.shape.k));
        const std::uint64_t a_bytes = mi * ki * e;
        const std::uint64_t b_bytes = ki * ni * e;
        const std::uint64_t c_bytes = mi * ni * e;

        Transition tr;
        tr.step = static_cast<index_t>(i);
        if (sh.a) {
            tr.shared_bytes += a_bytes;
        } else {
            cf.predicted.a_read += a_bytes;
            tr.predicted_fetch += a_bytes;
            cf.a_fetch_steps.insert(tr.step);
        }
        if (sh.b) {
            tr.shared_bytes += b_bytes;
        } else {
            cf.predicted.b_read += b_bytes;
            tr.predicted_fetch += b_bytes;
            cf.b_fetch_steps.insert(tr.step);
        }
        if (sh.c) {
            tr.shared_bytes += c_bytes;
        } else {
            if (i > 0) {
                const BlockCoord& prev = ir.order[i - 1];
                const auto pm = static_cast<std::uint64_t>(
                    clip(prev.m, ir.params.m_blk, ir.shape.m));
                const auto pn = static_cast<std::uint64_t>(
                    clip(prev.n, ir.params.n_blk, ir.shape.n));
                cf.predicted.c_write += pm * pn * e;
                if (entered_flushed || ir.beta_nonzero) {
                    cf.predicted.c_rmw_read += pm * pn * e;
                }
                flushed[static_cast<std::size_t>(col_of(prev))] = 1;
            }
            entered_flushed =
                flushed[static_cast<std::size_t>(col_of(cur))] != 0;
            if (entered_flushed) {
                cf.predicted.c_reload_read += c_bytes;
                tr.predicted_fetch += c_bytes;
                cf.reload_steps.insert(tr.step);
            }
        }
        if (i > 0 && (sh.a || sh.b || sh.c)) ++cf.shared_transitions;
        cf.shared_bytes += tr.shared_bytes;

        touch(kSurfA, cur.m * ir.kb + cur.k, a_bytes);
        touch(kSurfB, cur.k * ir.nb + cur.n, b_bytes);
        touch(kSurfC, col_of(cur), c_bytes);

        cf.transitions.push_back(tr);
    }
    if (!ir.order.empty()) {
        const BlockCoord& last = ir.order.back();
        const auto pm = static_cast<std::uint64_t>(
            clip(last.m, ir.params.m_blk, ir.shape.m));
        const auto pn = static_cast<std::uint64_t>(
            clip(last.n, ir.params.n_blk, ir.shape.n));
        cf.predicted.c_write += pm * pn * e;
        if (entered_flushed || ir.beta_nonzero) {
            cf.predicted.c_rmw_read += pm * pn * e;
        }
    }
    return cf;
}

/// What the IR's operations actually do, grouped by the schedule step
/// they serve: fetch bytes, distinct packed generations (one per fetched
/// surface), stream ops, and reload reads.
struct IrEvents {
    std::map<index_t, std::uint64_t> fetch_of_step;
    std::set<index_t> a_gens, b_gens;           ///< distinct creating gens
    std::set<index_t> a_gen_steps, b_gen_steps; ///< steps with a creating op
    std::set<index_t> b_stream_steps;
    index_t b_stream_ops = 0;
    std::set<index_t> reload_steps;
};

IrEvents collect_ir_events(const ScheduleIR& ir)
{
    IrEvents ev;
    for (const TileOp& op : ir.ops) {
        switch (op.kind) {
        case OpKind::kPackA:
        case OpKind::kPackB:
            ev.fetch_of_step[op.step] += op.dram_read_bytes;
            for (const TileSpan& s : op.spans) {
                if (!s.creates_gen) continue;
                if (op.kind == OpKind::kPackA) {
                    ev.a_gens.insert(s.gen);
                    ev.a_gen_steps.insert(op.step);
                } else {
                    ev.b_gens.insert(s.gen);
                    ev.b_gen_steps.insert(op.step);
                }
            }
            break;
        case OpKind::kStreamB:
            ev.fetch_of_step[op.step] += op.dram_read_bytes;
            ev.b_stream_steps.insert(op.step);
            ++ev.b_stream_ops;
            break;
        case OpKind::kZeroC:
            if (op.dram_read_bytes > 0) {
                ev.fetch_of_step[op.step] += op.dram_read_bytes;
                ev.reload_steps.insert(op.step);
            }
            break;
        default:
            break;  // compute has no DRAM traffic; flush is write-side
        }
    }
    return ev;
}

/// LOC_STACK helper: report the first steps where the IR's fetch events
/// and the stack-distance law disagree.
void diff_event_steps(const char* what, const std::set<index_t>& want,
                      const std::set<index_t>& got, IssueSink& sink)
{
    if (want == got) return;
    for (index_t step : want) {
        if (sink.full()) return;
        if (got.count(step) == 0) {
            std::ostringstream os;
            os << what << ": stack-distance law demands a fetch at step "
               << step << " but the IR has no fetch event there";
            sink.add("LOC_STACK", os.str());
        }
    }
    for (index_t step : got) {
        if (sink.full()) return;
        if (want.count(step) == 0) {
            std::ostringstream os;
            os << what << ": IR fetches at step " << step
               << " where the stack-distance law carries the surface over";
            sink.add("LOC_STACK", os.str());
        }
    }
}

}  // namespace

LocalityReport analyze_locality(const schedir::ScheduleIR& ir,
                                const CacheHierarchy& caches)
{
    CAKE_CHECK_MSG(ir.exec != schedir::Exec::kGoto,
                   "analyze_locality: CAKE IR required (the reuse law is "
                   "defined over ir.order, which GOTO does not populate)");
    LocalityReport rep;
    rep.schedule = ir.schedule;
    rep.steps = static_cast<index_t>(ir.order.size());

    ClosedForm cf = walk_order(ir, caches);
    const IrEvents ev = collect_ir_events(ir);

    rep.shared_transitions = cf.shared_transitions;
    rep.shared_bytes = cf.shared_bytes;
    rep.predicted = cf.predicted;
    rep.hist = cf.hist;
    rep.levels = std::move(cf.levels);

    // LOC_SURFACE: the bytes fetched at each step must equal the closed
    // form of that transition — step by step, not just in total.
    {
        IssueSink sink{rep};
        for (Transition& tr : cf.transitions) {
            const auto it = ev.fetch_of_step.find(tr.step);
            tr.ir_fetch = it == ev.fetch_of_step.end() ? 0 : it->second;
            if (tr.ir_fetch == tr.predicted_fetch || sink.full()) continue;
            std::ostringstream os;
            os << "step " << tr.step << ": IR ops fetch " << tr.ir_fetch
               << " bytes; the transition's unshared surfaces are "
               << tr.predicted_fetch << " bytes";
            sink.add("LOC_SURFACE", os.str());
        }
        // Fetch bytes at steps past the schedule (phantom steps).
        for (const auto& [step, bytes] : ev.fetch_of_step) {
            if (sink.full()) break;
            if (step >= 0 && step < rep.steps) continue;
            std::ostringstream os;
            os << "step " << step << ": IR fetches " << bytes
               << " bytes outside the " << rep.steps << "-step schedule";
            sink.add("LOC_SURFACE", os.str());
        }
    }
    rep.transitions = std::move(cf.transitions);

    // LOC_STACK: fetch events exactly where the typed LRU stack-distance
    // law demands one — counted (one generation / stream op / reload per
    // demanded fetch) and placed (at those steps and no others).
    {
        IssueSink sink{rep};
        const auto cmp_count = [&](const char* what, std::size_t got,
                                   std::size_t want) {
            if (got == want || sink.full()) return;
            std::ostringstream os;
            os << what << ": IR has " << got
               << " fetch events; the stack-distance law demands " << want;
            sink.add("LOC_STACK", os.str());
        };
        cmp_count("packed-A generations", ev.a_gens.size(),
                  cf.a_fetch_steps.size());
        diff_event_steps("packed-A", cf.a_fetch_steps, ev.a_gen_steps, sink);
        if (ir.use_prepacked) {
            cmp_count("B stream ops",
                      static_cast<std::size_t>(ev.b_stream_ops),
                      cf.b_fetch_steps.size());
            diff_event_steps("streamed-B", cf.b_fetch_steps,
                             ev.b_stream_steps, sink);
        } else {
            cmp_count("packed-B generations", ev.b_gens.size(),
                      cf.b_fetch_steps.size());
            diff_event_steps("packed-B", cf.b_fetch_steps, ev.b_gen_steps,
                             sink);
        }
        diff_event_steps("partial-C reload", cf.reload_steps,
                         ev.reload_steps, sink);
    }

    // LOC_TRAFFIC: the summed closed form must equal io_totals(ir)
    // byte-exactly. cross_check_memsim pins io_totals to the memsim
    // address stream, so this equality chains prediction -> simulation.
    {
        IssueSink sink{rep};
        const schedir::IoTotals got = schedir::io_totals(ir);
        const auto cmp = [&](const char* name, std::uint64_t g,
                             std::uint64_t w) {
            if (g == w || sink.full()) return;
            std::ostringstream os;
            os << name << ": closed form predicts " << w
               << " bytes; io_totals(ir) reports " << g;
            sink.add("LOC_TRAFFIC", os.str());
        };
        cmp("A reads", got.a_read, rep.predicted.a_read);
        cmp("B reads", got.b_read, rep.predicted.b_read);
        cmp("C writebacks", got.c_write, rep.predicted.c_write);
        cmp("C RMW reads", got.c_rmw_read, rep.predicted.c_rmw_read);
        cmp("C reload reads", got.c_reload_read,
            rep.predicted.c_reload_read);
    }
    return rep;
}

LocalityReport analyze_locality(const schedir::ScheduleIR& ir)
{
    return analyze_locality(ir, default_caches());
}

const char* loc_mutation_name(LocMutation m)
{
    switch (m) {
    case LocMutation::kTwistOrder: return "twist-order";
    case LocMutation::kSkewFetch: return "skew-fetch";
    case LocMutation::kPhantomFetch: return "phantom-fetch";
    case LocMutation::kInflateFlush: return "inflate-flush";
    }
    return "?";
}

std::string apply_locality_mutation(schedir::ScheduleIR& ir, LocMutation m)
{
    CAKE_CHECK_MSG(ir.exec != schedir::Exec::kGoto,
                   "apply_locality_mutation: CAKE IR required");
    switch (m) {
    case LocMutation::kTwistOrder: {
        // Swap the last block of one column with the first of the next.
        // The IR's ops still serve the original order, so the closed form
        // of the twisted order disagrees with them step by step. Needs
        // kb >= 2 so the new neighbours differ in K (guaranteed byte
        // mismatch, not just a relabeling).
        if (ir.kb < 2) {
            throw Error("kTwistOrder: needs kb >= 2");
        }
        for (std::size_t i = 1; i < ir.order.size(); ++i) {
            const BlockCoord& a = ir.order[i - 1];
            const BlockCoord& b = ir.order[i];
            if (a.m == b.m && a.n == b.n) continue;
            std::swap(ir.order[i - 1], ir.order[i]);
            return "LOC_SURFACE";
        }
        throw Error("kTwistOrder: schedule has a single column");
    }
    case LocMutation::kSkewFetch: {
        // Move one pack-A op's fetch bytes to a pack-A op at a different
        // step: totals and generations unchanged (no LOC_TRAFFIC, no
        // LOC_STACK), but two steps now fetch the wrong byte count.
        TileOp* src = nullptr;
        for (TileOp& op : ir.ops) {
            if (op.kind == OpKind::kPackA && op.dram_read_bytes > 0) {
                src = &op;
                break;
            }
        }
        if (src != nullptr) {
            for (TileOp& op : ir.ops) {
                if (op.kind == OpKind::kPackA && op.step != src->step) {
                    op.dram_read_bytes += src->dram_read_bytes;
                    src->dram_read_bytes = 0;
                    return "LOC_SURFACE";
                }
            }
        }
        throw Error("kSkewFetch: needs pack-A ops at two different steps");
    }
    case LocMutation::kPhantomFetch: {
        // Add a zero-byte B fetch *event* (a fresh packed generation, or
        // an extra stream op when prepacked): per-step bytes and totals
        // unchanged, but the event count now exceeds what the stack-
        // distance law allows.
        index_t max_gen = -1;
        const TileOp* site = nullptr;
        for (const TileOp& op : ir.ops) {
            if (op.kind == OpKind::kStreamB && site == nullptr) site = &op;
            if (op.kind != OpKind::kPackB) continue;
            for (const TileSpan& s : op.spans) {
                if (!s.creates_gen) continue;
                if (s.gen > max_gen) {
                    max_gen = s.gen;
                    site = &op;
                }
            }
        }
        if (site == nullptr) {
            throw Error("kPhantomFetch: IR has no B fetch op");
        }
        TileOp phantom = *site;
        phantom.dram_read_bytes = 0;
        phantom.dram_write_bytes = 0;
        if (phantom.kind == OpKind::kPackB) {
            TileSpan span;
            for (const TileSpan& s : phantom.spans) {
                if (s.creates_gen) span = s;
            }
            span.gen = max_gen + 1;
            span.closes_gen = false;
            phantom.spans.assign(1, span);
        }
        ir.ops.push_back(std::move(phantom));
        return "LOC_STACK";
    }
    case LocMutation::kInflateFlush: {
        // One flush writes one extra element: io_totals' C writebacks
        // drift from the closed form (and from memsim) by elem_bytes.
        for (TileOp& op : ir.ops) {
            if (op.kind == OpKind::kFlush && op.dram_write_bytes > 0) {
                op.dram_write_bytes +=
                    static_cast<std::uint64_t>(ir.elem_bytes);
                return "LOC_TRAFFIC";
            }
        }
        throw Error("kInflateFlush: IR has no flush op");
    }
    }
    throw Error("apply_locality_mutation: unknown mutation");
}

}  // namespace locality
}  // namespace cake
