// Static reuse-distance analyzer: proves, from the schedule IR alone,
// that a block schedule's DRAM traffic is exactly what its transition
// structure (surface sharing, §2.2) implies — for every ScheduleKind,
// including the space-filling-curve orders (Hilbert / Morton) whose
// locality is otherwise only an empirical claim.
//
// The byte-level verifier (verify.hpp) proves the IR agrees with the
// paper's Eq.-2 traffic model; this pass goes one level deeper and proves
// the IR obeys the *cache-theoretic law* that generates that model: a
// surface is refetched iff its typed LRU stack distance since last use is
// nonzero (A and B), or it was evicted by an earlier flush (partial C).
// Three obligations, each with a coded diagnostic:
//
//   LOC_SURFACE  per-transition byte law — the bytes the IR's pack/stream/
//                reload ops fetch at each schedule step must equal the
//                closed-form unshared-surface bytes of that transition
//                (edge blocks clipped), step by step, not just in total.
//   LOC_STACK    fetch-event law — the IR's fetch events (distinct packed-A
//                and packed-B generations, B stream ops, partial-C reload
//                ops) must occur exactly at the steps where the typed
//                stack-distance law demands a fetch, and nowhere else.
//   LOC_TRAFFIC  summed closed-form traffic must equal io_totals(ir)
//                byte-exactly in all five Eq.-2 components. io_totals is
//                in turn pinned to the src/memsim address stream by
//                cross_check_memsim, so a clean report chains the
//                analyzer's prediction to simulated DRAM traffic.
//
// The report also carries descriptive locality evidence — a byte-weighted
// stack-distance histogram over the combined surface reference stream and
// per-cache-level hit/miss/cold counts (cache/topology.hpp) — consumed by
// bench_schedule_traffic and the cake_verify --locality report.
//
// Like the rest of cake::schedir this is analysis-only: compiled into the
// cake_schedir library (tests/tools configurations only) and the release
// nm gate proves no cake::locality symbol reaches release objects. The
// release-side schedule decision rule (model::recommend_schedule) keeps
// its own independent derivation; this analyzer exists to prove that
// derivation honest.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/schedir.hpp"
#include "cache/topology.hpp"

namespace cake {
namespace locality {

/// One schedule transition (step i-1 -> i) as the closed form sees it.
struct Transition {
    index_t step = 0;                  ///< index into ir.order
    std::uint64_t shared_bytes = 0;    ///< surface bytes carried over
    std::uint64_t predicted_fetch = 0; ///< closed-form A+B+reload fetch bytes
    std::uint64_t ir_fetch = 0;        ///< bytes the IR's ops fetch here
};

/// Byte-weighted LRU stack-distance histogram of the combined surface
/// reference stream (A, B, C surfaces touched in that order each step).
/// Distances are exclusive: bytes of *other* surfaces touched since the
/// last reference.
struct StackHistogram {
    std::uint64_t immediate = 0;  ///< distance-0 reuses (carried surfaces)
    std::uint64_t cold = 0;       ///< first touches
    /// bucket b counts reuses with 2^b <= distance < 2^(b+1) bytes.
    std::array<std::uint64_t, 64> pow2{};
    std::uint64_t max_distance = 0;
};

/// Hit/miss/cold classification of the same stream against one cache
/// level: a reuse hits iff distance + surface bytes fit the capacity.
struct LevelStats {
    std::string name;  ///< "L1", "L2", ...
    std::uint64_t capacity_bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t cold = 0;
};

struct LocalityIssue {
    std::string code;     ///< LOC_SURFACE | LOC_STACK | LOC_TRAFFIC
    std::string message;  ///< names the step, surface and byte counts
};

struct LocalityReport {
    ScheduleKind schedule = ScheduleKind::kKFirstSerpentine;
    index_t steps = 0;                ///< blocks in ir.order
    index_t shared_transitions = 0;   ///< transitions sharing >= 1 surface
    std::uint64_t shared_bytes = 0;   ///< total carried-over surface bytes
    schedir::IoTotals predicted;      ///< closed-form DRAM traffic
    StackHistogram hist;
    std::vector<LevelStats> levels;      ///< one per analysed cache level
    std::vector<Transition> transitions; ///< per-step rows (steps entries)
    std::vector<LocalityIssue> issues;

    [[nodiscard]] bool ok() const { return issues.empty(); }
    [[nodiscard]] bool has(const std::string& code) const;
    [[nodiscard]] std::string codes() const;  ///< "LOC_A,LOC_B" for messages
};

/// Analyse a CAKE IR (serial or pipelined, any ScheduleKind) against the
/// given cache hierarchy. Throws cake::Error for GOTO IRs — the reuse
/// law analysed here is defined over the CB-block order (ir.order),
/// which GOTO extraction does not populate.
LocalityReport analyze_locality(const schedir::ScheduleIR& ir,
                                const CacheHierarchy& caches);

/// Convenience overload: analyse against default_caches().
LocalityReport analyze_locality(const schedir::ScheduleIR& ir);

/// Deterministic locality corruptions, each caught by the named code.
enum class LocMutation {
    kTwistOrder,    ///< swap blocks across a column boundary -> LOC_SURFACE
    kSkewFetch,     ///< move fetch bytes between two steps -> LOC_SURFACE
    kPhantomFetch,  ///< extra zero-byte B fetch event -> LOC_STACK
    kInflateFlush,  ///< one flush writes an extra element -> LOC_TRAFFIC
};
const char* loc_mutation_name(LocMutation m);
constexpr int kLocMutationCount = 4;

/// Corrupt `ir` in place; returns the diagnostic code analyze_locality
/// MUST now emit (and never emits for the clean IR). Throws cake::Error
/// when the IR has no site for the mutation (e.g. kTwistOrder on a
/// single-column schedule).
std::string apply_locality_mutation(schedir::ScheduleIR& ir, LocMutation m);

}  // namespace locality
}  // namespace cake
