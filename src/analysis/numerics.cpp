#include "analysis/numerics.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace numerics {

using schedir::Access;
using schedir::BufKind;
using schedir::Exec;
using schedir::OpKind;
using schedir::ScheduleIR;
using schedir::TileOp;
using schedir::TileSpan;

namespace {

using Col = std::pair<index_t, index_t>;  // (m, n) block column

bool is_acc_span(const ScheduleIR& ir, const TileSpan& s)
{
    return s.buffer >= 0
        && static_cast<std::size_t>(s.buffer) < ir.buffers.size()
        && ir.buffers[static_cast<std::size_t>(s.buffer)].kind
        == BufKind::kAccC;
}

void add_issue(NumericsReport& rep, const char* code, std::string message)
{
    rep.issues.push_back({code, std::move(message)});
}

/// Per-column accumulation structure reconstructed from the op stream.
struct ColumnWalk {
    std::set<index_t> kcoords;  ///< distinct K-block coordinates touched
    std::set<index_t> gens;     ///< accumulator generations used (CAKE)
};

/// K extent of block coordinate `kc` in a grid of `kb` blocks of width
/// `k_blk` covering depth `k`. Out-of-grid coordinates charge a full
/// block — conservative, and exactly what a deepened chain costs.
index_t k_extent(index_t kc, index_t kb, index_t k_blk, index_t k)
{
    if (kc < 0 || kc >= kb) return k_blk;
    return std::min(k_blk, k - kc * k_blk);
}

/// Number of maximal consecutive runs of column `col` in the block order.
index_t runs_in_order(const std::vector<BlockCoord>& order, const Col& col)
{
    index_t runs = 0;
    bool inside = false;
    for (const BlockCoord& bc : order) {
        const bool here = bc.m == col.first && bc.n == col.second;
        if (here && !inside) ++runs;
        inside = here;
    }
    return runs;
}

}  // namespace

bool NumericsReport::has(const std::string& code) const
{
    for (const NumericsIssue& i : issues) {
        if (i.code == code) return true;
    }
    return false;
}

std::string NumericsReport::codes() const
{
    std::string out;
    for (const NumericsIssue& i : issues) {
        if (!out.empty()) out += ',';
        out += i.code;
    }
    return out;
}

NumericsReport verify_numerics(const ScheduleIR& ir, const DtypeDesc& dtype)
{
    NumericsReport rep;
    const bool is_goto = ir.exec == Exec::kGoto;

    // --- dtype consistency --------------------------------------------
    if (dtype.elem_bytes != ir.elem_bytes) {
        std::ostringstream os;
        os << "IR declares " << ir.elem_bytes << "-byte elements but is "
           << "analysed as " << dtype.name << " (" << dtype.elem_bytes
           << " bytes): every width-dependent bound would lie";
        add_issue(rep, "NUM_DTYPE", os.str());
    }
    if (ir.params.elem_bytes != ir.elem_bytes) {
        std::ostringstream os;
        os << "IR element width (" << ir.elem_bytes
           << ") disagrees with its own plan record (params.elem_bytes = "
           << ir.params.elem_bytes << ")";
        add_issue(rep, "NUM_DTYPE", os.str());
    }

    // --- reconstruct every column's accumulation chain ----------------
    const index_t k = ir.shape.k;
    const index_t k_blk = is_goto ? ir.blocking.kc : ir.params.k_blk;
    const index_t kb =
        is_goto ? (k_blk > 0 ? ceil_div(k, k_blk) : 1) : ir.kb;

    std::map<Col, ColumnWalk> columns;
    std::map<index_t, std::set<Col>> gen_columns;  // CAKE: gen -> columns
    std::set<index_t> compute_gens;                // gens that accumulated
    std::set<index_t> closed_gens;                 // gens a flush retired
    for (const TileOp& op : ir.ops) {
        if (op.kind == OpKind::kCompute) {
            const Col col{op.block.m, op.block.n};
            ColumnWalk& w = columns[col];
            w.kcoords.insert(op.block.k);
            if (!is_goto) {
                for (const TileSpan& s : op.spans) {
                    if (!is_acc_span(ir, s)) continue;
                    w.gens.insert(s.gen);
                    gen_columns[s.gen].insert(col);
                    compute_gens.insert(s.gen);
                }
            }
        } else if (op.kind == OpKind::kFlush && !is_goto) {
            for (const TileSpan& s : op.spans) {
                if (is_acc_span(ir, s) && s.closes_gen) {
                    closed_gens.insert(s.gen);
                }
            }
        }
    }

    // --- NUM_CHAIN: per-column FMA depth must be exactly K ------------
    index_t worst_expected_segments = 1;
    for (const auto& [col, walk] : columns) {
        index_t depth = 0;
        for (const index_t kc : walk.kcoords) {
            depth += k_extent(kc, kb, k_blk, k);
        }
        rep.ir_fma_depth = std::max(rep.ir_fma_depth, depth);
        if (depth != k) {
            std::ostringstream os;
            os << "C column (" << col.first << ", " << col.second
               << ") accumulates to FMA depth " << depth
               << " but the reduction dimension is " << k
               << ": the gamma_n rounding term is computed for the wrong "
               << "chain length";
            add_issue(rep, "NUM_CHAIN", os.str());
        }

        // --- NUM_TURNOVER: spill structure must match the schedule ----
        const index_t expected = is_goto
            ? kb
            : std::max<index_t>(runs_in_order(ir.order, col), 1);
        const index_t segments = is_goto
            ? static_cast<index_t>(walk.kcoords.size())
            : std::max<index_t>(
                  static_cast<index_t>(walk.gens.size()), 1);
        rep.ir_segments = std::max(rep.ir_segments, segments);
        worst_expected_segments =
            std::max(worst_expected_segments, expected);
        if (segments != expected) {
            std::ostringstream os;
            os << "C column (" << col.first << ", " << col.second
               << ") accumulates in " << segments
               << " segment(s) but the schedule order gives it " << expected
               << " run(s): a turnover was dropped or invented, so the "
               << "spill join-add count in the bound is wrong";
            add_issue(rep, "NUM_TURNOVER", os.str());
        }
    }
    for (const auto& [gen, cols] : gen_columns) {
        if (cols.size() > 1) {
            std::ostringstream os;
            os << "accumulator generation " << gen << " mixes "
               << cols.size()
               << " distinct C columns: a column turnover (flush + zero) "
               << "between them was dropped";
            add_issue(rep, "NUM_TURNOVER", os.str());
        }
    }
    for (const index_t gen : compute_gens) {
        if (closed_gens.count(gen) == 0) {
            std::ostringstream os;
            os << "accumulator generation " << gen
               << " receives accumulations but no flush retires it: the "
               << "chain's result never reaches C";
            add_issue(rep, "NUM_TURNOVER", os.str());
        }
    }

    // --- the bound the (clean) plan promises --------------------------
    AccumChain chain;
    chain.fma_depth = k;
    chain.segments = worst_expected_segments;
    chain.extra_adds =
        (chain.segments - 1) + (ir.beta_nonzero ? 1 : 0);
    rep.bound = bound_for_chain(chain, dtype);

    // --- NUM_I8_RANGE: integer accumulator must provably fit ----------
    if (dtype.is_integer && !rep.bound.i32_safe) {
        std::ostringstream os;
        os << "int8 path with K = " << k << ": worst-case |accumulator| = "
           << rep.bound.acc_range << " exceeds int32 range (safe K <= "
           << int8_safe_k() << ")";
        add_issue(rep, "NUM_I8_RANGE", os.str());
    }
    return rep;
}

NumericsReport verify_numerics(const ScheduleIR& ir)
{
    const DtypeDesc* d = dtype_for_elem_bytes(ir.elem_bytes);
    if (d == nullptr) {
        NumericsReport rep;
        std::ostringstream os;
        os << "IR element width " << ir.elem_bytes
           << " maps to no known dtype";
        add_issue(rep, "NUM_DTYPE", os.str());
        return rep;
    }
    return verify_numerics(ir, *d);
}

const char* num_mutation_name(NumMutation m)
{
    switch (m) {
    case NumMutation::kDeepenAccum: return "deepen-accum";
    case NumMutation::kDropTurnover: return "drop-turnover";
    case NumMutation::kLyingDtype: return "lying-dtype";
    }
    return "?";
}

std::string apply_numerics_mutation(ScheduleIR& ir, NumMutation m)
{
    switch (m) {
    case NumMutation::kDeepenAccum: {
        // Duplicate one accumulation band at an out-of-grid K coordinate:
        // the column's chain is now deeper than the reduction dimension.
        for (std::size_t i = 0; i < ir.ops.size(); ++i) {
            if (ir.ops[i].kind != OpKind::kCompute) continue;
            TileOp extra = ir.ops[i];
            const index_t k_blk = ir.exec == Exec::kGoto
                ? ir.blocking.kc
                : ir.params.k_blk;
            extra.block.k = k_blk > 0
                ? ceil_div(ir.shape.k, k_blk)  // first out-of-grid coord
                : ir.kb;
            ir.ops.push_back(std::move(extra));
            return "NUM_CHAIN";
        }
        throw Error("apply_numerics_mutation: no compute op in this IR");
    }
    case NumMutation::kDropTurnover: {
        // Merge accumulator generation G into G-1: delete the zero ops
        // that opened G and the flushes that retired G-1, then relabel.
        // The merged generation now spans two schedule runs (usually two
        // distinct C columns) with no flush between them.
        if (ir.exec == Exec::kGoto) {
            throw Error(
                "apply_numerics_mutation: drop-turnover needs a CAKE IR "
                "(GOTO has no local accumulator)");
        }
        index_t target = -1;
        for (const TileOp& op : ir.ops) {
            for (const TileSpan& s : op.spans) {
                if (is_acc_span(ir, s) && s.gen >= 1
                    && (target < 0 || s.gen < target)) {
                    target = s.gen;
                }
            }
        }
        if (target < 0) {
            throw Error(
                "apply_numerics_mutation: IR has a single accumulator "
                "generation (needs >= 2 columns)");
        }
        auto acc_gen_of = [&ir](const TileOp& op) -> index_t {
            for (const TileSpan& s : op.spans) {
                if (is_acc_span(ir, s)) return s.gen;
            }
            return -1;
        };
        std::vector<TileOp> kept;
        kept.reserve(ir.ops.size());
        for (TileOp& op : ir.ops) {
            const index_t g = acc_gen_of(op);
            if (op.kind == OpKind::kZeroC && g == target) continue;
            if (op.kind == OpKind::kFlush && g == target - 1) continue;
            for (TileSpan& s : op.spans) {
                if (is_acc_span(ir, s) && s.gen == target) {
                    s.gen = target - 1;
                    s.creates_gen = false;
                }
            }
            kept.push_back(std::move(op));
        }
        ir.ops = std::move(kept);
        return "NUM_TURNOVER";
    }
    case NumMutation::kLyingDtype: {
        // Flip the declared element width without touching the plan
        // record: every width-dependent quantity now lies.
        ir.elem_bytes = ir.elem_bytes == 8 ? 4 : 8;
        return "NUM_DTYPE";
    }
    }
    throw Error("apply_numerics_mutation: unknown mutation");
}

}  // namespace numerics
}  // namespace cake
