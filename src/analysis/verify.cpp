#include "analysis/verify.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "memsim/trace.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace schedir {

bool VerifyReport::has(std::string_view code) const
{
    for (const VerifyIssue& issue : issues) {
        if (issue.code == code) return true;
    }
    return false;
}

std::string VerifyReport::codes() const
{
    std::string out;
    for (const VerifyIssue& issue : issues) {
        if (!out.empty()) out += ',';
        out += issue.code;
    }
    return out;
}

namespace {

/// Per-check issue cap: a corrupt IR yields its characteristic diagnosis,
/// not thousands of echoes of the same root cause.
constexpr std::size_t kMaxIssuesPerCheck = 4;

struct IssueSink {
    VerifyReport& report;
    std::size_t count = 0;

    bool full() const { return count >= kMaxIssuesPerCheck; }
    void add(const char* code, const std::string& message)
    {
        if (count++ < kMaxIssuesPerCheck) {
            report.issues.push_back({code, message});
        }
    }
};

std::string describe_op(const ScheduleIR& ir, const TileOp& op)
{
    std::ostringstream os;
    os << op_kind_name(op.kind) << " op (step " << op.step << ", block ("
       << op.block.m << ',' << op.block.n << ',' << op.block.k
       << "), phase " << op.phase;
    if (op.worker >= 0) os << ", worker " << op.worker << " seq " << op.seq;
    os << ')';
    (void)ir;
    return os.str();
}

/// The happens-before structure the barrier skeleton induces: two ops are
/// ordered iff an intact boundary separates their phases, or they share a
/// statically assigned worker inside one phase (program order).
struct OrderCtx {
    std::vector<index_t> epoch_of_phase;

    explicit OrderCtx(const ScheduleIR& ir)
    {
        epoch_of_phase.resize(static_cast<std::size_t>(ir.num_phases), 0);
        index_t epoch = 0;
        for (index_t ph = 1; ph < ir.num_phases; ++ph) {
            if (ir.barrier_intact[static_cast<std::size_t>(ph - 1)] != 0) {
                ++epoch;
            }
            epoch_of_phase[static_cast<std::size_t>(ph)] = epoch;
        }
    }

    index_t epoch(const TileOp& op) const
    {
        return epoch_of_phase[static_cast<std::size_t>(op.phase)];
    }

    bool before(const TileOp& a, const TileOp& b) const
    {
        if (epoch(a) != epoch(b)) return epoch(a) < epoch(b);
        return a.phase == b.phase && a.worker >= 0 && a.worker == b.worker
            && a.seq < b.seq;
    }
};

/// One (op, span) pair inside a generation group.
struct GroupEntry {
    std::size_t op = 0;
    std::size_t span = 0;
};

/// All accesses of one (buffer, slot, generation), the unit of the order /
/// race / lifetime obligations.
using GenKey = std::tuple<int, int, index_t>;
using GenGroups = std::map<GenKey, std::vector<GroupEntry>>;

GenGroups group_by_generation(const ScheduleIR& ir)
{
    GenGroups groups;
    for (std::size_t oi = 0; oi < ir.ops.size(); ++oi) {
        const TileOp& op = ir.ops[oi];
        for (std::size_t si = 0; si < op.spans.size(); ++si) {
            const TileSpan& s = op.spans[si];
            groups[{s.buffer, s.slot, s.gen}].push_back({oi, si});
        }
    }
    return groups;
}

// ---------------------------------------------------------------- checks

void check_malformed(const ScheduleIR& ir, VerifyReport& report)
{
    IssueSink sink{report};
    if (ir.shape.m < 1 || ir.shape.n < 1 || ir.shape.k < 1) {
        sink.add("IR_MALFORMED", "non-positive GEMM shape");
    }
    if (ir.expected_accums < 1) {
        sink.add("IR_MALFORMED", "expected_accums must be >= 1");
    }
    if (ir.num_phases < 1 || ir.ops.empty() || ir.buffers.empty()) {
        sink.add("IR_MALFORMED", "IR has no phases, ops or buffers");
    }
    const auto boundaries = static_cast<std::size_t>(
        ir.num_phases > 0 ? ir.num_phases - 1 : 0);
    if (ir.barrier_intact.size() != boundaries
        || ir.barrier_label.size() != boundaries) {
        sink.add("IR_MALFORMED",
                 "barrier arrays not sized to the phase count");
    }
    for (const TileOp& op : ir.ops) {
        if (sink.full()) return;
        if (op.phase < 0 || op.phase >= ir.num_phases) {
            sink.add("IR_MALFORMED",
                     describe_op(ir, op) + ": phase out of range");
            continue;
        }
        for (const TileSpan& s : op.spans) {
            const bool buf_ok = s.buffer >= 0
                && s.buffer < static_cast<int>(ir.buffers.size());
            if (!buf_ok) {
                sink.add("IR_MALFORMED",
                         describe_op(ir, op) + ": span buffer out of range");
                break;
            }
            const Buffer& buf = ir.buffers[static_cast<std::size_t>(
                s.buffer)];
            if (s.slot < 0 || s.slot >= buf.slots || s.gen < 0
                || s.r0 > s.r1 || s.c0 > s.c1) {
                sink.add("IR_MALFORMED",
                         describe_op(ir, op) + ": bad span on " + buf.name);
                break;
            }
        }
    }
}

/// IR_ORDER: creating writes strictly precede every other access of their
/// generation; closing reads strictly follow every write.
void check_order(const ScheduleIR& ir, const GenGroups& groups,
                 const OrderCtx& ord, VerifyReport& report)
{
    IssueSink sink{report};
    for (const auto& [key, entries] : groups) {
        std::vector<std::size_t> creators, closers, writers, others;
        for (const GroupEntry& e : entries) {
            const TileSpan& s = ir.ops[e.op].spans[e.span];
            if (s.creates_gen) {
                creators.push_back(e.op);
            } else {
                others.push_back(e.op);
            }
            if (s.closes_gen) closers.push_back(e.op);
            if (!s.creates_gen && !s.closes_gen
                && s.access != Access::kRead) {
                writers.push_back(e.op);
            }
        }
        const Buffer& buf =
            ir.buffers[static_cast<std::size_t>(std::get<0>(key))];
        for (const std::size_t c : creators) {
            for (const std::size_t o : others) {
                if (sink.full()) return;
                if (!ord.before(ir.ops[c], ir.ops[o])) {
                    sink.add("IR_ORDER",
                             buf.name + " slot "
                                 + std::to_string(std::get<1>(key)) + " gen "
                                 + std::to_string(std::get<2>(key)) + ": "
                                 + describe_op(ir, ir.ops[o])
                                 + " not ordered after creating "
                                 + describe_op(ir, ir.ops[c]));
                }
            }
        }
        for (const std::size_t x : closers) {
            for (const std::size_t w : writers) {
                if (sink.full()) return;
                if (!ord.before(ir.ops[w], ir.ops[x])) {
                    sink.add("IR_ORDER",
                             buf.name + " gen "
                                 + std::to_string(std::get<2>(key))
                                 + ": closing " + describe_op(ir, ir.ops[x])
                                 + " not ordered after "
                                 + describe_op(ir, ir.ops[w]));
                }
            }
        }
    }
}

/// IR_RACE_WW / IR_RACE_RW: within one epoch, two unordered ops touch an
/// overlapping rect of the same generation and at least one writes.
void check_races(const ScheduleIR& ir, const GenGroups& groups,
                 const OrderCtx& ord, VerifyReport& report)
{
    IssueSink sink{report};
    struct RectRef {
        index_t r0, r1, c0, c1;
        bool writes;
        std::size_t op;
    };
    for (const auto& [key, entries] : groups) {
        // Bucket by epoch: cross-epoch pairs are barrier-ordered.
        std::map<index_t, std::vector<RectRef>> by_epoch;
        bool any_write = false;
        for (const GroupEntry& e : entries) {
            const TileOp& op = ir.ops[e.op];
            const TileSpan& s = op.spans[e.span];
            const bool w = s.access != Access::kRead;
            any_write = any_write || w;
            by_epoch[ord.epoch(op)].push_back(
                {s.r0, s.r1, s.c0, s.c1, w, e.op});
        }
        if (!any_write) continue;
        const Buffer& buf =
            ir.buffers[static_cast<std::size_t>(std::get<0>(key))];
        for (auto& [epoch, rects] : by_epoch) {
            (void)epoch;
            if (rects.size() < 2) continue;
            std::sort(rects.begin(), rects.end(),
                      [](const RectRef& a, const RectRef& b) {
                          return a.r0 < b.r0;
                      });
            for (std::size_t i = 0; i < rects.size(); ++i) {
                for (std::size_t j = i + 1; j < rects.size()
                     && rects[j].r0 < rects[i].r1;
                     ++j) {
                    const RectRef& a = rects[i];
                    const RectRef& bq = rects[j];
                    if (sink.full()) return;
                    if (!(a.writes || bq.writes)) continue;
                    if (a.c1 <= bq.c0 || bq.c1 <= a.c0) continue;
                    if (a.op == bq.op) continue;
                    const TileOp& oa = ir.ops[a.op];
                    const TileOp& ob = ir.ops[bq.op];
                    if (ord.before(oa, ob) || ord.before(ob, oa)) continue;
                    const char* code = (a.writes && bq.writes)
                        ? "IR_RACE_WW"
                        : "IR_RACE_RW";
                    sink.add(code,
                             buf.name + " gen "
                                 + std::to_string(std::get<2>(key)) + ": "
                                 + describe_op(ir, oa) + " races "
                                 + describe_op(ir, ob));
                }
            }
        }
    }
}

/// IR_LIFETIME: every access to a generation is ordered before the writes
/// that recycle its slot (the next generation's creators). Adjacent
/// generations suffice: ordering is transitive along the chain.
void check_lifetimes(const ScheduleIR& ir, const GenGroups& groups,
                     const OrderCtx& ord, VerifyReport& report)
{
    IssueSink sink{report};
    // (buffer, slot) -> sorted list of generations present.
    std::map<std::pair<int, int>, std::vector<index_t>> slot_gens;
    for (const auto& [key, entries] : groups) {
        (void)entries;
        slot_gens[{std::get<0>(key), std::get<1>(key)}].push_back(
            std::get<2>(key));
    }
    for (const auto& [slot_key, gens] : slot_gens) {
        for (std::size_t gi = 0; gi + 1 < gens.size(); ++gi) {
            const auto& cur = groups.at(
                {slot_key.first, slot_key.second, gens[gi]});
            const auto& next = groups.at(
                {slot_key.first, slot_key.second, gens[gi + 1]});
            const Buffer& buf = ir.buffers[static_cast<std::size_t>(
                slot_key.first)];
            for (const GroupEntry& ne : next) {
                if (!ir.ops[ne.op].spans[ne.span].creates_gen) continue;
                for (const GroupEntry& ce : cur) {
                    if (sink.full()) return;
                    if (ce.op == ne.op) continue;
                    if (!ord.before(ir.ops[ce.op], ir.ops[ne.op])) {
                        sink.add(
                            "IR_LIFETIME",
                            buf.name + " slot "
                                + std::to_string(slot_key.second) + ": "
                                + describe_op(ir, ir.ops[ce.op])
                                + " (gen " + std::to_string(gens[gi])
                                + ") not ordered before recycling "
                                + describe_op(ir, ir.ops[ne.op]) + " (gen "
                                + std::to_string(gens[gi + 1]) + ")");
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------- coverage

/// Sparse 2D multiplicity map over half-open rects, resolved on a
/// compressed coordinate grid (2D difference array).
class CoverMap {
public:
    struct Cell {
        index_t r0, r1, c0, c1;
        long long count;
    };

    void add(index_t r0, index_t r1, index_t c0, index_t c1, long long w)
    {
        if (r0 >= r1 || c0 >= c1) return;
        rects_.push_back({r0, r1, c0, c1, w});
    }

    std::vector<Cell> resolve() const
    {
        std::vector<index_t> rs, cs;
        rs.reserve(rects_.size() * 2);
        cs.reserve(rects_.size() * 2);
        for (const Cell& r : rects_) {
            rs.push_back(r.r0);
            rs.push_back(r.r1);
            cs.push_back(r.c0);
            cs.push_back(r.c1);
        }
        std::sort(rs.begin(), rs.end());
        rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
        std::sort(cs.begin(), cs.end());
        cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
        if (rs.size() < 2 || cs.size() < 2) return {};
        auto ridx = [&](index_t v) {
            return static_cast<std::size_t>(
                std::lower_bound(rs.begin(), rs.end(), v) - rs.begin());
        };
        auto cidx = [&](index_t v) {
            return static_cast<std::size_t>(
                std::lower_bound(cs.begin(), cs.end(), v) - cs.begin());
        };
        std::vector<std::vector<long long>> diff(
            rs.size(), std::vector<long long>(cs.size(), 0));
        for (const Cell& r : rects_) {
            if (r.count == 0) continue;
            const std::size_t r0 = ridx(r.r0), r1 = ridx(r.r1);
            const std::size_t c0 = cidx(r.c0), c1 = cidx(r.c1);
            diff[r0][c0] += r.count;
            diff[r0][c1] -= r.count;
            diff[r1][c0] -= r.count;
            diff[r1][c1] += r.count;
        }
        std::vector<Cell> cells;
        cells.reserve((rs.size() - 1) * (cs.size() - 1));
        std::vector<long long> col_acc(cs.size(), 0);
        for (std::size_t i = 0; i + 1 < rs.size(); ++i) {
            long long acc = 0;
            for (std::size_t j = 0; j + 1 < cs.size(); ++j) {
                col_acc[j] += diff[i][j];
                acc += col_acc[j];
                cells.push_back(
                    {rs[i], rs[i + 1], cs[j], cs[j + 1], acc});
            }
            col_acc[cs.size() - 1] += diff[i][cs.size() - 1];
        }
        return cells;
    }

private:
    std::vector<Cell> rects_;
};

/// IR_COVER: every user-C element receives exactly expected_accums
/// accumulations. CAKE accumulations land in local-C generations and reach
/// user C through the flush that closes the generation; GOTO compute ops
/// write user C directly.
void check_cover(const ScheduleIR& ir, VerifyReport& report)
{
    IssueSink sink{report};
    int acc_buf = -1, user_c = -1;
    for (std::size_t i = 0; i < ir.buffers.size(); ++i) {
        if (ir.buffers[i].kind == BufKind::kAccC) {
            acc_buf = static_cast<int>(i);
        }
        if (ir.buffers[i].kind == BufKind::kUserC) {
            user_c = static_cast<int>(i);
        }
    }
    if (user_c < 0) {
        sink.add("IR_MALFORMED", "IR has no user-C buffer");
        return;
    }
    const index_t nr = ir.params.nr > 0 ? ir.params.nr : 1;

    CoverMap user_map;
    user_map.add(0, ir.shape.m, 0, ir.shape.n, 0);  // pin the full domain

    // Direct accumulations (GOTO): compute writes into user C.
    for (const TileOp& op : ir.ops) {
        if (op.kind != OpKind::kCompute) continue;
        for (const TileSpan& s : op.spans) {
            if (s.buffer == user_c && s.access != Access::kRead) {
                user_map.add(s.r0, s.r1, s.c0, s.c1, 1);
            }
        }
    }

    if (acc_buf >= 0) {
        // Local-C accumulations, transferred through the closing flushes.
        struct Closer {
            index_t fr0, fr1;  ///< local-C rows the flush op retires
            index_t ur0, uc0;  ///< user-C destination of local row fr0
            index_t ni;        ///< flushed column width (elements)
        };
        std::map<index_t, std::vector<Closer>> closers_of_gen;
        std::map<index_t, CoverMap> accum_of_gen;
        for (const TileOp& op : ir.ops) {
            if (op.kind == OpKind::kFlush) {
                Closer cl{};
                index_t gen = -1;
                bool have_user = false;
                for (const TileSpan& s : op.spans) {
                    if (s.buffer == acc_buf && s.closes_gen) {
                        gen = s.gen;
                        cl.fr0 = s.r0;
                        cl.fr1 = s.r1;
                    } else if (s.buffer == user_c) {
                        cl.ur0 = s.r0;
                        cl.uc0 = s.c0;
                        cl.ni = s.c1 - s.c0;
                        have_user = true;
                    }
                }
                if (gen >= 0 && have_user) {
                    closers_of_gen[gen].push_back(cl);
                }
            } else if (op.kind == OpKind::kCompute) {
                for (const TileSpan& s : op.spans) {
                    if (s.buffer == acc_buf
                        && s.access == Access::kReadWrite) {
                        // Columns are nr slivers; widths resolve at
                        // transfer time when the flush supplies ni.
                        accum_of_gen[s.gen].add(s.r0, s.r1, s.c0 * nr,
                                                s.c1 * nr, 1);
                    }
                }
            }
        }
        for (auto& [gen, gmap] : accum_of_gen) {
            const auto it = closers_of_gen.find(gen);
            if (it == closers_of_gen.end()) continue;  // never flushed:
                                                       // shortfall below
            for (const CoverMap::Cell& cell : gmap.resolve()) {
                if (cell.count == 0) continue;
                for (const Closer& cl : it->second) {
                    const index_t r0 = std::max(cell.r0, cl.fr0);
                    const index_t r1 = std::min(cell.r1, cl.fr1);
                    if (r0 >= r1) continue;
                    const index_t c0 = std::min(cell.c0, cl.ni);
                    const index_t c1 = std::min(cell.c1, cl.ni);
                    user_map.add(cl.ur0 + (r0 - cl.fr0),
                                 cl.ur0 + (r1 - cl.fr0), cl.uc0 + c0,
                                 cl.uc0 + c1, cell.count);
                }
            }
        }
    }

    const auto expected = static_cast<long long>(ir.expected_accums);
    for (const CoverMap::Cell& cell : user_map.resolve()) {
        if (sink.full()) return;
        if (cell.count != expected) {
            std::ostringstream os;
            os << "user C [" << cell.r0 << ',' << cell.r1 << ")x["
               << cell.c0 << ',' << cell.c1 << ") accumulated "
               << cell.count << " times, expected " << expected;
            sink.add("IR_COVER", os.str());
        }
    }
}

// ------------------------------------------------------------ IO checks

index_t clip(index_t coord, index_t blk, index_t total)
{
    return std::min(blk, total - coord * blk);
}

/// IR_IO_MODEL: re-derive the paper's surface-traffic model (Eq. 2 rules:
/// fetch a surface iff the schedule does not carry it over; spill partial
/// C and refetch on revisit) directly from the block order, independently
/// of build_block_plan, and require byte-exact agreement. Also require the
/// IR's fetch-event counts to match schedule_traffic's surface counts.
void check_io_model(const ScheduleIR& ir, VerifyReport& report)
{
    IssueSink sink{report};
    const IoTotals got = io_totals(ir);
    IoTotals want;

    if (ir.exec == Exec::kGoto) {
        const auto e = static_cast<std::uint64_t>(ir.elem_bytes);
        const auto m = static_cast<std::uint64_t>(ir.shape.m);
        for (index_t jc = 0; jc < ir.shape.n; jc += ir.blocking.nc) {
            const auto ncur = static_cast<std::uint64_t>(
                std::min(ir.blocking.nc, ir.shape.n - jc));
            for (index_t pc = 0; pc < ir.shape.k; pc += ir.blocking.kc) {
                const auto kcur = static_cast<std::uint64_t>(
                    std::min(ir.blocking.kc, ir.shape.k - pc));
                want.b_read += kcur * ncur * e;
                want.a_read += m * kcur * e;
                want.c_write += m * ncur * e;
                if (ir.beta_nonzero || pc > 0) {
                    want.c_rmw_read += m * ncur * e;
                }
            }
        }
    } else {
        const auto e = static_cast<std::uint64_t>(ir.elem_bytes);
        const auto col_of = [&](const BlockCoord& c) {
            return c.m * ir.nb + c.n;
        };
        std::vector<char> flushed(
            static_cast<std::size_t>(ir.mb * ir.nb), 0);
        bool entered_flushed = false;
        index_t reloads = 0;
        for (std::size_t i = 0; i < ir.order.size(); ++i) {
            const BlockCoord& cur = ir.order[i];
            const SurfaceSharing sh = i == 0
                ? SurfaceSharing{}
                : shared_surfaces(ir.order[i - 1], cur);
            const auto mi = static_cast<std::uint64_t>(
                clip(cur.m, ir.params.m_blk, ir.shape.m));
            const auto ni = static_cast<std::uint64_t>(
                clip(cur.n, ir.params.n_blk, ir.shape.n));
            const auto ki = static_cast<std::uint64_t>(
                clip(cur.k, ir.params.k_blk, ir.shape.k));
            if (!sh.a) want.a_read += mi * ki * e;
            if (!sh.b) want.b_read += ki * ni * e;
            if (!sh.c) {
                if (i > 0) {
                    const BlockCoord& prev = ir.order[i - 1];
                    const auto pm = static_cast<std::uint64_t>(
                        clip(prev.m, ir.params.m_blk, ir.shape.m));
                    const auto pn = static_cast<std::uint64_t>(
                        clip(prev.n, ir.params.n_blk, ir.shape.n));
                    want.c_write += pm * pn * e;
                    if (entered_flushed || ir.beta_nonzero) {
                        want.c_rmw_read += pm * pn * e;
                    }
                    flushed[static_cast<std::size_t>(col_of(prev))] = 1;
                }
                entered_flushed =
                    flushed[static_cast<std::size_t>(col_of(cur))] != 0;
                if (entered_flushed) {
                    want.c_reload_read += mi * ni * e;
                    ++reloads;
                }
            }
        }
        if (!ir.order.empty()) {
            const BlockCoord& last = ir.order.back();
            const auto pm = static_cast<std::uint64_t>(
                clip(last.m, ir.params.m_blk, ir.shape.m));
            const auto pn = static_cast<std::uint64_t>(
                clip(last.n, ir.params.n_blk, ir.shape.n));
            want.c_write += pm * pn * e;
            if (entered_flushed || ir.beta_nonzero) {
                want.c_rmw_read += pm * pn * e;
            }
        }

        // Fetch-EVENT counts against the abstract schedule ranking.
        const ScheduleTraffic traffic = schedule_traffic(ir.order);
        index_t a_events = 0, b_events = 0, reload_events = 0;
        {
            index_t max_a = -1, max_b = -1;
            for (const TileOp& op : ir.ops) {
                if (op.kind == OpKind::kStreamB) ++b_events;
                if (op.kind == OpKind::kZeroC && op.dram_read_bytes > 0) {
                    ++reload_events;
                }
                for (const TileSpan& s : op.spans) {
                    if (!s.creates_gen) continue;
                    if (op.kind == OpKind::kPackA) {
                        max_a = std::max(max_a, s.gen);
                    }
                    if (op.kind == OpKind::kPackB) {
                        max_b = std::max(max_b, s.gen);
                    }
                }
            }
            a_events = max_a + 1;
            if (!ir.use_prepacked) b_events = max_b + 1;
        }
        if (a_events != traffic.a_fetches || b_events != traffic.b_fetches
            || reload_events != traffic.c_spills) {
            std::ostringstream os;
            os << "fetch events (A " << a_events << ", B " << b_events
               << ", C spills " << reload_events
               << ") disagree with schedule_traffic (A "
               << traffic.a_fetches << ", B " << traffic.b_fetches
               << ", C " << traffic.c_spills << ')';
            sink.add("IR_IO_MODEL", os.str());
        }
        if (reloads != reload_events && sink.count == 0) {
            sink.add("IR_IO_MODEL", "reload walk disagrees with IR events");
        }
    }

    const auto cmp = [&](const char* name, std::uint64_t g,
                         std::uint64_t w) {
        if (g == w || sink.full()) return;
        std::ostringstream os;
        os << name << ": IR models " << g << " bytes, analytic model says "
           << w;
        sink.add("IR_IO_MODEL", os.str());
    };
    cmp("A reads", got.a_read, want.a_read);
    cmp("B reads", got.b_read, want.b_read);
    cmp("C writebacks", got.c_write, want.c_write);
    cmp("C RMW reads", got.c_rmw_read, want.c_rmw_read);
    cmp("C reload reads", got.c_reload_read, want.c_reload_read);
}

/// IR_IO_CONSTBW: on the fully-sharing schedules (serpentine, and the
/// Hilbert traversal whose cells are always grid-adjacent with K carried
/// across) every interior k-advancing step of a full-size column fetches
/// exactly (m_blk + n_blk) * k_blk elements — the constant-bandwidth
/// block property of §3.
void check_constbw(const ScheduleIR& ir, VerifyReport& report)
{
    if (ir.exec == Exec::kGoto
        || (ir.schedule != ScheduleKind::kKFirstSerpentine
            && ir.schedule != ScheduleKind::kHilbert)) {
        return;
    }
    IssueSink sink{report};
    std::map<index_t, std::uint64_t> fetch_of_step;
    for (const TileOp& op : ir.ops) {
        if (op.kind == OpKind::kPackA || op.kind == OpKind::kPackB
            || op.kind == OpKind::kStreamB) {
            fetch_of_step[op.step] += op.dram_read_bytes;
        }
    }
    const std::uint64_t constant =
        static_cast<std::uint64_t>(ir.params.m_blk + ir.params.n_blk)
        * static_cast<std::uint64_t>(ir.params.k_blk)
        * static_cast<std::uint64_t>(ir.elem_bytes);
    for (std::size_t i = 1; i < ir.order.size(); ++i) {
        if (sink.full()) return;
        const BlockCoord& prev = ir.order[i - 1];
        const BlockCoord& cur = ir.order[i];
        if (cur.m != prev.m || cur.n != prev.n || cur.k == prev.k) continue;
        if (clip(cur.m, ir.params.m_blk, ir.shape.m) != ir.params.m_blk
            || clip(cur.n, ir.params.n_blk, ir.shape.n) != ir.params.n_blk
            || clip(cur.k, ir.params.k_blk, ir.shape.k)
                != ir.params.k_blk) {
            continue;
        }
        const auto step = static_cast<index_t>(i);
        const auto it = fetch_of_step.find(step);
        const std::uint64_t got = it == fetch_of_step.end() ? 0 : it->second;
        if (got != constant) {
            std::ostringstream os;
            os << schedule_kind_name(ir.schedule) << " step " << step
               << " fetches " << got
               << " bytes; constant-bandwidth block promises " << constant;
            sink.add("IR_IO_CONSTBW", os.str());
        }
    }
}

}  // namespace

VerifyReport verify_schedule_ir(const ScheduleIR& ir)
{
    VerifyReport report;
    check_malformed(ir, report);
    if (!report.ok()) return report;  // don't analyse a broken structure

    const OrderCtx ord(ir);
    const GenGroups groups = group_by_generation(ir);
    check_order(ir, groups, ord, report);
    check_races(ir, groups, ord, report);
    check_lifetimes(ir, groups, ord, report);
    check_cover(ir, report);
    check_io_model(ir, report);
    check_constbw(ir, report);
    return report;
}

namespace {

/// Classifies each traced access by AddressMap region and totals the
/// external-surface bytes; staging-buffer traffic is local memory.
class CountingSink final : public memsim::TraceSink {
public:
    std::uint64_t a_read = 0, b_read = 0, c_read = 0, c_write = 0;

    void access(int core, std::uint64_t addr, std::uint32_t bytes,
                bool write) override
    {
        (void)core;
        switch (addr >> 32) {
        case 1:
            if (!write) a_read += bytes;
            break;
        case 2:
            if (!write) b_read += bytes;
            break;
        case 3:
            (write ? c_write : c_read) += bytes;
            break;
        default:
            break;  // pack_a / pack_b / c_block: on-chip staging
        }
    }
};

}  // namespace

VerifyReport cross_check_memsim(const ScheduleIR& ir)
{
    VerifyReport report;
    IssueSink sink{report};
    if (ir.use_prepacked || ir.beta_nonzero) {
        sink.add("IR_MALFORMED",
                 "memsim cross-check requires a non-prepacked, "
                 "beta == 0 IR");
        return report;
    }
    CountingSink counts;
    if (ir.exec == Exec::kGoto) {
        memsim::trace_goto(ir.shape, ir.blocking, ir.p, ir.params.mr,
                           ir.params.nr, ir.elem_bytes, counts);
    } else {
        memsim::trace_cake(ir.shape, ir.params, ir.schedule, counts);
    }
    const IoTotals io = io_totals(ir);
    const auto cmp = [&](const char* name, std::uint64_t ir_bytes,
                         std::uint64_t trace_bytes) {
        if (ir_bytes == trace_bytes || sink.full()) return;
        std::ostringstream os;
        os << name << ": IR models " << ir_bytes
           << " bytes, memsim trace issues " << trace_bytes;
        sink.add("IR_IO_MEMSIM", os.str());
    };
    cmp("A reads", io.a_read, counts.a_read);
    cmp("B reads", io.b_read, counts.b_read);
    cmp("C writebacks", io.c_write, counts.c_write);
    cmp("C RMW reads", io.c_rmw_read, counts.c_read);
    return report;
}

}  // namespace schedir
}  // namespace cake
