// Deterministic schedule fuzzer ("schedshake") for the pipelined executor.
//
// TSan and the racecheck auditor can only judge the interleavings that
// actually run, and an idle machine reliably produces the same friendly
// ones: workers cross each barrier together and claim work items in near
// lock-step. schedshake perturbs that. The executor and SpinBarrier
// declare *interleave points* — barrier entry/exit, the work-item claim
// loop, item bodies — and when a fuzz run is configured, each point rolls
// a per-thread deterministic RNG to decide whether to yield, pause-spin or
// briefly sleep there. The streams are pure functions of (seed, team tid),
// so a failing seed replays the same perturbation decisions exactly;
// tools/cake_schedshake prints the seed of any failure for replay.
//
// Enabled only in CAKE_RACECHECK builds; otherwise every entry point is a
// constexpr no-op and release objects carry no schedshake symbol (same nm
// contract as racecheck.hpp / checked.hpp).
#pragma once

#include <cstdint>

#if defined(CAKE_RACECHECK) && CAKE_RACECHECK
#define CAKE_SCHEDSHAKE_ENABLED 1
#else
#define CAKE_SCHEDSHAKE_ENABLED 0
#endif

namespace cake {
namespace schedshake {

/// Declared interleave points. The point identity is part of the RNG roll,
/// so e.g. barrier entries and item claims perturb independently.
enum class Point : int {
    kBarrierArrive = 0,
    kBarrierDepart,
    kPhaseClaim,   ///< about to claim a work item off the phase counter
    kPackItem,     ///< about to run a pack work item
    kComputeItem,  ///< about to run a compute work item
    kFlushItem,    ///< about to run a flush/zero work item
};

#if CAKE_SCHEDSHAKE_ENABLED

/// Arm the fuzzer: every interleave point perturbs with probability
/// `intensity_percent`/100, with decisions drawn from per-thread streams
/// derived from `seed`. Threads re-derive their stream on the first point
/// they hit after each configure() call.
void configure(std::uint64_t seed, int intensity_percent);

/// Disarm the fuzzer; interleave points return to plain fall-through.
void disable();

[[nodiscard]] bool active() noexcept;

/// Perturbations injected since the last configure() (for tests).
[[nodiscard]] std::uint64_t injected_count() noexcept;

void interleave_point(Point point);

#else  // !CAKE_SCHEDSHAKE_ENABLED

constexpr void configure(std::uint64_t /*seed*/, int /*intensity_percent*/)
{
}
constexpr void disable() {}
[[nodiscard]] constexpr bool active() noexcept { return false; }
[[nodiscard]] constexpr std::uint64_t injected_count() noexcept { return 0; }
constexpr void interleave_point(Point /*point*/) {}

#endif  // CAKE_SCHEDSHAKE_ENABLED

}  // namespace schedshake
}  // namespace cake
