#include "analysis/schedshake.hpp"

#if CAKE_SCHEDSHAKE_ENABLED

#include <atomic>
#include <chrono>
#include <thread>

#include "analysis/racecheck.hpp"

namespace cake {
namespace schedshake {

namespace {

// Armed configuration. The epoch bumps on every configure() so threads
// notice and re-derive their stream from (seed, team tid); seed and
// intensity are written before the epoch (release) and read after it
// (acquire), so a thread that observes the new epoch observes the new
// configuration too.
std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_epoch{0};
std::atomic<std::uint64_t> g_seed{0};
std::atomic<int> g_intensity{0};
std::atomic<std::uint64_t> g_injected{0};

/// splitmix64: tiny, well-mixed, and trivially reproducible across
/// platforms — exactly what seed replay needs.
std::uint64_t splitmix64(std::uint64_t& state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

void pause_spin(std::uint64_t iters)
{
    for (std::uint64_t i = 0; i < iters; ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield" ::: "memory");
#else
        std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }
}

}  // namespace

void configure(std::uint64_t seed, int intensity_percent)
{
    g_seed.store(seed, std::memory_order_relaxed);
    g_intensity.store(intensity_percent, std::memory_order_relaxed);
    g_injected.store(0, std::memory_order_relaxed);
    g_epoch.fetch_add(1, std::memory_order_release);
    g_active.store(true, std::memory_order_release);
}

void disable()
{
    g_active.store(false, std::memory_order_release);
}

bool active() noexcept
{
    return g_active.load(std::memory_order_acquire);
}

std::uint64_t injected_count() noexcept
{
    return g_injected.load(std::memory_order_acquire);
}

void interleave_point(Point point)
{
    if (!g_active.load(std::memory_order_acquire)) return;

    thread_local std::uint64_t rng_state = 0;
    thread_local std::uint64_t seen_epoch = ~std::uint64_t{0};
    const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
    if (epoch != seen_epoch) {
        seen_epoch = epoch;
        // Stream identity: (seed, team tid). Keyed by tid rather than an
        // OS thread id so a replay with the same seed gives each team slot
        // the same decision sequence regardless of which pool thread runs
        // it.
        const auto tid = static_cast<std::uint64_t>(racecheck::current_tid());
        rng_state = g_seed.load(std::memory_order_acquire)
            ^ (0x51ED2701A42F9E6Dull * (tid + 2));
    }

    std::uint64_t roll = splitmix64(rng_state);
    roll ^= static_cast<std::uint64_t>(point) * 0x2545F4914F6CDD1Dull;
    const auto intensity =
        static_cast<std::uint64_t>(g_intensity.load(std::memory_order_relaxed));
    if (roll % 100 >= intensity) return;

    g_injected.fetch_add(1, std::memory_order_relaxed);
    switch ((roll >> 32) % 8) {
        case 0:
        case 1:
        case 2:
        case 3:
            std::this_thread::yield();
            break;
        case 4:
        case 5:
        case 6:
            pause_spin(((roll >> 35) % 2048) + 64);
            break;
        default:
            std::this_thread::sleep_for(
                std::chrono::microseconds(((roll >> 40) % 32) + 1));
            break;
    }
}

}  // namespace schedshake
}  // namespace cake

#endif  // CAKE_SCHEDSHAKE_ENABLED
