// Static numerics verifier: an abstract-interpretation pass over the
// schedule IR that proves an extracted schedule realises the per-plan
// floating-point error bound (core/fperror.hpp) its dtype and geometry
// promise.
//
// The byte-level verifier (verify.hpp) proves WHERE data moves; this pass
// proves HOW MUCH rounding the moves imply. It walks every C column's
// accumulation chain as the IR records it — compute ops grouped by
// (m, n) column, their K coordinates, and the local-accumulator
// generations that delimit in-cache accumulation runs — and checks the
// realised structure against what the plan's shape, blocking and schedule
// order require:
//
//   NUM_DTYPE     the IR's element width disagrees with the dtype it is
//                 analysed as, or its own params record (a lying dtype
//                 would invalidate every width-dependent bound).
//   NUM_CHAIN     a C column's total FMA depth (sum of per-K-block run
//                 lengths over its distinct K coordinates) is not K:
//                 the chain was deepened or shortened, so the gamma_n
//                 term of the bound is wrong.
//   NUM_TURNOVER  the spill/turnover structure disagrees with the
//                 schedule: a column's accumulator-generation count does
//                 not match its run count in the block order, one
//                 generation mixes two C columns, or a generation that
//                 accumulated is never retired by a flush.
//   NUM_I8_RANGE  integer path: the worst-case i32 accumulator range
//                 k * 127 * 127 does not provably fit an int32.
//
// Like the rest of cake::schedir this is analysis-only: it is compiled
// into the cake_schedir library (tests/tools configurations) and the
// release nm gate proves no cake::numerics symbol reaches release
// objects. The bound arithmetic itself lives in src/core/fperror.hpp so
// release builds (the autotuner's accuracy gate) share one derivation.
#pragma once

#include <string>
#include <vector>

#include "analysis/schedir.hpp"
#include "core/fperror.hpp"

namespace cake {
namespace numerics {

struct NumericsIssue {
    std::string code;     ///< NUM_DTYPE | NUM_CHAIN | NUM_TURNOVER | NUM_I8_RANGE
    std::string message;  ///< human-readable diagnosis
};

struct NumericsReport {
    /// The bound the plan promises (and, when ok(), provably realises).
    PlanErrorBound bound;
    index_t ir_fma_depth = 0;  ///< worst per-element FMA depth found in IR
    index_t ir_segments = 0;   ///< worst per-element accumulation segments
    std::vector<NumericsIssue> issues;

    [[nodiscard]] bool ok() const { return issues.empty(); }
    [[nodiscard]] bool has(const std::string& code) const;
    [[nodiscard]] std::string codes() const;  ///< "NUM_A,NUM_B" for messages
};

/// Verify `ir`'s accumulation structure against `dtype` and derive the
/// plan's error bound. Works for all three executors (serial, pipelined,
/// GOTO).
NumericsReport verify_numerics(const schedir::ScheduleIR& ir,
                               const DtypeDesc& dtype);

/// Convenience overload: resolve the dtype from ir.elem_bytes (NUM_DTYPE
/// if the width maps to no known dtype).
NumericsReport verify_numerics(const schedir::ScheduleIR& ir);

/// Deterministic numerics corruptions, each caught by exactly one code.
enum class NumMutation {
    kDeepenAccum,   ///< extra out-of-grid accumulation -> NUM_CHAIN
    kDropTurnover,  ///< merge two accumulator generations -> NUM_TURNOVER
    kLyingDtype,    ///< flip ir.elem_bytes, keep params -> NUM_DTYPE
};
const char* num_mutation_name(NumMutation m);
constexpr int kNumMutationCount = 3;

/// Corrupt `ir` in place; returns the diagnostic code verify_numerics
/// MUST now emit (and never emits for the clean IR). Throws cake::Error
/// when the IR has no site for the mutation (e.g. kDropTurnover on a
/// single-column or GOTO IR).
std::string apply_numerics_mutation(schedir::ScheduleIR& ir, NumMutation m);

}  // namespace numerics
}  // namespace cake
