// Stable host fingerprint: the identity under which empirical tuning
// results are stored and recalled (src/tune). Two runs on the same
// machine must produce the same key; a different CPU, core count, cache
// hierarchy or assumed DRAM bandwidth must produce a different key, so a
// migrated cache file degrades to a clean miss instead of replaying plans
// tuned for different hardware.
#pragma once

#include <cstddef>
#include <string>

#include "kernel/cpu_features.hpp"
#include "machine/machine.hpp"

namespace cake {

/// Identity of the executing host, as coarse as tuning validity requires.
struct MachineFingerprint {
    std::string cpu_brand;      ///< CPUID brand string ("unknown-cpu" off-x86)
    Isa best_isa = Isa::kScalar;  ///< widest ISA the CPU + OS support
    int cores = 1;              ///< hardware concurrency
    std::size_t l1_bytes = 0;   ///< per-core L1d capacity
    std::size_t l2_bytes = 0;   ///< deepest private-level capacity
    std::size_t llc_bytes = 0;  ///< shared last-level capacity
    double dram_bw_gbs = 0.0;   ///< assumed external bandwidth (solver input)

    /// Canonical single-line key, e.g.
    /// "intel-r-core-tm-i9-10900k|avx512|c10|l1:32768|l2:262144|llc:20971520|bw:40".
    /// Stable across runs and safe as a map key or file-name stem.
    [[nodiscard]] std::string key() const;

    /// The fingerprint as a JSON object (one line, no trailing newline) —
    /// embedded in bench headers and in the tuning-cache file.
    [[nodiscard]] std::string json() const;

    friend bool operator==(const MachineFingerprint&,
                           const MachineFingerprint&) = default;
};

/// CPUID brand string of the executing CPU (leaves 0x80000002..4), trimmed;
/// "unknown-cpu" where CPUID is unavailable (non-x86 or hypervisor-masked).
std::string cpu_brand_string();

/// Fingerprint derived from an explicit MachineSpec (so simulated machines
/// and tests can build deterministic fingerprints too). The brand comes
/// from the spec's name unless `spec` is the host, in which case callers
/// should prefer host_fingerprint().
MachineFingerprint fingerprint_of(const MachineSpec& spec,
                                  const std::string& brand);

/// Fingerprint of the executing host (cached after first call): CPUID
/// brand + detected ISA/caches/cores + host_machine()'s bandwidth figure.
const MachineFingerprint& host_fingerprint();

}  // namespace cake
