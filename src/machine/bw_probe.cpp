#include "machine/bw_probe.hpp"

#include <atomic>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"

namespace cake {
namespace {

/// Sum-reduce an array; written to vectorise and to defeat dead-code
/// elimination via the returned value.
double scan_once(const float* data, std::size_t count)
{
    // Four independent partial sums keep the FMA pipelines busy.
    float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        s0 += data[i];
        s1 += data[i + 1];
        s2 += data[i + 2];
        s3 += data[i + 3];
    }
    for (; i < count; ++i) s0 += data[i];
    return static_cast<double>(s0) + s1 + s2 + s3;
}

}  // namespace

double measure_scan_bandwidth_gbs(ThreadPool& pool, int threads,
                                  std::size_t bytes_per_thread, int sweeps)
{
    CAKE_CHECK(threads >= 1 && threads <= pool.size());
    CAKE_CHECK(bytes_per_thread >= 4096);
    CAKE_CHECK(sweeps >= 1);
    const std::size_t count = bytes_per_thread / sizeof(float);

    std::vector<AlignedBuffer<float>> arrays;
    arrays.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        arrays.emplace_back(count);
        for (std::size_t i = 0; i < count; ++i)
            arrays.back()[i] = static_cast<float>(i & 0xFF) * 0.001f;
    }

    std::atomic<double> sink{0.0};
    // Warm-up sweep loads the working set into cache.
    pool.run(threads, [&](int tid) {
        sink.fetch_add(
            scan_once(arrays[static_cast<std::size_t>(tid)].data(), count));
    });

    Timer timer;
    pool.run(threads, [&](int tid) {
        double local = 0;
        for (int s = 0; s < sweeps; ++s) {
            local +=
                scan_once(arrays[static_cast<std::size_t>(tid)].data(), count);
        }
        sink.fetch_add(local);
    });
    const double seconds = timer.seconds();
    CAKE_CHECK(seconds > 0);
    // Keep the compiler honest about the reduction result.
    CAKE_CHECK(sink.load() != -1.0);

    const double total_bytes = static_cast<double>(bytes_per_thread) * threads
        * sweeps;
    return total_bytes / seconds / 1e9;
}

std::vector<double> probe_internal_bw_curve(ThreadPool& pool, int max_threads,
                                            std::size_t bytes_per_thread,
                                            int sweeps)
{
    std::vector<double> curve;
    curve.reserve(static_cast<std::size_t>(max_threads));
    for (int p = 1; p <= max_threads; ++p) {
        curve.push_back(
            measure_scan_bandwidth_gbs(pool, p, bytes_per_thread, sweeps));
    }
    return curve;
}

std::vector<BwScanPoint> scan_working_sets(ThreadPool& pool, int threads,
                                           const std::vector<std::size_t>& sizes,
                                           int sweeps)
{
    std::vector<BwScanPoint> points;
    points.reserve(sizes.size());
    for (std::size_t bytes : sizes) {
        points.push_back(
            {bytes, measure_scan_bandwidth_gbs(pool, threads, bytes, sweeps)});
    }
    return points;
}

}  // namespace cake
