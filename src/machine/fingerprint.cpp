#include "machine/fingerprint.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace cake {
namespace {

/// Lower-case and collapse every non-alphanumeric run to one '-', so the
/// brand is stable against whitespace quirks and safe inside keys/paths.
std::string slugify(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    bool pending_dash = false;
    for (const char ch : raw) {
        if (std::isalnum(static_cast<unsigned char>(ch)) != 0) {
            if (pending_dash && !out.empty()) out += '-';
            pending_dash = false;
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(ch)));
        } else {
            pending_dash = true;
        }
    }
    return out.empty() ? std::string("unknown-cpu") : out;
}

Isa detect_best_isa()
{
    if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
    if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
    return Isa::kScalar;
}

/// Capacity of the first cache level matching `pred`, 0 if absent.
template <typename Pred>
std::size_t level_bytes(const CacheHierarchy& caches, Pred&& pred)
{
    for (const CacheLevel& lvl : caches.levels) {
        if (pred(lvl)) return lvl.size_bytes;
    }
    return 0;
}

void append_json_string(std::ostringstream& os, const std::string& s)
{
    os << '"';
    for (const char ch : s) {
        if (ch == '"' || ch == '\\') os << '\\';
        os << ch;
    }
    os << '"';
}

}  // namespace

std::string cpu_brand_string()
{
#if defined(__x86_64__) || defined(__i386__)
    unsigned int a = 0, b = 0, c = 0, d = 0;
    if (__get_cpuid(0x80000000u, &a, &b, &c, &d) != 0 && a >= 0x80000004u) {
        char brand[49] = {};
        unsigned int regs[12] = {};
        for (unsigned int leaf = 0; leaf < 3; ++leaf) {
            __get_cpuid(0x80000002u + leaf, &regs[leaf * 4 + 0],
                        &regs[leaf * 4 + 1], &regs[leaf * 4 + 2],
                        &regs[leaf * 4 + 3]);
        }
        std::memcpy(brand, regs, sizeof(regs));
        std::string s(brand);
        // Trim the leading/trailing padding spaces vendors ship.
        const auto first = s.find_first_not_of(" \t");
        const auto last = s.find_last_not_of(" \t");
        if (first != std::string::npos) {
            return s.substr(first, last - first + 1);
        }
    }
#endif
    return "unknown-cpu";
}

std::string MachineFingerprint::key() const
{
    std::ostringstream os;
    os << slugify(cpu_brand) << '|' << isa_name(best_isa) << "|c" << cores
       << "|l1:" << l1_bytes << "|l2:" << l2_bytes << "|llc:" << llc_bytes
       << "|bw:" << dram_bw_gbs;
    return os.str();
}

std::string MachineFingerprint::json() const
{
    std::ostringstream os;
    os << "{\"cpu_brand\": ";
    append_json_string(os, cpu_brand);
    os << ", \"isa\": \"" << isa_name(best_isa) << "\""
       << ", \"cores\": " << cores << ", \"l1_bytes\": " << l1_bytes
       << ", \"l2_bytes\": " << l2_bytes << ", \"llc_bytes\": " << llc_bytes
       << ", \"dram_bw_gbs\": " << dram_bw_gbs << ", \"key\": ";
    append_json_string(os, key());
    os << "}";
    return os.str();
}

MachineFingerprint fingerprint_of(const MachineSpec& spec,
                                  const std::string& brand)
{
    MachineFingerprint fp;
    fp.cpu_brand = brand;
    fp.best_isa = detect_best_isa();
    fp.cores = spec.cores;
    fp.l1_bytes = level_bytes(
        spec.caches, [](const CacheLevel& l) { return l.level == 1; });
    // Deepest level private to one core — the solver's mc x kc home.
    for (const CacheLevel& lvl : spec.caches.levels) {
        if (lvl.shared_by_cores == 1) fp.l2_bytes = lvl.size_bytes;
    }
    fp.llc_bytes = spec.llc_bytes();
    fp.dram_bw_gbs = spec.dram_bw_gbs;
    return fp;
}

const MachineFingerprint& host_fingerprint()
{
    static const MachineFingerprint fp =
        fingerprint_of(host_machine(), cpu_brand_string());
    return fp;
}

}  // namespace cake
