// Memory-bandwidth probing, in the spirit of pmbw (Bingmann 2013), which
// the paper uses to measure internal (LLC <-> cores) bandwidth for
// Figs. 10c/11c/12c. Each worker scans a private array with a vectorisable
// sum reduction; aggregate GB/s at p workers approximates the machine's
// parallel read bandwidth out of whatever level the working set fits in.
#pragma once

#include <cstddef>
#include <vector>

#include "threading/thread_pool.hpp"

namespace cake {

/// One measurement: aggregate read bandwidth when `threads` workers each
/// scan a private array of `bytes_per_thread` bytes `sweeps` times.
/// The returned figure is total bytes moved / wall time, in GB/s.
double measure_scan_bandwidth_gbs(ThreadPool& pool, int threads,
                                  std::size_t bytes_per_thread,
                                  int sweeps = 8);

/// pmbw-style curve: bandwidth at p = 1..max_threads for a working set
/// sized to live in the cache level of interest (element i = p = i+1).
/// Feed the result into MachineSpec::internal_bw_gbs to calibrate a host.
std::vector<double> probe_internal_bw_curve(ThreadPool& pool, int max_threads,
                                            std::size_t bytes_per_thread,
                                            int sweeps = 8);

/// A full pmbw-style scan over working-set sizes (bytes per thread),
/// reporting GB/s for each; used by the bench_pmbw_host harness.
struct BwScanPoint {
    std::size_t bytes_per_thread = 0;
    double gbs = 0.0;
};
std::vector<BwScanPoint> scan_working_sets(ThreadPool& pool, int threads,
                                           const std::vector<std::size_t>& sizes,
                                           int sweeps = 8);

}  // namespace cake
