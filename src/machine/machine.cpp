#include "machine/machine.hpp"

#include <thread>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace cake {

double MachineSpec::internal_bw_at(int p) const
{
    CAKE_CHECK(p >= 1);
    CAKE_CHECK(!internal_bw_gbs.empty());
    const auto n = static_cast<int>(internal_bw_gbs.size());
    if (p <= n) return internal_bw_gbs[static_cast<std::size_t>(p - 1)];
    if (n == 1) return internal_bw_gbs[0];
    // Paper protocol: extrapolate from the last two measured points.
    const LineFit line = line_through(
        n - 1, internal_bw_gbs[static_cast<std::size_t>(n - 2)], n,
        internal_bw_gbs[static_cast<std::size_t>(n - 1)]);
    return line(p);
}

MachineSpec intel_i9_10900k()
{
    MachineSpec m;
    m.name = "Intel i9-10900K";
    m.cores = 10;
    m.freq_ghz = 4.9;  // all-core turbo
    m.caches.levels = {
        {1, 32 * 1024, 64, 8, 1},
        {2, 256 * 1024, 64, 4, 1},
        {3, 20 * 1024 * 1024, 64, 16, 10},
    };
    m.dram_gib = 32.0;
    m.dram_bw_gbs = 40.0;
    m.dram_rmw_bw_gbs = 36.0;  // desktop DDR4 sustains RMW near peak
    // Fig 10b: single-core CAKE/MKL throughput ~125 GFLOP/s.
    m.core_gflops = 125.0;
    // Fig 10c: ~75 GB/s per core up to 6 cores, then ~+25 GB/s per core.
    m.internal_bw_gbs = {75, 150, 225, 300, 375, 450, 478, 505, 530, 555};
    return m;
}

MachineSpec amd_ryzen_5950x()
{
    MachineSpec m;
    m.name = "AMD Ryzen 9 5950X";
    m.cores = 16;
    m.freq_ghz = 4.2;
    m.caches.levels = {
        {1, 32 * 1024, 64, 8, 1},
        {2, 512 * 1024, 64, 8, 1},
        {3, 64 * 1024 * 1024, 64, 16, 16},
    };
    m.dram_gib = 128.0;
    m.dram_bw_gbs = 47.0;
    m.dram_rmw_bw_gbs = 42.0;
    // Fig 12b: ~75 GFLOP/s per core up to 16 cores.
    m.core_gflops = 75.0;
    // Fig 12c: internal BW grows roughly linearly, ~50 GB/s per core.
    m.internal_bw_gbs.resize(16);
    for (int p = 1; p <= 16; ++p)
        m.internal_bw_gbs[static_cast<std::size_t>(p - 1)] = 50.0 * p;
    return m;
}

MachineSpec arm_cortex_a53()
{
    MachineSpec m;
    m.name = "ARM Cortex-A53";
    m.cores = 4;
    m.freq_ghz = 1.4;
    // No L3: the shared L2 is the last-level "local memory" (paper §5.2).
    m.caches.levels = {
        {1, 16 * 1024, 64, 4, 1},
        {2, 512 * 1024, 64, 16, 4},
    };
    m.dram_gib = 1.0;
    m.dram_bw_gbs = 2.0;
    // In-order core + LPDDR: partial-result read-modify-write round trips
    // are latency-bound and reach only a fraction of streaming bandwidth.
    m.dram_rmw_bw_gbs = 0.6;
    // Fig 11b: single-core CAKE throughput ~2.7 GFLOP/s.
    m.core_gflops = 2.7;
    // Fig 11c: ~10 GB/s at 1-2 cores, then nearly flat.
    m.internal_bw_gbs = {10.0, 12.0, 12.5, 13.0};
    return m;
}

MachineSpec host_machine()
{
    MachineSpec m;
    m.name = "host";
    m.cores = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    m.freq_ghz = 2.1;
    m.caches = detect_host_caches();
    m.dram_gib = 16.0;
    m.dram_bw_gbs = 12.0;
    m.dram_rmw_bw_gbs = 8.0;
    if (auto bw = env_long("CAKE_DRAM_BW_GBS")) {
        m.dram_bw_gbs = static_cast<double>(*bw);
    }
    m.core_gflops = 40.0;
    m.internal_bw_gbs.assign(static_cast<std::size_t>(m.cores), 0.0);
    for (int p = 1; p <= m.cores; ++p)
        m.internal_bw_gbs[static_cast<std::size_t>(p - 1)] = 40.0 * p;
    return m;
}

MachineSpec accelerator_64pe(bool hbm)
{
    MachineSpec m;
    m.name = hbm ? "accel-64pe-hbm" : "accel-64pe-ddr";
    m.cores = 64;  // processing elements
    m.freq_ghz = 1.0;
    // Per-PE scratchpad plus one large shared SRAM as the "local memory";
    // accelerators have no LRU caches, but the capacity planning of Eq. 1
    // applies unchanged.
    m.caches.levels = {
        {1, 64 * 1024, 64, 8, 1},              // PE-local scratchpad
        {2, 48 * 1024 * 1024, 64, 16, 64},     // shared on-chip SRAM
    };
    m.dram_gib = 16.0;
    m.dram_bw_gbs = hbm ? 300.0 : 30.0;
    m.dram_rmw_bw_gbs = hbm ? 250.0 : 20.0;
    m.core_gflops = 64.0;  // one 8x8 MAC tile per cycle per PE
    // On-chip networks scale with the PE grid.
    m.internal_bw_gbs.resize(64);
    for (int p = 1; p <= 64; ++p)
        m.internal_bw_gbs[static_cast<std::size_t>(p - 1)] = 40.0 * p;
    return m;
}

std::vector<MachineSpec> table2_machines()
{
    return {intel_i9_10900k(), amd_ryzen_5950x(), arm_cortex_a53()};
}

MachineSpec machine_by_name(const std::string& name)
{
    if (name == "intel" || name == "i9" || name == "intel_i9_10900k")
        return intel_i9_10900k();
    if (name == "amd" || name == "5950x" || name == "amd_ryzen_5950x")
        return amd_ryzen_5950x();
    if (name == "arm" || name == "a53" || name == "arm_cortex_a53")
        return arm_cortex_a53();
    if (name == "host") return host_machine();
    throw Error("unknown machine name: " + name);
}

}  // namespace cake
