// Machine descriptors: the paper's Table 2 CPUs as presets, plus host
// autodetection. These feed the CB-block solver (src/core/tiling), the
// analytical model (src/model) and the architecture simulator (src/sim).
#pragma once

#include <string>
#include <vector>

#include "cache/topology.hpp"
#include "common/types.hpp"

namespace cake {

/// Full description of a target machine.
struct MachineSpec {
    std::string name;
    int cores = 1;
    double freq_ghz = 1.0;

    CacheHierarchy caches;

    double dram_gib = 8.0;      ///< main-memory capacity (GiB)
    double dram_bw_gbs = 10.0;  ///< external (DRAM) streaming bandwidth, GB/s

    /// Effective DRAM bandwidth for read-modify-write round trips (the
    /// partial-result streaming GOTO performs, §4.1: "DRAM streaming can
    /// dominate IO"). Desktop memory controllers sustain RMW streams near
    /// peak; low-power in-order SoCs are latency-bound and achieve a small
    /// fraction. 0 means "same as dram_bw_gbs".
    double dram_rmw_bw_gbs = 0.0;

    /// Effective bandwidth for RMW round-trip traffic.
    [[nodiscard]] double rmw_bw_gbs() const
    {
        return dram_rmw_bw_gbs > 0.0 ? dram_rmw_bw_gbs : dram_bw_gbs;
    }

    /// Sustained single-core GEMM throughput in GFLOP/s. This is the
    /// simulator's per-core compute rate: the paper's "one tile
    /// multiplication per unit time" calibrated to the measured
    /// single-core points in Figs 10b/11b/12b.
    double core_gflops = 10.0;

    /// Measured internal bandwidth (LLC <-> cores, GB/s) at p = 1..cores,
    /// the paper's pmbw curves (Figs 10c/11c/12c). Element i is p = i+1.
    std::vector<double> internal_bw_gbs;

    /// Last-level cache capacity in bytes — the "local memory" that holds
    /// the three CB-block IO surfaces.
    [[nodiscard]] std::size_t llc_bytes() const
    {
        return caches.llc().size_bytes;
    }

    /// Internal bandwidth available at p cores (GB/s). Values beyond the
    /// measured range are linearly extrapolated from the last two points
    /// (paper's extrapolation protocol).
    [[nodiscard]] double internal_bw_at(int p) const;

    /// Peak multi-core compute throughput at p cores (GFLOP/s).
    [[nodiscard]] double peak_gflops(int p) const
    {
        return core_gflops * p;
    }
};

/// Intel i9-10900K preset (Table 2 row 1): 10 cores, L1 32K / L2 256K /
/// L3 20 MiB, 32 GB DRAM @ 40 GB/s. Internal-BW curve digitised from
/// Fig. 10c (flattens past 6 cores).
MachineSpec intel_i9_10900k();

/// AMD Ryzen 9 5950X preset (Table 2 row 2): 16 cores, L1 32K / L2 512K /
/// L3 64 MiB, 128 GB DRAM @ 47 GB/s. Internal BW grows ~50 GB/s per core
/// (Fig. 12c).
MachineSpec amd_ryzen_5950x();

/// ARM Cortex-A53 preset (Table 2 row 3): 4 cores, L1 16K / L2 512K (LLC,
/// no L3), 1 GB DRAM @ 2 GB/s. Internal BW nearly flat past 2 cores
/// (Fig. 11c).
MachineSpec arm_cortex_a53();

/// Best-effort descriptor for the executing host (detected caches, core
/// count; bandwidths default conservatively and can be overridden by the
/// CAKE_DRAM_BW_GBS environment variable).
MachineSpec host_machine();

/// A hypothetical DNN accelerator in the spirit of the paper's §6.1
/// ("CAKE is not limited to these platforms"): a 64-unit compute grid with
/// a large shared on-chip SRAM as the local memory and configurable
/// external bandwidth. `hbm == true` gives it an HBM-class 300 GB/s link;
/// `false` a cost-down 30 GB/s DDR link — the case where CB shaping is
/// the difference between a starved and a saturated array.
MachineSpec accelerator_64pe(bool hbm);

/// All three paper presets, in Table 2 order.
std::vector<MachineSpec> table2_machines();

/// Preset lookup by name ("intel", "amd", "arm", "host");
/// throws cake::Error on unknown names.
MachineSpec machine_by_name(const std::string& name);

}  // namespace cake
