// Panel packing: copies operand sub-matrices into contiguous, zero-padded,
// sliver-ordered buffers so the micro-kernel streams unit-stride data and
// cache self-interference is avoided (paper §5.2.1).
//
// Packed-A layout ("mr slivers"): the m x k block is cut into ceil(m/mr)
// horizontal slivers of mr rows. Sliver s occupies a contiguous region of
// mr*k elements ordered k-major: out[s*mr*k + p*mr + i] = A(s*mr + i, p).
// Rows past m are zero.
//
// Packed-B layout ("nr slivers"): the k x n block is cut into ceil(n/nr)
// vertical slivers of nr columns. Sliver t occupies nr*k elements:
// out[t*nr*k + p*nr + j] = B(p, t*nr + j). Columns past n are zero.
//
// Every routine is templated over the element type (float for sgemm,
// double for dgemm) with explicit instantiations in pack.cpp.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace cake {

/// Ceiling division for non-negative operands.
constexpr index_t ceil_div(index_t a, index_t b)
{
    return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `b`.
constexpr index_t round_up(index_t a, index_t b)
{
    return ceil_div(a, b) * b;
}

/// Elements required to pack an m x k block of A with register rows mr.
constexpr index_t packed_a_size(index_t m, index_t k, index_t mr)
{
    return round_up(m, mr) * k;
}

/// Elements required to pack a k x n block of B with register cols nr.
constexpr index_t packed_b_size(index_t k, index_t n, index_t nr)
{
    return k * round_up(n, nr);
}

/// Pack the m x k sub-matrix at `a` (row-major, leading dimension lda >= k)
/// into mr-sliver format at `out` (capacity >= packed_a_size(m, k, mr)).
template <typename T>
void pack_a_panel(const T* a, index_t lda, index_t m, index_t k, index_t mr,
                  T* out);

/// As pack_a_panel, but `a` addresses the TRANSPOSE: the packed block's
/// element (i, p) is read from a[p * lda + i] (i.e. op(A) = A^T with A
/// stored k x m, leading dimension lda >= m).
template <typename T>
void pack_a_panel_transposed(const T* a, index_t lda, index_t m, index_t k,
                             index_t mr, T* out);

/// Pack the k x n sub-matrix at `b` (row-major, leading dimension ldb >= n)
/// into nr-sliver format at `out` (capacity >= packed_b_size(k, n, nr)).
template <typename T>
void pack_b_panel(const T* b, index_t ldb, index_t k, index_t n, index_t nr,
                  T* out);

/// As pack_b_panel, but `b` addresses the TRANSPOSE: the packed block's
/// element (p, j) is read from b[j * ldb + p] (op(B) = B^T with B stored
/// n x k, leading dimension ldb >= k).
template <typename T>
void pack_b_panel_transposed(const T* b, index_t ldb, index_t k, index_t n,
                             index_t nr, T* out);

/// Copy (accumulate=false) or add (accumulate=true) an m x n row-major
/// block buffer `cbuf` (leading dimension n) into user matrix `c` with
/// leading dimension ldc.
template <typename T>
void unpack_c_block(const T* cbuf, index_t m, index_t n, T* c, index_t ldc,
                    bool accumulate);

/// BLAS-style epilogue: c = alpha * cbuf + beta * c over an m x n block.
/// beta == 0 overwrites (c may contain NaN/garbage); beta == 1 accumulates.
template <typename T>
void unpack_c_block_scaled(const T* cbuf, index_t m, index_t n, T* c,
                           index_t ldc, T alpha, T beta);

/// Inverse of pack_a_panel for testing: reconstructs A(i, p) from a packed
/// panel. Returns 0 for zero-padded positions.
template <typename T>
T packed_a_at(const T* packed, index_t m, index_t k, index_t mr, index_t i,
              index_t p);

/// Inverse of pack_b_panel for testing.
template <typename T>
T packed_b_at(const T* packed, index_t k, index_t n, index_t nr, index_t p,
              index_t j);

// Explicit instantiations live in pack.cpp.
extern template void pack_a_panel<float>(const float*, index_t, index_t,
                                         index_t, index_t, float*);
extern template void pack_a_panel<double>(const double*, index_t, index_t,
                                          index_t, index_t, double*);
extern template void pack_a_panel_transposed<float>(const float*, index_t,
                                                    index_t, index_t, index_t,
                                                    float*);
extern template void pack_a_panel_transposed<double>(const double*, index_t,
                                                     index_t, index_t,
                                                     index_t, double*);
extern template void pack_b_panel<float>(const float*, index_t, index_t,
                                         index_t, index_t, float*);
extern template void pack_b_panel<double>(const double*, index_t, index_t,
                                          index_t, index_t, double*);
extern template void pack_b_panel_transposed<float>(const float*, index_t,
                                                    index_t, index_t, index_t,
                                                    float*);
extern template void pack_b_panel_transposed<double>(const double*, index_t,
                                                     index_t, index_t,
                                                     index_t, double*);
extern template void unpack_c_block<float>(const float*, index_t, index_t,
                                           float*, index_t, bool);
extern template void unpack_c_block<std::int32_t>(const std::int32_t*,
                                                  index_t, index_t,
                                                  std::int32_t*, index_t,
                                                  bool);
extern template void unpack_c_block<double>(const double*, index_t, index_t,
                                            double*, index_t, bool);
extern template void unpack_c_block_scaled<float>(const float*, index_t,
                                                  index_t, float*, index_t,
                                                  float, float);
extern template void unpack_c_block_scaled<double>(const double*, index_t,
                                                   index_t, double*, index_t,
                                                   double, double);
extern template float packed_a_at<float>(const float*, index_t, index_t,
                                         index_t, index_t, index_t);
extern template double packed_a_at<double>(const double*, index_t, index_t,
                                           index_t, index_t, index_t);
extern template float packed_b_at<float>(const float*, index_t, index_t,
                                         index_t, index_t, index_t);
extern template double packed_b_at<double>(const double*, index_t, index_t,
                                           index_t, index_t, index_t);

}  // namespace cake
