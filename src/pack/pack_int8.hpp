// Packing for the quantized (u8 x s8 -> s32) path: the reduction
// dimension is grouped into quads of 4 to match the vpmaddubsw/vpmaddwd
// dot-product idiom (see kernel_int8.hpp for the exact layouts).
#pragma once

#include <cstdint>

#include "pack/pack.hpp"

namespace cake {

/// k-quads covering a reduction depth of k.
constexpr index_t int8_kq(index_t k)
{
    return ceil_div(k, 4);
}

/// Bytes required to pack an m x k block of u8 A with register rows mr.
constexpr index_t packed_a_int8_size(index_t m, index_t k, index_t mr)
{
    return round_up(m, mr) * int8_kq(k) * 4;
}

/// Bytes required to pack a k x n block of s8 B with register cols nr.
constexpr index_t packed_b_int8_size(index_t k, index_t n, index_t nr)
{
    return int8_kq(k) * round_up(n, nr) * 4;
}

/// Pack an m x k u8 sub-matrix (row-major, lda >= k) into mr-sliver
/// k-quad format: out[s*mr*kq*4 + q*mr*4 + i*4 + j] = A(s*mr+i, 4q+j),
/// zero-padded in both m and k.
void pack_a_panel_int8(const std::uint8_t* a, index_t lda, index_t m,
                       index_t k, index_t mr, std::uint8_t* out);

/// Pack a k x n s8 sub-matrix (row-major, ldb >= n) into nr-sliver k-quad
/// format: out[t*nr*kq*4 + q*nr*4 + jj*4 + j] = B(4q+j, t*nr+jj),
/// zero-padded in both n and k.
void pack_b_panel_int8(const std::int8_t* b, index_t ldb, index_t k,
                       index_t n, index_t nr, std::int8_t* out);

}  // namespace cake
