#include "pack/pack.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/error.hpp"

namespace cake {

template <typename T>
void pack_a_panel(const T* a, index_t lda, index_t m, index_t k, index_t mr,
                  T* out)
{
    CAKE_CHECK(m >= 0 && k >= 0 && mr > 0 && lda >= k);
    const index_t slivers = ceil_div(m, mr);
    for (index_t s = 0; s < slivers; ++s) {
        T* dst = out + s * mr * k;
        const index_t row0 = s * mr;
        const index_t live = std::min(mr, m - row0);
        for (index_t p = 0; p < k; ++p) {
            T* col = dst + p * mr;
            const T* src = a + row0 * lda + p;
            index_t i = 0;
            for (; i < live; ++i) col[i] = src[i * lda];
            for (; i < mr; ++i) col[i] = T(0);
        }
    }
}

template <typename T>
void pack_a_panel_transposed(const T* a, index_t lda, index_t m, index_t k,
                             index_t mr, T* out)
{
    // Source is k x m (row-major, lda >= m): element (i, p) of the logical
    // A block reads a[p * lda + i], which is unit-stride in i — the
    // transposed pack is actually the cheap direction for A.
    CAKE_CHECK(m >= 0 && k >= 0 && mr > 0 && lda >= m);
    const index_t slivers = ceil_div(m, mr);
    for (index_t s = 0; s < slivers; ++s) {
        T* dst = out + s * mr * k;
        const index_t row0 = s * mr;
        const index_t live = std::min(mr, m - row0);
        for (index_t p = 0; p < k; ++p) {
            T* col = dst + p * mr;
            const T* src = a + p * lda + row0;
            std::memcpy(col, src, static_cast<std::size_t>(live) * sizeof(T));
            std::fill(col + live, col + mr, T(0));
        }
    }
}

template <typename T>
void pack_b_panel(const T* b, index_t ldb, index_t k, index_t n, index_t nr,
                  T* out)
{
    CAKE_CHECK(k >= 0 && n >= 0 && nr > 0 && ldb >= n);
    const index_t slivers = ceil_div(n, nr);
    for (index_t t = 0; t < slivers; ++t) {
        T* dst = out + t * nr * k;
        const index_t col0 = t * nr;
        const index_t live = std::min(nr, n - col0);
        for (index_t p = 0; p < k; ++p) {
            T* row = dst + p * nr;
            const T* src = b + p * ldb + col0;
            if (live == nr) {
                std::memcpy(row, src,
                            static_cast<std::size_t>(nr) * sizeof(T));
            } else {
                std::memcpy(row, src,
                            static_cast<std::size_t>(live) * sizeof(T));
                std::fill(row + live, row + nr, T(0));
            }
        }
    }
}

template <typename T>
void pack_b_panel_transposed(const T* b, index_t ldb, index_t k, index_t n,
                             index_t nr, T* out)
{
    // Source is n x k (row-major, ldb >= k): element (p, j) of the logical
    // B block reads b[j * ldb + p] — strided in j, the expensive direction.
    CAKE_CHECK(k >= 0 && n >= 0 && nr > 0 && ldb >= k);
    const index_t slivers = ceil_div(n, nr);
    for (index_t t = 0; t < slivers; ++t) {
        T* dst = out + t * nr * k;
        const index_t col0 = t * nr;
        const index_t live = std::min(nr, n - col0);
        for (index_t p = 0; p < k; ++p) {
            T* row = dst + p * nr;
            const T* src = b + col0 * ldb + p;
            index_t j = 0;
            for (; j < live; ++j) row[j] = src[j * ldb];
            for (; j < nr; ++j) row[j] = T(0);
        }
    }
}

template <typename T>
void unpack_c_block(const T* cbuf, index_t m, index_t n, T* c, index_t ldc,
                    bool accumulate)
{
    CAKE_CHECK(m >= 0 && n >= 0 && ldc >= n);
    if (accumulate) {
        for (index_t i = 0; i < m; ++i) {
            const T* src = cbuf + i * n;
            T* dst = c + i * ldc;
            for (index_t j = 0; j < n; ++j) dst[j] += src[j];
        }
    } else {
        for (index_t i = 0; i < m; ++i) {
            std::memcpy(c + i * ldc, cbuf + i * n,
                        static_cast<std::size_t>(n) * sizeof(T));
        }
    }
}

template <typename T>
void unpack_c_block_scaled(const T* cbuf, index_t m, index_t n, T* c,
                           index_t ldc, T alpha, T beta)
{
    CAKE_CHECK(m >= 0 && n >= 0 && ldc >= n);
    if (beta == T(0)) {
        // Overwrite: never read c (it may hold garbage or NaN).
        for (index_t i = 0; i < m; ++i) {
            const T* src = cbuf + i * n;
            T* dst = c + i * ldc;
            for (index_t j = 0; j < n; ++j) dst[j] = alpha * src[j];
        }
    } else {
        for (index_t i = 0; i < m; ++i) {
            const T* src = cbuf + i * n;
            T* dst = c + i * ldc;
            for (index_t j = 0; j < n; ++j)
                dst[j] = alpha * src[j] + beta * dst[j];
        }
    }
}

template <typename T>
T packed_a_at(const T* packed, index_t m, index_t k, index_t mr, index_t i,
              index_t p)
{
    CAKE_CHECK(i >= 0 && p >= 0 && p < k && i < round_up(m, mr));
    const index_t s = i / mr;
    const index_t ii = i % mr;
    return packed[s * mr * k + p * mr + ii];
}

template <typename T>
T packed_b_at(const T* packed, index_t k, index_t n, index_t nr, index_t p,
              index_t j)
{
    CAKE_CHECK(p >= 0 && p < k && j >= 0 && j < round_up(n, nr));
    const index_t t = j / nr;
    const index_t jj = j % nr;
    return packed[t * nr * k + p * nr + jj];
}

template void pack_a_panel<float>(const float*, index_t, index_t, index_t,
                                  index_t, float*);
template void pack_a_panel<double>(const double*, index_t, index_t, index_t,
                                   index_t, double*);
template void pack_a_panel_transposed<float>(const float*, index_t, index_t,
                                             index_t, index_t, float*);
template void pack_a_panel_transposed<double>(const double*, index_t, index_t,
                                              index_t, index_t, double*);
template void pack_b_panel<float>(const float*, index_t, index_t, index_t,
                                  index_t, float*);
template void pack_b_panel<double>(const double*, index_t, index_t, index_t,
                                   index_t, double*);
template void pack_b_panel_transposed<float>(const float*, index_t, index_t,
                                             index_t, index_t, float*);
template void pack_b_panel_transposed<double>(const double*, index_t, index_t,
                                              index_t, index_t, double*);
template void unpack_c_block<float>(const float*, index_t, index_t, float*,
                                    index_t, bool);
template void unpack_c_block<std::int32_t>(const std::int32_t*, index_t,
                                           index_t, std::int32_t*, index_t,
                                           bool);
template void unpack_c_block<double>(const double*, index_t, index_t, double*,
                                     index_t, bool);
template void unpack_c_block_scaled<float>(const float*, index_t, index_t,
                                           float*, index_t, float, float);
template void unpack_c_block_scaled<double>(const double*, index_t, index_t,
                                            double*, index_t, double, double);
template float packed_a_at<float>(const float*, index_t, index_t, index_t,
                                  index_t, index_t);
template double packed_a_at<double>(const double*, index_t, index_t, index_t,
                                    index_t, index_t);
template float packed_b_at<float>(const float*, index_t, index_t, index_t,
                                  index_t, index_t);
template double packed_b_at<double>(const double*, index_t, index_t, index_t,
                                    index_t, index_t);

}  // namespace cake
