#include "pack/pack.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "common/checked.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

// Every routine below is written against cake::Span: in CAKE_CHECKED
// builds each sliver/column slice and element store is bounds-checked
// against the packed-panel capacity contract (and source reads against the
// extent the lda/ldb contract implies); in release builds Span<T> is T*
// and the code compiles to exactly the raw pointer arithmetic it always
// was.

namespace cake {
namespace {

/// Extent in elements of a row-major block argument whose accesses reach
/// at most index (rows - 1) * ld + cols - 1 (zero when the block is empty).
constexpr std::size_t strided_extent(index_t rows, index_t cols, index_t ld)
{
    return rows > 0 && cols > 0
        ? static_cast<std::size_t>((rows - 1) * ld + cols)
        : 0;
}

/// obs counters for the leaf pack routines: panels packed per surface and
/// total source bytes moved. One relaxed flag load when metrics are off.
void note_pack(bool is_a, index_t rows, index_t cols,
               std::size_t elem_bytes)
{
    if (!obs::metrics_enabled()) return;
    static const obs::MetricId a_panels = obs::counter("pack.a_panels");
    static const obs::MetricId b_panels = obs::counter("pack.b_panels");
    static const obs::MetricId bytes = obs::counter("pack.src_bytes");
    obs::counter_add(is_a ? a_panels : b_panels, 1);
    obs::counter_add(bytes, static_cast<std::uint64_t>(rows)
                                * static_cast<std::uint64_t>(cols)
                                * elem_bytes);
}

}  // namespace

template <typename T>
void pack_a_panel(const T* a, index_t lda, index_t m, index_t k, index_t mr,
                  T* out)
{
    CAKE_CHECK(m >= 0 && k >= 0 && mr > 0 && lda >= k);
    note_pack(/*is_a=*/true, m, k, sizeof(T));
    const index_t slivers = ceil_div(m, mr);
    Span<T> out_sp = make_span(
        out, static_cast<std::size_t>(packed_a_size(m, k, mr)),
        "packed-A panel");
    Span<const T> a_sp = make_span(a, strided_extent(m, k, lda), "A block");
    for (index_t s = 0; s < slivers; ++s) {
        Span<T> dst = span_slice(out_sp, s * mr * k, mr * k);
        const index_t row0 = s * mr;
        const index_t live = std::min(mr, m - row0);
        for (index_t p = 0; p < k; ++p) {
            Span<T> col = span_slice(dst, p * mr, mr);
            Span<const T> src = span_slice(
                a_sp, row0 * lda + p, (live - 1) * lda + 1);
            index_t i = 0;
            for (; i < live; ++i) col[i] = src[i * lda];
            for (; i < mr; ++i) col[i] = T(0);
        }
    }
}

template <typename T>
void pack_a_panel_transposed(const T* a, index_t lda, index_t m, index_t k,
                             index_t mr, T* out)
{
    // Source is k x m (row-major, lda >= m): element (i, p) of the logical
    // A block reads a[p * lda + i], which is unit-stride in i — the
    // transposed pack is actually the cheap direction for A.
    CAKE_CHECK(m >= 0 && k >= 0 && mr > 0 && lda >= m);
    note_pack(/*is_a=*/true, m, k, sizeof(T));
    const index_t slivers = ceil_div(m, mr);
    Span<T> out_sp = make_span(
        out, static_cast<std::size_t>(packed_a_size(m, k, mr)),
        "packed-A panel (transposed source)");
    Span<const T> a_sp =
        make_span(a, strided_extent(k, m, lda), "A^T block");
    for (index_t s = 0; s < slivers; ++s) {
        Span<T> dst = span_slice(out_sp, s * mr * k, mr * k);
        const index_t row0 = s * mr;
        const index_t live = std::min(mr, m - row0);
        for (index_t p = 0; p < k; ++p) {
            Span<T> col = span_slice(dst, p * mr, mr);
            Span<const T> src = span_slice(a_sp, p * lda + row0, live);
            std::memcpy(span_data(col), span_data(src),
                        static_cast<std::size_t>(live) * sizeof(T));
            std::fill(span_data(col) + live, span_data(col) + mr, T(0));
        }
    }
}

template <typename T>
void pack_b_panel(const T* b, index_t ldb, index_t k, index_t n, index_t nr,
                  T* out)
{
    CAKE_CHECK(k >= 0 && n >= 0 && nr > 0 && ldb >= n);
    note_pack(/*is_a=*/false, k, n, sizeof(T));
    const index_t slivers = ceil_div(n, nr);
    Span<T> out_sp = make_span(
        out, static_cast<std::size_t>(packed_b_size(k, n, nr)),
        "packed-B panel");
    Span<const T> b_sp = make_span(b, strided_extent(k, n, ldb), "B block");
    for (index_t t = 0; t < slivers; ++t) {
        Span<T> dst = span_slice(out_sp, t * nr * k, nr * k);
        const index_t col0 = t * nr;
        const index_t live = std::min(nr, n - col0);
        for (index_t p = 0; p < k; ++p) {
            Span<T> row = span_slice(dst, p * nr, nr);
            Span<const T> src = span_slice(b_sp, p * ldb + col0, live);
            if (live == nr) {
                std::memcpy(span_data(row), span_data(src),
                            static_cast<std::size_t>(nr) * sizeof(T));
            } else {
                std::memcpy(span_data(row), span_data(src),
                            static_cast<std::size_t>(live) * sizeof(T));
                std::fill(span_data(row) + live, span_data(row) + nr, T(0));
            }
        }
    }
}

template <typename T>
void pack_b_panel_transposed(const T* b, index_t ldb, index_t k, index_t n,
                             index_t nr, T* out)
{
    // Source is n x k (row-major, ldb >= k): element (p, j) of the logical
    // B block reads b[j * ldb + p] — strided in j, the expensive direction.
    CAKE_CHECK(k >= 0 && n >= 0 && nr > 0 && ldb >= k);
    note_pack(/*is_a=*/false, k, n, sizeof(T));
    const index_t slivers = ceil_div(n, nr);
    Span<T> out_sp = make_span(
        out, static_cast<std::size_t>(packed_b_size(k, n, nr)),
        "packed-B panel (transposed source)");
    Span<const T> b_sp =
        make_span(b, strided_extent(n, k, ldb), "B^T block");
    for (index_t t = 0; t < slivers; ++t) {
        Span<T> dst = span_slice(out_sp, t * nr * k, nr * k);
        const index_t col0 = t * nr;
        const index_t live = std::min(nr, n - col0);
        for (index_t p = 0; p < k; ++p) {
            Span<T> row = span_slice(dst, p * nr, nr);
            Span<const T> src = span_slice(
                b_sp, col0 * ldb + p, live > 0 ? (live - 1) * ldb + 1 : 0);
            index_t j = 0;
            for (; j < live; ++j) row[j] = src[j * ldb];
            for (; j < nr; ++j) row[j] = T(0);
        }
    }
}

template <typename T>
void unpack_c_block(const T* cbuf, index_t m, index_t n, T* c, index_t ldc,
                    bool accumulate)
{
    CAKE_CHECK(m >= 0 && n >= 0 && ldc >= n);
    Span<const T> src_sp = make_span(
        cbuf, static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
        "C block buffer");
    Span<T> dst_sp = make_span(c, strided_extent(m, n, ldc), "user C");
    if (accumulate) {
        for (index_t i = 0; i < m; ++i) {
            Span<const T> src = span_slice(src_sp, i * n, n);
            Span<T> dst = span_slice(dst_sp, i * ldc, n);
            for (index_t j = 0; j < n; ++j) dst[j] += src[j];
        }
    } else {
        for (index_t i = 0; i < m; ++i) {
            Span<const T> src = span_slice(src_sp, i * n, n);
            Span<T> dst = span_slice(dst_sp, i * ldc, n);
            std::memcpy(span_data(dst), span_data(src),
                        static_cast<std::size_t>(n) * sizeof(T));
        }
    }
}

template <typename T>
void unpack_c_block_scaled(const T* cbuf, index_t m, index_t n, T* c,
                           index_t ldc, T alpha, T beta)
{
    CAKE_CHECK(m >= 0 && n >= 0 && ldc >= n);
    Span<const T> src_sp = make_span(
        cbuf, static_cast<std::size_t>(m) * static_cast<std::size_t>(n),
        "C block buffer");
    Span<T> dst_sp = make_span(c, strided_extent(m, n, ldc), "user C");
    if (beta == T(0)) {
        // Overwrite: never read c (it may hold garbage or NaN).
        for (index_t i = 0; i < m; ++i) {
            Span<const T> src = span_slice(src_sp, i * n, n);
            Span<T> dst = span_slice(dst_sp, i * ldc, n);
            for (index_t j = 0; j < n; ++j) dst[j] = alpha * src[j];
        }
    } else {
        for (index_t i = 0; i < m; ++i) {
            Span<const T> src = span_slice(src_sp, i * n, n);
            Span<T> dst = span_slice(dst_sp, i * ldc, n);
            for (index_t j = 0; j < n; ++j)
                dst[j] = alpha * src[j] + beta * dst[j];
        }
    }
}

template <typename T>
T packed_a_at(const T* packed, index_t m, index_t k, index_t mr, index_t i,
              index_t p)
{
    CAKE_CHECK(i >= 0 && p >= 0 && p < k && i < round_up(m, mr));
    Span<const T> sp = make_span(
        packed, static_cast<std::size_t>(packed_a_size(m, k, mr)),
        "packed-A panel");
    const index_t s = i / mr;
    const index_t ii = i % mr;
    return sp[s * mr * k + p * mr + ii];
}

template <typename T>
T packed_b_at(const T* packed, index_t k, index_t n, index_t nr, index_t p,
              index_t j)
{
    CAKE_CHECK(p >= 0 && p < k && j >= 0 && j < round_up(n, nr));
    Span<const T> sp = make_span(
        packed, static_cast<std::size_t>(packed_b_size(k, n, nr)),
        "packed-B panel");
    const index_t t = j / nr;
    const index_t jj = j % nr;
    return sp[t * nr * k + p * nr + jj];
}

template void pack_a_panel<float>(const float*, index_t, index_t, index_t,
                                  index_t, float*);
template void pack_a_panel<double>(const double*, index_t, index_t, index_t,
                                   index_t, double*);
template void pack_a_panel_transposed<float>(const float*, index_t, index_t,
                                             index_t, index_t, float*);
template void pack_a_panel_transposed<double>(const double*, index_t, index_t,
                                              index_t, index_t, double*);
template void pack_b_panel<float>(const float*, index_t, index_t, index_t,
                                  index_t, float*);
template void pack_b_panel<double>(const double*, index_t, index_t, index_t,
                                   index_t, double*);
template void pack_b_panel_transposed<float>(const float*, index_t, index_t,
                                             index_t, index_t, float*);
template void pack_b_panel_transposed<double>(const double*, index_t, index_t,
                                              index_t, index_t, double*);
template void unpack_c_block<float>(const float*, index_t, index_t, float*,
                                    index_t, bool);
template void unpack_c_block<std::int32_t>(const std::int32_t*, index_t,
                                           index_t, std::int32_t*, index_t,
                                           bool);
template void unpack_c_block<double>(const double*, index_t, index_t, double*,
                                     index_t, bool);
template void unpack_c_block_scaled<float>(const float*, index_t, index_t,
                                           float*, index_t, float, float);
template void unpack_c_block_scaled<double>(const double*, index_t, index_t,
                                            double*, index_t, double, double);
template float packed_a_at<float>(const float*, index_t, index_t, index_t,
                                  index_t, index_t);
template double packed_a_at<double>(const double*, index_t, index_t, index_t,
                                    index_t, index_t);
template float packed_b_at<float>(const float*, index_t, index_t, index_t,
                                  index_t, index_t);
template double packed_b_at<double>(const double*, index_t, index_t, index_t,
                                    index_t, index_t);

}  // namespace cake
