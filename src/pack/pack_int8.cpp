#include "pack/pack_int8.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace cake {

void pack_a_panel_int8(const std::uint8_t* a, index_t lda, index_t m,
                       index_t k, index_t mr, std::uint8_t* out)
{
    CAKE_CHECK(m >= 0 && k >= 0 && mr > 0 && lda >= k);
    const index_t slivers = ceil_div(m, mr);
    const index_t kq = int8_kq(k);
    for (index_t s = 0; s < slivers; ++s) {
        std::uint8_t* dst = out + s * mr * kq * 4;
        const index_t row0 = s * mr;
        const index_t live = std::min(mr, m - row0);
        for (index_t q = 0; q < kq; ++q) {
            std::uint8_t* quad = dst + q * mr * 4;
            for (index_t i = 0; i < mr; ++i) {
                for (index_t j = 0; j < 4; ++j) {
                    const index_t kk = 4 * q + j;
                    quad[i * 4 + j] = (i < live && kk < k)
                        ? a[(row0 + i) * lda + kk]
                        : std::uint8_t{0};
                }
            }
        }
    }
}

void pack_b_panel_int8(const std::int8_t* b, index_t ldb, index_t k,
                       index_t n, index_t nr, std::int8_t* out)
{
    CAKE_CHECK(k >= 0 && n >= 0 && nr > 0 && ldb >= n);
    const index_t slivers = ceil_div(n, nr);
    const index_t kq = int8_kq(k);
    for (index_t t = 0; t < slivers; ++t) {
        std::int8_t* dst = out + t * nr * kq * 4;
        const index_t col0 = t * nr;
        const index_t live = std::min(nr, n - col0);
        for (index_t q = 0; q < kq; ++q) {
            std::int8_t* quad = dst + q * nr * 4;
            for (index_t jj = 0; jj < nr; ++jj) {
                for (index_t j = 0; j < 4; ++j) {
                    const index_t kk = 4 * q + j;
                    quad[jj * 4 + j] = (jj < live && kk < k)
                        ? b[kk * ldb + col0 + jj]
                        : std::int8_t{0};
                }
            }
        }
    }
}

}  // namespace cake
