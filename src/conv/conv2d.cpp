#include "conv/conv2d.hpp"

#include <algorithm>
#include <atomic>

#include "common/aligned.hpp"
#include "common/error.hpp"

namespace cake {
namespace conv {

index_t conv_out_dim(index_t input, index_t kernel, index_t stride,
                     index_t pad)
{
    CAKE_CHECK(input >= 1 && kernel >= 1 && stride >= 1 && pad >= 0);
    const index_t padded = input + 2 * pad;
    CAKE_CHECK_MSG(padded >= kernel, "kernel larger than padded input");
    return (padded - kernel) / stride + 1;
}

void im2col(const float* input, index_t h, index_t w,
            const Conv2dParams& params, float* cols)
{
    const index_t oh = conv_out_dim(h, params.kernel_h, params.stride_h,
                                    params.pad_h);
    const index_t ow = conv_out_dim(w, params.kernel_w, params.stride_w,
                                    params.pad_w);
    const index_t patch = params.patch_size();

    for (index_t oy = 0; oy < oh; ++oy) {
        for (index_t ox = 0; ox < ow; ++ox) {
            float* row = cols + (oy * ow + ox) * patch;
            index_t col = 0;
            const index_t y0 = oy * params.stride_h - params.pad_h;
            const index_t x0 = ox * params.stride_w - params.pad_w;
            for (index_t c = 0; c < params.in_channels; ++c) {
                const float* plane = input + c * h * w;
                for (index_t ky = 0; ky < params.kernel_h; ++ky) {
                    const index_t y = y0 + ky;
                    for (index_t kx = 0; kx < params.kernel_w; ++kx) {
                        const index_t x = x0 + kx;
                        row[col++] = (y >= 0 && y < h && x >= 0 && x < w)
                            ? plane[y * w + x]
                            : 0.0f;
                    }
                }
            }
        }
    }
}

ConvExtent conv2d_forward(const float* input, index_t n, index_t h,
                          index_t w, const float* weights,
                          const Conv2dParams& params, float* output,
                          ThreadPool& pool)
{
    CAKE_CHECK(n >= 0);
    const index_t oh = conv_out_dim(h, params.kernel_h, params.stride_h,
                                    params.pad_h);
    const index_t ow = conv_out_dim(w, params.kernel_w, params.stride_w,
                                    params.pad_w);
    const index_t pixels = oh * ow;
    const index_t patch = params.patch_size();
    if (n == 0) return {oh, ow};

    // Parallelise across images: each worker owns a single-threaded GEMM
    // context plus im2col/staging scratch and pulls whole images — the
    // per-image GEMMs are small, so inter-image parallelism beats
    // intra-GEMM forking (same rationale as BatchStrategy::
    // kParallelProblems).
    const int width = static_cast<int>(
        std::min<index_t>(pool.size(), n));
    // GEMM: patches (pixels x patch) * W^T (patch x out_c). Weights are
    // stored out_c x patch, so op(B) = transpose handles the layout.
    CakeOptions options;
    options.op_b = Op::kTranspose;
    options.p = 1;

    std::atomic<index_t> next{0};
    pool.run(width, [&](int) {
        CakeGemm gemm(pool, options);
        AlignedBuffer<float> cols(static_cast<std::size_t>(pixels * patch));
        // GEMM result is pixel-major (pixels x out_c); convolution output
        // is channel-major — stage and transpose per image.
        AlignedBuffer<float> staged(
            static_cast<std::size_t>(pixels * params.out_channels));
        for (;;) {
            const index_t img = next.fetch_add(1);
            if (img >= n) break;
            const float* src = input + img * params.in_channels * h * w;
            im2col(src, h, w, params, cols.data());
            gemm.multiply(cols.data(), patch, weights, patch, staged.data(),
                          params.out_channels, pixels, params.out_channels,
                          patch);
            float* dst = output + img * params.out_channels * pixels;
            for (index_t pix = 0; pix < pixels; ++pix) {
                const float* row = staged.data() + pix * params.out_channels;
                for (index_t oc = 0; oc < params.out_channels; ++oc)
                    dst[oc * pixels + pix] = row[oc];
            }
        }
    });
    return {oh, ow};
}

QuantizedConvWeights::QuantizedConvWeights(const float* weights,
                                           const Conv2dParams& params)
    : params_(params),
      wq_(static_cast<std::size_t>(params.patch_size()
                                   * params.out_channels)),
      row_sums_(static_cast<std::size_t>(params.out_channels))
{
    const index_t patch = params.patch_size();
    const index_t oc = params.out_channels;
    // Quantize in the stored (oc x patch) layout, then transpose into the
    // (patch x oc) B-operand layout the int8 GEMM consumes.
    AlignedBuffer<std::int8_t> staged(
        static_cast<std::size_t>(oc * patch));
    wq_params_ = quantize_signed(weights, oc * patch, staged.data());
    for (index_t f = 0; f < oc; ++f) {
        std::int64_t sum = 0;
        for (index_t t = 0; t < patch; ++t) {
            const std::int8_t q =
                staged[static_cast<std::size_t>(f * patch + t)];
            wq_[static_cast<std::size_t>(t * oc + f)] = q;
            sum += q;
        }
        row_sums_[static_cast<std::size_t>(f)] = sum;
    }
}

ConvExtent conv2d_forward_int8(const float* input, index_t n, index_t h,
                               index_t w, const QuantizedConvWeights& qw,
                               float* output, ThreadPool& pool)
{
    const Conv2dParams& params = qw.params_;
    const index_t oh = conv_out_dim(h, params.kernel_h, params.stride_h,
                                    params.pad_h);
    const index_t ow = conv_out_dim(w, params.kernel_w, params.stride_w,
                                    params.pad_w);
    const index_t pixels = oh * ow;
    const index_t patch = params.patch_size();
    const index_t oc = params.out_channels;
    if (n == 0) return {oh, ow};

    const int width =
        static_cast<int>(std::min<index_t>(pool.size(), n));
    CakeOptions options;
    options.p = 1;

    std::atomic<index_t> next{0};
    pool.run(width, [&](int) {
        CakeGemmInt8 gemm(pool, options);
        AlignedBuffer<float> cols(static_cast<std::size_t>(pixels * patch));
        AlignedBuffer<std::uint8_t> cols_q(cols.size());
        AlignedBuffer<std::int32_t> acc(
            static_cast<std::size_t>(pixels * oc));
        AlignedBuffer<float> staged(static_cast<std::size_t>(pixels * oc));
        for (;;) {
            const index_t img = next.fetch_add(1);
            if (img >= n) break;
            const float* src = input + img * params.in_channels * h * w;
            im2col(src, h, w, params, cols.data());
            const QuantParams in_params =
                quantize_unsigned(cols.data(), pixels * patch, cols_q.data());
            gemm.multiply(cols_q.data(), patch, qw.wq_.data(), oc,
                          acc.data(), oc, pixels, oc, patch);
            dequantize_gemm(acc.data(), oc, pixels, oc, in_params,
                            qw.wq_params_, qw.row_sums_.data(),
                            staged.data(), oc);
            float* dst = output + img * oc * pixels;
            for (index_t pix = 0; pix < pixels; ++pix) {
                const float* row = staged.data() + pix * oc;
                for (index_t f = 0; f < oc; ++f)
                    dst[f * pixels + pix] = row[f];
            }
        }
    });
    return {oh, ow};
}

void conv2d_naive(const float* input, index_t h, index_t w,
                  const float* weights, const Conv2dParams& params,
                  float* output)
{
    const index_t oh = conv_out_dim(h, params.kernel_h, params.stride_h,
                                    params.pad_h);
    const index_t ow = conv_out_dim(w, params.kernel_w, params.stride_w,
                                    params.pad_w);
    const index_t patch = params.patch_size();

    for (index_t oc = 0; oc < params.out_channels; ++oc) {
        const float* filter = weights + oc * patch;
        for (index_t oy = 0; oy < oh; ++oy) {
            for (index_t ox = 0; ox < ow; ++ox) {
                const index_t y0 = oy * params.stride_h - params.pad_h;
                const index_t x0 = ox * params.stride_w - params.pad_w;
                double acc = 0;
                index_t tap = 0;
                for (index_t c = 0; c < params.in_channels; ++c) {
                    const float* plane = input + c * h * w;
                    for (index_t ky = 0; ky < params.kernel_h; ++ky) {
                        const index_t y = y0 + ky;
                        for (index_t kx = 0; kx < params.kernel_w; ++kx) {
                            const index_t x = x0 + kx;
                            if (y >= 0 && y < h && x >= 0 && x < w) {
                                acc += static_cast<double>(filter[tap])
                                    * plane[y * w + x];
                            }
                            ++tap;
                        }
                    }
                }
                output[oc * oh * ow + oy * ow + ox] =
                    static_cast<float>(acc);
            }
        }
    }
}

}  // namespace conv
}  // namespace cake
