// 2-D convolution lowered to CAKE GEMM — the workload the paper's
// introduction motivates ("most computations in the forward pass of a
// convolutional neural network consist of one matrix multiplication per
// convolutional layer"). NCHW tensors, im2col lowering, stride and
// zero-padding support, plus a direct-convolution oracle for testing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "core/cake_gemm.hpp"
#include "core/cake_gemm_int8.hpp"
#include "core/quant.hpp"

namespace cake {
namespace conv {

/// Convolution geometry. Dilation is fixed at 1.
struct Conv2dParams {
    index_t in_channels = 1;
    index_t out_channels = 1;
    index_t kernel_h = 3;
    index_t kernel_w = 3;
    index_t stride_h = 1;
    index_t stride_w = 1;
    index_t pad_h = 0;
    index_t pad_w = 0;

    /// Weight-matrix columns: one patch per row of the im2col matrix.
    [[nodiscard]] index_t patch_size() const
    {
        return in_channels * kernel_h * kernel_w;
    }
};

/// Output spatial extent for one dimension.
index_t conv_out_dim(index_t input, index_t kernel, index_t stride,
                     index_t pad);

/// im2col: lower one (C, H, W) feature map to an (out_h*out_w) x
/// (C*kh*kw) row-major patch matrix. Out-of-bounds taps read zero.
void im2col(const float* input, index_t h, index_t w,
            const Conv2dParams& params, float* cols);

/// Forward convolution for a batch of `n` NCHW images via im2col + GEMM.
/// `input`  : n x in_channels x h x w (contiguous)
/// `weights`: out_channels x (in_channels*kh*kw), row-major — i.e. one
///            filter per row; the GEMM uses op(B) = W^T via transpose
///            support, so no weight reshuffle is needed.
/// `output` : n x out_channels x out_h x out_w (contiguous), overwritten.
/// Returns the output spatial extent (out_h, out_w).
struct ConvExtent {
    index_t h = 0;
    index_t w = 0;
};
ConvExtent conv2d_forward(const float* input, index_t n, index_t h,
                          index_t w, const float* weights,
                          const Conv2dParams& params, float* output,
                          ThreadPool& pool);

/// Direct (no lowering) reference convolution for one image; oracle.
void conv2d_naive(const float* input, index_t h, index_t w,
                  const float* weights, const Conv2dParams& params,
                  float* output);

/// Quantized convolution weights: the filter matrix pre-quantized to s8
/// (symmetric) with per-layer scale and column sums for the zero-point
/// correction. Build once, reuse across every forward call.
class QuantizedConvWeights {
public:
    QuantizedConvWeights(const float* weights, const Conv2dParams& params);

    [[nodiscard]] const Conv2dParams& params() const { return params_; }

private:
    friend ConvExtent conv2d_forward_int8(const float*, index_t, index_t,
                                          index_t,
                                          const QuantizedConvWeights&,
                                          float*, ThreadPool&);
    Conv2dParams params_;
    AlignedBuffer<std::int8_t> wq_;        // out_c x patch, row-major
    QuantParams wq_params_;
    std::vector<std::int64_t> row_sums_;   // per-filter sums (for za corr.)
};

/// Quantized forward convolution: im2col patches are quantized to u8 per
/// image, multiplied on the int8 CAKE path, and dequantized with the
/// zero-point correction. Same tensor layout as conv2d_forward.
ConvExtent conv2d_forward_int8(const float* input, index_t n, index_t h,
                               index_t w, const QuantizedConvWeights& qw,
                               float* output, ThreadPool& pool);

}  // namespace conv
}  // namespace cake
