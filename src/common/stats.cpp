#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cake {

double mean(const std::vector<double>& xs)
{
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

double stdev(const std::vector<double>& xs)
{
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs) ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double median(std::vector<double> xs)
{
    if (xs.empty()) return 0.0;
    const std::size_t mid = xs.size() / 2;
    std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                     xs.end());
    double hi = xs[mid];
    if (xs.size() % 2 == 1) return hi;
    const double lo =
        *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lo + hi);
}

LineFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys)
{
    CAKE_CHECK(xs.size() == ys.size());
    CAKE_CHECK(xs.size() >= 2);
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxx = 0.0;
    double sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxy += (xs[i] - mx) * (ys[i] - my);
    }
    CAKE_CHECK_MSG(sxx > 0.0, "all x values identical");
    LineFit f;
    f.slope = sxy / sxx;
    f.intercept = my - f.slope * mx;
    return f;
}

LineFit line_through(double x0, double y0, double x1, double y1)
{
    CAKE_CHECK_MSG(x0 != x1, "degenerate line: x0 == x1");
    LineFit f;
    f.slope = (y1 - y0) / (x1 - x0);
    f.intercept = y0 - f.slope * x0;
    return f;
}

}  // namespace cake
