// The one warmup/repetition/min-of-N wall-clock measurement policy shared
// by the figure/ablation benches (bench/bench_io.hpp re-exports it) and
// the empirical plan autotuner (src/tune) — so a tuner measurement and a
// bench measurement of the same configuration are the same experiment.
//
// Min-of-N (not mean) because GEMM wall times on a busy host are
// one-sided: interference only ever adds time, so the minimum is the
// best estimate of the undisturbed run (GEMMbench's repeatability
// discipline, arXiv:1511.03742).
#pragma once

#include <algorithm>

#include "common/timer.hpp"

namespace cake {

/// Repetition discipline of one timed experiment.
struct TimingPolicy {
    int warmup = 1;  ///< untimed runs first (page-in, turbo, branch warmth)
    int reps = 3;    ///< timed runs; the minimum is reported

    [[nodiscard]] TimingPolicy clamped() const
    {
        return {std::max(warmup, 0), std::max(reps, 1)};
    }
};

/// Run `rep_seconds` (a callable returning one repetition's measured
/// seconds, e.g. driver-reported CakeStats::total_seconds) under `policy`
/// and return the minimum timed repetition.
template <typename Fn>
double min_seconds_reported(const TimingPolicy& policy, Fn&& rep_seconds)
{
    const TimingPolicy p = policy.clamped();
    for (int i = 0; i < p.warmup; ++i) (void)rep_seconds();
    double best = rep_seconds();
    for (int i = 1; i < p.reps; ++i) {
        best = std::min(best, static_cast<double>(rep_seconds()));
    }
    return best;
}

/// Same policy for a callable that does not time itself: each repetition
/// is bracketed with the steady-clock Timer.
template <typename Fn>
double min_seconds(const TimingPolicy& policy, Fn&& body)
{
    return min_seconds_reported(policy, [&] {
        Timer t;
        body();
        return t.seconds();
    });
}

}  // namespace cake
