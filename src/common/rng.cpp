#include "common/rng.hpp"

namespace cake {
namespace {

std::uint64_t splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed)
{
    for (auto& s : s_) s = splitmix64(seed);
    // Avoid the all-zero state (cannot occur with splitmix64, but cheap to
    // guarantee).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::next_double()
{
    // 53 high bits -> [0,1) double.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::next_float(float lo, float hi)
{
    return lo + static_cast<float>(next_double()) * (hi - lo);
}

std::uint64_t Rng::next_below(std::uint64_t bound)
{
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next_u64();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace cake
