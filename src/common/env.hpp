// Environment-variable configuration knobs (e.g. CAKE_FORCE_ISA=scalar).
#pragma once

#include <optional>
#include <string>

namespace cake {

/// Value of environment variable `name`, if set and non-empty.
std::optional<std::string> env_string(const char* name);

/// Integer value of environment variable `name`; nullopt if unset/unparsable.
std::optional<long> env_long(const char* name);

}  // namespace cake
