#include "common/aligned.hpp"

#include <cstdlib>
#include <new>

namespace cake {

void* aligned_malloc(std::size_t bytes, std::size_t alignment)
{
    if (bytes == 0) bytes = alignment;
    // std::aligned_alloc requires size to be a multiple of alignment.
    const std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
    void* p = std::aligned_alloc(alignment, rounded);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}

void aligned_free(void* p) noexcept
{
    std::free(p);
}

}  // namespace cake
