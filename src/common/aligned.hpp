// RAII aligned buffers for packed panels and matrices.
//
// In CAKE_CHECKED builds every AlignedBuffer is fenced and poisoned: a
// 64-byte canary guard precedes and follows the payload, and the payload
// itself is filled with signaling NaNs (byte poison for integral elements)
// at allocation. verify_canaries() traps if either guard was overwritten —
// the flush points of the GEMM drivers call it so a strided pack overrun
// is caught at the multiply that caused it, not crashes later. Release
// builds allocate exactly the payload and all of this compiles away.
#pragma once

#include <cstddef>
#include <utility>

#include "common/checked.hpp"
#include "common/types.hpp"

namespace cake {

/// Allocates `bytes` rounded up to a multiple of `alignment`, aligned to
/// `alignment`. Throws std::bad_alloc on failure.
void* aligned_malloc(std::size_t bytes, std::size_t alignment = kPanelAlignment);

/// Frees memory from aligned_malloc. Null-safe.
void aligned_free(void* p) noexcept;

/// Owning, 64-byte-aligned, zero-initialisable array of trivially copyable T.
/// Move-only; used for packed A/B/C panels where alignment matters for SIMD.
template <typename T>
class AlignedBuffer {
public:
    AlignedBuffer() = default;

    explicit AlignedBuffer(std::size_t count, bool zero = false)
        : size_(count)
    {
        if (count == 0) return;
#if CAKE_CHECKED_ENABLED
        // Layout: [front guard | payload | back guard]. kGuardBytes is a
        // multiple of kPanelAlignment, so the payload stays 64-byte aligned.
        raw_ = static_cast<unsigned char*>(
            aligned_malloc(count * sizeof(T) + 2 * checked::kGuardBytes));
        data_ = reinterpret_cast<T*>(raw_ + checked::kGuardBytes);
        checked::write_guard(raw_);
        checked::write_guard(raw_ + checked::kGuardBytes
                             + count * sizeof(T));
        checked::poison_fill(data_, count);
#else
        data_ = static_cast<T*>(aligned_malloc(count * sizeof(T)));
#endif
        if (zero) {
            for (std::size_t i = 0; i < count; ++i) data_[i] = T{};
        }
    }

    AlignedBuffer(const AlignedBuffer&) = delete;
    AlignedBuffer& operator=(const AlignedBuffer&) = delete;

    AlignedBuffer(AlignedBuffer&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
#if CAKE_CHECKED_ENABLED
          ,
          raw_(std::exchange(other.raw_, nullptr))
#endif
    {
    }

    AlignedBuffer& operator=(AlignedBuffer&& other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
#if CAKE_CHECKED_ENABLED
            raw_ = std::exchange(other.raw_, nullptr);
#endif
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    [[nodiscard]] T* data() noexcept { return data_; }
    [[nodiscard]] const T* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    T& operator[](std::size_t i) noexcept { return data_[i]; }
    const T& operator[](std::size_t i) const noexcept { return data_[i]; }

    /// Reallocate if the current capacity is smaller than `count`.
    /// Contents are NOT preserved (panel buffers are fully rewritten).
    void ensure(std::size_t count)
    {
        if (count <= size_) return;
        *this = AlignedBuffer(count);
    }

    /// Trap (CAKE_CHECKED builds) if either canary guard was overwritten;
    /// `what` names the buffer in the diagnostic. No-op in release builds.
    void verify_canaries([[maybe_unused]] const char* what) const
    {
#if CAKE_CHECKED_ENABLED
        if (raw_ == nullptr) return;
        if (!checked::guard_intact(raw_)) {
            checked::fail("canary",
                          std::string(what)
                              + ": front guard overwritten (buffer "
                                "underrun)");
        }
        if (!checked::guard_intact(raw_ + checked::kGuardBytes
                                   + size_ * sizeof(T))) {
            checked::fail("canary",
                          std::string(what)
                              + ": back guard overwritten (buffer overrun)");
        }
#endif
    }

private:
    void release() noexcept
    {
#if CAKE_CHECKED_ENABLED
        aligned_free(raw_);
        raw_ = nullptr;
#else
        aligned_free(data_);
#endif
        data_ = nullptr;
        size_ = 0;
    }

    T* data_ = nullptr;
    std::size_t size_ = 0;
#if CAKE_CHECKED_ENABLED
    unsigned char* raw_ = nullptr;  ///< allocation base (front guard)
#endif
};

}  // namespace cake
