// RAII aligned buffers for packed panels and matrices.
#pragma once

#include <cstddef>
#include <utility>

#include "common/types.hpp"

namespace cake {

/// Allocates `bytes` rounded up to a multiple of `alignment`, aligned to
/// `alignment`. Throws std::bad_alloc on failure.
void* aligned_malloc(std::size_t bytes, std::size_t alignment = kPanelAlignment);

/// Frees memory from aligned_malloc. Null-safe.
void aligned_free(void* p) noexcept;

/// Owning, 64-byte-aligned, zero-initialisable array of trivially copyable T.
/// Move-only; used for packed A/B/C panels where alignment matters for SIMD.
template <typename T>
class AlignedBuffer {
public:
    AlignedBuffer() = default;

    explicit AlignedBuffer(std::size_t count, bool zero = false)
        : size_(count)
    {
        if (count == 0) return;
        data_ = static_cast<T*>(aligned_malloc(count * sizeof(T)));
        if (zero) {
            for (std::size_t i = 0; i < count; ++i) data_[i] = T{};
        }
    }

    AlignedBuffer(const AlignedBuffer&) = delete;
    AlignedBuffer& operator=(const AlignedBuffer&) = delete;

    AlignedBuffer(AlignedBuffer&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {
    }

    AlignedBuffer& operator=(AlignedBuffer&& other) noexcept
    {
        if (this != &other) {
            aligned_free(data_);
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { aligned_free(data_); }

    [[nodiscard]] T* data() noexcept { return data_; }
    [[nodiscard]] const T* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    T& operator[](std::size_t i) noexcept { return data_[i]; }
    const T& operator[](std::size_t i) const noexcept { return data_[i]; }

    /// Reallocate if the current capacity is smaller than `count`.
    /// Contents are NOT preserved (panel buffers are fully rewritten).
    void ensure(std::size_t count)
    {
        if (count <= size_) return;
        *this = AlignedBuffer(count);
    }

private:
    T* data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace cake
