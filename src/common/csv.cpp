#include "common/csv.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace cake {

std::string format_number(double v, int precision)
{
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    CAKE_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells)
{
    CAKE_CHECK_MSG(cells.size() == header_.size(),
                   "row has " << cells.size() << " cells, header has "
                              << header_.size());
    rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int precision)
{
    std::vector<std::string> out;
    out.reserve(cells.size());
    for (double c : cells) out.push_back(format_number(c, precision));
    add_row(std::move(out));
}

void Table::print(std::ostream& os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (std::size_t c = 0; c < header_.size(); ++c)
        os << std::string(width[c], '-') << "  ";
    os << '\n';
    for (const auto& row : rows_) emit(row);
}

namespace {

std::string csv_escape(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"') out += "\"\"";
        else out += ch;
    }
    out += '"';
    return out;
}

}  // namespace

void Table::write_csv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << csv_escape(row[c]);
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
}

}  // namespace cake
