// Basic shared types for the CAKE library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cake {

/// Index type used for matrix dimensions and loop counters.
/// Signed so that reverse loops and differences are well behaved.
using index_t = std::int64_t;

/// Cache-line size assumed throughout (bytes). x86-64 and most ARM cores
/// use 64-byte lines; the memory simulator is configurable independently.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Alignment for all packed panels and matrix buffers (bytes).
/// 64 satisfies AVX-512 load/store alignment and cache-line alignment.
inline constexpr std::size_t kPanelAlignment = 64;

/// Dimensions of a matrix-multiplication problem C(MxN) = A(MxK) * B(KxN).
struct GemmShape {
    index_t m = 0;
    index_t n = 0;
    index_t k = 0;

    /// Number of multiply-accumulate operations in the computation space
    /// (the paper's M*N*K 3-D MAC volume, Fig. 2b).
    [[nodiscard]] double mac_volume() const
    {
        return static_cast<double>(m) * static_cast<double>(n)
            * static_cast<double>(k);
    }

    /// FLOP count using the conventional 2*M*N*K (one mul + one add per MAC).
    [[nodiscard]] double flops() const { return 2.0 * mac_volume(); }

    friend bool operator==(const GemmShape&, const GemmShape&) = default;
};

}  // namespace cake
