#include "common/matrix.hpp"

namespace cake {

double gemm_tolerance(index_t k)
{
    // Random-walk rounding term (sqrt(k)) plus a worst-case linear term:
    // with [-1,1) inputs, |C| itself grows like sqrt(k), so the absolute
    // error of sequential fp32 accumulation scales closer to eps*k/2 for
    // large k. Real bugs produce O(1)+ errors and stay detectable.
    const double kk = static_cast<double>(std::max<index_t>(k, 1));
    const double eps = std::numeric_limits<float>::epsilon();
    return eps * (8.0 * std::sqrt(kk) + 0.5 * kk);
}

double dgemm_tolerance(index_t k)
{
    const double kk = static_cast<double>(std::max<index_t>(k, 1));
    const double eps = std::numeric_limits<double>::epsilon();
    return eps * (8.0 * std::sqrt(kk) + 0.5 * kk);
}

}  // namespace cake
