// Minimal table/CSV emission so every bench can print the paper-style rows
// and optionally persist them for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cake {

/// Accumulates rows of stringified cells; renders as aligned text table or
/// CSV. Column count is fixed by the header.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Append a row; must have exactly as many cells as the header.
    void add_row(std::vector<std::string> cells);

    /// Convenience: cells may be numbers; formatted with %g-style precision.
    void add_row_numeric(const std::vector<double>& cells, int precision = 6);

    [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
    [[nodiscard]] const std::vector<std::string>& header() const
    {
        return header_;
    }
    [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const
    {
        return rows_;
    }

    /// Human-readable aligned rendering.
    void print(std::ostream& os) const;

    /// RFC-4180-ish CSV rendering (cells containing commas/quotes are quoted).
    void write_csv(std::ostream& os) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double compactly (used by Table::add_row_numeric and benches).
std::string format_number(double v, int precision = 6);

}  // namespace cake
