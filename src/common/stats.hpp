// Small statistics helpers for benches, the analytical model and the
// extrapolation engine (paper Figs 10-12 dotted lines).
#pragma once

#include <vector>

namespace cake {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stdev(const std::vector<double>& xs);

/// Median via nth_element copy; 0 for an empty sample.
double median(std::vector<double> xs);

/// Result of a least-squares straight-line fit y = slope*x + intercept.
struct LineFit {
    double slope = 0.0;
    double intercept = 0.0;

    [[nodiscard]] double operator()(double x) const
    {
        return slope * x + intercept;
    }
};

/// Least-squares fit through (x, y) pairs. Requires xs.size() == ys.size()
/// and at least two distinct x values.
LineFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Line through two points (x0,y0), (x1,y1); used by the paper-style
/// extrapolation ("the last two data points initialise the line").
LineFit line_through(double x0, double y0, double x1, double y1);

}  // namespace cake
