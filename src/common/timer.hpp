// Monotonic wall-clock timing for benches and examples.
#pragma once

#include <chrono>

namespace cake {

/// Simple steady-clock stopwatch. Construction starts it.
class Timer {
public:
    Timer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Elapsed seconds since construction or last reset().
    [[nodiscard]] double seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace cake
