// Checked-access instrumentation for the CAKE hot paths.
//
// The packing and micro-kernel layers are raw pointer arithmetic over
// mr/nr/kc strides; the compiler never sees the tiling invariants that make
// that arithmetic safe. This header provides a debug-mode subsystem that
// makes every such access checkable:
//
//   * CheckedSpan<T>  — a pointer + extent (+ a name for diagnostics) whose
//     indexing and slicing trap on out-of-bounds access.
//   * TileView<T>     — a 2-D rows x cols view with a leading dimension and
//     a required base alignment, for kernel dispatch boundaries.
//   * poisoning       — freshly allocated pack buffers are filled with
//     signaling NaNs (byte patterns for integral elements) and fenced with
//     front/back canary guards, verified when the buffers are flushed.
//
// Build modes:
//   * CAKE_CHECKED builds (cmake -DCAKE_CHECKED=ON) define CAKE_CHECKED=1
//     and enable every check. A violated check calls checked::fail(),
//     which invokes the installed trap handler (tests install a throwing
//     one) and otherwise prints a precise diagnostic and aborts.
//   * Release builds compile the same call sites to raw pointers: Span<T>
//     IS T*, slicing is pointer addition, and the poison/canary/alignment
//     helpers are empty inline functions. No CheckedSpan symbol exists in
//     release objects — the class is not even declared.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <type_traits>

#include "common/error.hpp"
#include "common/types.hpp"

#if defined(CAKE_CHECKED) && CAKE_CHECKED
#define CAKE_CHECKED_ENABLED 1
#else
#define CAKE_CHECKED_ENABLED 0
#endif

namespace cake {

/// Thrown by a test-installed trap handler; production checked builds
/// abort instead so a corrupted address space is never unwound through.
class CheckedError : public Error {
public:
    explicit CheckedError(const std::string& what) : Error(what) {}
};

namespace checked {

/// Handler invoked on a failed check before the default abort. A handler
/// that throws (tests) prevents the abort; a handler that returns does not.
using TrapHandler = void (*)(const char* kind, const std::string& message);

inline TrapHandler& trap_handler_slot()
{
    static TrapHandler handler = nullptr;
    return handler;
}

/// Install (or with nullptr, remove) the process-wide trap handler.
/// Returns the previous handler so scoped installers can restore it.
inline TrapHandler set_trap_handler(TrapHandler handler)
{
    TrapHandler previous = trap_handler_slot();
    trap_handler_slot() = handler;
    return previous;
}

/// Report a violated checked-access invariant: run the trap handler (which
/// may throw), then print and abort. Never returns normally.
[[noreturn]] inline void fail(const char* kind, const std::string& message)
{
    if (TrapHandler handler = trap_handler_slot(); handler != nullptr) {
        handler(kind, message);
    }
    std::fprintf(stderr, "CAKE_CHECKED trap [%s]: %s\n", kind,
                 message.c_str());
    std::abort();
}

/// True iff `p` is aligned to `alignment` (a power of two).
inline bool is_aligned(const void* p, std::size_t alignment)
{
    return (reinterpret_cast<std::uintptr_t>(p) & (alignment - 1)) == 0;
}

// ---------------------------------------------------------------------------
// Poison and canary patterns.
// ---------------------------------------------------------------------------

/// Byte value the front/back buffer guards are filled with.
inline constexpr unsigned char kCanaryByte = 0xC5;
/// Guard region size on each side of a poisoned buffer, bytes. One cache
/// line keeps the payload's 64-byte alignment intact.
inline constexpr std::size_t kGuardBytes = 64;
/// Byte value non-float payloads are poisoned with.
inline constexpr unsigned char kPoisonByte = 0xAB;
/// Signaling-NaN bit patterns used to poison float/double payloads: any
/// arithmetic read of an unpacked element raises FE_INVALID and propagates
/// a NaN straight into the result, where tests catch it.
inline constexpr std::uint32_t kPoisonF32 = 0x7FA00001u;
inline constexpr std::uint64_t kPoisonF64 = 0x7FF4000000000001ull;

template <typename T>
inline void poison_fill(T* data, std::size_t count)
{
    if (data == nullptr || count == 0) return;
    if constexpr (std::is_floating_point_v<T> && sizeof(T) == 4) {
        for (std::size_t i = 0; i < count; ++i) {
            std::memcpy(data + i, &kPoisonF32, sizeof(std::uint32_t));
        }
    } else if constexpr (std::is_floating_point_v<T> && sizeof(T) == 8) {
        for (std::size_t i = 0; i < count; ++i) {
            std::memcpy(data + i, &kPoisonF64, sizeof(std::uint64_t));
        }
    } else {
        std::memset(data, kPoisonByte, count * sizeof(T));
    }
}

/// True iff `v` still holds the poison pattern written by poison_fill.
template <typename T>
inline bool is_poison(const T& v)
{
    if constexpr (std::is_floating_point_v<T> && sizeof(T) == 4) {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        return bits == kPoisonF32;
    } else if constexpr (std::is_floating_point_v<T> && sizeof(T) == 8) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        return bits == kPoisonF64;
    } else {
        const unsigned char* bytes =
            reinterpret_cast<const unsigned char*>(&v);
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            if (bytes[i] != kPoisonByte) return false;
        }
        return true;
    }
}

inline void write_guard(unsigned char* guard)
{
    std::memset(guard, kCanaryByte, kGuardBytes);
}

inline bool guard_intact(const unsigned char* guard)
{
    for (std::size_t i = 0; i < kGuardBytes; ++i) {
        if (guard[i] != kCanaryByte) return false;
    }
    return true;
}

}  // namespace checked

#if CAKE_CHECKED_ENABLED

// ---------------------------------------------------------------------------
// Checked build: spans and views carry extents and trap on misuse.
// ---------------------------------------------------------------------------

/// Pointer + extent + diagnostic name. Indexing and slicing trap on any
/// access outside [0, size). Exists only in CAKE_CHECKED builds; release
/// builds use a raw pointer in its place (see Span<T> below).
template <typename T>
class CheckedSpan {
public:
    CheckedSpan() = default;
    CheckedSpan(T* data, std::size_t size, const char* what = "span")
        : data_(data), size_(size), what_(what)
    {
        if (data == nullptr && size != 0) {
            checked::fail("null-span",
                          std::string(what) + ": null data with size "
                              + std::to_string(size));
        }
    }

    [[nodiscard]] T* data() const { return data_; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] const char* what() const { return what_; }

    T& operator[](index_t i) const
    {
        if (i < 0 || static_cast<std::size_t>(i) >= size_) {
            std::ostringstream os;
            os << what_ << ": index " << i << " outside extent " << size_;
            checked::fail("out-of-bounds", os.str());
        }
        return data_[i];
    }

    /// Checked sub-range [offset, offset + count).
    [[nodiscard]] CheckedSpan subspan(index_t offset, index_t count) const
    {
        if (offset < 0 || count < 0
            || static_cast<std::size_t>(offset) + static_cast<std::size_t>(count)
                > size_) {
            std::ostringstream os;
            os << what_ << ": slice [" << offset << ", " << offset + count
               << ") outside extent " << size_;
            checked::fail("out-of-bounds", os.str());
        }
        return CheckedSpan(data_ + offset, static_cast<std::size_t>(count),
                           what_);
    }

private:
    T* data_ = nullptr;
    std::size_t size_ = 0;
    const char* what_ = "span";
};

/// 2-D rows x cols view with a leading dimension and a required base
/// alignment — the shape of every operand crossing a kernel dispatch
/// boundary. at() traps on out-of-range element access; construction traps
/// on a misaligned base or an ld that cannot hold a row.
template <typename T>
class TileView {
public:
    TileView(T* data, index_t rows, index_t cols, index_t ld,
             std::size_t alignment, const char* what = "tile")
        : data_(data), rows_(rows), cols_(cols), ld_(ld), what_(what)
    {
        if (rows < 0 || cols < 0 || ld < cols) {
            std::ostringstream os;
            os << what << ": invalid geometry rows=" << rows
               << " cols=" << cols << " ld=" << ld;
            checked::fail("bad-tile", os.str());
        }
        if (rows > 0 && cols > 0 && data == nullptr) {
            checked::fail("null-tile", std::string(what) + ": null base");
        }
        if (alignment > 1 && !checked::is_aligned(data, alignment)) {
            std::ostringstream os;
            os << what << ": base " << static_cast<const void*>(data)
               << " not aligned to " << alignment << " bytes";
            checked::fail("misaligned", os.str());
        }
    }

    [[nodiscard]] T* data() const { return data_; }
    [[nodiscard]] index_t rows() const { return rows_; }
    [[nodiscard]] index_t cols() const { return cols_; }
    [[nodiscard]] index_t ld() const { return ld_; }

    T& at(index_t r, index_t c) const
    {
        if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
            std::ostringstream os;
            os << what_ << ": element (" << r << ", " << c
               << ") outside " << rows_ << " x " << cols_ << " tile";
            checked::fail("out-of-bounds", os.str());
        }
        return data_[r * ld_ + c];
    }

private:
    T* data_ = nullptr;
    index_t rows_ = 0;
    index_t cols_ = 0;
    index_t ld_ = 0;
    const char* what_ = "tile";
};

/// The span type hot-path code is written against: checked here, a raw
/// pointer in release builds.
template <typename T>
using Span = CheckedSpan<T>;

template <typename T>
[[nodiscard]] inline Span<T> make_span(T* data, std::size_t size,
                                       const char* what)
{
    return CheckedSpan<T>(data, size, what);
}

/// Checked sub-range of a span; compiles to `s + offset` in release.
template <typename T>
[[nodiscard]] inline Span<T> span_slice(const Span<T>& s, index_t offset,
                                        index_t count)
{
    return s.subspan(offset, count);
}

/// Raw pointer of a span (for memcpy/memset bodies after a validating
/// slice); identity in release.
template <typename T>
[[nodiscard]] inline T* span_data(const Span<T>& s)
{
    return s.data();
}

/// Trap unless `p` is aligned to `alignment` bytes; no-op in release.
inline void require_aligned(const void* p, std::size_t alignment,
                            const char* what)
{
    if (!checked::is_aligned(p, alignment)) {
        std::ostringstream os;
        os << what << ": pointer " << p << " not aligned to " << alignment
           << " bytes";
        checked::fail("misaligned", os.str());
    }
}

/// Trap unless offset+count fits the stated capacity; no-op in release.
inline void require_extent(index_t offset, index_t count,
                           std::size_t capacity, const char* what)
{
    if (offset < 0 || count < 0
        || static_cast<std::size_t>(offset) + static_cast<std::size_t>(count)
            > capacity) {
        std::ostringstream os;
        os << what << ": range [" << offset << ", " << offset + count
           << ") outside capacity " << capacity;
        checked::fail("out-of-bounds", os.str());
    }
}

#else  // !CAKE_CHECKED_ENABLED

// ---------------------------------------------------------------------------
// Release build: spans ARE raw pointers, every helper is an inline no-op.
// CheckedSpan/TileView are intentionally not declared so no symbol of
// either can appear in release objects.
// ---------------------------------------------------------------------------

template <typename T>
using Span = T*;

template <typename T>
[[nodiscard]] constexpr T* make_span(T* data, std::size_t /*size*/,
                                     const char* /*what*/)
{
    return data;
}

template <typename T>
[[nodiscard]] constexpr T* span_slice(T* s, index_t offset,
                                      index_t /*count*/)
{
    return s + offset;
}

template <typename T>
[[nodiscard]] constexpr T* span_data(T* s)
{
    return s;
}

constexpr void require_aligned(const void* /*p*/, std::size_t /*alignment*/,
                               const char* /*what*/)
{
}

constexpr void require_extent(index_t /*offset*/, index_t /*count*/,
                              std::size_t /*capacity*/, const char* /*what*/)
{
}

#endif  // CAKE_CHECKED_ENABLED

}  // namespace cake
