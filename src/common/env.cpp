#include "common/env.hpp"

#include <cstdlib>

namespace cake {

std::optional<std::string> env_string(const char* name)
{
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return std::nullopt;
    return std::string(v);
}

std::optional<long> env_long(const char* name)
{
    auto s = env_string(name);
    if (!s) return std::nullopt;
    char* end = nullptr;
    const long v = std::strtol(s->c_str(), &end, 10);
    if (end == s->c_str() || *end != '\0') return std::nullopt;
    return v;
}

}  // namespace cake
