// Deterministic pseudo-random number generation (xoshiro256++).
// Tests and benches need reproducible matrices independent of libstdc++'s
// distribution implementations, so we ship our own generator and uniform
// transforms.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace cake {

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    /// Re-initialise the state from a single seed via splitmix64.
    void reseed(std::uint64_t seed);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform in [0, 1).
    double next_double();

    /// Uniform float in [lo, hi).
    float next_float(float lo, float hi);

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    std::uint64_t next_below(std::uint64_t bound);

private:
    std::uint64_t s_[4] = {};
};

}  // namespace cake
