// Row-major matrix containers and non-owning views used across the
// library. Element type is templated (float for sgemm, double for dgemm);
// `Matrix` remains the float alias used throughout the original API.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace cake {

/// Non-owning view of a row-major matrix (possibly a sub-matrix: the leading
/// dimension `ld` may exceed `cols`).
template <typename T>
struct MatrixView {
    T* data = nullptr;
    index_t rows = 0;
    index_t cols = 0;
    index_t ld = 0;  ///< leading dimension (elements between row starts)

    T& at(index_t r, index_t c) const { return data[r * ld + c]; }

    /// Sub-view of `r x c` elements starting at (r0, c0). Bounds-checked.
    MatrixView sub(index_t r0, index_t c0, index_t r, index_t c) const
    {
        CAKE_CHECK(r0 >= 0 && c0 >= 0 && r >= 0 && c >= 0);
        CAKE_CHECK(r0 + r <= rows && c0 + c <= cols);
        return {data + r0 * ld + c0, r, c, ld};
    }
};

using ConstMatrixViewF = MatrixView<const float>;
using MatrixViewF = MatrixView<float>;

/// Owning, aligned, row-major matrix of float or double.
template <typename T>
class MatrixT {
public:
    using value_type = T;

    MatrixT() = default;
    MatrixT(index_t rows, index_t cols, bool zero = true)
        : rows_(rows), cols_(cols),
          buf_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               zero)
    {
        CAKE_CHECK(rows >= 0 && cols >= 0);
    }

    [[nodiscard]] index_t rows() const { return rows_; }
    [[nodiscard]] index_t cols() const { return cols_; }
    [[nodiscard]] index_t size() const { return rows_ * cols_; }

    [[nodiscard]] T* data() { return buf_.data(); }
    [[nodiscard]] const T* data() const { return buf_.data(); }

    T& at(index_t r, index_t c) { return buf_[idx(r, c)]; }
    [[nodiscard]] T at(index_t r, index_t c) const { return buf_[idx(r, c)]; }

    [[nodiscard]] MatrixView<T> view()
    {
        return {buf_.data(), rows_, cols_, cols_};
    }
    [[nodiscard]] MatrixView<const T> view() const
    {
        return {buf_.data(), rows_, cols_, cols_};
    }

    /// Fill with uniform values in [lo, hi) from a deterministic generator.
    void fill_random(Rng& rng, T lo = T(-1), T hi = T(1))
    {
        T* p = buf_.data();
        const std::size_t n = buf_.size();
        for (std::size_t i = 0; i < n; ++i) {
            p[i] = lo + static_cast<T>(rng.next_double()) * (hi - lo);
        }
    }

    /// Fill every element with `v`.
    void fill(T v)
    {
        std::fill(buf_.data(), buf_.data() + buf_.size(), v);
    }

    /// Fill so at(r,c) = f(r,c); handy for structured test matrices.
    template <typename F>
    void fill_with(F&& f)
    {
        for (index_t r = 0; r < rows_; ++r)
            for (index_t c = 0; c < cols_; ++c) at(r, c) = f(r, c);
    }

private:
    [[nodiscard]] std::size_t idx(index_t r, index_t c) const
    {
        return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_)
            + static_cast<std::size_t>(c);
    }

    index_t rows_ = 0;
    index_t cols_ = 0;
    AlignedBuffer<T> buf_;
};

using Matrix = MatrixT<float>;
using MatrixD = MatrixT<double>;

/// Maximum absolute elementwise difference between two equal-shaped matrices.
template <typename T>
double max_abs_diff(const MatrixT<T>& a, const MatrixT<T>& b)
{
    CAKE_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
    double worst = 0.0;
    const T* pa = a.data();
    const T* pb = b.data();
    const index_t n = a.size();
    for (index_t i = 0; i < n; ++i) {
        worst = std::max(
            worst, std::abs(static_cast<double>(pa[i])
                            - static_cast<double>(pb[i])));
    }
    return worst;
}

/// Maximum relative difference, with absolute floor `abs_floor` to avoid
/// division blow-up near zero: |a-b| / max(|a|,|b|,abs_floor).
template <typename T>
double max_rel_diff(const MatrixT<T>& a, const MatrixT<T>& b,
                    double abs_floor = 1.0)
{
    CAKE_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
    double worst = 0.0;
    const T* pa = a.data();
    const T* pb = b.data();
    const index_t n = a.size();
    for (index_t i = 0; i < n; ++i) {
        const double va = pa[i];
        const double vb = pb[i];
        const double scale = std::max({std::abs(va), std::abs(vb), abs_floor});
        worst = std::max(worst, std::abs(va - vb) / scale);
    }
    return worst;
}

/// Tolerance for comparing a float32 GEMM against a float64 oracle across a
/// reduction of length k (random [-1,1) inputs).
double gemm_tolerance(index_t k);

/// Same for a float64 GEMM against a long-double-accumulation oracle.
double dgemm_tolerance(index_t k);

}  // namespace cake
