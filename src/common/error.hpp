// Error handling: invariant checks that throw, never abort, so library
// users can recover and tests can assert on failures.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cake {

/// Exception thrown on violated preconditions or invariants.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr,
                                             const char* file, int line,
                                             const std::string& msg)
{
    std::ostringstream os;
    os << file << ':' << line << ": check failed: " << expr;
    if (!msg.empty()) os << " — " << msg;
    throw Error(os.str());
}

}  // namespace detail

}  // namespace cake

/// Precondition/invariant check active in all build types.
#define CAKE_CHECK(expr)                                                      \
    do {                                                                      \
        if (!(expr))                                                          \
            ::cake::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                                std::string{});              \
    } while (false)

/// Check with a streamed context message: CAKE_CHECK_MSG(x > 0, "x=" << x).
#define CAKE_CHECK_MSG(expr, stream_expr)                                     \
    do {                                                                      \
        if (!(expr)) {                                                        \
            std::ostringstream cake_check_os_;                               \
            cake_check_os_ << stream_expr;                                   \
            ::cake::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                                cake_check_os_.str());       \
        }                                                                     \
    } while (false)
