// Exporters and terminal self-profile for the obs tracer/metrics.
//
// Three output forms:
//   * Chrome/Perfetto trace-event JSON (object form, "X" complete events
//     with ts/dur in microseconds, "M" metadata naming each worker lane) —
//     loadable in ui.perfetto.dev or chrome://tracing.
//   * Flat metrics JSON and a common/csv Table for terminal / CSV reuse.
//   * ProfileReport: per-worker phase totals, top spans, barrier-stall
//     attribution and an ASCII overlap timeline for tools/cake_trace.
//
// The whole header is gated on CAKE_OBS_ENABLED: in compiled-out builds
// (-DCAKE_TRACE_DISABLED=ON) export.cpp is an empty TU and callers must be
// gated too (tools/cake_trace and the obs tests are).
#pragma once

#include "obs/trace.hpp"

#if CAKE_OBS_ENABLED

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"

namespace cake {
namespace obs {

// --- Perfetto / chrome://tracing --------------------------------------

/// Write `{"traceEvents":[...]}` JSON. Lanes (tid) are worker ids; events
/// recorded outside a team job get lanes 1000+thread_index. Timestamps are
/// microseconds, rebased so the earliest event starts at ~0.
void write_perfetto_json(const TraceDump& dump, std::ostream& os);

/// write_perfetto_json to `path`; false if the file cannot be written.
bool write_perfetto_json_file(const TraceDump& dump, const std::string& path);

/// Structural validation of a Perfetto trace produced by the writer above:
/// parses the JSON with a minimal reader and checks the trace-event
/// contract ("traceEvents" array; every element has string "ph"; "X"
/// events carry numeric ts/dur and pid/tid/name). On failure returns false
/// and, when `error` is non-null, a one-line reason.
bool validate_perfetto_json(const std::string& json,
                            std::string* error = nullptr);

// --- metrics ----------------------------------------------------------

/// Flat JSON: {"metrics":[{name,kind,count,value,bounds,buckets,p50,p99}]}.
void write_metrics_json(const std::vector<MetricSnapshot>& snapshots,
                        std::ostream& os);

/// Table: name | kind | count | value | p50 | p90 | p99 (quantiles blank
/// for non-histograms). Renders via Table::print / write_csv.
Table metrics_table(const std::vector<MetricSnapshot>& snapshots);

// --- self-profile -----------------------------------------------------

/// Per-worker busy-time decomposition, seconds.
struct WorkerProfile {
    std::int32_t worker = -1;  ///< team tid; -1 = outside any team job
    double pack_s = 0;
    double compute_s = 0;
    double flush_s = 0;
    double barrier_s = 0;  ///< stall: SpinBarrier waits
    double other_s = 0;
    std::uint64_t events = 0;

    [[nodiscard]] double busy_s() const
    {
        return pack_s + compute_s + flush_s + other_s;
    }
};

/// Aggregate statistics for one span name.
struct SpanStat {
    std::string name;
    Phase phase = Phase::kNone;
    std::uint64_t count = 0;
    double total_s = 0;
    double mean_ns = 0;
    double max_ns = 0;
};

struct ProfileReport {
    std::vector<WorkerProfile> workers;  ///< ascending worker id
    std::vector<SpanStat> spans;         ///< descending total_s
    std::uint64_t total_events = 0;
    std::uint64_t total_dropped = 0;
    double t_begin_s = 0;  ///< earliest span start on the trace clock
    double t_end_s = 0;    ///< latest span end

    /// Hardware-counter deltas attributed to the same (worker, phase)
    /// cells as the spans above — filled by profile() when the perf layer
    /// is still armed at profiling time, empty otherwise (compiled out,
    /// disarmed, or counters denied; perf.workers is then empty and
    /// perf.availability says why).
    perf::PerfDump perf;

    [[nodiscard]] double wall_s() const { return t_end_s - t_begin_s; }

    /// Sum of a phase across workers, seconds.
    [[nodiscard]] double phase_total_s(Phase phase) const;
};

/// Aggregate a dump into per-worker / per-span statistics. When the perf
/// counter layer is armed (perf::enabled()), also snapshots its per-phase
/// accumulators into `.perf` — call profile() BEFORE perf::disable().
ProfileReport profile(const TraceDump& dump);

/// worker | pack_s | compute_s | flush_s | barrier_s | other_s | events
Table worker_table(const ProfileReport& report);

/// span | phase | count | total_s | mean_ns | max_ns (top `top_n`).
Table span_table(const ProfileReport& report, std::size_t top_n = 12);

/// Barrier-wait stall attribution: worker | barrier_s | share of that
/// worker's traced time | share of all barrier time.
Table stall_table(const ProfileReport& report);

/// ASCII overlap timeline, one row per worker lane, `columns` time slices
/// wide. Each cell shows the dominant phase in its slice: P=pack,
/// C=compute, F=flush, b=barrier-wait, o=other, '.'=idle.
std::string overlap_timeline(const TraceDump& dump, int columns = 72);

/// Per-phase hardware-counter columns (summed over workers): phase |
/// <one column per counter spec> | ipc | miss_mb, with a trailing total
/// row. Counters that never opened/scheduled render "-"; when the whole
/// group was denied every cell is "-" (the degraded mode cake_perf and CI
/// exercise).
Table perf_phase_table(const ProfileReport& report);

/// Per-worker counter totals: worker | <counter columns> | ipc.
Table perf_worker_table(const ProfileReport& report);

/// Modelled vs measured roofline operating point for a run of `flops`
/// over `seconds`: source | dram_gb | ai_flop_per_byte | gflops. The
/// modelled row uses `modelled_dram_bytes` (Eq.-2 / schedule-IR); the
/// measured row derives bytes from LLC-load-misses and renders "-" when
/// counters were unavailable.
Table operating_point_table(const ProfileReport& report, double flops,
                            double seconds, double modelled_dram_bytes);

}  // namespace obs
}  // namespace cake

#endif  // CAKE_OBS_ENABLED
