// Silicon-truth counters for the CB-block pipeline: perf_event groups with
// per-worker, per-phase attribution.
//
// Every other verification layer in this tree (audit, schedule-IR, memsim,
// locality) checks the paper's Eq.-2 DRAM-traffic claim against *models and
// simulators*. This layer reads the hardware: a PerfCounterGroup opens one
// perf_event group per thread (cycles, instructions, LLC-loads,
// LLC-load-misses, stalled backend cycles by default), and RAII
// ScopedPhaseDelta scopes — placed exactly where the executors already emit
// obs::ScopedSpan trace spans — accumulate grouped counter deltas into
// (worker id, phase) cells. The worker id is the same ThreadPool
// attribution the tracer uses (obs::thread_worker(), set by ScopedWorkerId
// around every job), so trace spans and counter deltas agree on who did
// what. tools/cake_perf turns the collected deltas into per-phase counter
// tables, a measured arithmetic-intensity operating point, and the
// model-vs-silicon divergence gate (obs.perf.dram_divergence).
//
// Graceful degradation is a hard requirement: containers and hardened
// kernels (perf_event_paranoid >= 2 without CAP_PERFMON, seccomp filters,
// VMs without a virtualised PMU) routinely deny some or all events. Every
// entry point below works in that world — groups open what they can,
// remember why the rest failed (Availability::reason), and readers render
// "-" for counters that never scheduled. Nothing in this layer ever aborts
// a multiply.
//
// Concurrency contract (same as trace.hpp): each thread owns its counter
// group and accumulator cells exclusively; enable()/disable()/reset()/
// collect() are control-plane calls that must only run at quiescent points
// (after the ThreadPool join that ends a multiply). Hot-path cost when
// disarmed: one relaxed atomic load per ScopedPhaseDelta.
//
// Build modes: the layer rides the obs gate (-DCAKE_TRACE_DISABLED=ON
// compiles it out with the rest of src/obs) and additionally honours
// -DCAKE_PERF_DISABLED=ON, which compiles out ONLY the counter layer —
// every function below becomes a constexpr/inline no-op, perf.cpp becomes
// an empty translation unit, and no cake::obs::perf symbol reaches release
// objects (nm-gated in .github/workflows/analysis.yml). Non-Linux hosts
// degrade the same way at compile time.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"  // CAKE_OBS_ENABLED, Phase, thread_worker()

#if defined(CAKE_PERF_DISABLED) && CAKE_PERF_DISABLED
#define CAKE_PERF_ENABLED 0
#elif CAKE_OBS_ENABLED && defined(__linux__)
#define CAKE_PERF_ENABLED 1
#else
#define CAKE_PERF_ENABLED 0
#endif

namespace cake {
namespace obs {
namespace perf {

/// Number of Phase enumerators (kNone..kOther) — accumulator array size.
inline constexpr std::size_t kPhaseCount = 6;

/// Upper bound on counters per group. Grouped events must co-schedule on
/// one PMU, which tops out well below this on every CPU we target.
inline constexpr std::size_t kMaxCounters = 8;

/// One event to open: a raw (type, config) pair from linux/perf_event.h,
/// kept as plain integers so this header parses on non-Linux builds.
/// `name` must have static storage duration (string literals).
struct CounterSpec {
    const char* name = "";
    std::uint32_t type = 0;    ///< PERF_TYPE_*
    std::uint64_t config = 0;  ///< PERF_COUNT_* (or cache-event triple)
};

/// Multiplexing-scaled counter values for one scope (or an accumulation of
/// scopes). Slot i corresponds to spec i of the group that produced it;
/// `available[i]` is false when that event never opened or never scheduled,
/// and readers must render "-" for it rather than 0.
struct CounterSet {
    std::size_t n = 0;  ///< live slots (== the group's spec count)
    std::array<std::uint64_t, kMaxCounters> value{};
    std::array<bool, kMaxCounters> available{};
    std::uint64_t time_enabled_ns = 0;
    std::uint64_t time_running_ns = 0;

    [[nodiscard]] bool any() const
    {
        for (std::size_t i = 0; i < n; ++i) {
            if (available[i]) return true;
        }
        return false;
    }

    CounterSet& operator+=(const CounterSet& o)
    {
        if (o.n > n) n = o.n;
        for (std::size_t i = 0; i < o.n; ++i) {
            if (!o.available[i]) continue;
            value[i] += o.value[i];
            available[i] = true;
        }
        time_enabled_ns += o.time_enabled_ns;
        time_running_ns += o.time_running_ns;
        return *this;
    }
};

/// Why (and how far) perf_event_open works for this process.
struct Availability {
    bool usable = false;      ///< at least one default counter opens
    std::size_t opened = 0;   ///< how many of the probed specs opened
    std::string reason;       ///< first failure, errno-decoded, for banners
};

/// Counter deltas one worker accumulated, split by execution phase.
struct WorkerPerf {
    std::int32_t worker = -1;  ///< team tid; -1 = outside any team job
    std::array<CounterSet, kPhaseCount> phase{};

    [[nodiscard]] CounterSet total() const
    {
        CounterSet t;
        for (const CounterSet& p : phase) t += p;
        return t;
    }
};

/// Snapshot of every thread's accumulators, merged by worker id.
struct PerfDump {
    std::vector<CounterSpec> specs;    ///< slot meaning for every CounterSet
    std::vector<WorkerPerf> workers;   ///< ascending worker id (-1 first)
    Availability availability;
    std::uint64_t line_bytes = 64;     ///< cache line size used for bytes

    [[nodiscard]] CounterSet total() const
    {
        CounterSet t;
        for (const WorkerPerf& w : workers) t += w.total();
        return t;
    }

    /// Slot index of the spec called `name`, or -1.
    [[nodiscard]] int slot(const char* name) const;

    /// Scaled count of the spec called `name` summed over all workers and
    /// phases; false when that counter never scheduled anywhere.
    [[nodiscard]] bool total_of(const char* name, std::uint64_t* out) const;
};

/// Measured-vs-predicted DRAM read traffic (the Eq.-2 divergence gate).
/// `measured_bytes` = LLC-load-miss count x cache line size: demand loads
/// that left the last-level cache. Hardware prefetchers fetch streams the
/// demand-miss counter never sees, so on real silicon measured demand-miss
/// bytes routinely sit BELOW the model for streaming GEMM traffic — the
/// gate's tolerance is therefore generous and two-sided.
struct Divergence {
    bool measured = false;       ///< counters were available
    double measured_bytes = 0;   ///< LLC-load-misses x line_bytes
    double predicted_bytes = 0;  ///< Eq.-2 / schedule-IR / memsim reads
    double ratio = 0;            ///< measured / predicted
    double divergence = 0;       ///< |measured - predicted| / predicted
};

/// Counter-derived roofline operating point for one timed run.
struct OperatingPoint {
    bool measured = false;
    double flops = 0;
    double seconds = 0;
    double dram_bytes = 0;  ///< measured LLC-load-miss bytes
    double ai = 0;          ///< flops / dram_bytes
    double gflops = 0;
};

#if CAKE_PERF_ENABLED

/// The default hardware group: cycles, instructions, llc-loads,
/// llc-load-misses, stalled-cycles-backend.
[[nodiscard]] std::vector<CounterSpec> default_counter_specs();

/// Software events (task-clock-ns, page-faults, context-switches). These
/// open even where the PMU is absent or denied (perf_event_paranoid
/// permitting) — the tests use them to exercise the live read path in
/// PMU-less CI containers.
[[nodiscard]] std::vector<CounterSpec> software_counter_specs();

/// A perf_event group owned by the calling thread: the first spec that
/// opens becomes the leader, later ones join it, failures are recorded and
/// skipped. Reads are grouped (one syscall) and multiplexing-scaled.
/// Move-only; closes its fds on destruction. Must be read from the thread
/// that constructed it (perf self-monitoring fds count the opening task).
class PerfCounterGroup {
public:
    PerfCounterGroup() = default;
    explicit PerfCounterGroup(const std::vector<CounterSpec>& specs);
    ~PerfCounterGroup();
    PerfCounterGroup(PerfCounterGroup&& o) noexcept;
    PerfCounterGroup& operator=(PerfCounterGroup&& o) noexcept;
    PerfCounterGroup(const PerfCounterGroup&) = delete;
    PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

    /// True iff at least one event opened.
    [[nodiscard]] bool usable() const { return leader_ >= 0; }

    /// First open failure, errno-decoded; empty when everything opened.
    [[nodiscard]] const std::string& error() const { return error_; }

    [[nodiscard]] const std::vector<CounterSpec>& specs() const
    {
        return specs_;
    }

    /// Grouped read of current raw totals (values are cumulative since
    /// open; scale deltas with delta(), which handles multiplexing).
    /// False when the group is unusable or the read fails.
    [[nodiscard]] bool read(CounterSet* out) const;

    /// end - begin, multiplexing-scaled over the interval: each raw delta
    /// is inflated by (delta time_enabled / delta time_running) so counts
    /// stay comparable when the kernel rotates groups on and off the PMU.
    [[nodiscard]] static CounterSet delta(const CounterSet& begin,
                                          const CounterSet& end);

private:
    void close_all() noexcept;

    std::vector<CounterSpec> specs_;
    std::array<int, kMaxCounters> fd_{};
    std::array<int, kMaxCounters> read_pos_{};  ///< slot -> group-read index
    int leader_ = -1;
    std::size_t opened_ = 0;
    std::string error_;
};

// --- runtime control (quiescent points only) ----------------------------

/// Can this process open the default hardware group? Probes once on the
/// calling thread, caches the answer for the process lifetime.
[[nodiscard]] Availability probe();

/// Arm per-phase accumulation with the default hardware specs (or an
/// explicit spec list — the tests pass software_counter_specs()). Threads
/// open their groups lazily on first scoped delta (or eagerly via
/// ensure_thread_counters()). Returns false when nothing can open — the
/// layer stays armed anyway and every scope degrades to a cheap no-op.
bool enable();
bool enable(std::vector<CounterSpec> specs);

/// Disarm accumulation. Accumulated deltas remain collectable.
void disable();

/// Drop every thread's group and accumulators (threads re-open on next
/// use). Must not run concurrently with scoped sections.
void reset();

/// True iff accumulation is armed. One relaxed load.
[[nodiscard]] bool enabled() noexcept;

/// Pre-open the calling thread's counter group so the open()/ioctl cost
/// stays out of the first timed scope — the counter analogue of
/// ensure_thread_ring(). ThreadPool calls this as each job slot starts.
void ensure_thread_counters();

/// Immediate scaled totals of the calling thread's group (opening it if
/// needed). False when disarmed or the group is unusable.
[[nodiscard]] bool read_thread_counters(CounterSet* out);

/// Snapshot every thread's per-(worker, phase) accumulators, merged by
/// worker id. Must not run concurrently with scoped sections.
[[nodiscard]] PerfDump collect();

/// Coherency line size used to convert LLC-load-misses to bytes
/// (sysconf(_SC_LEVEL1_DCACHE_LINESIZE) with a 64-byte fallback).
[[nodiscard]] std::uint64_t cache_line_bytes() noexcept;

/// RAII per-phase counter scope: reads the owning thread's group at
/// construction and destruction and accumulates the scaled delta into the
/// (obs::thread_worker(), phase) cell. Place alongside obs::ScopedSpan so
/// spans and counters attribute identically. Cost when disarmed: one
/// relaxed atomic load.
class ScopedPhaseDelta {
public:
    explicit ScopedPhaseDelta(Phase phase);
    ~ScopedPhaseDelta();
    ScopedPhaseDelta(const ScopedPhaseDelta&) = delete;
    ScopedPhaseDelta& operator=(const ScopedPhaseDelta&) = delete;

private:
    CounterSet begin_;
    Phase phase_ = Phase::kNone;
    bool armed_ = false;
};

/// Publish collected totals into the metrics registry (obs.perf.cycles,
/// obs.perf.instructions, obs.perf.llc_loads, obs.perf.llc_load_misses,
/// obs.perf.llc_miss_bytes). No-op when metrics are disarmed.
void publish(const PerfDump& dump);

#else  // !CAKE_PERF_ENABLED

// Compiled-out build (-DCAKE_PERF_DISABLED=ON, obs disabled, or
// non-Linux): every entry point is a constexpr/inline no-op the optimiser
// deletes at the call site; perf.cpp is an empty translation unit, so no
// cake::obs::perf symbol reaches release objects.

[[nodiscard]] inline std::vector<CounterSpec> default_counter_specs()
{
    return {};
}
[[nodiscard]] inline std::vector<CounterSpec> software_counter_specs()
{
    return {};
}

class PerfCounterGroup {
public:
    PerfCounterGroup() = default;
    explicit PerfCounterGroup(const std::vector<CounterSpec>& /*specs*/) {}
    PerfCounterGroup(PerfCounterGroup&&) noexcept = default;
    PerfCounterGroup& operator=(PerfCounterGroup&&) noexcept = default;
    PerfCounterGroup(const PerfCounterGroup&) = delete;
    PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

    [[nodiscard]] bool usable() const { return false; }
    [[nodiscard]] const std::string& error() const { return error_; }
    [[nodiscard]] const std::vector<CounterSpec>& specs() const
    {
        return specs_;
    }
    [[nodiscard]] bool read(CounterSet* /*out*/) const { return false; }
    [[nodiscard]] static CounterSet delta(const CounterSet& /*begin*/,
                                          const CounterSet& /*end*/)
    {
        return {};
    }

private:
    std::vector<CounterSpec> specs_;
    std::string error_;
};

[[nodiscard]] inline Availability probe() { return {}; }
inline bool enable() { return false; }
inline bool enable(std::vector<CounterSpec> /*specs*/) { return false; }
constexpr void disable() {}
constexpr void reset() {}
[[nodiscard]] constexpr bool enabled() noexcept { return false; }
constexpr void ensure_thread_counters() {}
[[nodiscard]] constexpr bool read_thread_counters(CounterSet* /*out*/)
{
    return false;
}
[[nodiscard]] inline PerfDump collect() { return {}; }
[[nodiscard]] constexpr std::uint64_t cache_line_bytes() noexcept
{
    return 64;
}

class ScopedPhaseDelta {
public:
    explicit constexpr ScopedPhaseDelta(Phase /*phase*/) {}
    ScopedPhaseDelta(const ScopedPhaseDelta&) = delete;
    ScopedPhaseDelta& operator=(const ScopedPhaseDelta&) = delete;
};

constexpr void publish(const PerfDump& /*dump*/) {}

#endif  // CAKE_PERF_ENABLED

// --- derived metrics (plain arithmetic; live in all builds) -------------

inline int PerfDump::slot(const char* name) const
{
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (std::string(specs[i].name) == name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

inline bool PerfDump::total_of(const char* name, std::uint64_t* out) const
{
    const int s = slot(name);
    if (s < 0) return false;
    const CounterSet t = total();
    const auto i = static_cast<std::size_t>(s);
    if (i >= t.n || !t.available[i]) return false;
    if (out != nullptr) *out = t.value[i];
    return true;
}

/// Demand DRAM read bytes implied by a dump's LLC-load-misses; false when
/// that counter never scheduled.
inline bool llc_miss_bytes(const PerfDump& dump, double* out)
{
    std::uint64_t misses = 0;
    if (!dump.total_of("llc-load-misses", &misses)) return false;
    if (out != nullptr) {
        *out = static_cast<double>(misses)
               * static_cast<double>(dump.line_bytes);
    }
    return true;
}

/// Measured-vs-predicted DRAM read traffic. `predicted_read_bytes` is the
/// Eq.-2 / schedule-IR / memsim figure (byte-exact across the three — see
/// DESIGN.md §10/§12); the measurement is demand-miss bytes from the dump.
inline Divergence dram_divergence(const PerfDump& dump,
                                  double predicted_read_bytes)
{
    Divergence d;
    d.predicted_bytes = predicted_read_bytes;
    if (!llc_miss_bytes(dump, &d.measured_bytes)) return d;
    d.measured = true;
    if (predicted_read_bytes > 0) {
        d.ratio = d.measured_bytes / predicted_read_bytes;
        d.divergence =
            (d.measured_bytes > predicted_read_bytes
                 ? d.measured_bytes - predicted_read_bytes
                 : predicted_read_bytes - d.measured_bytes)
            / predicted_read_bytes;
    }
    return d;
}

/// Counter-derived roofline operating point for a run of `flops` floating
/// point operations over `seconds`.
inline OperatingPoint operating_point(const PerfDump& dump, double flops,
                                      double seconds)
{
    OperatingPoint p;
    p.flops = flops;
    p.seconds = seconds;
    if (seconds > 0) p.gflops = flops / seconds * 1e-9;
    if (!llc_miss_bytes(dump, &p.dram_bytes)) return p;
    p.measured = true;
    if (p.dram_bytes > 0) p.ai = flops / p.dram_bytes;
    return p;
}

}  // namespace perf
}  // namespace obs
}  // namespace cake
