#include "obs/trace.hpp"

#if CAKE_OBS_ENABLED

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "common/env.hpp"
#include "obs/metrics.hpp"

// Lock-free ring discipline: each ring has exactly ONE writer (the thread
// that registered it) and is only read at quiescent points (collect() after
// a ThreadPool join, which supplies the happens-before edge). The atomics
// below exist for the enable/disable flag and the head counters that
// collect() reads; they are internal to this subsystem — tools/lint.sh
// rule 4 allowlists src/obs/ for exactly this file's machinery.

namespace cake {
namespace obs {

namespace {

constexpr std::size_t kDefaultCapacity = 1u << 16;

std::size_t round_up_pow2(std::size_t v)
{
    std::size_t c = 1;
    while (c < v) c <<= 1;
    return c;
}

/// One thread's event ring. Owner-only writes; head_ is released so a
/// quiescent collector sees every slot the counter covers.
struct Ring {
    explicit Ring(std::size_t capacity, std::uint64_t index)
        : slots(capacity), mask(capacity - 1), thread_index(index)
    {
    }

    std::vector<TraceEvent> slots;
    std::size_t mask;
    std::uint64_t thread_index;
    std::atomic<std::uint64_t> head{0};

    void push(const TraceEvent& ev) noexcept
    {
        const std::uint64_t h = head.load(std::memory_order_relaxed);
        slots[static_cast<std::size_t>(h) & mask] = ev;
        head.store(h + 1, std::memory_order_release);
    }
};

struct Registry {
    std::mutex mutex;
    std::vector<std::unique_ptr<Ring>> rings;
    std::size_t capacity = kDefaultCapacity;
};

Registry& registry()
{
    static Registry r;
    return r;
}

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_env_checked{false};
/// Bumped by reset(); stale thread-local ring pointers are abandoned when
/// their generation no longer matches.
std::atomic<std::uint64_t> g_generation{1};

thread_local Ring* tls_ring = nullptr;
thread_local std::uint64_t tls_generation = 0;
thread_local int tls_worker = -1;

std::chrono::steady_clock::time_point epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

/// Consult CAKE_TRACE / CAKE_TRACE_CAPACITY exactly once per process.
void check_env_once()
{
    if (g_env_checked.exchange(true, std::memory_order_acq_rel)) return;
    (void)epoch();
    if (const auto cap = env_long("CAKE_TRACE_CAPACITY");
        cap.has_value() && *cap > 0) {
        std::lock_guard<std::mutex> lock(registry().mutex);
        registry().capacity =
            round_up_pow2(static_cast<std::size_t>(*cap));
    }
    if (const auto armed = env_long("CAKE_TRACE");
        armed.has_value() && *armed != 0) {
        g_enabled.store(true, std::memory_order_release);
        metrics_enable();  // CAKE_TRACE arms tracing AND metrics
    }
}

Ring* this_thread_ring()
{
    const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
    if (tls_ring != nullptr && tls_generation == gen) return tls_ring;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.rings.push_back(std::make_unique<Ring>(
        reg.capacity, static_cast<std::uint64_t>(reg.rings.size())));
    tls_ring = reg.rings.back().get();
    tls_generation = gen;
    return tls_ring;
}

void push_event(const char* name, Phase phase, std::uint64_t start_ns,
                std::uint64_t dur_ns, index_t mb, index_t nb, index_t kb,
                index_t tile)
{
    TraceEvent ev;
    ev.start_ns = start_ns;
    ev.dur_ns = dur_ns;
    ev.name = name;
    ev.tile = tile;
    ev.worker = tls_worker;
    ev.mb = static_cast<std::int32_t>(mb);
    ev.nb = static_cast<std::int32_t>(nb);
    ev.kb = static_cast<std::int32_t>(kb);
    ev.phase = phase;
    this_thread_ring()->push(ev);
}

}  // namespace

void enable(std::size_t capacity_per_thread)
{
    check_env_once();
    if (capacity_per_thread > 0) {
        std::lock_guard<std::mutex> lock(registry().mutex);
        registry().capacity = round_up_pow2(capacity_per_thread);
    }
    g_enabled.store(true, std::memory_order_release);
    metrics_enable();  // shared runtime switch (see metrics.hpp contract)
}

void disable()
{
    check_env_once();
    g_enabled.store(false, std::memory_order_release);
    metrics_disable();
}

void reset()
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    registry().rings.clear();
    g_generation.fetch_add(1, std::memory_order_acq_rel);
}

bool enabled() noexcept
{
    if (!g_env_checked.load(std::memory_order_acquire)) check_env_once();
    return g_enabled.load(std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
}

std::uint64_t to_trace_ns(std::chrono::steady_clock::time_point tp) noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch())
            .count());
}

void ensure_thread_ring()
{
    if (enabled()) (void)this_thread_ring();
}

std::size_t ring_capacity() noexcept
{
    std::lock_guard<std::mutex> lock(registry().mutex);
    return registry().capacity;
}

void set_thread_worker(int tid) noexcept { tls_worker = tid; }

int thread_worker() noexcept { return tls_worker; }

void emit_span(const char* name, Phase phase, std::uint64_t start_ns,
               std::uint64_t end_ns, index_t mb, index_t nb, index_t kb,
               index_t tile)
{
    if (!enabled()) return;
    const std::uint64_t dur = end_ns > start_ns ? end_ns - start_ns : 1;
    push_event(name, phase, start_ns, dur, mb, nb, kb, tile);
}

void emit_instant(const char* name, Phase phase, index_t mb, index_t nb,
                  index_t kb, index_t tile)
{
    if (!enabled()) return;
    push_event(name, phase, now_ns(), 0, mb, nb, kb, tile);
}

TraceDump collect()
{
    TraceDump dump;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    dump.threads.reserve(reg.rings.size());
    for (const auto& ring : reg.rings) {
        ThreadTrace t;
        t.thread_index = ring->thread_index;
        const std::uint64_t head =
            ring->head.load(std::memory_order_acquire);
        const std::uint64_t cap = ring->slots.size();
        t.dropped = head > cap ? head - cap : 0;
        const std::uint64_t live = head > cap ? cap : head;
        t.events.reserve(static_cast<std::size_t>(live));
        for (std::uint64_t i = head - live; i < head; ++i) {
            t.events.push_back(
                ring->slots[static_cast<std::size_t>(i) & ring->mask]);
        }
        dump.threads.push_back(std::move(t));
    }
    return dump;
}

}  // namespace obs
}  // namespace cake

#endif  // CAKE_OBS_ENABLED
