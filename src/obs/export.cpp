#include "obs/export.hpp"

#if CAKE_OBS_ENABLED

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

namespace cake {
namespace obs {

namespace {

/// Trace-lane id for an event: real worker ids as-is, everything recorded
/// outside a team job on a high lane keyed by the ring's thread index.
std::int64_t lane_of(const TraceEvent& ev, std::uint64_t thread_index)
{
    if (ev.worker >= 0) return ev.worker;
    return 1000 + static_cast<std::int64_t>(thread_index);
}

std::string json_escape(const char* s)
{
    std::string out;
    for (const char* p = s; *p != '\0'; ++p) {
        const char c = *p;
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string us_string(std::uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    return buf;
}

std::uint64_t earliest_start(const TraceDump& dump)
{
    std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
    for (const ThreadTrace& t : dump.threads) {
        for (const TraceEvent& ev : t.events) t0 = std::min(t0, ev.start_ns);
    }
    return t0 == std::numeric_limits<std::uint64_t>::max() ? 0 : t0;
}

}  // namespace

void write_perfetto_json(const TraceDump& dump, std::ostream& os)
{
    const std::uint64_t t0 = earliest_start(dump);
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&]() {
        if (!first) os << ",\n";
        first = false;
    };

    sep();
    os << R"({"ph":"M","pid":1,"tid":0,"name":"process_name",)"
       << R"("args":{"name":"cake"}})";

    // One thread_name metadata record per lane that carries events.
    std::map<std::int64_t, std::string> lanes;
    for (const ThreadTrace& t : dump.threads) {
        for (const TraceEvent& ev : t.events) {
            const std::int64_t lane = lane_of(ev, t.thread_index);
            if (lanes.count(lane) != 0) continue;
            lanes[lane] = ev.worker >= 0
                              ? "worker " + std::to_string(ev.worker)
                              : "thread " + std::to_string(t.thread_index);
        }
    }
    for (const auto& [lane, name] : lanes) {
        sep();
        os << R"({"ph":"M","pid":1,"tid":)" << lane
           << R"(,"name":"thread_name","args":{"name":")" << name << "\"}}";
    }

    for (const ThreadTrace& t : dump.threads) {
        for (const TraceEvent& ev : t.events) {
            sep();
            const std::int64_t lane = lane_of(ev, t.thread_index);
            const std::uint64_t rel = ev.start_ns - t0;
            if (ev.dur_ns == 0) {
                os << R"({"ph":"i","s":"t","pid":1,"tid":)" << lane
                   << ",\"ts\":" << us_string(rel);
            } else {
                os << R"({"ph":"X","pid":1,"tid":)" << lane
                   << ",\"ts\":" << us_string(rel)
                   << ",\"dur\":" << us_string(ev.dur_ns);
            }
            os << ",\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
               << phase_name(ev.phase) << "\",\"args\":{\"mb\":" << ev.mb
               << ",\"nb\":" << ev.nb << ",\"kb\":" << ev.kb
               << ",\"tile\":" << ev.tile << ",\"worker\":" << ev.worker
               << "}}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

bool write_perfetto_json_file(const TraceDump& dump, const std::string& path)
{
    std::ofstream f(path);
    if (!f.good()) return false;
    write_perfetto_json(dump, f);
    return f.good();
}

// --- minimal JSON reader (validation only) ----------------------------

namespace {

/// Hand-rolled recursive-descent JSON parser: just enough to check the
/// writer's output structurally. Numbers are not range-checked; strings
/// only unescape what json_escape emits.
struct JsonValue {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    double number = 0;
    bool boolean = false;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    [[nodiscard]] const JsonValue* find(const std::string& key) const
    {
        for (const auto& [k, v] : object) {
            if (k == key) return &v;
        }
        return nullptr;
    }
};

struct JsonParser {
    const std::string& text;
    std::size_t pos = 0;
    std::string error;

    explicit JsonParser(const std::string& t) : text(t) {}

    void skip_ws()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
            ++pos;
        }
    }

    bool fail(const std::string& why)
    {
        if (error.empty()) {
            error = why + " at offset " + std::to_string(pos);
        }
        return false;
    }

    bool parse_value(JsonValue& out)
    {
        skip_ws();
        if (pos >= text.size()) return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') return parse_object(out);
        if (c == '[') return parse_array(out);
        if (c == '"') {
            out.type = JsonValue::Type::kString;
            return parse_string(out.string);
        }
        if (c == 't' || c == 'f') return parse_keyword(out);
        if (c == 'n') return parse_null(out);
        return parse_number(out);
    }

    bool parse_object(JsonValue& out)
    {
        out.type = JsonValue::Type::kObject;
        ++pos;  // '{'
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (pos >= text.size() || text[pos] != '"') {
                return fail("expected object key");
            }
            if (!parse_string(key)) return false;
            skip_ws();
            if (pos >= text.size() || text[pos] != ':') {
                return fail("expected ':'");
            }
            ++pos;
            JsonValue value;
            if (!parse_value(value)) return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (pos >= text.size()) return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parse_array(JsonValue& out)
    {
        out.type = JsonValue::Type::kArray;
        ++pos;  // '['
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parse_value(value)) return false;
            out.array.push_back(std::move(value));
            skip_ws();
            if (pos >= text.size()) return fail("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parse_string(std::string& out)
    {
        ++pos;  // '"'
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"') return true;
            if (c == '\\') {
                if (pos >= text.size()) return fail("bad escape");
                const char e = text[pos++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'u':
                        if (pos + 4 > text.size()) return fail("bad \\u");
                        pos += 4;
                        out += '?';
                        break;
                    default: return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool parse_keyword(JsonValue& out)
    {
        out.type = JsonValue::Type::kBool;
        if (text.compare(pos, 4, "true") == 0) {
            out.boolean = true;
            pos += 4;
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            out.boolean = false;
            pos += 5;
            return true;
        }
        return fail("bad keyword");
    }

    bool parse_null(JsonValue& out)
    {
        out.type = JsonValue::Type::kNull;
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            return true;
        }
        return fail("bad keyword");
    }

    bool parse_number(JsonValue& out)
    {
        out.type = JsonValue::Type::kNumber;
        const std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
            ++pos;
        }
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '-' || text[pos] == '+')) {
            ++pos;
        }
        if (pos == start) return fail("expected a value");
        out.number = std::stod(text.substr(start, pos - start));
        return true;
    }
};

}  // namespace

bool validate_perfetto_json(const std::string& json, std::string* error)
{
    auto fail = [&](const std::string& why) {
        if (error != nullptr) *error = why;
        return false;
    };
    JsonParser parser(json);
    JsonValue root;
    if (!parser.parse_value(root)) return fail(parser.error);
    parser.skip_ws();
    if (parser.pos != json.size()) return fail("trailing data after JSON");
    if (root.type != JsonValue::Type::kObject) {
        return fail("top level is not an object");
    }
    const JsonValue* events = root.find("traceEvents");
    if (events == nullptr || events->type != JsonValue::Type::kArray) {
        return fail("missing traceEvents array");
    }
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue& ev = events->array[i];
        const std::string at = "traceEvents[" + std::to_string(i) + "]";
        if (ev.type != JsonValue::Type::kObject) {
            return fail(at + " is not an object");
        }
        const JsonValue* ph = ev.find("ph");
        if (ph == nullptr || ph->type != JsonValue::Type::kString) {
            return fail(at + " has no string ph");
        }
        const JsonValue* name = ev.find("name");
        if (name == nullptr || name->type != JsonValue::Type::kString) {
            return fail(at + " has no string name");
        }
        if (ev.find("pid") == nullptr || ev.find("tid") == nullptr) {
            return fail(at + " lacks pid/tid");
        }
        if (ph->string == "X") {
            const JsonValue* ts = ev.find("ts");
            const JsonValue* dur = ev.find("dur");
            if (ts == nullptr || ts->type != JsonValue::Type::kNumber ||
                dur == nullptr || dur->type != JsonValue::Type::kNumber) {
                return fail(at + " X event lacks numeric ts/dur");
            }
            if (dur->number < 0) return fail(at + " negative dur");
        }
    }
    return true;
}

// --- metrics ----------------------------------------------------------

namespace {

const char* kind_name(MetricKind kind)
{
    switch (kind) {
        case MetricKind::kCounter: return "counter";
        case MetricKind::kGauge: return "gauge";
        case MetricKind::kHistogram: return "histogram";
    }
    return "unknown";
}

}  // namespace

void write_metrics_json(const std::vector<MetricSnapshot>& snapshots,
                        std::ostream& os)
{
    os << "{\"metrics\":[\n";
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
        const MetricSnapshot& s = snapshots[i];
        os << "{\"name\":\"" << json_escape(s.name.c_str())
           << "\",\"kind\":\"" << kind_name(s.kind)
           << "\",\"count\":" << s.count << ",\"value\":"
           << format_number(s.value, 12);
        if (s.kind == MetricKind::kHistogram) {
            os << ",\"bounds\":[";
            for (std::size_t b = 0; b < s.bounds.size(); ++b) {
                os << (b != 0 ? "," : "") << format_number(s.bounds[b], 12);
            }
            os << "],\"buckets\":[";
            for (std::size_t b = 0; b < s.buckets.size(); ++b) {
                os << (b != 0 ? "," : "") << s.buckets[b];
            }
            os << "],\"p50\":" << format_number(s.quantile(0.50), 9)
               << ",\"p99\":" << format_number(s.quantile(0.99), 9);
        }
        os << "}" << (i + 1 < snapshots.size() ? "," : "") << "\n";
    }
    os << "]}\n";
}

Table metrics_table(const std::vector<MetricSnapshot>& snapshots)
{
    Table table({"metric", "kind", "count", "value", "p50", "p90", "p99"});
    for (const MetricSnapshot& s : snapshots) {
        const bool hist = s.kind == MetricKind::kHistogram;
        table.add_row({s.name, kind_name(s.kind), std::to_string(s.count),
                       format_number(s.value, 6),
                       hist ? format_number(s.quantile(0.50), 6) : "-",
                       hist ? format_number(s.quantile(0.90), 6) : "-",
                       hist ? format_number(s.quantile(0.99), 6) : "-"});
    }
    return table;
}

// --- self-profile -----------------------------------------------------

double ProfileReport::phase_total_s(Phase phase) const
{
    double total = 0;
    for (const WorkerProfile& w : workers) {
        switch (phase) {
            case Phase::kPack: total += w.pack_s; break;
            case Phase::kCompute: total += w.compute_s; break;
            case Phase::kFlush: total += w.flush_s; break;
            case Phase::kBarrier: total += w.barrier_s; break;
            case Phase::kOther: total += w.other_s; break;
            case Phase::kNone: break;
        }
    }
    return total;
}

ProfileReport profile(const TraceDump& dump)
{
    ProfileReport report;
    report.total_dropped = dump.total_dropped();

    std::map<std::int32_t, WorkerProfile> workers;
    std::map<std::string, SpanStat> spans;
    std::uint64_t t_begin = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t t_end = 0;

    for (const ThreadTrace& t : dump.threads) {
        for (const TraceEvent& ev : t.events) {
            ++report.total_events;
            t_begin = std::min(t_begin, ev.start_ns);
            t_end = std::max(t_end, ev.start_ns + ev.dur_ns);
            const double dur_s = static_cast<double>(ev.dur_ns) * 1e-9;

            WorkerProfile& w = workers[ev.worker];
            w.worker = ev.worker;
            ++w.events;
            switch (ev.phase) {
                case Phase::kPack: w.pack_s += dur_s; break;
                case Phase::kCompute: w.compute_s += dur_s; break;
                case Phase::kFlush: w.flush_s += dur_s; break;
                case Phase::kBarrier: w.barrier_s += dur_s; break;
                default: w.other_s += dur_s; break;
            }

            SpanStat& stat = spans[ev.name];
            stat.name = ev.name;
            stat.phase = ev.phase;
            ++stat.count;
            stat.total_s += dur_s;
            stat.max_ns =
                std::max(stat.max_ns, static_cast<double>(ev.dur_ns));
        }
    }

    if (report.total_events > 0) {
        report.t_begin_s = static_cast<double>(t_begin) * 1e-9;
        report.t_end_s = static_cast<double>(t_end) * 1e-9;
    }
    for (auto& [worker, w] : workers) report.workers.push_back(w);
    for (auto& [name, stat] : spans) {
        stat.mean_ns = stat.count > 0
                           ? stat.total_s * 1e9 /
                                 static_cast<double>(stat.count)
                           : 0;
        report.spans.push_back(stat);
    }
    std::sort(report.spans.begin(), report.spans.end(),
              [](const SpanStat& a, const SpanStat& b) {
                  return a.total_s > b.total_s;
              });
#if CAKE_PERF_ENABLED
    if (perf::enabled()) report.perf = perf::collect();
#endif
    return report;
}

namespace {

/// Phases worth a row in the counter tables, in pipeline order.
constexpr Phase kTablePhases[] = {Phase::kPack, Phase::kCompute,
                                  Phase::kFlush, Phase::kBarrier,
                                  Phase::kOther};

std::vector<std::string> perf_header(const perf::PerfDump& dump,
                                     const std::string& first)
{
    std::vector<std::string> header{first};
    for (const perf::CounterSpec& spec : dump.specs) {
        header.emplace_back(spec.name);
    }
    header.emplace_back("ipc");
    header.emplace_back("miss_mb");
    return header;
}

/// One table row from a CounterSet: raw counts (or "-"), derived IPC and
/// LLC-miss megabytes where the inputs scheduled.
std::vector<std::string> perf_row(const perf::PerfDump& dump,
                                  const perf::CounterSet& set,
                                  const std::string& label)
{
    std::vector<std::string> row{label};
    for (std::size_t i = 0; i < dump.specs.size(); ++i) {
        row.push_back(i < set.n && set.available[i]
                          ? std::to_string(set.value[i])
                          : "-");
    }
    auto slot_value = [&](const char* name, std::uint64_t* out) {
        const int s = dump.slot(name);
        if (s < 0) return false;
        const auto i = static_cast<std::size_t>(s);
        if (i >= set.n || !set.available[i]) return false;
        *out = set.value[i];
        return true;
    };
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    if (slot_value("cycles", &cycles) &&
        slot_value("instructions", &instructions) && cycles > 0) {
        row.push_back(format_number(static_cast<double>(instructions) /
                                        static_cast<double>(cycles),
                                    4));
    } else {
        row.emplace_back("-");
    }
    std::uint64_t misses = 0;
    if (slot_value("llc-load-misses", &misses)) {
        row.push_back(format_number(
            static_cast<double>(misses) *
                static_cast<double>(dump.line_bytes) * 1e-6,
            6));
    } else {
        row.emplace_back("-");
    }
    return row;
}

}  // namespace

Table perf_phase_table(const ProfileReport& report)
{
    const perf::PerfDump& dump = report.perf;
    Table table(perf_header(dump, "phase"));
    perf::CounterSet total;
    for (const Phase phase : kTablePhases) {
        perf::CounterSet sum;
        for (const perf::WorkerPerf& w : report.perf.workers) {
            sum += w.phase[static_cast<std::size_t>(phase)];
        }
        total += sum;
        table.add_row(perf_row(dump, sum, phase_name(phase)));
    }
    table.add_row(perf_row(dump, total, "total"));
    return table;
}

Table perf_worker_table(const ProfileReport& report)
{
    const perf::PerfDump& dump = report.perf;
    Table table(perf_header(dump, "worker"));
    for (const perf::WorkerPerf& w : dump.workers) {
        table.add_row(perf_row(
            dump, w.total(),
            w.worker >= 0 ? std::to_string(w.worker) : "-"));
    }
    return table;
}

Table operating_point_table(const ProfileReport& report, double flops,
                            double seconds, double modelled_dram_bytes)
{
    Table table({"source", "dram_gb", "ai_flop_per_byte", "gflops"});
    const double gflops =
        seconds > 0 ? flops / seconds * 1e-9 : 0;
    table.add_row({"modelled",
                   format_number(modelled_dram_bytes * 1e-9, 6),
                   modelled_dram_bytes > 0
                       ? format_number(flops / modelled_dram_bytes, 6)
                       : "-",
                   format_number(gflops, 6)});
    const perf::OperatingPoint op =
        perf::operating_point(report.perf, flops, seconds);
    table.add_row({"measured",
                   op.measured ? format_number(op.dram_bytes * 1e-9, 6)
                               : "-",
                   op.measured && op.ai > 0 ? format_number(op.ai, 6) : "-",
                   format_number(op.gflops, 6)});
    return table;
}

Table worker_table(const ProfileReport& report)
{
    Table table({"worker", "pack_s", "compute_s", "flush_s", "barrier_s",
                 "other_s", "events"});
    for (const WorkerProfile& w : report.workers) {
        table.add_row({w.worker >= 0 ? std::to_string(w.worker) : "-",
                       format_number(w.pack_s, 6),
                       format_number(w.compute_s, 6),
                       format_number(w.flush_s, 6),
                       format_number(w.barrier_s, 6),
                       format_number(w.other_s, 6),
                       std::to_string(w.events)});
    }
    return table;
}

Table span_table(const ProfileReport& report, std::size_t top_n)
{
    Table table({"span", "phase", "count", "total_s", "mean_ns", "max_ns"});
    const std::size_t n = std::min(top_n, report.spans.size());
    for (std::size_t i = 0; i < n; ++i) {
        const SpanStat& s = report.spans[i];
        table.add_row({s.name, phase_name(s.phase), std::to_string(s.count),
                       format_number(s.total_s, 6),
                       format_number(s.mean_ns, 6),
                       format_number(s.max_ns, 6)});
    }
    return table;
}

Table stall_table(const ProfileReport& report)
{
    double all_barrier = 0;
    for (const WorkerProfile& w : report.workers) all_barrier += w.barrier_s;
    Table table({"worker", "barrier_wait_s", "pct_of_worker", "pct_of_stall"});
    for (const WorkerProfile& w : report.workers) {
        const double traced = w.busy_s() + w.barrier_s;
        table.add_row(
            {w.worker >= 0 ? std::to_string(w.worker) : "-",
             format_number(w.barrier_s, 6),
             traced > 0 ? format_number(100.0 * w.barrier_s / traced, 4)
                        : "-",
             all_barrier > 0
                 ? format_number(100.0 * w.barrier_s / all_barrier, 4)
                 : "-"});
    }
    return table;
}

std::string overlap_timeline(const TraceDump& dump, int columns)
{
    if (columns < 8) columns = 8;
    std::uint64_t t0 = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t t1 = 0;
    std::map<std::int64_t, std::vector<const TraceEvent*>> lanes;
    for (const ThreadTrace& t : dump.threads) {
        for (const TraceEvent& ev : t.events) {
            if (ev.dur_ns == 0) continue;
            t0 = std::min(t0, ev.start_ns);
            t1 = std::max(t1, ev.start_ns + ev.dur_ns);
            lanes[lane_of(ev, t.thread_index)].push_back(&ev);
        }
    }
    if (lanes.empty() || t1 <= t0) return "(no spans)\n";

    const double slice_ns =
        static_cast<double>(t1 - t0) / static_cast<double>(columns);
    std::ostringstream os;
    os << "timeline (" << format_number(static_cast<double>(t1 - t0) * 1e-6,
                                        4)
       << " ms, " << columns
       << " slices; P=pack C=compute F=flush b=barrier o=other .=idle)\n";
    for (const auto& [lane, events] : lanes) {
        // Dominant phase per slice by accumulated overlap time.
        std::vector<std::array<double, 6>> weight(
            static_cast<std::size_t>(columns));
        for (const TraceEvent* ev : events) {
            const double begin = static_cast<double>(ev->start_ns - t0);
            const double end =
                static_cast<double>(ev->start_ns + ev->dur_ns - t0);
            int first = static_cast<int>(begin / slice_ns);
            int last = static_cast<int>(end / slice_ns);
            first = std::max(0, std::min(columns - 1, first));
            last = std::max(0, std::min(columns - 1, last));
            for (int s = first; s <= last; ++s) {
                const double lo = std::max(begin, s * slice_ns);
                const double hi = std::min(end, (s + 1) * slice_ns);
                if (hi > lo) {
                    weight[static_cast<std::size_t>(s)]
                          [static_cast<std::size_t>(ev->phase)] += hi - lo;
                }
            }
        }
        std::string row;
        for (int s = 0; s < columns; ++s) {
            const auto& w = weight[static_cast<std::size_t>(s)];
            double best = 0;
            int best_phase = -1;
            for (int ph = 0; ph < 6; ++ph) {
                if (w[static_cast<std::size_t>(ph)] > best) {
                    best = w[static_cast<std::size_t>(ph)];
                    best_phase = ph;
                }
            }
            switch (best_phase) {
                case static_cast<int>(Phase::kPack): row += 'P'; break;
                case static_cast<int>(Phase::kCompute): row += 'C'; break;
                case static_cast<int>(Phase::kFlush): row += 'F'; break;
                case static_cast<int>(Phase::kBarrier): row += 'b'; break;
                case static_cast<int>(Phase::kOther):
                case static_cast<int>(Phase::kNone): row += 'o'; break;
                default: row += '.'; break;
            }
        }
        if (lane < 1000) {
            os << "w" << (lane < 10 ? "0" : "") << lane;
        } else {
            os << "t" << (lane - 1000 < 10 ? "0" : "") << (lane - 1000);
        }
        os << " |" << row << "|\n";
    }
    return os.str();
}

}  // namespace obs
}  // namespace cake

#endif  // CAKE_OBS_ENABLED
