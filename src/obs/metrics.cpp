#include "obs/metrics.hpp"

#include <algorithm>

#if CAKE_OBS_ENABLED

#include <atomic>
#include <memory>
#include <mutex>

namespace cake {
namespace obs {

namespace {

/// One registered metric. Entries are append-only and never move after
/// registration (deque-like storage via unique_ptr), so cached MetricIds
/// and in-flight updates stay valid across registrations.
struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::atomic<std::uint64_t> count{0};   ///< counter / observation count
    std::atomic<double> value{0.0};        ///< gauge value / histogram sum
    std::vector<double> bounds;            ///< histogram upper bounds
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  // bounds + 1
};

/// Fixed-capacity slot table so resolve() is a lock-free indexed read:
/// slots never move and slot i is fully constructed before `size` is
/// release-published, so an id obtained from a completed registration can
/// be dereferenced without the mutex. 256 named metrics is far above what
/// the instrumented layers register (~30).
constexpr std::size_t kMaxMetrics = 256;

struct MetricRegistry {
    std::mutex mutex;  ///< registration only
    std::unique_ptr<Metric> slots[kMaxMetrics];
    std::atomic<std::size_t> size{0};
};

MetricRegistry& registry()
{
    static MetricRegistry r;
    return r;
}

std::atomic<bool> g_metrics_enabled{false};

MetricId register_metric(const char* name, MetricKind kind,
                         std::vector<double> bounds)
{
    MetricRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const std::size_t n = reg.size.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
        if (reg.slots[i]->name == name && reg.slots[i]->kind == kind) {
            return {static_cast<std::uint32_t>(i + 1)};
        }
    }
    if (n == kMaxMetrics) return {};  // table full: updates become no-ops
    auto m = std::make_unique<Metric>();
    m->name = name;
    m->kind = kind;
    if (kind == MetricKind::kHistogram) {
        std::sort(bounds.begin(), bounds.end());
        m->bounds = std::move(bounds);
        m->buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
            m->bounds.size() + 1);
        for (std::size_t b = 0; b <= m->bounds.size(); ++b) {
            m->buckets[b].store(0, std::memory_order_relaxed);
        }
    }
    reg.slots[n] = std::move(m);
    reg.size.store(n + 1, std::memory_order_release);
    return {static_cast<std::uint32_t>(n + 1)};
}

/// Resolve an id to its metric; nullptr for the null id. Lock-free: ids
/// index the fixed slot table and registration release-publishes `size`
/// after constructing the slot.
Metric* resolve(MetricId id)
{
    if (id.value == 0) return nullptr;
    MetricRegistry& reg = registry();
    if (id.value > reg.size.load(std::memory_order_acquire)) return nullptr;
    return reg.slots[id.value - 1].get();
}

}  // namespace

void metrics_enable()
{
    g_metrics_enabled.store(true, std::memory_order_release);
}

void metrics_disable()
{
    g_metrics_enabled.store(false, std::memory_order_release);
}

bool metrics_enabled() noexcept
{
    // Tracing's env check also arms metrics (shared CAKE_TRACE switch):
    // enabled() consults the environment on first use and enable() calls
    // metrics_enable() — see trace.cpp / the callers in enable paths.
    return g_metrics_enabled.load(std::memory_order_relaxed);
}

void metrics_reset()
{
    MetricRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const std::size_t n = reg.size.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
        Metric& m = *reg.slots[i];
        m.count.store(0, std::memory_order_relaxed);
        m.value.store(0.0, std::memory_order_relaxed);
        for (std::size_t b = 0; b <= m.bounds.size(); ++b) {
            if (m.buckets) m.buckets[b].store(0, std::memory_order_relaxed);
        }
    }
}

MetricId counter(const char* name)
{
    return register_metric(name, MetricKind::kCounter, {});
}

MetricId gauge(const char* name)
{
    return register_metric(name, MetricKind::kGauge, {});
}

MetricId histogram(const char* name, std::vector<double> bucket_bounds)
{
    return register_metric(name, MetricKind::kHistogram,
                           std::move(bucket_bounds));
}

void counter_add(MetricId id, std::uint64_t delta)
{
    if (!metrics_enabled()) return;
    if (Metric* m = resolve(id); m != nullptr) {
        m->count.fetch_add(delta, std::memory_order_relaxed);
    }
}

void gauge_set(MetricId id, double value)
{
    if (!metrics_enabled()) return;
    if (Metric* m = resolve(id); m != nullptr) {
        m->value.store(value, std::memory_order_relaxed);
        m->count.fetch_add(1, std::memory_order_relaxed);
    }
}

void histogram_observe(MetricId id, double value)
{
    if (!metrics_enabled()) return;
    Metric* m = resolve(id);
    if (m == nullptr || !m->buckets) return;
    const auto it =
        std::lower_bound(m->bounds.begin(), m->bounds.end(), value);
    const std::size_t bucket =
        static_cast<std::size_t>(it - m->bounds.begin());
    m->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    m->count.fetch_add(1, std::memory_order_relaxed);
    m->value.fetch_add(value, std::memory_order_relaxed);
}

std::vector<MetricSnapshot> metrics_snapshot()
{
    std::vector<MetricSnapshot> out;
    MetricRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const std::size_t n = reg.size.load(std::memory_order_relaxed);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Metric& m = *reg.slots[i];
        MetricSnapshot s;
        s.name = m.name;
        s.kind = m.kind;
        s.count = m.count.load(std::memory_order_relaxed);
        s.value = m.value.load(std::memory_order_relaxed);
        s.bounds = m.bounds;
        if (m.buckets) {
            s.buckets.resize(m.bounds.size() + 1);
            for (std::size_t b = 0; b <= m.bounds.size(); ++b) {
                s.buckets[b] = m.buckets[b].load(std::memory_order_relaxed);
            }
        }
        out.push_back(std::move(s));
    }
    return out;
}

std::vector<double> latency_bounds_ns()
{
    std::vector<double> bounds;
    for (double decade = 1e3; decade <= 1e8; decade *= 10) {
        bounds.push_back(decade);
        bounds.push_back(decade * 2);
        bounds.push_back(decade * 5);
    }
    return bounds;
}

}  // namespace obs
}  // namespace cake

#endif  // CAKE_OBS_ENABLED
