// Metrics registry for the CAKE runtime: named counters, gauges and
// fixed-bucket latency histograms that the executors (src/core,
// src/gotoblas), the packing layer, the threading primitives and the
// architecture simulator publish into. It unifies what CakeStats /
// GotoStats report per-multiply into a process-wide registry a tool or
// bench can snapshot once at the end of a run, and adds the two
// measurements the per-multiply structs cannot hold: per-tile micro-kernel
// latency histograms and per-barrier stall attribution.
//
// Contract:
//   * Registration (counter()/gauge()/histogram()) is find-or-create by
//     name and returns a small id that stays valid for the process
//     lifetime — the registry is append-only, so hot paths can cache ids
//     in static locals without lifetime hazards. metrics_reset() clears
//     VALUES, never definitions.
//   * Updates are lock-free (relaxed atomics) and cost one relaxed flag
//     load when the registry is disarmed. Arm with metrics_enable() or the
//     CAKE_TRACE environment variable (tracing and metrics share the
//     runtime switch).
//   * Snapshots are taken at quiescent points; per-metric totals are
//     internally consistent, cross-metric consistency needs quiescence.
//
// Compile-out: -DCAKE_TRACE_DISABLED=ON turns every function below into a
// constexpr no-op (see trace.hpp); metrics.cpp becomes an empty TU and no
// cake::obs symbol reaches release objects.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"  // CAKE_OBS_ENABLED

namespace cake {
namespace obs {

/// Opaque metric handle; 0 is "no metric" and every update ignores it.
struct MetricId {
    std::uint32_t value = 0;
};

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge, kHistogram };

/// Point-in-time copy of one metric, as returned by metrics_snapshot().
struct MetricSnapshot {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t count = 0;  ///< counter total / histogram observations
    double value = 0;         ///< gauge value / histogram sum
    std::vector<double> bounds;        ///< histogram upper bucket bounds
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow)

    /// Histogram quantile in [0, 1] by linear interpolation inside the
    /// holding bucket (bucket b spans (bounds[b-1], bounds[b]]; the first
    /// bucket spans [0, bounds[0]]; the overflow bucket is clamped to its
    /// lower bound). Exact whenever the data is uniform within buckets.
    /// Defined inline so disabled builds (-DCAKE_TRACE_DISABLED=ON) leave
    /// no cake::obs symbol in library objects.
    [[nodiscard]] double quantile(double q) const
    {
        if (buckets.empty() || count == 0) return 0.0;
        q = std::min(1.0, std::max(0.0, q));
        const double rank = q * static_cast<double>(count);
        double cum = 0;
        for (std::size_t b = 0; b < buckets.size(); ++b) {
            const double in_bucket = static_cast<double>(buckets[b]);
            if (in_bucket == 0) continue;
            if (cum + in_bucket >= rank) {
                const double lo = b == 0 ? 0.0 : bounds[b - 1];
                if (b >= bounds.size()) {
                    return bounds.empty() ? lo : bounds.back();
                }
                const double hi = bounds[b];
                const double fraction = std::max(0.0, rank - cum) / in_bucket;
                return lo + fraction * (hi - lo);
            }
            cum += in_bucket;
        }
        return bounds.empty() ? 0.0 : bounds.back();
    }
};

#if CAKE_OBS_ENABLED

/// Arm / disarm metric updates (tracing's enable()/disable() also arm and
/// disarm metrics; these switch metrics alone).
void metrics_enable();
void metrics_disable();
[[nodiscard]] bool metrics_enabled() noexcept;

/// Zero every counter, gauge and histogram. Definitions and ids survive.
void metrics_reset();

/// Find-or-create. Re-registering an existing name returns the same id;
/// a histogram re-registered with different bounds keeps the first bounds.
MetricId counter(const char* name);
MetricId gauge(const char* name);
MetricId histogram(const char* name, std::vector<double> bucket_bounds);

void counter_add(MetricId id, std::uint64_t delta);
void gauge_set(MetricId id, double value);
void histogram_observe(MetricId id, double value);

/// Snapshot every registered metric, in registration order.
[[nodiscard]] std::vector<MetricSnapshot> metrics_snapshot();

/// Upper bucket bounds suited to nanosecond latencies: 1 us .. 100 ms in
/// 1-2-5 decades (the micro-kernel tile and barrier-wait scales).
[[nodiscard]] std::vector<double> latency_bounds_ns();

#else  // !CAKE_OBS_ENABLED

constexpr void metrics_enable() {}
constexpr void metrics_disable() {}
[[nodiscard]] constexpr bool metrics_enabled() noexcept { return false; }
constexpr void metrics_reset() {}

[[nodiscard]] constexpr MetricId counter(const char* /*name*/)
{
    return {};
}
[[nodiscard]] constexpr MetricId gauge(const char* /*name*/) { return {}; }
[[nodiscard]] inline MetricId histogram(const char* /*name*/,
                                        std::vector<double> /*bounds*/)
{
    return {};
}

constexpr void counter_add(MetricId /*id*/, std::uint64_t /*delta*/) {}
constexpr void gauge_set(MetricId /*id*/, double /*value*/) {}
constexpr void histogram_observe(MetricId /*id*/, double /*value*/) {}

[[nodiscard]] inline std::vector<MetricSnapshot> metrics_snapshot()
{
    return {};
}
[[nodiscard]] inline std::vector<double> latency_bounds_ns() { return {}; }

#endif  // CAKE_OBS_ENABLED

}  // namespace obs
}  // namespace cake
