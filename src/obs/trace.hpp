// Per-worker event tracer for the CB-block execution pipeline.
//
// The paper's evaluation (§5, Figs. 7-12) attributes wall time and DRAM
// traffic to packing, compute and writeback phases with PMU profilers
// (VTune/perf) this environment cannot use. CakeStats/GotoStats aggregate
// the same phases, but aggregates cannot show *where* the pipelined
// executor stalls or which CB block's packing failed to overlap. This
// tracer is the software substitute for the PMU: every executor work item,
// barrier wait and GOTO pass can record a scoped span — phase, CB-block
// coordinates (mb, nb, kb), tile/item index, worker id, monotonic
// nanosecond timestamps — into a per-thread lock-free ring buffer, and
// tools/cake_trace exports the result as Perfetto/chrome://tracing JSON
// with a terminal self-profile (top spans, per-worker stall breakdown,
// overlap timeline).
//
// Design constraints, in order:
//   * Recording must be cheap enough to leave on in instrumented runs: one
//     relaxed atomic load when tracing is off at runtime, and an owner-only
//     ring-buffer store (no lock, no allocation, no syscall) when on.
//   * Each thread owns its ring exclusively — emission is wait-free and
//     per-thread ordered. On overflow the ring wraps, keeping the NEWEST
//     events and counting the drops (the end of a run is where the
//     interesting stalls are).
//   * collect()/enable()/disable()/reset() are control-plane calls; they
//     must only run while no traced parallel section is in flight (the
//     ThreadPool join that ends a multiply provides the happens-before
//     edge that makes collection race-free).
//
// Build modes follow the checked.hpp pattern, inverted: tracing is
// ALWAYS-COMPILABLE and dormant until the CAKE_TRACE environment variable
// (or obs::enable()) arms it; configuring with -DCAKE_TRACE_DISABLED=ON
// compiles the whole subsystem out — every entry point below becomes a
// constexpr no-op, trace.cpp/metrics.cpp/export.cpp become empty
// translation units, and release objects carry no cake::obs symbol at all
// (enforced by the nm gate in .github/workflows/analysis.yml).
//
// Runtime knobs:
//   CAKE_TRACE           nonzero: arm tracing + metrics at first use
//   CAKE_TRACE_CAPACITY  events per thread ring (default 65536, rounded up
//                        to a power of two)
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

#if defined(CAKE_TRACE_DISABLED) && CAKE_TRACE_DISABLED
#define CAKE_OBS_ENABLED 0
#else
#define CAKE_OBS_ENABLED 1
#endif

namespace cake {
namespace obs {

/// Execution phase a span belongs to (the paper's pack / compute /
/// writeback decomposition, plus the synchronisation time between them).
enum class Phase : std::uint8_t {
    kNone = 0,
    kPack,     ///< A/B panel packing (the DRAM fetch of a surface)
    kCompute,  ///< micro-kernel macro-loop work
    kFlush,    ///< local-C writeback / zeroing
    kBarrier,  ///< SpinBarrier wait (per-worker stall attribution)
    kOther,    ///< anything else (tool-defined)
};

/// Stable display name of a phase ("pack", "compute", ...).
constexpr const char* phase_name(Phase phase) noexcept
{
    switch (phase) {
        case Phase::kNone: return "none";
        case Phase::kPack: return "pack";
        case Phase::kCompute: return "compute";
        case Phase::kFlush: return "flush";
        case Phase::kBarrier: return "barrier";
        case Phase::kOther: return "other";
    }
    return "unknown";
}

/// One recorded event. `dur_ns == 0` marks an instant event; spans carry
/// [start_ns, start_ns + dur_ns) on the shared monotonic trace clock.
/// `name` must have static storage duration (string literals).
struct TraceEvent {
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    const char* name = "";
    std::int64_t tile = -1;   ///< work-item / tile index, -1 = n/a
    std::int32_t worker = -1; ///< team tid at emission, -1 = outside a job
    std::int32_t mb = -1;     ///< CB-block grid coordinate, -1 = n/a
    std::int32_t nb = -1;
    std::int32_t kb = -1;
    Phase phase = Phase::kNone;
};

/// All events one thread recorded, oldest first.
struct ThreadTrace {
    std::uint64_t thread_index = 0;  ///< registration order, stable per run
    std::uint64_t dropped = 0;       ///< events overwritten by wraparound
    std::vector<TraceEvent> events;
};

/// Snapshot of every thread's ring, as returned by collect().
struct TraceDump {
    std::vector<ThreadTrace> threads;

    [[nodiscard]] std::size_t total_events() const
    {
        std::size_t n = 0;
        for (const ThreadTrace& t : threads) n += t.events.size();
        return n;
    }

    [[nodiscard]] std::uint64_t total_dropped() const
    {
        std::uint64_t n = 0;
        for (const ThreadTrace& t : threads) n += t.dropped;
        return n;
    }
};

#if CAKE_OBS_ENABLED

// --- runtime control (quiescent points only) ----------------------------

/// Arm the tracer (and the metrics registry). `capacity_per_thread` of 0
/// keeps the current capacity (CAKE_TRACE_CAPACITY or the default).
/// Existing rings are kept; new threads allocate at the new capacity.
void enable(std::size_t capacity_per_thread = 0);

/// Disarm recording. Already-recorded events remain collectable.
void disable();

/// Drop every ring and recorded event (threads re-register on their next
/// emission). Must not run concurrently with traced sections.
void reset();

/// True iff recording is armed. First call consults CAKE_TRACE.
[[nodiscard]] bool enabled() noexcept;

/// Snapshot all per-thread rings (oldest event first per thread). Must not
/// run concurrently with traced sections.
[[nodiscard]] TraceDump collect();

/// Nanoseconds on the shared monotonic trace clock.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Rebase a steady_clock reading onto the trace clock. Lets code that
/// already times work with steady_clock (the executors' phase stats) reuse
/// the SAME readings for span emission, so stats and spans agree exactly
/// instead of differing by the cost of a second clock pair.
[[nodiscard]] std::uint64_t to_trace_ns(
    std::chrono::steady_clock::time_point tp) noexcept;

/// Pre-register the calling thread's event ring. A thread's first emission
/// otherwise allocates the ring (capacity * sizeof(TraceEvent)) inside
/// whatever span is being timed; tools call this on every worker before a
/// traced run to keep that cost out of the trace.
void ensure_thread_ring();

/// Events per ring currently used for new thread registrations.
[[nodiscard]] std::size_t ring_capacity() noexcept;

// --- worker attribution (set by ThreadPool around each job) -------------

void set_thread_worker(int tid) noexcept;
[[nodiscard]] int thread_worker() noexcept;

// --- emission -----------------------------------------------------------

/// Record a completed span. No-op when tracing is off.
void emit_span(const char* name, Phase phase, std::uint64_t start_ns,
               std::uint64_t end_ns, index_t mb = -1, index_t nb = -1,
               index_t kb = -1, index_t tile = -1);

/// Record an instant event. No-op when tracing is off.
void emit_instant(const char* name, Phase phase, index_t mb = -1,
                  index_t nb = -1, index_t kb = -1, index_t tile = -1);

/// RAII span: captures the start timestamp if tracing is armed at
/// construction and emits on destruction. Cost when tracing is off: one
/// relaxed atomic load.
class ScopedSpan {
public:
    explicit ScopedSpan(const char* name, Phase phase, index_t mb = -1,
                        index_t nb = -1, index_t kb = -1, index_t tile = -1)
    {
        if (enabled()) {
            name_ = name;
            phase_ = phase;
            mb_ = mb;
            nb_ = nb;
            kb_ = kb;
            tile_ = tile;
            start_ = now_ns();
            armed_ = true;
        }
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    ~ScopedSpan()
    {
        if (armed_) {
            emit_span(name_, phase_, start_, now_ns(), mb_, nb_, kb_, tile_);
        }
    }

private:
    const char* name_ = "";
    std::uint64_t start_ = 0;
    index_t mb_ = -1, nb_ = -1, kb_ = -1, tile_ = -1;
    Phase phase_ = Phase::kNone;
    bool armed_ = false;
};

#else  // !CAKE_OBS_ENABLED

// Compiled-out build (-DCAKE_TRACE_DISABLED=ON): every entry point is a
// constexpr no-op the optimiser deletes at the call site; trace.cpp is an
// empty translation unit, so no cake::obs symbol reaches release objects.

constexpr void enable(std::size_t /*capacity_per_thread*/ = 0) {}
constexpr void disable() {}
constexpr void reset() {}
[[nodiscard]] constexpr bool enabled() noexcept { return false; }
[[nodiscard]] inline TraceDump collect() { return {}; }
[[nodiscard]] constexpr std::uint64_t now_ns() noexcept { return 0; }
[[nodiscard]] constexpr std::uint64_t to_trace_ns(
    std::chrono::steady_clock::time_point /*tp*/) noexcept
{
    return 0;
}
constexpr void ensure_thread_ring() {}
[[nodiscard]] constexpr std::size_t ring_capacity() noexcept { return 0; }

constexpr void set_thread_worker(int /*tid*/) noexcept {}
[[nodiscard]] constexpr int thread_worker() noexcept { return -1; }

constexpr void emit_span(const char* /*name*/, Phase /*phase*/,
                         std::uint64_t /*start_ns*/, std::uint64_t /*end_ns*/,
                         index_t /*mb*/ = -1, index_t /*nb*/ = -1,
                         index_t /*kb*/ = -1, index_t /*tile*/ = -1)
{
}
constexpr void emit_instant(const char* /*name*/, Phase /*phase*/,
                            index_t /*mb*/ = -1, index_t /*nb*/ = -1,
                            index_t /*kb*/ = -1, index_t /*tile*/ = -1)
{
}

class ScopedSpan {
public:
    explicit constexpr ScopedSpan(const char* /*name*/, Phase /*phase*/,
                                  index_t /*mb*/ = -1, index_t /*nb*/ = -1,
                                  index_t /*kb*/ = -1, index_t /*tile*/ = -1)
    {
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // CAKE_OBS_ENABLED

}  // namespace obs
}  // namespace cake
