#include "obs/perf.hpp"

#if CAKE_PERF_ENABLED

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

// Same ownership discipline as trace.cpp: each thread owns its counter
// group and accumulator cells exclusively (perf self-monitoring fds must be
// read by the opening task anyway); the registry mutex only guards thread
// registration and quiescent collection. The atomics are the armed flag,
// the reset generation, and a per-thread publication sequence the
// quiescent collector acquires — tools/lint.sh rule 4 allowlists src/obs/
// for exactly this machinery, and rule 7 allowlists this file's raw
// syscall(SYS_perf_event_open, ...) wrapper (there is no libc binding).

namespace cake {
namespace obs {
namespace perf {

namespace {

long sys_perf_event_open(struct perf_event_attr* attr, pid_t pid, int cpu,
                         int group_fd, unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

constexpr std::uint64_t cache_config(std::uint64_t cache, std::uint64_t op,
                                     std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

/// perf_event_paranoid level, or -100 when unreadable (for error strings).
long paranoid_level()
{
    std::ifstream f("/proc/sys/kernel/perf_event_paranoid");
    long level = -100;
    if (f.good()) f >> level;
    return level;
}

std::string describe_open_failure(const CounterSpec& spec, int err)
{
    std::string reason = "perf_event_open(";
    reason += spec.name;
    reason += "): ";
    reason += std::strerror(err);
    if (err == EACCES || err == EPERM) {
        reason += " (perf_event_paranoid=";
        reason += std::to_string(paranoid_level());
        reason += "; needs <= 2, or CAP_PERFMON)";
    } else if (err == ENOENT) {
        reason += " (event not supported here — no PMU in this "
                  "VM/container?)";
    }
    return reason;
}

/// Grouped read buffer: nr, time_enabled, time_running, values[nr].
struct ReadBuffer {
    std::uint64_t nr = 0;
    std::uint64_t time_enabled = 0;
    std::uint64_t time_running = 0;
    std::array<std::uint64_t, kMaxCounters> values{};
};

/// One thread's group + per-(worker, phase) accumulators. Owner-only
/// writes; `seq` is released after every accumulation so a quiescent
/// collector acquires complete cells.
struct ThreadPerf {
    PerfCounterGroup group;
    struct Accum {
        std::int32_t worker = -1;
        std::array<CounterSet, kPhaseCount> phase{};
    };
    std::vector<Accum> accums;
    std::atomic<std::uint64_t> seq{0};

    explicit ThreadPerf(const std::vector<CounterSpec>& specs)
        : group(specs)
    {
        accums.reserve(16);
    }

    Accum& cell(std::int32_t worker)
    {
        for (Accum& a : accums) {
            if (a.worker == worker) return a;
        }
        accums.push_back(Accum{});
        accums.back().worker = worker;
        return accums.back();
    }

    void add(std::int32_t worker, Phase phase, const CounterSet& delta)
    {
        auto p = static_cast<std::size_t>(phase);
        if (p >= kPhaseCount) p = static_cast<std::size_t>(Phase::kOther);
        cell(worker).phase[p] += delta;
        seq.fetch_add(1, std::memory_order_release);
    }
};

struct Registry {
    std::mutex mutex;
    std::vector<std::unique_ptr<ThreadPerf>> threads;
    std::vector<CounterSpec> specs;  ///< what enable() armed
    std::string first_error;         ///< first open failure across threads
    std::size_t best_opened = 0;     ///< most counters any thread opened
};

Registry& registry()
{
    static Registry r;
    return r;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_generation{1};

thread_local ThreadPerf* tls_perf = nullptr;
thread_local std::uint64_t tls_generation = 0;

ThreadPerf* this_thread_perf()
{
    const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
    if (tls_perf != nullptr && tls_generation == gen) return tls_perf;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.threads.push_back(std::make_unique<ThreadPerf>(reg.specs));
    ThreadPerf* tp = reg.threads.back().get();
    if (!tp->group.usable() && reg.first_error.empty()) {
        reg.first_error = tp->group.error();
    }
    if (tp->group.specs().size() > 0) {
        std::size_t opened = 0;
        CounterSet probe_set;
        if (tp->group.read(&probe_set)) {
            for (std::size_t i = 0; i < probe_set.n; ++i) {
                if (probe_set.available[i]) ++opened;
            }
        }
        if (opened > reg.best_opened) reg.best_opened = opened;
    }
    tls_perf = tp;
    tls_generation = gen;
    return tls_perf;
}

}  // namespace

std::vector<CounterSpec> default_counter_specs()
{
    const std::uint64_t llc_loads =
        cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_ACCESS);
    const std::uint64_t llc_load_misses =
        cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS);
    return {
        {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
        {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
        {"llc-loads", PERF_TYPE_HW_CACHE, llc_loads},
        {"llc-load-misses", PERF_TYPE_HW_CACHE, llc_load_misses},
        {"stalled-cycles-backend", PERF_TYPE_HARDWARE,
         PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    };
}

std::vector<CounterSpec> software_counter_specs()
{
    return {
        {"task-clock-ns", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
        {"page-faults", PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
        {"context-switches", PERF_TYPE_SOFTWARE,
         PERF_COUNT_SW_CONTEXT_SWITCHES},
    };
}

PerfCounterGroup::PerfCounterGroup(const std::vector<CounterSpec>& specs)
    : specs_(specs)
{
    if (specs_.size() > kMaxCounters) specs_.resize(kMaxCounters);
    fd_.fill(-1);
    read_pos_.fill(-1);
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        struct perf_event_attr attr;
        std::memset(&attr, 0, sizeof(attr));
        attr.size = sizeof(attr);
        attr.type = specs_[i].type;
        attr.config = specs_[i].config;
        attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED
                           | PERF_FORMAT_TOTAL_TIME_RUNNING;
        if (leader_ < 0) {
            attr.disabled = 1;  // leader starts off; siblings follow it
        }
        attr.exclude_kernel = 1;  // open under perf_event_paranoid <= 2
        attr.exclude_hv = 1;
        const long fd = sys_perf_event_open(&attr, /*pid=*/0, /*cpu=*/-1,
                                            leader_ >= 0 ? fd_[0] : -1,
                                            PERF_FLAG_FD_CLOEXEC);
        if (fd < 0) {
            if (error_.empty()) {
                error_ = describe_open_failure(specs_[i], errno);
            }
            continue;
        }
        if (leader_ < 0) {
            leader_ = static_cast<int>(i);
            fd_[0] = static_cast<int>(fd);
            // Leader lives in fd_[0]; remember its true slot.
            read_pos_[i] = 0;
        } else {
            fd_[opened_] = static_cast<int>(fd);
            read_pos_[i] = static_cast<int>(opened_);
        }
        ++opened_;
    }
    if (leader_ >= 0) {
        ioctl(fd_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(fd_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
}

PerfCounterGroup::~PerfCounterGroup() { close_all(); }

PerfCounterGroup::PerfCounterGroup(PerfCounterGroup&& o) noexcept
    : specs_(std::move(o.specs_)),
      fd_(o.fd_),
      read_pos_(o.read_pos_),
      leader_(o.leader_),
      opened_(o.opened_),
      error_(std::move(o.error_))
{
    o.fd_.fill(-1);
    o.leader_ = -1;
    o.opened_ = 0;
}

PerfCounterGroup& PerfCounterGroup::operator=(PerfCounterGroup&& o) noexcept
{
    if (this != &o) {
        close_all();
        specs_ = std::move(o.specs_);
        fd_ = o.fd_;
        read_pos_ = o.read_pos_;
        leader_ = o.leader_;
        opened_ = o.opened_;
        error_ = std::move(o.error_);
        o.fd_.fill(-1);
        o.leader_ = -1;
        o.opened_ = 0;
    }
    return *this;
}

void PerfCounterGroup::close_all() noexcept
{
    for (std::size_t i = 0; i < opened_; ++i) {
        if (fd_[i] >= 0) close(fd_[i]);
        fd_[i] = -1;
    }
    leader_ = -1;
    opened_ = 0;
}

bool PerfCounterGroup::read(CounterSet* out) const
{
    if (out == nullptr || leader_ < 0) return false;
    ReadBuffer buf;
    const std::size_t want =
        sizeof(std::uint64_t) * (3 + opened_);
    const ssize_t got = ::read(fd_[0], &buf, want);
    if (got < 0 || static_cast<std::size_t>(got) < want
        || buf.nr != opened_) {
        return false;
    }
    CounterSet set;
    set.n = specs_.size();
    set.time_enabled_ns = buf.time_enabled;
    set.time_running_ns = buf.time_running;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const int pos = read_pos_[i];
        if (pos < 0) continue;
        set.value[i] = buf.values[static_cast<std::size_t>(pos)];
        set.available[i] = true;
    }
    *out = set;
    return true;
}

CounterSet PerfCounterGroup::delta(const CounterSet& begin,
                                   const CounterSet& end)
{
    CounterSet d;
    d.n = end.n;
    const std::uint64_t d_enabled =
        end.time_enabled_ns > begin.time_enabled_ns
            ? end.time_enabled_ns - begin.time_enabled_ns
            : 0;
    const std::uint64_t d_running =
        end.time_running_ns > begin.time_running_ns
            ? end.time_running_ns - begin.time_running_ns
            : 0;
    d.time_enabled_ns = d_enabled;
    d.time_running_ns = d_running;
    // Multiplexing scale factor over THIS interval: when the kernel had
    // the group on the PMU only d_running of d_enabled ns, counts are
    // inflated proportionally (the standard perf extrapolation).
    const double scale =
        d_running > 0 && d_running < d_enabled
            ? static_cast<double>(d_enabled) / static_cast<double>(d_running)
            : 1.0;
    for (std::size_t i = 0; i < end.n; ++i) {
        if (!end.available[i] || !begin.available[i]) continue;
        const std::uint64_t raw =
            end.value[i] > begin.value[i] ? end.value[i] - begin.value[i]
                                          : 0;
        d.value[i] =
            static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
        d.available[i] = true;
    }
    return d;
}

Availability probe()
{
    static std::once_flag once;
    static Availability cached;
    std::call_once(once, [] {
        PerfCounterGroup group(default_counter_specs());
        cached.usable = group.usable();
        cached.reason = group.error();
        CounterSet set;
        if (group.read(&set)) {
            for (std::size_t i = 0; i < set.n; ++i) {
                if (set.available[i]) ++cached.opened;
            }
        }
    });
    return cached;
}

bool enable() { return enable(default_counter_specs()); }

bool enable(std::vector<CounterSpec> specs)
{
    Registry& reg = registry();
    bool specs_changed = false;
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        specs_changed = reg.specs.size() != specs.size();
        for (std::size_t i = 0; !specs_changed && i < specs.size(); ++i) {
            specs_changed = reg.specs[i].type != specs[i].type
                            || reg.specs[i].config != specs[i].config;
        }
        reg.specs = std::move(specs);
    }
    if (specs_changed) reset();
    g_enabled.store(true, std::memory_order_release);
    // Open the caller's group eagerly so enable() can report usability.
    ThreadPerf* tp = this_thread_perf();
    return tp->group.usable();
}

void disable() { g_enabled.store(false, std::memory_order_release); }

void reset()
{
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.threads.clear();
    reg.first_error.clear();
    reg.best_opened = 0;
    g_generation.fetch_add(1, std::memory_order_acq_rel);
}

bool enabled() noexcept
{
    return g_enabled.load(std::memory_order_relaxed);
}

void ensure_thread_counters()
{
    if (enabled()) (void)this_thread_perf();
}

bool read_thread_counters(CounterSet* out)
{
    if (!enabled()) return false;
    ThreadPerf* tp = this_thread_perf();
    return tp->group.read(out);
}

PerfDump collect()
{
    PerfDump dump;
    dump.line_bytes = cache_line_bytes();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    dump.specs = reg.specs;
    dump.availability.reason = reg.first_error;
    dump.availability.opened = reg.best_opened;
    for (const auto& tp : reg.threads) {
        (void)tp->seq.load(std::memory_order_acquire);
        if (tp->group.usable()) dump.availability.usable = true;
        for (const ThreadPerf::Accum& a : tp->accums) {
            WorkerPerf* merged = nullptr;
            for (WorkerPerf& w : dump.workers) {
                if (w.worker == a.worker) {
                    merged = &w;
                    break;
                }
            }
            if (merged == nullptr) {
                dump.workers.push_back(WorkerPerf{});
                merged = &dump.workers.back();
                merged->worker = a.worker;
            }
            for (std::size_t p = 0; p < kPhaseCount; ++p) {
                merged->phase[p] += a.phase[p];
            }
        }
    }
    if (reg.threads.empty()) {
        const Availability avail = probe();
        dump.availability.usable = avail.usable;
        if (dump.availability.reason.empty()) {
            dump.availability.reason = avail.reason;
        }
    }
    for (std::size_t i = 1; i < dump.workers.size(); ++i) {
        for (std::size_t j = i;
             j > 0 && dump.workers[j].worker < dump.workers[j - 1].worker;
             --j) {
            std::swap(dump.workers[j], dump.workers[j - 1]);
        }
    }
    return dump;
}

std::uint64_t cache_line_bytes() noexcept
{
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
    const long line = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
    if (line > 0) return static_cast<std::uint64_t>(line);
#endif
    return 64;
}

ScopedPhaseDelta::ScopedPhaseDelta(Phase phase)
{
    if (!enabled()) return;
    ThreadPerf* tp = this_thread_perf();
    if (!tp->group.usable()) return;
    if (!tp->group.read(&begin_)) return;
    phase_ = phase;
    armed_ = true;
}

ScopedPhaseDelta::~ScopedPhaseDelta()
{
    if (!armed_) return;
    ThreadPerf* tp = this_thread_perf();
    CounterSet end;
    if (!tp->group.read(&end)) return;
    tp->add(thread_worker(), phase_, PerfCounterGroup::delta(begin_, end));
}

void publish(const PerfDump& dump)
{
    if (!metrics_enabled()) return;
    static const MetricId ids[] = {
        counter("obs.perf.cycles"),
        counter("obs.perf.instructions"),
        counter("obs.perf.llc_loads"),
        counter("obs.perf.llc_load_misses"),
    };
    static const char* const names[] = {"cycles", "instructions",
                                        "llc-loads", "llc-load-misses"};
    for (std::size_t i = 0; i < 4; ++i) {
        std::uint64_t v = 0;
        if (dump.total_of(names[i], &v)) counter_add(ids[i], v);
    }
    double miss_bytes = 0;
    if (llc_miss_bytes(dump, &miss_bytes)) {
        counter_add(counter("obs.perf.llc_miss_bytes"),
                    static_cast<std::uint64_t>(miss_bytes));
    }
}

}  // namespace perf
}  // namespace obs
}  // namespace cake

#endif  // CAKE_PERF_ENABLED
