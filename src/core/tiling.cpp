#include "core/tiling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace {

/// Deepest cache level private to one core, excluding the last level
/// (which always plays the shared "local memory" role even on single-core
/// hosts): where each core's square mc x kc A sub-block lives (L2 on the
/// desktop CPUs; L1 on the A53, whose L2 is the shared LLC).
const CacheLevel& private_cache(const MachineSpec& machine)
{
    const auto& levels = machine.caches.levels;
    CAKE_CHECK_MSG(!levels.empty(), "machine has no cache levels");
    const CacheLevel* best = nullptr;
    for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
        if (levels[i].shared_by_cores == 1) best = &levels[i];
    }
    return best != nullptr ? *best : levels.front();
}

/// Seconds for one core to run one mr x nr x kc micro-kernel invocation.
double tile_seconds(const MachineSpec& machine, index_t mr, index_t nr,
                    index_t kc)
{
    const double flops = 2.0 * static_cast<double>(mr)
        * static_cast<double>(nr) * static_cast<double>(kc);
    return flops / (machine.core_gflops * 1e9);
}

/// Largest alpha for which the LRU working set C + 2(A+B) fits the LLC
/// (§4.3). May be < 1, signalling mc must shrink.
double max_alpha_for_llc(const MachineSpec& machine, int p, index_t mc,
                         index_t kc, double llc_fraction, index_t elem_bytes)
{
    const double s_floats = llc_fraction
        * static_cast<double>(machine.llc_bytes())
        / static_cast<double>(elem_bytes);
    const double dp = static_cast<double>(p);
    const double dmc = static_cast<double>(mc);
    const double dkc = static_cast<double>(kc);
    const double a = dp * dmc * dkc;                          // A surface
    const double c_per_alpha = dp * dp * dmc * dmc;
    const double b_per_alpha = dp * dmc * dkc;
    // alpha*(C' + 2B') + 2A <= S  =>  alpha <= (S - 2A) / (C' + 2B')
    return (s_floats - 2.0 * a) / (c_per_alpha + 2.0 * b_per_alpha);
}

}  // namespace

std::size_t private_cache_bytes(const MachineSpec& machine)
{
    return private_cache(machine).size_bytes;
}

std::size_t CbBlockParams::surface_bytes() const
{
    const auto a = static_cast<std::size_t>(m_blk) * k_blk;
    const auto b = static_cast<std::size_t>(k_blk) * n_blk;
    const auto c = static_cast<std::size_t>(m_blk) * n_blk;
    return (a + b + c) * static_cast<std::size_t>(elem_bytes);
}

std::size_t CbBlockParams::lru_working_set_bytes() const
{
    const auto a = static_cast<std::size_t>(m_blk) * k_blk;
    const auto b = static_cast<std::size_t>(k_blk) * n_blk;
    const auto c = static_cast<std::size_t>(m_blk) * n_blk;
    return (c + 2 * (a + b)) * static_cast<std::size_t>(elem_bytes);
}

double CbBlockParams::arithmetic_intensity() const
{
    const double macs = static_cast<double>(m_blk)
        * static_cast<double>(n_blk) * static_cast<double>(k_blk);
    const double io_bytes =
        (static_cast<double>(m_blk) * static_cast<double>(k_blk)
         + static_cast<double>(k_blk) * static_cast<double>(n_blk))
        * static_cast<double>(elem_bytes);
    return 2.0 * macs / io_bytes;
}

double bandwidth_ratio(const MachineSpec& machine, int p, index_t mr,
                       index_t nr, index_t mc, index_t kc, index_t elem_bytes)
{
    (void)p;  // the ratio is per-core-count invariant: p cancels (§3.2)
    // DRAM demand of the block as alpha -> infinity:
    //   IO/T -> elem_bytes/2 * core_gflops * 1e9 / mc bytes/s.
    const double t_tile = tile_seconds(machine, mr, nr, kc);
    const double bw_floor = static_cast<double>(elem_bytes)
        * static_cast<double>(kc) * static_cast<double>(mr)
        * static_cast<double>(nr) / (static_cast<double>(mc) * t_tile);
    return machine.dram_bw_gbs * 1e9 / bw_floor;
}

double required_dram_bw_gbs(const MachineSpec& machine,
                            const CbBlockParams& params)
{
    const double io_bytes =
        (static_cast<double>(params.m_blk) * static_cast<double>(params.k_blk)
         + static_cast<double>(params.k_blk)
             * static_cast<double>(params.n_blk))
        * static_cast<double>(params.elem_bytes);
    const double tiles_per_core = static_cast<double>(
        ceil_div(params.mc, params.mr) * ceil_div(params.n_blk, params.nr));
    const double t =
        tiles_per_core * tile_seconds(machine, params.mr, params.nr, params.k_blk);
    return io_bytes / t / 1e9;
}

CbBlockParams compute_cb_block(const MachineSpec& machine, int p, index_t mr,
                               index_t nr, const TilingOptions& opts)
{
    CAKE_CHECK(p >= 1);
    CAKE_CHECK(mr >= 1 && nr >= 1);

    CAKE_CHECK_MSG(!(opts.alpha && opts.nc),
                   "alpha and nc overrides conflict: nc fixes the N extent "
                   "that alpha would derive");

    CbBlockParams params;
    params.p = p;
    params.mr = mr;
    params.nr = nr;

    // 1. Square per-core sub-block from the private cache budget.
    index_t mc;
    if (opts.mc) {
        mc = *opts.mc;
        CAKE_CHECK_MSG(mc >= mr && mc % mr == 0,
                       "mc override must be a positive multiple of mr");
    } else {
        const auto& l2 = private_cache(machine);
        const double budget_elems = opts.l2_fraction
            * static_cast<double>(l2.size_bytes)
            / static_cast<double>(opts.elem_bytes);
        mc = static_cast<index_t>(std::sqrt(std::max(budget_elems, 1.0)));
        mc = std::max<index_t>(mc / mr * mr, mr);
    }
    if (opts.kc) {
        CAKE_CHECK_MSG(*opts.kc >= 1, "kc override must be >= 1");
    }
    // kc follows mc (square §4.1 sub-block) unless overridden; in the
    // shrink loop below it therefore tracks the shrinking mc.
    auto kc_of = [&](index_t mc_now) {
        return opts.kc ? *opts.kc : mc_now;
    };

    // 3a. Shrink mc until an alpha >= 1 block fits the LLC under the LRU
    //     rule (or mc bottoms out at one register tile).
    if (!opts.mc) {
        while (mc > mr
               && max_alpha_for_llc(machine, p, mc, kc_of(mc),
                                    opts.llc_fraction, opts.elem_bytes)
                   < 1.0) {
            mc -= mr;
        }
    }
    const index_t kc = kc_of(mc);

    // 2. alpha from the bandwidth-availability ratio (Eq. 2: alpha >= 1/(R-1))
    //    — or directly from a forced N extent.
    const double r =
        bandwidth_ratio(machine, p, mr, nr, mc, kc, opts.elem_bytes);
    double alpha;
    index_t n_blk;
    const double alpha_cap = std::max(
        1.0,
        max_alpha_for_llc(machine, p, mc, kc, opts.llc_fraction,
                          opts.elem_bytes));
    if (opts.nc) {
        CAKE_CHECK_MSG(*opts.nc >= 1, "nc override must be >= 1");
        n_blk = std::max(round_up(*opts.nc, nr), nr);
        // Derived stretch factor; may fall below 1 for a deliberately
        // narrow block — audit_cb_plan flags that as a GEOMETRY issue.
        alpha = static_cast<double>(n_blk)
            / (static_cast<double>(p) * static_cast<double>(mc));
    } else {
        if (opts.alpha) {
            alpha = *opts.alpha;
            CAKE_CHECK_MSG(alpha >= 1.0, "alpha must be >= 1");
        } else if (r > 1.0) {
            alpha = std::clamp(1.0 / (r - 1.0), 1.0, alpha_cap);
        } else {
            // DRAM can never match compute at this geometry; stretch the
            // block as far as local memory allows to maximise arithmetic
            // intensity.
            alpha = alpha_cap;
        }
        n_blk = std::max(
            round_up(static_cast<index_t>(std::llround(
                         alpha * static_cast<double>(p)
                         * static_cast<double>(mc))),
                     nr),
            nr);
    }

    params.elem_bytes = opts.elem_bytes;
    params.mc = mc;
    params.kc = kc;
    params.alpha = alpha;
    params.m_blk = static_cast<index_t>(p) * mc;
    params.k_blk = kc;
    params.n_blk = n_blk;
    return params;
}

}  // namespace cake
