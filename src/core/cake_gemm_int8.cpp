#include "core/cake_gemm_int8.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "kernel/kernel_int8.hpp"
#include "pack/pack_int8.hpp"

namespace cake {

CakeGemmInt8::CakeGemmInt8(ThreadPool& pool, CakeOptions options)
    : pool_(pool), options_(std::move(options)),
      machine_(options_.machine ? *options_.machine : host_machine())
{
    if (options_.p <= 0 || options_.p > pool_.size())
        options_.p = pool_.size();
    CAKE_CHECK_MSG(options_.op_a == Op::kNone && options_.op_b == Op::kNone,
                   "transposed operands not supported on the int8 path");
}

void CakeGemmInt8::multiply(const std::uint8_t* a, index_t lda,
                            const std::int8_t* b, index_t ldb,
                            std::int32_t* c, index_t ldc, index_t m,
                            index_t n, index_t k)
{
    multiply_impl(a, lda, b, ldb, c, ldc, m, n, k, nullptr);
}

PackedBInt8 CakeGemmInt8::pack_weights(const std::int8_t* b, index_t ldb,
                                       index_t k, index_t n)
{
    CAKE_CHECK(k >= 1 && n >= 1 && ldb >= n);
    const Int8MicroKernel kernel = best_int8_microkernel();
    TilingOptions topts;
    topts.mc = options_.mc;
    topts.kc = options_.kc;
    topts.nc = options_.nc;
    topts.alpha = options_.alpha;
    topts.elem_bytes = sizeof(std::int32_t);
    PackedBInt8 packed;
    packed.params_ = compute_cb_block(machine_, options_.p, kernel.mr,
                                      kernel.nr, topts);
    packed.k_ = k;
    packed.n_ = n;
    packed.kb_ = ceil_div(k, packed.params_.k_blk);
    packed.nb_ = ceil_div(n, packed.params_.n_blk);
    packed.stride_ = static_cast<std::size_t>(packed_b_int8_size(
        packed.params_.k_blk, packed.params_.n_blk, kernel.nr));
    packed.data_ = AlignedBuffer<std::int8_t>(
        static_cast<std::size_t>(packed.kb_ * packed.nb_) * packed.stride_);

    pool_.parallel_for(0, packed.kb_ * packed.nb_, options_.p,
                       [&](index_t lo, index_t hi) {
        for (index_t slot = lo; slot < hi; ++slot) {
            const index_t k_idx = slot / packed.nb_;
            const index_t n_idx = slot % packed.nb_;
            const index_t k0 = k_idx * packed.params_.k_blk;
            const index_t n0 = n_idx * packed.params_.n_blk;
            const index_t ki = std::min(packed.params_.k_blk, k - k0);
            const index_t ni = std::min(packed.params_.n_blk, n - n0);
            pack_b_panel_int8(b + k0 * ldb + n0, ldb, ki, ni, kernel.nr,
                              packed.data_.data()
                                  + static_cast<std::size_t>(slot)
                                      * packed.stride_);
        }
    });
    return packed;
}

void CakeGemmInt8::multiply_prepacked(const std::uint8_t* a, index_t lda,
                                      const PackedBInt8& b, std::int32_t* c,
                                      index_t ldc, index_t m)
{
    CAKE_CHECK_MSG(!b.empty(), "PackedBInt8 is empty");
    multiply_impl(a, lda, nullptr, b.n(), c, ldc, m, b.n(), b.k(), &b);
}

void CakeGemmInt8::multiply_impl(const std::uint8_t* a, index_t lda,
                                 const std::int8_t* b, index_t ldb,
                                 std::int32_t* c, index_t ldc, index_t m,
                                 index_t n, index_t k,
                                 const PackedBInt8* prepacked)
{
    CAKE_CHECK(m >= 0 && n >= 0 && k >= 0);
    CAKE_CHECK(lda >= k && ldc >= n);
    if (prepacked == nullptr) CAKE_CHECK(ldb >= n);
    if (m == 0 || n == 0) return;
    if (k == 0) {
        if (!options_.accumulate) {
            for (index_t i = 0; i < m; ++i)
                std::fill(c + i * ldc, c + i * ldc + n, 0);
        }
        return;
    }

    Timer total_timer;
    const int p = options_.p;
    const Int8MicroKernel kernel = best_int8_microkernel();

    TilingOptions topts;
    topts.mc = options_.mc;
    topts.kc = options_.kc;
    topts.nc = options_.nc;
    topts.alpha = options_.alpha;
    // Conservative sizing: the solver assumes uniform element size; the
    // s32 partial-result surface dominates the LLC budget, so size as if
    // every operand were 4 bytes (inputs are actually 1 byte, giving the
    // real run extra headroom).
    topts.elem_bytes = sizeof(std::int32_t);
    const CbBlockParams params =
        compute_cb_block(machine_, p, kernel.mr, kernel.nr, topts);
    if (prepacked != nullptr) {
        CAKE_CHECK_MSG(prepacked->params() == params,
                       "PackedBInt8 geometry does not match this context");
    }

    stats_ = CakeStats{};
    stats_.params = params;

    const index_t mb = ceil_div(m, params.m_blk);
    const index_t nb = ceil_div(n, params.n_blk);
    const index_t kb = ceil_div(k, params.k_blk);
    stats_.grid_mb = mb;
    stats_.grid_nb = nb;
    stats_.grid_kb = kb;

    const std::vector<BlockCoord> order =
        build_schedule(options_.schedule, mb, nb, kb, /*n_outermost=*/n >= m);

    pack_a_.ensure(static_cast<std::size_t>(
        packed_a_int8_size(params.m_blk, params.k_blk, kernel.mr)));
    if (prepacked == nullptr) {
        pack_b_.ensure(static_cast<std::size_t>(
            packed_b_int8_size(params.k_blk, params.n_blk, kernel.nr)));
    }
    c_block_.ensure(static_cast<std::size_t>(params.m_blk)
                    * static_cast<std::size_t>(params.n_blk));
    if (scratch_.size() < static_cast<std::size_t>(p)) {
        scratch_.resize(static_cast<std::size_t>(p));
    }
    for (auto& s : scratch_) {
        s.ensure(static_cast<std::size_t>(kernel.mr * kernel.nr));
    }

    std::vector<index_t> k_done(static_cast<std::size_t>(mb * nb), 0);
    std::vector<char> flushed(static_cast<std::size_t>(mb * nb), 0);
    BlockCoord last{-1, -1, -1};
    bool have_last = false;
    index_t cur_mi = 0, cur_ni = 0;

    auto block_extent = [](index_t idx, index_t blk, index_t total) {
        return std::min(blk, total - idx * blk);
    };

    auto flush_c = [&](const BlockCoord& coord, index_t mi, index_t ni) {
        const std::size_t slot =
            static_cast<std::size_t>(coord.m * nb + coord.n);
        const bool acc = options_.accumulate || flushed[slot] != 0;
        std::int32_t* dst =
            c + coord.m * params.m_blk * ldc + coord.n * params.n_blk;
        pool_.parallel_for(0, mi, p, [&](index_t r0, index_t r1) {
            unpack_c_block(c_block_.data() + r0 * ni, r1 - r0, ni,
                           dst + r0 * ldc, ldc, acc);
        });
        flushed[slot] = 1;
        ++stats_.c_flushes;
        const auto bytes = static_cast<std::uint64_t>(mi)
            * static_cast<std::uint64_t>(ni) * sizeof(std::int32_t);
        stats_.dram_write_bytes += bytes;
        if (acc) stats_.dram_read_bytes += bytes;
        if (k_done[slot] < kb) ++stats_.c_partial_spills;
    };

    for (const BlockCoord& coord : order) {
        const index_t mi = block_extent(coord.m, params.m_blk, m);
        const index_t ni = block_extent(coord.n, params.n_blk, n);
        const index_t ki = block_extent(coord.k, params.k_blk, k);
        const index_t m0 = coord.m * params.m_blk;
        const index_t n0 = coord.n * params.n_blk;
        const index_t k0 = coord.k * params.k_blk;
        const index_t kq = int8_kq(ki);

        Timer pack_timer;
        if (!(have_last && last.m == coord.m && last.k == coord.k)) {
            pool_.parallel_for(0, ceil_div(mi, kernel.mr), p,
                               [&](index_t s0, index_t s1) {
                const index_t r0 = s0 * kernel.mr;
                const index_t r1 = std::min(mi, s1 * kernel.mr);
                pack_a_panel_int8(a + (m0 + r0) * lda + k0, lda, r1 - r0, ki,
                                  kernel.mr, pack_a_.data() + r0 * kq * 4);
            });
            ++stats_.a_packs;
            stats_.dram_read_bytes += static_cast<std::uint64_t>(mi) * ki;
        }
        const std::int8_t* pb_block = pack_b_.data();
        if (prepacked != nullptr) {
            pb_block = prepacked->panel(coord.k, coord.n);
            if (!(have_last && last.k == coord.k && last.n == coord.n)) {
                stats_.dram_read_bytes +=
                    static_cast<std::uint64_t>(ki) * ni;
            }
        } else if (!(have_last && last.k == coord.k && last.n == coord.n)) {
            pool_.parallel_for(0, ceil_div(ni, kernel.nr), p,
                               [&](index_t s0, index_t s1) {
                const index_t c0 = s0 * kernel.nr;
                const index_t c1 = std::min(ni, s1 * kernel.nr);
                pack_b_panel_int8(b + k0 * ldb + (n0 + c0), ldb, ki, c1 - c0,
                                  kernel.nr, pack_b_.data() + c0 * kq * 4);
            });
            ++stats_.b_packs;
            stats_.dram_read_bytes += static_cast<std::uint64_t>(ki) * ni;
        }
        if (!(have_last && last.m == coord.m && last.n == coord.n)) {
            if (have_last) flush_c(last, cur_mi, cur_ni);
            pool_.parallel_for(0, mi, p, [&](index_t r0, index_t r1) {
                std::memset(c_block_.data() + r0 * ni, 0,
                            static_cast<std::size_t>((r1 - r0) * ni)
                                * sizeof(std::int32_t));
            });
            cur_mi = mi;
            cur_ni = ni;
        }
        stats_.pack_seconds += pack_timer.seconds();

        Timer compute_timer;
        const std::uint8_t* pa = pack_a_.data();
        const std::int8_t* pb = pb_block;
        std::int32_t* cb = c_block_.data();
        const index_t band =
            round_up(ceil_div(mi, static_cast<index_t>(p)), kernel.mr);
        pool_.run(p, [&, pa, pb, cb, mi, ni, kq, band](int tid) {
            const index_t r_begin = std::min<index_t>(tid * band, mi);
            const index_t r_end = std::min<index_t>((tid + 1) * band, mi);
            std::int32_t* scratch =
                scratch_[static_cast<std::size_t>(tid)].data();
            for (index_t r = r_begin; r < r_end; r += kernel.mr) {
                const index_t mrows = std::min(kernel.mr, r_end - r);
                const std::uint8_t* a_sliver =
                    pa + (r / kernel.mr) * kernel.mr * kq * 4;
                for (index_t j = 0; j < ni; j += kernel.nr) {
                    const index_t ncols = std::min(kernel.nr, ni - j);
                    const std::int8_t* b_sliver =
                        pb + (j / kernel.nr) * kernel.nr * kq * 4;
                    run_int8_tile(kernel, kq, a_sliver, b_sliver,
                                  cb + r * ni + j, ni, mrows, ncols,
                                  /*accumulate=*/true, scratch);
                }
            }
        });
        stats_.compute_seconds += compute_timer.seconds();

        ++k_done[static_cast<std::size_t>(coord.m * nb + coord.n)];
        ++stats_.blocks_executed;
        last = coord;
        have_last = true;
    }
    if (have_last) flush_c(last, cur_mi, cur_ni);
    stats_.total_seconds = total_timer.seconds();
}

void cake_gemm_s8u8s32(const std::uint8_t* a, const std::int8_t* b,
                       std::int32_t* c, index_t m, index_t n, index_t k,
                       ThreadPool& pool, const CakeOptions& options,
                       CakeStats* stats)
{
    CakeGemmInt8 gemm(pool, options);
    gemm.multiply(a, k, b, n, c, n, m, n, k);
    if (stats != nullptr) *stats = gemm.stats();
}

Matrix cake_qgemm(const Matrix& a, const Matrix& b, ThreadPool& pool,
                  const CakeOptions& options)
{
    CAKE_CHECK(a.cols() == b.rows());
    const index_t m = a.rows();
    const index_t k = a.cols();
    const index_t n = b.cols();

    AlignedBuffer<std::uint8_t> aq(static_cast<std::size_t>(m * k));
    AlignedBuffer<std::int8_t> bq(static_cast<std::size_t>(k * n));
    const QuantParams pa = quantize_unsigned(a.data(), m * k, aq.data());
    const QuantParams pb = quantize_signed(b.data(), k * n, bq.data());

    AlignedBuffer<std::int32_t> acc(static_cast<std::size_t>(m * n), true);
    cake_gemm_s8u8s32(aq.data(), bq.data(), acc.data(), m, n, k, pool,
                      options);

    std::vector<std::int64_t> colsums(static_cast<std::size_t>(n));
    int8_column_sums(bq.data(), n, k, n, colsums.data());

    Matrix out(m, n, /*zero=*/false);
    dequantize_gemm(acc.data(), n, m, n, pa, pb, colsums.data(), out.data(),
                    n);
    return out;
}

}  // namespace cake
