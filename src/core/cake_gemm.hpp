// The CAKE GEMM driver: a drop-in matrix-multiply whose blocking and
// scheduling come straight from the CB-block theory (no design-space
// search). Supports float (sgemm) and double (dgemm) elements, transposed
// operands, and the full BLAS epilogue C = alpha*op(A)*op(B) + beta*C.
//
// Execution per CB block (paper Fig. 6):
//   * the block's A surface is packed and split into p square mc x kc
//     sub-blocks, one per worker ("core"), standing in for L2 residency;
//   * the B surface is packed once and streamed by every worker;
//   * the partial-result C surface lives in a local accumulation buffer
//     (standing in for L3 residency) until its K reduction completes —
//     partial results never travel to external memory;
//   * blocks execute in the K-first serpentine order of Algorithm 2, so
//     consecutive blocks always share a surface and the shared surface is
//     never re-packed (surface sharing made literal: the pack step is
//     skipped when the block coordinate component is unchanged).
#pragma once

#include <cstdint>
#include <optional>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "core/plan_source.hpp"
#include "core/prepacked.hpp"
#include "core/schedule.hpp"
#include "core/tiling.hpp"
#include "kernel/registry.hpp"
#include "machine/machine.hpp"
#include "threading/thread_pool.hpp"

namespace cake {

/// Operand transform, BLAS-style.
enum class Op {
    kNone,       ///< use the operand as stored
    kTranspose,  ///< use its transpose
};

namespace detail {
template <typename T>
struct GemmCall;  // bundled multiply arguments (defined in cake_gemm.cpp)
}  // namespace detail

/// Tuning and behaviour knobs. Defaults reproduce the paper's analytically
/// derived configuration; overrides exist for the ablation benches.
struct CakeOptions {
    int p = 0;  ///< worker count; 0 = use the whole pool
    std::optional<double> alpha;   ///< override the solver's CB alpha
    std::optional<index_t> mc;     ///< override mc; multiple of mr
    std::optional<index_t> kc;     ///< override kc independently of mc
    std::optional<index_t> nc;     ///< override the CB-block N extent
    ScheduleKind schedule = ScheduleKind::kKFirstSerpentine;
    std::optional<MachineSpec> machine;  ///< default: host_machine()
    bool accumulate = false;  ///< false: C = A*B; true: C += A*B
    std::optional<Isa> isa;   ///< force micro-kernel ISA
    Op op_a = Op::kNone;      ///< A is stored transposed (K x M)
    Op op_b = Op::kNone;      ///< B is stored transposed (N x K)
    CakeExec exec = CakeExec::kAuto;  ///< block-loop executor
    /// Plan oracle consulted per multiply before the analytic solver
    /// (typically tune::CachedPlanSource over the persisted tuning cache).
    /// Its overrides apply only to knobs left at their defaults above —
    /// explicit user settings always win. Not owned; must outlive the
    /// context. nullptr = pure analytic planning.
    const TunedPlanSource* plan_source = nullptr;
};

/// Measured + modelled execution statistics of one multiply.
struct CakeStats {
    CbBlockParams params;
    index_t grid_mb = 0, grid_nb = 0, grid_kb = 0;
    index_t blocks_executed = 0;
    index_t a_packs = 0;  ///< A surfaces actually fetched (reuse skips these)
    index_t b_packs = 0;
    index_t c_flushes = 0;       ///< C-surface writebacks (1 per (m,n) if K-first)
    index_t c_partial_spills = 0;  ///< writebacks of *incomplete* surfaces
    std::uint64_t dram_read_bytes = 0;
    std::uint64_t dram_write_bytes = 0;

    // Wall-clock phase attribution. The four components decompose the
    // block-loop wall time of one (average) core, so
    //   pack + compute + flush + stall ~= total_seconds.
    // Serial executor: pack/compute/flush are phase wall times. Pipelined
    // executor: phases overlap, so each is aggregate per-worker busy time
    // divided by p (summing phase timers around overlapped parallel
    // sections would double-count wall time).
    double pack_seconds = 0;     ///< A/B panel packing (DRAM fetch)
    double compute_seconds = 0;  ///< micro-kernel macro-loop
    double flush_seconds = 0;    ///< C-surface writeback + local C reset
    double stall_seconds = 0;    ///< barrier waits / idle / dispatch cost
    double total_seconds = 0;

    /// Fraction of packing time the pipeline co-issued with block compute
    /// (packing of block i+1 claimed from the same work queue as block i's
    /// compute items), i.e. the share of the paper's Fig. 7 IO cost taken
    /// off the critical path — it overlaps with compute whenever spare
    /// hardware threads exist. The pipeline-fill pack of the first block
    /// is always exposed. 0 for the serial executor.
    double overlap_efficiency = 0;
    bool pipelined = false;  ///< which executor ran
    /// True when a TunedPlanSource supplied at least one override that
    /// this multiply actually applied (i.e. the plan deviates from the
    /// pure analytic §4.3 configuration because of the tuning cache).
    bool tuned = false;

    /// Achieved throughput for `shape` in GFLOP/s.
    [[nodiscard]] double gflops(const GemmShape& shape) const
    {
        return total_seconds > 0 ? shape.flops() / total_seconds / 1e9 : 0.0;
    }

    /// Average external-memory bandwidth over the run, GB/s.
    [[nodiscard]] double avg_dram_bw_gbs() const
    {
        const double bytes =
            static_cast<double>(dram_read_bytes + dram_write_bytes);
        return total_seconds > 0 ? bytes / total_seconds / 1e9 : 0.0;
    }
};

/// Reusable GEMM context: owns the packed-panel and accumulation buffers
/// so repeated multiplies (e.g. DNN inference layers) do not reallocate.
/// Instantiated for float (CakeGemm) and double (CakeGemmD).
template <typename T>
class CakeGemmT {
public:
    CakeGemmT(ThreadPool& pool, CakeOptions options = {});

    /// C (+)= op(A) * op(B) for row-major operands with explicit leading
    /// dims. With op_a == kTranspose, A is stored k x m (lda >= m); with
    /// op_b == kTranspose, B is stored n x k (ldb >= k).
    /// Accumulate semantics come from options().accumulate.
    void multiply(const T* a, index_t lda, const T* b, index_t ldb, T* c,
                  index_t ldc, index_t m, index_t n, index_t k);

    /// Full BLAS epilogue: C = alpha * op(A)*op(B) + beta * C.
    /// beta == 0 never reads C (it may hold garbage/NaN).
    void multiply_scaled(const T* a, index_t lda, const T* b, index_t ldb,
                         T* c, index_t ldc, index_t m, index_t n, index_t k,
                         T alpha, T beta);

    /// Pack a k x n B operand (weights) once into CB-block panel format
    /// for reuse across many multiplies — skips the per-call B pack
    /// entirely. Honours options().op_b at pack time (so a transposed
    /// weight matrix may be supplied); the returned PackedB is tied to
    /// this context's geometry.
    PackedB<T> pack_weights(const T* b, index_t ldb, index_t k, index_t n);

    /// C (+)= op(A) * B using pre-packed weights; semantics otherwise
    /// identical to multiply(). Throws if `b` was packed under different
    /// CB geometry (other p / mc / alpha / kernel / machine).
    void multiply_prepacked(const T* a, index_t lda, const PackedB<T>& b,
                            T* c, index_t ldc, index_t m);

    /// Stats of the most recent multiply().
    [[nodiscard]] const CakeStats& stats() const { return stats_; }

    [[nodiscard]] const CakeOptions& options() const { return options_; }

private:
    void multiply_impl(const T* a, index_t lda, const T* b, index_t ldb,
                       T* c, index_t ldc, index_t m, index_t n, index_t k,
                       T alpha_s, T beta_s, const PackedB<T>* prepacked);
    void run_serial(const detail::GemmCall<T>& call);
    void run_pipelined(const detail::GemmCall<T>& call);

    ThreadPool& pool_;
    CakeOptions options_;
    bool p_explicit_ = false;  ///< user set options.p (cache must not override)
    MachineSpec machine_;
    MicroKernelT<T> kernel_;
    CakeStats stats_;

    AlignedBuffer<T> pack_a_[2];  ///< double-buffered packed-A panels
    AlignedBuffer<T> pack_b_[2];  ///< double-buffered packed-B panels
    AlignedBuffer<T> c_block_;
    std::vector<AlignedBuffer<T>> scratch_;
};

using CakeGemm = CakeGemmT<float>;
using CakeGemmD = CakeGemmT<double>;

extern template class CakeGemmT<float>;
extern template class CakeGemmT<double>;

/// One-shot convenience wrappers.
void cake_sgemm(const float* a, const float* b, float* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const CakeOptions& options = {}, CakeStats* stats = nullptr);
void cake_dgemm(const double* a, const double* b, double* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const CakeOptions& options = {}, CakeStats* stats = nullptr);

/// Matrix-object convenience wrappers; return C = A * B.
Matrix cake_gemm(const Matrix& a, const Matrix& b, ThreadPool& pool,
                 const CakeOptions& options = {}, CakeStats* stats = nullptr);
MatrixD cake_gemm(const MatrixD& a, const MatrixD& b, ThreadPool& pool,
                  const CakeOptions& options = {},
                  CakeStats* stats = nullptr);

}  // namespace cake
