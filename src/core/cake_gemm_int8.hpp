// Quantized CAKE GEMM: C_s32 (+)= A_u8 * B_s8 with the same CB-block
// partitioning, K-first serpentine schedule and in-local-memory partial
// accumulation as the float driver — int8 arithmetic quadruples the
// block's arithmetic intensity per byte, which is exactly the lever §3's
// analysis pulls (elem_bytes enters the solver).
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "core/cake_gemm.hpp"
#include "core/quant.hpp"

namespace cake {

class CakeGemmInt8;

/// s8 weights packed once into per-CB-block k-quad panels (the int8
/// analogue of PackedB); tied to the packing context's geometry.
class PackedBInt8 {
public:
    PackedBInt8() = default;
    [[nodiscard]] index_t k() const { return k_; }
    [[nodiscard]] index_t n() const { return n_; }
    [[nodiscard]] const CbBlockParams& params() const { return params_; }
    [[nodiscard]] bool empty() const { return data_.empty(); }
    [[nodiscard]] const std::int8_t* panel(index_t k_idx,
                                           index_t n_idx) const
    {
        return data_.data()
            + static_cast<std::size_t>(k_idx * nb_ + n_idx) * stride_;
    }

private:
    friend class CakeGemmInt8;
    CbBlockParams params_;
    index_t k_ = 0, n_ = 0, kb_ = 0, nb_ = 0;
    std::size_t stride_ = 0;
    AlignedBuffer<std::int8_t> data_;
};

/// Reusable quantized GEMM context. Uses CakeOptions for p / mc / alpha /
/// schedule; op_* and isa follow the int8 kernel family's own dispatch.
class CakeGemmInt8 {
public:
    CakeGemmInt8(ThreadPool& pool, CakeOptions options = {});

    /// C (+)= A * B with A u8 (m x k, lda), B s8 (k x n, ldb), C s32
    /// (m x n, ldc). Exact integer arithmetic when A values are <= 127
    /// (which quantize_unsigned guarantees).
    void multiply(const std::uint8_t* a, index_t lda, const std::int8_t* b,
                  index_t ldb, std::int32_t* c, index_t ldc, index_t m,
                  index_t n, index_t k);

    /// Pack s8 weights once for reuse across calls.
    PackedBInt8 pack_weights(const std::int8_t* b, index_t ldb, index_t k,
                             index_t n);

    /// multiply() with pre-packed weights (no per-call B pack).
    void multiply_prepacked(const std::uint8_t* a, index_t lda,
                            const PackedBInt8& b, std::int32_t* c,
                            index_t ldc, index_t m);

    [[nodiscard]] const CakeStats& stats() const { return stats_; }

private:
    void multiply_impl(const std::uint8_t* a, index_t lda,
                       const std::int8_t* b, index_t ldb, std::int32_t* c,
                       index_t ldc, index_t m, index_t n, index_t k,
                       const PackedBInt8* prepacked);

    ThreadPool& pool_;
    CakeOptions options_;
    MachineSpec machine_;
    CakeStats stats_;

    AlignedBuffer<std::uint8_t> pack_a_;
    AlignedBuffer<std::int8_t> pack_b_;
    AlignedBuffer<std::int32_t> c_block_;
    std::vector<AlignedBuffer<std::int32_t>> scratch_;
};

/// One-shot raw-pointer wrapper (BLAS-style gemm_s8u8s32).
void cake_gemm_s8u8s32(const std::uint8_t* a, const std::int8_t* b,
                       std::int32_t* c, index_t m, index_t n, index_t k,
                       ThreadPool& pool, const CakeOptions& options = {},
                       CakeStats* stats = nullptr);

/// End-to-end quantized multiply of float matrices: quantize A (unsigned
/// affine) and B (signed symmetric), run the integer GEMM, dequantize with
/// the zero-point correction. Returns the approximate float product; the
/// error vs the exact product is bounded by the quantization steps.
Matrix cake_qgemm(const Matrix& a, const Matrix& b, ThreadPool& pool,
                  const CakeOptions& options = {});

}  // namespace cake
