// Pre-packed weights: for inference serving, the B operand (weights) is
// reused across thousands of multiplies — packing it once into CB-block
// panel format and skipping the per-call pack step removes the dominant
// per-call overhead of skewed DNN shapes (§5.2.1).
//
// A PackedB is tied to the CB geometry it was packed for (machine, p, mc,
// alpha, kernel); multiply_prepacked verifies the geometry matches.
#pragma once

#include <vector>

#include "common/aligned.hpp"
#include "core/tiling.hpp"

namespace cake {

template <typename T>
class CakeGemmT;

/// B operand packed once into per-CB-block nr-sliver panels.
template <typename T>
class PackedB {
public:
    PackedB() = default;

    [[nodiscard]] index_t k() const { return k_; }
    [[nodiscard]] index_t n() const { return n_; }
    [[nodiscard]] const CbBlockParams& params() const { return params_; }

    /// Packed panel for grid block (k_idx, n_idx).
    [[nodiscard]] const T* panel(index_t k_idx, index_t n_idx) const
    {
        const index_t slot = k_idx * nb_ + n_idx;
        require_extent(slot * static_cast<index_t>(stride_),
                       static_cast<index_t>(stride_), data_.size(),
                       "pre-packed B panel");
        return data_.data() + static_cast<std::size_t>(slot) * stride_;
    }

    /// Elements per panel slot (max panel size).
    [[nodiscard]] std::size_t panel_stride() const { return stride_; }

    /// CAKE_CHECKED: trap if the packed storage's guards were overwritten.
    void verify_canaries() const
    {
        data_.verify_canaries("pre-packed B storage");
    }

    [[nodiscard]] bool empty() const { return data_.empty(); }

private:
    friend class CakeGemmT<T>;

    CbBlockParams params_;
    index_t k_ = 0;
    index_t n_ = 0;
    index_t kb_ = 0;  ///< grid blocks along K
    index_t nb_ = 0;  ///< grid blocks along N
    std::size_t stride_ = 0;  ///< elements per panel slot (max panel size)
    AlignedBuffer<T> data_;
};

using PackedBF = PackedB<float>;
using PackedBD = PackedB<double>;

}  // namespace cake
