#include "core/schedule.hpp"

#include <array>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace cake {
namespace {

/// Generic 3-deep boustrophedon traversal. `dims[0]` is outermost.
/// When `serpentine` is set, the middle dimension reverses direction after
/// every outer step and the inner dimension after every middle step, so
/// consecutive blocks always differ by one grid step in exactly one
/// coordinate — the surface-sharing property of §2.2.
std::vector<std::array<index_t, 3>> boustrophedon(
    std::array<index_t, 3> dims, bool serpentine)
{
    std::vector<std::array<index_t, 3>> order;
    order.reserve(static_cast<std::size_t>(dims[0] * dims[1] * dims[2]));
    bool mid_fwd = true;
    bool inner_fwd = true;
    for (index_t o = 0; o < dims[0]; ++o) {
        for (index_t mi = 0; mi < dims[1]; ++mi) {
            const index_t mid = mid_fwd ? mi : dims[1] - 1 - mi;
            for (index_t ii = 0; ii < dims[2]; ++ii) {
                const index_t inner = inner_fwd ? ii : dims[2] - 1 - ii;
                order.push_back({o, mid, inner});
            }
            if (serpentine) inner_fwd = !inner_fwd;
        }
        if (serpentine) mid_fwd = !mid_fwd;
    }
    return order;
}

}  // namespace

const char* schedule_kind_name(ScheduleKind kind)
{
    switch (kind) {
        case ScheduleKind::kKFirstSerpentine: return "k-first-serpentine";
        case ScheduleKind::kKFirstNoFlip: return "k-first-no-flip";
        case ScheduleKind::kNInnermost: return "n-innermost";
    }
    return "unknown";
}

std::vector<BlockCoord> build_schedule(ScheduleKind kind, index_t mb,
                                       index_t nb, index_t kb,
                                       bool n_outermost)
{
    CAKE_CHECK(mb >= 1 && nb >= 1 && kb >= 1);
    std::vector<BlockCoord> result;
    result.reserve(static_cast<std::size_t>(mb * nb * kb));

    const bool serpentine = kind != ScheduleKind::kKFirstNoFlip;
    std::vector<std::array<index_t, 3>> raw;

    switch (kind) {
        case ScheduleKind::kKFirstSerpentine:
        case ScheduleKind::kKFirstNoFlip:
            // Outer = N (or M when M > N, §2.2), middle = the other of
            // M/N, inner = K (reduction first).
            if (n_outermost) {
                raw = boustrophedon({nb, mb, kb}, serpentine);
                for (const auto& r : raw) result.push_back({r[1], r[0], r[2]});
            } else {
                raw = boustrophedon({mb, nb, kb}, serpentine);
                for (const auto& r : raw) result.push_back({r[0], r[1], r[2]});
            }
            break;
        case ScheduleKind::kNInnermost:
            // Outer = M, middle = K, inner = N: every partial-C surface is
            // revisited Kb times with gaps — the traffic pattern the paper's
            // K-first schedule is designed to avoid.
            raw = boustrophedon({mb, kb, nb}, serpentine);
            for (const auto& r : raw) result.push_back({r[0], r[2], r[1]});
            break;
    }
    return result;
}

SurfaceSharing shared_surfaces(const BlockCoord& prev, const BlockCoord& next)
{
    SurfaceSharing s;
    s.a = prev.m == next.m && prev.k == next.k;
    s.b = prev.k == next.k && prev.n == next.n;
    s.c = prev.m == next.m && prev.n == next.n;
    return s;
}

index_t count_shared_steps(const std::vector<BlockCoord>& order)
{
    index_t shared = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        const SurfaceSharing s = shared_surfaces(order[i - 1], order[i]);
        if (s.a || s.b || s.c) ++shared;
    }
    return shared;
}

ScheduleTraffic schedule_traffic(const std::vector<BlockCoord>& order)
{
    ScheduleTraffic t;
    if (order.empty()) return t;

    // Total K depth: a C surface is complete once all kb blocks of its
    // (m, n) column have executed.
    index_t kb = 0;
    for (const auto& c : order) kb = std::max(kb, c.k + 1);

    std::map<std::pair<index_t, index_t>, index_t> c_progress;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const auto& cur = order[i];
        const SurfaceSharing s =
            i == 0 ? SurfaceSharing{} : shared_surfaces(order[i - 1], cur);
        if (!s.a) ++t.a_fetches;
        if (!s.b) ++t.b_fetches;
        if (i > 0 && !s.c) {
            // We left the previous (m, n) column; if it was incomplete its
            // partial-result surface must spill to external memory and be
            // fetched again later (costing twice a completed result, §2.2).
            const auto& prev = order[i - 1];
            if (c_progress[{prev.m, prev.n}] < kb) ++t.c_spills;
        }
        ++c_progress[{cur.m, cur.n}];
    }
    return t;
}

}  // namespace cake
