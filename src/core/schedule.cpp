#include "core/schedule.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <utility>

#include "common/error.hpp"

namespace cake {
namespace {

/// Generic 3-deep boustrophedon traversal. `dims[0]` is outermost.
/// When `serpentine` is set, the middle dimension reverses direction after
/// every outer step and the inner dimension after every middle step, so
/// consecutive blocks always differ by one grid step in exactly one
/// coordinate — the surface-sharing property of §2.2.
std::vector<std::array<index_t, 3>> boustrophedon(
    std::array<index_t, 3> dims, bool serpentine)
{
    std::vector<std::array<index_t, 3>> order;
    order.reserve(static_cast<std::size_t>(dims[0] * dims[1] * dims[2]));
    bool mid_fwd = true;
    bool inner_fwd = true;
    for (index_t o = 0; o < dims[0]; ++o) {
        for (index_t mi = 0; mi < dims[1]; ++mi) {
            const index_t mid = mid_fwd ? mi : dims[1] - 1 - mi;
            for (index_t ii = 0; ii < dims[2]; ++ii) {
                const index_t inner = inner_fwd ? ii : dims[2] - 1 - ii;
                order.push_back({o, mid, inner});
            }
            if (serpentine) inner_fwd = !inner_fwd;
        }
        if (serpentine) mid_fwd = !mid_fwd;
    }
    return order;
}

index_t sgn(index_t v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }
index_t iabs(index_t v) { return v < 0 ? -v : v; }

/// Generalised Hilbert traversal of a rectangle: recursive halving along
/// the major axis `(ax, ay)` (minor `(bx, by)`), with odd splits nudged to
/// even so sub-rectangles keep compatible orientations. Every consecutive
/// pair of emitted cells is one grid step apart, for arbitrary
/// (non-power-of-two, non-square) extents — the property the adjacency
/// tests pin and the surface-sharing argument of §2.2 needs.
void gilbert(index_t x, index_t y, index_t ax, index_t ay, index_t bx,
             index_t by, std::vector<std::array<index_t, 2>>& out)
{
    const index_t w = iabs(ax + ay);
    const index_t h = iabs(bx + by);
    const index_t dax = sgn(ax), day = sgn(ay);
    const index_t dbx = sgn(bx), dby = sgn(by);
    if (h == 1) {
        for (index_t i = 0; i < w; ++i) {
            out.push_back({x, y});
            x += dax;
            y += day;
        }
        return;
    }
    if (w == 1) {
        for (index_t i = 0; i < h; ++i) {
            out.push_back({x, y});
            x += dbx;
            y += dby;
        }
        return;
    }
    index_t ax2 = ax / 2, ay2 = ay / 2;
    index_t bx2 = bx / 2, by2 = by / 2;
    const index_t w2 = iabs(ax2 + ay2);
    const index_t h2 = iabs(bx2 + by2);
    if (2 * w > 3 * h) {
        if (w2 % 2 != 0 && w > 2) {
            ax2 += dax;
            ay2 += day;
        }
        // Elongated rectangle: split into two halves along the major axis.
        gilbert(x, y, ax2, ay2, bx, by, out);
        gilbert(x + ax2, y + ay2, ax - ax2, ay - ay2, bx, by, out);
        return;
    }
    if (h2 % 2 != 0 && h > 2) {
        bx2 += dbx;
        by2 += dby;
    }
    // Standard U: step sideways, sweep the long middle, step back down.
    gilbert(x, y, bx2, by2, ax2, ay2, out);
    gilbert(x + bx2, y + by2, ax, ay, bx - bx2, by - by2, out);
    gilbert(x + (ax - dax) + (bx2 - dbx), y + (ay - day) + (by2 - dby),
            -bx2, -by2, -(ax - ax2), -(ay - ay2), out);
}

/// Hilbert cells {m, n} over the block plane. The recursive U enters at
/// one corner and exits at the far corner of its major axis, which is
/// reachable without a diagonal step iff NOT (major odd and minor even)
/// — checkerboard parity: a Hamiltonian path over w x h cells alternates
/// colours, and with w odd, h even the designated exit corner has the
/// wrong colour. So the major axis is never the odd side of an
/// odd x even grid; equal-parity grids honour the §2.2 outer-loop
/// orientation. Adjacency for every rectangle is pinned by tests.
std::vector<std::array<index_t, 2>> hilbert_cells(index_t mb, index_t nb,
                                                  bool n_outermost)
{
    std::vector<std::array<index_t, 2>> cells;
    cells.reserve(static_cast<std::size_t>(mb * nb));
    const bool m_even = mb % 2 == 0;
    const bool n_even = nb % 2 == 0;
    const bool n_major = m_even == n_even ? n_outermost : n_even;
    if (n_major) {
        gilbert(0, 0, 0, nb, mb, 0, cells);
    } else {
        gilbert(0, 0, mb, 0, 0, nb, cells);
    }
    return cells;
}

std::uint64_t morton_code(index_t fast, index_t slow)
{
    std::uint64_t code = 0;
    for (int b = 0; b < 32; ++b) {
        code |= ((static_cast<std::uint64_t>(fast) >> b) & 1U)
            << (2 * b);
        code |= ((static_cast<std::uint64_t>(slow) >> b) & 1U)
            << (2 * b + 1);
    }
    return code;
}

/// Morton cells {m, n}: every cell ranked by its interleaved-bit code
/// (low bit = the serpentine's middle loop, M when N is outermost), so
/// arbitrary extents need no walk of the enclosing power-of-two square.
std::vector<std::array<index_t, 2>> morton_cells(index_t mb, index_t nb,
                                                 bool n_outermost)
{
    std::vector<std::array<index_t, 2>> cells;
    cells.reserve(static_cast<std::size_t>(mb * nb));
    for (index_t m = 0; m < mb; ++m) {
        for (index_t n = 0; n < nb; ++n) cells.push_back({m, n});
    }
    std::sort(cells.begin(), cells.end(),
              [n_outermost](const std::array<index_t, 2>& a,
                            const std::array<index_t, 2>& b) {
                  const std::uint64_t ca = n_outermost
                      ? morton_code(a[0], a[1])
                      : morton_code(a[1], a[0]);
                  const std::uint64_t cb = n_outermost
                      ? morton_code(b[0], b[1])
                      : morton_code(b[1], b[0]);
                  return ca < cb;
              });
    return cells;
}

}  // namespace

const char* schedule_kind_name(ScheduleKind kind)
{
    switch (kind) {
        case ScheduleKind::kKFirstSerpentine: return "k-first-serpentine";
        case ScheduleKind::kKFirstNoFlip: return "k-first-no-flip";
        case ScheduleKind::kNInnermost: return "n-innermost";
        case ScheduleKind::kHilbert: return "hilbert";
        case ScheduleKind::kMorton: return "morton";
    }
    return "unknown";
}

const std::vector<ScheduleKind>& all_schedule_kinds()
{
    static const std::vector<ScheduleKind> kinds = {
        ScheduleKind::kKFirstSerpentine, ScheduleKind::kKFirstNoFlip,
        ScheduleKind::kNInnermost,       ScheduleKind::kHilbert,
        ScheduleKind::kMorton,
    };
    return kinds;
}

std::optional<ScheduleKind> parse_schedule_kind(std::string_view name)
{
    for (const ScheduleKind kind : all_schedule_kinds()) {
        if (name == schedule_kind_name(kind)) return kind;
    }
    return std::nullopt;
}

std::vector<BlockCoord> build_schedule(ScheduleKind kind, index_t mb,
                                       index_t nb, index_t kb,
                                       bool n_outermost)
{
    CAKE_CHECK(mb >= 1 && nb >= 1 && kb >= 1);
    std::vector<BlockCoord> result;
    result.reserve(static_cast<std::size_t>(mb * nb * kb));

    const bool serpentine = kind != ScheduleKind::kKFirstNoFlip;
    std::vector<std::array<index_t, 3>> raw;

    switch (kind) {
        case ScheduleKind::kKFirstSerpentine:
        case ScheduleKind::kKFirstNoFlip:
            // Outer = N (or M when M > N, §2.2), middle = the other of
            // M/N, inner = K (reduction first).
            if (n_outermost) {
                raw = boustrophedon({nb, mb, kb}, serpentine);
                for (const auto& r : raw) result.push_back({r[1], r[0], r[2]});
            } else {
                raw = boustrophedon({mb, nb, kb}, serpentine);
                for (const auto& r : raw) result.push_back({r[0], r[1], r[2]});
            }
            break;
        case ScheduleKind::kNInnermost:
            // Outer = M, middle = K, inner = N: every partial-C surface is
            // revisited Kb times with gaps — the traffic pattern the paper's
            // K-first schedule is designed to avoid.
            raw = boustrophedon({mb, kb, nb}, serpentine);
            for (const auto& r : raw) result.push_back({r[0], r[2], r[1]});
            break;
        case ScheduleKind::kHilbert:
        case ScheduleKind::kMorton: {
            // Space-filling traversal of the (M, N) plane, K innermost
            // with its direction flipped per cell so the reduction run
            // carries k across every cell boundary: a cell transition that
            // moves one step in N shares A, one step in M shares B, and
            // the K run itself shares C — Hilbert transitions are always
            // one such step, Morton jumps refetch both inputs.
            const auto cells = kind == ScheduleKind::kHilbert
                ? hilbert_cells(mb, nb, n_outermost)
                : morton_cells(mb, nb, n_outermost);
            bool k_fwd = true;
            for (const auto& cell : cells) {
                for (index_t kk = 0; kk < kb; ++kk) {
                    const index_t k = k_fwd ? kk : kb - 1 - kk;
                    result.push_back({cell[0], cell[1], k});
                }
                k_fwd = !k_fwd;
            }
            break;
        }
    }
    return result;
}

std::vector<BlockCoord> build_layered_schedule(ScheduleKind kind, index_t mb,
                                               index_t nb, index_t kb,
                                               index_t k_layers,
                                               bool n_outermost)
{
    CAKE_CHECK(mb >= 1 && nb >= 1 && kb >= 1 && k_layers >= 1);
    const index_t layers = std::min(k_layers, kb);
    if (layers <= 1) return build_schedule(kind, mb, nb, kb, n_outermost);
    std::vector<BlockCoord> result;
    result.reserve(static_cast<std::size_t>(mb * nb * kb));
    for (index_t l = 0; l < layers; ++l) {
        // Balanced contiguous K slabs; extents differ by at most one.
        const index_t k0 = l * kb / layers;
        const index_t k1 = (l + 1) * kb / layers;
        std::vector<BlockCoord> layer =
            build_schedule(kind, mb, nb, k1 - k0, n_outermost);
        // Alternate layers replay the (m, n) walk in reverse so the seam
        // column keeps its partial surface local across the layer switch.
        if (l % 2 == 1) std::reverse(layer.begin(), layer.end());
        for (const BlockCoord& c : layer) {
            result.push_back({c.m, c.n, c.k + k0});
        }
    }
    return result;
}

SurfaceSharing shared_surfaces(const BlockCoord& prev, const BlockCoord& next)
{
    SurfaceSharing s;
    s.a = prev.m == next.m && prev.k == next.k;
    s.b = prev.k == next.k && prev.n == next.n;
    s.c = prev.m == next.m && prev.n == next.n;
    return s;
}

index_t count_shared_steps(const std::vector<BlockCoord>& order)
{
    index_t shared = 0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        const SurfaceSharing s = shared_surfaces(order[i - 1], order[i]);
        if (s.a || s.b || s.c) ++shared;
    }
    return shared;
}

ScheduleTraffic schedule_traffic(const std::vector<BlockCoord>& order)
{
    ScheduleTraffic t;
    if (order.empty()) return t;

    // Total K depth: a C surface is complete once all kb blocks of its
    // (m, n) column have executed.
    index_t kb = 0;
    for (const auto& c : order) kb = std::max(kb, c.k + 1);

    std::map<std::pair<index_t, index_t>, index_t> c_progress;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const auto& cur = order[i];
        const SurfaceSharing s =
            i == 0 ? SurfaceSharing{} : shared_surfaces(order[i - 1], cur);
        if (!s.a) ++t.a_fetches;
        if (!s.b) ++t.b_fetches;
        if (i > 0 && !s.c) {
            // We left the previous (m, n) column; if it was incomplete its
            // partial-result surface must spill to external memory and be
            // fetched again later (costing twice a completed result, §2.2).
            const auto& prev = order[i - 1];
            if (c_progress[{prev.m, prev.n}] < kb) ++t.c_spills;
        }
        ++c_progress[{cur.m, cur.n}];
    }
    return t;
}

}  // namespace cake
