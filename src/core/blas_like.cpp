#include "core/blas_like.hpp"

namespace cake {

template <typename T>
void cake_syrk(ThreadPool& pool, const T* a, index_t lda, T* c, index_t ldc,
               index_t n, index_t k, T alpha, T beta,
               const CakeOptions& base_options)
{
    // C = alpha * A * A^T + beta * C: B operand is A read transposed.
    CakeOptions options = base_options;
    options.op_a = Op::kNone;
    options.op_b = Op::kTranspose;
    CakeGemmT<T> gemm(pool, options);
    gemm.multiply_scaled(a, lda, a, lda, c, ldc, n, n, k, alpha, beta);
}

template <typename T>
void cake_syrk_t(ThreadPool& pool, const T* a, index_t lda, T* c,
                 index_t ldc, index_t n, index_t k, T alpha, T beta,
                 const CakeOptions& base_options)
{
    // C = alpha * A^T * A + beta * C: A operand is read transposed.
    CakeOptions options = base_options;
    options.op_a = Op::kTranspose;
    options.op_b = Op::kNone;
    CakeGemmT<T> gemm(pool, options);
    gemm.multiply_scaled(a, lda, a, lda, c, ldc, n, n, k, alpha, beta);
}

template <typename T>
void cake_gemv(ThreadPool& pool, const T* a, index_t lda, const T* x, T* y,
               index_t m, index_t k, T alpha, T beta)
{
    CakeGemmT<T> gemm(pool);
    gemm.multiply_scaled(a, lda, x, 1, y, 1, m, 1, k, alpha, beta);
}

template void cake_syrk<float>(ThreadPool&, const float*, index_t, float*,
                               index_t, index_t, index_t, float, float,
                               const CakeOptions&);
template void cake_syrk<double>(ThreadPool&, const double*, index_t, double*,
                                index_t, index_t, index_t, double, double,
                                const CakeOptions&);
template void cake_syrk_t<float>(ThreadPool&, const float*, index_t, float*,
                                 index_t, index_t, index_t, float, float,
                                 const CakeOptions&);
template void cake_syrk_t<double>(ThreadPool&, const double*, index_t,
                                  double*, index_t, index_t, index_t, double,
                                  double, const CakeOptions&);
template void cake_gemv<float>(ThreadPool&, const float*, index_t,
                               const float*, float*, index_t, index_t, float,
                               float);
template void cake_gemv<double>(ThreadPool&, const double*, index_t,
                                const double*, double*, index_t, index_t,
                                double, double);

}  // namespace cake
