#include "core/batched.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"

namespace cake {
namespace {

template <typename T>
BatchStrategy resolve_strategy(const std::vector<GemmBatchItem<T>>& items,
                               BatchStrategy requested, int pool_size)
{
    if (requested != BatchStrategy::kAuto) return requested;
    if (items.size() < 2 || pool_size < 2) return BatchStrategy::kSequential;
    double max_flops = 0;
    for (const auto& item : items) {
        max_flops = std::max(max_flops,
                             2.0 * static_cast<double>(item.m)
                                 * static_cast<double>(item.n)
                                 * static_cast<double>(item.k));
    }
    return max_flops < kBatchSmallProblemFlops
        ? BatchStrategy::kParallelProblems
        : BatchStrategy::kSequential;
}

}  // namespace

template <typename T>
void cake_gemm_batched(ThreadPool& pool,
                       const std::vector<GemmBatchItem<T>>& items,
                       const CakeOptions& options, BatchStrategy strategy)
{
    if (items.empty()) return;
    for (const auto& item : items) {
        CAKE_CHECK_MSG(item.m >= 0 && item.n >= 0 && item.k >= 0,
                       "negative batch item dimension");
    }

    strategy = resolve_strategy(items, strategy, pool.size());

    if (strategy == BatchStrategy::kSequential) {
        CakeGemmT<T> gemm(pool, options);
        for (const auto& item : items) {
            gemm.multiply(item.a, item.lda, item.b, item.ldb, item.c,
                          item.ldc, item.m, item.n, item.k);
        }
        return;
    }

    // kParallelProblems: workers pull whole problems from a shared index.
    // Each worker owns a single-threaded context (p = 1), whose internal
    // pool calls all take the inline width-1 fast path — safe to invoke
    // from inside a pool job.
    const int width = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(pool.size()),
                              items.size()));
    std::atomic<std::size_t> next{0};
    CakeOptions worker_options = options;
    worker_options.p = 1;
    pool.run(width, [&](int) {
        CakeGemmT<T> gemm(pool, worker_options);
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= items.size()) break;
            const auto& item = items[i];
            gemm.multiply(item.a, item.lda, item.b, item.ldb, item.c,
                          item.ldc, item.m, item.n, item.k);
        }
    });
}

template <typename T>
void cake_gemm_strided_batched(ThreadPool& pool, const T* a,
                               index_t stride_a, const T* b, index_t stride_b,
                               T* c, index_t stride_c, index_t m, index_t n,
                               index_t k, index_t count,
                               const CakeOptions& options,
                               BatchStrategy strategy)
{
    CAKE_CHECK(count >= 0);
    std::vector<GemmBatchItem<T>> items;
    items.reserve(static_cast<std::size_t>(count));
    const index_t lda = options.op_a == Op::kTranspose ? m : k;
    const index_t ldb = options.op_b == Op::kTranspose ? k : n;
    for (index_t i = 0; i < count; ++i) {
        items.push_back({a + i * stride_a, lda, b + i * stride_b, ldb,
                         c + i * stride_c, n, m, n, k});
    }
    cake_gemm_batched(pool, items, options, strategy);
}

template void cake_gemm_batched<float>(
    ThreadPool&, const std::vector<GemmBatchItem<float>>&,
    const CakeOptions&, BatchStrategy);
template void cake_gemm_batched<double>(
    ThreadPool&, const std::vector<GemmBatchItem<double>>&,
    const CakeOptions&, BatchStrategy);
template void cake_gemm_strided_batched<float>(
    ThreadPool&, const float*, index_t, const float*, index_t, float*,
    index_t, index_t, index_t, index_t, index_t, const CakeOptions&,
    BatchStrategy);
template void cake_gemm_strided_batched<double>(
    ThreadPool&, const double*, index_t, const double*, index_t, double*,
    index_t, index_t, index_t, index_t, index_t, const CakeOptions&,
    BatchStrategy);

}  // namespace cake
