#include "core/audit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "core/fperror.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace {

void add_issue(AuditReport& report, const char* code, std::ostringstream& os)
{
    report.issues.push_back({code, os.str()});
    os.str("");
}

/// Edge extent of the last grid block along one dimension.
index_t edge_extent(index_t total, index_t blk)
{
    const index_t rem = total % blk;
    return rem == 0 ? blk : rem;
}

}  // namespace

std::string AuditReport::codes() const
{
    std::string joined;
    for (const AuditIssue& issue : issues) {
        if (!joined.empty()) joined += ',';
        joined += issue.code;
    }
    return joined;
}

AuditReport audit_cb_plan(const MachineSpec& machine, int p, index_t mr,
                          index_t nr, const GemmShape& shape,
                          const TilingOptions& opts, ScheduleKind schedule)
{
    AuditReport report;
    std::ostringstream os;

    if (shape.m < 1 || shape.n < 1 || shape.k < 1) {
        os << "GEMM shape " << shape.m << " x " << shape.n << " x "
           << shape.k << " must be positive in every dimension";
        add_issue(report, "SHAPE", os);
        return report;
    }

    // --- Override combinations the solver would reject outright. ---------
    // Reported here with their own code (instead of surfacing as an opaque
    // SOLVER throw) so callers assembling TilingOptions — the tuner's
    // candidate generator, CLI flag parsing — get a diagnosis they can act
    // on before ever invoking the solver.
    if (opts.alpha && opts.nc) {
        os << "alpha=" << *opts.alpha << " and nc=" << *opts.nc
           << " overrides conflict: nc fixes the N extent that alpha "
           << "would derive";
        add_issue(report, "OVERRIDE", os);
    }
    if (opts.mc && (*opts.mc < mr || *opts.mc % mr != 0)) {
        os << "mc override " << *opts.mc
           << " is not a positive multiple of mr=" << mr;
        add_issue(report, "OVERRIDE", os);
    }
    if (opts.kc && *opts.kc < 1) {
        os << "kc override " << *opts.kc << " must be >= 1";
        add_issue(report, "OVERRIDE", os);
    }
    if (opts.nc && *opts.nc < 1) {
        os << "nc override " << *opts.nc << " must be >= 1";
        add_issue(report, "OVERRIDE", os);
    }
    if (opts.alpha && *opts.alpha < 1.0) {
        os << "alpha override " << *opts.alpha << " must be >= 1";
        add_issue(report, "OVERRIDE", os);
    }
    if (opts.elem_bytes != 1 && opts.elem_bytes != 2 && opts.elem_bytes != 4
        && opts.elem_bytes != 8) {
        os << "elem_bytes=" << opts.elem_bytes
           << " is not a supported element width (1/2/4/8): every "
           << "width-dependent inequality below would be meaningless";
        add_issue(report, "ELEM_WIDTH", os);
    }
    if (!report.issues.empty()) return report;

    // --- Solve (or adopt the forced plan). -------------------------------
    try {
        report.params = compute_cb_block(machine, p, mr, nr, opts);
        report.solver_ok = true;
    } catch (const Error& e) {
        os << "CB solver rejected machine '" << machine.name << "' with p="
           << p << ", mr=" << mr << ", nr=" << nr << ": " << e.what();
        add_issue(report, "SOLVER", os);
        return report;
    }
    const CbBlockParams& cb = report.params;
    const auto elem = static_cast<std::size_t>(cb.elem_bytes);

    // --- Element-width consistency: the solved plan must carry the width
    // it was asked for, or every inequality below reasons about the wrong
    // dtype.
    if (cb.elem_bytes != opts.elem_bytes) {
        os << "solved plan carries elem_bytes=" << cb.elem_bytes
           << " but the request asked for " << opts.elem_bytes
           << ": width-dependent checks would audit the wrong dtype";
        add_issue(report, "ELEM_WIDTH", os);
    }

    // --- int8 path: the i32 accumulator must provably hold the worst
    // case |acc| <= K * 127 * 127 (quantize_unsigned clamps A to
    // [0, 127], quantize_signed clamps B to [-127, 127]).
    if (cb.elem_bytes == 1 && shape.k > int8_safe_k()) {
        os << "int8 plan with K=" << shape.k
           << ": worst-case |i32 accumulator| " << int8_acc_range(shape.k)
           << " exceeds int32 range (safe K <= " << int8_safe_k() << ")";
        add_issue(report, "I8_ACC_RANGE", os);
    }

    // --- Geometry consistency. -------------------------------------------
    if (cb.mc < mr || cb.mc % mr != 0) {
        os << "mc=" << cb.mc << " is not a positive multiple of mr=" << mr;
        add_issue(report, "GEOMETRY", os);
    }
    if (cb.kc != cb.mc && !opts.kc) {
        // A deliberate kc override (the autotuner searches this axis) is
        // exempt: the residency and LRU inequalities below still apply to
        // the rectangular sub-block, which is what actually matters.
        os << "kc=" << cb.kc << " != mc=" << cb.mc
           << " (the A sub-block must be square, §4.1)";
        add_issue(report, "GEOMETRY", os);
    }
    if (cb.m_blk != static_cast<index_t>(p) * cb.mc) {
        os << "m_blk=" << cb.m_blk << " != p*mc=" << p * cb.mc;
        add_issue(report, "GEOMETRY", os);
    }
    if (cb.n_blk < nr || cb.n_blk % nr != 0) {
        os << "n_blk=" << cb.n_blk << " is not a positive multiple of nr="
           << nr;
        add_issue(report, "GEOMETRY", os);
    }
    if (cb.alpha < 1.0) {
        os << "alpha=" << cb.alpha << " < 1 (the N stretch factor cannot "
           << "shrink the block, §4.2)";
        add_issue(report, "GEOMETRY", os);
    }

    // --- §4.2: per-core A sub-block must reside in the private cache. ----
    const std::size_t a_sub_bytes =
        static_cast<std::size_t>(cb.mc) * static_cast<std::size_t>(cb.kc)
        * elem;
    const double l2_share = opts.l2_fraction
        * static_cast<double>(private_cache_bytes(machine));
    if (static_cast<double>(a_sub_bytes) > l2_share) {
        os << "mc*kc*sizeof(T) = " << cb.mc << "*" << cb.kc << "*" << elem
           << " = " << a_sub_bytes << " bytes exceeds the private-cache "
           << "share " << opts.l2_fraction << " * "
           << private_cache_bytes(machine) << " = " << l2_share
           << " bytes (§4.2 residency)";
        add_issue(report, "L2_RESIDENCY", os);
    }

    // --- §4.3: LRU working set C + 2(A+B) must fit the LLC share. --------
    // n_blk is alpha*p*mc rounded UP to an nr multiple, so allow exactly
    // that rounding's worth of slack on top of the share.
    const std::size_t ws = cb.lru_working_set_bytes();
    const double llc_share = opts.llc_fraction
        * static_cast<double>(machine.llc_bytes());
    const double rounding_slack = static_cast<double>(nr - 1)
        * static_cast<double>(cb.m_blk + 2 * cb.k_blk)
        * static_cast<double>(elem);
    if (static_cast<double>(ws) > llc_share + rounding_slack) {
        os << "LRU working set C + 2(A+B) = " << ws
           << " bytes exceeds the LLC share " << opts.llc_fraction << " * "
           << machine.llc_bytes() << " = " << llc_share
           << " bytes (+ nr-rounding slack " << rounding_slack
           << ") (§4.3 LRU rule)";
        add_issue(report, "LLC_LRU", os);
    }

    // --- Pack buffers cover every block the schedule will execute. -------
    report.grid_mb = ceil_div(shape.m, cb.m_blk);
    report.grid_nb = ceil_div(shape.n, cb.n_blk);
    report.grid_kb = ceil_div(shape.k, cb.k_blk);
    const index_t pa_cap = packed_a_size(cb.m_blk, cb.k_blk, mr);
    const index_t pb_cap = packed_b_size(cb.k_blk, cb.n_blk, nr);
    const index_t mi_edge = edge_extent(shape.m, cb.m_blk);
    const index_t ni_edge = edge_extent(shape.n, cb.n_blk);
    const index_t ki_edge = edge_extent(shape.k, cb.k_blk);
    for (const index_t mi : {cb.m_blk, mi_edge}) {
        for (const index_t ki : {cb.k_blk, ki_edge}) {
            const index_t need = round_up(mi, mr) * ki;
            if (need > pa_cap) {
                os << "packed-A demand round_up(" << mi << ", " << mr
                   << ") * " << ki << " = " << need
                   << " elements exceeds the panel capacity " << pa_cap;
                add_issue(report, "PACK_CAPACITY", os);
            }
        }
    }
    for (const index_t ni : {cb.n_blk, ni_edge}) {
        for (const index_t ki : {cb.k_blk, ki_edge}) {
            const index_t need = ki * round_up(ni, nr);
            if (need > pb_cap) {
                os << "packed-B demand " << ki << " * round_up(" << ni
                   << ", " << nr << ") = " << need
                   << " elements exceeds the panel capacity " << pb_cap;
                add_issue(report, "PACK_CAPACITY", os);
            }
        }
    }

    // --- Schedule covers the grid exactly once, sharing as promised. -----
    const std::vector<BlockCoord> order =
        build_schedule(schedule, report.grid_mb, report.grid_nb,
                       report.grid_kb, /*n_outermost=*/shape.n >= shape.m);
    const index_t grid_size =
        report.grid_mb * report.grid_nb * report.grid_kb;
    if (static_cast<index_t>(order.size()) != grid_size) {
        os << "schedule emits " << order.size() << " blocks for a "
           << report.grid_mb << " x " << report.grid_nb << " x "
           << report.grid_kb << " grid of " << grid_size;
        add_issue(report, "SCHEDULE", os);
    } else {
        std::vector<char> seen(static_cast<std::size_t>(grid_size), 0);
        bool dup_or_oob = false;
        for (const BlockCoord& bc : order) {
            if (bc.m < 0 || bc.m >= report.grid_mb || bc.n < 0
                || bc.n >= report.grid_nb || bc.k < 0
                || bc.k >= report.grid_kb) {
                dup_or_oob = true;
                break;
            }
            const std::size_t idx = static_cast<std::size_t>(
                (bc.m * report.grid_nb + bc.n) * report.grid_kb + bc.k);
            if (seen[idx] != 0) {
                dup_or_oob = true;
                break;
            }
            seen[idx] = 1;
        }
        if (dup_or_oob) {
            os << "schedule visits a block outside the grid or twice";
            add_issue(report, "SCHEDULE", os);
        } else if ((schedule == ScheduleKind::kKFirstSerpentine
                    || schedule == ScheduleKind::kHilbert)
                   && order.size() > 1
                   && count_shared_steps(order)
                       != static_cast<index_t>(order.size()) - 1) {
            // The serpentine (Algorithm 2) and the Hilbert traversal
            // (grid-adjacent cells, K carried across every boundary) both
            // promise a shared surface on every consecutive step.
            os << schedule_kind_name(schedule)
               << " schedule shares a surface on only "
               << count_shared_steps(order) << " of " << order.size() - 1
               << " consecutive steps (full sharing promised)";
            add_issue(report, "SCHEDULE", os);
        }
    }

    // --- Eq. 2: alpha must cover the IO/compute balance when DRAM can. ---
    const double r =
        bandwidth_ratio(machine, p, mr, nr, cb.mc, cb.kc, cb.elem_bytes);
    if (r > 1.0) {
        const double alpha_target = std::max(1.0, 1.0 / (r - 1.0));
        // The solver may legitimately stop at the LLC-limited cap; only
        // flag plans whose alpha is below target while the LLC still has
        // room for a larger block.
        const bool llc_has_room = static_cast<double>(ws) + rounding_slack
            < 0.95 * llc_share;
        if (cb.alpha + 1e-9 < alpha_target && llc_has_room) {
            os << "alpha=" << cb.alpha << " < " << alpha_target
               << " required for IO time <= compute time at bandwidth "
               << "ratio R=" << r << " (Eq. 2), and the LLC share still "
               << "has room to stretch the block";
            add_issue(report, "BANDWIDTH", os);
        }
    }

    // --- Operands must fit main memory. ----------------------------------
    const double dm = static_cast<double>(shape.m);
    const double dn = static_cast<double>(shape.n);
    const double dk = static_cast<double>(shape.k);
    const double operand_bytes =
        (dm * dk + dk * dn + dm * dn) * static_cast<double>(elem);
    const double dram_bytes = machine.dram_gib * 1024.0 * 1024.0 * 1024.0;
    if (operand_bytes > dram_bytes) {
        os << "operands need " << operand_bytes / 1e9
           << " GB but the machine has only " << machine.dram_gib
           << " GiB of main memory";
        add_issue(report, "DRAM_CAPACITY", os);
    }

    return report;
}

}  // namespace cake
