// Constant-bandwidth (CB) block shaping and sizing — the analytical heart
// of the paper (§3, §4.2, §4.3).
//
// A CB block is a (p*mc) x kc x (alpha*p*mc) sub-volume of the MM
// computation space:
//   * mc = kc: square A sub-block reused in each core's L2 (§4.1/§4.2),
//   * p: number of cores, stacking p A sub-blocks in the M dimension,
//   * alpha >= 1: stretches the N dimension so the block's compute time
//     covers its IO time under the available DRAM bandwidth (Eq. 2 / Eq. 4),
//   * the whole block is sized so its three IO surfaces fit the last-level
//     cache under LRU with headroom: C + 2(A+B) <= S (§4.3).
#pragma once

#include <optional>

#include "common/types.hpp"
#include "machine/machine.hpp"

namespace cake {

/// Resolved CB-block geometry for a machine / core count / kernel shape.
struct CbBlockParams {
    int p = 1;          ///< cores used
    index_t mr = 0;     ///< register-tile rows of the micro-kernel
    index_t nr = 0;     ///< register-tile cols of the micro-kernel
    index_t mc = 0;     ///< per-core L2 sub-block rows (mc == kc)
    index_t kc = 0;     ///< reduction depth of the block
    double alpha = 1.0; ///< N-dimension stretch factor (>= 1)
    index_t elem_bytes = 4;  ///< matrix element size (4 = f32, 8 = f64)

    index_t m_blk = 0;  ///< CB block M extent  = p * mc
    index_t k_blk = 0;  ///< CB block K extent  = kc
    index_t n_blk = 0;  ///< CB block N extent  = round_up(alpha*p*mc, nr)

    /// Bytes of LLC occupied by the three IO surfaces (A + B + C).
    [[nodiscard]] std::size_t surface_bytes() const;

    /// LRU working-set requirement of §4.3: C + 2(A + B), in bytes.
    [[nodiscard]] std::size_t lru_working_set_bytes() const;

    /// Arithmetic intensity of the block in FLOPs per DRAM byte
    /// (partial C stays local, so DRAM traffic is the A and B surfaces).
    [[nodiscard]] double arithmetic_intensity() const;

    friend bool operator==(const CbBlockParams&,
                           const CbBlockParams&) = default;
};

/// Inputs to the solver that do not come from the MachineSpec.
struct TilingOptions {
    std::optional<index_t> mc;     ///< force mc; multiple of mr
    /// Force kc independently of mc (default: kc = mc, the square §4.1
    /// sub-block). The empirical autotuner (src/tune) searches this axis;
    /// audit_cb_plan treats a non-square override as deliberate.
    std::optional<index_t> kc;
    /// Force the CB-block N extent directly (rounded up to nr); alpha is
    /// then derived as nc / (p * mc). Mutually exclusive with `alpha` —
    /// the solver rejects the combination.
    std::optional<index_t> nc;
    std::optional<double> alpha;   ///< force alpha (>= 1)
    /// Fraction of each cache level usable for matrix operands; leaves
    /// headroom for stacks, code and the LRU rule at L2.
    double l2_fraction = 0.5;
    double llc_fraction = 1.0;     ///< §4.3 rule already adds the headroom
    index_t elem_bytes = 4;        ///< element size (4 = f32, 8 = f64)
};

/// Solve for CB block shape and size on `machine` with `p` cores and a
/// micro-kernel of shape mr x nr (paper §3 + §4.2 + §4.3):
///   1. mc = kc from the per-core L2 (square sub-block, l2_fraction),
///   2. alpha from DRAM bandwidth: smallest alpha with IO time <= compute
///      time, i.e. alpha >= 1/(R-1) where R is the bandwidth-availability
///      ratio of Eq. 2 (alpha = 1 when bandwidth is ample),
///   3. shrink mc / clamp alpha until C + 2(A+B) <= LLC (§4.3).
/// Throws cake::Error if even the minimal block cannot fit.
CbBlockParams compute_cb_block(const MachineSpec& machine, int p, index_t mr,
                               index_t nr, const TilingOptions& opts = {});

/// The bandwidth-availability ratio R = BW_dram / BW_floor where BW_floor
/// is the block's DRAM bandwidth demand as alpha -> infinity (tiles/cycle
/// analysis of §3.2 mapped to bytes/s). R <= 1 means DRAM can never keep
/// up at alpha = 1 geometry and alpha must grow to its LLC-limited maximum.
double bandwidth_ratio(const MachineSpec& machine, int p, index_t mr,
                       index_t nr, index_t mc, index_t kc,
                       index_t elem_bytes = 4);

/// DRAM bandwidth (GB/s) a CB block with these parameters demands so IO
/// time equals compute time — the runtime analogue of Eq. 4:
/// BW = (alpha+1)/alpha * mr*nr expressed in bytes per second.
double required_dram_bw_gbs(const MachineSpec& machine,
                            const CbBlockParams& params);

/// Size in bytes of the cache level the solver treats as each core's
/// private memory — the deepest per-core level below the LLC, where the
/// square mc x kc A sub-block must reside (§4.2). Exposed so the invariant
/// auditor (src/core/audit) can re-derive the residency inequality.
std::size_t private_cache_bytes(const MachineSpec& machine);

}  // namespace cake
