#include "core/quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cake {

QuantParams quantize_unsigned(const float* src, index_t n, std::uint8_t* dst)
{
    CAKE_CHECK(n >= 0);
    float lo = 0.0f;
    float hi = 0.0f;
    for (index_t i = 0; i < n; ++i) {
        lo = std::min(lo, src[i]);
        hi = std::max(hi, src[i]);
    }
    QuantParams params;
    const float range = hi - lo;
    params.scale = range > 0 ? range / 127.0f : 1.0f;
    params.zero_point =
        static_cast<std::int32_t>(std::lround(-lo / params.scale));
    params.zero_point = std::clamp(params.zero_point, 0, 127);
    for (index_t i = 0; i < n; ++i) {
        const long q =
            std::lround(src[i] / params.scale) + params.zero_point;
        dst[i] = static_cast<std::uint8_t>(std::clamp(q, 0L, 127L));
    }
    return params;
}

QuantParams quantize_signed(const float* src, index_t n, std::int8_t* dst)
{
    CAKE_CHECK(n >= 0);
    float amax = 0.0f;
    for (index_t i = 0; i < n; ++i) amax = std::max(amax, std::abs(src[i]));
    QuantParams params;
    params.scale = amax > 0 ? amax / 127.0f : 1.0f;
    params.zero_point = 0;
    for (index_t i = 0; i < n; ++i) {
        const long q = std::lround(src[i] / params.scale);
        dst[i] = static_cast<std::int8_t>(std::clamp(q, -127L, 127L));
    }
    return params;
}

void int8_column_sums(const std::int8_t* b, index_t ldb, index_t k,
                      index_t n, std::int64_t* colsums)
{
    std::fill(colsums, colsums + n, std::int64_t{0});
    for (index_t p = 0; p < k; ++p) {
        const std::int8_t* row = b + p * ldb;
        for (index_t j = 0; j < n; ++j) colsums[j] += row[j];
    }
}

void dequantize_gemm(const std::int32_t* acc, index_t ldacc, index_t m,
                     index_t n, const QuantParams& a_params,
                     const QuantParams& b_params,
                     const std::int64_t* b_colsums, float* out,
                     index_t ldout)
{
    const double s = static_cast<double>(a_params.scale) * b_params.scale;
    const auto za = static_cast<std::int64_t>(a_params.zero_point);
    for (index_t i = 0; i < m; ++i) {
        const std::int32_t* arow = acc + i * ldacc;
        float* orow = out + i * ldout;
        for (index_t j = 0; j < n; ++j) {
            const std::int64_t corrected =
                static_cast<std::int64_t>(arow[j]) - za * b_colsums[j];
            orow[j] = static_cast<float>(s * static_cast<double>(corrected));
        }
    }
}

}  // namespace cake
