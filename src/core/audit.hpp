// Static invariant auditor for CAKE schedule/tiling plans.
//
// Given a machine description, a core count, a micro-kernel shape and a
// GEMM shape, audit_cb_plan() re-derives every inequality the paper's CB
// theory promises (§4.2–§4.3) and every structural invariant the runtime
// silently relies on, and reports each violation with a precise, coded
// diagnostic:
//
//   SHAPE           GEMM dimensions must be positive
//   OVERRIDE        a TilingOptions override combination is invalid on its
//                   face (alpha+nc conflict, non-mr-multiple mc, kc/nc < 1,
//                   alpha < 1) — reported before the solver ever runs
//   ELEM_WIDTH      the element width is unsupported (not 1/2/4/8), or the
//                   solved plan carries a different width than requested —
//                   either way every §4.2/§4.3/Eq.-2 inequality would
//                   reason about the wrong dtype
//   SOLVER          the CB solver itself rejected the configuration
//   GEOMETRY        mc/kc/m_blk/n_blk/alpha internal consistency
//   L2_RESIDENCY    mc * kc * sizeof(T) <= private-cache share (§4.2)
//   LLC_LRU         C + 2(A + B) <= LLC share (§4.3 LRU rule)
//   PACK_CAPACITY   packed-panel buffer sizes cover every scheduled block
//   SCHEDULE        block order covers the grid exactly once; the
//                   serpentine order shares a surface at every step
//   BANDWIDTH       alpha satisfies the Eq. 2 IO/compute balance when the
//                   bandwidth-availability ratio allows one
//   DRAM_CAPACITY   the three operands fit main memory
//   I8_ACC_RANGE    int8 plans only: the worst-case i32 accumulator
//                   K * 127 * 127 provably fits int32 (core/fperror.hpp)
//
// The auditor is pure analysis — it never allocates panel memory or runs a
// kernel — so it can vet a preset x shape sweep in milliseconds in CI
// (tools/cake_audit) before any multiply executes.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/schedule.hpp"
#include "core/tiling.hpp"
#include "machine/machine.hpp"

namespace cake {

/// One violated invariant: a stable machine-greppable code plus a human
/// diagnostic carrying both sides of the violated inequality.
struct AuditIssue {
    std::string code;     ///< e.g. "L2_RESIDENCY"
    std::string message;  ///< precise diagnostic with numbers
};

/// Outcome of auditing one (machine, p, kernel, shape) plan.
struct AuditReport {
    CbBlockParams params;          ///< solved CB geometry (if solvable)
    index_t grid_mb = 0;           ///< CB-block grid extents for the shape
    index_t grid_nb = 0;
    index_t grid_kb = 0;
    bool solver_ok = false;        ///< compute_cb_block did not throw
    std::vector<AuditIssue> issues;

    [[nodiscard]] bool ok() const { return issues.empty(); }

    /// All issue codes joined with ','; empty when ok. Handy for tests.
    [[nodiscard]] std::string codes() const;
};

/// Audit the full schedule/tiling plan CAKE would execute for `shape` on
/// `machine` with `p` cores and an mr x nr micro-kernel. `opts` follows
/// compute_cb_block — forcing mc/kc/nc/alpha audits the forced (possibly
/// deliberately corrupted) plan instead of the solver's own.
AuditReport audit_cb_plan(const MachineSpec& machine, int p, index_t mr,
                          index_t nr, const GemmShape& shape,
                          const TilingOptions& opts = {},
                          ScheduleKind schedule =
                              ScheduleKind::kKFirstSerpentine);

}  // namespace cake
