#include "core/fperror.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace cake {

namespace {

// Unit roundoffs: u = 2^-(p) for a p-bit significand (including the
// implicit bit) under round-to-nearest.
constexpr double kUf64 = 0x1p-53;
constexpr double kUf32 = 0x1p-24;
constexpr double kUf16 = 0x1p-11;
constexpr double kUbf16 = 0x1p-8;

constexpr DtypeDesc kF32{"f32", 4, kUf32, kUf32, false};
constexpr DtypeDesc kF64{"f64", 8, kUf64, kUf64, false};
constexpr DtypeDesc kF16{"f16", 2, kUf16, kUf32, false};
constexpr DtypeDesc kBf16{"bf16", 2, kUbf16, kUf32, false};
constexpr DtypeDesc kI8{"i8", 1, 0.0, 0.0, true};

constexpr const DtypeDesc* kAll[] = {&kF32, &kF64, &kF16, &kBf16, &kI8};

// quantize_unsigned clamps A to [0, 127] and quantize_signed clamps B to
// [-127, 127], so one product never exceeds 127 * 127 = 16129.
constexpr index_t kInt8ProductMax = 127 * 127;

}  // namespace

const DtypeDesc& dtype_f32() { return kF32; }
const DtypeDesc& dtype_f64() { return kF64; }
const DtypeDesc& dtype_f16() { return kF16; }
const DtypeDesc& dtype_bf16() { return kBf16; }
const DtypeDesc& dtype_i8() { return kI8; }

const DtypeDesc* find_dtype(std::string_view name)
{
    for (const DtypeDesc* d : kAll) {
        if (name == d->name) return d;
    }
    return nullptr;
}

const DtypeDesc* dtype_for_elem_bytes(index_t elem_bytes)
{
    switch (elem_bytes) {
        case 1: return &kI8;
        case 2: return &kF16;
        case 4: return &kF32;
        case 8: return &kF64;
        default: return nullptr;
    }
}

double gamma_n(index_t n, double u)
{
    if (n <= 0 || u <= 0.0) return 0.0;
    const double nu = static_cast<double>(n) * u;
    if (nu >= 1.0) return HUGE_VAL;
    return nu / (1.0 - nu);
}

index_t max_schedule_segments(const std::vector<BlockCoord>& order)
{
    // A "column" is one (m, n) coordinate; a segment is a maximal run of
    // consecutive steps on the same column. Partial C stays in cache only
    // within a run — every run boundary is a spill + later join-add.
    if (order.empty()) return 1;
    index_t worst = 1;
    // Count runs per column in one pass: a run starts at step i when the
    // previous step touched a different column.
    std::vector<std::pair<std::pair<index_t, index_t>, index_t>> runs;
    for (std::size_t i = 0; i < order.size(); ++i) {
        const std::pair<index_t, index_t> col{order[i].m, order[i].n};
        if (i == 0 || col != std::pair<index_t, index_t>{order[i - 1].m,
                                                         order[i - 1].n}) {
            bool found = false;
            for (auto& r : runs) {
                if (r.first == col) {
                    ++r.second;
                    found = true;
                    break;
                }
            }
            if (!found) runs.emplace_back(col, 1);
        }
    }
    for (const auto& r : runs) worst = std::max(worst, r.second);
    return worst;
}

PlanErrorBound bound_for_chain(const AccumChain& chain, const DtypeDesc& dtype)
{
    PlanErrorBound b;
    b.chain = chain;
    if (dtype.is_integer) {
        // Exact accumulation: no rounding term; the hazard is range.
        b.acc_range = int8_acc_range(chain.fma_depth);
        b.i32_safe = chain.fma_depth <= int8_safe_k();
        return b;
    }
    b.gamma = gamma_n(chain.rounding_ops(), dtype.acc_u);
    // Narrow-storage formats convert both operands at pack time: each
    // product a_i * b_i is perturbed by (1 + d_a)(1 + d_b) with
    // |d| <= storage_u before any accumulator rounding applies.
    const double conv_u =
        dtype.storage_u > dtype.acc_u ? dtype.storage_u : 0.0;
    b.rel_bound = (1.0 + conv_u) * (1.0 + conv_u) * (1.0 + b.gamma) - 1.0;
    return b;
}

PlanErrorBound plan_error_bound(const GemmShape& shape,
                                const CbBlockParams& params,
                                ScheduleKind schedule, const DtypeDesc& dtype,
                                bool beta_nonzero)
{
    // Grid extents, same derivation as the executors (ceil-divide each
    // GEMM extent by its block extent, floor 1 so degenerate inputs still
    // yield a well-formed one-block schedule).
    const auto grid = [](index_t extent, index_t blk) {
        if (blk < 1) return index_t{1};
        const index_t b = (extent + blk - 1) / blk;
        return b < 1 ? index_t{1} : b;
    };
    const auto order = build_schedule(
        schedule, grid(shape.m, params.m_blk), grid(shape.n, params.n_blk),
        grid(shape.k, params.k_blk), /*n_outermost=*/shape.n >= shape.m);
    AccumChain chain;
    chain.fma_depth = shape.k;
    chain.segments = max_schedule_segments(order);
    chain.extra_adds = (chain.segments - 1) + (beta_nonzero ? 1 : 0);
    return bound_for_chain(chain, dtype);
}

PlanErrorBound goto_error_bound(const GemmShape& shape, index_t kc,
                                const DtypeDesc& dtype, bool accumulate)
{
    AccumChain chain;
    chain.fma_depth = shape.k;
    chain.segments = kc > 0 ? (shape.k + kc - 1) / kc : 1;
    if (chain.segments < 1) chain.segments = 1;
    chain.extra_adds = (chain.segments - 1) + (accumulate ? 1 : 0);
    return bound_for_chain(chain, dtype);
}

index_t int8_safe_k()
{
    return std::numeric_limits<std::int32_t>::max() / kInt8ProductMax;
}

double int8_acc_range(index_t k)
{
    if (k <= 0) return 0.0;
    return static_cast<double>(k) * static_cast<double>(kInt8ProductMax);
}

double int8_requant_abs_bound(index_t k, const QuantParams& a_params,
                              const QuantParams& b_params)
{
    if (k <= 0) return 0.0;
    const double sa = std::abs(static_cast<double>(a_params.scale));
    const double sb = std::abs(static_cast<double>(b_params.scale));
    const double kd = static_cast<double>(k);
    // Each real a is reproduced as sa * (aq - za) within sa/2, each real b
    // as sb * bq within sb/2 (round-to-nearest, unsaturated range). Per
    // product: |da * b~| + |db * a~| + |da * db| with |a~| <= 127 sa,
    // |b~| <= 127 sb. Summed over k, plus the final f32 rounding of the
    // dequantized value (|result| <= k * sa * sb * 127^2).
    const double per_product = sa * sb * (127.0 / 2 + 127.0 / 2 + 0.25);
    const double final_round =
        kd * sa * sb * static_cast<double>(kInt8ProductMax) * 0x1p-24;
    return kd * per_product + final_round;
}

}  // namespace cake
