// Static floating-point / integer error model of a CAKE plan.
//
// The paper's central claim — partial C results accumulate in cache across
// the K dimension — means the numerical behaviour of a result is fully
// determined by the *plan*: how deep each FMA run is, how often a partial
// column spills and rejoins (schedule turnovers), what the element width
// is, and whether beta folds old C in. This header derives Higham-style
// worst-case forward error bounds from exactly that structure:
//
//   * floats: a dot product of n sequential rounding operations in unit
//     roundoff u satisfies |chat - c| <= gamma_n * sum_i |a_i||b_i| with
//     gamma_n = n*u / (1 - n*u) (Higham, ASNA 2e, §3.1). Per C element the
//     plan contributes k FMAs plus one join-add per partial-C spill (the
//     flush read-modify-write that reunites a spilled partial with its
//     column) plus one for beta != 0; pack-time conversions from a wider
//     source add a 2*u_storage perturbation on each product.
//   * int8 (u8 x s8 -> s32): accumulation is exact, so the analysis bounds
//     the i32 accumulator range (quantize_unsigned guarantees A <= 127, so
//     |acc| <= k * 127 * 127) and the requantization error a dequantized
//     result inherits from the QuantParams scales.
//
// This lives in src/core — NOT src/analysis — because release builds need
// it: the autotuner (src/tune) refuses candidates whose bound exceeds the
// analytic default's, and tuned cache entries carry their bound. The
// IR-walking verifier that proves an extracted schedule actually realises
// these bounds is analysis-only (src/analysis/numerics.hpp).
#pragma once

#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/quant.hpp"
#include "core/schedule.hpp"
#include "core/tiling.hpp"

namespace cake {

/// Everything the error model needs to know about an element type. The
/// storage and accumulator roundoffs differ for the narrow float formats
/// (f16/bf16 store narrow but accumulate in f32 — ROADMAP item 2); for
/// the integer path both are 0 (accumulation is exact until it overflows,
/// which the range bound below guards).
struct DtypeDesc {
    const char* name = "f32";  ///< "f32" | "f64" | "f16" | "bf16" | "i8"
    index_t elem_bytes = 4;    ///< storage width of one element
    double storage_u = 0;      ///< unit roundoff of the stored format
    double acc_u = 0;          ///< unit roundoff of the accumulator
    bool is_integer = false;   ///< int8 path: exact accumulation, range-bound
};

const DtypeDesc& dtype_f32();
const DtypeDesc& dtype_f64();
const DtypeDesc& dtype_f16();   ///< IEEE binary16 storage, f32 accumulate
const DtypeDesc& dtype_bf16();  ///< bfloat16 storage, f32 accumulate
const DtypeDesc& dtype_i8();    ///< u8 x s8 -> s32, requantized

/// Descriptor by name; nullptr for an unknown dtype.
const DtypeDesc* find_dtype(std::string_view name);

/// Canonical descriptor for an element width (1 -> i8, 2 -> f16, 4 -> f32,
/// 8 -> f64); nullptr for unsupported widths. Two-byte storage is
/// ambiguous (f16 vs bf16) — callers that mean bf16 must say so by name.
const DtypeDesc* dtype_for_elem_bytes(index_t elem_bytes);

/// gamma_n = n*u / (1 - n*u); HUGE_VAL once n*u >= 1 (the bound is
/// vacuous — no digits survive).
double gamma_n(index_t n, double u);

/// The worst-case per-C-element accumulation structure of a plan.
struct AccumChain {
    index_t fma_depth = 0;   ///< sequential FMAs (= K: one per input pair)
    index_t segments = 1;    ///< in-cache accumulation runs (1 = no spill)
    index_t extra_adds = 0;  ///< spill join-adds (segments - 1) + beta add

    /// Sequential rounding operations the bound charges.
    [[nodiscard]] index_t rounding_ops() const
    {
        return fma_depth + extra_adds;
    }
};

/// The derived bound. For floats, `rel_bound` promises
///   |Chat[i][j] - C[i][j]| <= rel_bound * sum_k |A[i][k]| |B[k][j]|
/// for every element, every schedule interleaving. For the integer path,
/// `acc_range` bounds |i32 accumulator| and `i32_safe` says it fits.
struct PlanErrorBound {
    AccumChain chain;
    double gamma = 0;      ///< gamma_{rounding_ops}(acc_u)
    double rel_bound = 0;  ///< gamma plus pack-conversion perturbation
    double acc_range = 0;  ///< int path: worst-case |accumulator|
    bool i32_safe = true;  ///< acc_range fits an int32 accumulator
};

/// Worst per-(m, n) column count of maximal consecutive runs in a block
/// order: 1 for any K-first schedule, ceil(K / kc) when K is innermost-
/// hostile (each revisit spills the partial column and rejoins later).
index_t max_schedule_segments(const std::vector<BlockCoord>& order);

/// Bound for an explicit chain — the shared kernel of the plan-level and
/// IR-level (src/analysis/numerics) derivations.
PlanErrorBound bound_for_chain(const AccumChain& chain,
                               const DtypeDesc& dtype);

/// Bound of a CAKE plan: chain depth K, segments from the block order the
/// schedule kind produces for this shape/geometry, +1 join when beta != 0.
PlanErrorBound plan_error_bound(const GemmShape& shape,
                                const CbBlockParams& params,
                                ScheduleKind schedule, const DtypeDesc& dtype,
                                bool beta_nonzero = false);

/// Bound of a GOTO plan: C streams to user memory every (jc, pc) pass, so
/// segments = ceil(K / kc) regardless of schedule.
PlanErrorBound goto_error_bound(const GemmShape& shape, index_t kc,
                                const DtypeDesc& dtype,
                                bool accumulate = false);

/// Largest K for which the u8[0,127] x s8[-127,127] accumulator provably
/// fits an int32: k * 127 * 127 <= INT32_MAX.
index_t int8_safe_k();

/// Worst-case |i32 accumulator| after a depth-k u8[0,127] x s8[-127,127]
/// dot product.
double int8_acc_range(index_t k);

/// Absolute error bound of the dequantized result vs the real-valued
/// product: per-element quantization noise (scale/2 each side) propagated
/// through a depth-k dot product, plus the final f32 rounding of the
/// dequantized value.
double int8_requant_abs_bound(index_t k, const QuantParams& a_params,
                              const QuantParams& b_params);

}  // namespace cake
