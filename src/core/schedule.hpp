// Block scheduling: the K-first serpentine traversal of the CB-block grid
// (paper §2.2 and Algorithm 2). The schedule is materialised as data so the
// runtime, the memory simulator and the architecture simulator all execute
// exactly the same block order.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cake {

/// Grid coordinates of one CB block inside the partitioned MM space.
struct BlockCoord {
    index_t m = 0;
    index_t n = 0;
    index_t k = 0;

    friend bool operator==(const BlockCoord&, const BlockCoord&) = default;
};

/// Which surfaces two consecutively scheduled blocks share.
struct SurfaceSharing {
    bool a = false;  ///< same (m, k): the A input surface stays local
    bool b = false;  ///< same (k, n): the B input surface stays local
    bool c = false;  ///< same (m, n): the partial-result surface stays local
};

enum class ScheduleKind {
    /// Paper Algorithm 2: K innermost (partial-result reuse), M middle,
    /// N outermost, with traversal direction flipped after each completed
    /// dimension so every consecutive pair of blocks shares a surface.
    kKFirstSerpentine,
    /// K innermost but always restarting each dimension at index 0 — the
    /// strawman the paper rejects (loses the A/B reuse at every turn).
    kKFirstNoFlip,
    /// N innermost: partial results for a C block leave local memory
    /// between reuses (GOTO-like traffic pattern); ablation baseline.
    kNInnermost,
};

const char* schedule_kind_name(ScheduleKind kind);

/// Build the block execution order for an Mb x Nb x Kb grid of CB blocks.
/// `m_outer_before_n`: per §2.2, when M > N the M dimension becomes the
/// outermost loop so the larger B surface is reused before A.
std::vector<BlockCoord> build_schedule(ScheduleKind kind, index_t mb,
                                       index_t nb, index_t kb,
                                       bool n_outermost = true);

/// Surfaces shared between consecutive schedule entries `prev` and `next`.
SurfaceSharing shared_surfaces(const BlockCoord& prev, const BlockCoord& next);

/// Count of consecutive pairs in `order` sharing at least one surface.
/// For the serpentine schedule this equals order.size() - 1 (every step
/// reuses something); the no-flip variant falls short by the number of
/// dimension turns.
index_t count_shared_steps(const std::vector<BlockCoord>& order);

/// Total IO surface traffic of a schedule in *block surfaces* fetched from
/// (A, B) or written+refetched to (partial C) external memory, assuming one
/// surface of each kind fits in local memory at a time. Used by tests and
/// the ablation bench to rank schedules exactly as §2.2 argues.
struct ScheduleTraffic {
    index_t a_fetches = 0;
    index_t b_fetches = 0;
    index_t c_spills = 0;  ///< partial-C writeback+refetch round trips
};
ScheduleTraffic schedule_traffic(const std::vector<BlockCoord>& order);

}  // namespace cake
