// Block scheduling: the K-first serpentine traversal of the CB-block grid
// (paper §2.2 and Algorithm 2). The schedule is materialised as data so the
// runtime, the memory simulator and the architecture simulator all execute
// exactly the same block order.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cake {

/// Grid coordinates of one CB block inside the partitioned MM space.
struct BlockCoord {
    index_t m = 0;
    index_t n = 0;
    index_t k = 0;

    friend bool operator==(const BlockCoord&, const BlockCoord&) = default;
};

/// Which surfaces two consecutively scheduled blocks share.
struct SurfaceSharing {
    bool a = false;  ///< same (m, k): the A input surface stays local
    bool b = false;  ///< same (k, n): the B input surface stays local
    bool c = false;  ///< same (m, n): the partial-result surface stays local
};

enum class ScheduleKind {
    /// Paper Algorithm 2: K innermost (partial-result reuse), M middle,
    /// N outermost, with traversal direction flipped after each completed
    /// dimension so every consecutive pair of blocks shares a surface.
    kKFirstSerpentine,
    /// K innermost but always restarting each dimension at index 0 — the
    /// strawman the paper rejects (loses the A/B reuse at every turn).
    kKFirstNoFlip,
    /// N innermost: partial results for a C block leave local memory
    /// between reuses (GOTO-like traffic pattern); ablation baseline.
    kNInnermost,
    /// Generalised Hilbert curve over the (M, N) block plane, K innermost
    /// with its direction flipped per cell. Consecutive cells are always
    /// grid neighbours (for arbitrary rectangle extents), so every
    /// transition shares a surface — the serpentine's §2.2 property with
    /// a bounded 2D footprint at every curve prefix (SFC traversal of
    /// Georganas et al., see PAPERS.md).
    kHilbert,
    /// Morton (Z-order) curve over the (M, N) block plane, K innermost.
    /// Cache-oblivious recursive blocking, but the curve jumps at
    /// power-of-two boundaries: those transitions share nothing and
    /// refetch both A and B. Kept as the SFC ablation baseline.
    kMorton,
};

const char* schedule_kind_name(ScheduleKind kind);

/// Every schedule kind, in declaration order. THE single registry: the
/// tuner's stage-2 search, the tuning-cache name parser, the cake_verify
/// sweeps and the simulator sweep all iterate this list, so a newly added
/// kind cannot be silently skipped by any consumer (tests pin each one).
const std::vector<ScheduleKind>& all_schedule_kinds();

/// Inverse of schedule_kind_name() over all_schedule_kinds(); nullopt for
/// an unknown name. Name round-trip is covered by tests for every kind.
std::optional<ScheduleKind> parse_schedule_kind(std::string_view name);

/// Build the block execution order for an Mb x Nb x Kb grid of CB blocks.
/// `m_outer_before_n`: per §2.2, when M > N the M dimension becomes the
/// outermost loop so the larger B surface is reused before A.
std::vector<BlockCoord> build_schedule(ScheduleKind kind, index_t mb,
                                       index_t nb, index_t kb,
                                       bool n_outermost = true);

/// 2.5D-style layered variant for the simulator's multi-core sweep: the K
/// grid is split into `k_layers` contiguous layers and the (M, N)
/// traversal of `kind` runs once per layer, reversed on alternate layers
/// so the seam column keeps its partial surface local across the switch.
/// k_layers <= 1 is exactly build_schedule(); more layers shrink the K
/// working set per pass (the replicated-C tradeoff of 2.5D algorithms) at
/// the price of one partial-C spill per column per extra layer.
std::vector<BlockCoord> build_layered_schedule(ScheduleKind kind, index_t mb,
                                               index_t nb, index_t kb,
                                               index_t k_layers,
                                               bool n_outermost = true);

/// Surfaces shared between consecutive schedule entries `prev` and `next`.
SurfaceSharing shared_surfaces(const BlockCoord& prev, const BlockCoord& next);

/// Count of consecutive pairs in `order` sharing at least one surface.
/// For the serpentine schedule this equals order.size() - 1 (every step
/// reuses something); the no-flip variant falls short by the number of
/// dimension turns.
index_t count_shared_steps(const std::vector<BlockCoord>& order);

/// Total IO surface traffic of a schedule in *block surfaces* fetched from
/// (A, B) or written+refetched to (partial C) external memory, assuming one
/// surface of each kind fits in local memory at a time. Used by tests and
/// the ablation bench to rank schedules exactly as §2.2 argues.
struct ScheduleTraffic {
    index_t a_fetches = 0;
    index_t b_fetches = 0;
    index_t c_spills = 0;  ///< partial-C writeback+refetch round trips
};
ScheduleTraffic schedule_traffic(const std::vector<BlockCoord>& order);

}  // namespace cake
