// Quantization helpers for the u8 x s8 -> s32 GEMM path: affine (asymmetric)
// quantization for activations (A side, unsigned) and symmetric
// quantization for weights (B side, signed, zero-point 0) — the standard
// DNN inference recipe, which keeps the zero-point correction to a single
// per-column term.
//
//   real = scale * (q - zero_point)
//   C_real[i][j] ~= sa*sb * ( C_q[i][j] - za * colsum_b[j] )
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "common/types.hpp"

namespace cake {

/// Affine quantization parameters.
struct QuantParams {
    float scale = 1.0f;
    std::int32_t zero_point = 0;
};

/// Quantize `n` floats into u8 in [0, 127] (the range that keeps the
/// vpmaddubsw kernels exact; see kernel_int8.hpp). Returns the params
/// mapping q back to real values.
QuantParams quantize_unsigned(const float* src, index_t n, std::uint8_t* dst);

/// Symmetric signed quantization into [-127, 127] with zero_point = 0.
QuantParams quantize_signed(const float* src, index_t n, std::int8_t* dst);

/// Column sums of a k x n s8 matrix (needed for the za correction).
void int8_column_sums(const std::int8_t* b, index_t ldb, index_t k,
                      index_t n, std::int64_t* colsums);

/// Dequantize a raw s32 GEMM result into floats with the zero-point
/// correction applied: out[i][j] = sa*sb * (acc[i][j] - za*colsum[j]).
void dequantize_gemm(const std::int32_t* acc, index_t ldacc, index_t m,
                     index_t n, const QuantParams& a_params,
                     const QuantParams& b_params,
                     const std::int64_t* b_colsums, float* out,
                     index_t ldout);

}  // namespace cake
