// Batched GEMM: many independent multiplies through one call — the DNN
// inference pattern (per-image im2col GEMMs, per-head attention GEMMs).
//
// Two execution strategies, chosen per batch:
//   * kSequential       — each problem runs with all p workers (right for
//                         few large problems);
//   * kParallelProblems — workers pull whole problems from a shared queue
//                         and solve them single-threaded (right for many
//                         small problems, where per-block fork/join would
//                         dominate);
//   * kAuto             — picks by problem FLOPs.
#pragma once

#include <vector>

#include "core/cake_gemm.hpp"

namespace cake {

/// One problem in a batch. All pointers must stay valid for the call.
template <typename T>
struct GemmBatchItem {
    const T* a = nullptr;
    index_t lda = 0;
    const T* b = nullptr;
    index_t ldb = 0;
    T* c = nullptr;
    index_t ldc = 0;
    index_t m = 0;
    index_t n = 0;
    index_t k = 0;
};

enum class BatchStrategy {
    kAuto,
    kSequential,
    kParallelProblems,
};

/// FLOP threshold below which kAuto parallelises across problems instead
/// of within them (roughly: blocks too few to feed every core).
inline constexpr double kBatchSmallProblemFlops = 2.0 * 256 * 256 * 256;

/// Execute every item; C (+)= op(A)*op(B) per CakeOptions semantics.
/// Items may differ in shape. Output regions must not alias.
template <typename T>
void cake_gemm_batched(ThreadPool& pool,
                       const std::vector<GemmBatchItem<T>>& items,
                       const CakeOptions& options = {},
                       BatchStrategy strategy = BatchStrategy::kAuto);

/// Strided batch: `count` problems of identical shape at fixed pointer
/// strides (the cuBLAS gemmStridedBatched convention). Leading dimensions
/// default to the natural packed values (lda = k, ldb = n, ldc = n, or
/// transposed equivalents per options).
template <typename T>
void cake_gemm_strided_batched(ThreadPool& pool, const T* a,
                               index_t stride_a, const T* b, index_t stride_b,
                               T* c, index_t stride_c, index_t m, index_t n,
                               index_t k, index_t count,
                               const CakeOptions& options = {},
                               BatchStrategy strategy = BatchStrategy::kAuto);

extern template void cake_gemm_batched<float>(
    ThreadPool&, const std::vector<GemmBatchItem<float>>&,
    const CakeOptions&, BatchStrategy);
extern template void cake_gemm_batched<double>(
    ThreadPool&, const std::vector<GemmBatchItem<double>>&,
    const CakeOptions&, BatchStrategy);
extern template void cake_gemm_strided_batched<float>(
    ThreadPool&, const float*, index_t, const float*, index_t, float*,
    index_t, index_t, index_t, index_t, index_t, const CakeOptions&,
    BatchStrategy);
extern template void cake_gemm_strided_batched<double>(
    ThreadPool&, const double*, index_t, const double*, index_t, double*,
    index_t, index_t, index_t, index_t, index_t, const CakeOptions&,
    BatchStrategy);

}  // namespace cake
