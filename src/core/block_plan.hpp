// The CB-block execution plan: the per-step decisions (which surfaces to
// fetch, which double-buffer half holds them, when the local C surface
// turns over and what it writes back) derived once, up front, as a pure
// function of the block schedule and the tiling parameters.
//
// Both executors in src/core/cake_gemm.cpp consume this plan — the serial
// path with double-buffering disabled (every slot stays 0), the pipelined
// path with slots alternating on each fresh fetch — and the schedule-IR
// extractor in src/analysis/schedir.cpp replays the *same* plan to emit
// the tile operations it verifies. That sharing is the point: the verifier
// proves properties of the data structure the runtime actually executes,
// not of a parallel reimplementation that could drift.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/schedule.hpp"
#include "core/tiling.hpp"

namespace cake {

// Work-item granularity shared by the pipelined executor and the IR
// extractor. Compute items stay one mr band each — the load-balancing unit
// that keeps every core busy on edge blocks. IO items (pack slivers,
// flush/zero rows) are grouped coarser: they are short memcpy-like bodies,
// and per-item counter and clock overhead would otherwise be measurable.
inline constexpr index_t kPackAGroup = 4;  ///< mr slivers per pack-A item
inline constexpr index_t kPackBGroup = 8;  ///< nr slivers per pack-B item
inline constexpr index_t kRowGroup = 16;   ///< C rows per flush/zero item

/// One schedule step's resolved execution decisions.
struct BlockStep {
    BlockCoord coord;
    index_t step = 0;  ///< schedule position (for diagnostics)
    index_t mi = 0, ni = 0, ki = 0;  ///< block extents (edge-clipped)
    index_t m0 = 0, n0 = 0, k0 = 0;  ///< element offsets into A/B/C
    int a_slot = 0, b_slot = 0;  ///< double-buffer half holding A / B
    bool pack_a = false;  ///< A not shared with the previous step: fetch it
    bool pack_b = false;  ///< B not shared: pack it (never set prepacked)
    bool b_fresh = false;  ///< B surface newly streamed (pack or prepacked)
    bool c_change = false;  ///< a new (m, n) column starts at this step
    bool reload = false;  ///< entering column was spilled before: refetch
    index_t c_gen = 0;  ///< ordinal of the local-C lifetime this step uses
    // Departing-column flush, executed at entry of this step (valid when
    // c_change && step > 0; also used for the final drain pseudo-step).
    BlockCoord flush_coord;     ///< grid column being written back
    index_t flush_mi = 0, flush_ni = 0;
    index_t flush_dst = 0;       ///< element offset into user C
    index_t flush_gen = 0;       ///< local-C lifetime being retired
    bool flush_revisit = false;  ///< surface spilled before: beta = 1
    bool flush_partial = false;  ///< fewer than Kb accumulations spilled
};

/// Modelled external-memory traffic and operation counts of a plan. The
/// executors copy these into CakeStats verbatim instead of re-deriving
/// them step by step.
struct BlockPlanStats {
    index_t blocks_executed = 0;
    index_t a_packs = 0;
    index_t b_packs = 0;
    index_t c_flushes = 0;
    index_t c_partial_spills = 0;
    std::uint64_t dram_read_bytes = 0;
    std::uint64_t dram_write_bytes = 0;
};

/// The resolved plan for one multiply. `final_flush` is a pseudo-step
/// whose flush_* fields retire the last live column (its coord/extent
/// fields mirror the last schedule step).
struct BlockPlan {
    std::vector<BlockStep> steps;
    BlockStep final_flush;
    BlockPlanStats stats;
    index_t c_generations = 0;  ///< total local-C lifetimes (column visits)
};

/// Inputs `build_block_plan` needs beyond the schedule itself. Only shape
/// and policy — no pointers, so the same plan describes a dry run.
struct BlockPlanInputs {
    CbBlockParams params;
    index_t m = 0, n = 0, k = 0;
    index_t ldc = 0;   ///< user-C leading dimension (flush destinations)
    index_t nb = 0;    ///< grid width, for (m, n) -> column-slot mapping
    index_t kb = 0;    ///< grid depth, for partial-spill detection
    bool use_prepacked = false;  ///< B streams from panels, no pack ops
    bool beta_nonzero = false;   ///< first-visit flushes read-modify-write
    bool double_buffer = false;  ///< alternate pack slots on fresh fetches
};

/// Derive the execution plan for `order`. Every decision the executors
/// make per step — surface sharing, slot assignment, flush bookkeeping,
/// DRAM traffic accounting — is resolved here, in schedule order.
BlockPlan build_block_plan(const std::vector<BlockCoord>& order,
                           const BlockPlanInputs& in);

}  // namespace cake
