// Execution-plan override surface: the hook through which an empirical
// autotuner (src/tune) — or any other plan oracle — hands `cake_gemm` and
// `model::recommend_tuned_plan` a previously measured winning configuration
// before the analytic §4.3 solver runs.
//
// The interface lives in src/core (not src/tune) so the driver carries no
// tuner dependency: release builds with -DCAKE_TUNE_DISABLED=ON keep this
// header, the hook simply stays null. A tuned plan is overrides, not a
// finished CbBlockParams — the solver still resolves the geometry, so a
// tuned plan passes through exactly the same compute_cb_block validation,
// audit_cb_plan gating and schedule-IR verification as an analytic one.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "core/schedule.hpp"
#include "kernel/cpu_features.hpp"

namespace cake {

/// Block-loop executor selection (consumed by CakeGemmT, defined here so
/// plan overrides can carry it without depending on the driver header).
enum class CakeExec {
    /// Pick the pipelined executor (it is bit-exact with the serial one
    /// and strictly cheaper in synchronisation).
    kAuto,
    /// One pool dispatch per phase: pack -> compute -> flush strictly in
    /// sequence per block, every DRAM fetch exposed on the critical path.
    /// Kept as the overlap-off baseline for benches and bit-exactness
    /// tests.
    kSerial,
    /// Software-pipelined: a persistent worker team stays resident across
    /// the whole block loop (spin barriers between phases, no condvar
    /// wakeups) and packs block i+1's non-shared surfaces while block i
    /// computes, double-buffering the packed-A/packed-B panels.
    kPipelined,
};

/// What a plan source is asked about: one multiply, shape + element width
/// + the worker count the caller would otherwise use.
struct PlanRequest {
    index_t m = 0, n = 0, k = 0;
    index_t elem_bytes = 4;  ///< 4 = f32, 8 = f64
    int p = 0;               ///< pool-resolved worker count of the caller
};

/// A tuned plan, expressed as overrides over the analytic defaults. Unset
/// fields keep the solver's own choice; set fields are applied only where
/// the caller did not explicitly override the same knob (user overrides
/// always beat the cache).
struct PlanOverrides {
    std::optional<int> p;            ///< worker count
    std::optional<index_t> mc;       ///< per-core sub-block rows
    std::optional<index_t> kc;       ///< reduction depth (may differ from mc)
    std::optional<index_t> nc;       ///< CB-block N extent
    std::optional<double> alpha;     ///< N stretch (ignored when nc is set)
    std::optional<ScheduleKind> schedule;
    std::optional<CakeExec> exec;
    std::optional<Isa> isa;          ///< micro-kernel ISA

    [[nodiscard]] bool empty() const
    {
        return !p && !mc && !kc && !nc && !alpha && !schedule && !exec
            && !isa;
    }
};

/// Plan oracle consulted before the analytic solver. Implementations must
/// be cheap (a cache lookup, not a benchmark) and thread-compatible: the
/// driver may call lookup() concurrently from independent contexts.
/// Returning nullopt means "no opinion" — the analytic path proceeds
/// untouched.
class TunedPlanSource {
public:
    virtual ~TunedPlanSource() = default;
    [[nodiscard]] virtual std::optional<PlanOverrides> lookup(
        const PlanRequest& request) const = 0;
};

}  // namespace cake
