// BLAS-style conveniences built on the CAKE driver: SYRK-shaped rank-k
// updates and matrix-vector products. These are thin, well-tested adapters
// — the heavy lifting stays in CakeGemmT.
#pragma once

#include "core/cake_gemm.hpp"

namespace cake {

/// C = alpha * A * A^T + beta * C, with A an n x k row-major matrix and C
/// n x n (full storage, symmetric result). The Gram-matrix building block
/// of least squares / covariance / kernel methods.
template <typename T>
void cake_syrk(ThreadPool& pool, const T* a, index_t lda, T* c, index_t ldc,
               index_t n, index_t k, T alpha = T(1), T beta = T(0),
               const CakeOptions& base_options = {});

/// C = alpha * A^T * A + beta * C, with A a k x n row-major matrix and C
/// n x n (the "transposed" Gram form, X^T X).
template <typename T>
void cake_syrk_t(ThreadPool& pool, const T* a, index_t lda, T* c,
                 index_t ldc, index_t n, index_t k, T alpha = T(1),
                 T beta = T(0), const CakeOptions& base_options = {});

/// y = alpha * A * x + beta * y (GEMV as an n=1 GEMM).
template <typename T>
void cake_gemv(ThreadPool& pool, const T* a, index_t lda, const T* x, T* y,
               index_t m, index_t k, T alpha = T(1), T beta = T(0));

extern template void cake_syrk<float>(ThreadPool&, const float*, index_t,
                                      float*, index_t, index_t, index_t,
                                      float, float, const CakeOptions&);
extern template void cake_syrk<double>(ThreadPool&, const double*, index_t,
                                       double*, index_t, index_t, index_t,
                                       double, double, const CakeOptions&);
extern template void cake_syrk_t<float>(ThreadPool&, const float*, index_t,
                                        float*, index_t, index_t, index_t,
                                        float, float, const CakeOptions&);
extern template void cake_syrk_t<double>(ThreadPool&, const double*, index_t,
                                         double*, index_t, index_t, index_t,
                                         double, double, const CakeOptions&);
extern template void cake_gemv<float>(ThreadPool&, const float*, index_t,
                                      const float*, float*, index_t, index_t,
                                      float, float);
extern template void cake_gemv<double>(ThreadPool&, const double*, index_t,
                                       const double*, double*, index_t,
                                       index_t, double, double);

}  // namespace cake
