#include "core/block_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cake {

BlockPlan build_block_plan(const std::vector<BlockCoord>& order,
                           const BlockPlanInputs& in)
{
    CAKE_CHECK(!order.empty());
    CAKE_CHECK(in.m >= 1 && in.n >= 1 && in.k >= 1);
    CAKE_CHECK(in.nb >= 1 && in.kb >= 1 && in.ldc >= in.n);

    const CbBlockParams& params = in.params;
    const auto elem = static_cast<std::uint64_t>(params.elem_bytes);
    const auto steps = static_cast<index_t>(order.size());

    BlockPlan plan;
    plan.steps.resize(static_cast<std::size_t>(steps));
    BlockPlanStats& stats = plan.stats;

    // Per-(m, n) column bookkeeping, evolved in schedule order: how many K
    // blocks have accumulated, whether the column's surface already visited
    // user memory (possible only under non-K-first ablation schedules), and
    // which local-C lifetime last served it.
    std::vector<index_t> k_done;
    std::vector<char> flushed;
    {
        index_t mb_max = 0;
        for (const BlockCoord& c : order) mb_max = std::max(mb_max, c.m + 1);
        k_done.assign(static_cast<std::size_t>(mb_max * in.nb), 0);
        flushed.assign(static_cast<std::size_t>(mb_max * in.nb), 0);
    }

    auto block_extent = [](index_t idx, index_t blk, index_t total) {
        return std::min(blk, total - idx * blk);
    };
    auto note_flush = [&](BlockStep& st, const BlockCoord& col, index_t mi,
                          index_t ni, index_t gen) {
        const std::size_t slot =
            static_cast<std::size_t>(col.m * in.nb + col.n);
        st.flush_coord = col;
        st.flush_mi = mi;
        st.flush_ni = ni;
        st.flush_dst = col.m * params.m_blk * in.ldc + col.n * params.n_blk;
        st.flush_gen = gen;
        st.flush_revisit = flushed[slot] != 0;
        st.flush_partial = k_done[slot] < in.kb;
        flushed[slot] = 1;
        ++stats.c_flushes;
        const auto bytes = static_cast<std::uint64_t>(mi)
            * static_cast<std::uint64_t>(ni) * elem;
        stats.dram_write_bytes += bytes;
        // First visit applies the caller's beta (RMW read iff beta != 0);
        // revisits must accumulate, so they always read back.
        if (st.flush_revisit || in.beta_nonzero) {
            stats.dram_read_bytes += bytes;
        }
        if (st.flush_partial) ++stats.c_partial_spills;
    };

    index_t cur_mi = 0, cur_ni = 0;
    index_t gen = -1;  // current local-C lifetime ordinal
    for (index_t t = 0; t < steps; ++t) {
        BlockStep& st = plan.steps[static_cast<std::size_t>(t)];
        st.coord = order[static_cast<std::size_t>(t)];
        st.step = t;
        st.mi = block_extent(st.coord.m, params.m_blk, in.m);
        st.ni = block_extent(st.coord.n, params.n_blk, in.n);
        st.ki = block_extent(st.coord.k, params.k_blk, in.k);
        st.m0 = st.coord.m * params.m_blk;
        st.n0 = st.coord.n * params.n_blk;
        st.k0 = st.coord.k * params.k_blk;

        const BlockStep* prev =
            t == 0 ? nullptr : &plan.steps[static_cast<std::size_t>(t - 1)];
        const SurfaceSharing shared = prev == nullptr
            ? SurfaceSharing{}
            : shared_surfaces(prev->coord, st.coord);

        st.a_slot = prev != nullptr ? prev->a_slot : 0;
        st.pack_a = !shared.a;
        if (in.double_buffer && prev != nullptr && st.pack_a) {
            st.a_slot = 1 - prev->a_slot;
        }
        if (st.pack_a) {
            ++stats.a_packs;
            stats.dram_read_bytes +=
                static_cast<std::uint64_t>(st.mi) * st.ki * elem;
        }

        st.b_slot = prev != nullptr ? prev->b_slot : 0;
        st.b_fresh = !shared.b;
        if (in.use_prepacked) {
            // Weights are already in panel format: no pack work, but the
            // surface still streams DRAM -> local memory once per block.
            st.pack_b = false;
            if (st.b_fresh) {
                stats.dram_read_bytes +=
                    static_cast<std::uint64_t>(st.ki) * st.ni * elem;
            }
        } else {
            st.pack_b = st.b_fresh;
            if (in.double_buffer && prev != nullptr && st.pack_b) {
                st.b_slot = 1 - prev->b_slot;
            }
            if (st.pack_b) {
                ++stats.b_packs;
                stats.dram_read_bytes +=
                    static_cast<std::uint64_t>(st.ki) * st.ni * elem;
            }
        }

        st.c_change = !shared.c;
        if (st.c_change) {
            ++gen;
            if (prev != nullptr) {
                note_flush(st, prev->coord, cur_mi, cur_ni, gen - 1);
            }
            const std::size_t slot =
                static_cast<std::size_t>(st.coord.m * in.nb + st.coord.n);
            st.reload = flushed[slot] != 0;
            if (st.reload) {
                // Revisiting a spilled surface: partials come back from
                // external memory (non-K-first ablation schedules only).
                stats.dram_read_bytes +=
                    static_cast<std::uint64_t>(st.mi) * st.ni * elem;
            }
            cur_mi = st.mi;
            cur_ni = st.ni;
        }
        st.c_gen = gen;
        ++k_done[static_cast<std::size_t>(st.coord.m * in.nb + st.coord.n)];
        ++stats.blocks_executed;
    }

    // Final flush of the last live column.
    const BlockStep& last = plan.steps[static_cast<std::size_t>(steps - 1)];
    plan.final_flush.coord = last.coord;
    plan.final_flush.step = steps;
    plan.final_flush.mi = last.mi;
    plan.final_flush.ni = last.ni;
    plan.final_flush.c_gen = gen;
    note_flush(plan.final_flush, last.coord, cur_mi, cur_ni, gen);
    plan.c_generations = gen + 1;
    return plan;
}

}  // namespace cake
