#include "core/cake_gemm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>

#include "analysis/racecheck.hpp"
#include "analysis/schedshake.hpp"
#include "common/checked.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/block_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "pack/pack.hpp"

namespace cake {

namespace {

/// Per-tile micro-kernel latency histogram (src/obs). The id is resolved
/// once; calls are dead code in CAKE_TRACE_DISABLED builds because
/// metrics_enabled() is constexpr false at every use site.
obs::MetricId tile_latency_hist()
{
    static const obs::MetricId id =
        obs::histogram("cake.kernel.tile_ns", obs::latency_bounds_ns());
    return id;
}

/// Publish one multiply's CakeStats into the obs metrics registry, so a
/// snapshot at the end of a bench/tool run carries the same phase
/// decomposition the per-call struct reports.
void publish_cake_stats(const CakeStats& s)
{
    if (!obs::metrics_enabled()) return;
    static const obs::MetricId multiplies =
        obs::counter("cake.gemm.multiplies");
    static const obs::MetricId blocks = obs::counter("cake.gemm.blocks");
    static const obs::MetricId a_packs = obs::counter("cake.gemm.a_packs");
    static const obs::MetricId b_packs = obs::counter("cake.gemm.b_packs");
    static const obs::MetricId c_flushes =
        obs::counter("cake.gemm.c_flushes");
    static const obs::MetricId dram_rd =
        obs::counter("cake.gemm.dram_read_bytes");
    static const obs::MetricId dram_wr =
        obs::counter("cake.gemm.dram_write_bytes");
    static const obs::MetricId pack_s = obs::gauge("cake.gemm.pack_s");
    static const obs::MetricId compute_s =
        obs::gauge("cake.gemm.compute_s");
    static const obs::MetricId flush_s = obs::gauge("cake.gemm.flush_s");
    static const obs::MetricId stall_s = obs::gauge("cake.gemm.stall_s");
    static const obs::MetricId total_s = obs::gauge("cake.gemm.total_s");
    static const obs::MetricId overlap =
        obs::gauge("cake.gemm.overlap_efficiency");
    obs::counter_add(multiplies, 1);
    obs::counter_add(blocks,
                     static_cast<std::uint64_t>(s.blocks_executed));
    obs::counter_add(a_packs, static_cast<std::uint64_t>(s.a_packs));
    obs::counter_add(b_packs, static_cast<std::uint64_t>(s.b_packs));
    obs::counter_add(c_flushes, static_cast<std::uint64_t>(s.c_flushes));
    obs::counter_add(dram_rd, s.dram_read_bytes);
    obs::counter_add(dram_wr, s.dram_write_bytes);
    obs::gauge_set(pack_s, s.pack_seconds);
    obs::gauge_set(compute_s, s.compute_seconds);
    obs::gauge_set(flush_s, s.flush_seconds);
    obs::gauge_set(stall_s, s.stall_seconds);
    obs::gauge_set(total_s, s.total_seconds);
    obs::gauge_set(overlap, s.overlap_efficiency);
}

}  // namespace

namespace detail {

/// One multiply's resolved arguments, shared by both executors.
template <typename T>
struct GemmCall {
    const T* a = nullptr;
    index_t lda = 0;
    const T* b = nullptr;
    index_t ldb = 0;
    T* c = nullptr;
    index_t ldc = 0;
    index_t m = 0, n = 0, k = 0;
    T alpha = T(1), beta = T(0);
    const PackedB<T>* prepacked = nullptr;
    bool ta = false, tb = false;
    CbBlockParams params;
    index_t mb = 0, nb = 0, kb = 0;
    std::vector<BlockCoord> order;
    const BlockPlan* plan = nullptr;  ///< resolved per-step decisions
};

/// CAKE_RACECHECK: retire a shadow-ownership region when the executor
/// scope exits, including through an exception unwinding out of the team.
/// Compiles away entirely in non-racecheck builds.
struct ScopedRegion {
    racecheck::RegionId id;

    explicit ScopedRegion(racecheck::RegionId region) : id(region) {}
    ScopedRegion(const ScopedRegion&) = delete;
    ScopedRegion& operator=(const ScopedRegion&) = delete;
    ~ScopedRegion() { racecheck::region_retire(id); }
};

}  // namespace detail

template <typename T>
CakeGemmT<T>::CakeGemmT(ThreadPool& pool, CakeOptions options)
    : pool_(pool), options_(std::move(options)),
      p_explicit_(options_.p > 0),
      machine_(options_.machine ? *options_.machine : host_machine()),
      kernel_(options_.isa ? microkernel_for_of<T>(*options_.isa)
                           : best_microkernel_of<T>())
{
    if (options_.p <= 0 || options_.p > pool_.size())
        options_.p = pool_.size();
}

template <typename T>
void CakeGemmT<T>::multiply(const T* a, index_t lda, const T* b, index_t ldb,
                            T* c, index_t ldc, index_t m, index_t n,
                            index_t k)
{
    multiply_scaled(a, lda, b, ldb, c, ldc, m, n, k, T(1),
                    options_.accumulate ? T(1) : T(0));
}

template <typename T>
void CakeGemmT<T>::multiply_scaled(const T* a, index_t lda, const T* b,
                                   index_t ldb, T* c, index_t ldc, index_t m,
                                   index_t n, index_t k, T alpha_s, T beta_s)
{
    multiply_impl(a, lda, b, ldb, c, ldc, m, n, k, alpha_s, beta_s, nullptr);
}

template <typename T>
PackedB<T> CakeGemmT<T>::pack_weights(const T* b, index_t ldb, index_t k,
                                      index_t n)
{
    CAKE_CHECK(k >= 1 && n >= 1);
    const bool tb = options_.op_b == Op::kTranspose;
    CAKE_CHECK_MSG(ldb >= (tb ? k : n), "ldb too small for op(B)");

    TilingOptions topts;
    topts.mc = options_.mc;
    topts.kc = options_.kc;
    topts.nc = options_.nc;
    topts.alpha = options_.alpha;
    topts.elem_bytes = sizeof(T);
    PackedB<T> packed;
    packed.params_ =
        compute_cb_block(machine_, options_.p, kernel_.mr, kernel_.nr, topts);
    packed.k_ = k;
    packed.n_ = n;
    packed.kb_ = ceil_div(k, packed.params_.k_blk);
    packed.nb_ = ceil_div(n, packed.params_.n_blk);
    packed.stride_ = static_cast<std::size_t>(
        packed_b_size(packed.params_.k_blk, packed.params_.n_blk, kernel_.nr));
    packed.data_ = AlignedBuffer<T>(
        static_cast<std::size_t>(packed.kb_ * packed.nb_) * packed.stride_);

    const index_t total_panels = packed.kb_ * packed.nb_;
    pool_.parallel_for(0, total_panels, options_.p,
                       [&](index_t lo, index_t hi) {
        for (index_t slot = lo; slot < hi; ++slot) {
            const index_t k_idx = slot / packed.nb_;
            const index_t n_idx = slot % packed.nb_;
            const index_t k0 = k_idx * packed.params_.k_blk;
            const index_t n0 = n_idx * packed.params_.n_blk;
            const index_t ki = std::min(packed.params_.k_blk, k - k0);
            const index_t ni = std::min(packed.params_.n_blk, n - n0);
            T* dst = packed.data_.data()
                + static_cast<std::size_t>(slot) * packed.stride_;
            if (tb) {
                pack_b_panel_transposed(b + n0 * ldb + k0, ldb, ki, ni,
                                        kernel_.nr, dst);
            } else {
                pack_b_panel(b + k0 * ldb + n0, ldb, ki, ni, kernel_.nr,
                             dst);
            }
        }
    });
    packed.verify_canaries();
    return packed;
}

template <typename T>
void CakeGemmT<T>::multiply_prepacked(const T* a, index_t lda,
                                      const PackedB<T>& b, T* c, index_t ldc,
                                      index_t m)
{
    CAKE_CHECK_MSG(!b.empty(), "PackedB is empty");
    multiply_impl(a, lda, nullptr, b.n(), c, ldc, m, b.n(), b.k(), T(1),
                  options_.accumulate ? T(1) : T(0), &b);
}

template <typename T>
void CakeGemmT<T>::multiply_impl(const T* a, index_t lda, const T* b,
                                 index_t ldb, T* c, index_t ldc, index_t m,
                                 index_t n, index_t k, T alpha_s, T beta_s,
                                 const PackedB<T>* prepacked)
{
    CAKE_CHECK(m >= 0 && n >= 0 && k >= 0);
    const bool ta = options_.op_a == Op::kTranspose;
    const bool tb = options_.op_b == Op::kTranspose;
    CAKE_CHECK_MSG(lda >= (ta ? m : k), "lda too small for op(A)");
    if (prepacked == nullptr) {
        CAKE_CHECK_MSG(ldb >= (tb ? k : n), "ldb too small for op(B)");
    }
    CAKE_CHECK(ldc >= n);
    if (m == 0 || n == 0) return;
    if (k == 0 || alpha_s == T(0)) {
        // Degenerate product contributes nothing: apply the beta epilogue.
        for (index_t i = 0; i < m; ++i) {
            T* row = c + i * ldc;
            if (beta_s == T(0)) std::fill(row, row + n, T(0));
            else if (beta_s != T(1))
                for (index_t j = 0; j < n; ++j) row[j] *= beta_s;
        }
        return;
    }

    Timer total_timer;
    stats_ = CakeStats{};

    int p = options_.p;
    TilingOptions topts;
    topts.mc = options_.mc;
    topts.kc = options_.kc;
    topts.nc = options_.nc;
    topts.alpha = options_.alpha;
    topts.elem_bytes = sizeof(T);
    ScheduleKind schedule = options_.schedule;
    CakeExec exec = options_.exec;

    // Consult the plan oracle (typically the persisted tuning cache) before
    // the analytic solver. A tuned override applies only where the caller
    // left the knob at its default — explicit user settings always win —
    // and never on the prepacked-weights path, whose geometry was fixed at
    // pack_weights() time. Whatever survives still flows through the same
    // compute_cb_block validation as an analytic plan.
    if (options_.plan_source != nullptr && prepacked == nullptr) {
        PlanRequest req;
        req.m = m;
        req.n = n;
        req.k = k;
        req.elem_bytes = sizeof(T);
        req.p = p;
        if (const auto tuned = options_.plan_source->lookup(req)) {
            auto take = [&](auto& knob, const auto& src) {
                if (!knob && src) {
                    knob = *src;
                    stats_.tuned = true;
                }
            };
            take(topts.mc, tuned->mc);
            take(topts.kc, tuned->kc);
            // alpha and nc are mutually exclusive at the solver: whichever
            // the user pinned suppresses the tuned value of the other.
            if (!topts.alpha) take(topts.nc, tuned->nc);
            if (!topts.nc) take(topts.alpha, tuned->alpha);
            if (!p_explicit_ && tuned->p && *tuned->p >= 1
                && *tuned->p <= pool_.size() && *tuned->p != p) {
                p = *tuned->p;
                stats_.tuned = true;
            }
            if (schedule == ScheduleKind::kKFirstSerpentine && tuned->schedule
                && *tuned->schedule != schedule) {
                schedule = *tuned->schedule;
                stats_.tuned = true;
            }
            if (exec == CakeExec::kAuto && tuned->exec
                && *tuned->exec != CakeExec::kAuto) {
                exec = *tuned->exec;
                stats_.tuned = true;
            }
            if (!options_.isa && tuned->isa && isa_supported(*tuned->isa)
                && *tuned->isa != kernel_.isa) {
                kernel_ = microkernel_for_of<T>(*tuned->isa);
                stats_.tuned = true;
            }
        } else if (!options_.isa && kernel_.isa != best_microkernel_of<T>().isa) {
            // A previous multiply's tuned ISA must not leak into a shape
            // the oracle has no opinion about.
            kernel_ = best_microkernel_of<T>();
        }
    }

    const CbBlockParams params =
        compute_cb_block(machine_, p, kernel_.mr, kernel_.nr, topts);
    if (prepacked != nullptr) {
        CAKE_CHECK_MSG(prepacked->params() == params,
                       "PackedB geometry does not match this context");
    }

    stats_.params = params;

    detail::GemmCall<T> call;
    call.a = a;
    call.lda = lda;
    call.b = b;
    call.ldb = ldb;
    call.c = c;
    call.ldc = ldc;
    call.m = m;
    call.n = n;
    call.k = k;
    call.alpha = alpha_s;
    call.beta = beta_s;
    call.prepacked = prepacked;
    call.ta = ta;
    call.tb = tb;
    call.params = params;
    call.mb = ceil_div(m, params.m_blk);
    call.nb = ceil_div(n, params.n_blk);
    call.kb = ceil_div(k, params.k_blk);
    stats_.grid_mb = call.mb;
    stats_.grid_nb = call.nb;
    stats_.grid_kb = call.kb;

    // §2.2: when M > N the M dimension runs outermost so the larger B
    // surface is reused before A.
    const bool pipelined = exec != CakeExec::kSerial;
    call.order = build_schedule(schedule, call.mb, call.nb, call.kb,
                                /*n_outermost=*/n >= m);

    // Resolve the whole block loop up front: surface sharing, pack-slot
    // assignment, flush bookkeeping and the modelled DRAM traffic are pure
    // functions of the schedule (src/core/block_plan.cpp). Both executors
    // and the schedule-IR extractor consume this same plan.
    BlockPlanInputs plan_in;
    plan_in.params = params;
    plan_in.m = m;
    plan_in.n = n;
    plan_in.k = k;
    plan_in.ldc = ldc;
    plan_in.nb = call.nb;
    plan_in.kb = call.kb;
    plan_in.use_prepacked = prepacked != nullptr;
    plan_in.beta_nonzero = beta_s != T(0);
    plan_in.double_buffer = pipelined;
    const BlockPlan plan = build_block_plan(call.order, plan_in);
    call.plan = &plan;
    stats_.blocks_executed = plan.stats.blocks_executed;
    stats_.a_packs = plan.stats.a_packs;
    stats_.b_packs = plan.stats.b_packs;
    stats_.c_flushes = plan.stats.c_flushes;
    stats_.c_partial_spills = plan.stats.c_partial_spills;
    stats_.dram_read_bytes = plan.stats.dram_read_bytes;
    stats_.dram_write_bytes = plan.stats.dram_write_bytes;

    pack_a_[0].ensure(static_cast<std::size_t>(
        packed_a_size(params.m_blk, params.k_blk, kernel_.mr)));
    if (pipelined) pack_a_[1].ensure(pack_a_[0].size());
    if (prepacked == nullptr) {
        pack_b_[0].ensure(static_cast<std::size_t>(
            packed_b_size(params.k_blk, params.n_blk, kernel_.nr)));
        if (pipelined) pack_b_[1].ensure(pack_b_[0].size());
    }
    c_block_.ensure(static_cast<std::size_t>(params.m_blk)
                    * static_cast<std::size_t>(params.n_blk));
    if (scratch_.size() < static_cast<std::size_t>(p)) {
        scratch_.resize(static_cast<std::size_t>(p));
    }
    for (auto& s : scratch_) {
        s.ensure(static_cast<std::size_t>(kernel_.mr * kernel_.nr));
    }

    if (pipelined) {
        run_pipelined(call);
    } else {
        run_serial(call);
    }

    // CAKE_CHECKED: the multiply is flushed — every packed surface's
    // front/back canaries must still be intact, or some strided write ran
    // outside its panel. No-ops in release builds.
    pack_a_[0].verify_canaries("packed-A buffer[0]");
    pack_a_[1].verify_canaries("packed-A buffer[1]");
    pack_b_[0].verify_canaries("packed-B buffer[0]");
    pack_b_[1].verify_canaries("packed-B buffer[1]");
    c_block_.verify_canaries("local C surface");
    for (const auto& s : scratch_) s.verify_canaries("kernel scratch tile");
    if (prepacked != nullptr) prepacked->verify_canaries();

    stats_.total_seconds = total_timer.seconds();
    if (!stats_.pipelined) {
        stats_.stall_seconds =
            std::max(0.0, stats_.total_seconds - stats_.pack_seconds
                              - stats_.compute_seconds
                              - stats_.flush_seconds);
    }
    publish_cake_stats(stats_);
}

// ---------------------------------------------------------------------------
// Serial executor: one pool dispatch per phase, pack -> compute -> flush in
// strict sequence per block (the overlap-off baseline).
// ---------------------------------------------------------------------------
template <typename T>
void CakeGemmT<T>::run_serial(const detail::GemmCall<T>& call)
{
    const CbBlockParams& params = call.params;
    const int p = params.p;
    const index_t m = call.m, n = call.n;
    const T alpha_s = call.alpha, beta_s = call.beta;
    const T* a = call.a;
    const T* b = call.b;
    T* c = call.c;
    const index_t lda = call.lda, ldb = call.ldb, ldc = call.ldc;
    const bool ta = call.ta, tb = call.tb;
    const PackedB<T>* prepacked = call.prepacked;
    const BlockPlan& plan = *call.plan;

    // CAKE_RACECHECK shadow regions: the packed panels at mr/nr-sliver
    // granularity and the local C surface at row x nr-sliver granularity
    // (flush/zero row chunks are not mr-aligned, so full mr x nr C tiles
    // would alias across legitimate chunk boundaries). No-ops in other
    // builds.
    const index_t c_cols = ceil_div(params.n_blk, kernel_.nr);
    detail::ScopedRegion rc_pa(racecheck::region_register(
        "packed-A panel", ceil_div(params.m_blk, kernel_.mr)));
    detail::ScopedRegion rc_pb(racecheck::region_register(
        "packed-B panel", ceil_div(params.n_blk, kernel_.nr)));
    detail::ScopedRegion rc_c(racecheck::region_register(
        "local C surface", params.m_blk * c_cols, c_cols));

    // Flush the departing column recorded in `fl`'s flush_* fields (a plan
    // step opening a new column, or the final-drain pseudo-step).
    auto flush_c = [&](const BlockStep& fl) {
        // First visit applies the caller's beta; revisits (spilled partial
        // surfaces under ablation schedules) must accumulate.
        const T beta_eff = fl.flush_revisit ? T(1) : beta_s;
        const index_t mi = fl.flush_mi, ni = fl.flush_ni;
        const BlockCoord& coord = fl.flush_coord;
        require_extent(fl.flush_dst, (mi - 1) * ldc + ni,
                       static_cast<std::size_t>((m - 1) * ldc + n),
                       "user C surface flush");
        T* dst = c + fl.flush_dst;
        pool_.parallel_for(0, mi, p, [&](index_t r0, index_t r1) {
            obs::ScopedSpan span("flush.write", obs::Phase::kFlush, coord.m,
                                 coord.n, coord.k, r0);
            obs::perf::ScopedPhaseDelta perf_scope(obs::Phase::kFlush);
            racecheck::region_access_block(
                rc_c.id, r0, r1, 0, ceil_div(ni, kernel_.nr),
                racecheck::AccessKind::kRead,
                {fl.step, coord.m, coord.n, coord.k,
                 racecheck::Phase::kFlush});
            require_extent(r0 * ni, (r1 - r0) * ni, c_block_.size(),
                           "local C flush rows");
            unpack_c_block_scaled(c_block_.data() + r0 * ni, r1 - r0, ni,
                                  dst + r0 * ldc, ldc, alpha_s, beta_eff);
        });
    };

    for (const BlockStep& st : plan.steps) {
        const BlockCoord coord = st.coord;
        const index_t mi = st.mi, ni = st.ni, ki = st.ki;
        const index_t m0 = st.m0, n0 = st.n0, k0 = st.k0;
        const index_t step_idx = st.step;

        // --- surface sharing: only fetch (pack) surfaces that changed ---
        Timer pack_timer;
        if (st.pack_a) {
            pool_.parallel_for(0, ceil_div(mi, kernel_.mr), p,
                               [&](index_t s0, index_t s1) {
                obs::ScopedSpan span("pack.A", obs::Phase::kPack, coord.m,
                                     coord.n, coord.k, s0);
                obs::perf::ScopedPhaseDelta perf_scope(obs::Phase::kPack);
                racecheck::region_access_range(
                    rc_pa.id, s0, s1, racecheck::AccessKind::kWrite,
                    {step_idx, coord.m, coord.n, coord.k,
                     racecheck::Phase::kPack});
                const index_t r0 = s0 * kernel_.mr;
                const index_t r1 = std::min(mi, s1 * kernel_.mr);
                if (ta) {
                    pack_a_panel_transposed(a + k0 * lda + (m0 + r0), lda,
                                            r1 - r0, ki, kernel_.mr,
                                            pack_a_[0].data() + r0 * ki);
                } else {
                    pack_a_panel(a + (m0 + r0) * lda + k0, lda, r1 - r0, ki,
                                 kernel_.mr, pack_a_[0].data() + r0 * ki);
                }
            });
        }
        const T* pb_block = pack_b_[0].data();
        if (prepacked != nullptr) {
            // Weights are already in panel format: no pack work; the
            // stream into local memory is accounted in the plan.
            pb_block = prepacked->panel(coord.k, coord.n);
        } else if (st.pack_b) {
            pool_.parallel_for(0, ceil_div(ni, kernel_.nr), p,
                               [&](index_t s0, index_t s1) {
                obs::ScopedSpan span("pack.B", obs::Phase::kPack, coord.m,
                                     coord.n, coord.k, s0);
                obs::perf::ScopedPhaseDelta perf_scope(obs::Phase::kPack);
                racecheck::region_access_range(
                    rc_pb.id, s0, s1, racecheck::AccessKind::kWrite,
                    {step_idx, coord.m, coord.n, coord.k,
                     racecheck::Phase::kPack});
                const index_t c0 = s0 * kernel_.nr;
                const index_t c1 = std::min(ni, s1 * kernel_.nr);
                if (tb) {
                    pack_b_panel_transposed(b + (n0 + c0) * ldb + k0, ldb, ki,
                                            c1 - c0, kernel_.nr,
                                            pack_b_[0].data() + c0 * ki);
                } else {
                    pack_b_panel(b + k0 * ldb + (n0 + c0), ldb, ki, c1 - c0,
                                 kernel_.nr, pack_b_[0].data() + c0 * ki);
                }
            });
        }
        stats_.pack_seconds += pack_timer.seconds();

        if (st.c_change) {
            Timer flush_timer;
            if (st.step > 0) flush_c(st);
            // Fresh local C surface for the new (m, n) column.
            pool_.parallel_for(0, mi, p, [&](index_t r0, index_t r1) {
                obs::ScopedSpan span("flush.zero", obs::Phase::kFlush,
                                     coord.m, coord.n, coord.k, r0);
                obs::perf::ScopedPhaseDelta perf_scope(obs::Phase::kFlush);
                racecheck::region_access_block(
                    rc_c.id, r0, r1, 0, ceil_div(ni, kernel_.nr),
                    racecheck::AccessKind::kWrite,
                    {step_idx, coord.m, coord.n, coord.k,
                     racecheck::Phase::kFlush});
                std::memset(c_block_.data() + r0 * ni, 0,
                            static_cast<std::size_t>((r1 - r0) * ni)
                                * sizeof(T));
            });
            stats_.flush_seconds += flush_timer.seconds();
        }

        // --- block computation: p workers, one row band each. Full blocks
        // give each core its mc-row band (one A sub-block per core,
        // Fig. 6b); edge blocks split their rows evenly so no core idles
        // (band == mc whenever mi == p*mc). ---
        Timer compute_timer;
        const MicroKernelT<T> kernel = kernel_;
        // Span the packed panels and the local C surface: in CAKE_CHECKED
        // builds every sliver slice below is validated against the panel
        // capacity; in release builds these are the raw pointers.
        const T* pb_raw = pb_block;
        const std::size_t pb_cap = prepacked != nullptr
            ? prepacked->panel_stride()
            : pack_b_[0].size();
        Span<const T> pa =
            make_span(static_cast<const T*>(pack_a_[0].data()),
                      pack_a_[0].size(), "packed-A panel");
        Span<const T> pb = make_span(pb_raw, pb_cap, "packed-B panel");
        Span<T> cb =
            make_span(c_block_.data(), c_block_.size(), "local C surface");
        const index_t band =
            round_up(ceil_div(mi, static_cast<index_t>(p)), kernel_.mr);
        const bool obs_tiles = obs::metrics_enabled();
        pool_.run(p, [&, kernel, pa, pb, cb, mi, ni, ki, band](int tid) {
            obs::ScopedSpan span("compute", obs::Phase::kCompute, coord.m,
                                 coord.n, coord.k, tid);
            obs::perf::ScopedPhaseDelta perf_scope(obs::Phase::kCompute);
            const index_t r_begin = std::min<index_t>(tid * band, mi);
            const index_t r_end = std::min<index_t>((tid + 1) * band, mi);
            if (r_begin < r_end) {
                const racecheck::AccessSite site{step_idx, coord.m, coord.n,
                                                 coord.k,
                                                 racecheck::Phase::kCompute};
                racecheck::region_access_range(
                    rc_pa.id, r_begin / kernel.mr,
                    ceil_div(r_end, kernel.mr), racecheck::AccessKind::kRead,
                    site);
                if (prepacked == nullptr) {
                    racecheck::region_access_range(
                        rc_pb.id, 0, ceil_div(ni, kernel.nr),
                        racecheck::AccessKind::kRead, site);
                }
                racecheck::region_access_block(
                    rc_c.id, r_begin, r_end, 0, ceil_div(ni, kernel.nr),
                    racecheck::AccessKind::kWrite, site);
            }
            T* scratch = scratch_[static_cast<std::size_t>(tid)].data();
            for (index_t r = r_begin; r < r_end; r += kernel.mr) {
                const index_t mrows = std::min(kernel.mr, r_end - r);
                Span<const T> a_sliver = span_slice(
                    pa, (r / kernel.mr) * kernel.mr * ki, kernel.mr * ki);
                for (index_t j = 0; j < ni; j += kernel.nr) {
                    const index_t ncols = std::min(kernel.nr, ni - j);
                    Span<const T> b_sliver = span_slice(
                        pb, (j / kernel.nr) * kernel.nr * ki,
                        kernel.nr * ki);
                    Span<T> c_tile = span_slice(
                        cb, r * ni + j, (mrows - 1) * ni + ncols);
                    const std::uint64_t tile_t0 =
                        obs_tiles ? obs::now_ns() : 0;
                    run_microkernel_tile(kernel, ki, span_data(a_sliver),
                                         span_data(b_sliver),
                                         span_data(c_tile), ni, mrows, ncols,
                                         /*accumulate=*/true, scratch);
                    if (obs_tiles) {
                        obs::histogram_observe(
                            tile_latency_hist(),
                            static_cast<double>(obs::now_ns() - tile_t0));
                    }
                }
            }
        });
        stats_.compute_seconds += compute_timer.seconds();
    }
    {
        Timer flush_timer;
        flush_c(plan.final_flush);
        stats_.flush_seconds += flush_timer.seconds();
    }
}

// ---------------------------------------------------------------------------
// Pipelined executor: one persistent team for the whole block loop. While
// the team computes block i it also packs the surfaces of block i+1 that
// shared_surfaces() says are not carried over, into the other half of the
// double-buffered panel storage — so after pipeline fill, packing IO runs
// concurrently with compute instead of on the critical path (paper §2,
// Fig. 7). Phases inside the team are separated by spin barriers; work
// within a phase is claimed in mr/nr-sliver items off an atomic counter so
// edge blocks never leave cores idle.
// ---------------------------------------------------------------------------
template <typename T>
void CakeGemmT<T>::run_pipelined(const detail::GemmCall<T>& call)
{
    const CbBlockParams& params = call.params;
    const int p = params.p;
    const index_t mr = kernel_.mr;
    const index_t nr = kernel_.nr;
    const bool use_prepacked = call.prepacked != nullptr;

    // ---- Step plan (src/core/block_plan.cpp). Buffer slots, pack needs
    // and flush bookkeeping are pure functions of the schedule, resolved
    // up front by build_block_plan; the team below only claims and
    // executes work items.
    const BlockPlan& plan = *call.plan;
    const auto steps = static_cast<index_t>(plan.steps.size());
    const BlockStep& final_flush = plan.final_flush;

    // ---- Team execution.
    const MicroKernelT<T> kernel = kernel_;
    T* const cb = c_block_.data();
    T* const pa_slots[2] = {pack_a_[0].data(), pack_a_[1].data()};
    T* const pb_slots[2] = {pack_b_[0].data(), pack_b_[1].data()};
    // Capacities for the CAKE_CHECKED extent checks in the work items
    // below (both halves of each double buffer are allocated equal).
    const std::size_t pa_cap = pack_a_[0].size();
    const std::size_t pb_cap = use_prepacked
        ? call.prepacked->panel_stride()
        : pack_b_[0].size();
    const std::size_t cb_cap = c_block_.size();
    const std::size_t user_c_cap =
        static_cast<std::size_t>((call.m - 1) * call.ldc + call.n);

    // CAKE_RACECHECK shadow regions. Each double-buffer half is its own
    // region, so the intended pack(i+1)/compute(i) overlap on *opposite*
    // halves stays silent while any same-half access pair without a
    // barrier edge between its phases traps. The local C surface is tiled
    // at row x nr-sliver granularity because flush/zero row groups
    // (kRowGroup) are not mr-aligned. All of this compiles to nothing in
    // non-racecheck builds.
    const index_t c_cols = ceil_div(params.n_blk, nr);
    detail::ScopedRegion rc_pa0(racecheck::region_register(
        "packed-A half 0", ceil_div(params.m_blk, mr)));
    detail::ScopedRegion rc_pa1(racecheck::region_register(
        "packed-A half 1", ceil_div(params.m_blk, mr)));
    detail::ScopedRegion rc_pb0(racecheck::region_register(
        "packed-B half 0", ceil_div(params.n_blk, nr)));
    detail::ScopedRegion rc_pb1(racecheck::region_register(
        "packed-B half 1", ceil_div(params.n_blk, nr)));
    detail::ScopedRegion rc_c(racecheck::region_register(
        "local C surface", params.m_blk * c_cols, c_cols));
    const racecheck::RegionId rc_pa_ids[2] = {rc_pa0.id, rc_pa1.id};
    const racecheck::RegionId rc_pb_ids[2] = {rc_pb0.id, rc_pb1.id};

    // Work-item granularity: kPackAGroup / kPackBGroup / kRowGroup from
    // core/block_plan.hpp, shared with the schedule-IR extractor so the
    // verified operation stream is item-for-item the one dispatched here.

    // Phase work counters, double-buffered by phase parity: while phase q
    // drains counters[q & 1], worker 0 resets the other one (dead since
    // the barrier that ended phase q-1) for phase q+1.
    std::atomic<index_t> counters[2] = {};
    std::vector<double> worker_pack(static_cast<std::size_t>(p), 0.0);
    std::vector<double> worker_compute(static_cast<std::size_t>(p), 0.0);
    std::vector<double> worker_flush(static_cast<std::size_t>(p), 0.0);
    std::vector<double> worker_hidden(static_cast<std::size_t>(p), 0.0);

    Timer team_timer;
    pool_.run_team(p, [&](TeamContext& team, int tid) {
        using Clock = std::chrono::steady_clock;
        double pack_s = 0, compute_s = 0, flush_s = 0, hidden_s = 0;
        long phase = 0;
        T* const scratch = scratch_[static_cast<std::size_t>(tid)].data();

        // Claim items off the phase counter until exhausted, then cross
        // the phase barrier. Item errors are recorded (not thrown) so
        // every worker keeps reaching the same barriers; once an error is
        // recorded all remaining items drain as no-ops.
        auto run_phase = [&](index_t n_items, auto&& body) {
            std::atomic<index_t>& counter = counters[phase & 1];
            for (;;) {
                schedshake::interleave_point(
                    schedshake::Point::kPhaseClaim);
                const index_t item =
                    counter.fetch_add(1, std::memory_order_relaxed);
                if (item >= n_items) break;
                if (team.has_error()) continue;
                try {
                    body(item);
                } catch (...) {
                    team.record_error(std::current_exception());
                }
            }
            if (tid == 0) {
                counters[(phase + 1) & 1].store(0,
                                                std::memory_order_relaxed);
            }
            team.barrier();
            ++phase;
        };
        // Each work item is timed ONCE with a shared Clock::now() pair that
        // feeds both the phase stats and the emitted trace span, so the
        // per-worker span totals and CakeStats phase seconds agree exactly
        // (a second clock pair would skew short flush/zero items by its own
        // cost). The obs push happens after the end reading — ring costs
        // stay outside both measurements.
        const bool tracing = obs::enabled();
        auto timed_item = [&](const char* span_name, obs::Phase obs_phase,
                              const BlockStep& st, index_t item, auto&& body) {
            // Counter reads bracket the clock pair so the perf syscalls
            // never contaminate the phase seconds or the span duration.
            obs::perf::ScopedPhaseDelta perf_scope(obs_phase);
            const auto t0 = Clock::now();
            body();
            const auto t1 = Clock::now();
            if (tracing) {
                obs::emit_span(span_name, obs_phase, obs::to_trace_ns(t0),
                               obs::to_trace_ns(t1), st.coord.m, st.coord.n,
                               st.coord.k, item);
            }
            return std::chrono::duration<double>(t1 - t0).count();
        };

        // One group of mr slivers of step st's A surface into its half.
        auto pack_a_item = [&](const BlockStep& st, index_t item) {
            schedshake::interleave_point(schedshake::Point::kPackItem);
            const index_t s_end = std::min(ceil_div(st.mi, mr),
                                           (item + 1) * kPackAGroup);
            racecheck::region_access_range(
                rc_pa_ids[st.a_slot], item * kPackAGroup, s_end,
                racecheck::AccessKind::kWrite,
                {st.step, st.coord.m, st.coord.n, st.coord.k,
                 racecheck::Phase::kPack});
            for (index_t s = item * kPackAGroup; s < s_end; ++s) {
                const index_t r0 = s * mr;
                const index_t rows = std::min(mr, st.mi - r0);
                require_extent(r0 * st.ki, mr * st.ki, pa_cap,
                               "pipelined packed-A sliver");
                T* dst = pa_slots[st.a_slot] + r0 * st.ki;
                if (call.ta) {
                    pack_a_panel_transposed(call.a + st.k0 * call.lda
                                                + (st.m0 + r0),
                                            call.lda, rows, st.ki, mr, dst);
                } else {
                    pack_a_panel(call.a + (st.m0 + r0) * call.lda + st.k0,
                                 call.lda, rows, st.ki, mr, dst);
                }
            }
        };
        // One group of nr slivers of step st's B surface into its half.
        auto pack_b_item = [&](const BlockStep& st, index_t item) {
            schedshake::interleave_point(schedshake::Point::kPackItem);
            const index_t s_end = std::min(ceil_div(st.ni, nr),
                                           (item + 1) * kPackBGroup);
            racecheck::region_access_range(
                rc_pb_ids[st.b_slot], item * kPackBGroup, s_end,
                racecheck::AccessKind::kWrite,
                {st.step, st.coord.m, st.coord.n, st.coord.k,
                 racecheck::Phase::kPack});
            for (index_t s = item * kPackBGroup; s < s_end; ++s) {
                const index_t c0 = s * nr;
                const index_t cols = std::min(nr, st.ni - c0);
                require_extent(c0 * st.ki, nr * st.ki, pb_cap,
                               "pipelined packed-B sliver");
                T* dst = pb_slots[st.b_slot] + c0 * st.ki;
                if (call.tb) {
                    pack_b_panel_transposed(call.b + (st.n0 + c0) * call.ldb
                                                + st.k0,
                                            call.ldb, st.ki, cols, nr, dst);
                } else {
                    pack_b_panel(call.b + st.k0 * call.ldb + (st.n0 + c0),
                                 call.ldb, st.ki, cols, nr, dst);
                }
            }
        };
        // One mr row band of step st's block computation.
        auto compute_item = [&](const BlockStep& st, const T* pb, index_t band) {
            const bool obs_tiles = obs::metrics_enabled();
            schedshake::interleave_point(schedshake::Point::kComputeItem);
            const index_t r = band * mr;
            const index_t mrows = std::min(mr, st.mi - r);
            {
                const racecheck::AccessSite site{st.step, st.coord.m,
                                                 st.coord.n, st.coord.k,
                                                 racecheck::Phase::kCompute};
                racecheck::region_access(rc_pa_ids[st.a_slot], band,
                                         racecheck::AccessKind::kRead, site);
                if (!use_prepacked) {
                    racecheck::region_access_range(
                        rc_pb_ids[st.b_slot], 0, ceil_div(st.ni, nr),
                        racecheck::AccessKind::kRead, site);
                }
                racecheck::region_access_block(
                    rc_c.id, r, r + mrows, 0, ceil_div(st.ni, nr),
                    racecheck::AccessKind::kWrite, site);
            }
            require_extent(r * st.ki, mr * st.ki, pa_cap,
                           "pipelined compute A sliver");
            const T* a_sliver = pa_slots[st.a_slot] + r * st.ki;
            for (index_t j = 0; j < st.ni; j += nr) {
                const index_t ncols = std::min(nr, st.ni - j);
                require_extent((j / nr) * nr * st.ki, nr * st.ki, pb_cap,
                               "pipelined compute B sliver");
                const T* b_sliver = pb + (j / nr) * nr * st.ki;
                require_extent(r * st.ni + j, (mrows - 1) * st.ni + ncols,
                               cb_cap, "pipelined compute C tile");
                const std::uint64_t tile_t0 =
                    obs_tiles ? obs::now_ns() : 0;
                run_microkernel_tile(kernel, st.ki, a_sliver, b_sliver,
                                     cb + r * st.ni + j, st.ni, mrows, ncols,
                                     /*accumulate=*/true, scratch);
                if (obs_tiles) {
                    obs::histogram_observe(
                        tile_latency_hist(),
                        static_cast<double>(obs::now_ns() - tile_t0));
                }
            }
        };
        // One group of rows of a departing column's writeback to user C.
        auto flush_item = [&](const BlockStep& st, index_t item) {
            schedshake::interleave_point(schedshake::Point::kFlushItem);
            const T beta_eff = st.flush_revisit ? T(1) : call.beta;
            const index_t r0 = item * kRowGroup;
            const index_t r1 = std::min(st.flush_mi, r0 + kRowGroup);
            racecheck::region_access_block(
                rc_c.id, r0, r1, 0, ceil_div(st.flush_ni, nr),
                racecheck::AccessKind::kRead,
                {st.step, st.coord.m, st.coord.n, st.coord.k,
                 racecheck::Phase::kFlush});
            require_extent(r0 * st.flush_ni, (r1 - r0) * st.flush_ni,
                           cb_cap, "pipelined flush source rows");
            require_extent(st.flush_dst + r0 * call.ldc,
                           (r1 - r0 - 1) * call.ldc + st.flush_ni,
                           user_c_cap, "pipelined flush into user C");
            unpack_c_block_scaled(cb + r0 * st.flush_ni, r1 - r0,
                                  st.flush_ni,
                                  call.c + st.flush_dst + r0 * call.ldc,
                                  call.ldc, call.alpha, beta_eff);
        };
        // One group of rows of the fresh local C surface zeroed for a new
        // column.
        auto zero_item = [&](const BlockStep& st, index_t item) {
            schedshake::interleave_point(schedshake::Point::kFlushItem);
            const index_t r0 = item * kRowGroup;
            const index_t r1 = std::min(st.mi, r0 + kRowGroup);
            racecheck::region_access_block(
                rc_c.id, r0, r1, 0, ceil_div(st.ni, nr),
                racecheck::AccessKind::kWrite,
                {st.step, st.coord.m, st.coord.n, st.coord.k,
                 racecheck::Phase::kFlush});
            require_extent(r0 * st.ni, (r1 - r0) * st.ni, cb_cap,
                           "pipelined zero rows");
            std::memset(cb + r0 * st.ni, 0,
                        static_cast<std::size_t>((r1 - r0) * st.ni)
                            * sizeof(T));
        };

        auto pack_items_of = [&](const BlockStep* st) {
            const index_t na = st != nullptr && st->pack_a
                ? ceil_div(ceil_div(st->mi, mr), kPackAGroup)
                : 0;
            const index_t nbv = st != nullptr && st->pack_b
                ? ceil_div(ceil_div(st->ni, nr), kPackBGroup)
                : 0;
            return std::pair<index_t, index_t>{na, nbv};
        };
        // `co_issued`: the item runs in a phase that also carries compute
        // items, i.e. the pipeline kept this fetch off the critical path
        // (it overlaps with compute whenever spare hardware threads exist).
        auto do_pack_item = [&](const BlockStep& st, index_t na, index_t item,
                                bool co_issued) {
            const bool is_a = item < na;
            const double d = timed_item(
                is_a ? "pack.A" : "pack.B", obs::Phase::kPack, st,
                is_a ? item : item - na, [&] {
                    if (is_a) {
                        pack_a_item(st, item);
                    } else {
                        pack_b_item(st, item - na);
                    }
                });
            pack_s += d;
            if (co_issued) hidden_s += d;
        };

        // Pipeline fill: pack block 0's surfaces and zero the first local
        // C surface.
        {
            const BlockStep& s0 = plan.steps[0];
            const auto [na, nbv] = pack_items_of(&s0);
            const index_t nzero = ceil_div(s0.mi, kRowGroup);
            run_phase(na + nbv + nzero, [&](index_t item) {
                if (item < na + nbv) {
                    do_pack_item(s0, na, item, /*co_issued=*/false);
                } else {
                    const index_t zi = item - na - nbv;
                    flush_s += timed_item("flush.zero", obs::Phase::kFlush,
                                          s0, zi, [&] { zero_item(s0, zi); });
                }
            });
        }

        for (index_t t = 0; t < steps; ++t) {
            const BlockStep& st = plan.steps[static_cast<std::size_t>(t)];
            if (st.c_change && t > 0) {
                // Column boundary: write the departing surface back, then
                // reset the local surface for the new column. Two phases —
                // the flush must read the buffer before the zero scrubs it.
                run_phase(ceil_div(st.flush_mi, kRowGroup),
                          [&](index_t item) {
                    flush_s += timed_item("flush.write", obs::Phase::kFlush,
                                          st, item,
                                          [&] { flush_item(st, item); });
                });
                run_phase(ceil_div(st.mi, kRowGroup), [&](index_t item) {
                    flush_s += timed_item("flush.zero", obs::Phase::kFlush,
                                          st, item,
                                          [&] { zero_item(st, item); });
                });
            }
            // Main phase: compute block t while packing block t+1's
            // non-shared surfaces into the other buffer halves. Pack items
            // come first in the index space so the next block's DRAM fetch
            // starts immediately and spreads over the block's compute time
            // (the constant-bandwidth property, §3).
            const BlockStep* next = t + 1 < steps
                ? &plan.steps[static_cast<std::size_t>(t + 1)]
                : nullptr;
            const auto [na, nbv] = pack_items_of(next);
            const index_t bands = ceil_div(st.mi, mr);
            const T* pb = use_prepacked
                ? call.prepacked->panel(st.coord.k, st.coord.n)
                : pb_slots[st.b_slot];
            run_phase(na + nbv + bands, [&](index_t item) {
                if (item < na + nbv) {
                    do_pack_item(*next, na, item, /*co_issued=*/true);
                } else {
                    const index_t band = item - na - nbv;
                    compute_s +=
                        timed_item("compute", obs::Phase::kCompute, st, band,
                                   [&] { compute_item(st, pb, band); });
                }
            });
        }

        // Pipeline drain: flush the last live column.
        run_phase(ceil_div(final_flush.flush_mi, kRowGroup),
                  [&](index_t item) {
            flush_s += timed_item("flush.write", obs::Phase::kFlush,
                                  final_flush, item,
                                  [&] { flush_item(final_flush, item); });
        });

        worker_pack[static_cast<std::size_t>(tid)] = pack_s;
        worker_compute[static_cast<std::size_t>(tid)] = compute_s;
        worker_flush[static_cast<std::size_t>(tid)] = flush_s;
        worker_hidden[static_cast<std::size_t>(tid)] = hidden_s;
    });
    const double team_wall = team_timer.seconds();

    double pack_total = 0, compute_total = 0, flush_total = 0,
           hidden_total = 0;
    for (int i = 0; i < p; ++i) {
        pack_total += worker_pack[static_cast<std::size_t>(i)];
        compute_total += worker_compute[static_cast<std::size_t>(i)];
        flush_total += worker_flush[static_cast<std::size_t>(i)];
        hidden_total += worker_hidden[static_cast<std::size_t>(i)];
    }
    stats_.pack_seconds = pack_total / p;
    stats_.compute_seconds = compute_total / p;
    stats_.flush_seconds = flush_total / p;
    stats_.stall_seconds = std::max(
        0.0, team_wall - (pack_total + compute_total + flush_total) / p);
    stats_.overlap_efficiency =
        pack_total > 0 ? hidden_total / pack_total : 0.0;
    stats_.pipelined = true;
}

template class CakeGemmT<float>;
template class CakeGemmT<double>;

void cake_sgemm(const float* a, const float* b, float* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const CakeOptions& options, CakeStats* stats)
{
    CakeGemm gemm(pool, options);
    gemm.multiply(a, options.op_a == Op::kTranspose ? m : k, b,
                  options.op_b == Op::kTranspose ? k : n, c, n, m, n, k);
    if (stats != nullptr) *stats = gemm.stats();
}

void cake_dgemm(const double* a, const double* b, double* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const CakeOptions& options, CakeStats* stats)
{
    CakeGemmD gemm(pool, options);
    gemm.multiply(a, options.op_a == Op::kTranspose ? m : k, b,
                  options.op_b == Op::kTranspose ? k : n, c, n, m, n, k);
    if (stats != nullptr) *stats = gemm.stats();
}

Matrix cake_gemm(const Matrix& a, const Matrix& b, ThreadPool& pool,
                 const CakeOptions& options, CakeStats* stats)
{
    CAKE_CHECK(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols());
    cake_sgemm(a.data(), b.data(), c.data(), a.rows(), b.cols(), a.cols(),
               pool, options, stats);
    return c;
}

MatrixD cake_gemm(const MatrixD& a, const MatrixD& b, ThreadPool& pool,
                  const CakeOptions& options, CakeStats* stats)
{
    CAKE_CHECK(a.cols() == b.rows());
    MatrixD c(a.rows(), b.cols());
    cake_dgemm(a.data(), b.data(), c.data(), a.rows(), b.cols(), a.cols(),
               pool, options, stats);
    return c;
}

}  // namespace cake
