#include "core/cake_gemm.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "pack/pack.hpp"

namespace cake {

template <typename T>
CakeGemmT<T>::CakeGemmT(ThreadPool& pool, CakeOptions options)
    : pool_(pool), options_(std::move(options)),
      machine_(options_.machine ? *options_.machine : host_machine()),
      kernel_(options_.isa ? microkernel_for_of<T>(*options_.isa)
                           : best_microkernel_of<T>())
{
    if (options_.p <= 0 || options_.p > pool_.size())
        options_.p = pool_.size();
}

template <typename T>
void CakeGemmT<T>::multiply(const T* a, index_t lda, const T* b, index_t ldb,
                            T* c, index_t ldc, index_t m, index_t n,
                            index_t k)
{
    multiply_scaled(a, lda, b, ldb, c, ldc, m, n, k, T(1),
                    options_.accumulate ? T(1) : T(0));
}

template <typename T>
void CakeGemmT<T>::multiply_scaled(const T* a, index_t lda, const T* b,
                                   index_t ldb, T* c, index_t ldc, index_t m,
                                   index_t n, index_t k, T alpha_s, T beta_s)
{
    multiply_impl(a, lda, b, ldb, c, ldc, m, n, k, alpha_s, beta_s, nullptr);
}

template <typename T>
PackedB<T> CakeGemmT<T>::pack_weights(const T* b, index_t ldb, index_t k,
                                      index_t n)
{
    CAKE_CHECK(k >= 1 && n >= 1);
    const bool tb = options_.op_b == Op::kTranspose;
    CAKE_CHECK_MSG(ldb >= (tb ? k : n), "ldb too small for op(B)");

    TilingOptions topts;
    topts.mc = options_.mc;
    topts.alpha = options_.alpha;
    topts.elem_bytes = sizeof(T);
    PackedB<T> packed;
    packed.params_ =
        compute_cb_block(machine_, options_.p, kernel_.mr, kernel_.nr, topts);
    packed.k_ = k;
    packed.n_ = n;
    packed.kb_ = ceil_div(k, packed.params_.k_blk);
    packed.nb_ = ceil_div(n, packed.params_.n_blk);
    packed.stride_ = static_cast<std::size_t>(
        packed_b_size(packed.params_.k_blk, packed.params_.n_blk, kernel_.nr));
    packed.data_ = AlignedBuffer<T>(
        static_cast<std::size_t>(packed.kb_ * packed.nb_) * packed.stride_);

    const index_t total_panels = packed.kb_ * packed.nb_;
    pool_.parallel_for(0, total_panels, options_.p,
                       [&](index_t lo, index_t hi) {
        for (index_t slot = lo; slot < hi; ++slot) {
            const index_t k_idx = slot / packed.nb_;
            const index_t n_idx = slot % packed.nb_;
            const index_t k0 = k_idx * packed.params_.k_blk;
            const index_t n0 = n_idx * packed.params_.n_blk;
            const index_t ki = std::min(packed.params_.k_blk, k - k0);
            const index_t ni = std::min(packed.params_.n_blk, n - n0);
            T* dst = packed.data_.data()
                + static_cast<std::size_t>(slot) * packed.stride_;
            if (tb) {
                pack_b_panel_transposed(b + n0 * ldb + k0, ldb, ki, ni,
                                        kernel_.nr, dst);
            } else {
                pack_b_panel(b + k0 * ldb + n0, ldb, ki, ni, kernel_.nr,
                             dst);
            }
        }
    });
    return packed;
}

template <typename T>
void CakeGemmT<T>::multiply_prepacked(const T* a, index_t lda,
                                      const PackedB<T>& b, T* c, index_t ldc,
                                      index_t m)
{
    CAKE_CHECK_MSG(!b.empty(), "PackedB is empty");
    multiply_impl(a, lda, nullptr, b.n(), c, ldc, m, b.n(), b.k(), T(1),
                  options_.accumulate ? T(1) : T(0), &b);
}

template <typename T>
void CakeGemmT<T>::multiply_impl(const T* a, index_t lda, const T* b,
                                 index_t ldb, T* c, index_t ldc, index_t m,
                                 index_t n, index_t k, T alpha_s, T beta_s,
                                 const PackedB<T>* prepacked)
{
    CAKE_CHECK(m >= 0 && n >= 0 && k >= 0);
    const bool ta = options_.op_a == Op::kTranspose;
    const bool tb = options_.op_b == Op::kTranspose;
    CAKE_CHECK_MSG(lda >= (ta ? m : k), "lda too small for op(A)");
    if (prepacked == nullptr) {
        CAKE_CHECK_MSG(ldb >= (tb ? k : n), "ldb too small for op(B)");
    }
    CAKE_CHECK(ldc >= n);
    if (m == 0 || n == 0) return;
    if (k == 0 || alpha_s == T(0)) {
        // Degenerate product contributes nothing: apply the beta epilogue.
        for (index_t i = 0; i < m; ++i) {
            T* row = c + i * ldc;
            if (beta_s == T(0)) std::fill(row, row + n, T(0));
            else if (beta_s != T(1))
                for (index_t j = 0; j < n; ++j) row[j] *= beta_s;
        }
        return;
    }

    Timer total_timer;
    const int p = options_.p;

    TilingOptions topts;
    topts.mc = options_.mc;
    topts.alpha = options_.alpha;
    topts.elem_bytes = sizeof(T);
    const CbBlockParams params =
        compute_cb_block(machine_, p, kernel_.mr, kernel_.nr, topts);
    if (prepacked != nullptr) {
        CAKE_CHECK_MSG(prepacked->params() == params,
                       "PackedB geometry does not match this context");
    }

    stats_ = CakeStats{};
    stats_.params = params;

    const index_t mb = ceil_div(m, params.m_blk);
    const index_t nb = ceil_div(n, params.n_blk);
    const index_t kb = ceil_div(k, params.k_blk);
    stats_.grid_mb = mb;
    stats_.grid_nb = nb;
    stats_.grid_kb = kb;

    // §2.2: when M > N the M dimension runs outermost so the larger B
    // surface is reused before A.
    const std::vector<BlockCoord> order =
        build_schedule(options_.schedule, mb, nb, kb, /*n_outermost=*/n >= m);

    pack_a_.ensure(static_cast<std::size_t>(
        packed_a_size(params.m_blk, params.k_blk, kernel_.mr)));
    if (prepacked == nullptr) {
        pack_b_.ensure(static_cast<std::size_t>(
            packed_b_size(params.k_blk, params.n_blk, kernel_.nr)));
    }
    c_block_.ensure(static_cast<std::size_t>(params.m_blk)
                    * static_cast<std::size_t>(params.n_blk));
    if (scratch_.size() < static_cast<std::size_t>(p)) {
        scratch_.resize(static_cast<std::size_t>(p));
    }
    for (auto& s : scratch_) {
        s.ensure(static_cast<std::size_t>(kernel_.mr * kernel_.nr));
    }

    // Per-(m, n) bookkeeping: how many K blocks have accumulated into the
    // local C surface, and whether the surface already visited user memory
    // (only possible under non-K-first ablation schedules).
    std::vector<index_t> k_done(static_cast<std::size_t>(mb * nb), 0);
    std::vector<char> flushed(static_cast<std::size_t>(mb * nb), 0);

    BlockCoord last{-1, -1, -1};
    bool have_last = false;
    index_t cur_mi = 0, cur_ni = 0;  // extents of the live C surface

    auto block_extent = [](index_t idx, index_t blk, index_t total) {
        const index_t start = idx * blk;
        return std::min(blk, total - start);
    };

    auto flush_c = [&](const BlockCoord& coord, index_t mi, index_t ni) {
        const std::size_t slot =
            static_cast<std::size_t>(coord.m * nb + coord.n);
        // First visit applies the caller's beta; revisits (spilled partial
        // surfaces under ablation schedules) must accumulate.
        const T beta_eff = flushed[slot] != 0 ? T(1) : beta_s;
        T* dst = c + coord.m * params.m_blk * ldc + coord.n * params.n_blk;
        pool_.parallel_for(0, mi, p, [&](index_t r0, index_t r1) {
            unpack_c_block_scaled(c_block_.data() + r0 * ni, r1 - r0, ni,
                                  dst + r0 * ldc, ldc, alpha_s, beta_eff);
        });
        flushed[slot] = 1;
        ++stats_.c_flushes;
        const auto bytes =
            static_cast<std::uint64_t>(mi) * static_cast<std::uint64_t>(ni)
            * sizeof(T);
        stats_.dram_write_bytes += bytes;
        if (beta_eff != T(0)) stats_.dram_read_bytes += bytes;  // RMW
        if (k_done[slot] < kb) ++stats_.c_partial_spills;
    };

    for (const BlockCoord& coord : order) {
        const index_t mi = block_extent(coord.m, params.m_blk, m);
        const index_t ni = block_extent(coord.n, params.n_blk, n);
        const index_t ki = block_extent(coord.k, params.k_blk, k);
        const index_t m0 = coord.m * params.m_blk;
        const index_t n0 = coord.n * params.n_blk;
        const index_t k0 = coord.k * params.k_blk;

        // --- surface sharing: only fetch (pack) surfaces that changed ---
        Timer pack_timer;
        const bool a_shared =
            have_last && last.m == coord.m && last.k == coord.k;
        if (!a_shared) {
            pool_.parallel_for(0, ceil_div(mi, kernel_.mr), p,
                               [&](index_t s0, index_t s1) {
                const index_t r0 = s0 * kernel_.mr;
                const index_t r1 = std::min(mi, s1 * kernel_.mr);
                if (ta) {
                    pack_a_panel_transposed(a + k0 * lda + (m0 + r0), lda,
                                            r1 - r0, ki, kernel_.mr,
                                            pack_a_.data() + r0 * ki);
                } else {
                    pack_a_panel(a + (m0 + r0) * lda + k0, lda, r1 - r0, ki,
                                 kernel_.mr, pack_a_.data() + r0 * ki);
                }
            });
            ++stats_.a_packs;
            stats_.dram_read_bytes +=
                static_cast<std::uint64_t>(mi) * ki * sizeof(T);
        }
        const T* pb_block = pack_b_.data();
        const bool b_shared =
            have_last && last.k == coord.k && last.n == coord.n;
        if (prepacked != nullptr) {
            // Weights are already in panel format: no pack work, but the
            // surface still streams DRAM -> local memory once per block.
            pb_block = prepacked->panel(coord.k, coord.n);
            if (!b_shared) {
                stats_.dram_read_bytes +=
                    static_cast<std::uint64_t>(ki) * ni * sizeof(T);
            }
        } else if (!b_shared) {
            pool_.parallel_for(0, ceil_div(ni, kernel_.nr), p,
                               [&](index_t s0, index_t s1) {
                const index_t c0 = s0 * kernel_.nr;
                const index_t c1 = std::min(ni, s1 * kernel_.nr);
                if (tb) {
                    pack_b_panel_transposed(b + (n0 + c0) * ldb + k0, ldb, ki,
                                            c1 - c0, kernel_.nr,
                                            pack_b_.data() + c0 * ki);
                } else {
                    pack_b_panel(b + k0 * ldb + (n0 + c0), ldb, ki, c1 - c0,
                                 kernel_.nr, pack_b_.data() + c0 * ki);
                }
            });
            ++stats_.b_packs;
            stats_.dram_read_bytes +=
                static_cast<std::uint64_t>(ki) * ni * sizeof(T);
        }
        const bool c_shared =
            have_last && last.m == coord.m && last.n == coord.n;
        if (!c_shared) {
            if (have_last) flush_c(last, cur_mi, cur_ni);
            // Fresh local C surface for the new (m, n) column.
            pool_.parallel_for(0, mi, p, [&](index_t r0, index_t r1) {
                std::memset(c_block_.data() + r0 * ni, 0,
                            static_cast<std::size_t>((r1 - r0) * ni)
                                * sizeof(T));
            });
            const std::size_t slot =
                static_cast<std::size_t>(coord.m * nb + coord.n);
            if (flushed[slot] != 0) {
                // Non-K-first schedule revisiting a spilled surface: its
                // partial results must come back from external memory.
                stats_.dram_read_bytes +=
                    static_cast<std::uint64_t>(mi) * ni * sizeof(T);
            }
            cur_mi = mi;
            cur_ni = ni;
        }
        stats_.pack_seconds += pack_timer.seconds();

        // --- block computation: p workers, one row band each. Full blocks
        // give each core its mc-row band (one A sub-block per core,
        // Fig. 6b); edge blocks split their rows evenly so no core idles
        // (band == mc whenever mi == p*mc). ---
        Timer compute_timer;
        const MicroKernelT<T> kernel = kernel_;
        const T* pa = pack_a_.data();
        const T* pb = pb_block;
        T* cb = c_block_.data();
        const index_t band =
            round_up(ceil_div(mi, static_cast<index_t>(p)), kernel_.mr);
        pool_.run(p, [&, kernel, pa, pb, cb, mi, ni, ki, band](int tid) {
            const index_t r_begin = std::min<index_t>(tid * band, mi);
            const index_t r_end = std::min<index_t>((tid + 1) * band, mi);
            T* scratch = scratch_[static_cast<std::size_t>(tid)].data();
            for (index_t r = r_begin; r < r_end; r += kernel.mr) {
                const index_t mrows = std::min(kernel.mr, r_end - r);
                const T* a_sliver = pa + (r / kernel.mr) * kernel.mr * ki;
                for (index_t j = 0; j < ni; j += kernel.nr) {
                    const index_t ncols = std::min(kernel.nr, ni - j);
                    const T* b_sliver =
                        pb + (j / kernel.nr) * kernel.nr * ki;
                    run_microkernel_tile(kernel, ki, a_sliver, b_sliver,
                                         cb + r * ni + j, ni, mrows, ncols,
                                         /*accumulate=*/true, scratch);
                }
            }
        });
        stats_.compute_seconds += compute_timer.seconds();

        ++k_done[static_cast<std::size_t>(coord.m * nb + coord.n)];
        ++stats_.blocks_executed;
        last = coord;
        have_last = true;
    }
    if (have_last) flush_c(last, cur_mi, cur_ni);

    stats_.total_seconds = total_timer.seconds();
}

template class CakeGemmT<float>;
template class CakeGemmT<double>;

void cake_sgemm(const float* a, const float* b, float* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const CakeOptions& options, CakeStats* stats)
{
    CakeGemm gemm(pool, options);
    gemm.multiply(a, options.op_a == Op::kTranspose ? m : k, b,
                  options.op_b == Op::kTranspose ? k : n, c, n, m, n, k);
    if (stats != nullptr) *stats = gemm.stats();
}

void cake_dgemm(const double* a, const double* b, double* c, index_t m,
                index_t n, index_t k, ThreadPool& pool,
                const CakeOptions& options, CakeStats* stats)
{
    CakeGemmD gemm(pool, options);
    gemm.multiply(a, options.op_a == Op::kTranspose ? m : k, b,
                  options.op_b == Op::kTranspose ? k : n, c, n, m, n, k);
    if (stats != nullptr) *stats = gemm.stats();
}

Matrix cake_gemm(const Matrix& a, const Matrix& b, ThreadPool& pool,
                 const CakeOptions& options, CakeStats* stats)
{
    CAKE_CHECK(a.cols() == b.rows());
    Matrix c(a.rows(), b.cols());
    cake_sgemm(a.data(), b.data(), c.data(), a.rows(), b.cols(), a.cols(),
               pool, options, stats);
    return c;
}

MatrixD cake_gemm(const MatrixD& a, const MatrixD& b, ThreadPool& pool,
                  const CakeOptions& options, CakeStats* stats)
{
    CAKE_CHECK(a.cols() == b.rows());
    MatrixD c(a.rows(), b.cols());
    cake_dgemm(a.data(), b.data(), c.data(), a.rows(), b.cols(), a.cols(),
               pool, options, stats);
    return c;
}

}  // namespace cake
