// Multi-source PageRank via dense power iteration — a scientific-computing
// use of the GEMM API: R <- d * P^T R + (1-d)/n * S for a batch of
// personalization vectors, where the batched iteration is one GEMM per
// step. Demonstrates accumulate mode (C += A*B) and convergence checking.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/cake_gemm.hpp"

int main(int argc, char** argv)
{
    using namespace cake;
    const index_t n = argc > 1 ? std::atoll(argv[1]) : 512;   // nodes
    const index_t sources = argc > 2 ? std::atoll(argv[2]) : 64;
    const float damping = 0.85f;

    // Random directed graph: column-stochastic transition matrix P^T
    // (row r, col c) = probability of moving *to* r *from* c.
    Rng rng(11);
    Matrix pt(n, n);
    {
        // Start from random adjacency with ~8 out-edges per node.
        Matrix adj(n, n);
        for (index_t c = 0; c < n; ++c) {
            for (int e = 0; e < 8; ++e) {
                adj.at(static_cast<index_t>(rng.next_below(
                           static_cast<std::uint64_t>(n))),
                       c) = 1.0f;
            }
        }
        for (index_t c = 0; c < n; ++c) {
            float deg = 0;
            for (index_t r = 0; r < n; ++r) deg += adj.at(r, c);
            if (deg == 0) {  // dangling node: teleport uniformly
                for (index_t r = 0; r < n; ++r)
                    pt.at(r, c) = 1.0f / static_cast<float>(n);
            } else {
                for (index_t r = 0; r < n; ++r)
                    pt.at(r, c) = damping * adj.at(r, c) / deg;
            }
        }
    }

    // Rank matrix: one column per personalization source.
    Matrix ranks(n, sources);
    ranks.fill(1.0f / static_cast<float>(n));
    Matrix teleport(n, sources);
    for (index_t s = 0; s < sources; ++s) {
        // Source s teleports to node s (personalised PageRank).
        teleport.at(s % n, s) = 1.0f - damping;
    }

    ThreadPool pool(host_machine().cores);
    CakeGemm gemm(pool);

    Timer timer;
    int iters = 0;
    double delta = 1.0;
    Matrix next(n, sources);
    while (delta > 1e-6 && iters < 100) {
        // next = teleport; next += P^T * ranks  (accumulate-mode GEMM)
        for (index_t i = 0; i < n * sources; ++i)
            next.data()[i] = teleport.data()[i];
        CakeOptions acc;
        acc.accumulate = true;
        CakeGemm step(pool, acc);
        step.multiply(pt.data(), n, ranks.data(), sources, next.data(),
                      sources, n, sources, n);

        delta = max_abs_diff(next, ranks);
        std::swap(next, ranks);
        ++iters;
    }
    const double seconds = timer.seconds();

    // Sanity: every column sums to ~1 (stochastic fixed point). Note the
    // damped mass of dangling-free columns is conserved by construction.
    double worst_sum_err = 0;
    for (index_t s = 0; s < sources; ++s) {
        double sum = 0;
        for (index_t r = 0; r < n; ++r) sum += ranks.at(r, s);
        worst_sum_err = std::max(worst_sum_err, std::abs(sum - 1.0));
    }

    std::cout << "Personalised PageRank: " << n << " nodes, " << sources
              << " sources\n"
              << "  converged in " << iters << " iterations ("
              << seconds * 1e3 << " ms, "
              << 2.0 * n * n * sources * iters / seconds / 1e9
              << " GFLOP/s)\n"
              << "  final delta      : " << delta << "\n"
              << "  worst column-sum error vs 1.0: " << worst_sum_err
              << (worst_sum_err < 1e-2 ? "  (OK)" : "  (FAIL)") << "\n";
    return worst_sum_err < 1e-2 ? 0 : 1;
}
