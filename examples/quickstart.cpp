// Quickstart: multiply two matrices with CAKE and inspect the stats.
//
//   $ ./examples/quickstart [size]
//
// Demonstrates the drop-in API: create a thread pool, call cake_sgemm,
// read back throughput and modelled DRAM traffic.
#include <cstdlib>
#include <iostream>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/cake_gemm.hpp"
#include "ref/naive_gemm.hpp"

int main(int argc, char** argv)
{
    using namespace cake;
    const index_t size = argc > 1 ? std::atoll(argv[1]) : 768;

    Rng rng(42);
    Matrix a(size, size);
    Matrix b(size, size);
    a.fill_random(rng);
    b.fill_random(rng);

    ThreadPool pool(host_machine().cores);
    CakeStats stats;
    const Matrix c = cake_gemm(a, b, pool, CakeOptions{}, &stats);

    const GemmShape shape{size, size, size};
    std::cout << "CAKE SGEMM " << size << " x " << size << " x " << size
              << "\n"
              << "  kernel          : " << best_microkernel().name << "\n"
              << "  CB block        : " << stats.params.m_blk << " x "
              << stats.params.k_blk << " x " << stats.params.n_blk
              << "  (p=" << stats.params.p << ", mc=kc=" << stats.params.mc
              << ", alpha=" << stats.params.alpha << ")\n"
              << "  blocks executed : " << stats.blocks_executed << "\n"
              << "  time            : " << stats.total_seconds * 1e3
              << " ms\n"
              << "  throughput      : " << stats.gflops(shape) << " GFLOP/s\n"
              << "  ext. traffic    : "
              << static_cast<double>(stats.dram_read_bytes
                                     + stats.dram_write_bytes)
            / 1e6
              << " MB (avg " << stats.avg_dram_bw_gbs() << " GB/s)\n";

    // Verify against the double-precision oracle (small sizes only).
    if (size <= 1024) {
        const double err = max_abs_diff(c, oracle_gemm(a, b));
        std::cout << "  max |err|       : " << err
                  << (err <= gemm_tolerance(size) ? "  (OK)" : "  (FAIL)")
                  << "\n";
        if (err > gemm_tolerance(size)) return 1;
    }
    return 0;
}
