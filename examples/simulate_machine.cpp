// Architecture-simulator CLI (§6.2): run a CAKE or GOTO pipeline on any
// machine preset and core count.
//
//   $ ./examples/simulate_machine [machine] [size] [cores] [cake|goto] [trace.json]
//
// e.g. ./examples/simulate_machine arm 3000 4 cake /tmp/trace.json
// The optional fifth argument writes a chrome://tracing / Perfetto JSON
// timeline of every fetch/compute/drain interval.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "machine/machine.hpp"
#include "sim/machine_sim.hpp"

int main(int argc, char** argv)
{
    using namespace cake;
    const std::string machine_name = argc > 1 ? argv[1] : "intel";
    const index_t size = argc > 2 ? std::atoll(argv[2]) : 4608;
    const MachineSpec machine = machine_by_name(machine_name);
    const int cores = argc > 3 ? std::atoi(argv[3]) : machine.cores;
    const std::string algo = argc > 4 ? argv[4] : "cake";

    sim::SimConfig config;
    config.machine = machine;
    config.p = cores;
    config.shape = {size, size, size};
    config.algorithm =
        algo == "goto" ? sim::Algorithm::kGoto : sim::Algorithm::kCake;
    sim::Timeline timeline;
    if (argc > 5) config.timeline = &timeline;

    const sim::SimResult r = sim::simulate(config);
    if (argc > 5) {
        std::ofstream out(argv[5]);
        timeline.write_chrome_trace(out);
        std::cout << "Wrote " << timeline.slices().size()
                  << " timeline slices to " << argv[5] << "\n";
    }

    std::cout << "Simulated " << algo << " on " << machine.name << ", "
              << cores << " cores, " << size << "^2 matrices\n";
    if (config.algorithm == sim::Algorithm::kCake) {
        std::cout << "  CB block        : " << r.params.m_blk << " x "
                  << r.params.k_blk << " x " << r.params.n_blk
                  << " (mc=" << r.params.mc << ", alpha=" << r.params.alpha
                  << ")\n";
    }
    std::cout << "  pipeline steps  : " << r.steps << "\n"
              << "  simulated time  : " << r.seconds << " s\n"
              << "  throughput      : " << r.gflops << " GFLOP/s (peak "
              << machine.peak_gflops(cores) << ")\n"
              << "  avg DRAM BW     : " << r.avg_dram_bw_gbs << " GB/s (of "
              << machine.dram_bw_gbs << " available)\n"
              << "  DRAM busy       : " << r.dram_busy_frac * 100 << " %\n"
              << "  cores busy      : " << r.core_busy_frac * 100 << " %\n"
              << "  packets         :";
    for (int kind = 0; kind < 5; ++kind) {
        if (r.packets.count[kind] == 0) continue;
        std::cout << "  "
                  << sim::packet_kind_name(static_cast<sim::PacketKind>(kind))
                  << "=" << r.packets.count[kind];
    }
    std::cout << "\n";
    return 0;
}
