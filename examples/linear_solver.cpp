// SPD linear solver example: normal-equations least squares via blocked
// Cholesky, with every BLAS3 operation (Gram matrix, trailing updates)
// routed through CAKE GEMM/SYRK — scientific computing on the library.
//
//   $ ./examples/linear_solver [rows] [cols] [nrhs]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/blas_like.hpp"
#include "core/cake_gemm.hpp"
#include "linalg/cholesky.hpp"

int main(int argc, char** argv)
{
    using namespace cake;
    const index_t rows = argc > 1 ? std::atoll(argv[1]) : 2000;
    const index_t cols = argc > 2 ? std::atoll(argv[2]) : 400;
    const index_t nrhs = argc > 3 ? std::atoll(argv[3]) : 8;

    Rng rng(77);
    ThreadPool pool(host_machine().cores);

    // Over-determined system X * w = y with known w.
    Matrix x(rows, cols);
    x.fill_random(rng, -1.0f, 1.0f);
    Matrix w_true(cols, nrhs);
    w_true.fill_random(rng, -1.0f, 1.0f);
    Matrix y(rows, nrhs);
    {
        CakeGemm gemm(pool);
        gemm.multiply(x.data(), cols, w_true.data(), nrhs, y.data(), nrhs,
                      rows, nrhs, cols);
    }

    Timer timer;
    // Normal equations: (X^T X + lambda I) w = X^T y.
    Matrix gram(cols, cols);
    cake_syrk_t<float>(pool, x.data(), cols, gram.data(), cols, cols, rows);
    for (index_t i = 0; i < cols; ++i) gram.at(i, i) += 1e-3f;

    Matrix rhs(cols, nrhs);
    {
        CakeOptions ta;
        ta.op_a = Op::kTranspose;
        CakeGemm gemm(pool, ta);
        gemm.multiply(x.data(), cols, y.data(), nrhs, rhs.data(), nrhs,
                      cols, nrhs, rows);
    }

    const Matrix w = linalg::solve_spd(gram, rhs, pool);
    const double seconds = timer.seconds();

    const double flops = static_cast<double>(rows) * cols * cols  // syrk
        + 2.0 * rows * cols * nrhs                                // rhs
        + static_cast<double>(cols) * cols * cols / 3.0;          // chol
    double worst = 0;
    for (index_t i = 0; i < cols; ++i)
        for (index_t j = 0; j < nrhs; ++j)
            worst = std::max(worst,
                             std::abs(static_cast<double>(w.at(i, j))
                                      - w_true.at(i, j)));

    std::cout << "Least squares via normal equations + blocked Cholesky\n"
              << "  system          : " << rows << " x " << cols << ", "
              << nrhs << " right-hand sides\n"
              << "  time            : " << seconds * 1e3 << " ms ("
              << flops / seconds / 1e9 << " GFLOP/s through CAKE)\n"
              << "  max |w - w_true|: " << worst
              << (worst < 5e-2 ? "  (OK)" : "  (FAIL)") << "\n";
    return worst < 5e-2 ? 0 : 1;
}
