// DNN inference example — the workload the paper's introduction motivates
// ("most computations in the forward pass of a convolutional neural
// network consist of one matrix multiplication per convolutional layer").
//
// Builds a small LeNet-style CNN on synthetic 28x28 images using the
// library's conv2d module (im2col + CAKE GEMM, stride/padding capable)
// and a batched GEMM for the fully connected layer. Cross-checks the
// first image's first conv layer against the direct-convolution oracle.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "conv/conv2d.hpp"
#include "core/cake_gemm.hpp"

namespace {

using namespace cake;

void relu(float* data, index_t n)
{
    for (index_t i = 0; i < n; ++i) data[i] = std::max(data[i], 0.0f);
}

}  // namespace

int main(int argc, char** argv)
{
    const index_t batch = argc > 1 ? std::atoll(argv[1]) : 32;
    Rng rng(7);
    ThreadPool pool(host_machine().cores);

    // LeNet-ish: conv 1->8 (5x5), conv 8->16 (5x5, pad 1, stride 2),
    // FC (16*11*11) -> 10.
    conv::Conv2dParams conv1;
    conv1.in_channels = 1;
    conv1.out_channels = 8;
    conv1.kernel_h = conv1.kernel_w = 5;

    conv::Conv2dParams conv2;
    conv2.in_channels = 8;
    conv2.out_channels = 16;
    conv2.kernel_h = conv2.kernel_w = 5;
    conv2.stride_h = conv2.stride_w = 2;
    conv2.pad_h = conv2.pad_w = 1;

    const index_t h1 = conv::conv_out_dim(28, 5, 1, 0);  // 24
    const index_t h2 = conv::conv_out_dim(h1, 5, 2, 1);  // 11
    const index_t fc_in = conv2.out_channels * h2 * h2;

    Matrix w1(conv1.out_channels, conv1.patch_size());
    Matrix w2(conv2.out_channels, conv2.patch_size());
    Matrix fc(fc_in, 10);
    w1.fill_random(rng, -0.2f, 0.2f);
    w2.fill_random(rng, -0.1f, 0.1f);
    fc.fill_random(rng, -0.05f, 0.05f);

    std::vector<float> images(static_cast<std::size_t>(batch * 28 * 28));
    for (auto& v : images) v = rng.next_float(0.0f, 1.0f);

    Timer timer;
    std::vector<float> act1(
        static_cast<std::size_t>(batch * conv1.out_channels * h1 * h1));
    std::vector<float> act2(
        static_cast<std::size_t>(batch * conv2.out_channels * h2 * h2));
    Matrix logits(batch, 10);

    // Convolution layers (im2col + CAKE GEMM inside the module).
    conv::conv2d_forward(images.data(), batch, 28, 28, w1.data(), conv1,
                         act1.data(), pool);
    relu(act1.data(), static_cast<index_t>(act1.size()));
    conv::conv2d_forward(act1.data(), batch, h1, h1, w2.data(), conv2,
                         act2.data(), pool);
    relu(act2.data(), static_cast<index_t>(act2.size()));

    // Fully connected head: one GEMM over the whole batch (rows = images).
    CakeGemm gemm(pool);
    gemm.multiply(act2.data(), fc_in, fc.data(), 10, logits.data(), 10,
                  batch, 10, fc_in);

    const double seconds = timer.seconds();
    const double conv_flops = 2.0 * batch
        * (static_cast<double>(h1) * h1 * conv1.out_channels
               * conv1.patch_size()
           + static_cast<double>(h2) * h2 * conv2.out_channels
               * conv2.patch_size());
    const double fc_flops = 2.0 * batch * fc_in * 10;
    std::cout << "CNN forward pass, batch " << batch << ": "
              << seconds * 1e3 << " ms  ("
              << (conv_flops + fc_flops) / seconds / 1e9
              << " GFLOP/s via cake_sgemm)\n"
              << "  logits[0] = ";
    for (index_t j = 0; j < 10; ++j) std::cout << logits.at(0, j) << ' ';
    std::cout << "\n";

    // Cross-check image 0's first conv layer against direct convolution.
    std::vector<float> direct(
        static_cast<std::size_t>(conv1.out_channels * h1 * h1));
    conv::conv2d_naive(images.data(), 28, 28, w1.data(), conv1,
                       direct.data());
    // act1 was ReLU'd; rerun layer 1 for image 0 to compare raw values.
    std::vector<float> raw(direct.size());
    conv::conv2d_forward(images.data(), 1, 28, 28, w1.data(), conv1,
                         raw.data(), pool);
    double err = 0;
    for (std::size_t i = 0; i < direct.size(); ++i)
        err = std::max(err,
                       std::abs(static_cast<double>(raw[i]) - direct[i]));
    std::cout << "  conv-vs-direct check: max |err| = " << err
              << (err < 1e-4 ? "  (OK)" : "  (FAIL)") << "\n";
    return err < 1e-4 ? 0 : 1;
}
