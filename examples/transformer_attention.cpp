// Transformer self-attention layer on the CAKE library — the modern DNN
// workload whose skewed GEMM shapes (long sequence x small head dim) sit
// exactly in the region where Fig. 8 shows CAKE's largest advantage.
//
//   $ ./examples/transformer_attention [seq_len] [d_model] [heads]
//
// Computes multi-head attention: Q/K/V projections (3 GEMMs), per-head
// scores Q K^T (transposed-B GEMM), softmax, attention-weighted values,
// and the output projection — all through one reusable CakeGemm context.
// Cross-checks one head's scores against a naive implementation.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/cake_gemm.hpp"

namespace {

using namespace cake;

void softmax_rows(Matrix& m)
{
    for (index_t r = 0; r < m.rows(); ++r) {
        float maxv = m.at(r, 0);
        for (index_t c = 1; c < m.cols(); ++c)
            maxv = std::max(maxv, m.at(r, c));
        float sum = 0;
        for (index_t c = 0; c < m.cols(); ++c) {
            m.at(r, c) = std::exp(m.at(r, c) - maxv);
            sum += m.at(r, c);
        }
        for (index_t c = 0; c < m.cols(); ++c) m.at(r, c) /= sum;
    }
}

}  // namespace

int main(int argc, char** argv)
{
    const index_t seq = argc > 1 ? std::atoll(argv[1]) : 512;
    const index_t d_model = argc > 2 ? std::atoll(argv[2]) : 256;
    const index_t heads = argc > 3 ? std::atoll(argv[3]) : 8;
    const index_t d_head = d_model / heads;
    if (d_head * heads != d_model) {
        std::cerr << "d_model must be divisible by heads\n";
        return 2;
    }

    Rng rng(99);
    Matrix x(seq, d_model);
    x.fill_random(rng, -0.5f, 0.5f);
    Matrix wq(d_model, d_model), wk(d_model, d_model), wv(d_model, d_model),
        wo(d_model, d_model);
    const float init = 1.0f / std::sqrt(static_cast<float>(d_model));
    for (Matrix* w : {&wq, &wk, &wv, &wo}) w->fill_random(rng, -init, init);

    ThreadPool pool(host_machine().cores);
    CakeGemm gemm(pool);
    // Scores need B transposed: S = Q K^T with K stored row-major.
    CakeOptions tb;
    tb.op_b = Op::kTranspose;
    CakeGemm gemm_bt(pool, tb);

    Timer timer;
    double flops = 0;

    // Projections.
    Matrix q(seq, d_model), k(seq, d_model), v(seq, d_model);
    gemm.multiply(x.data(), d_model, wq.data(), d_model, q.data(), d_model,
                  seq, d_model, d_model);
    gemm.multiply(x.data(), d_model, wk.data(), d_model, k.data(), d_model,
                  seq, d_model, d_model);
    gemm.multiply(x.data(), d_model, wv.data(), d_model, v.data(), d_model,
                  seq, d_model, d_model);
    flops += 3 * 2.0 * seq * d_model * d_model;

    // Per-head attention. Head h uses columns [h*d_head, (h+1)*d_head).
    const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
    Matrix context(seq, d_model);
    Matrix scores(seq, seq, /*zero=*/false);
    Matrix first_head_scores(1, 1);
    for (index_t h = 0; h < heads; ++h) {
        const index_t off = h * d_head;
        // S = scale * Q_h K_h^T : skewed GEMM, K = d_head << seq.
        gemm_bt.multiply_scaled(q.data() + off, d_model, k.data() + off,
                                d_model, scores.data(), seq, seq, seq,
                                d_head, scale, 0.0f);
        flops += 2.0 * seq * seq * d_head;
        if (h == 0) {
            first_head_scores = Matrix(seq, seq, false);
            for (index_t i = 0; i < seq * seq; ++i)
                first_head_scores.data()[i] = scores.data()[i];
        }
        softmax_rows(scores);
        // context_h = S V_h (writes the head's column stripe).
        CakeGemm stripe(pool);
        stripe.multiply(scores.data(), seq, v.data() + off, d_model,
                        context.data() + off, d_model, seq, d_head, seq);
        flops += 2.0 * seq * seq * d_head;
    }

    // Output projection.
    Matrix out(seq, d_model);
    gemm.multiply(context.data(), d_model, wo.data(), d_model, out.data(),
                  d_model, seq, d_model, d_model);
    flops += 2.0 * seq * d_model * d_model;

    const double seconds = timer.seconds();
    std::cout << "Multi-head attention: seq=" << seq << " d_model=" << d_model
              << " heads=" << heads << "\n"
              << "  time        : " << seconds * 1e3 << " ms\n"
              << "  throughput  : " << flops / seconds / 1e9
              << " GFLOP/s via cake_sgemm\n";

    // Cross-check head 0 raw scores against a naive dot-product loop.
    double err = 0;
    for (index_t i = 0; i < std::min<index_t>(seq, 32); ++i) {
        for (index_t j = 0; j < std::min<index_t>(seq, 32); ++j) {
            double dot = 0;
            for (index_t d = 0; d < d_head; ++d)
                dot += static_cast<double>(q.at(i, d)) * k.at(j, d);
            err = std::max(err,
                           std::abs(dot * scale
                                    - first_head_scores.at(i, j)));
        }
    }
    std::cout << "  scores check: max |err| = " << err
              << (err < 1e-4 ? "  (OK)" : "  (FAIL)") << "\n";
    return err < 1e-4 ? 0 : 1;
}
