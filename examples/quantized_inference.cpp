// Quantized DNN inference: the same MLP run in float32 and in int8
// (u8 activations x s8 weights -> s32, dequantized per layer), comparing
// outputs and top-1 agreement — the deployment path for the DNN workloads
// the paper's introduction motivates, running on the int8 CAKE GEMM.
//
//   $ ./examples/quantized_inference [batch]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dnn/layers.hpp"

namespace {

using namespace cake;

index_t argmax_row(const Matrix& m, index_t row)
{
    index_t best = 0;
    for (index_t j = 1; j < m.cols(); ++j)
        if (m.at(row, j) > m.at(row, best)) best = j;
    return best;
}

}  // namespace

int main(int argc, char** argv)
{
    const index_t batch = argc > 1 ? std::atoll(argv[1]) : 256;
    Rng rng(31);
    ThreadPool pool(host_machine().cores);

    // A 784 -> 512 -> 256 -> 10 MLP with shared random weights.
    const std::vector<index_t> dims = {784, 512, 256, 10};
    std::vector<Matrix> weights;
    for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
        weights.emplace_back(dims[l], dims[l + 1]);
        const float scale =
            1.0f / std::sqrt(static_cast<float>(dims[l]));
        weights.back().fill_random(rng, -scale, scale);
    }

    auto build = [&](bool quantized) {
        dnn::Sequential net;
        for (std::size_t l = 0; l < weights.size(); ++l) {
            Matrix w(weights[l].rows(), weights[l].cols());
            std::copy_n(weights[l].data(), weights[l].size(), w.data());
            if (quantized) {
                net.add(std::make_unique<dnn::QuantizedLinear>(pool, w));
            } else {
                net.add(std::make_unique<dnn::Linear>(pool, std::move(w)));
            }
            if (l + 2 < dims.size())
                net.add(std::make_unique<dnn::ReLU>(dims[l + 1]));
        }
        net.add(std::make_unique<dnn::Softmax>(dims.back()));
        return net;
    };
    dnn::Sequential float_net = build(false);
    dnn::Sequential int8_net = build(true);

    Matrix x(batch, dims[0]);
    x.fill_random(rng, 0.0f, 1.0f);

    Timer tf;
    const Matrix yf = float_net.forward(x);
    const double float_s = tf.seconds();
    Timer tq;
    const Matrix yq = int8_net.forward(x);
    const double int8_s = tq.seconds();

    index_t agree = 0;
    for (index_t r = 0; r < batch; ++r)
        agree += argmax_row(yf, r) == argmax_row(yq, r);

    const double flops = 2.0 * batch
        * (784.0 * 512 + 512.0 * 256 + 256.0 * 10);
    std::cout << "Quantized MLP inference, batch " << batch << ":\n"
              << "  float32 : " << float_s * 1e3 << " ms ("
              << flops / float_s / 1e9 << " GFLOP/s)\n"
              << "  int8    : " << int8_s * 1e3 << " ms ("
              << flops / int8_s / 1e9 << " GOP/s equivalent)\n"
              << "  max |prob diff| : " << max_abs_diff(yf, yq) << "\n"
              << "  top-1 agreement : " << agree << "/" << batch;
    const bool ok =
        agree >= batch * 9 / 10 && max_abs_diff(yf, yq) < 0.2;
    std::cout << (ok ? "  (OK)" : "  (FAIL)") << "\n";
    return ok ? 0 : 1;
}
