// Block explorer: prints the analytically derived CB-block geometry for
// every Table 2 machine (and the host) across core counts — the "no design
// search needed" pitch of the paper made tangible. For each configuration
// it reports the block shape, alpha, arithmetic intensity, the Eq. 2
// bandwidth requirement, and whether the §4.3 LRU working set fits.
#include <iostream>

#include "common/csv.hpp"
#include "core/tiling.hpp"
#include "machine/machine.hpp"

int main()
{
    using namespace cake;

    std::vector<MachineSpec> machines = table2_machines();
    machines.push_back(host_machine());

    for (const MachineSpec& m : machines) {
        std::cout << "=== " << m.name << " (" << m.cores << " cores, LLC "
                  << static_cast<double>(m.llc_bytes()) / 1048576.0
                  << " MiB, DRAM " << m.dram_bw_gbs << " GB/s) ===\n";
        Table table({"p", "mc=kc", "alpha", "CB block (m x k x n)",
                     "AI (flop/B)", "req. DRAM BW (GB/s)",
                     "LRU set / LLC"});
        for (int p = 1; p <= m.cores; p = p < 4 ? p + 1 : p * 2) {
            const CbBlockParams params = compute_cb_block(m, p, 6, 16);
            table.add_row(
                {std::to_string(p), std::to_string(params.mc),
                 format_number(params.alpha, 4),
                 std::to_string(params.m_blk) + " x "
                     + std::to_string(params.k_blk) + " x "
                     + std::to_string(params.n_blk),
                 format_number(params.arithmetic_intensity(), 4),
                 format_number(required_dram_bw_gbs(m, params), 4),
                 format_number(
                     static_cast<double>(params.lru_working_set_bytes())
                         / static_cast<double>(m.llc_bytes()),
                     3)});
        }
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "All geometries come from the closed-form solver (§3): no\n"
                 "grid search over tile sizes was performed.\n";
    return 0;
}
