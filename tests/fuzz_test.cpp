// Randomised differential and property tests across the whole stack:
// engines x dtypes x ops x scalars on random shapes, schedule properties
// on random grids, packing round trips on random geometry, and
// prefetcher/cache-simulator invariants.
#include <gtest/gtest.h>

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/cake_gemm.hpp"
#include "core/schedule.hpp"
#include "gotoblas/goto_gemm.hpp"
#include "memsim/cache_sim.hpp"
#include "memsim/trace.hpp"
#include "model/throughput.hpp"
#include "pack/pack.hpp"
#include "ref/naive_gemm.hpp"

namespace cake {
namespace {

ThreadPool& test_pool()
{
    static ThreadPool pool(4);
    return pool;
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, RandomConfigurationMatchesOracle)
{
    Rng rng(GetParam());
    const auto m = static_cast<index_t>(1 + rng.next_below(120));
    const auto n = static_cast<index_t>(1 + rng.next_below(120));
    const auto k = static_cast<index_t>(1 + rng.next_below(120));

    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    const Matrix expected = oracle_gemm(a, b);

    CakeOptions options;
    options.p = static_cast<int>(1 + rng.next_below(4));
    options.mc =
        best_microkernel().mr * static_cast<index_t>(1 + rng.next_below(3));
    const ScheduleKind kinds[] = {ScheduleKind::kKFirstSerpentine,
                                  ScheduleKind::kKFirstNoFlip,
                                  ScheduleKind::kNInnermost};
    options.schedule = kinds[rng.next_below(3)];
    const bool use_alpha_override = rng.next_below(2) == 0;
    if (use_alpha_override)
        options.alpha = 1.0 + static_cast<double>(rng.next_below(3));

    CakeStats stats;
    const Matrix c = cake_gemm(a, b, test_pool(), options, &stats);
    EXPECT_LE(max_abs_diff(c, expected), gemm_tolerance(k))
        << "m=" << m << " n=" << n << " k=" << k << " p=" << options.p
        << " schedule=" << schedule_kind_name(options.schedule);

    // Driver traffic must equal the model walker bit for bit.
    const auto traffic = model::cake_traffic(
        GemmShape{m, n, k}, stats.params, options.schedule);
    EXPECT_EQ(stats.dram_read_bytes, traffic.dram_read_bytes);
    EXPECT_EQ(stats.dram_write_bytes, traffic.dram_write_bytes);
}

TEST_P(FuzzSeedTest, RandomScaledTransposedGemm)
{
    Rng rng(GetParam() ^ 0xABCDEF);
    const auto m = static_cast<index_t>(1 + rng.next_below(80));
    const auto n = static_cast<index_t>(1 + rng.next_below(80));
    const auto k = static_cast<index_t>(1 + rng.next_below(80));
    const bool ta = rng.next_below(2) == 0;
    const bool tb = rng.next_below(2) == 0;
    const float alpha = rng.next_float(-2, 2);
    const float beta = rng.next_float(-1, 1);

    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    Matrix c(m, n);
    c.fill_random(rng);
    Matrix c0(m, n);
    for (index_t i = 0; i < m * n; ++i) c0.data()[i] = c.data()[i];

    Matrix a_stored = ta ? Matrix(k, m) : Matrix(m, k);
    if (ta) {
        for (index_t i = 0; i < m; ++i)
            for (index_t p = 0; p < k; ++p) a_stored.at(p, i) = a.at(i, p);
    } else {
        for (index_t i = 0; i < m * k; ++i)
            a_stored.data()[i] = a.data()[i];
    }
    Matrix b_stored = tb ? Matrix(n, k) : Matrix(k, n);
    if (tb) {
        for (index_t p = 0; p < k; ++p)
            for (index_t j = 0; j < n; ++j) b_stored.at(j, p) = b.at(p, j);
    } else {
        for (index_t i = 0; i < k * n; ++i)
            b_stored.data()[i] = b.data()[i];
    }

    CakeOptions options;
    options.op_a = ta ? Op::kTranspose : Op::kNone;
    options.op_b = tb ? Op::kTranspose : Op::kNone;
    options.mc = best_microkernel().mr * 2;
    CakeGemm gemm(test_pool(), options);
    gemm.multiply_scaled(a_stored.data(), a_stored.cols(), b_stored.data(),
                         b_stored.cols(), c.data(), n, m, n, k, alpha, beta);

    Matrix expected = oracle_gemm(a, b);
    for (index_t i = 0; i < m; ++i)
        for (index_t j = 0; j < n; ++j)
            expected.at(i, j) =
                alpha * expected.at(i, j) + beta * c0.at(i, j);
    EXPECT_LE(max_abs_diff(c, expected), 4 * gemm_tolerance(k))
        << "ta=" << ta << " tb=" << tb << " alpha=" << alpha
        << " beta=" << beta;
}

TEST_P(FuzzSeedTest, RandomGridScheduleProperties)
{
    Rng rng(GetParam() ^ 0x1234);
    const auto mb = static_cast<index_t>(1 + rng.next_below(9));
    const auto nb = static_cast<index_t>(1 + rng.next_below(9));
    const auto kb = static_cast<index_t>(1 + rng.next_below(9));
    const bool n_outer = rng.next_below(2) == 0;

    const auto order = build_schedule(ScheduleKind::kKFirstSerpentine, mb,
                                      nb, kb, n_outer);
    ASSERT_EQ(static_cast<index_t>(order.size()), mb * nb * kb);
    // Every consecutive pair one grid step apart; no partial-C spills.
    EXPECT_EQ(count_shared_steps(order),
              static_cast<index_t>(order.size()) - 1);
    EXPECT_EQ(schedule_traffic(order).c_spills, 0);
}

TEST_P(FuzzSeedTest, RandomPackRoundTrip)
{
    Rng rng(GetParam() ^ 0x9999);
    const auto m = static_cast<index_t>(1 + rng.next_below(60));
    const auto k = static_cast<index_t>(1 + rng.next_below(60));
    const index_t mrs[] = {4, 6, 8, 14, 16};
    const index_t mr = mrs[rng.next_below(5)];

    Matrix a(m, k);
    a.fill_random(rng);
    std::vector<float> packed(
        static_cast<std::size_t>(packed_a_size(m, k, mr)), -1.0f);
    pack_a_panel(a.data(), k, m, k, mr, packed.data());
    for (index_t i = 0; i < round_up(m, mr); ++i) {
        for (index_t p = 0; p < k; ++p) {
            const float expected = i < m ? a.at(i, p) : 0.0f;
            ASSERT_EQ(packed_a_at(packed.data(), m, k, mr, i, p), expected);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param);
                         });

TEST(Prefetcher, SequentialStreamHidesDemandMisses)
{
    const MachineSpec intel = intel_i9_10900k();
    memsim::PrefetchConfig on;
    on.enabled = true;
    on.degree = 4;

    auto run = [&](const memsim::PrefetchConfig& pf) {
        memsim::HierarchySim sim(intel, 1, {}, pf);
        // 256 MiB sequential scan: far beyond every cache.
        for (std::uint64_t off = 0; off < 256ULL << 20; off += 64)
            sim.access(0, off, 64, false);
        return sim.counters();
    };
    const auto off_counters = run({});
    const auto on_counters = run(on);

    EXPECT_EQ(off_counters.dram_prefetch_fills, 0u);
    EXPECT_LT(on_counters.dram_accesses, off_counters.dram_accesses / 2)
        << "stream prefetch must hide most demand misses";
    // Total DRAM traffic (demand + prefetch) is conserved (+/- edge lines).
    const auto total_on =
        on_counters.dram_accesses + on_counters.dram_prefetch_fills;
    EXPECT_NEAR(static_cast<double>(total_on),
                static_cast<double>(off_counters.dram_accesses),
                static_cast<double>(off_counters.dram_accesses) * 0.01);
}

TEST(Prefetcher, RandomAccessGainsNothing)
{
    const MachineSpec intel = intel_i9_10900k();
    memsim::PrefetchConfig on;
    on.enabled = true;
    Rng rng(7);

    memsim::HierarchySim sim(intel, 1, {}, on);
    for (int i = 0; i < 100000; ++i) {
        sim.access(0, rng.next_below(1ULL << 34) * 64, 4, false);
    }
    // A random stream never forms sequential runs: almost no prefetches.
    EXPECT_LT(sim.counters().dram_prefetch_fills,
              sim.counters().dram_accesses / 100);
}

TEST(Fuzz, MemsimTrafficAtLeastCompulsory)
{
    // For random small shapes, simulated DRAM traffic can never be below
    // the compulsory minimum (read A and B once, write C once).
    Rng rng(77);
    const MachineSpec arm = arm_cortex_a53();
    for (int trial = 0; trial < 3; ++trial) {
        const auto m = static_cast<index_t>(128 + rng.next_below(128));
        const auto n = static_cast<index_t>(128 + rng.next_below(128));
        const auto k = static_cast<index_t>(128 + rng.next_below(128));
        const GemmShape shape{m, n, k};
        const auto report = memsim::simulate_cake_memory(arm, 2, shape);
        const double compulsory = static_cast<double>(
            (m * k + k * n + m * n) * static_cast<index_t>(sizeof(float)));
        EXPECT_GE(static_cast<double>(
                      report.counters.dram_bytes(report.line_bytes)),
                  compulsory)
            << "m=" << m << " n=" << n << " k=" << k;
    }
}

TEST(Fuzz, GotoRandomShapesMatchOracle)
{
    Rng rng(88);
    for (int trial = 0; trial < 6; ++trial) {
        const auto m = static_cast<index_t>(1 + rng.next_below(100));
        const auto n = static_cast<index_t>(1 + rng.next_below(100));
        const auto k = static_cast<index_t>(1 + rng.next_below(100));
        Matrix a(m, k);
        Matrix b(k, n);
        a.fill_random(rng);
        b.fill_random(rng);
        GotoOptions options;
        options.p = static_cast<int>(1 + rng.next_below(4));
        options.mc = best_microkernel().mr
            * static_cast<index_t>(1 + rng.next_below(3));
        options.nc = best_microkernel().nr
            * static_cast<index_t>(1 + rng.next_below(3));
        const Matrix c = goto_gemm(a, b, test_pool(), options);
        EXPECT_LE(max_abs_diff(c, oracle_gemm(a, b)), gemm_tolerance(k))
            << "trial " << trial;
    }
}

}  // namespace
}  // namespace cake
