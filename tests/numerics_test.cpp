// Static numerics layer: the per-plan forward error bound arithmetic
// (core/fperror.hpp), the IR numerics verifier (analysis/numerics.hpp)
// with its mutation gate, and — the load-bearing part — an empirical
// accuracy harness proving that the MEASURED relative error of real
// multiplies never exceeds the STATIC bound, across kernels, shapes,
// schedules and executors, for both precisions and the quantized path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "analysis/numerics.hpp"
#include "analysis/schedir.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "core/cake_gemm.hpp"
#include "core/cake_gemm_int8.hpp"
#include "core/fperror.hpp"
#include "core/quant.hpp"
#include "core/tiling.hpp"
#include "gotoblas/goto_gemm.hpp"
#include "machine/machine.hpp"

namespace cake {
namespace {

ThreadPool& test_pool()
{
    static ThreadPool pool(4);
    return pool;
}

// --- Bound arithmetic (core/fperror.hpp) --------------------------------

TEST(FpError, GammaNBasics)
{
    EXPECT_EQ(gamma_n(0, 0x1p-24), 0.0);
    EXPECT_EQ(gamma_n(100, 0.0), 0.0);
    // Small n: gamma_n ~= n*u, strictly monotone in n.
    const double g10 = gamma_n(10, 0x1p-24);
    const double g20 = gamma_n(20, 0x1p-24);
    EXPECT_NEAR(g10, 10 * 0x1p-24, 1e-12);
    EXPECT_GT(g20, g10);
    // n*u >= 1: the bound honestly blows up instead of going negative.
    EXPECT_TRUE(std::isinf(gamma_n(1 << 25, 0x1p-24)));
}

TEST(FpError, DtypeTableAndLookup)
{
    EXPECT_EQ(find_dtype("f32"), &dtype_f32());
    EXPECT_EQ(find_dtype("f64"), &dtype_f64());
    EXPECT_EQ(find_dtype("i8"), &dtype_i8());
    EXPECT_EQ(find_dtype("q7"), nullptr);
    EXPECT_EQ(dtype_for_elem_bytes(4), &dtype_f32());
    EXPECT_EQ(dtype_for_elem_bytes(8), &dtype_f64());
    EXPECT_EQ(dtype_for_elem_bytes(1), &dtype_i8());
    EXPECT_EQ(dtype_for_elem_bytes(3), nullptr);
    // Narrow-storage formats accumulate in f32: storage u > accumulator u.
    EXPECT_GT(dtype_f16().storage_u, dtype_f16().acc_u);
    EXPECT_GT(dtype_bf16().storage_u, dtype_bf16().acc_u);
    EXPECT_EQ(dtype_f16().acc_u, dtype_f32().acc_u);
}

TEST(FpError, MoreSegmentsMeanStrictlyWorseBound)
{
    const AccumChain one{1024, 1, 0};
    const AccumChain four{1024, 4, 3};
    const double b1 = bound_for_chain(one, dtype_f32()).rel_bound;
    const double b4 = bound_for_chain(four, dtype_f32()).rel_bound;
    EXPECT_GT(b1, 0.0);
    EXPECT_GT(b4, b1);
    // f64 bound for the same chain is ~2^29 x tighter.
    EXPECT_LT(bound_for_chain(one, dtype_f64()).rel_bound, b1 * 1e-8);
    // Narrow storage dominates at shallow K: f16 conversion error alone
    // exceeds the whole f32 chain bound.
    EXPECT_GT(bound_for_chain(one, dtype_f16()).rel_bound, b1);
}

TEST(FpError, ScheduleSegmentsDriveThePlanBound)
{
    // A 2 x 3 x 4 CB grid: K-first schedules finish each column in one
    // run; N-innermost revisits every column once per K block.
    const MachineSpec machine = intel_i9_10900k();
    TilingOptions topts;
    const CbBlockParams params =
        compute_cb_block(machine, machine.cores, 6, 16, topts);
    const GemmShape shape{2 * params.m_blk, 3 * params.n_blk,
                          4 * params.k_blk};
    const auto serp = plan_error_bound(shape, params,
                                       ScheduleKind::kKFirstSerpentine,
                                       dtype_f32());
    const auto noflip = plan_error_bound(shape, params,
                                         ScheduleKind::kKFirstNoFlip,
                                         dtype_f32());
    const auto ninner = plan_error_bound(shape, params,
                                         ScheduleKind::kNInnermost,
                                         dtype_f32());
    EXPECT_EQ(serp.chain.segments, 1);
    EXPECT_EQ(noflip.chain.segments, 1);
    EXPECT_EQ(ninner.chain.segments, 4);
    EXPECT_EQ(serp.rel_bound, noflip.rel_bound);
    EXPECT_GT(ninner.rel_bound, serp.rel_bound);
    // beta != 0 adds exactly one join-add to the chain.
    const auto beta = plan_error_bound(shape, params,
                                       ScheduleKind::kKFirstSerpentine,
                                       dtype_f32(), /*beta_nonzero=*/true);
    EXPECT_GT(beta.rel_bound, serp.rel_bound);
}

TEST(FpError, GotoBoundCountsKcPasses)
{
    const GemmShape shape{64, 64, 1000};
    const auto one = goto_error_bound(shape, 1000, dtype_f32());
    const auto four = goto_error_bound(shape, 250, dtype_f32());
    EXPECT_EQ(one.chain.segments, 1);
    EXPECT_EQ(four.chain.segments, 4);
    EXPECT_GT(four.rel_bound, one.rel_bound);
}

TEST(FpError, Int8StaticAccumulatorRange)
{
    // 127 * 127 per product; i32 holds ceil short of 2^31 / 16129 terms.
    EXPECT_EQ(int8_safe_k(), std::numeric_limits<std::int32_t>::max()
                                 / (127 * 127));
    EXPECT_EQ(int8_acc_range(0), 0.0);
    EXPECT_EQ(int8_acc_range(10), 10.0 * 127 * 127);
    const AccumChain safe{int8_safe_k(), 1, 0};
    const AccumChain unsafe{int8_safe_k() + 1, 1, 0};
    EXPECT_TRUE(bound_for_chain(safe, dtype_i8()).i32_safe);
    EXPECT_FALSE(bound_for_chain(unsafe, dtype_i8()).i32_safe);
    // Integer accumulation itself is exact: no rounding term.
    EXPECT_EQ(bound_for_chain(safe, dtype_i8()).rel_bound, 0.0);
}

// --- Empirical harness: measured error <= static bound ------------------

/// Max over C of |measured - oracle| / (sum_k |a| |b|), the per-element
/// relative error the Higham bound speaks about. Oracle and denominator
/// accumulate in OT (double for f32 inputs, long double for f64).
template <typename T, typename OT>
double max_rel_error(const T* a, const T* b, const T* c, const GemmShape& s)
{
    double worst = 0.0;
    for (index_t i = 0; i < s.m; ++i) {
        for (index_t j = 0; j < s.n; ++j) {
            OT acc = 0, denom = 0;
            for (index_t p = 0; p < s.k; ++p) {
                const OT av = a[static_cast<std::size_t>(i * s.k + p)];
                const OT bv = b[static_cast<std::size_t>(p * s.n + j)];
                acc += av * bv;
                denom += std::abs(av) * std::abs(bv);
            }
            if (denom == 0) continue;
            const OT err =
                std::abs(static_cast<OT>(
                             c[static_cast<std::size_t>(i * s.n + j)])
                         - acc);
            worst = std::max(worst, static_cast<double>(err / denom));
        }
    }
    return worst;
}

template <typename T>
struct OracleOf;
template <>
struct OracleOf<float> {
    using type = double;
};
template <>
struct OracleOf<double> {
    using type = long double;
};

/// Run one real CAKE multiply and assert its measured error against the
/// static bound of the EXACT plan the driver executed (stats().params).
template <typename T>
void check_cake_accuracy(const GemmShape& shape, ScheduleKind kind,
                         CakeExec exec, std::optional<index_t> mc,
                         std::optional<index_t> kc, std::uint32_t seed)
{
    CakeOptions opts;
    opts.schedule = kind;
    opts.exec = exec;
    opts.mc = mc;
    opts.kc = kc;
    CakeGemmT<T> gemm(test_pool(), opts);

    Rng rng(seed);
    AlignedBuffer<T> a(static_cast<std::size_t>(shape.m * shape.k));
    AlignedBuffer<T> b(static_cast<std::size_t>(shape.k * shape.n));
    AlignedBuffer<T> c(static_cast<std::size_t>(shape.m * shape.n), true);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<T>(rng.next_float(-1, 1));
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<T>(rng.next_float(-1, 1));

    gemm.multiply(a.data(), shape.k, b.data(), shape.n, c.data(), shape.n,
                  shape.m, shape.n, shape.k);

    const DtypeDesc& dtype = sizeof(T) == 8 ? dtype_f64() : dtype_f32();
    const PlanErrorBound bound =
        plan_error_bound(shape, gemm.stats().params, kind, dtype);
    const double measured = max_rel_error<T, typename OracleOf<T>::type>(
        a.data(), b.data(), c.data(), shape);

    EXPECT_LE(measured, bound.rel_bound)
        << "schedule=" << schedule_kind_name(kind)
        << " exec=" << (gemm.stats().pipelined ? "pipelined" : "serial")
        << " shape=" << shape.m << "x" << shape.n << "x" << shape.k;
    EXPECT_GT(bound.rel_bound, 0.0);
}

TEST(NumericsHarness, MeasuredErrorWithinStaticBoundF32)
{
    const index_t mr = best_microkernel().mr;
    for (const ScheduleKind kind : {ScheduleKind::kKFirstSerpentine,
                                    ScheduleKind::kKFirstNoFlip,
                                    ScheduleKind::kNInnermost}) {
        for (const CakeExec exec : {CakeExec::kSerial, CakeExec::kPipelined}) {
            // Forced tiny blocking: multi-block grid (kb = 4, several
            // columns) so spills and join-adds actually happen.
            check_cake_accuracy<float>({96, 80, 128}, kind, exec, mr * 2, 32,
                                       11);
            // Solver-default blocking on a single-block grid.
            check_cake_accuracy<float>({64, 48, 72}, kind, exec,
                                       std::nullopt, std::nullopt, 12);
        }
    }
}

TEST(NumericsHarness, MeasuredErrorWithinStaticBoundF64)
{
    const index_t mr = best_microkernel_of<double>().mr;
    for (const ScheduleKind kind : {ScheduleKind::kKFirstSerpentine,
                                    ScheduleKind::kNInnermost}) {
        for (const CakeExec exec : {CakeExec::kSerial, CakeExec::kPipelined}) {
            check_cake_accuracy<double>({80, 64, 160}, kind, exec, mr * 2,
                                        40, 13);
        }
    }
}

template <typename T>
void check_goto_accuracy(const GemmShape& shape, std::uint32_t seed)
{
    GotoGemmT<T> gemm(test_pool(), {});
    Rng rng(seed);
    AlignedBuffer<T> a(static_cast<std::size_t>(shape.m * shape.k));
    AlignedBuffer<T> b(static_cast<std::size_t>(shape.k * shape.n));
    AlignedBuffer<T> c(static_cast<std::size_t>(shape.m * shape.n), true);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<T>(rng.next_float(-1, 1));
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = static_cast<T>(rng.next_float(-1, 1));

    gemm.multiply(a.data(), shape.k, b.data(), shape.n, c.data(), shape.n,
                  shape.m, shape.n, shape.k);

    const DtypeDesc& dtype = sizeof(T) == 8 ? dtype_f64() : dtype_f32();
    const PlanErrorBound bound =
        goto_error_bound(shape, gemm.stats().kc, dtype);
    const double measured = max_rel_error<T, typename OracleOf<T>::type>(
        a.data(), b.data(), c.data(), shape);
    EXPECT_LE(measured, bound.rel_bound) << "goto kc=" << gemm.stats().kc;
}

TEST(NumericsHarness, MeasuredErrorWithinStaticBoundGoto)
{
    check_goto_accuracy<float>({96, 80, 128}, 21);
    check_goto_accuracy<double>({80, 64, 160}, 22);
}

TEST(NumericsHarness, QuantizedErrorWithinRequantBound)
{
    // End-to-end quantized multiply vs the real product: the measured
    // absolute error obeys the static requantization bound built from the
    // actual QuantParams the quantizers chose.
    const GemmShape shape{48, 40, 64};
    Rng rng(31);
    Matrix a(shape.m, shape.k), b(shape.k, shape.n);
    a.fill_random(rng);
    b.fill_random(rng);

    std::vector<std::uint8_t> aq(static_cast<std::size_t>(shape.m * shape.k));
    std::vector<std::int8_t> bq(static_cast<std::size_t>(shape.k * shape.n));
    const QuantParams qa =
        quantize_unsigned(a.data(), shape.m * shape.k, aq.data());
    const QuantParams qb =
        quantize_signed(b.data(), shape.k * shape.n, bq.data());

    const Matrix got = cake_qgemm(a, b, test_pool());
    const double abs_bound = int8_requant_abs_bound(shape.k, qa, qb);
    EXPECT_GT(abs_bound, 0.0);
    double worst = 0.0;
    for (index_t i = 0; i < shape.m; ++i) {
        for (index_t j = 0; j < shape.n; ++j) {
            double acc = 0;
            for (index_t p = 0; p < shape.k; ++p)
                acc += static_cast<double>(a.at(i, p))
                    * static_cast<double>(b.at(p, j));
            worst = std::max(
                worst, std::abs(static_cast<double>(got.at(i, j)) - acc));
        }
    }
    EXPECT_LE(worst, abs_bound);
}

// --- int8 edge cases against the static accumulator-range bound ---------

TEST(Int8Edges, SaturatedOperandsHitTheRangeBoundExactly)
{
    // A all 127, B all -127/+127 alternating by column: every accumulator
    // lands exactly on +-k * 127^2 — the static range bound is achieved,
    // not just approached, and i32 arithmetic stays exact.
    const index_t m = 12, n = 18, k = 96;
    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k), 127);
    std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
    for (index_t p = 0; p < k; ++p)
        for (index_t j = 0; j < n; ++j)
            b[static_cast<std::size_t>(p * n + j)] =
                (j % 2 == 0) ? std::int8_t{127} : std::int8_t{-127};
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), -1);

    CakeGemmInt8 gemm(test_pool());
    gemm.multiply(a.data(), k, b.data(), n, c.data(), n, m, n, k);

    const double range = int8_acc_range(k);
    const std::int32_t expect = static_cast<std::int32_t>(k) * 127 * 127;
    EXPECT_EQ(static_cast<double>(expect), range);
    ASSERT_LE(range, static_cast<double>(
                         std::numeric_limits<std::int32_t>::max()));
    for (index_t i = 0; i < m; ++i) {
        for (index_t j = 0; j < n; ++j) {
            const std::int32_t got = c[static_cast<std::size_t>(i * n + j)];
            EXPECT_EQ(got, (j % 2 == 0) ? expect : -expect);
            EXPECT_LE(std::abs(static_cast<double>(got)), range);
        }
    }
}

TEST(Int8Edges, ZeroPointExtremesStayWithinRequantBound)
{
    // All-negative activations push the affine zero-point to its extreme;
    // the zero-point correction plus requant error must still obey the
    // static bound computed from the chosen params.
    const index_t m = 8, n = 16, k = 32;
    Rng rng(47);
    Matrix a(m, k), b(k, n);
    a.fill_random(rng, -8.0f, -4.0f);  // strictly negative activations
    b.fill_random(rng, -2.0f, 2.0f);

    std::vector<std::uint8_t> aq(static_cast<std::size_t>(m * k));
    const QuantParams qa = quantize_unsigned(a.data(), m * k, aq.data());
    std::vector<std::int8_t> bq(static_cast<std::size_t>(k * n));
    const QuantParams qb = quantize_signed(b.data(), k * n, bq.data());
    EXPECT_GT(qa.zero_point, 0);  // the extreme actually happened
    EXPECT_EQ(qb.zero_point, 0);  // weights stay symmetric

    const Matrix got = cake_qgemm(a, b, test_pool());
    const double abs_bound = int8_requant_abs_bound(k, qa, qb);
    for (index_t i = 0; i < m; ++i) {
        for (index_t j = 0; j < n; ++j) {
            double acc = 0;
            for (index_t p = 0; p < k; ++p)
                acc += static_cast<double>(a.at(i, p))
                    * static_cast<double>(b.at(p, j));
            EXPECT_LE(std::abs(static_cast<double>(got.at(i, j)) - acc),
                      abs_bound)
                << "i=" << i << " j=" << j;
        }
    }
}

TEST(Int8Edges, EmptyKIsExactZero)
{
    // k = 0: no products at all. The static range bound collapses to 0
    // and the driver must write exact zeros (beta = 0), not garbage.
    const index_t m = 6, n = 10;
    std::vector<std::uint8_t> a;   // m x 0
    std::vector<std::int8_t> b;    // 0 x n
    std::vector<std::int32_t> c(static_cast<std::size_t>(m * n), 1234);

    CakeGemmInt8 gemm(test_pool());
    gemm.multiply(a.data(), 0, b.data(), n, c.data(), n, m, n, 0);

    EXPECT_EQ(int8_acc_range(0), 0.0);
    EXPECT_EQ(int8_requant_abs_bound(0, {}, {}), 0.0);
    for (const std::int32_t v : c) EXPECT_EQ(v, 0);
}

// --- IR verifier (analysis/numerics.hpp) --------------------------------

schedir::ScheduleIR small_ir(schedir::Exec exec,
                             ScheduleKind kind = ScheduleKind::kKFirstSerpentine)
{
    const MachineSpec machine = intel_i9_10900k();
    TilingOptions topts;
    topts.mc = 48;
    const GemmShape shape{1000, 1000, 200};
    if (exec == schedir::Exec::kGoto) {
        return schedir::extract_goto_ir(
            shape, goto_default_blocking(machine, 6, 16), machine.cores, 6,
            16);
    }
    const CbBlockParams params =
        compute_cb_block(machine, machine.cores, 6, 16, topts);
    return schedir::extract_cake_ir(shape, params, kind, exec);
}

TEST(NumericsVerifier, CleanIrVerifiesCleanOnEveryExecutor)
{
    for (const schedir::Exec exec :
         {schedir::Exec::kSerial, schedir::Exec::kPipelined,
          schedir::Exec::kGoto}) {
        const auto ir = small_ir(exec);
        const auto report = numerics::verify_numerics(ir, dtype_f32());
        EXPECT_TRUE(report.ok()) << report.codes();
        EXPECT_EQ(report.ir_fma_depth, 200);
        EXPECT_GT(report.bound.rel_bound, 0.0);
        // The dtype-resolving overload agrees.
        EXPECT_TRUE(numerics::verify_numerics(ir).ok());
    }
}

TEST(NumericsVerifier, BoundMatchesCorePlanBound)
{
    // The IR-derived bound and the release-side plan bound are the same
    // number for the same plan — one derivation, two entry points.
    const auto ir = small_ir(schedir::Exec::kPipelined);
    const auto report = numerics::verify_numerics(ir, dtype_f32());
    const PlanErrorBound core =
        plan_error_bound(ir.shape, ir.params, ir.schedule, dtype_f32());
    EXPECT_EQ(report.bound.rel_bound, core.rel_bound);
    EXPECT_EQ(report.bound.chain.segments, core.chain.segments);
}

TEST(NumericsVerifier, EveryMutationCaughtWithItsCode)
{
    using numerics::NumMutation;
    const struct {
        NumMutation m;
        const char* code;
    } cases[] = {
        {NumMutation::kDeepenAccum, "NUM_CHAIN"},
        {NumMutation::kDropTurnover, "NUM_TURNOVER"},
        {NumMutation::kLyingDtype, "NUM_DTYPE"},
    };
    for (const auto& c : cases) {
        for (const schedir::Exec exec :
             {schedir::Exec::kSerial, schedir::Exec::kPipelined}) {
            auto ir = small_ir(exec);
            const std::string expected =
                numerics::apply_numerics_mutation(ir, c.m);
            EXPECT_EQ(expected, c.code);
            const auto report = numerics::verify_numerics(ir, dtype_f32());
            EXPECT_FALSE(report.ok());
            EXPECT_TRUE(report.has(expected))
                << numerics::num_mutation_name(c.m) << " on "
                << schedir::exec_name(exec) << " reported ["
                << report.codes() << "]";
        }
    }
    // GOTO has no generation turnover to drop; the other two apply.
    auto g1 = small_ir(schedir::Exec::kGoto);
    EXPECT_EQ(numerics::apply_numerics_mutation(g1, NumMutation::kDeepenAccum),
              "NUM_CHAIN");
    EXPECT_TRUE(numerics::verify_numerics(g1, dtype_f32()).has("NUM_CHAIN"));
    auto g2 = small_ir(schedir::Exec::kGoto);
    EXPECT_EQ(numerics::apply_numerics_mutation(g2, NumMutation::kLyingDtype),
              "NUM_DTYPE");
    EXPECT_TRUE(numerics::verify_numerics(g2, dtype_f32()).has("NUM_DTYPE"));
    auto g3 = small_ir(schedir::Exec::kGoto);
    EXPECT_THROW(numerics::apply_numerics_mutation(
                     g3, NumMutation::kDropTurnover),
                 Error);
}

TEST(NumericsVerifier, NInnermostIrCarriesItsSegments)
{
    const auto ir =
        small_ir(schedir::Exec::kSerial, ScheduleKind::kNInnermost);
    const auto report = numerics::verify_numerics(ir, dtype_f32());
    EXPECT_TRUE(report.ok()) << report.codes();
    EXPECT_GT(report.ir_segments, 1);
    const auto serp = numerics::verify_numerics(
        small_ir(schedir::Exec::kSerial), dtype_f32());
    EXPECT_GT(report.bound.rel_bound, serp.bound.rel_bound);
}

TEST(NumericsVerifier, Int8OverflowRiskFlagged)
{
    // A (deliberately fictitious) int8 plan deeper than the provable i32
    // range must trip NUM_I8_RANGE; a safe-depth one must not.
    const MachineSpec machine = intel_i9_10900k();
    TilingOptions topts;
    topts.elem_bytes = 1;
    const CbBlockParams params =
        compute_cb_block(machine, machine.cores, 6, 16, topts);

    const GemmShape safe{64, 64, 1024};
    const auto ok_ir = schedir::extract_cake_ir(
        safe, params, ScheduleKind::kKFirstSerpentine,
        schedir::Exec::kSerial);
    const auto ok_report = numerics::verify_numerics(ok_ir, dtype_i8());
    EXPECT_TRUE(ok_report.ok()) << ok_report.codes();
    EXPECT_TRUE(ok_report.bound.i32_safe);

    const GemmShape deep{16, 16, int8_safe_k() + params.k_blk};
    const auto deep_ir = schedir::extract_cake_ir(
        deep, params, ScheduleKind::kKFirstSerpentine,
        schedir::Exec::kSerial);
    const auto deep_report = numerics::verify_numerics(deep_ir, dtype_i8());
    EXPECT_TRUE(deep_report.has("NUM_I8_RANGE")) << deep_report.codes();
    EXPECT_FALSE(deep_report.bound.i32_safe);
}

}  // namespace
}  // namespace cake
