// Extended GEMM semantics: transposed operands and the BLAS epilogue
// C = alpha*op(A)*op(B) + beta*C, plus the transposed packing routines.
#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/cake_gemm.hpp"
#include "pack/pack.hpp"
#include "ref/naive_gemm.hpp"

namespace cake {
namespace {

ThreadPool& test_pool()
{
    static ThreadPool pool(4);
    return pool;
}

Matrix transpose(const Matrix& a)
{
    Matrix t(a.cols(), a.rows());
    for (index_t r = 0; r < a.rows(); ++r)
        for (index_t c = 0; c < a.cols(); ++c) t.at(c, r) = a.at(r, c);
    return t;
}

CakeOptions small_blocks()
{
    CakeOptions options;
    options.mc = best_microkernel().mr * 2;
    return options;
}

TEST(PackTransposed, PackAMatchesUntransposedPack)
{
    Rng rng(31);
    Matrix a(37, 23);  // logical A block m=37, k=23
    a.fill_random(rng);
    const Matrix at = transpose(a);  // stored k x m

    const index_t mr = 6;
    std::vector<float> direct(
        static_cast<std::size_t>(packed_a_size(37, 23, mr)));
    std::vector<float> viat(direct.size());
    pack_a_panel(a.data(), 23, 37, 23, mr, direct.data());
    pack_a_panel_transposed(at.data(), 37, 37, 23, mr, viat.data());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(direct[i], viat[i]) << "i=" << i;
}

TEST(PackTransposed, PackBMatchesUntransposedPack)
{
    Rng rng(32);
    Matrix b(19, 41);  // logical B block k=19, n=41
    b.fill_random(rng);
    const Matrix bt = transpose(b);  // stored n x k

    const index_t nr = 16;
    std::vector<float> direct(
        static_cast<std::size_t>(packed_b_size(19, 41, nr)));
    std::vector<float> viat(direct.size());
    pack_b_panel(b.data(), 41, 19, 41, nr, direct.data());
    pack_b_panel_transposed(bt.data(), 19, 19, 41, nr, viat.data());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_EQ(direct[i], viat[i]) << "i=" << i;
}

TEST(TransposeOps, TransposedAMatchesOracle)
{
    Rng rng(33);
    const index_t m = 61, n = 85, k = 47;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    const Matrix at = transpose(a);  // stored k x m
    const Matrix expected = oracle_gemm(a, b);

    CakeOptions options = small_blocks();
    options.op_a = Op::kTranspose;
    CakeGemm gemm(test_pool(), options);
    Matrix c(m, n);
    gemm.multiply(at.data(), m, b.data(), n, c.data(), n, m, n, k);
    EXPECT_LE(max_abs_diff(c, expected), gemm_tolerance(k));
}

TEST(TransposeOps, TransposedBMatchesOracle)
{
    Rng rng(34);
    const index_t m = 53, n = 77, k = 39;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    const Matrix bt = transpose(b);  // stored n x k
    const Matrix expected = oracle_gemm(a, b);

    CakeOptions options = small_blocks();
    options.op_b = Op::kTranspose;
    CakeGemm gemm(test_pool(), options);
    Matrix c(m, n);
    gemm.multiply(a.data(), k, bt.data(), k, c.data(), n, m, n, k);
    EXPECT_LE(max_abs_diff(c, expected), gemm_tolerance(k));
}

TEST(TransposeOps, BothTransposedMatchesOracle)
{
    Rng rng(35);
    const index_t m = 44, n = 66, k = 88;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    const Matrix at = transpose(a);
    const Matrix bt = transpose(b);
    const Matrix expected = oracle_gemm(a, b);

    CakeOptions options = small_blocks();
    options.op_a = Op::kTranspose;
    options.op_b = Op::kTranspose;
    CakeGemm gemm(test_pool(), options);
    Matrix c(m, n);
    gemm.multiply(at.data(), m, bt.data(), k, c.data(), n, m, n, k);
    EXPECT_LE(max_abs_diff(c, expected), gemm_tolerance(k));
}

TEST(TransposeOps, GramMatrixUseCase)
{
    // X^T X — the classic use of a transposed-A GEMM: symmetric output.
    Rng rng(36);
    const index_t rows = 70, cols = 30;
    Matrix x(rows, cols);
    x.fill_random(rng);

    CakeOptions options = small_blocks();
    options.op_a = Op::kTranspose;
    CakeGemm gemm(test_pool(), options);
    Matrix gram(cols, cols);
    gemm.multiply(x.data(), cols, x.data(), cols, gram.data(), cols, cols,
                  cols, rows);

    const Matrix expected = oracle_gemm(transpose(x), x);
    EXPECT_LE(max_abs_diff(gram, expected), gemm_tolerance(rows));
    double asym = 0;
    for (index_t i = 0; i < cols; ++i)
        for (index_t j = 0; j < cols; ++j)
            asym = std::max(asym,
                            std::abs(static_cast<double>(gram.at(i, j))
                                     - gram.at(j, i)));
    EXPECT_LE(asym, 2 * gemm_tolerance(rows));
}

TEST(ScaledEpilogue, UnpackScaledBlockSemantics)
{
    const index_t m = 3, n = 4;
    std::vector<float> cbuf(static_cast<std::size_t>(m * n));
    for (index_t i = 0; i < m * n; ++i)
        cbuf[static_cast<std::size_t>(i)] = static_cast<float>(i + 1);
    std::vector<float> c(static_cast<std::size_t>(m * n), 10.0f);

    unpack_c_block_scaled(cbuf.data(), m, n, c.data(), n, 2.0f, 0.5f);
    EXPECT_EQ(c[0], 2.0f * 1 + 0.5f * 10);
    EXPECT_EQ(c[11], 2.0f * 12 + 0.5f * 10);

    // beta = 0 must overwrite even NaN garbage.
    std::vector<float> nan_c(static_cast<std::size_t>(m * n),
                             std::nanf(""));
    unpack_c_block_scaled(cbuf.data(), m, n, nan_c.data(), n, 1.0f, 0.0f);
    EXPECT_EQ(nan_c[5], 6.0f);
}

TEST(ScaledEpilogue, FullBlasSemantics)
{
    Rng rng(37);
    const index_t m = 72, n = 95, k = 58;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    Matrix c(m, n);
    c.fill_with([](index_t r, index_t cc) {
        return 0.01f * static_cast<float>(r - cc);
    });
    Matrix c0(m, n);
    for (index_t i = 0; i < m; ++i)
        for (index_t j = 0; j < n; ++j) c0.at(i, j) = c.at(i, j);

    const float alpha = -1.5f;
    const float beta = 0.25f;
    CakeGemm gemm(test_pool(), small_blocks());
    gemm.multiply_scaled(a.data(), k, b.data(), n, c.data(), n, m, n, k,
                         alpha, beta);

    Matrix expected = oracle_gemm(a, b);
    for (index_t i = 0; i < m; ++i)
        for (index_t j = 0; j < n; ++j)
            expected.at(i, j) =
                alpha * expected.at(i, j) + beta * c0.at(i, j);
    EXPECT_LE(max_abs_diff(c, expected), 2 * gemm_tolerance(k));
}

TEST(ScaledEpilogue, BetaZeroIgnoresNanGarbage)
{
    Rng rng(38);
    const index_t m = 25, n = 33, k = 17;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    Matrix c(m, n);
    c.fill(std::nanf(""));

    CakeGemm gemm(test_pool(), small_blocks());
    gemm.multiply_scaled(a.data(), k, b.data(), n, c.data(), n, m, n, k,
                         1.0f, 0.0f);
    EXPECT_LE(max_abs_diff(c, oracle_gemm(a, b)), gemm_tolerance(k));
}

TEST(ScaledEpilogue, AlphaZeroScalesCOnly)
{
    Rng rng(39);
    const index_t m = 20, n = 20, k = 20;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    Matrix c(m, n);
    c.fill(4.0f);

    CakeGemm gemm(test_pool(), small_blocks());
    gemm.multiply_scaled(a.data(), k, b.data(), n, c.data(), n, m, n, k,
                         0.0f, 0.5f);
    Matrix expected(m, n);
    expected.fill(2.0f);
    EXPECT_EQ(max_abs_diff(c, expected), 0.0);
}

TEST(ScaledEpilogue, KZeroAppliesBeta)
{
    Matrix c(4, 4);
    c.fill(8.0f);
    CakeGemm gemm(test_pool(), small_blocks());
    gemm.multiply_scaled(nullptr, 0, nullptr, 4, c.data(), 4, 4, 4, 0, 1.0f,
                         0.25f);
    Matrix expected(4, 4);
    expected.fill(2.0f);
    EXPECT_EQ(max_abs_diff(c, expected), 0.0);
}

TEST(TransposeOps, DoublePrecisionTransposedA)
{
    Rng rng(40);
    const index_t m = 30, n = 42, k = 26;
    MatrixD a(m, k);
    MatrixD b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    MatrixD at(k, m);
    for (index_t r = 0; r < m; ++r)
        for (index_t c = 0; c < k; ++c) at.at(c, r) = a.at(r, c);

    CakeOptions options;
    options.op_a = Op::kTranspose;
    options.mc = best_microkernel_of<double>().mr * 2;
    CakeGemmD gemm(test_pool(), options);
    MatrixD c(m, n);
    gemm.multiply(at.data(), m, b.data(), n, c.data(), n, m, n, k);
    EXPECT_LE(max_abs_diff(c, oracle_gemm(a, b)), dgemm_tolerance(k));
}

}  // namespace
}  // namespace cake
