// GOTO baseline correctness and stats tests.
#include <gtest/gtest.h>

#include <tuple>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "gotoblas/goto_gemm.hpp"
#include "pack/pack.hpp"
#include "ref/naive_gemm.hpp"

namespace cake {
namespace {

ThreadPool& test_pool()
{
    static ThreadPool pool(4);
    return pool;
}

GotoOptions tiny_options()
{
    GotoOptions options;
    options.mc = best_microkernel().mr * 3;
    options.nc = best_microkernel().nr * 2;
    return options;
}

using ShapeParam = std::tuple<index_t, index_t, index_t>;

class GotoShapeTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(GotoShapeTest, MatchesOracle)
{
    const auto [m, n, k] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 31 + n * 37 + k * 41));
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);

    const Matrix c = goto_gemm(a, b, test_pool(), tiny_options());
    EXPECT_LE(max_abs_diff(c, oracle_gemm(a, b)), gemm_tolerance(k))
        << "m=" << m << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, GotoShapeTest,
    ::testing::Values(ShapeParam{1, 1, 1}, ShapeParam{5, 6, 7},
                      ShapeParam{64, 64, 64}, ShapeParam{97, 89, 83},
                      ShapeParam{256, 8, 8}, ShapeParam{8, 256, 8},
                      ShapeParam{8, 8, 256}, ShapeParam{150, 75, 33},
                      ShapeParam{100, 100, 100}),
    [](const auto& info) {
        return "m" + std::to_string(std::get<0>(info.param)) + "n"
            + std::to_string(std::get<1>(info.param)) + "k"
            + std::to_string(std::get<2>(info.param));
    });

TEST(GotoGemm, AccumulateSemantics)
{
    Rng rng(2);
    Matrix a(40, 30);
    Matrix b(30, 50);
    a.fill_random(rng);
    b.fill_random(rng);
    Matrix c(40, 50);
    c.fill(1.0f);

    GotoOptions options = tiny_options();
    options.accumulate = true;
    goto_sgemm(a.data(), b.data(), c.data(), 40, 50, 30, test_pool(),
               options);

    Matrix expected = oracle_gemm(a, b);
    for (index_t i = 0; i < expected.rows(); ++i)
        for (index_t j = 0; j < expected.cols(); ++j)
            expected.at(i, j) += 1.0f;
    EXPECT_LE(max_abs_diff(c, expected), gemm_tolerance(30));
}

TEST(GotoGemm, AllWorkerCountsAgree)
{
    Rng rng(3);
    Matrix a(120, 70);
    Matrix b(70, 90);
    a.fill_random(rng);
    b.fill_random(rng);
    const Matrix expected = oracle_gemm(a, b);
    for (int p = 1; p <= 4; ++p) {
        GotoOptions options = tiny_options();
        options.p = p;
        const Matrix c = goto_gemm(a, b, test_pool(), options);
        EXPECT_LE(max_abs_diff(c, expected), gemm_tolerance(70)) << "p=" << p;
    }
}

TEST(GotoGemm, DefaultBlockingFitsCaches)
{
    for (const MachineSpec& m : table2_machines()) {
        const GotoBlocking blocking = goto_default_blocking(m, 6, 16);
        EXPECT_EQ(blocking.mc, blocking.kc) << m.name;
        EXPECT_EQ(blocking.mc % 6, 0);
        EXPECT_EQ(blocking.nc % 16, 0);
        // kc x nc B panel fits the LLC (GOTO fills it, §4.4).
        EXPECT_LE(static_cast<std::size_t>(blocking.kc * blocking.nc)
                      * sizeof(float),
                  m.llc_bytes());
    }
}

TEST(GotoGemm, CTrafficGrowsWithKPasses)
{
    // The defining GOTO cost (§4.1): partial C streams to DRAM once per
    // kc pass, so halving kc doubles C write traffic.
    Rng rng(4);
    const index_t m = 96, n = 96, k = 96;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    Matrix c(m, n);

    const index_t mr = best_microkernel().mr;
    const index_t nr = best_microkernel().nr;
    GotoStats coarse, fine;
    GotoOptions oc;
    oc.mc = round_up(96, mr);  // one pass
    oc.nc = round_up(96, nr);
    goto_sgemm(a.data(), b.data(), c.data(), m, n, k, test_pool(), oc,
               &coarse);
    GotoOptions of;
    of.mc = mr;  // many passes
    of.nc = round_up(96, nr);
    goto_sgemm(a.data(), b.data(), c.data(), m, n, k, test_pool(), of, &fine);

    EXPECT_GT(fine.dram_write_bytes, coarse.dram_write_bytes);
    EXPECT_GT(fine.c_passes, coarse.c_passes);
}

TEST(GotoGemm, StatsInvariants)
{
    Rng rng(5);
    const index_t m = 80, n = 100, k = 60;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);
    Matrix c(m, n);
    GotoStats stats;
    goto_sgemm(a.data(), b.data(), c.data(), m, n, k, test_pool(),
               tiny_options(), &stats);

    const index_t jc_steps = ceil_div(n, stats.nc);
    const index_t pc_steps = ceil_div(k, stats.kc);
    EXPECT_EQ(stats.c_passes, jc_steps * pc_steps);
    EXPECT_EQ(stats.b_packs, jc_steps * pc_steps);
    EXPECT_EQ(stats.a_packs, jc_steps * pc_steps * ceil_div(m, stats.mc));
    // C is written once per pass: write bytes = passes' worth of panels.
    EXPECT_EQ(stats.dram_write_bytes,
              static_cast<std::uint64_t>(m) * n * pc_steps * sizeof(float));
    EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(GotoGemm, ZeroKZeroesOrPreserves)
{
    Matrix c(3, 3);
    c.fill(7.0f);
    GotoGemm gemm(test_pool());
    gemm.multiply(nullptr, 0, nullptr, 3, c.data(), 3, 3, 3, 0);
    EXPECT_EQ(max_abs_diff(c, Matrix(3, 3)), 0.0);
}

}  // namespace
}  // namespace cake
