// Negative-path tests for the CAKE_CHECKED instrumentation layer: each
// test provokes one class of memory fault the instrumentation exists to
// catch — out-of-bounds span access, pack-buffer overrun into a canary
// guard, misaligned kernel operands — and asserts the trap fires with the
// right diagnostic. A throwing trap handler is installed per-test so the
// trap surfaces as a catchable CheckedError instead of an abort.
//
// In release builds (CAKE_CHECKED off) the instrumentation compiles away
// entirely, so every test here skips.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "common/aligned.hpp"
#include "common/checked.hpp"
#include "kernel/microkernel.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace {

#if !CAKE_CHECKED_ENABLED

TEST(CheckedTest, DisabledInThisBuild)
{
    GTEST_SKIP()
        << "CAKE_CHECKED instrumentation is compiled out of this build; "
           "configure with -DCAKE_CHECKED=ON to run the trap tests";
}

#else  // CAKE_CHECKED_ENABLED

void throwing_handler(const char* kind, const std::string& message)
{
    throw CheckedError(std::string(kind) + ": " + message);
}

/// Installs the throwing trap handler for one test, restoring the
/// previous handler (abort semantics) on scope exit.
class ScopedThrowingTraps {
public:
    ScopedThrowingTraps()
        : previous_(checked::set_trap_handler(&throwing_handler))
    {
    }
    ~ScopedThrowingTraps() { checked::set_trap_handler(previous_); }

private:
    checked::TrapHandler previous_;
};

std::string trap_message(const std::function<void()>& provoke)
{
    try {
        provoke();
    } catch (const CheckedError& e) {
        return e.what();
    }
    return "";
}

TEST(CheckedTest, SpanIndexOutOfBoundsTraps)
{
    ScopedThrowingTraps traps;
    AlignedBuffer<float> buf(8, /*zero=*/true);
    Span<float> s = make_span(buf.data(), buf.size(), "test span");
    EXPECT_NO_THROW(s[0]);
    EXPECT_NO_THROW(s[7]);
    EXPECT_THROW(s[8], CheckedError);
    EXPECT_THROW(s[-1], CheckedError);
    const std::string msg = trap_message([&] { (void)s[12]; });
    EXPECT_NE(msg.find("test span"), std::string::npos) << msg;
    EXPECT_NE(msg.find("12"), std::string::npos) << msg;
}

TEST(CheckedTest, SpanSliceOutOfBoundsTraps)
{
    ScopedThrowingTraps traps;
    AlignedBuffer<float> buf(16, /*zero=*/true);
    Span<float> s = make_span(buf.data(), buf.size(), "test span");
    EXPECT_NO_THROW((void)span_slice(s, 8, 8));
    EXPECT_THROW((void)span_slice(s, 8, 9), CheckedError);
    EXPECT_THROW((void)span_slice(s, -1, 4), CheckedError);
    EXPECT_THROW((void)span_slice(s, 4, -1), CheckedError);
}

TEST(CheckedTest, FreshBufferIsPoisoned)
{
    AlignedBuffer<float> f32(32);
    AlignedBuffer<double> f64(32);
    AlignedBuffer<int> i32(32);
    for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_TRUE(checked::is_poison(f32[i])) << "f32[" << i << "]";
        EXPECT_TRUE(checked::is_poison(f64[i])) << "f64[" << i << "]";
        EXPECT_TRUE(checked::is_poison(i32[i])) << "i32[" << i << "]";
    }
    // The float poisons are NaN payloads: arithmetic on an unpacked
    // element cannot silently produce a plausible number.
    EXPECT_TRUE(std::isnan(f32[0]));
    EXPECT_TRUE(std::isnan(f64[0]));

    AlignedBuffer<float> zeroed(32, /*zero=*/true);
    for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_EQ(zeroed[i], 0.0f);
        EXPECT_FALSE(checked::is_poison(zeroed[i]));
    }
}

TEST(CheckedTest, BufferOverrunTripsBackCanary)
{
    ScopedThrowingTraps traps;
    AlignedBuffer<float> buf(16, /*zero=*/true);
    EXPECT_NO_THROW(buf.verify_canaries("intact buffer"));
    buf.data()[16] = 1.0f;  // one element past the payload: back guard
    const std::string msg =
        trap_message([&] { buf.verify_canaries("victim buffer"); });
    EXPECT_NE(msg.find("victim buffer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("overrun"), std::string::npos) << msg;
}

TEST(CheckedTest, BufferUnderrunTripsFrontCanary)
{
    ScopedThrowingTraps traps;
    AlignedBuffer<float> buf(16, /*zero=*/true);
    buf.data()[-1] = 1.0f;  // one element before the payload: front guard
    const std::string msg =
        trap_message([&] { buf.verify_canaries("victim buffer"); });
    EXPECT_NE(msg.find("underrun"), std::string::npos) << msg;
}

TEST(CheckedTest, UndersizedPackBufferIsCaughtByCanary)
{
    ScopedThrowingTraps traps;
    // pack_a_panel writes packed_a_size(mc, kc, mr) elements; hand it a
    // buffer 8 floats short and the tail of the pack lands in the back
    // guard (the 64-byte guard absorbs the 32-byte overrun, so this is
    // safe to execute and deterministically detected on verify).
    const index_t mc = 12, kc = 8, mr = 6;
    const index_t need = packed_a_size(mc, kc, mr);
    ASSERT_EQ(need, 96);
    AlignedBuffer<float> a(static_cast<std::size_t>(mc * kc), /*zero=*/true);
    AlignedBuffer<float> packed(static_cast<std::size_t>(need - 8));
    pack_a_panel(a.data(), /*lda=*/kc, mc, kc, mr, packed.data());
    EXPECT_THROW(packed.verify_canaries("undersized packed-A"),
                 CheckedError);
}

TEST(CheckedTest, MisalignedScratchTileTraps)
{
    ScopedThrowingTraps traps;
    const MicroKernel k = scalar_microkernel();
    const index_t kc = 4;
    AlignedBuffer<float> a(static_cast<std::size_t>(k.mr * kc), true);
    AlignedBuffer<float> b(static_cast<std::size_t>(k.nr * kc), true);
    AlignedBuffer<float> c(static_cast<std::size_t>(k.mr * k.nr), true);
    AlignedBuffer<float> scratch(
        static_cast<std::size_t>(k.mr * k.nr) + 16, true);
    // Aligned scratch: runs clean (edge tile m = mr - 1 forces its use).
    EXPECT_NO_THROW(run_microkernel_tile(k, kc, a.data(), b.data(), c.data(),
                                         k.nr, k.mr - 1, k.nr, false,
                                         scratch.data()));
    // Knock the scratch pointer off 64-byte alignment by one element.
    const std::string msg = trap_message([&] {
        run_microkernel_tile(k, kc, a.data(), b.data(), c.data(), k.nr,
                             k.mr - 1, k.nr, false, scratch.data() + 1);
    });
    EXPECT_NE(msg.find("misaligned"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scratch"), std::string::npos) << msg;
}

TEST(CheckedTest, BadCTileGeometryTraps)
{
    ScopedThrowingTraps traps;
    const MicroKernel k = scalar_microkernel();
    const index_t kc = 4;
    AlignedBuffer<float> a(static_cast<std::size_t>(k.mr * kc), true);
    AlignedBuffer<float> b(static_cast<std::size_t>(k.nr * kc), true);
    AlignedBuffer<float> c(static_cast<std::size_t>(k.mr * k.nr), true);
    AlignedBuffer<float> scratch(static_cast<std::size_t>(k.mr * k.nr), true);
    // ldc smaller than the tile width: rows would overlap.
    EXPECT_THROW(run_microkernel_tile(k, kc, a.data(), b.data(), c.data(),
                                      k.nr - 1, k.mr, k.nr, false,
                                      scratch.data()),
                 CheckedError);
    // Null packed operand.
    EXPECT_THROW(run_microkernel_tile(k, kc,
                                      static_cast<const float*>(nullptr),
                                      b.data(), c.data(), k.nr, k.mr, k.nr,
                                      false, scratch.data()),
                 CheckedError);
}

TEST(CheckedTest, RequireExtentTraps)
{
    ScopedThrowingTraps traps;
    EXPECT_NO_THROW(require_extent(0, 10, 10, "exact fit"));
    EXPECT_THROW(require_extent(1, 10, 10, "off the end"), CheckedError);
    EXPECT_THROW(require_extent(-1, 2, 10, "negative start"), CheckedError);
}

#endif  // CAKE_CHECKED_ENABLED

}  // namespace
}  // namespace cake
