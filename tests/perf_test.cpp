// Silicon-truth observability tests: the perf_event counter layer
// (src/obs/perf) and the structured bench telemetry pipeline
// (bench/bench_json.hpp + tools/bench_gate).
//
// Counter availability is environment-dependent by design — containers,
// perf_event_paranoid and PMU-less VMs all deny hardware events — so the
// live-path tests run on SOFTWARE events (task-clock opens wherever
// perf_event_open works at all) and GTEST_SKIP when even those are denied.
// The degradation paths (bogus events, denied groups, disarmed layer) are
// asserted unconditionally: they must behave identically everywhere.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "common/csv.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "threading/thread_pool.hpp"

namespace {

using namespace cake;
namespace perf = cake::obs::perf;

/// Busy work that the optimiser cannot delete (the result is asserted),
/// long enough for task-clock to tick.
[[maybe_unused]] double busy_work(int iters)
{
    double acc = 0;
    for (int i = 0; i < iters; ++i) {
        acc += static_cast<double>(i % 7) * 1e-9;
    }
    return acc;
}

#if CAKE_PERF_ENABLED

TEST(PerfGroup, BogusEventDegradesToUnusable)
{
    // PERF_TYPE_HARDWARE with an absurd config id: every kernel rejects
    // it, on PMU-less hosts and bare metal alike. The group must report
    // unusable with a decoded reason instead of failing hard.
    std::vector<perf::CounterSpec> specs = {
        {"bogus", 0 /* PERF_TYPE_HARDWARE */, 0xdeadbeefULL}};
    perf::PerfCounterGroup group(specs);
    EXPECT_FALSE(group.usable());
    EXPECT_FALSE(group.error().empty());
    perf::CounterSet set;
    EXPECT_FALSE(group.read(&set));
}

TEST(PerfGroup, ProbeIsConsistent)
{
    const perf::Availability a = perf::probe();
    if (a.usable) {
        EXPECT_GT(a.opened, 0u);
    } else {
        EXPECT_FALSE(a.reason.empty());
    }
}

TEST(PerfRuntime, DisarmedScopesAccumulateNothing)
{
    perf::reset();
    ASSERT_FALSE(perf::enabled());
    {
        perf::ScopedPhaseDelta scope(obs::Phase::kPack);
        EXPECT_GT(busy_work(1000), 0.0);
    }
    const perf::PerfDump dump = perf::collect();
    EXPECT_TRUE(dump.workers.empty());
}

TEST(PerfRuntime, PerPhaseDeltasAcrossRunTeam)
{
    perf::reset();
    if (!perf::enable(perf::software_counter_specs())) {
        perf::disable();
        GTEST_SKIP() << "perf_event_open denied even for software events: "
                     << perf::collect().availability.reason;
    }

    ThreadPool pool(2);
    double sink[2] = {0, 0};
    pool.run_team(2, [&](TeamContext&, int tid) {
        {
            perf::ScopedPhaseDelta pack_scope(obs::Phase::kPack);
            sink[tid] += busy_work(400000);
        }
        {
            perf::ScopedPhaseDelta compute_scope(obs::Phase::kCompute);
            sink[tid] += busy_work(400000);
        }
    });
    perf::disable();
    const perf::PerfDump dump = perf::collect();
    EXPECT_GT(sink[0], 0.0);
    EXPECT_GT(sink[1], 0.0);

    // Both team members must appear, attributed by their worker id, with
    // task-clock deltas in exactly the phases they scoped.
    const int clock_slot = dump.slot("task-clock-ns");
    ASSERT_GE(clock_slot, 0);
    const auto slot = static_cast<std::size_t>(clock_slot);
    int seen = 0;
    for (const perf::WorkerPerf& w : dump.workers) {
        if (w.worker != 0 && w.worker != 1) continue;
        ++seen;
        const perf::CounterSet& pack =
            w.phase[static_cast<std::size_t>(obs::Phase::kPack)];
        const perf::CounterSet& compute =
            w.phase[static_cast<std::size_t>(obs::Phase::kCompute)];
        const perf::CounterSet& flush =
            w.phase[static_cast<std::size_t>(obs::Phase::kFlush)];
        ASSERT_TRUE(pack.available[slot]);
        ASSERT_TRUE(compute.available[slot]);
        EXPECT_GT(pack.value[slot], 0u);
        EXPECT_GT(compute.value[slot], 0u);
        // Nothing scoped kFlush, so nothing may be attributed to it.
        EXPECT_EQ(flush.value[slot], 0u);
    }
    EXPECT_EQ(seen, 2);

    // total() folds phases; total_of folds workers — both must agree.
    std::uint64_t total = 0;
    ASSERT_TRUE(dump.total_of("task-clock-ns", &total));
    std::uint64_t by_worker = 0;
    for (const perf::WorkerPerf& w : dump.workers) {
        by_worker += w.total().value[slot];
    }
    EXPECT_EQ(total, by_worker);
    perf::reset();
}

TEST(PerfRuntime, ResetDropsAccumulators)
{
    perf::reset();
    if (!perf::enable(perf::software_counter_specs())) {
        perf::disable();
        GTEST_SKIP() << "perf_event_open denied for software events";
    }
    {
        perf::ScopedPhaseDelta scope(obs::Phase::kCompute);
        EXPECT_GT(busy_work(100000), 0.0);
    }
    perf::disable();
    EXPECT_FALSE(perf::collect().workers.empty());
    perf::reset();
    EXPECT_TRUE(perf::collect().workers.empty());
}

#endif  // CAKE_PERF_ENABLED

// --- derived metrics (live in every build mode) -------------------------

perf::PerfDump synthetic_dump(std::uint64_t misses, std::uint64_t lines)
{
    perf::PerfDump dump;
    dump.line_bytes = lines;
    dump.specs = {{"cycles", 0, 0}, {"llc-load-misses", 0, 3}};
    perf::WorkerPerf w;
    w.worker = 0;
    perf::CounterSet& set =
        w.phase[static_cast<std::size_t>(obs::Phase::kCompute)];
    set.n = 2;
    set.value[0] = 1000;
    set.available[0] = true;
    set.value[1] = misses;
    set.available[1] = true;
    dump.workers.push_back(w);
    dump.availability.usable = true;
    return dump;
}

TEST(PerfDerived, DivergenceFromSyntheticDump)
{
    // 1000 misses x 64-byte lines = 64000 measured bytes.
    const perf::PerfDump dump = synthetic_dump(1000, 64);
    const perf::Divergence d = perf::dram_divergence(dump, 80000.0);
    EXPECT_TRUE(d.measured);
    EXPECT_DOUBLE_EQ(d.measured_bytes, 64000.0);
    EXPECT_DOUBLE_EQ(d.ratio, 0.8);
    EXPECT_DOUBLE_EQ(d.divergence, 0.2);

    // Without the miss counter the divergence is unmeasurable, not zero.
    perf::PerfDump no_miss = dump;
    no_miss.specs[1].name = "something-else";
    const perf::Divergence dm = perf::dram_divergence(no_miss, 80000.0);
    EXPECT_FALSE(dm.measured);
}

TEST(PerfDerived, OperatingPointFromSyntheticDump)
{
    const perf::PerfDump dump = synthetic_dump(1000, 64);
    const perf::OperatingPoint op =
        perf::operating_point(dump, 1.28e6, 0.001);
    EXPECT_TRUE(op.measured);
    EXPECT_DOUBLE_EQ(op.ai, 1.28e6 / 64000.0);
    EXPECT_DOUBLE_EQ(op.gflops, 1.28e6 / 0.001 * 1e-9);
}

// --- BENCH JSON schema --------------------------------------------------

TEST(BenchJson, MetricKeySanitisation)
{
    EXPECT_EQ(bench::metric_key("GFLOP/s"), "gflop_s");
    EXPECT_EQ(bench::metric_key("DRAM (GB/s)"), "dram__gb_s_");
    EXPECT_EQ(bench::metric_key("total_ms"), "total_ms");
}

TEST(BenchJson, CellNumberParsing)
{
    EXPECT_EQ(bench::cell_number("1.5").value_or(-1), 1.5);
    EXPECT_EQ(bench::cell_number("-2e3").value_or(-1), -2000.0);
    EXPECT_FALSE(bench::cell_number("-").has_value());
    EXPECT_FALSE(bench::cell_number("").has_value());
    EXPECT_FALSE(bench::cell_number("1.5x").has_value());
    EXPECT_FALSE(bench::cell_number("inf").has_value());
    EXPECT_FALSE(bench::cell_number("nan").has_value());
}

TEST(BenchJson, TableRoundTripsBitExact)
{
    Table table({"case", "GFLOP/s", "seconds", "note"});
    table.add_row({"square", "123.456", "0.0078125", "ok"});
    table.add_row({"skewed", "17.1700000000000017", "-", "degraded"});

    bench::BenchRecord record =
        bench::record_from_table(table, "unit_test");
    record.machine_key = "test|machine";
    record.machine_json = "{\"cores\": 4}";
    record.context["tuned_plans"] = "off";

    std::ostringstream os;
    bench::write_bench_json(record, os);
    bench::BenchRecord back;
    std::string error;
    ASSERT_TRUE(bench::parse_bench_json(os.str(), &back, &error)) << error;

    EXPECT_EQ(back.schema, bench::kBenchSchemaVersion);
    EXPECT_EQ(back.bench, "unit_test");
    EXPECT_EQ(back.machine_key, "test|machine");
    EXPECT_EQ(back.context.at("tuned_plans"), "off");
    ASSERT_EQ(back.cases.size(), 2u);
    EXPECT_EQ(back.cases[0].name, "square");
    EXPECT_EQ(back.cases[0].metrics.at("gflop_s"), 123.456);
    EXPECT_EQ(back.cases[0].metrics.at("seconds"), 0.0078125);
    EXPECT_EQ(back.cases[0].labels.at("note"), "ok");
    // %.17g writing means the parse returns the identical double.
    EXPECT_EQ(back.cases[1].metrics.at("gflop_s"), 17.1700000000000017);
    // "-" cells are labels, never metrics.
    EXPECT_EQ(back.cases[1].metrics.count("seconds"), 0u);
    EXPECT_EQ(back.cases[1].labels.at("seconds"), "-");
}

TEST(BenchJson, ParserRejectsMalformedDocuments)
{
    bench::BenchRecord out;
    std::string error;
    EXPECT_FALSE(bench::parse_bench_json("", &out, &error));
    EXPECT_FALSE(bench::parse_bench_json("[]", &out, &error));
    EXPECT_FALSE(bench::parse_bench_json("{\"schema\": 1}", &out, &error));
    EXPECT_FALSE(bench::parse_bench_json(
        "{\"schema\": 99, \"bench\": \"x\", \"cases\": []}", &out, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(bench::parse_bench_json(
        "{\"schema\": 1, \"bench\": \"x\", \"cases\": []} trailing", &out,
        &error));
}

TEST(BenchJson, LoadDistinguishesMissingFromMalformed)
{
    bench::BenchRecord out;
    std::string error;
    EXPECT_EQ(bench::load_bench_json("/nonexistent/bench.json", &out,
                                     &error),
              bench::BenchLoad::kMissing);
}

// --- baseline gate ------------------------------------------------------

bench::BenchRecord gate_record(double gflops, double seconds)
{
    bench::BenchRecord r;
    r.bench = "gate_test";
    bench::BenchCase c;
    c.name = "square";
    c.metrics["gflop_s"] = gflops;
    c.metrics["seconds"] = seconds;
    r.cases.push_back(c);
    return r;
}

TEST(BenchGate, PassesWithinTolerance)
{
    const bench::GateSpec spec;  // default 10%
    const bench::GateResult r = bench::gate_compare(
        gate_record(100, 1.0), gate_record(95, 1.05), spec);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.compared, 2u);
}

TEST(BenchGate, DirectionAwareness)
{
    const bench::GateSpec spec;
    // Throughput dropping 20% regresses; rising 20% never does.
    EXPECT_FALSE(bench::gate_compare(gate_record(100, 1.0),
                                     gate_record(80, 1.0), spec)
                     .ok);
    EXPECT_TRUE(bench::gate_compare(gate_record(100, 1.0),
                                    gate_record(120, 1.0), spec)
                    .ok);
    // Cost metrics mirror: seconds rising 20% regresses, falling passes.
    EXPECT_FALSE(bench::gate_compare(gate_record(100, 1.0),
                                     gate_record(100, 1.2), spec)
                     .ok);
    EXPECT_TRUE(bench::gate_compare(gate_record(100, 1.0),
                                    gate_record(100, 0.8), spec)
                    .ok);
}

TEST(BenchGate, PerMetricToleranceOverride)
{
    bench::GateSpec spec;
    spec.tol["gflop_s"] = 0.30;
    EXPECT_TRUE(bench::gate_compare(gate_record(100, 1.0),
                                    gate_record(75, 1.0), spec)
                    .ok);
    spec.tol["gflop_s"] = 0.05;
    EXPECT_FALSE(bench::gate_compare(gate_record(100, 1.0),
                                     gate_record(92, 1.0), spec)
                     .ok);
}

TEST(BenchGate, MissingCaseAndMetricAreFindings)
{
    const bench::GateSpec spec;
    bench::BenchRecord run = gate_record(100, 1.0);
    run.cases[0].name = "renamed";
    bench::GateResult r =
        bench::gate_compare(gate_record(100, 1.0), run, spec);
    EXPECT_FALSE(r.ok);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].what, "missing-case");

    run = gate_record(100, 1.0);
    run.cases[0].metrics.erase("seconds");
    r = bench::gate_compare(gate_record(100, 1.0), run, spec);
    EXPECT_FALSE(r.ok);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].what, "missing-metric");
    EXPECT_EQ(r.findings[0].metric, "seconds");
}

TEST(BenchGate, ExtraRunContentNeverFails)
{
    const bench::GateSpec spec;
    bench::BenchRecord run = gate_record(100, 1.0);
    run.cases[0].metrics["new_metric"] = 42;
    bench::BenchCase extra;
    extra.name = "new-case";
    run.cases.push_back(extra);
    EXPECT_TRUE(bench::gate_compare(gate_record(100, 1.0), run, spec).ok);
}

TEST(BenchGate, MetricDirectionHeuristics)
{
    EXPECT_EQ(bench::metric_direction("gflop_s"), 1);
    EXPECT_EQ(bench::metric_direction("speedup"), 1);
    EXPECT_EQ(bench::metric_direction("seconds"), -1);
    EXPECT_EQ(bench::metric_direction("dram_read_bytes"), -1);
    EXPECT_EQ(bench::metric_direction("stall__ms_"), -1);
    EXPECT_EQ(bench::metric_direction("total_ms"), -1);
    EXPECT_EQ(bench::metric_direction("alpha"), 0);
}

}  // namespace
