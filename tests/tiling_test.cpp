// CB-block solver tests: the shape/size equations of §3 and §4.2-§4.3.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/tiling.hpp"
#include "machine/machine.hpp"
#include "pack/pack.hpp"

namespace cake {
namespace {

TEST(CbBlock, ShapeFollowsTheory)
{
    // m_blk = p*mc, k_blk = kc = mc, n_blk ~= alpha*p*mc (rounded to nr).
    const MachineSpec intel = intel_i9_10900k();
    for (int p : {1, 2, 4, 10}) {
        const CbBlockParams params = compute_cb_block(intel, p, 6, 16);
        EXPECT_EQ(params.p, p);
        EXPECT_EQ(params.m_blk, p * params.mc);
        EXPECT_EQ(params.k_blk, params.kc);
        EXPECT_EQ(params.kc, params.mc) << "square L2 sub-block";
        EXPECT_EQ(params.mc % params.mr, 0);
        EXPECT_EQ(params.n_blk % params.nr, 0);
        EXPECT_GE(params.alpha, 1.0);
        const double target = params.alpha * p * static_cast<double>(params.mc);
        EXPECT_NEAR(static_cast<double>(params.n_blk), target,
                    static_cast<double>(params.nr));
    }
}

TEST(CbBlock, LruRuleRespected)
{
    // §4.3: C + 2(A+B) must fit the LLC (except when even the minimal
    // block cannot, which these machines never hit at their own core
    // counts).
    for (const MachineSpec& m : table2_machines()) {
        const CbBlockParams params = compute_cb_block(m, m.cores, 6, 16);
        EXPECT_LE(params.lru_working_set_bytes(), m.llc_bytes())
            << m.name << " mc=" << params.mc << " alpha=" << params.alpha;
    }
}

TEST(CbBlock, McShrinksWhenLlcPressureRises)
{
    // Growing p quadratically grows the C surface; with a fixed LLC the
    // solver must answer with smaller mc (or larger-but-fitting alpha).
    const MachineSpec intel = intel_i9_10900k();
    const CbBlockParams p1 = compute_cb_block(intel, 1, 6, 16);
    const CbBlockParams p10 = compute_cb_block(intel, 10, 6, 16);
    EXPECT_LE(p10.mc, p1.mc);
    EXPECT_LE(p10.lru_working_set_bytes(), intel.llc_bytes());
}

TEST(CbBlock, ArithmeticIntensityGrowsWithP)
{
    // Fig. 4: bigger blocks at constant bandwidth have higher AI.
    const MachineSpec amd = amd_ryzen_5950x();
    double last_ai = 0.0;
    for (int p : {1, 2, 4, 8}) {
        const CbBlockParams params = compute_cb_block(amd, p, 6, 16);
        const double ai = params.arithmetic_intensity();
        EXPECT_GT(ai, last_ai) << "p=" << p;
        last_ai = ai;
    }
}

TEST(CbBlock, RequiredBandwidthConstantInP)
{
    // The constant-bandwidth property (Eq. 4): required DRAM bandwidth
    // does not grow with core count.
    const MachineSpec amd = amd_ryzen_5950x();
    TilingOptions topts;
    topts.mc = 96;     // pin geometry so only p varies
    topts.alpha = 1.0;
    const double bw1 =
        required_dram_bw_gbs(amd, compute_cb_block(amd, 1, 6, 16, topts));
    const double bw8 =
        required_dram_bw_gbs(amd, compute_cb_block(amd, 8, 6, 16, topts));
    const double bw16 =
        required_dram_bw_gbs(amd, compute_cb_block(amd, 16, 6, 16, topts));
    EXPECT_NEAR(bw8, bw1, 1e-9 + 0.01 * bw1);
    EXPECT_NEAR(bw16, bw1, 1e-9 + 0.01 * bw1);
}

TEST(CbBlock, AlphaRisesWhenDramBandwidthFalls)
{
    // Low external bandwidth must be compensated by stretching N (§3.2).
    MachineSpec starved = intel_i9_10900k();
    const CbBlockParams rich = compute_cb_block(starved, 4, 6, 16);
    starved.dram_bw_gbs = 0.25;  // far below the block's demand floor
    const CbBlockParams poor = compute_cb_block(starved, 4, 6, 16);
    EXPECT_GT(poor.alpha, rich.alpha);
}

TEST(CbBlock, AlphaRaisesArithmeticIntensity)
{
    const MachineSpec intel = intel_i9_10900k();
    TilingOptions t1;
    t1.mc = 96;
    t1.alpha = 1.0;
    TilingOptions t4 = t1;
    t4.alpha = 4.0;
    const CbBlockParams a1 = compute_cb_block(intel, 4, 6, 16, t1);
    const CbBlockParams a4 = compute_cb_block(intel, 4, 6, 16, t4);
    EXPECT_GT(a4.arithmetic_intensity(), a1.arithmetic_intensity());
    // And lowers the required external bandwidth, Eq. 2.
    EXPECT_LT(required_dram_bw_gbs(intel, a4),
              required_dram_bw_gbs(intel, a1));
}

TEST(CbBlock, OverridesHonoured)
{
    const MachineSpec intel = intel_i9_10900k();
    TilingOptions topts;
    topts.mc = 48;
    topts.alpha = 2.0;
    const CbBlockParams params = compute_cb_block(intel, 3, 6, 16, topts);
    EXPECT_EQ(params.mc, 48);
    EXPECT_DOUBLE_EQ(params.alpha, 2.0);
    EXPECT_EQ(params.m_blk, 3 * 48);
    EXPECT_EQ(params.n_blk, round_up(static_cast<index_t>(2.0 * 3 * 48), 16));
}

TEST(CbBlock, RejectsBadOverrides)
{
    const MachineSpec intel = intel_i9_10900k();
    TilingOptions bad_mc;
    bad_mc.mc = 7;  // not a multiple of mr=6
    EXPECT_THROW(compute_cb_block(intel, 2, 6, 16, bad_mc), Error);
    TilingOptions bad_alpha;
    bad_alpha.alpha = 0.5;
    EXPECT_THROW(compute_cb_block(intel, 2, 6, 16, bad_alpha), Error);
}

TEST(CbBlock, SurfaceBytesAccounting)
{
    CbBlockParams params;
    params.m_blk = 10;
    params.k_blk = 20;
    params.n_blk = 30;
    // A=200, B=600, C=300 floats.
    EXPECT_EQ(params.surface_bytes(), (200u + 600 + 300) * sizeof(float));
    EXPECT_EQ(params.lru_working_set_bytes(),
              (300u + 2 * (200 + 600)) * sizeof(float));
}

TEST(BandwidthRatio, ScalesWithDramBandwidth)
{
    MachineSpec m = intel_i9_10900k();
    const double r1 = bandwidth_ratio(m, 4, 6, 16, 96, 96);
    m.dram_bw_gbs *= 2;
    const double r2 = bandwidth_ratio(m, 4, 6, 16, 96, 96);
    EXPECT_NEAR(r2, 2 * r1, 1e-9);
}

}  // namespace
}  // namespace cake
