// Tests for pre-packed weights and the kernel self-test harness.
#include <gtest/gtest.h>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/cake_gemm.hpp"
#include "kernel/selftest.hpp"
#include "ref/naive_gemm.hpp"

namespace cake {
namespace {

ThreadPool& test_pool()
{
    static ThreadPool pool(4);
    return pool;
}

CakeOptions small_blocks()
{
    CakeOptions options;
    options.mc = best_microkernel().mr * 2;
    return options;
}

TEST(Prepacked, MatchesRegularMultiply)
{
    Rng rng(401);
    const index_t m = 90, n = 120, k = 70;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);

    CakeGemm gemm(test_pool(), small_blocks());
    const PackedBF packed = gemm.pack_weights(b.data(), n, k, n);

    Matrix c_pre(m, n);
    gemm.multiply_prepacked(a.data(), k, packed, c_pre.data(), n, m);
    Matrix c_reg(m, n);
    gemm.multiply(a.data(), k, b.data(), n, c_reg.data(), n, m, n, k);

    EXPECT_EQ(max_abs_diff(c_pre, c_reg), 0.0)
        << "identical kernels on identical panels must agree bitwise";
    EXPECT_LE(max_abs_diff(c_pre, oracle_gemm(a, b)), gemm_tolerance(k));
}

TEST(Prepacked, SkipsBPackWork)
{
    Rng rng(402);
    const index_t m = 64, n = 200, k = 48;
    Matrix a(m, k);
    Matrix b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);

    CakeGemm gemm(test_pool(), small_blocks());
    const PackedBF packed = gemm.pack_weights(b.data(), n, k, n);
    Matrix c(m, n);
    gemm.multiply_prepacked(a.data(), k, packed, c.data(), n, m);
    EXPECT_EQ(gemm.stats().b_packs, 0) << "no per-call B packing";
    EXPECT_GT(gemm.stats().a_packs, 0);
}

TEST(Prepacked, ReusedAcrossManyMultiplies)
{
    // Inference pattern: one weight pack, many activation batches.
    Rng rng(403);
    const index_t n = 64, k = 96;
    Matrix w(k, n);
    w.fill_random(rng);

    CakeOptions options = small_blocks();
    CakeGemm gemm(test_pool(), options);
    const PackedBF packed = gemm.pack_weights(w.data(), n, k, n);

    for (index_t batch : {1, 7, 33, 128}) {
        Matrix x(batch, k);
        x.fill_random(rng);
        Matrix y(batch, n);
        gemm.multiply_prepacked(x.data(), k, packed, y.data(), n, batch);
        EXPECT_LE(max_abs_diff(y, oracle_gemm(x, w)), gemm_tolerance(k))
            << "batch " << batch;
    }
}

TEST(Prepacked, TransposedWeightsHonoured)
{
    Rng rng(404);
    const index_t n = 40, k = 56;
    Matrix w(k, n);
    w.fill_random(rng);
    Matrix wt(n, k);
    for (index_t p = 0; p < k; ++p)
        for (index_t j = 0; j < n; ++j) wt.at(j, p) = w.at(p, j);

    CakeOptions options = small_blocks();
    options.op_b = Op::kTranspose;
    CakeGemm gemm(test_pool(), options);
    const PackedBF packed = gemm.pack_weights(wt.data(), k, k, n);

    Matrix x(25, k);
    x.fill_random(rng);
    Matrix y(25, n);
    gemm.multiply_prepacked(x.data(), k, packed, y.data(), n, 25);
    EXPECT_LE(max_abs_diff(y, oracle_gemm(x, w)), gemm_tolerance(k));
}

TEST(Prepacked, GeometryMismatchRejected)
{
    Rng rng(405);
    Matrix b(32, 32);
    b.fill_random(rng);

    CakeOptions opt_a = small_blocks();
    CakeGemm gemm_a(test_pool(), opt_a);
    const PackedBF packed = gemm_a.pack_weights(b.data(), 32, 32, 32);

    CakeOptions opt_b = small_blocks();
    opt_b.mc = best_microkernel().mr * 4;  // different geometry
    CakeGemm gemm_b(test_pool(), opt_b);
    Matrix a(16, 32);
    Matrix c(16, 32);
    EXPECT_THROW(
        gemm_b.multiply_prepacked(a.data(), 32, packed, c.data(), 32, 16),
        Error);
    // Empty pack rejected too.
    PackedBF empty;
    EXPECT_THROW(
        gemm_a.multiply_prepacked(a.data(), 32, empty, c.data(), 32, 16),
        Error);
}

TEST(Prepacked, DoublePrecision)
{
    Rng rng(406);
    const index_t m = 30, n = 44, k = 52;
    MatrixD a(m, k);
    MatrixD b(k, n);
    a.fill_random(rng);
    b.fill_random(rng);

    CakeOptions options;
    options.mc = best_microkernel_of<double>().mr * 2;
    CakeGemmD gemm(test_pool(), options);
    const PackedBD packed = gemm.pack_weights(b.data(), n, k, n);
    MatrixD c(m, n);
    gemm.multiply_prepacked(a.data(), k, packed, c.data(), n, m);
    EXPECT_LE(max_abs_diff(c, oracle_gemm(a, b)), dgemm_tolerance(k));
}

TEST(KernelSelfTest, AllSupportedKernelsPass)
{
    const auto results = run_kernel_selftest();
    // At least scalar f32, scalar f64 and scalar int8 run everywhere.
    EXPECT_GE(results.size(), 3u);
    for (const auto& r : results) {
        EXPECT_TRUE(r.passed) << r.kernel << " (" << r.family
                              << ") max_err=" << r.max_error;
    }
    EXPECT_TRUE(all_kernels_ok());
}

TEST(KernelSelfTest, CoversEveryFamily)
{
    bool f32 = false, f64 = false, i8 = false;
    for (const auto& r : run_kernel_selftest()) {
        f32 |= r.family == "f32";
        f64 |= r.family == "f64";
        i8 |= r.family == "int8";
    }
    EXPECT_TRUE(f32);
    EXPECT_TRUE(f64);
    EXPECT_TRUE(i8);
}

}  // namespace
}  // namespace cake
