// Unit tests for the common substrate: aligned buffers, matrices, RNG,
// statistics, tables and environment parsing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <sstream>

#include "common/aligned.hpp"
#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace cake {
namespace {

TEST(Aligned, PointerIsAligned)
{
    for (std::size_t n : {1u, 7u, 64u, 1000u, 4097u}) {
        AlignedBuffer<float> buf(n);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kPanelAlignment,
                  0u);
        EXPECT_EQ(buf.size(), n);
    }
}

TEST(Aligned, ZeroInitialisation)
{
    AlignedBuffer<float> buf(257, /*zero=*/true);
    for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(Aligned, MoveTransfersOwnership)
{
    AlignedBuffer<float> a(16);
    a[3] = 7.0f;
    float* p = a.data();
    AlignedBuffer<float> b = std::move(a);
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(b[3], 7.0f);
    EXPECT_EQ(a.data(), nullptr);
    EXPECT_TRUE(a.empty());
}

TEST(Aligned, EnsureGrowsButNeverShrinks)
{
    AlignedBuffer<float> buf(10);
    buf.ensure(5);
    EXPECT_EQ(buf.size(), 10u);
    buf.ensure(100);
    EXPECT_EQ(buf.size(), 100u);
}

TEST(Aligned, EmptyBufferIsSafe)
{
    AlignedBuffer<float> buf;
    EXPECT_TRUE(buf.empty());
    AlignedBuffer<float> moved = std::move(buf);
    EXPECT_TRUE(moved.empty());
}

TEST(Error, CheckThrowsWithContext)
{
    EXPECT_THROW(CAKE_CHECK(1 == 2), Error);
    try {
        CAKE_CHECK_MSG(false, "x=" << 42);
        FAIL() << "should have thrown";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("x=42"), std::string::npos);
    }
}

TEST(Rng, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, FloatRangeRespected)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const float f = rng.next_float(-2.0f, 3.0f);
        EXPECT_GE(f, -2.0f);
        EXPECT_LT(f, 3.0f);
    }
}

TEST(Rng, NextBelowUnbiasedRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.next_below(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all residues hit in 1000 draws
}

TEST(Matrix, FillAndAccess)
{
    Matrix m(3, 4);
    m.fill_with([](index_t r, index_t c) {
        return static_cast<float>(10 * r + c);
    });
    EXPECT_EQ(m.at(0, 0), 0.0f);
    EXPECT_EQ(m.at(2, 3), 23.0f);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 4);
}

TEST(Matrix, ViewSubMatrix)
{
    Matrix m(4, 5);
    m.fill_with([](index_t r, index_t c) {
        return static_cast<float>(r * 5 + c);
    });
    auto v = m.view().sub(1, 2, 2, 3);
    EXPECT_EQ(v.rows, 2);
    EXPECT_EQ(v.cols, 3);
    EXPECT_EQ(v.at(0, 0), m.at(1, 2));
    EXPECT_EQ(v.at(1, 2), m.at(2, 4));
    EXPECT_THROW(m.view().sub(3, 3, 2, 3), Error);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a(2, 2);
    Matrix b(2, 2);
    a.fill(1.0f);
    b.fill(1.0f);
    b.at(1, 1) = 1.5f;
    EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

TEST(Matrix, MaxRelDiffUsesFloor)
{
    Matrix a(1, 1);
    Matrix b(1, 1);
    a.at(0, 0) = 1e-9f;
    b.at(0, 0) = 2e-9f;
    // With floor 1.0 the tiny absolute difference is tiny relatively too.
    EXPECT_LT(max_rel_diff(a, b), 1e-8);
}

TEST(Matrix, GemmToleranceGrowsWithK)
{
    EXPECT_LT(gemm_tolerance(16), gemm_tolerance(4096));
    EXPECT_GT(gemm_tolerance(1), 0.0);
}

TEST(Stats, MeanStdevMedian)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(mean(xs), 3.0);
    EXPECT_NEAR(stdev(xs), 1.5811388, 1e-6);
    EXPECT_DOUBLE_EQ(median(xs), 3.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, FitLineRecoversExactLine)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * i - 2.0);
    }
    const LineFit f = fit_line(xs, ys);
    EXPECT_NEAR(f.slope, 3.0, 1e-12);
    EXPECT_NEAR(f.intercept, -2.0, 1e-12);
    EXPECT_NEAR(f(100.0), 298.0, 1e-9);
}

TEST(Stats, LineThroughTwoPoints)
{
    const LineFit f = line_through(1.0, 10.0, 3.0, 20.0);
    EXPECT_DOUBLE_EQ(f(5.0), 30.0);
    EXPECT_THROW(line_through(1.0, 0.0, 1.0, 5.0), Error);
}

TEST(Table, PrintAndCsv)
{
    Table t({"p", "gflops"});
    t.add_row({"1", "10.5"});
    t.add_row_numeric({2, 21.25});
    EXPECT_EQ(t.num_rows(), 2u);
    EXPECT_THROW(t.add_row({"only-one-cell"}), Error);

    std::ostringstream text;
    t.print(text);
    EXPECT_NE(text.str().find("gflops"), std::string::npos);
    EXPECT_NE(text.str().find("21.25"), std::string::npos);

    std::ostringstream csv;
    t.write_csv(csv);
    EXPECT_EQ(csv.str().substr(0, 9), "p,gflops\n");
}

TEST(Table, CsvEscaping)
{
    Table t({"name"});
    t.add_row({"a,b\"c"});
    std::ostringstream csv;
    t.write_csv(csv);
    EXPECT_NE(csv.str().find("\"a,b\"\"c\""), std::string::npos);
}

TEST(Env, ParsesIntegers)
{
    ::setenv("CAKE_TEST_ENV_INT", "42", 1);
    EXPECT_EQ(env_long("CAKE_TEST_ENV_INT").value(), 42);
    ::setenv("CAKE_TEST_ENV_INT", "nope", 1);
    EXPECT_FALSE(env_long("CAKE_TEST_ENV_INT").has_value());
    ::unsetenv("CAKE_TEST_ENV_INT");
    EXPECT_FALSE(env_string("CAKE_TEST_ENV_INT").has_value());
}

TEST(Types, GemmShapeVolume)
{
    const GemmShape s{100, 200, 300};
    EXPECT_DOUBLE_EQ(s.mac_volume(), 6e6);
    EXPECT_DOUBLE_EQ(s.flops(), 1.2e7);
}

}  // namespace
}  // namespace cake
